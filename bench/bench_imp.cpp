//===- bench/bench_imp.cpp - A4: imperative-module monitoring cost ----------===//
//
// Ablation A4 (companion to A1 for the imperative language module): the
// cost of command-level monitoring on a store-heavy loop, per monitor.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "imp/ImpMachine.h"
#include "imp/ImpMonitors.h"
#include "imp/ImpParser.h"

#include <benchmark/benchmark.h>

using namespace monsem;
using namespace monsem::bench;

namespace {

const char *Source =
    "n := 4000; acc := 0; "
    "while n > 0 do "
    "  {body}: begin acc := acc + n * n; n := n - 1 end "
    "end; "
    "print acc";

struct ImpProgram {
  ImpContext Ctx;
  const Cmd *C = nullptr;
};

std::unique_ptr<ImpProgram> parseImpOrDie(const char *Src) {
  auto P = std::make_unique<ImpProgram>();
  DiagnosticSink Diags;
  P->C = parseImpProgram(P->Ctx, Src, Diags);
  if (!P->C) {
    std::fprintf(stderr, "%s\n", Diags.str().c_str());
    std::abort();
  }
  return P;
}

} // namespace

static void reportTable() {
  auto P = parseImpOrDie(Source);
  const Cmd *Plain = stripCmdAnnotations(P->Ctx, P->C);

  ImpStmtProfiler Prof;
  ImpWatchMonitor Watch("acc");
  ImpTracer Trc;

  auto RunStd = [&] { runImp(Plain); };
  double TStd = medianMs(RunStd);

  std::printf("A4 — imperative module: command-monitoring cost "
              "(4000 loop iterations)\n");
  printRule();
  std::printf("%-34s %10s %12s\n", "configuration", "median ms",
              "vs standard");
  printRule();
  std::printf("%-34s %10.3f %11.2fx\n", "standard semantics", TStd, 1.0);

  struct Row {
    const char *Name;
    const ImpMonitor *M;
  };
  for (Row R : {Row{"statement profiler", &Prof},
                Row{"watchpoint demon (acc)", &Watch},
                Row{"command tracer", &Trc}}) {
    ImpCascade C;
    C.use(*R.M);
    double Ratio = medianRatio(RunStd, [&] { runImp(C, P->C); });
    std::printf("%-34s %10.3f %11.2fx\n", R.Name, TStd * Ratio, Ratio);
  }
  printRule();
  std::printf("expected shape: profiler < watchpoint < tracer (the tracer "
              "renders the\nwhole store per event).\n\n");
}

static void BM_ImpStandard(benchmark::State &State) {
  auto P = parseImpOrDie(Source);
  const Cmd *Plain = stripCmdAnnotations(P->Ctx, P->C);
  for (auto _ : State)
    benchmark::DoNotOptimize(runImp(Plain));
}
BENCHMARK(BM_ImpStandard)->Unit(benchmark::kMillisecond);

static void BM_ImpProfiled(benchmark::State &State) {
  auto P = parseImpOrDie(Source);
  ImpStmtProfiler Prof;
  ImpCascade C;
  C.use(Prof);
  for (auto _ : State)
    benchmark::DoNotOptimize(runImp(C, P->C));
}
BENCHMARK(BM_ImpProfiled)->Unit(benchmark::kMillisecond);

static void BM_ImpTraced(benchmark::State &State) {
  auto P = parseImpOrDie(Source);
  ImpTracer Trc;
  ImpCascade C;
  C.use(Trc);
  for (auto _ : State)
    benchmark::DoNotOptimize(runImp(C, P->C));
}
BENCHMARK(BM_ImpTraced)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  reportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
