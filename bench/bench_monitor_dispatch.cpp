//===- bench/bench_monitor_dispatch.cpp - A1: level-1 specialization --------===//
//
// Ablation A1 (DESIGN.md): the cost of the monitoring *machinery* itself
// and what the paper's first level of specialization (fixing the monitor
// specification) removes.
//
// Rows (same annotated workload, a counting monitor):
//   A  standard semantics            annotations skipped (obliviousness)
//   B  dynamic monitor dispatch      cascade chosen at run time (virtual
//                                    calls + per-annotation resolution)
//   C  static monitor dispatch       monitor fixed at C++ compile time
//                                    (MachineT instantiated with an inline
//                                    counting policy) — the "instrumented
//                                    interpreter" of Section 9.1, level 1
//   D  unannotated program           the conservative-extension check: the
//                                    monitoring machinery must cost nothing
//                                    when no annotations are present
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "monitors/Profiler.h"

#include <benchmark/benchmark.h>

using namespace monsem;
using namespace monsem::bench;

namespace {

const char *annotatedSource() {
  return "letrec down = lambda n. {A}: if n = 0 then 0 else "
         "1 + down (n - 1) in "
         "letrec loop = lambda i. if i = 0 then 0 else "
         "down 100 + loop (i - 1) in loop 300";
}

/// Level-1-specialized policy: the monitor is a compile-time constant and
/// its pre/post bodies inline into the machine's transition loop.
struct InlineCountPolicy {
  static constexpr bool Enabled = true;
  uint64_t *Count = nullptr;
  void pre(const Annotation &, const Expr &, EnvView, uint64_t, uint64_t) {
    ++*Count;
  }
  void post(const Annotation &, const Expr &, EnvView, Value, uint64_t,
            uint64_t) {}
};

} // namespace

static void reportTable() {
  auto P = parseOrDie(annotatedSource());
  AstContext PlainCtx;
  const Expr *Plain = stripAnnotations(PlainCtx, P->root());

  CountingProfiler Count;
  Cascade C;
  C.use(Count);

  double TA = medianMs([&] {
    StandardMachine M(P->root(), RunOptions());
    M.run();
  });
  double TB = medianMs([&] { evaluate(C, P->root()); });
  uint64_t Hits = 0;
  double TC = medianMs([&] {
    Hits = 0;
    InlineCountPolicy Pol{&Hits};
    MachineT<InlineCountPolicy> M(P->root(), RunOptions(), Pol);
    M.run();
  });
  double TD = medianMs([&] {
    StandardMachine M(Plain, RunOptions());
    M.run();
  });

  std::printf("A1 — monitor dispatch cost (level-1 specialization)\n");
  printRule();
  std::printf("%-44s %10s %12s\n", "configuration", "median ms",
              "vs oblivious");
  printRule();
  std::printf("%-44s %10.3f %11.2fx\n",
              "A standard semantics (annotations skipped)", TA, 1.0);
  std::printf("%-44s %10.3f %11.2fx\n",
              "B dynamic cascade dispatch", TB, TB / TA);
  std::printf("%-44s %10.3f %11.2fx\n",
              "C static (inlined) monitor policy", TC, TC / TA);
  std::printf("%-44s %10.3f %11.2fx\n",
              "D unannotated program, standard machine", TD, TD / TA);
  printRule();
  std::printf("probe events per run: %llu\n",
              static_cast<unsigned long long>(Hits));
  std::printf("expected shape: D <= A (annotation nodes are skipped, not "
              "free),\nC <= B (static dispatch removes the virtual-call and "
              "resolution overhead).\n\n");
}

static void BM_Oblivious(benchmark::State &State) {
  auto P = parseOrDie(annotatedSource());
  for (auto _ : State) {
    StandardMachine M(P->root(), RunOptions());
    benchmark::DoNotOptimize(M.run());
  }
}
BENCHMARK(BM_Oblivious)->Unit(benchmark::kMillisecond);

static void BM_DynamicDispatch(benchmark::State &State) {
  auto P = parseOrDie(annotatedSource());
  CountingProfiler Count;
  Cascade C;
  C.use(Count);
  for (auto _ : State)
    benchmark::DoNotOptimize(evaluate(C, P->root()));
}
BENCHMARK(BM_DynamicDispatch)->Unit(benchmark::kMillisecond);

static void BM_StaticDispatch(benchmark::State &State) {
  auto P = parseOrDie(annotatedSource());
  for (auto _ : State) {
    uint64_t Hits = 0;
    InlineCountPolicy Pol{&Hits};
    MachineT<InlineCountPolicy> M(P->root(), RunOptions(), Pol);
    benchmark::DoNotOptimize(M.run());
  }
}
BENCHMARK(BM_StaticDispatch)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  reportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
