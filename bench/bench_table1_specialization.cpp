//===- bench/bench_table1_specialization.cpp - Section 9.1 numbers ---------===//
//
// Reproduces the paper's Section 9.1 evaluation (T1 in EXPERIMENTS.md):
//
//   "our tracer is about 11% slower than the standard interpreter ...
//    [the specialized program] is 85% faster than the monitored
//    interpreter and 83% faster than the standard interpreter."
//
// Rows:
//   A  standard interpreter        (CEK, unannotated program)
//   B  monitored interpreter       (CEK + tracer on the annotated program)
//   C  instrumented program        (bytecode with probes + tracer hooks)
//   D  compiled standard program   (bytecode, no probes — reference point)
//
// Expected shape: B is modestly slower than A (the extra tracing work);
// C beats both A and B by a large factor (the interpretive overhead is
// gone and only the dynamic monitoring work remains).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "compile/Compiler.h"
#include "compile/VM.h"
#include "monitors/Tracer.h"

#include <benchmark/benchmark.h>

using namespace monsem;
using namespace monsem::bench;

namespace {

// Tracing density tuned so the tracer's dynamic work is roughly a tenth of
// the interpretation work, the balance the paper's +11% figure implies:
// each traced call performs a small amount (fib 2) of untraced computation.
const char *annotatedSource() {
  return "letrec fib = lambda n. if n < 2 then n else "
         "fib (n - 1) + fib (n - 2) in "
         "letrec step = lambda k. {step(k)}: fib 2 + k in "
         "letrec loop = lambda i. if i = 0 then 0 else "
         "step i + loop (i - 1) in loop 20000";
}

RunResult runStandard(const Expr *Plain) { return evaluate(Plain); }

RunResult runMonitored(const Cascade &C, const Expr *Annotated) {
  return evaluate(C, Annotated);
}

} // namespace

static void reportTable() {
  auto Annotated = parseOrDie(annotatedSource());
  AstContext PlainCtx;
  const Expr *Plain = stripAnnotations(PlainCtx, Annotated->root());

  Tracer Trc;
  Cascade C;
  C.use(Trc);

  DiagnosticSink Diags;
  CompileOptions Instr;
  auto InstrProg = compileProgram(Annotated->root(), Diags, Instr);
  CompileOptions NoInstr;
  NoInstr.Instrument = false;
  auto PlainProg = compileProgram(Plain, Diags, NoInstr);

  // Sanity: all four agree on the answer.
  RunResult A = runStandard(Plain);
  RunResult B = runMonitored(C, Annotated->root());
  RuntimeCascade RC(C);
  RunResult Cr = runCompiled(*InstrProg, &RC);
  RunResult D = runCompiled(*PlainProg);
  if (!(A.Ok && B.Ok && Cr.Ok && D.Ok) || A.ValueText != B.ValueText ||
      A.ValueText != Cr.ValueText || A.ValueText != D.ValueText) {
    std::fprintf(stderr, "answer mismatch; benchmark invalid\n");
    std::abort();
  }

  // Drift-cancelling paired ratios against the standard interpreter.
  auto RunA = [&] { runStandard(Plain); };
  double TA = medianMs(RunA);
  double RB = medianRatio(RunA, [&] { runMonitored(C, Annotated->root()); });
  double RC_ = medianRatio(RunA, [&] {
    RuntimeCascade RC2(C);
    runCompiled(*InstrProg, &RC2);
  });
  double RD = medianRatio(RunA, [&] { runCompiled(*PlainProg); });
  double TB = TA * RB, TC = TA * RC_, TD = TA * RD;

  std::printf("T1 — Section 9.1: interpretation vs. specialization "
              "(tracer monitor)\n");
  printRule();
  std::printf("%-38s %10s %14s\n", "configuration", "median ms",
              "vs standard");
  printRule();
  std::printf("%-38s %10.3f %13.2fx\n", "A standard interpreter", TA, 1.0);
  std::printf("%-38s %10.3f %13.2fx\n", "B monitored interpreter (tracer)",
              TB, TB / TA);
  std::printf("%-38s %10.3f %13.2fx\n", "C instrumented program (bytecode)",
              TC, TC / TA);
  std::printf("%-38s %10.3f %13.2fx\n", "D compiled, no instrumentation",
              TD, TD / TA);
  printRule();
  std::printf("monitoring overhead (B/A - 1):        %+.1f%%   "
              "(paper: about +11%%)\n",
              (TB / TA - 1.0) * 100.0);
  std::printf("specialization vs monitored (1 - C/B): %.1f%%   "
              "(paper: 85%% faster)\n",
              (1.0 - TC / TB) * 100.0);
  std::printf("specialization vs standard  (1 - C/A): %.1f%%   "
              "(paper: 83%% faster)\n\n",
              (1.0 - TC / TA) * 100.0);
}

//===----------------------------------------------------------------------===//
// google-benchmark registrations (per-op timings for the same rows)
//===----------------------------------------------------------------------===//

static void BM_StandardInterpreter(benchmark::State &State) {
  auto Annotated = parseOrDie(annotatedSource());
  AstContext PlainCtx;
  const Expr *Plain = stripAnnotations(PlainCtx, Annotated->root());
  for (auto _ : State)
    benchmark::DoNotOptimize(runStandard(Plain));
}
BENCHMARK(BM_StandardInterpreter)->Unit(benchmark::kMillisecond);

static void BM_MonitoredInterpreter(benchmark::State &State) {
  auto Annotated = parseOrDie(annotatedSource());
  Tracer Trc;
  Cascade C;
  C.use(Trc);
  for (auto _ : State)
    benchmark::DoNotOptimize(runMonitored(C, Annotated->root()));
}
BENCHMARK(BM_MonitoredInterpreter)->Unit(benchmark::kMillisecond);

static void BM_InstrumentedProgram(benchmark::State &State) {
  auto Annotated = parseOrDie(annotatedSource());
  Tracer Trc;
  Cascade C;
  C.use(Trc);
  DiagnosticSink Diags;
  auto Prog = compileProgram(Annotated->root(), Diags);
  for (auto _ : State) {
    RuntimeCascade RC(C);
    benchmark::DoNotOptimize(runCompiled(*Prog, &RC));
  }
}
BENCHMARK(BM_InstrumentedProgram)->Unit(benchmark::kMillisecond);

static void BM_CompiledNoInstrumentation(benchmark::State &State) {
  auto Annotated = parseOrDie(annotatedSource());
  AstContext PlainCtx;
  const Expr *Plain = stripAnnotations(PlainCtx, Annotated->root());
  DiagnosticSink Diags;
  CompileOptions NoInstr;
  NoInstr.Instrument = false;
  auto Prog = compileProgram(Plain, Diags, NoInstr);
  for (auto _ : State)
    benchmark::DoNotOptimize(runCompiled(*Prog));
}
BENCHMARK(BM_CompiledNoInstrumentation)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  reportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
