//===- bench/BenchUtil.h - Shared benchmark helpers -------------*- C++ -*-===//
///
/// \file
/// Helpers shared by the paper-reproduction benchmarks: program parsing,
/// median wall-clock timing for the paper-style tables (google-benchmark
/// handles the per-op microbenchmarks), and table formatting.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_BENCH_BENCHUTIL_H
#define MONSEM_BENCH_BENCHUTIL_H

#include "interp/Eval.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

namespace monsem::bench {

inline std::unique_ptr<ParsedProgram> parseOrDie(std::string_view Src) {
  auto P = ParsedProgram::parse(Src);
  if (!P->ok()) {
    std::fprintf(stderr, "benchmark program failed to parse:\n%s\n",
                 P->diags().str().c_str());
    std::abort();
  }
  return P;
}

/// Median wall-clock milliseconds of \p Reps runs of \p Fn (after one
/// untimed warm-up run, so cold-start effects do not bias the first row of
/// a table).
inline double medianMs(const std::function<void()> &Fn, int Reps = 9) {
  Fn();
  std::vector<double> Times;
  for (int I = 0; I < Reps; ++I) {
    auto T0 = std::chrono::steady_clock::now();
    Fn();
    auto T1 = std::chrono::steady_clock::now();
    Times.push_back(
        std::chrono::duration<double, std::milli>(T1 - T0).count());
  }
  std::sort(Times.begin(), Times.end());
  return Times[Times.size() / 2];
}

/// One timed run, in milliseconds.
inline double timeOnceMs(const std::function<void()> &Fn) {
  auto T0 = std::chrono::steady_clock::now();
  Fn();
  auto T1 = std::chrono::steady_clock::now();
  return std::chrono::duration<double, std::milli>(T1 - T0).count();
}

/// Median of per-rep time ratios Other/Base with the two measurements
/// interleaved, so slow clock drift (thermal throttling, noisy neighbors)
/// cancels out. Use this for the paper-style relative columns; absolute
/// columns come from medianMs.
inline double medianRatio(const std::function<void()> &Base,
                          const std::function<void()> &Other,
                          int Reps = 11) {
  Base();
  Other();
  std::vector<double> Ratios;
  for (int I = 0; I < Reps; ++I) {
    double TB = timeOnceMs(Base);
    double TO = timeOnceMs(Other);
    Ratios.push_back(TO / TB);
  }
  std::sort(Ratios.begin(), Ratios.end());
  return Ratios[Ratios.size() / 2];
}

inline void printRule(int Width = 78) {
  for (int I = 0; I < Width; ++I)
    std::putchar('-');
  std::putchar('\n');
}

//===----------------------------------------------------------------------===//
// Machine-readable results (JSON Lines)
//===----------------------------------------------------------------------===//

/// One benchmark measurement for the committed machine-readable record
/// (BENCH_machines.json and friends): what ran, in which configuration,
/// and what it cost.
struct BenchRecord {
  std::string Name;     ///< Workload, e.g. "fib 20".
  std::string Variant;  ///< Machine configuration, e.g. "resolved".
  std::string Strategy; ///< "strict" / "call-by-name" / "call-by-need".
  double NsPerOp = 0;   ///< Median wall-clock nanoseconds per run.
  uint64_t Steps = 0;   ///< Machine transitions in one run.
  uint64_t ArenaBytes = 0; ///< Arena bytes one run allocates.
};

/// Appends records to a JSONL file, one JSON object per line. Fields are
/// written verbatim — callers use plain ASCII names, so no escaping.
class JsonlWriter {
public:
  explicit JsonlWriter(const std::string &Path)
      : F(std::fopen(Path.c_str(), "w")) {
    if (!F)
      std::fprintf(stderr, "warning: cannot open %s for bench records\n",
                   Path.c_str());
  }
  ~JsonlWriter() {
    if (F)
      std::fclose(F);
  }
  JsonlWriter(const JsonlWriter &) = delete;
  JsonlWriter &operator=(const JsonlWriter &) = delete;

  bool ok() const { return F != nullptr; }

  void write(const BenchRecord &R) {
    if (!F)
      return;
    std::fprintf(F,
                 "{\"name\":\"%s\",\"variant\":\"%s\",\"strategy\":\"%s\","
                 "\"ns_per_op\":%.1f,\"steps\":%llu,\"arena_bytes\":%llu}\n",
                 R.Name.c_str(), R.Variant.c_str(), R.Strategy.c_str(),
                 R.NsPerOp, static_cast<unsigned long long>(R.Steps),
                 static_cast<unsigned long long>(R.ArenaBytes));
    std::fflush(F);
  }

private:
  std::FILE *F;
};

} // namespace monsem::bench

#endif // MONSEM_BENCH_BENCHUTIL_H
