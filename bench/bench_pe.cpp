//===- bench/bench_pe.cpp - P1: specialization to partial input -------------===//
//
// Reproduces the paper's third specialization level (Section 9.1, Fig. 10):
// specializing an (instrumented) program with respect to partial input and
// measuring the residual's speedup, on the interpreter and on the VM.
//
// Workloads:
//   * power b 16, exponent static — the recursion unfolds completely;
//   * a monitored dot-product-style loop with a static vector length;
//   * the monitored factorial of Section 8, specialized (annotations are
//     dynamic, so the residual keeps every probe: the measured gap is
//     exactly the removable interpretive overhead around the monitoring).
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "compile/Compiler.h"
#include "compile/VM.h"
#include "monitors/Profiler.h"
#include "pe/PartialEval.h"
#include "syntax/Printer.h"

#include <benchmark/benchmark.h>

using namespace monsem;
using namespace monsem::bench;

namespace {

const char *PowerLoop =
    "lambda b. "
    "letrec power = lambda bb e. if e = 0 then 1 else "
    "bb * power bb (e - 1) in "
    "letrec loop = lambda i. if i = 0 then 0 else "
    "power b 16 + loop (i - 1) in loop 400";

const char *MonitoredFac =
    "letrec fac = lambda x. {fac}: if x = 0 then 1 else "
    "x * fac (x - 1) in "
    "letrec loop = lambda i. if i = 0 then 0 else "
    "fac 12 + loop (i - 1) in loop 100";

struct Residual {
  AstContext Out;
  PEResult R;
};

std::unique_ptr<Residual> specialize(const Expr *E, PEOptions Opts = {}) {
  auto S = std::make_unique<Residual>();
  S->R = partialEvaluate(S->Out, E, Opts);
  if (S->R.GaveUp) {
    std::fprintf(stderr, "specializer gave up; benchmark invalid\n");
    std::abort();
  }
  return S;
}

} // namespace

static void reportTable() {
  std::printf("P1 — specialization with respect to partial input "
              "(level 3)\n");
  printRule();
  std::printf("%-26s %12s %12s %10s %12s\n", "workload", "original ms",
              "residual ms", "speedup", "PE unfolds");
  printRule();

  {
    // power: b dynamic, exponent 16 static, 400 calls per run.
    auto P = parseOrDie(PowerLoop);
    auto S = specialize(P->root());
    AstContext App1, App2;
    const Expr *Orig = App1.mkApp(cloneExpr(App1, P->root()), App1.mkInt(3));
    const Expr *Res =
        App2.mkApp(cloneExpr(App2, S->R.Residual), App2.mkInt(3));
    RunResult RO = evaluate(Orig), RR = evaluate(Res);
    if (!RO.Ok || RO.ValueText != RR.ValueText) {
      std::fprintf(stderr, "mismatch\n");
      std::abort();
    }
    double TO = medianMs([&] { evaluate(Orig); });
    double TR = medianMs([&] { evaluate(Res); });
    std::printf("%-26s %12.3f %12.3f %9.2fx %12u\n",
                "power^16 (interp)", TO, TR, TO / TR, S->R.Unfolds);

    DiagnosticSink Diags;
    CompileOptions NoInstr;
    NoInstr.Instrument = false;
    auto OrigVM = compileProgram(Orig, Diags, NoInstr);
    auto ResVM = compileProgram(Res, Diags, NoInstr);
    double VO = medianMs([&] { runCompiled(*OrigVM); });
    double VR = medianMs([&] { runCompiled(*ResVM); });
    std::printf("%-26s %12.3f %12.3f %9.2fx %12s\n",
                "power^16 (bytecode)", VO, VR, VO / VR, "-");
  }

  {
    // Monitored factorial: the probes survive specialization (they are
    // the dynamic part); the residual still reports the same profile.
    auto P = parseOrDie(MonitoredFac);
    PEOptions Opts;
    Opts.MaxUnfoldDepth = 8; // Keep part of the recursion residual.
    auto S = specialize(P->root(), Opts);
    CallProfiler Prof;
    Cascade C;
    C.use(Prof);
    RunResult RO = evaluate(C, P->root());
    RunResult RR = evaluate(C, S->R.Residual);
    if (!RO.Ok || !RR.Ok ||
        RO.FinalStates[0]->str() != RR.FinalStates[0]->str()) {
      std::fprintf(stderr, "monitor-state mismatch\n");
      std::abort();
    }
    double TO = medianMs([&] { evaluate(C, P->root()); });
    double TR = medianMs([&] { evaluate(C, S->R.Residual); });
    std::printf("%-26s %12.3f %12.3f %9.2fx %12u\n",
                "monitored fac (interp)", TO, TR, TO / TR, S->R.Unfolds);
    std::printf("  (profiler state preserved: %s)\n",
                RR.FinalStates[0]->str().c_str());
  }

  printRule();
  std::printf("expected shape: residuals win wherever static computation "
              "existed; the\nmonitoring events themselves are dynamic and "
              "are never specialized away.\n\n");
}

static void BM_PowerOriginal(benchmark::State &State) {
  auto P = parseOrDie(PowerLoop);
  AstContext App;
  const Expr *Orig = App.mkApp(cloneExpr(App, P->root()), App.mkInt(3));
  for (auto _ : State)
    benchmark::DoNotOptimize(evaluate(Orig));
}
BENCHMARK(BM_PowerOriginal)->Unit(benchmark::kMillisecond);

static void BM_PowerResidual(benchmark::State &State) {
  auto P = parseOrDie(PowerLoop);
  auto S = specialize(P->root());
  AstContext App;
  const Expr *Res = App.mkApp(cloneExpr(App, S->R.Residual), App.mkInt(3));
  for (auto _ : State)
    benchmark::DoNotOptimize(evaluate(Res));
}
BENCHMARK(BM_PowerResidual)->Unit(benchmark::kMillisecond);

static void BM_Specializer(benchmark::State &State) {
  auto P = parseOrDie(PowerLoop);
  for (auto _ : State) {
    AstContext Out;
    benchmark::DoNotOptimize(partialEvaluate(Out, P->root()));
  }
}
BENCHMARK(BM_Specializer)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  reportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
