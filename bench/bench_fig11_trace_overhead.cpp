//===- bench/bench_fig11_trace_overhead.cpp - Figure 11 ---------------------===//
//
// Reproduces Figure 11 (F11 in EXPERIMENTS.md): the monitored
// interpreter's run time as a function of the number of requested trace
// printouts, against the standard interpreter as the baseline (the
// figure's x axis). The paper's observation:
//
//   "the monitor performance approaches the standard interpreter
//    performance as the monitoring activity decreases ... the monitored
//    interpreter performance graph corresponds to the linear complexity
//    of the tracer dynamic behavior."
//
// Workload: a loop of N calls, of which the first K route through a traced
// function (2K printouts: receives + returns) and the rest through an
// identical untraced one. Total computation is constant across K.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "monitors/Tracer.h"

#include <benchmark/benchmark.h>

#include <string>

using namespace monsem;
using namespace monsem::bench;

namespace {

constexpr int TotalCalls = 2000;

std::string sourceWithTracedCalls() {
  // `traced` and `plain` do identical work; `loop` sends the first K
  // iterations through `traced`.
  return "lambda kk. "
         "letrec fib = lambda n. if n < 2 then n else "
         "fib (n - 1) + fib (n - 2) in "
         "letrec traced = lambda x. {traced(x)}: fib 3 + x in "
         "letrec plain = lambda x. fib 3 + x in "
         "letrec loop = lambda i. if i = 0 then 0 else "
         "(if i <= kk then traced i else plain i) + loop (i - 1) in "
         "loop " +
         std::to_string(TotalCalls);
}

/// Builds the program for a given K by applying the lambda to K.
struct Workload {
  std::unique_ptr<ParsedProgram> P;
  const Expr *AppliedTo(int K) {
    return P->context().mkApp(P->root(), P->context().mkInt(K));
  }
};

} // namespace

static void reportSeries() {
  Workload W{parseOrDie(sourceWithTracedCalls())};

  Tracer Trc;
  Cascade C;
  C.use(Trc);

  // Baseline: standard interpreter on the annotation-stripped program.
  AstContext PlainCtx;
  const Expr *PlainFn = stripAnnotations(PlainCtx, W.P->root());
  const Expr *Plain =
      PlainCtx.mkApp(PlainFn, PlainCtx.mkInt(0));
  double Baseline = medianMs([&] { evaluate(Plain); });

  std::printf("F11 — Figure 11: monitored-interpreter time vs. number of "
              "trace printouts\n");
  std::printf("(total work constant: %d calls; K traced calls produce 2K "
              "printouts)\n", TotalCalls);
  printRule();
  std::printf("%8s %12s %12s %14s %12s\n", "K", "printouts", "median ms",
              "vs standard", "ms/printout");
  printRule();
  std::printf("%8s %12s %12.3f %13.2fx %12s\n", "std", "-", Baseline, 1.0,
              "-");
  double PrevMs = Baseline;
  for (int K = 0; K <= TotalCalls; K += 250) {
    const Expr *Prog = W.AppliedTo(K);
    // Sanity check once: monitored answer equals standard answer.
    RunResult Mon = evaluate(C, Prog);
    RunResult Std = evaluate(Prog);
    if (!Mon.Ok || Mon.ValueText != Std.ValueText) {
      std::fprintf(stderr, "benchmark invalid: %s\n", Mon.Error.c_str());
      std::abort();
    }
    double Ms = Baseline * medianRatio([&] { evaluate(Plain); },
                                       [&] { evaluate(C, Prog); });
    double PerPrintout =
        K == 0 ? 0.0 : (Ms - Baseline) / (2.0 * K);
    std::printf("%8d %12d %12.3f %13.2fx %12.5f\n", K, 2 * K, Ms,
                Ms / Baseline, PerPrintout);
    PrevMs = Ms;
  }
  (void)PrevMs;
  printRule();
  std::printf("expected shape: column 3 grows linearly in K and approaches "
              "the standard\ninterpreter time (1.00x) as K -> 0.\n\n");
}

static void BM_TracedCalls(benchmark::State &State) {
  Workload W{parseOrDie(sourceWithTracedCalls())};
  Tracer Trc;
  Cascade C;
  C.use(Trc);
  const Expr *Prog = W.AppliedTo(static_cast<int>(State.range(0)));
  for (auto _ : State)
    benchmark::DoNotOptimize(evaluate(C, Prog));
  State.counters["printouts"] = 2.0 * State.range(0);
}
BENCHMARK(BM_TracedCalls)
    ->Arg(0)
    ->Arg(500)
    ->Arg(1000)
    ->Arg(2000)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  reportSeries();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
