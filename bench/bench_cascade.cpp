//===- bench/bench_cascade.cpp - A2: composition depth ----------------------===//
//
// Ablation A2 (DESIGN.md): the cost of cascaded monitors (Section 6).
// A program point carries one qualified annotation per monitor in the
// cascade (nested, as the doubly-derived semantics of Fig. 5 prescribes);
// we sweep the cascade depth from 0 to 8 and measure the per-event cost.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "monitors/Profiler.h"

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

using namespace monsem;
using namespace monsem::bench;

namespace {

/// A counting profiler with a configurable monitor name, so N instances
/// can coexist with disjoint (qualified) annotation syntaxes.
class NamedCounter : public CountingProfiler {
public:
  explicit NamedCounter(std::string Name)
      : CountingProfiler("A", "B"), Name(std::move(Name)) {}
  std::string_view name() const override { return Name; }

private:
  std::string Name;
};

std::string sourceWithDepth(unsigned Depth) {
  // {c0:A}: {c1:A}: ... nested around the recursive step.
  std::string Anns;
  for (unsigned I = 0; I < Depth; ++I)
    Anns += "{c" + std::to_string(I) + ":A}: ";
  return "letrec down = lambda n. " + Anns +
         "(if n = 0 then 0 else 1 + down (n - 1)) in "
         "letrec loop = lambda i. if i = 0 then 0 else "
         "down 50 + loop (i - 1) in loop 200";
}

} // namespace

static void reportTable() {
  std::printf("A2 — cascade depth: cost of composed monitors (Fig. 5 "
              "iterated)\n");
  printRule();
  std::printf("%8s %12s %14s %16s\n", "depth", "median ms", "vs depth 0",
              "events/run");
  printRule();
  double Base = 0.0;
  for (unsigned Depth = 0; Depth <= 8; ++Depth) {
    auto P = parseOrDie(sourceWithDepth(Depth));
    std::vector<std::unique_ptr<NamedCounter>> Monitors;
    Cascade C;
    for (unsigned I = 0; I < Depth; ++I) {
      Monitors.push_back(
          std::make_unique<NamedCounter>("c" + std::to_string(I)));
      C.use(*Monitors.back());
    }
    RunResult Check = evaluate(C, P->root());
    if (!Check.Ok) {
      std::fprintf(stderr, "invalid: %s\n", Check.Error.c_str());
      std::abort();
    }
    uint64_t Events = 0;
    for (const auto &S : Check.FinalStates)
      Events += CountingProfiler::state(*S).CountA;
    double Ms = medianMs([&] { evaluate(C, P->root()); });
    if (Depth == 0)
      Base = Ms;
    std::printf("%8u %12.3f %13.2fx %16llu\n", Depth, Ms, Ms / Base,
                static_cast<unsigned long long>(Events));
  }
  printRule();
  std::printf("expected shape: time grows roughly linearly with cascade "
              "depth\n(each level adds one pre+post probe per event "
              "site).\n\n");
}

static void BM_CascadeDepth(benchmark::State &State) {
  unsigned Depth = static_cast<unsigned>(State.range(0));
  auto P = parseOrDie(sourceWithDepth(Depth));
  std::vector<std::unique_ptr<NamedCounter>> Monitors;
  Cascade C;
  for (unsigned I = 0; I < Depth; ++I) {
    Monitors.push_back(
        std::make_unique<NamedCounter>("c" + std::to_string(I)));
    C.use(*Monitors.back());
  }
  for (auto _ : State)
    benchmark::DoNotOptimize(evaluate(C, P->root()));
}
BENCHMARK(BM_CascadeDepth)->Arg(0)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  reportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
