//===- bench/bench_machines.cpp - A3: evaluator comparison ------------------===//
//
// Ablation A3 (DESIGN.md): the three evaluators on the same programs —
// the direct CPS definitional interpreter (the paper's semantics,
// literally), the CEK machine (production interpreter), and the bytecode
// VM (the compiled residual). Also: the three evaluation strategies
// ("language modules") on the CEK machine.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "compile/Compiler.h"
#include "compile/VM.h"
#include "interp/Direct.h"

#include <benchmark/benchmark.h>

using namespace monsem;
using namespace monsem::bench;

namespace {

// Small enough for the CPS reference interpreter's C-stack budget.
const char *SmallSrc = "letrec fib = lambda n. if n < 2 then n else "
                       "fib (n - 1) + fib (n - 2) in fib 11";

// Larger workload for CEK vs VM.
const char *LargeSrc = "letrec fib = lambda n. if n < 2 then n else "
                       "fib (n - 1) + fib (n - 2) in fib 20";

// A list-heavy workload.
const char *ListSrc =
    "letrec build = lambda n. if n = 0 then [] else n : build (n - 1) in "
    "letrec sum = lambda l. if l = [] then 0 else hd l + sum (tl l) in "
    "letrec go = lambda i. if i = 0 then 0 else "
    "sum (build 60) + go (i - 1) in go 200";

} // namespace

static void reportTable() {
  auto Small = parseOrDie(SmallSrc);
  auto Large = parseOrDie(LargeSrc);
  auto List = parseOrDie(ListSrc);

  DiagnosticSink Diags;
  auto SmallVM = compileProgram(Small->root(), Diags);
  auto LargeVM = compileProgram(Large->root(), Diags);
  auto ListVM = compileProgram(List->root(), Diags);

  std::printf("A3 — evaluators (standard semantics, strict)\n");
  printRule();
  std::printf("%-14s %16s %14s %14s\n", "workload", "direct CPS ms",
              "CEK ms", "bytecode ms");
  printRule();

  double DirSmall =
      medianMs([&] { runDirect(Small->root(), nullptr, 100000); });
  double CekSmall = medianMs([&] { evaluate(Small->root()); });
  double VmSmall = medianMs([&] { runCompiled(*SmallVM); });
  std::printf("%-14s %16.3f %14.3f %14.3f\n", "fib 11", DirSmall, CekSmall,
              VmSmall);

  double CekLarge = medianMs([&] { evaluate(Large->root()); });
  double VmLarge = medianMs([&] { runCompiled(*LargeVM); });
  std::printf("%-14s %16s %14.3f %14.3f\n", "fib 20", "-", CekLarge,
              VmLarge);

  double CekList = medianMs([&] { evaluate(List->root()); });
  double VmList = medianMs([&] { runCompiled(*ListVM); });
  std::printf("%-14s %16s %14.3f %14.3f\n", "list sums", "-", CekList,
              VmList);
  printRule();
  std::printf("speedups on fib 20: bytecode is %.2fx the CEK machine\n\n",
              CekLarge / VmLarge);

  std::printf("A3b — evaluation strategies (CEK machine, fib 16)\n");
  printRule();
  auto Mid = parseOrDie("letrec fib = lambda n. if n < 2 then n else "
                        "fib (n - 1) + fib (n - 2) in fib 16");
  for (Strategy S :
       {Strategy::Strict, Strategy::CallByName, Strategy::CallByNeed}) {
    RunOptions Opts;
    Opts.Strat = S;
    double Ms = medianMs([&] { evaluate(Mid->root(), Opts); });
    std::printf("%-14s %10.3f ms\n", strategyName(S), Ms);
  }
  printRule();
  std::printf("expected shape: direct CPS slowest (std::function overhead);"
              "\nbytecode fastest; call-by-name pays re-evaluation, "
              "call-by-need memoizes.\n\n");
}

static void BM_DirectCPS(benchmark::State &State) {
  auto P = parseOrDie(SmallSrc);
  for (auto _ : State)
    benchmark::DoNotOptimize(runDirect(P->root(), nullptr, 100000));
}
BENCHMARK(BM_DirectCPS)->Unit(benchmark::kMillisecond);

static void BM_CEK(benchmark::State &State) {
  auto P = parseOrDie(LargeSrc);
  for (auto _ : State)
    benchmark::DoNotOptimize(evaluate(P->root()));
}
BENCHMARK(BM_CEK)->Unit(benchmark::kMillisecond);

static void BM_Bytecode(benchmark::State &State) {
  auto P = parseOrDie(LargeSrc);
  DiagnosticSink Diags;
  auto Prog = compileProgram(P->root(), Diags);
  for (auto _ : State)
    benchmark::DoNotOptimize(runCompiled(*Prog));
}
BENCHMARK(BM_Bytecode)->Unit(benchmark::kMillisecond);

static void BM_Strategy(benchmark::State &State) {
  auto P = parseOrDie("letrec fib = lambda n. if n < 2 then n else "
                      "fib (n - 1) + fib (n - 2) in fib 16");
  RunOptions Opts;
  Opts.Strat = static_cast<Strategy>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(evaluate(P->root(), Opts));
}
BENCHMARK(BM_Strategy)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  reportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
