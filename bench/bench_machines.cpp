//===- bench/bench_machines.cpp - A3: evaluator comparison ------------------===//
//
// Ablation A3 (DESIGN.md): the three evaluators on the same programs —
// the direct CPS definitional interpreter (the paper's semantics,
// literally), the CEK machine (production interpreter), and the bytecode
// VM (the compiled residual). Also: the three evaluation strategies
// ("language modules") on the CEK machine.
//
// Ablation A5: level-2 specialization of the CEK machine. Each workload
// runs under three configurations —
//
//   seed             named environment chain, no frame recycling (the
//                    machine as originally shipped; the baseline)
//   legacy+recycle   named chain + continuation-frame free list
//   resolved         lexical addresses, flat frames, free list (default)
//
// and the monitored workloads repeat the seed/resolved comparison under a
// tracer cascade, where probes read the environment *by name* through
// EnvView. Every measurement is also emitted as a JSONL record
// (--json=PATH, default BENCH_machines.json in the working directory);
// --quick shrinks the workloads and skips the google-benchmark micros so
// CI can smoke-test the runner.
//
//===----------------------------------------------------------------------===//

#include "BenchUtil.h"

#include "analysis/Resolver.h"
#include "compile/AotEmit.h"
#include "compile/Compiler.h"
#include "compile/VM.h"
#include "interp/Direct.h"
#include "monitors/Tracer.h"

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>

using namespace monsem;
using namespace monsem::bench;

namespace {

// Small enough for the CPS reference interpreter's C-stack budget.
const char *SmallSrc = "letrec fib = lambda n. if n < 2 then n else "
                       "fib (n - 1) + fib (n - 2) in fib 11";

// Larger workload for CEK vs VM.
const char *LargeSrc = "letrec fib = lambda n. if n < 2 then n else "
                       "fib (n - 1) + fib (n - 2) in fib 20";

// A list-heavy workload.
const char *ListSrc =
    "letrec build = lambda n. if n = 0 then [] else n : build (n - 1) in "
    "letrec sum = lambda l. if l = [] then 0 else hd l + sum (tl l) in "
    "letrec go = lambda i. if i = 0 then 0 else "
    "sum (build 60) + go (i - 1) in go 200";

//===----------------------------------------------------------------------===//
// A5 — level-2 specialization (lexical addressing + frame recycling)
//===----------------------------------------------------------------------===//

/// One machine configuration under test.
struct Variant {
  const char *Name;
  bool Lexical;
  bool Recycle;
  /// Self-tail-call frame reuse. Off for the historical variants so their
  /// rows stay comparable with earlier committed runs; the dedicated
  /// `tail-reuse` rows turn it on.
  bool Reuse = false;
};

// The Value representation is a compile-time axis (CMake option
// MONSEM_VALUE_BOXED), orthogonal to the environment-representation
// variants above, so the lexical+recycling cell is labeled by the Value
// its binary was compiled with: `resolved` is the historical 16-byte
// boxed baseline, `tagged` the 8-byte word (the default build). The
// committed BENCH_machines.json concatenates a -DMONSEM_VALUE_BOXED=ON
// run (seed / legacy+recycle / resolved rows) with the tagged rows of a
// default run, so the two representations sit side by side per workload.
constexpr Variant kVariants[] = {
    {"seed", false, false},
    {"legacy+recycle", false, true},
#ifdef MONSEM_VALUE_BOXED
    {"resolved", true, true},
#else
    {"tagged", true, true},
#endif
};

struct Workload {
  const char *Name;
  std::string Src;
};

std::vector<Workload> deepWorkloads(bool Quick) {
  auto Fib = [](int N) {
    return "letrec fib = lambda n. if n < 2 then n else "
           "fib (n - 1) + fib (n - 2) in fib " +
           std::to_string(N);
  };
  auto Tak = [](int X, int Y, int Z) {
    return "letrec tak = lambda x y z. if y < x then "
           "tak (tak (x - 1) y z) (tak (y - 1) z x) (tak (z - 1) x y) "
           "else z in tak " +
           std::to_string(X) + " " + std::to_string(Y) + " " +
           std::to_string(Z);
  };
  auto Ack = [](int M, int N) {
    return "letrec ack = lambda m n. if m = 0 then n + 1 else "
           "if n = 0 then ack (m - 1) 1 else ack (m - 1) (ack m (n - 1)) "
           "in ack " +
           std::to_string(M) + " " + std::to_string(N);
  };
  auto Down = [](int N) {
    return "letrec down = lambda n. if n = 0 then 0 else down (n - 1) in "
           "down " +
           std::to_string(N);
  };
  if (Quick)
    return {{"fib 14", Fib(14)},
            {"tak 12 8 4", Tak(12, 8, 4)},
            {"ack 2 6", Ack(2, 6)},
            {"down 20000", Down(20000)},
            {"list sums", ListSrc}};
  return {{"fib 20", Fib(20)},
          {"tak 18 12 6", Tak(18, 12, 6)},
          {"ack 3 5", Ack(3, 5)},
          {"down 100000", Down(100000)},
          {"list sums", ListSrc}};
}

struct Measurement {
  double Ms = 0;
  uint64_t Steps = 0;
  uint64_t ArenaBytes = 0;
};

RunOptions optionsFor(const Variant &V, Strategy S = Strategy::Strict) {
  RunOptions Opts;
  Opts.Strat = S;
  Opts.Lexical = V.Lexical;
  Opts.RecycleFrames = V.Recycle;
  Opts.ReuseTailFrames = V.Reuse;
  return Opts;
}

/// Times one (workload, variant) cell with the strict standard semantics.
/// Machines are constructed directly (not via evaluate) so the run's arena
/// footprint is observable; the resolution is computed once outside the
/// timed region, matching how evaluate() amortizes it across a session.
Measurement measureStandard(const Expr *Prog, const Variant &V,
                            const Resolution *Res, Strategy S, int Reps) {
  RunOptions Opts = optionsFor(V, S);
  Measurement M;
  auto RunOnce = [&] {
    if (V.Lexical) {
      ResolvedMachine Mach(Prog, Opts, NoMonitorPolicy(), Res);
      RunResult R = Mach.run();
      M.Steps = R.Steps;
      M.ArenaBytes = Mach.arenaBytes();
    } else {
      StandardMachine Mach(Prog, Opts);
      RunResult R = Mach.run();
      M.Steps = R.Steps;
      M.ArenaBytes = Mach.arenaBytes();
    }
  };
  M.Ms = medianMs(RunOnce, Reps);
  return M;
}

/// Same, under a monitor cascade (fresh runtime states per run, like
/// evaluate() would make).
Measurement measureMonitored(const Expr *Prog, const Cascade &C,
                             const Variant &V, const Resolution *Res,
                             int Reps) {
  RunOptions Opts = optionsFor(V);
  Measurement M;
  auto RunOnce = [&] {
    RuntimeCascade RC(C);
    DynamicMonitorPolicy Policy{&RC};
    if (V.Lexical) {
      ResolvedMonitoredMachine Mach(Prog, Opts, Policy, Res);
      RunResult R = Mach.run();
      M.Steps = R.Steps;
      M.ArenaBytes = Mach.arenaBytes();
    } else {
      MonitoredMachine Mach(Prog, Opts, Policy);
      RunResult R = Mach.run();
      M.Steps = R.Steps;
      M.ArenaBytes = Mach.arenaBytes();
    }
  };
  M.Ms = medianMs(RunOnce, Reps);
  return M;
}

const char *strategyLabel(Strategy S) { return strategyName(S); }

void reportLexical(JsonlWriter &W, bool Quick) {
  const int Reps = Quick ? 3 : 9;

  std::printf("A5 — level-2 specialization (strict, no monitor)\n");
  printRule();
  std::printf("%-14s %10s %16s %10s %9s %14s\n", "workload", "seed ms",
              "legacy+rec ms", kVariants[2].Name, "speedup",
              "arena seed/res");
  printRule();

  for (const Workload &WL : deepWorkloads(Quick)) {
    auto P = parseOrDie(WL.Src);
    auto Res = resolveProgram(P->root());
    if (!Res->ok()) {
      std::fprintf(stderr, "resolver refused %s; skipping\n", WL.Name);
      continue;
    }

    Measurement Cells[3];
    for (int I = 0; I < 3; ++I) {
      Cells[I] = measureStandard(P->root(), kVariants[I], Res.get(),
                                 Strategy::Strict, Reps);
      W.write({WL.Name, kVariants[I].Name, strategyLabel(Strategy::Strict),
               Cells[I].Ms * 1e6, Cells[I].Steps, Cells[I].ArenaBytes});
    }

    // Interleaved ratio for the headline column: robust against clock
    // drift across the row. medianRatio(Base, Other) = median(Other/Base),
    // so Base = resolved makes the ratio "seed over resolved" = speedup.
    double Speedup;
    if (Quick) {
      Speedup = Cells[0].Ms / Cells[2].Ms;
    } else {
      RunOptions SeedOpts = optionsFor(kVariants[0]);
      RunOptions ResOpts = optionsFor(kVariants[2]);
      Speedup = medianRatio(
          [&] {
            ResolvedMachine M(P->root(), ResOpts, NoMonitorPolicy(),
                              Res.get());
            M.run();
          },
          [&] {
            StandardMachine M(P->root(), SeedOpts);
            M.run();
          });
    }

    std::printf("%-14s %10.3f %16.3f %10.3f %8.2fx %6.1f/%.1f MB\n",
                WL.Name, Cells[0].Ms, Cells[1].Ms, Cells[2].Ms, Speedup,
                Cells[0].ArenaBytes / 1048576.0,
                Cells[2].ArenaBytes / 1048576.0);
  }
  printRule();
  std::printf("seed = named env chain, no recycling; %s = lexical "
              "addresses + flat\nframes + continuation-frame free list "
              "(compiled with the %s Value).\n\n",
              kVariants[2].Name,
#ifdef MONSEM_VALUE_BOXED
              "16-byte boxed"
#else
              "8-byte tagged"
#endif
  );

  // Strategies under both representations: laziness allocates thunks that
  // close over the environment, so the flat-frame representation must not
  // regress call-by-name/need either.
  std::printf("A5b — strategies, seed vs resolved (fib %d)\n",
              Quick ? 12 : 16);
  printRule();
  auto Mid = parseOrDie(
      std::string("letrec fib = lambda n. if n < 2 then n else "
                  "fib (n - 1) + fib (n - 2) in fib ") +
      (Quick ? "12" : "16"));
  auto MidRes = resolveProgram(Mid->root());
  std::string MidName = Quick ? "fib 12" : "fib 16";
  for (Strategy S :
       {Strategy::Strict, Strategy::CallByName, Strategy::CallByNeed}) {
    Measurement Seed = measureStandard(Mid->root(), kVariants[0],
                                       MidRes.get(), S, Reps);
    Measurement Rsv = measureStandard(Mid->root(), kVariants[2],
                                      MidRes.get(), S, Reps);
    W.write({MidName, kVariants[0].Name, strategyLabel(S), Seed.Ms * 1e6,
             Seed.Steps, Seed.ArenaBytes});
    W.write({MidName, kVariants[2].Name, strategyLabel(S), Rsv.Ms * 1e6,
             Rsv.Steps, Rsv.ArenaBytes});
    std::printf("%-14s seed %8.3f ms   resolved %8.3f ms   %.2fx\n",
                strategyLabel(S), Seed.Ms, Rsv.Ms, Seed.Ms / Rsv.Ms);
  }
  printRule();
  std::putchar('\n');

  // Monitored runs: probes fire on every call and read bindings by name,
  // so this is the adversarial case for flat frames (named lookup scans
  // slots instead of chasing a chain). The bar is "no regression", not
  // "speedup".
  std::printf("A5c — monitored (tracer cascade), seed vs resolved\n");
  printRule();
  struct MonWorkload {
    const char *Name;
    std::string Src;
  };
  std::vector<MonWorkload> MonWLs = {
      {Quick ? "fib 12 traced" : "fib 16 traced",
       std::string("letrec fib = lambda n. {fib(n)}: if n < 2 then n else "
                   "fib (n - 1) + fib (n - 2) in fib ") +
           (Quick ? "12" : "16")},
      {Quick ? "down 1000 traced" : "down 4000 traced",
       std::string("letrec down = lambda n. {down(n)}: if n = 0 then 0 "
                   "else down (n - 1) in down ") +
           (Quick ? "1000" : "4000")},
  };
  Tracer Trace;
  Cascade C = cascadeOf({&Trace});
  for (const MonWorkload &WL : MonWLs) {
    auto P = parseOrDie(WL.Src);
    DiagnosticSink Diags;
    if (!C.validateFor(P->root(), Diags)) {
      std::fprintf(stderr, "cascade rejected %s:\n%s\n", WL.Name,
                   Diags.str().c_str());
      continue;
    }
    auto Res = resolveProgram(P->root());
    Measurement Seed =
        measureMonitored(P->root(), C, kVariants[0], Res.get(), Reps);
    Measurement Rsv =
        measureMonitored(P->root(), C, kVariants[2], Res.get(), Reps);
    W.write({WL.Name, kVariants[0].Name, "strict+tracer", Seed.Ms * 1e6,
             Seed.Steps, Seed.ArenaBytes});
    W.write({WL.Name, kVariants[2].Name, "strict+tracer", Rsv.Ms * 1e6,
             Rsv.Steps, Rsv.ArenaBytes});
    std::printf("%-16s seed %8.3f ms   resolved %8.3f ms   %.2fx\n",
                WL.Name, Seed.Ms, Rsv.Ms, Seed.Ms / Rsv.Ms);
  }
  printRule();
  std::putchar('\n');
}

//===----------------------------------------------------------------------===//
// A6 — self-tail-call frame reuse (CEK) and VM dispatch/fusion
//===----------------------------------------------------------------------===//

/// CEK machine with and without self-tail-call frame reuse. The win is
/// concentrated in loop-shaped workloads (`down N` never grows the arena
/// once reuse is on); call-tree workloads mostly measure "no regression".
void reportTailReuse(JsonlWriter &W, bool Quick) {
  const int Reps = Quick ? 3 : 9;
  Variant Reuse = kVariants[2];
  Reuse.Name = "tail-reuse";
  Reuse.Reuse = true;

  std::printf("A6a — CEK self-tail-call frame reuse (strict, no monitor)\n");
  printRule();
  for (const Workload &WL : deepWorkloads(Quick)) {
    auto P = parseOrDie(WL.Src);
    auto Res = resolveProgram(P->root());
    if (!Res->ok())
      continue;
    Measurement Base = measureStandard(P->root(), kVariants[2], Res.get(),
                                       Strategy::Strict, Reps);
    Measurement On =
        measureStandard(P->root(), Reuse, Res.get(), Strategy::Strict, Reps);
    if (On.Steps != Base.Steps) {
      std::fprintf(stderr, "FAIL: tail-reuse changed step count on %s\n",
                   WL.Name);
      std::exit(1);
    }
    W.write({WL.Name, Reuse.Name, strategyLabel(Strategy::Strict),
             On.Ms * 1e6, On.Steps, On.ArenaBytes});
    std::printf("%-14s resolved %8.3f ms   reuse %8.3f ms   %.2fx   "
                "arena %.2f -> %.2f MB\n",
                WL.Name, Base.Ms, On.Ms, Base.Ms / On.Ms,
                Base.ArenaBytes / 1048576.0, On.ArenaBytes / 1048576.0);
  }
  printRule();
  std::putchar('\n');
}

/// Bytecode VM: switch vs. token-threaded dispatch, unfused vs. fused
/// superinstructions (+ frame reuse). Every variant must agree with the
/// unfused switch baseline on answer AND step count — Cost accounting
/// makes fused programs report source-machine steps — before its timing
/// is recorded. Returns the interleaved fused-pipeline speedup on the fib
/// workload so CI can assert a floor on it.
double reportVM(JsonlWriter &W, bool Quick) {
  struct VMVariant {
    const char *Name;
    bool Fuse;
    bool Threaded;
    bool Reuse;
  };
  std::vector<VMVariant> Variants = {{"vm-switch", false, false, false}};
  if (vmThreadedDispatchAvailable())
    Variants.push_back({"vm-threaded", false, true, false});
  Variants.push_back({"vm-fused", true, true, true});

  std::printf("A6b — VM dispatch & superinstruction fusion\n");
  printRule();
  std::printf("%-14s %12s %12s %12s %9s\n", "workload", "switch ms",
              "threaded ms", "fused ms", "speedup");
  printRule();

  double FibSpeedup = 0;
  bool First = true;
  for (const Workload &WL : deepWorkloads(Quick)) {
    auto P = parseOrDie(WL.Src);
    DiagnosticSink Diags;
    CompileOptions RawCO;
    RawCO.Fuse = false;
    auto Raw = compileProgram(P->root(), Diags, RawCO);
    auto Fused = compileProgram(P->root(), Diags);
    if (!Raw || !Fused) {
      std::fprintf(stderr, "compile failed for %s\n", WL.Name);
      std::exit(1);
    }

    RunOptions RefOpts;
    RefOpts.VMThreaded = false;
    RefOpts.ReuseTailFrames = false;
    RunResult Ref = runCompiled(*Raw, nullptr, RefOpts);

    double Cells[3] = {0, 0, 0};
    size_t Cell = 0;
    for (const VMVariant &V : Variants) {
      const CompiledProgram &Prog = V.Fuse ? *Fused : *Raw;
      RunOptions Opts;
      Opts.VMThreaded = V.Threaded;
      Opts.ReuseTailFrames = V.Reuse;
      RunResult R = runCompiled(Prog, nullptr, Opts);
      if (R.Ok != Ref.Ok || R.ValueText != Ref.ValueText ||
          R.Steps != Ref.Steps) {
        std::fprintf(stderr,
                     "FAIL: %s disagrees with the baseline on %s "
                     "(%s/%s, %llu vs %llu steps)\n",
                     V.Name, WL.Name, R.ValueText.c_str(),
                     Ref.ValueText.c_str(),
                     static_cast<unsigned long long>(R.Steps),
                     static_cast<unsigned long long>(Ref.Steps));
        std::exit(1);
      }
      double Ms =
          medianMs([&] { runCompiled(Prog, nullptr, Opts); }, Quick ? 3 : 9);
      W.write({WL.Name, V.Name, "strict", Ms * 1e6, R.Steps, R.ArenaBytes});
      Cells[Cell++] = Ms;
    }

    // Interleaved ratio, robust against clock drift: median of
    // (switch-baseline time / fused-pipeline time).
    RunOptions FusedOpts;
    FusedOpts.VMThreaded = true;
    FusedOpts.ReuseTailFrames = true;
    double Speedup = medianRatio(
        [&] { runCompiled(*Fused, nullptr, FusedOpts); },
        [&] { runCompiled(*Raw, nullptr, RefOpts); }, Quick ? 9 : 11);
    if (First) {
      FibSpeedup = Speedup;
      First = false;
    }
    if (Variants.size() == 3)
      std::printf("%-14s %12.3f %12.3f %12.3f %8.2fx\n", WL.Name, Cells[0],
                  Cells[1], Cells[2], Speedup);
    else
      std::printf("%-14s %12.3f %12s %12.3f %8.2fx\n", WL.Name, Cells[0],
                  "-", Cells[1], Speedup);
  }
  printRule();
  std::printf("vm-switch = unfused portable switch loop; vm-threaded = "
              "unfused computed-goto;\nvm-fused = superinstructions + "
              "threaded dispatch + tail-call frame reuse.\nIdentical step "
              "counts everywhere: fused instructions advance the counter "
              "by their\nsource-step Cost.\n\n");
  return FibSpeedup;
}

/// Register tier: the same workloads through lowerToRegisters +
/// runRegisterProgram, switch and threaded dispatch. Lowering is 1:1 per
/// instruction, so every register run must agree with the unfused switch
/// baseline on answer AND step count before its timing is recorded.
/// Returns the interleaved vm-reg / vm-fused speedups for the fib, tak,
/// and down rows so CI can assert the tier pays for itself on at least
/// two of them (tak's curried closures keep its blocks non-leaf, so it is
/// allowed to sit at parity).
std::vector<double> reportRegisterVM(JsonlWriter &W, bool Quick) {
  struct RegVariant {
    const char *Name;
    bool Threaded;
  };
  std::vector<RegVariant> Variants = {{"vm-reg", false}};
  if (vmThreadedDispatchAvailable())
    Variants.push_back({"vm-reg-threaded", true});

  std::printf("A6c — register tier vs fused stack VM\n");
  printRule();
  std::printf("%-14s %12s %12s %12s %9s\n", "workload", "fused ms",
              "reg ms", "reg-thr ms", "speedup");
  printRule();

  std::vector<double> GateSpeedups;
  for (const Workload &WL : deepWorkloads(Quick)) {
    auto P = parseOrDie(WL.Src);
    DiagnosticSink Diags;
    CompileOptions RawCO;
    RawCO.Fuse = false;
    auto Raw = compileProgram(P->root(), Diags, RawCO);
    auto Fused = compileProgram(P->root(), Diags);
    if (!Raw || !Fused) {
      std::fprintf(stderr, "compile failed for %s\n", WL.Name);
      std::exit(1);
    }
    auto RP = lowerToRegisters(*Fused);
    if (!RP) {
      std::fprintf(stderr, "register lowering failed for %s\n", WL.Name);
      std::exit(1);
    }

    RunOptions RefOpts;
    RefOpts.VMThreaded = false;
    RefOpts.ReuseTailFrames = false;
    RunResult Ref = runCompiled(*Raw, nullptr, RefOpts);

    double Cells[2] = {0, 0};
    size_t Cell = 0;
    for (const RegVariant &V : Variants) {
      RunOptions Opts;
      Opts.VMThreaded = V.Threaded;
      Opts.ReuseTailFrames = true;
      RunResult R = runRegisterProgram(*RP, nullptr, Opts);
      if (R.Ok != Ref.Ok || R.ValueText != Ref.ValueText ||
          R.Steps != Ref.Steps) {
        std::fprintf(stderr,
                     "FAIL: %s disagrees with the baseline on %s "
                     "(%s/%s, %llu vs %llu steps)\n",
                     V.Name, WL.Name, R.ValueText.c_str(),
                     Ref.ValueText.c_str(),
                     static_cast<unsigned long long>(R.Steps),
                     static_cast<unsigned long long>(Ref.Steps));
        std::exit(1);
      }
      double Ms = medianMs([&] { runRegisterProgram(*RP, nullptr, Opts); },
                           Quick ? 3 : 9);
      W.write({WL.Name, V.Name, "strict", Ms * 1e6, R.Steps, R.ArenaBytes});
      Cells[Cell++] = Ms;
    }

    // Interleaved ratio: median of (fused-pipeline time / register time),
    // both under their production dispatcher.
    RunOptions FusedOpts;
    FusedOpts.VMThreaded = vmThreadedDispatchAvailable();
    FusedOpts.ReuseTailFrames = true;
    RunOptions RegOpts;
    RegOpts.VMThreaded = vmThreadedDispatchAvailable();
    RegOpts.ReuseTailFrames = true;
    double FusedMs = medianMs(
        [&] { runCompiled(*Fused, nullptr, FusedOpts); }, Quick ? 3 : 9);
    double Speedup = medianRatio(
        [&] { runRegisterProgram(*RP, nullptr, RegOpts); },
        [&] { runCompiled(*Fused, nullptr, FusedOpts); }, Quick ? 9 : 11);
    if (std::strncmp(WL.Name, "fib", 3) == 0 ||
        std::strncmp(WL.Name, "tak", 3) == 0 ||
        std::strncmp(WL.Name, "down", 4) == 0)
      GateSpeedups.push_back(Speedup);
    if (Variants.size() == 2)
      std::printf("%-14s %12.3f %12.3f %12.3f %8.2fx\n", WL.Name, FusedMs,
                  Cells[0], Cells[1], Speedup);
    else
      std::printf("%-14s %12.3f %12.3f %12s %8.2fx\n", WL.Name, FusedMs,
                  Cells[0], "-", Speedup);
  }
  printRule();
  std::printf("vm-reg = register windows, switch dispatch; vm-reg-threaded "
              "= computed-goto.\nLeaf blocks keep the parameter in r0 with "
              "no environment node per call;\nblocks with closures or "
              "probes keep the full chain, so monitors observe\nidentical "
              "environments. speedup = vm-fused / vm-reg-threaded, "
              "interleaved.\n\n");
  return GateSpeedups;
}

/// Native AOT tier: the same register programs compiled to C and run
/// through the trampoline driver. Answers and step counts must be
/// identical to the register interpreter (the native tier is a pure
/// implementation refinement) before any timing is recorded; compilation
/// happens once outside the timed region, the way a warm cache behaves.
/// Returns the interleaved vm-aot / vm-reg speedups for the fib, down, and
/// list rows so CI can assert the tier pays for itself on at least two of
/// them (tak and ack call through curried/non-leaf blocks, so they ride
/// the interpreter and sit at parity by construction).
std::vector<double> reportAotVM(JsonlWriter &W, bool Quick) {
  std::printf("A6d — native AOT tier vs register interpreter\n");
  printRule();
  if (!aotAvailable()) {
    std::printf("vm-aot unavailable (no C compiler); skipping\n");
    printRule();
    std::printf("\n");
    return {};
  }
  std::printf("%-14s %12s %12s %9s\n", "workload", "reg ms", "aot ms",
              "speedup");
  printRule();

  std::vector<double> GateSpeedups;
  for (const Workload &WL : deepWorkloads(Quick)) {
    auto P = parseOrDie(WL.Src);
    DiagnosticSink Diags;
    auto Fused = compileProgram(P->root(), Diags);
    if (!Fused) {
      std::fprintf(stderr, "compile failed for %s\n", WL.Name);
      std::exit(1);
    }
    auto RP = lowerToRegisters(*Fused);
    if (!RP) {
      std::fprintf(stderr, "register lowering failed for %s\n", WL.Name);
      std::exit(1);
    }
    std::string Why;
    auto Lib = aotLoad(*RP, /*CacheDir=*/"", &Why);
    if (!Lib) {
      std::fprintf(stderr, "aotLoad failed for %s: %s\n", WL.Name,
                   Why.c_str());
      std::exit(1);
    }

    RunOptions Opts;
    Opts.VMThreaded = vmThreadedDispatchAvailable();
    Opts.ReuseTailFrames = true;
    RunResult Ref = runRegisterProgram(*RP, nullptr, Opts);
    RunResult R = runAotProgram(*RP, *Lib, nullptr, Opts);
    if (R.Ok != Ref.Ok || R.ValueText != Ref.ValueText ||
        R.Steps != Ref.Steps) {
      std::fprintf(stderr,
                   "FAIL: vm-aot disagrees with vm-reg on %s "
                   "(%s/%s, %llu vs %llu steps)\n",
                   WL.Name, R.ValueText.c_str(), Ref.ValueText.c_str(),
                   static_cast<unsigned long long>(R.Steps),
                   static_cast<unsigned long long>(Ref.Steps));
      std::exit(1);
    }

    double RegMs = medianMs([&] { runRegisterProgram(*RP, nullptr, Opts); },
                            Quick ? 3 : 9);
    double AotMs = medianMs([&] { runAotProgram(*RP, *Lib, nullptr, Opts); },
                            Quick ? 3 : 9);
    W.write({WL.Name, "vm-aot", "strict", AotMs * 1e6, R.Steps,
             R.ArenaBytes});

    // Interleaved ratio: median of (register time / native time).
    double Speedup = medianRatio(
        [&] { runAotProgram(*RP, *Lib, nullptr, Opts); },
        [&] { runRegisterProgram(*RP, nullptr, Opts); }, Quick ? 9 : 11);
    if (std::strncmp(WL.Name, "fib", 3) == 0 ||
        std::strncmp(WL.Name, "down", 4) == 0 ||
        std::strncmp(WL.Name, "list", 4) == 0)
      GateSpeedups.push_back(Speedup);
    std::printf("%-14s %12.3f %12.3f %8.2fx\n", WL.Name, RegMs, AotMs,
                Speedup);
  }
  printRule();
  std::printf("vm-aot = eligible leaf blocks compiled to C (%s),\nrun from "
              "the trampoline driver; identical step counts, probe "
              "streams,\nand checkpoint coordinates — every governor pause "
              "fires in the\ninterpreter. speedup = vm-reg / vm-aot, "
              "interleaved.\n\n",
              aotCompilerId().c_str());
  return GateSpeedups;
}

//===----------------------------------------------------------------------===//
// Governor overhead
//===----------------------------------------------------------------------===//

/// The resource governor's fast path is one compare per machine step; its
/// slow path (deadline clock read, memory/depth checks) runs every
/// CheckInterval steps. This section measures an armed governor — every
/// limit set, all far too high to trip — against the unarmed default on
/// the same workloads, interleaved. Returns the median armed/unarmed
/// ratio across workloads so CI can assert a bound on it.
double reportGovernor(JsonlWriter &W, bool Quick) {
  std::printf("governor — armed (untripped limits) vs unarmed\n");
  printRule();

  RunOptions Armed;
  Armed.Limits.MaxSteps = UINT64_MAX / 2;
  Armed.Limits.DeadlineMs = 3600 * 1000;
  Armed.Limits.MaxArenaBytes = UINT64_MAX / 2;
  Armed.Limits.MaxDepth = UINT64_MAX / 2;

  std::vector<double> Ratios;
  for (const Workload &WL : deepWorkloads(Quick)) {
    auto P = parseOrDie(WL.Src);
    RunOptions Plain;
    double Ratio = medianRatio(
        [&] { evaluate(P->root(), Plain); },
        [&] { evaluate(P->root(), Armed); }, Quick ? 9 : 11);
    Ratios.push_back(Ratio);
    RunResult R = evaluate(P->root(), Armed);
    W.write({WL.Name, "governor-armed", "strict",
             /*NsPerOp=*/0, R.Steps, 0});
    std::printf("%-14s armed/unarmed %.4fx\n", WL.Name, Ratio);
  }
  printRule();
  std::sort(Ratios.begin(), Ratios.end());
  double Median = Ratios.empty() ? 1.0 : Ratios[Ratios.size() / 2];
  std::printf("median governor overhead: %+.2f%%\n\n", (Median - 1) * 100);
  return Median;
}

//===----------------------------------------------------------------------===//
// Checkpoint overhead
//===----------------------------------------------------------------------===//

/// Cost of arming periodic checkpointing (journaling off): the per-step
/// path gains one decrement in the governor, and every CheckpointEveryNSteps
/// transitions the live machine state is serialized into a discarded
/// Checkpoint. Interleaved against the plain run on the same workloads;
/// returns the median armed/plain ratio so CI can assert a bound
/// (--assert-checkpoint-overhead=PCT).
double reportCheckpoint(JsonlWriter &W, bool Quick) {
  std::printf("checkpoint — periodic (every 64k steps, discarded) vs off\n");
  printRule();

  RunOptions Armed;
  Armed.CheckpointEveryNSteps = 65536;
  Armed.CheckpointSink = [](const Checkpoint &CK) {
    benchmark::DoNotOptimize(CK.bytes().data());
  };

  std::vector<double> Ratios;
  for (const Workload &WL : deepWorkloads(Quick)) {
    auto P = parseOrDie(WL.Src);
    RunOptions Plain;
    double Ratio = medianRatio(
        [&] { evaluate(P->root(), Plain); },
        [&] { evaluate(P->root(), Armed); }, Quick ? 9 : 11);
    Ratios.push_back(Ratio);
    RunResult R = evaluate(P->root(), Armed);
    W.write({WL.Name, "checkpoint-armed", "strict",
             /*NsPerOp=*/0, R.Steps, 0});
    std::printf("%-14s armed/off %.4fx\n", WL.Name, Ratio);
  }
  printRule();
  std::sort(Ratios.begin(), Ratios.end());
  double Median = Ratios.empty() ? 1.0 : Ratios[Ratios.size() / 2];
  std::printf("median checkpoint overhead: %+.2f%%\n\n", (Median - 1) * 100);

  // Durable variant: the same cadence, but every checkpoint goes through
  // the hardened atomic-replace path (write temp, fsync, rename, fsync the
  // directory). This is what `--checkpoint-out` actually pays, so the same
  // overhead bound gates it; the fsyncs amortize across the 64k-step
  // window.
  std::printf(
      "checkpoint — durable (fsync-disciplined save, every 64k steps)\n");
  printRule();
  std::string CkPath = "bench_durable.ck";
  RunOptions Durable;
  Durable.CheckpointEveryNSteps = 65536;
  Durable.CheckpointSink = [&CkPath](const Checkpoint &CK) {
    std::string Err;
    if (!CK.saveFile(CkPath, Err, /*Fsync=*/true))
      std::fprintf(stderr, "bench: durable checkpoint failed: %s\n",
                   Err.c_str());
  };

  std::vector<double> DurableRatios;
  for (const Workload &WL : deepWorkloads(Quick)) {
    auto P = parseOrDie(WL.Src);
    RunOptions Plain;
    double Ratio = medianRatio(
        [&] { evaluate(P->root(), Plain); },
        [&] { evaluate(P->root(), Durable); }, Quick ? 9 : 11);
    DurableRatios.push_back(Ratio);
    RunResult R = evaluate(P->root(), Durable);
    W.write({WL.Name, "checkpoint-durable", "strict",
             /*NsPerOp=*/0, R.Steps, 0});
    std::printf("%-14s durable/off %.4fx\n", WL.Name, Ratio);
  }
  std::remove(CkPath.c_str());
  printRule();
  std::sort(DurableRatios.begin(), DurableRatios.end());
  double DurableMedian =
      DurableRatios.empty() ? 1.0 : DurableRatios[DurableRatios.size() / 2];
  std::printf("median durable checkpoint overhead: %+.2f%%\n\n",
              (DurableMedian - 1) * 100);

  // One bound covers both paths: the gate fails if either the in-memory
  // or the fsync-disciplined variant drifts.
  return Median > DurableMedian ? Median : DurableMedian;
}

} // namespace

static void reportTable() {
  auto Small = parseOrDie(SmallSrc);
  auto Large = parseOrDie(LargeSrc);
  auto List = parseOrDie(ListSrc);

  DiagnosticSink Diags;
  auto SmallVM = compileProgram(Small->root(), Diags);
  auto LargeVM = compileProgram(Large->root(), Diags);
  auto ListVM = compileProgram(List->root(), Diags);

  std::printf("A3 — evaluators (standard semantics, strict)\n");
  printRule();
  std::printf("%-14s %16s %14s %14s\n", "workload", "direct CPS ms",
              "CEK ms", "bytecode ms");
  printRule();

  double DirSmall =
      medianMs([&] { runDirect(Small->root(), nullptr, 100000); });
  double CekSmall = medianMs([&] { evaluate(Small->root()); });
  double VmSmall = medianMs([&] { runCompiled(*SmallVM); });
  std::printf("%-14s %16.3f %14.3f %14.3f\n", "fib 11", DirSmall, CekSmall,
              VmSmall);

  double CekLarge = medianMs([&] { evaluate(Large->root()); });
  double VmLarge = medianMs([&] { runCompiled(*LargeVM); });
  std::printf("%-14s %16s %14.3f %14.3f\n", "fib 20", "-", CekLarge,
              VmLarge);

  double CekList = medianMs([&] { evaluate(List->root()); });
  double VmList = medianMs([&] { runCompiled(*ListVM); });
  std::printf("%-14s %16s %14.3f %14.3f\n", "list sums", "-", CekList,
              VmList);
  printRule();
  std::printf("speedups on fib 20: bytecode is %.2fx the CEK machine\n\n",
              CekLarge / VmLarge);

  std::printf("A3b — evaluation strategies (CEK machine, fib 16)\n");
  printRule();
  auto Mid = parseOrDie("letrec fib = lambda n. if n < 2 then n else "
                        "fib (n - 1) + fib (n - 2) in fib 16");
  for (Strategy S :
       {Strategy::Strict, Strategy::CallByName, Strategy::CallByNeed}) {
    RunOptions Opts;
    Opts.Strat = S;
    double Ms = medianMs([&] { evaluate(Mid->root(), Opts); });
    std::printf("%-14s %10.3f ms\n", strategyName(S), Ms);
  }
  printRule();
  std::printf("expected shape: direct CPS slowest (std::function overhead);"
              "\nbytecode fastest; call-by-name pays re-evaluation, "
              "call-by-need memoizes.\n\n");
}

static void BM_DirectCPS(benchmark::State &State) {
  auto P = parseOrDie(SmallSrc);
  for (auto _ : State)
    benchmark::DoNotOptimize(runDirect(P->root(), nullptr, 100000));
}
BENCHMARK(BM_DirectCPS)->Unit(benchmark::kMillisecond);

static void BM_CEK(benchmark::State &State) {
  auto P = parseOrDie(LargeSrc);
  for (auto _ : State)
    benchmark::DoNotOptimize(evaluate(P->root()));
}
BENCHMARK(BM_CEK)->Unit(benchmark::kMillisecond);

static void BM_Bytecode(benchmark::State &State) {
  auto P = parseOrDie(LargeSrc);
  DiagnosticSink Diags;
  auto Prog = compileProgram(P->root(), Diags);
  for (auto _ : State)
    benchmark::DoNotOptimize(runCompiled(*Prog));
}
BENCHMARK(BM_Bytecode)->Unit(benchmark::kMillisecond);

static void BM_Strategy(benchmark::State &State) {
  auto P = parseOrDie("letrec fib = lambda n. if n < 2 then n else "
                      "fib (n - 1) + fib (n - 2) in fib 16");
  RunOptions Opts;
  Opts.Strat = static_cast<Strategy>(State.range(0));
  for (auto _ : State)
    benchmark::DoNotOptimize(evaluate(P->root(), Opts));
}
BENCHMARK(BM_Strategy)->Arg(0)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

int main(int argc, char **argv) {
  bool Quick = false;
  double MaxGovernorPct = -1;    // <0: report only, no assertion.
  double MinFusionSpeedup = -1;  // <0: report only, no assertion.
  double MinRegisterSpeedup = -1; // <0: report only, no assertion.
  double MinAotSpeedup = -1;     // <0: report only, no assertion.
  double MaxCheckpointPct = -1;  // <0: report only, no assertion.
  std::string JsonPath = "BENCH_machines.json";
  // Strip our flags before handing argv to google-benchmark.
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    if (std::strcmp(argv[I], "--quick") == 0)
      Quick = true;
    else if (std::strncmp(argv[I], "--json=", 7) == 0)
      JsonPath = argv[I] + 7;
    else if (std::strncmp(argv[I], "--assert-governor-overhead=", 27) == 0)
      MaxGovernorPct = std::atof(argv[I] + 27);
    else if (std::strncmp(argv[I], "--assert-vm-fusion-speedup=", 27) == 0)
      MinFusionSpeedup = std::atof(argv[I] + 27);
    else if (std::strncmp(argv[I], "--assert-vm-register-speedup=", 29) == 0)
      MinRegisterSpeedup = std::atof(argv[I] + 29);
    else if (std::strncmp(argv[I], "--assert-vm-aot-speedup=", 24) == 0)
      MinAotSpeedup = std::atof(argv[I] + 24);
    else if (std::strncmp(argv[I], "--assert-checkpoint-overhead=", 29) == 0)
      MaxCheckpointPct = std::atof(argv[I] + 29);
    else
      argv[Kept++] = argv[I];
  }
  argc = Kept;

  JsonlWriter W(JsonPath);
  reportLexical(W, Quick);
  reportTailReuse(W, Quick);
  double FusionSpeedup = reportVM(W, Quick);
  std::vector<double> RegSpeedups = reportRegisterVM(W, Quick);
  std::vector<double> AotSpeedups = reportAotVM(W, Quick);
  double GovMedian = reportGovernor(W, Quick);
  double CkMedian = reportCheckpoint(W, Quick);
  if (MaxCheckpointPct >= 0 && CkMedian > 1.0 + MaxCheckpointPct / 100.0) {
    std::fprintf(
        stderr, "FAIL: checkpoint overhead %.2f%% exceeds the %.2f%% bound\n",
        (CkMedian - 1) * 100, MaxCheckpointPct);
    return 1;
  }
  if (MaxGovernorPct >= 0 && GovMedian > 1.0 + MaxGovernorPct / 100.0) {
    std::fprintf(stderr,
                 "FAIL: governor overhead %.2f%% exceeds the %.2f%% bound\n",
                 (GovMedian - 1) * 100, MaxGovernorPct);
    return 1;
  }
  if (MinFusionSpeedup >= 0 && FusionSpeedup < MinFusionSpeedup) {
    std::fprintf(stderr,
                 "FAIL: vm-fused speedup %.2fx below the %.2fx floor\n",
                 FusionSpeedup, MinFusionSpeedup);
    return 1;
  }
  if (MinRegisterSpeedup >= 0) {
    // The register tier must clear the floor on at least two of the three
    // gate workloads (fib / tak / down); env-bound programs like tak may
    // sit at parity.
    int Cleared = 0;
    for (double S : RegSpeedups)
      if (S >= MinRegisterSpeedup)
        ++Cleared;
    if (Cleared < 2) {
      std::fprintf(stderr,
                   "FAIL: vm-reg cleared the %.2fx floor on %d of %zu gate "
                   "workloads (need 2)\n",
                   MinRegisterSpeedup, Cleared, RegSpeedups.size());
      return 1;
    }
  }
  if (MinAotSpeedup >= 0) {
    // Asserting the native tier's floor presumes a working C compiler; a
    // no-compiler environment must not silently pass the gate.
    if (AotSpeedups.empty()) {
      std::fprintf(stderr,
                   "FAIL: --assert-vm-aot-speedup set but the native tier "
                   "is unavailable in this environment\n");
      return 1;
    }
    // The native tier must clear the floor on at least two of the three
    // gate workloads (fib / down / list sums).
    int Cleared = 0;
    for (double S : AotSpeedups)
      if (S >= MinAotSpeedup)
        ++Cleared;
    if (Cleared < 2) {
      std::fprintf(stderr,
                   "FAIL: vm-aot cleared the %.2fx floor on %d of %zu gate "
                   "workloads (need 2)\n",
                   MinAotSpeedup, Cleared, AotSpeedups.size());
      return 1;
    }
  }
  if (Quick)
    return 0;
  reportTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
