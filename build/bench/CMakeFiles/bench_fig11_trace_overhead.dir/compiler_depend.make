# Empty compiler generated dependencies file for bench_fig11_trace_overhead.
# This may be replaced when dependencies are built.
