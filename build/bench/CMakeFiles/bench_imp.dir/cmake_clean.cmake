file(REMOVE_RECURSE
  "CMakeFiles/bench_imp.dir/bench_imp.cpp.o"
  "CMakeFiles/bench_imp.dir/bench_imp.cpp.o.d"
  "bench_imp"
  "bench_imp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_imp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
