# Empty dependencies file for bench_imp.
# This may be replaced when dependencies are built.
