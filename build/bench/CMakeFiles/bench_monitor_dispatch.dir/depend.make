# Empty dependencies file for bench_monitor_dispatch.
# This may be replaced when dependencies are built.
