file(REMOVE_RECURSE
  "CMakeFiles/bench_monitor_dispatch.dir/bench_monitor_dispatch.cpp.o"
  "CMakeFiles/bench_monitor_dispatch.dir/bench_monitor_dispatch.cpp.o.d"
  "bench_monitor_dispatch"
  "bench_monitor_dispatch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_monitor_dispatch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
