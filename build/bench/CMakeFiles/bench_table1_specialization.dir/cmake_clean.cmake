file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_specialization.dir/bench_table1_specialization.cpp.o"
  "CMakeFiles/bench_table1_specialization.dir/bench_table1_specialization.cpp.o.d"
  "bench_table1_specialization"
  "bench_table1_specialization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_specialization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
