file(REMOVE_RECURSE
  "CMakeFiles/bench_pe.dir/bench_pe.cpp.o"
  "CMakeFiles/bench_pe.dir/bench_pe.cpp.o.d"
  "bench_pe"
  "bench_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
