# Empty compiler generated dependencies file for bench_pe.
# This may be replaced when dependencies are built.
