# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lexer_test[1]_include.cmake")
include("/root/repo/build/tests/parser_test[1]_include.cmake")
include("/root/repo/build/tests/printer_test[1]_include.cmake")
include("/root/repo/build/tests/value_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/lazy_test[1]_include.cmake")
include("/root/repo/build/tests/direct_test[1]_include.cmake")
include("/root/repo/build/tests/annotator_test[1]_include.cmake")
include("/root/repo/build/tests/monitor_framework_test[1]_include.cmake")
include("/root/repo/build/tests/paper_examples_test[1]_include.cmake")
include("/root/repo/build/tests/toolbox_test[1]_include.cmake")
include("/root/repo/build/tests/debugger_test[1]_include.cmake")
include("/root/repo/build/tests/cascade_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/compiler_test[1]_include.cmake")
include("/root/repo/build/tests/pe_test[1]_include.cmake")
include("/root/repo/build/tests/imp_test[1]_include.cmake")
include("/root/repo/build/tests/extension_test[1]_include.cmake")
include("/root/repo/build/tests/programs_test[1]_include.cmake")
include("/root/repo/build/tests/cli_test[1]_include.cmake")
include("/root/repo/build/tests/imp_soundness_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/edge_test[1]_include.cmake")
include("/root/repo/build/tests/imp_expr_monitor_test[1]_include.cmake")
include("/root/repo/build/tests/prelude_test[1]_include.cmake")
