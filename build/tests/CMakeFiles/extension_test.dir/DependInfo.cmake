
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extension_test.cpp" "tests/CMakeFiles/extension_test.dir/extension_test.cpp.o" "gcc" "tests/CMakeFiles/extension_test.dir/extension_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/interp/CMakeFiles/monsem_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/monitors/CMakeFiles/monsem_toolbox.dir/DependInfo.cmake"
  "/root/repo/build/src/compile/CMakeFiles/monsem_compile.dir/DependInfo.cmake"
  "/root/repo/build/src/pe/CMakeFiles/monsem_pe.dir/DependInfo.cmake"
  "/root/repo/build/src/imp/CMakeFiles/monsem_imp.dir/DependInfo.cmake"
  "/root/repo/build/src/syntax/CMakeFiles/monsem_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/monsem_support.dir/DependInfo.cmake"
  "/root/repo/build/src/monitor/CMakeFiles/monsem_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/monsem_semantics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
