# Empty dependencies file for monitor_framework_test.
# This may be replaced when dependencies are built.
