file(REMOVE_RECURSE
  "CMakeFiles/monitor_framework_test.dir/monitor_framework_test.cpp.o"
  "CMakeFiles/monitor_framework_test.dir/monitor_framework_test.cpp.o.d"
  "monitor_framework_test"
  "monitor_framework_test.pdb"
  "monitor_framework_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monitor_framework_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
