# Empty compiler generated dependencies file for imp_soundness_test.
# This may be replaced when dependencies are built.
