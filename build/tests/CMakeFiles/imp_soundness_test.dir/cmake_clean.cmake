file(REMOVE_RECURSE
  "CMakeFiles/imp_soundness_test.dir/imp_soundness_test.cpp.o"
  "CMakeFiles/imp_soundness_test.dir/imp_soundness_test.cpp.o.d"
  "imp_soundness_test"
  "imp_soundness_test.pdb"
  "imp_soundness_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imp_soundness_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
