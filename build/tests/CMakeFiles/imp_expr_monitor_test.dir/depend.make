# Empty dependencies file for imp_expr_monitor_test.
# This may be replaced when dependencies are built.
