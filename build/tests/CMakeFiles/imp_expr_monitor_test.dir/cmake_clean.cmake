file(REMOVE_RECURSE
  "CMakeFiles/imp_expr_monitor_test.dir/imp_expr_monitor_test.cpp.o"
  "CMakeFiles/imp_expr_monitor_test.dir/imp_expr_monitor_test.cpp.o.d"
  "imp_expr_monitor_test"
  "imp_expr_monitor_test.pdb"
  "imp_expr_monitor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imp_expr_monitor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
