file(REMOVE_RECURSE
  "CMakeFiles/imp_test.dir/imp_test.cpp.o"
  "CMakeFiles/imp_test.dir/imp_test.cpp.o.d"
  "imp_test"
  "imp_test.pdb"
  "imp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
