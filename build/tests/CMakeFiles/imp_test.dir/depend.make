# Empty dependencies file for imp_test.
# This may be replaced when dependencies are built.
