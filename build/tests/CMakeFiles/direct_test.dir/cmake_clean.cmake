file(REMOVE_RECURSE
  "CMakeFiles/direct_test.dir/direct_test.cpp.o"
  "CMakeFiles/direct_test.dir/direct_test.cpp.o.d"
  "direct_test"
  "direct_test.pdb"
  "direct_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
