file(REMOVE_RECURSE
  "CMakeFiles/monsem.dir/monsem_cli.cpp.o"
  "CMakeFiles/monsem.dir/monsem_cli.cpp.o.d"
  "monsem"
  "monsem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
