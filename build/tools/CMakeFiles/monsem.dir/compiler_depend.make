# Empty compiler generated dependencies file for monsem.
# This may be replaced when dependencies are built.
