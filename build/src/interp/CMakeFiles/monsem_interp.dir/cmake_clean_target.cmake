file(REMOVE_RECURSE
  "libmonsem_interp.a"
)
