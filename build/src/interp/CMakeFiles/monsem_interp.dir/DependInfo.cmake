
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/interp/Direct.cpp" "src/interp/CMakeFiles/monsem_interp.dir/Direct.cpp.o" "gcc" "src/interp/CMakeFiles/monsem_interp.dir/Direct.cpp.o.d"
  "/root/repo/src/interp/Eval.cpp" "src/interp/CMakeFiles/monsem_interp.dir/Eval.cpp.o" "gcc" "src/interp/CMakeFiles/monsem_interp.dir/Eval.cpp.o.d"
  "/root/repo/src/interp/Machine.cpp" "src/interp/CMakeFiles/monsem_interp.dir/Machine.cpp.o" "gcc" "src/interp/CMakeFiles/monsem_interp.dir/Machine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/monitor/CMakeFiles/monsem_monitor.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/monsem_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/syntax/CMakeFiles/monsem_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/monsem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
