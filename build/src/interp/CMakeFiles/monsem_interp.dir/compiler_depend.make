# Empty compiler generated dependencies file for monsem_interp.
# This may be replaced when dependencies are built.
