file(REMOVE_RECURSE
  "CMakeFiles/monsem_interp.dir/Direct.cpp.o"
  "CMakeFiles/monsem_interp.dir/Direct.cpp.o.d"
  "CMakeFiles/monsem_interp.dir/Eval.cpp.o"
  "CMakeFiles/monsem_interp.dir/Eval.cpp.o.d"
  "CMakeFiles/monsem_interp.dir/Machine.cpp.o"
  "CMakeFiles/monsem_interp.dir/Machine.cpp.o.d"
  "libmonsem_interp.a"
  "libmonsem_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsem_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
