file(REMOVE_RECURSE
  "CMakeFiles/monsem_monitor.dir/Cascade.cpp.o"
  "CMakeFiles/monsem_monitor.dir/Cascade.cpp.o.d"
  "libmonsem_monitor.a"
  "libmonsem_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsem_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
