# Empty dependencies file for monsem_monitor.
# This may be replaced when dependencies are built.
