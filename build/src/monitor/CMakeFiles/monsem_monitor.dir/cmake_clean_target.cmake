file(REMOVE_RECURSE
  "libmonsem_monitor.a"
)
