file(REMOVE_RECURSE
  "CMakeFiles/monsem_toolbox.dir/Debugger.cpp.o"
  "CMakeFiles/monsem_toolbox.dir/Debugger.cpp.o.d"
  "CMakeFiles/monsem_toolbox.dir/Demon.cpp.o"
  "CMakeFiles/monsem_toolbox.dir/Demon.cpp.o.d"
  "CMakeFiles/monsem_toolbox.dir/Tracer.cpp.o"
  "CMakeFiles/monsem_toolbox.dir/Tracer.cpp.o.d"
  "libmonsem_toolbox.a"
  "libmonsem_toolbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsem_toolbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
