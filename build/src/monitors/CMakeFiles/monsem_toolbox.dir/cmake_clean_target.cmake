file(REMOVE_RECURSE
  "libmonsem_toolbox.a"
)
