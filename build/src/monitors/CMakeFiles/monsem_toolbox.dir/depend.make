# Empty dependencies file for monsem_toolbox.
# This may be replaced when dependencies are built.
