# Empty compiler generated dependencies file for monsem_compile.
# This may be replaced when dependencies are built.
