file(REMOVE_RECURSE
  "libmonsem_compile.a"
)
