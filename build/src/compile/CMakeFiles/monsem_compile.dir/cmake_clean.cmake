file(REMOVE_RECURSE
  "CMakeFiles/monsem_compile.dir/Compiler.cpp.o"
  "CMakeFiles/monsem_compile.dir/Compiler.cpp.o.d"
  "CMakeFiles/monsem_compile.dir/VM.cpp.o"
  "CMakeFiles/monsem_compile.dir/VM.cpp.o.d"
  "libmonsem_compile.a"
  "libmonsem_compile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsem_compile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
