file(REMOVE_RECURSE
  "libmonsem_support.a"
)
