file(REMOVE_RECURSE
  "CMakeFiles/monsem_support.dir/Arena.cpp.o"
  "CMakeFiles/monsem_support.dir/Arena.cpp.o.d"
  "CMakeFiles/monsem_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/monsem_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/monsem_support.dir/OutChan.cpp.o"
  "CMakeFiles/monsem_support.dir/OutChan.cpp.o.d"
  "CMakeFiles/monsem_support.dir/StrUtils.cpp.o"
  "CMakeFiles/monsem_support.dir/StrUtils.cpp.o.d"
  "CMakeFiles/monsem_support.dir/Symbol.cpp.o"
  "CMakeFiles/monsem_support.dir/Symbol.cpp.o.d"
  "libmonsem_support.a"
  "libmonsem_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsem_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
