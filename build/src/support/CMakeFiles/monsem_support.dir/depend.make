# Empty dependencies file for monsem_support.
# This may be replaced when dependencies are built.
