file(REMOVE_RECURSE
  "CMakeFiles/monsem_imp.dir/ImpAst.cpp.o"
  "CMakeFiles/monsem_imp.dir/ImpAst.cpp.o.d"
  "CMakeFiles/monsem_imp.dir/ImpMachine.cpp.o"
  "CMakeFiles/monsem_imp.dir/ImpMachine.cpp.o.d"
  "CMakeFiles/monsem_imp.dir/ImpMonitor.cpp.o"
  "CMakeFiles/monsem_imp.dir/ImpMonitor.cpp.o.d"
  "CMakeFiles/monsem_imp.dir/ImpParser.cpp.o"
  "CMakeFiles/monsem_imp.dir/ImpParser.cpp.o.d"
  "libmonsem_imp.a"
  "libmonsem_imp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsem_imp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
