file(REMOVE_RECURSE
  "libmonsem_imp.a"
)
