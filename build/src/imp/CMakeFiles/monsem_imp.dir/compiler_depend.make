# Empty compiler generated dependencies file for monsem_imp.
# This may be replaced when dependencies are built.
