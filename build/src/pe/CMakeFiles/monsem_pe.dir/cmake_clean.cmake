file(REMOVE_RECURSE
  "CMakeFiles/monsem_pe.dir/PartialEval.cpp.o"
  "CMakeFiles/monsem_pe.dir/PartialEval.cpp.o.d"
  "libmonsem_pe.a"
  "libmonsem_pe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsem_pe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
