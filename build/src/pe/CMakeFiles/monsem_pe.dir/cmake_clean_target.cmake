file(REMOVE_RECURSE
  "libmonsem_pe.a"
)
