# Empty compiler generated dependencies file for monsem_pe.
# This may be replaced when dependencies are built.
