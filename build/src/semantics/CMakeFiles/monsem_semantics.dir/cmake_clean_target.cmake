file(REMOVE_RECURSE
  "libmonsem_semantics.a"
)
