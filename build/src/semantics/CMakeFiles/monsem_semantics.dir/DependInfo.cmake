
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/semantics/Answer.cpp" "src/semantics/CMakeFiles/monsem_semantics.dir/Answer.cpp.o" "gcc" "src/semantics/CMakeFiles/monsem_semantics.dir/Answer.cpp.o.d"
  "/root/repo/src/semantics/Primitives.cpp" "src/semantics/CMakeFiles/monsem_semantics.dir/Primitives.cpp.o" "gcc" "src/semantics/CMakeFiles/monsem_semantics.dir/Primitives.cpp.o.d"
  "/root/repo/src/semantics/Value.cpp" "src/semantics/CMakeFiles/monsem_semantics.dir/Value.cpp.o" "gcc" "src/semantics/CMakeFiles/monsem_semantics.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/syntax/CMakeFiles/monsem_syntax.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/monsem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
