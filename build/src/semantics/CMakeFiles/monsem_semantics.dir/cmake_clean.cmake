file(REMOVE_RECURSE
  "CMakeFiles/monsem_semantics.dir/Answer.cpp.o"
  "CMakeFiles/monsem_semantics.dir/Answer.cpp.o.d"
  "CMakeFiles/monsem_semantics.dir/Primitives.cpp.o"
  "CMakeFiles/monsem_semantics.dir/Primitives.cpp.o.d"
  "CMakeFiles/monsem_semantics.dir/Value.cpp.o"
  "CMakeFiles/monsem_semantics.dir/Value.cpp.o.d"
  "libmonsem_semantics.a"
  "libmonsem_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsem_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
