# Empty compiler generated dependencies file for monsem_semantics.
# This may be replaced when dependencies are built.
