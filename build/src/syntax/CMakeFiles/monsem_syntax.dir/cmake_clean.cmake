file(REMOVE_RECURSE
  "CMakeFiles/monsem_syntax.dir/Annotator.cpp.o"
  "CMakeFiles/monsem_syntax.dir/Annotator.cpp.o.d"
  "CMakeFiles/monsem_syntax.dir/Ast.cpp.o"
  "CMakeFiles/monsem_syntax.dir/Ast.cpp.o.d"
  "CMakeFiles/monsem_syntax.dir/Lexer.cpp.o"
  "CMakeFiles/monsem_syntax.dir/Lexer.cpp.o.d"
  "CMakeFiles/monsem_syntax.dir/Parser.cpp.o"
  "CMakeFiles/monsem_syntax.dir/Parser.cpp.o.d"
  "CMakeFiles/monsem_syntax.dir/Prelude.cpp.o"
  "CMakeFiles/monsem_syntax.dir/Prelude.cpp.o.d"
  "CMakeFiles/monsem_syntax.dir/Printer.cpp.o"
  "CMakeFiles/monsem_syntax.dir/Printer.cpp.o.d"
  "libmonsem_syntax.a"
  "libmonsem_syntax.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/monsem_syntax.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
