
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/syntax/Annotator.cpp" "src/syntax/CMakeFiles/monsem_syntax.dir/Annotator.cpp.o" "gcc" "src/syntax/CMakeFiles/monsem_syntax.dir/Annotator.cpp.o.d"
  "/root/repo/src/syntax/Ast.cpp" "src/syntax/CMakeFiles/monsem_syntax.dir/Ast.cpp.o" "gcc" "src/syntax/CMakeFiles/monsem_syntax.dir/Ast.cpp.o.d"
  "/root/repo/src/syntax/Lexer.cpp" "src/syntax/CMakeFiles/monsem_syntax.dir/Lexer.cpp.o" "gcc" "src/syntax/CMakeFiles/monsem_syntax.dir/Lexer.cpp.o.d"
  "/root/repo/src/syntax/Parser.cpp" "src/syntax/CMakeFiles/monsem_syntax.dir/Parser.cpp.o" "gcc" "src/syntax/CMakeFiles/monsem_syntax.dir/Parser.cpp.o.d"
  "/root/repo/src/syntax/Prelude.cpp" "src/syntax/CMakeFiles/monsem_syntax.dir/Prelude.cpp.o" "gcc" "src/syntax/CMakeFiles/monsem_syntax.dir/Prelude.cpp.o.d"
  "/root/repo/src/syntax/Printer.cpp" "src/syntax/CMakeFiles/monsem_syntax.dir/Printer.cpp.o" "gcc" "src/syntax/CMakeFiles/monsem_syntax.dir/Printer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/monsem_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
