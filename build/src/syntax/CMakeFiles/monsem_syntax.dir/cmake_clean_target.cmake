file(REMOVE_RECURSE
  "libmonsem_syntax.a"
)
