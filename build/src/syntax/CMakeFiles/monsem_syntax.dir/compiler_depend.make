# Empty compiler generated dependencies file for monsem_syntax.
# This may be replaced when dependencies are built.
