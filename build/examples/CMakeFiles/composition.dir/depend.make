# Empty dependencies file for composition.
# This may be replaced when dependencies are built.
