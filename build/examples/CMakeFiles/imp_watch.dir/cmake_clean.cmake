file(REMOVE_RECURSE
  "CMakeFiles/imp_watch.dir/imp_watch.cpp.o"
  "CMakeFiles/imp_watch.dir/imp_watch.cpp.o.d"
  "imp_watch"
  "imp_watch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/imp_watch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
