# Empty dependencies file for imp_watch.
# This may be replaced when dependencies are built.
