# Empty compiler generated dependencies file for sort_demon.
# This may be replaced when dependencies are built.
