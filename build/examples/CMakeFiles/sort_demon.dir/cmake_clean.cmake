file(REMOVE_RECURSE
  "CMakeFiles/sort_demon.dir/sort_demon.cpp.o"
  "CMakeFiles/sort_demon.dir/sort_demon.cpp.o.d"
  "sort_demon"
  "sort_demon.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_demon.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
