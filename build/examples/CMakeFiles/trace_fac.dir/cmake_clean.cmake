file(REMOVE_RECURSE
  "CMakeFiles/trace_fac.dir/trace_fac.cpp.o"
  "CMakeFiles/trace_fac.dir/trace_fac.cpp.o.d"
  "trace_fac"
  "trace_fac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_fac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
