# Empty compiler generated dependencies file for trace_fac.
# This may be replaced when dependencies are built.
