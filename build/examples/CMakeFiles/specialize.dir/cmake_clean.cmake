file(REMOVE_RECURSE
  "CMakeFiles/specialize.dir/specialize.cpp.o"
  "CMakeFiles/specialize.dir/specialize.cpp.o.d"
  "specialize"
  "specialize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/specialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
