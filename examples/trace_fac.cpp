//===- examples/trace_fac.cpp - The Section 8 tracer session ----------------===//
//
// Reproduces the paper's fancy-tracer example: fac 3 with mul, traced live,
// and composed with the call profiler via the Section 9.2 `&` operator:
//
//     evaluate (profile & trace & strict) prog
//
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "monitors/Tracer.h"

#include <iostream>

using namespace monsem;

int main() {
  const char *Source =
      "letrec mul = lambda x. lambda y. {mul(x, y)}: {mul}:(x*y) in "
      "letrec fac = lambda x. {fac(x)}: {fac}: if (x=0) then 1 else "
      "mul x (fac (x-1)) in fac 3";

  auto Program = ParsedProgram::parse(Source);
  if (!Program->ok()) {
    std::cerr << Program->diags().str() << '\n';
    return 1;
  }

  CallProfiler Profiler;
  Tracer Trace(&std::cout); // Live echo of each trace line.

  std::cout << "--- trace of fac 3 (Fig. 7) ---\n";
  RunResult R = evaluate(Profiler & Trace & kStrict, Program->root());
  std::cout << "--- end of trace ---\n\n";

  if (!R.Ok) {
    std::cerr << R.Error << '\n';
    return 1;
  }
  std::cout << "answer: " << R.ValueText << '\n';
  std::cout << "profiler (Fig. 6 example):   "
            << R.FinalStates[0]->str() << '\n';
  std::cout << "trace lines recorded:        "
            << Tracer::state(*R.FinalStates[1]).Chan.numLines() << '\n';
  return 0;
}
