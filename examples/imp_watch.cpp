//===- examples/imp_watch.cpp - Imperative module (Section 9.2) -------------===//
//
// Euclid's algorithm in the imperative language, monitored by a
// Magpie-style watchpoint demon on `a`, a statement profiler, and the
// command tracer — three monitors composed over one run.
//
//===----------------------------------------------------------------------===//

#include "imp/ImpMachine.h"
#include "imp/ImpMonitors.h"
#include "imp/ImpParser.h"

#include <iostream>

using namespace monsem;

int main() {
  const char *Source =
      "a := 252; b := 105; "
      "while a <> b do "
      "  {watch:step}: {profile:step}: "
      "  if a > b then a := a - b else b := b - a end "
      "end; "
      "print a";

  ImpContext Ctx;
  DiagnosticSink Diags;
  const Cmd *Program = parseImpProgram(Ctx, Source, Diags);
  if (!Program) {
    std::cerr << Diags.str() << '\n';
    return 1;
  }
  std::cout << "program: " << printCmd(Program) << "\n\n";

  ImpWatchMonitor Watch("a");
  ImpStmtProfiler Prof;
  ImpCascade C;
  C.use(Watch).use(Prof);

  ImpRunResult R = runImp(C, Program);
  if (!R.Ok) {
    std::cerr << R.Error << '\n';
    return 1;
  }

  std::cout << "output:";
  for (const std::string &Line : R.Output)
    std::cout << ' ' << Line;
  std::cout << "\nfinal store:";
  for (const auto &[Name, Val] : R.Store)
    std::cout << ' ' << Name << '=' << Val;
  std::cout << "\n\nwatchpoint log for a:\n"
            << R.FinalStates[0]->str();
  std::cout << "\nstatement profile: " << R.FinalStates[1]->str() << '\n';
  return 0;
}
