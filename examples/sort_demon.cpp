//===- examples/sort_demon.cpp - The Section 8 demon example ----------------===//
//
// The unsorted-list demon (Fig. 8) watching the inclist pipeline. The demon
// flags every labeled program point whose value is an unsorted list; the
// paper's expected final state is sigma = {l1, l3}.
//
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"
#include "monitors/Collecting.h"
#include "monitors/Demon.h"

#include <iostream>

using namespace monsem;

int main() {
  const char *Source =
      "letrec inclist = lambda l. lambda acc. if (l = []) then acc else "
      "inclist (tl l) (((hd l) + 1) : acc) in "
      "letrec l1 = {l1}:(inclist [1, 10, 100] []) in "
      "letrec l2 = {l2}:(inclist l1 []) in "
      "letrec l3 = {l3}:(inclist l2 []) in l3";

  auto Program = ParsedProgram::parse(Source);
  if (!Program->ok()) {
    std::cerr << Program->diags().str() << '\n';
    return 1;
  }

  // The demon records unsorted values; a collecting monitor (Fig. 9,
  // qualified so the syntaxes stay disjoint) cannot run here unqualified —
  // both accept bare labels — so we run the demon alone first...
  Demon D = Demon::unsortedLists();
  Cascade C;
  C.use(D);
  RunResult R = evaluate(C, Program->root());
  if (!R.Ok) {
    std::cerr << R.Error << '\n';
    return 1;
  }
  std::cout << "final value l3 = " << R.ValueText << '\n';
  std::cout << "demon state (points with unsorted lists): "
            << R.FinalStates[0]->str() << "   -- paper: {l1, l3}\n";

  // ...and demonstrate the Section 6 disjointness check: composing the
  // demon with the collecting monitor on the same bare labels is rejected.
  CollectingMonitor Coll;
  Cascade Bad;
  Bad.use(D).use(Coll);
  RunResult Rejected = evaluate(Bad, Program->root());
  std::cout << "\ncomposing demon & collecting monitor on the same labels:\n"
            << "  " << Rejected.Error << '\n';
  return 0;
}
