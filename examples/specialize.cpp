//===- examples/specialize.cpp - The Fig. 10 specialization pipeline --------===//
//
// Walks the paper's three levels of specialization on a traced factorial:
//
//   level 1: monitored interpreter (monitor fixed: static vs dynamic
//            dispatch is benchmarked in bench/),
//   level 2: compile the annotated program to instrumented bytecode,
//   level 3: partially evaluate a program with respect to partial input.
//
//===----------------------------------------------------------------------===//

#include "compile/Compiler.h"
#include "compile/VM.h"
#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "pe/PartialEval.h"
#include "syntax/Printer.h"

#include <iostream>

using namespace monsem;

int main() {
  const char *Source =
      "letrec fac = lambda x. {fac}: if x = 0 then 1 else "
      "x * fac (x - 1) in fac 8";
  auto Program = ParsedProgram::parse(Source);
  if (!Program->ok()) {
    std::cerr << Program->diags().str() << '\n';
    return 1;
  }

  CallProfiler Prof;
  Cascade C;
  C.use(Prof);

  // Level 1: the monitored interpreter.
  RunResult Interp = evaluate(C, Program->root());
  std::cout << "monitored interpreter: " << Interp.ValueText << " in "
            << Interp.Steps << " steps; profiler "
            << Interp.FinalStates[0]->str() << "\n\n";

  // Level 2: the instrumented program (bytecode with probes compiled in).
  DiagnosticSink Diags;
  auto Compiled = compileProgram(Program->root(), Diags);
  if (!Compiled) {
    std::cerr << Diags.str() << '\n';
    return 1;
  }
  std::cout << "instrumented bytecode (" << Compiled->numInstructions()
            << " instructions, " << Compiled->Probes.size()
            << " probe sites):\n"
            << Compiled->disassemble() << '\n';
  RunResult VM = evaluateCompiled(C, Program->root());
  std::cout << "instrumented program:  " << VM.ValueText << " in "
            << VM.Steps << " instructions; profiler "
            << VM.FinalStates[0]->str() << "\n\n";

  // Level 3: specialize `power` with respect to a static exponent.
  const char *Power = "letrec power = lambda b e. if e = 0 then 1 else "
                      "b * power b (e - 1) in power";
  auto PowerProg = ParsedProgram::parse(Power);
  AstContext ArgCtx, Out;
  std::vector<const Expr *> Static; // power applied as: power b 6.
  PEResult PR = specializeApply(Out, PowerProg->root(), {}, 2);
  // Specialize the *second* argument by wrapping: lambda b. power b 6.
  const char *Power6 = "lambda b. letrec power = lambda bb e. "
                       "if e = 0 then 1 else bb * power bb (e - 1) "
                       "in power b 6";
  auto P6 = ParsedProgram::parse(Power6);
  AstContext Out6;
  PEResult R6 = partialEvaluate(Out6, P6->root());
  std::cout << "power specialized to exponent 6 (level 3):\n  "
            << printExpr(R6.Residual) << '\n';
  AstContext AppCtx;
  const Expr *App =
      AppCtx.mkApp(cloneExpr(AppCtx, R6.Residual), AppCtx.mkInt(2));
  std::cout << "residual applied to 2: " << evaluate(App).ValueText
            << "  (unfolds: " << R6.Unfolds << ")\n";
  (void)PR;
  return 0;
}
