//===- examples/quickstart.cpp - Five-minute tour ---------------------------===//
//
// Parse an L_lambda program, run its standard semantics, then monitor it:
// ask the "suitably engineered environment" (the Annotator) to instrument
// every function, attach the call profiler, and read the monitor state.
//
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"
#include "monitors/Profiler.h"
#include "syntax/Annotator.h"
#include "syntax/Printer.h"

#include <iostream>

using namespace monsem;

int main() {
  const char *Source =
      "letrec fib = lambda n. if n < 2 then n else "
      "fib (n - 1) + fib (n - 2) in fib 10";

  // 1. Parse.
  auto Program = ParsedProgram::parse(Source);
  if (!Program->ok()) {
    std::cerr << Program->diags().str() << '\n';
    return 1;
  }
  std::cout << "program:  " << printExpr(Program->root()) << "\n\n";

  // 2. Standard semantics.
  RunResult Std = evaluate(Program->root());
  std::cout << "standard semantics answer: " << Std.ValueText << " ("
            << Std.Steps << " machine steps)\n\n";

  // 3. Monitoring semantics: instrument every letrec function with a bare
  //    `{f}` label and profile the run.
  const Expr *Annotated =
      annotateFunctionBodies(Program->context(), Program->root(), {});
  std::cout << "annotated: " << printExpr(Annotated) << "\n\n";

  CallProfiler Profiler;
  Cascade C;
  C.use(Profiler);
  RunResult Mon = evaluate(C, Annotated);

  std::cout << "monitored answer:          " << Mon.ValueText
            << "   (identical by Theorem 7.7)\n";
  std::cout << "profiler state (CEnv):     " << Mon.FinalStates[0]->str()
            << '\n';
  return 0;
}
