//===- examples/composition.cpp - Monitor composition showcase --------------===//
//
// Section 6 in action: five monitors cascaded over one run of naive
// Fibonacci — call profiler, cost profiler, call graph, flight recorder,
// and a custom inline "max recursion depth" monitor (the recipe from
// docs/WRITING_MONITORS.md). One execution, five independent analyses, and
// the answer provably unchanged.
//
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"
#include "monitors/CallGraph.h"
#include "monitors/CostProfiler.h"
#include "monitors/FlightRecorder.h"
#include "monitors/Profiler.h"
#include "syntax/Annotator.h"

#include <iostream>

using namespace monsem;

namespace {

class DepthState : public MonitorState {
public:
  int Live = 0;
  int MaxDepth = 0;
  std::string str() const override {
    return "max depth " + std::to_string(MaxDepth);
  }
};

class DepthMonitor : public Monitor {
public:
  std::string_view name() const override { return "depth"; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<DepthState>();
  }
  void pre(const MonitorEvent &, MonitorState &S) const override {
    auto &D = static_cast<DepthState &>(S);
    D.MaxDepth = std::max(D.MaxDepth, ++D.Live);
  }
  void post(const MonitorEvent &, Value, MonitorState &S) const override {
    --static_cast<DepthState &>(S).Live;
  }
};

} // namespace

int main() {
  auto P = ParsedProgram::parse(
      "letrec fib = lambda n. if n < 2 then n else "
      "fib (n - 1) + fib (n - 2) in fib 12");
  if (!P->ok()) {
    std::cerr << P->diags().str() << '\n';
    return 1;
  }

  // One qualified annotation per monitor, inserted mechanically.
  const Expr *Prog = P->root();
  for (const char *Qual :
       {"profile", "cost", "callgraph", "record", "depth"}) {
    AnnotateOptions AO;
    AO.Qualifier = Symbol::intern(Qual);
    Prog = annotateFunctionBodies(P->context(), Prog, {}, AO);
  }

  CallProfiler Prof;
  CostProfiler Cost;
  CallGraphMonitor Graph;
  FlightRecorder Rec(6);
  DepthMonitor Depth;
  Cascade C = cascadeOf({&Prof, &Cost, &Graph, &Rec, &Depth});

  RunResult Std = evaluate(P->root());
  RunResult R = evaluate(C, Prog);
  if (!R.Ok) {
    std::cerr << R.Error << '\n';
    return 1;
  }

  std::cout << "fib 12 = " << R.ValueText << "  (standard semantics: "
            << Std.ValueText << " — equal by Theorem 7.7)\n\n";
  for (unsigned I = 0; I < C.size(); ++I)
    std::cout << C.monitor(I).name() << ":\n  " << R.FinalStates[I]->str()
              << "\n";
  return 0;
}
