//===- examples/debug_session.cpp - dbx-style debugging (Section 9.2) ------===//
//
// A scripted interactive-debugger session over fac 4: stop at the first
// event, inspect locals, set a breakpoint, continue, print, backtrace.
// Replace the script with `Debugger Dbg(std::cin, std::cout);` for a live
// session — the monitor is identical.
//
//===----------------------------------------------------------------------===//

#include "interp/Eval.h"
#include "monitors/Debugger.h"
#include "monitors/Profiler.h"

#include <iostream>

using namespace monsem;

int main() {
  const char *Source =
      "letrec mul = lambda x. lambda y. {debug:mul(x, y)}: x * y in "
      "letrec fac = lambda x. {debug:fac(x)}: {profile:fac}: "
      "if x = 0 then 1 else mul x (fac (x - 1)) in fac 4";

  auto Program = ParsedProgram::parse(Source);
  if (!Program->ok()) {
    std::cerr << Program->diags().str() << '\n';
    return 1;
  }

  // The command script a user might type at the (dbx) prompt.
  Debugger Dbg({
      "print x",  // Inspect the argument at the first stop.
      "locals",   // What is in scope?
      "break mul", // Stop when mul's body runs.
      "continue",
      "where",    // Backtrace of monitored calls.
      "monitors", // Observe the inner profiler's state (Section 6).
      "quit",
  }, &std::cout);
  CallProfiler Prof;

  std::cout << "--- scripted debug session over fac 4 ---\n";
  RunResult R = evaluate(Prof & Dbg & kStrict, Program->root());
  std::cout << "--- session end ---\n\n";

  if (!R.Ok) {
    std::cerr << R.Error << '\n';
    return 1;
  }
  std::cout << "answer: " << R.ValueText
            << "  (debugging cannot change it: Theorem 7.7)\n";
  std::cout << "profiler: " << R.FinalStates[0]->str() << '\n';
  return 0;
}
