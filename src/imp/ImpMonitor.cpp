//===- imp/ImpMonitor.cpp --------------------------------------------------===//

#include "imp/ImpMonitor.h"

#include <algorithm>

using namespace monsem;

ImpMonitor::~ImpMonitor() = default;

std::string ImpStoreView::str() const {
  std::vector<std::pair<std::string, std::string>> Entries;
  for (const auto &[Name, Val] : S)
    Entries.emplace_back(std::string(Name.str()), toDisplayString(Val));
  std::sort(Entries.begin(), Entries.end());
  std::string Out = "[";
  for (size_t I = 0; I < Entries.size(); ++I) {
    if (I != 0)
      Out += ", ";
    Out += Entries[I].first + " = " + Entries[I].second;
  }
  return Out + "]";
}

int ImpCascade::resolve(const Annotation &Ann, DiagnosticSink *Diags) const {
  if (Ann.Qual) {
    for (unsigned I = 0; I < Monitors.size(); ++I)
      if (Monitors[I]->name() == Ann.Qual.str())
        return static_cast<int>(I);
    return -1;
  }
  int Found = -1;
  for (unsigned I = 0; I < Monitors.size(); ++I) {
    if (!Monitors[I]->accepts(Ann))
      continue;
    if (Found >= 0) {
      if (Diags)
        Diags->error(Ann.Loc, "annotation " + Ann.text() +
                                  " is claimed by two monitors");
      return -2;
    }
    Found = static_cast<int>(I);
  }
  return Found;
}

bool ImpCascade::validateFor(const Cmd *Program, DiagnosticSink &Diags) const {
  std::vector<const Annotation *> Anns;
  collectCmdAnnotations(Program, Anns);
  bool Ok = true;
  for (const Annotation *Ann : Anns)
    if (resolve(*Ann, &Diags) == -2)
      Ok = false;
  return Ok;
}

ImpRuntimeCascade::ImpRuntimeCascade(const ImpCascade &C,
                                     FaultPolicy DefaultPolicy,
                                     unsigned RetryBudget)
    : C(C) {
  for (unsigned I = 0; I < C.size(); ++I)
    States.push_back(C.monitor(I).initialState());
  Iso.configure(C.size(), DefaultPolicy, RetryBudget);
  for (unsigned I = 0; I < C.size(); ++I)
    if (auto P = C.faultPolicy(I))
      Iso.setPolicy(I, *P);
}

int ImpRuntimeCascade::resolveCached(const Annotation &Ann) {
  auto It = Cache.find(&Ann);
  if (It != Cache.end())
    return It->second;
  int Idx = C.resolve(Ann);
  if (Idx == -2)
    Idx = -1;
  Cache.emplace(&Ann, Idx);
  return Idx;
}

void ImpRuntimeCascade::pre(const Annotation &Ann, const Cmd &Cm,
                            const ImpStore &S, uint64_t Step) {
  int Idx = resolveCached(Ann);
  if (Idx < 0)
    return;
  ImpMonitorEvent Ev{Ann, Cm, ImpStoreView(S), Step};
  Iso.guard(static_cast<unsigned>(Idx), C.monitor(Idx).name(), Ann.text(),
            /*InPost=*/false, Step,
            [&] { C.monitor(Idx).pre(Ev, *States[Idx]); });
}

void ImpRuntimeCascade::post(const Annotation &Ann, const Cmd &Cm,
                             const ImpStore &S, uint64_t Step) {
  int Idx = resolveCached(Ann);
  if (Idx < 0)
    return;
  ImpMonitorEvent Ev{Ann, Cm, ImpStoreView(S), Step};
  Iso.guard(static_cast<unsigned>(Idx), C.monitor(Idx).name(), Ann.text(),
            /*InPost=*/true, Step,
            [&] { C.monitor(Idx).post(Ev, *States[Idx]); });
}

std::vector<std::unique_ptr<MonitorState>> ImpRuntimeCascade::takeStates() {
  return std::move(States);
}
