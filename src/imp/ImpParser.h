//===- imp/ImpParser.h - Parser for L_imp -----------------------*- C++ -*-===//
///
/// \file
/// Parses the imperative language. Sequencing with `;` is right-nested;
/// `else` is optional (defaults to skip); block delimiters are
/// `then/do ... end` and `begin ... end`; `{label}: cmd` annotates a
/// command. Expressions use the full L_lambda expression parser.
///
///   -- gcd
///   a := 252; b := 105;
///   while a <> b do
///     {gcdstep}: if a > b then a := a - b else b := b - a end
///   end;
///   print a
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_IMP_IMPPARSER_H
#define MONSEM_IMP_IMPPARSER_H

#include "imp/ImpAst.h"
#include "support/Diagnostics.h"

#include <string_view>

namespace monsem {

/// Parses a complete imperative program; nullptr plus diagnostics on error.
const Cmd *parseImpProgram(ImpContext &Ctx, std::string_view Source,
                           DiagnosticSink &Diags);

} // namespace monsem

#endif // MONSEM_IMP_IMPPARSER_H
