//===- imp/ImpAst.h - Imperative language module ----------------*- C++ -*-===//
///
/// \file
/// The imperative language module of Section 9.2 ("lazy, strict and
/// imperative languages"). `L_imp` is a small while-language whose
/// expression sub-language is L_lambda itself:
///
///   c ::= skip | x := e | c ; c | print e | read x
///       | if e then c [else c] end | while e do c end
///       | begin c end | {mu}: c
///
/// Its standard semantics is a continuation semantics over a store; the
/// monitoring semantics is derived exactly as for L_lambda (Definition 4.2
/// instantiated at the command valuation function): the pre/post monitoring
/// functions observe the annotation, the command, and the store (the A*_i
/// semantic context of commands).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_IMP_IMPAST_H
#define MONSEM_IMP_IMPAST_H

#include "syntax/Ast.h"

#include <string>

namespace monsem {

enum class CmdKind : uint8_t { Skip, Assign, Seq, If, While, Print,
                               Read, Annot };

class Cmd {
public:
  CmdKind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

protected:
  Cmd(CmdKind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  CmdKind K;
  SourceLoc Loc;
};

class SkipCmd : public Cmd {
public:
  explicit SkipCmd(SourceLoc Loc) : Cmd(CmdKind::Skip, Loc) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Skip; }
};

class AssignCmd : public Cmd {
public:
  Symbol Var;
  const Expr *Value;
  AssignCmd(Symbol Var, const Expr *Value, SourceLoc Loc)
      : Cmd(CmdKind::Assign, Loc), Var(Var), Value(Value) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Assign; }
};

class SeqCmd : public Cmd {
public:
  const Cmd *First, *Second;
  SeqCmd(const Cmd *First, const Cmd *Second, SourceLoc Loc)
      : Cmd(CmdKind::Seq, Loc), First(First), Second(Second) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Seq; }
};

class IfCmd : public Cmd {
public:
  const Expr *Cond;
  const Cmd *Then, *Else;
  IfCmd(const Expr *Cond, const Cmd *Then, const Cmd *Else, SourceLoc Loc)
      : Cmd(CmdKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::If; }
};

class WhileCmd : public Cmd {
public:
  const Expr *Cond;
  const Cmd *Body;
  WhileCmd(const Expr *Cond, const Cmd *Body, SourceLoc Loc)
      : Cmd(CmdKind::While, Loc), Cond(Cond), Body(Body) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::While; }
};

/// `read x` — consume the next value from the program's input stream
/// (ImpRunOptions::Input) into x; reading past the end is a run-time
/// error. This is the §8 remark about interactive monitors applied to the
/// object language itself: programs get an input as well as an output
/// stream.
class ReadCmd : public Cmd {
public:
  Symbol Var;
  ReadCmd(Symbol Var, SourceLoc Loc) : Cmd(CmdKind::Read, Loc), Var(Var) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Read; }
};

class PrintCmd : public Cmd {
public:
  const Expr *Value;
  PrintCmd(const Expr *Value, SourceLoc Loc)
      : Cmd(CmdKind::Print, Loc), Value(Value) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Print; }
};

class AnnotCmd : public Cmd {
public:
  const Annotation *Ann;
  const Cmd *Inner;
  AnnotCmd(const Annotation *Ann, const Cmd *Inner, SourceLoc Loc)
      : Cmd(CmdKind::Annot, Loc), Ann(Ann), Inner(Inner) {}
  static bool classof(const Cmd *C) { return C->kind() == CmdKind::Annot; }
};

template <typename T> const T *cast(const Cmd *C) {
  assert(C && T::classof(C) && "cast to wrong command kind");
  return static_cast<const T *>(C);
}

template <typename T> const T *dyn_cast(const Cmd *C) {
  return C && T::classof(C) ? static_cast<const T *>(C) : nullptr;
}

/// Owns an imperative program: commands in a bump arena, expressions and
/// annotations in the embedded AstContext.
class ImpContext {
public:
  AstContext &exprs() { return ExprCtx; }

  const Cmd *mkSkip(SourceLoc Loc = {}) { return A.create<SkipCmd>(Loc); }
  const Cmd *mkAssign(Symbol Var, const Expr *Value, SourceLoc Loc = {}) {
    return A.create<AssignCmd>(Var, Value, Loc);
  }
  const Cmd *mkSeq(const Cmd *First, const Cmd *Second, SourceLoc Loc = {}) {
    return A.create<SeqCmd>(First, Second, Loc);
  }
  const Cmd *mkIf(const Expr *Cond, const Cmd *Then, const Cmd *Else,
                  SourceLoc Loc = {}) {
    return A.create<IfCmd>(Cond, Then, Else, Loc);
  }
  const Cmd *mkWhile(const Expr *Cond, const Cmd *Body, SourceLoc Loc = {}) {
    return A.create<WhileCmd>(Cond, Body, Loc);
  }
  const Cmd *mkPrint(const Expr *Value, SourceLoc Loc = {}) {
    return A.create<PrintCmd>(Value, Loc);
  }
  const Cmd *mkRead(Symbol Var, SourceLoc Loc = {}) {
    return A.create<ReadCmd>(Var, Loc);
  }
  const Cmd *mkAnnot(const Annotation *Ann, const Cmd *Inner,
                     SourceLoc Loc = {}) {
    return A.create<AnnotCmd>(Ann, Inner, Loc);
  }

private:
  AstContext ExprCtx;
  Arena A;
};

/// Renders a command in concrete syntax on one line.
std::string printCmd(const Cmd *C);

/// Collects every command-level annotation in pre-order.
void collectCmdAnnotations(const Cmd *C,
                           std::vector<const Annotation *> &Out);

/// Strips command-level annotations (the soundness theorem's sbar -> s).
const Cmd *stripCmdAnnotations(ImpContext &Ctx, const Cmd *C);

} // namespace monsem

#endif // MONSEM_IMP_IMPAST_H
