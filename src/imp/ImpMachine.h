//===- imp/ImpMachine.h - L_imp evaluator -----------------------*- C++ -*-===//
///
/// \file
/// The standard and monitoring semantics of L_imp. Commands execute over a
/// store with an explicit command-continuation stack (the defunctionalized
/// command continuations); the annotated-command case is Definition 4.2
/// again: run updPre, push a post-probe continuation entry, run the inner
/// command.
///
/// Expressions are evaluated by a recursive L_lambda evaluator whose
/// environment is the store extended with the primitives; expression-level
/// annotations inside an imperative program are skipped (the imperative
/// module monitors commands — its valuation function of interest is C, not
/// E).
///
/// The answer of a program is <output stream, final store> (plus monitor
/// states when monitored).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_IMP_IMPMACHINE_H
#define MONSEM_IMP_IMPMACHINE_H

#include "imp/ImpMonitor.h"
#include "monitor/Cascade.h"
#include "support/Governor.h"

#include <map>
#include <string>
#include <vector>

namespace monsem {

struct ImpRunOptions {
  uint64_t MaxSteps = 0;       ///< 0 = unlimited (commands + expr nodes).
  unsigned MaxExprDepth = 8000; ///< C-stack guard for expression recursion.
  /// The program's input stream, consumed by `read x` (integers).
  std::vector<int64_t> Input;
  /// Resource budget beyond fuel (deadline, arena cap, depth bound,
  /// cancellation). Limits.MaxSteps supersedes MaxSteps above when nonzero;
  /// Limits.MaxDepth bounds both the command work stack and expression
  /// recursion depth.
  ResourceLimits Limits;
  /// Run-wide default for what happens when a monitor hook throws.
  FaultPolicy MonitorFaultPolicy = FaultPolicy::Quarantine;
  unsigned MonitorRetryBudget = 3;
};

struct ImpRunResult {
  /// How the run ended; `Ok`/`FuelExhausted` are mirrors kept for older
  /// callers — always set St through setOutcome().
  Outcome St = Outcome::Error;
  bool Ok = false;
  bool FuelExhausted = false;
  std::string Error;
  uint64_t Steps = 0;
  std::vector<std::string> Output;              ///< print lines, in order.
  std::map<std::string, std::string> Store;     ///< Final store, rendered.
  std::vector<std::unique_ptr<MonitorState>> FinalStates;
  /// Faults the monitor fault boundary recorded (command-level cascade
  /// first, then the expression cascade).
  std::vector<MonitorFault> MonitorFaults;

  void setOutcome(Outcome O) {
    St = O;
    Ok = O == Outcome::Ok;
    FuelExhausted = O == Outcome::FuelExhausted;
  }

  bool stoppedByGovernor() const { return isGovernanceStop(St); }

  bool sameOutcome(const ImpRunResult &O) const {
    if (St != O.St)
      return false;
    if (St == Outcome::Error)
      return Error == O.Error;
    if (St != Outcome::Ok)
      return true; // Same governance stop.
    return Output == O.Output && Store == O.Store;
  }
};

/// Standard semantics (annotations skipped).
ImpRunResult runImp(const Cmd *Program, ImpRunOptions Opts = {});

/// Monitoring semantics under \p C (validates disjointness first).
ImpRunResult runImp(const ImpCascade &C, const Cmd *Program,
                    ImpRunOptions Opts = {});

/// Full monitoring: command-level monitors \p C plus an L_lambda cascade
/// \p ExprC over the annotations *inside* the commands' expressions — the
/// two derivations composed across language levels. Expression-monitor
/// states are appended after the command-monitor states in FinalStates.
ImpRunResult runImp(const ImpCascade &C, const Cascade &ExprC,
                    const Cmd *Program, ImpRunOptions Opts = {});

/// Collects every annotation inside the program's expressions (as opposed
/// to collectCmdAnnotations, which gathers the command-level ones).
void collectImpExprAnnotations(const Cmd *Program,
                               std::vector<const Annotation *> &Out);

} // namespace monsem

#endif // MONSEM_IMP_IMPMACHINE_H
