//===- imp/ImpParser.cpp ---------------------------------------------------===//

#include "imp/ImpParser.h"

#include "syntax/Lexer.h"
#include "syntax/Parser.h"

using namespace monsem;

namespace {

class ImpParser {
public:
  ImpParser(ImpContext &Ctx, std::string_view Source, DiagnosticSink &Diags)
      : Ctx(Ctx), Lex(Source, Diags), Diags(Diags) {}

  const Cmd *parseTop() {
    const Cmd *C = parseSeq();
    if (!C)
      return nullptr;
    if (!Lex.peek().is(TokenKind::Eof)) {
      error("expected end of program, found " +
            std::string(tokenKindName(Lex.peek().Kind)));
      return nullptr;
    }
    return C;
  }

private:
  ImpContext &Ctx;
  Lexer Lex;
  DiagnosticSink &Diags;

  void error(const std::string &Msg) { Diags.error(Lex.peek().Loc, Msg); }

  bool expect(TokenKind K) {
    if (Lex.peek().is(K)) {
      Lex.next();
      return true;
    }
    error(std::string("expected ") + tokenKindName(K) + ", found " +
          tokenKindName(Lex.peek().Kind));
    return false;
  }

  const Expr *parseCondExpr() {
    const Expr *E = parseExprWith(Ctx.exprs(), Lex, Diags);
    if (!E)
      return nullptr;
    return E;
  }

  const Cmd *parseSeq() {
    const Cmd *C = parseCmd();
    if (!C)
      return nullptr;
    while (Lex.peek().is(TokenKind::Semi)) {
      SourceLoc Loc = Lex.next().Loc;
      const Cmd *Next = parseCmd();
      if (!Next)
        return nullptr;
      C = Ctx.mkSeq(C, Next, Loc);
    }
    return C;
  }

  const Cmd *parseCmd() {
    const Token &T = Lex.peek();
    switch (T.Kind) {
    case TokenKind::KwSkip: {
      SourceLoc Loc = Lex.next().Loc;
      return Ctx.mkSkip(Loc);
    }
    case TokenKind::KwPrint: {
      SourceLoc Loc = Lex.next().Loc;
      const Expr *E = parseCondExpr();
      if (!E)
        return nullptr;
      return Ctx.mkPrint(E, Loc);
    }
    case TokenKind::KwIf: {
      SourceLoc Loc = Lex.next().Loc;
      const Expr *Cond = parseCondExpr();
      if (!Cond || !expect(TokenKind::KwThen))
        return nullptr;
      const Cmd *Then = parseSeq();
      if (!Then)
        return nullptr;
      const Cmd *Else = nullptr;
      if (Lex.peek().is(TokenKind::KwElse)) {
        Lex.next();
        Else = parseSeq();
        if (!Else)
          return nullptr;
      } else {
        Else = Ctx.mkSkip(Loc);
      }
      if (!expect(TokenKind::KwEnd))
        return nullptr;
      return Ctx.mkIf(Cond, Then, Else, Loc);
    }
    case TokenKind::KwWhile: {
      SourceLoc Loc = Lex.next().Loc;
      const Expr *Cond = parseCondExpr();
      if (!Cond || !expect(TokenKind::KwDo))
        return nullptr;
      const Cmd *Body = parseSeq();
      if (!Body || !expect(TokenKind::KwEnd))
        return nullptr;
      return Ctx.mkWhile(Cond, Body, Loc);
    }
    case TokenKind::KwBegin: {
      Lex.next();
      const Cmd *C = parseSeq();
      if (!C || !expect(TokenKind::KwEnd))
        return nullptr;
      return C;
    }
    case TokenKind::LBrace:
      return parseAnnotated();
    case TokenKind::Ident: {
      Token Name = Lex.next();
      // `read x`: contextual keyword (not reserved, so `read := 1` still
      // works as an assignment).
      if (Name.Ident.str() == "read" && Lex.peek().is(TokenKind::Ident)) {
        Token Var = Lex.next();
        return Ctx.mkRead(Var.Ident, Name.Loc);
      }
      if (!expect(TokenKind::Assign))
        return nullptr;
      const Expr *E = parseCondExpr();
      if (!E)
        return nullptr;
      return Ctx.mkAssign(Name.Ident, E, Name.Loc);
    }
    default:
      error(std::string("expected a command, found ") +
            tokenKindName(T.Kind));
      return nullptr;
    }
  }

  const Cmd *parseAnnotated() {
    SourceLoc Loc = Lex.next().Loc; // '{'
    Annotation Ann;
    Ann.Loc = Loc;
    if (!Lex.peek().is(TokenKind::Ident)) {
      error("expected annotation label");
      return nullptr;
    }
    Ann.Head = Lex.next().Ident;
    if (Lex.peek().is(TokenKind::Colon)) {
      Lex.next();
      if (!Lex.peek().is(TokenKind::Ident)) {
        error("expected annotation label after qualifier");
        return nullptr;
      }
      Ann.Qual = Ann.Head;
      Ann.Head = Lex.next().Ident;
    }
    if (Lex.peek().is(TokenKind::LParen)) {
      Lex.next();
      Ann.HasParams = true;
      if (!Lex.peek().is(TokenKind::RParen)) {
        while (true) {
          if (!Lex.peek().is(TokenKind::Ident)) {
            error("expected parameter name in annotation");
            return nullptr;
          }
          Ann.Params.push_back(Lex.next().Ident);
          if (!Lex.peek().is(TokenKind::Comma))
            break;
          Lex.next();
        }
      }
      if (!expect(TokenKind::RParen))
        return nullptr;
    }
    if (!expect(TokenKind::RBrace) || !expect(TokenKind::Colon))
      return nullptr;
    const Cmd *Inner = parseCmd();
    if (!Inner)
      return nullptr;
    return Ctx.mkAnnot(Ctx.exprs().internAnnotation(std::move(Ann)), Inner,
                       Loc);
  }
};

} // namespace

const Cmd *monsem::parseImpProgram(ImpContext &Ctx, std::string_view Source,
                                   DiagnosticSink &Diags) {
  ImpParser P(Ctx, Source, Diags);
  const Cmd *C = P.parseTop();
  if (!C || Diags.hasErrors())
    return nullptr;
  return C;
}
