//===- imp/ImpMonitors.h - Monitor toolbox for L_imp ------------*- C++ -*-===//
///
/// \file
/// Imperative-language monitors built from the same recipe as Section 8:
///
///  * ImpStmtProfiler — counts executions of labeled commands;
///  * ImpWatchMonitor — a Magpie-style demon [DMS84] watching one variable:
///    logs every observed change of its value at annotated commands;
///  * ImpTracer — logs annotated commands with a store snapshot;
///  * ImpInvariantDemon — checks a store predicate after each labeled
///    command and records the labels where it was violated.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_IMP_IMPMONITORS_H
#define MONSEM_IMP_IMPMONITORS_H

#include "imp/ImpMonitor.h"
#include "support/OutChan.h"

#include <functional>
#include <map>
#include <set>

namespace monsem {

//===----------------------------------------------------------------------===//
// Statement profiler
//===----------------------------------------------------------------------===//

class ImpStmtProfilerState : public MonitorState {
public:
  std::map<std::string, uint64_t, std::less<>> Counters;

  uint64_t count(std::string_view Label) const {
    auto It = Counters.find(Label);
    return It == Counters.end() ? 0 : It->second;
  }

  std::string str() const override {
    std::string Out = "[";
    bool First = true;
    for (const auto &[L, N] : Counters) {
      if (!First)
        Out += ", ";
      First = false;
      Out += L + " -> " + std::to_string(N);
    }
    return Out + "]";
  }
};

class ImpStmtProfiler : public ImpMonitor {
public:
  std::string_view name() const override { return "profile"; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<ImpStmtProfilerState>();
  }
  void pre(const ImpMonitorEvent &Ev, MonitorState &S) const override {
    ++static_cast<ImpStmtProfilerState &>(S)
          .Counters[std::string(Ev.Ann.Head.str())];
  }
  void post(const ImpMonitorEvent &, MonitorState &) const override {}

  static const ImpStmtProfilerState &state(const MonitorState &S) {
    return static_cast<const ImpStmtProfilerState &>(S);
  }
};

//===----------------------------------------------------------------------===//
// Watchpoint demon (Magpie-style)
//===----------------------------------------------------------------------===//

class ImpWatchState : public MonitorState {
public:
  OutChan Chan;
  /// Value snapshots taken by pre, one per live (nested) probe.
  std::vector<std::string> Snapshots;

  std::string str() const override { return Chan.str(); }
};

/// Watches variable \p Var: after every annotated command, if the rendered
/// value of Var changed, logs "<label>: var <old> -> <new>".
class ImpWatchMonitor : public ImpMonitor {
public:
  explicit ImpWatchMonitor(std::string_view Var)
      : Var(Symbol::intern(Var)) {}

  std::string_view name() const override { return "watch"; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<ImpWatchState>();
  }
  void pre(const ImpMonitorEvent &Ev, MonitorState &S) const override {
    // Capture the value before the command so post can diff.
    auto &St = static_cast<ImpWatchState &>(S);
    St.Snapshots.push_back(Ev.Store.lookupStr(Var));
  }
  void post(const ImpMonitorEvent &Ev, MonitorState &S) const override {
    auto &St = static_cast<ImpWatchState &>(S);
    std::string Before = St.Snapshots.back();
    St.Snapshots.pop_back();
    std::string Now = Ev.Store.lookupStr(Var);
    if (Now != Before)
      St.Chan.addLine(std::string(Ev.Ann.Head.str()) + ": " +
                      std::string(Var.str()) + " " + Before + " -> " + Now);
  }

  static const ImpWatchState &state(const MonitorState &S) {
    return static_cast<const ImpWatchState &>(S);
  }

private:
  Symbol Var;
};

//===----------------------------------------------------------------------===//
// Command tracer
//===----------------------------------------------------------------------===//

class ImpTracerState : public MonitorState {
public:
  OutChan Chan;
  int Level = 0;
  std::string str() const override { return Chan.str(); }
};

/// Logs `-> label [store]` / `<- label [store]` around annotated commands.
class ImpTracer : public ImpMonitor {
public:
  std::string_view name() const override { return "trace"; }
  bool accepts(const Annotation &) const override { return true; }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<ImpTracerState>();
  }
  void pre(const ImpMonitorEvent &Ev, MonitorState &S) const override {
    auto &St = static_cast<ImpTracerState &>(S);
    St.Chan.addLine(std::string(2 * St.Level, ' ') + "-> " +
                    std::string(Ev.Ann.Head.str()) + " " + Ev.Store.str());
    ++St.Level;
  }
  void post(const ImpMonitorEvent &Ev, MonitorState &S) const override {
    auto &St = static_cast<ImpTracerState &>(S);
    --St.Level;
    St.Chan.addLine(std::string(2 * St.Level, ' ') + "<- " +
                    std::string(Ev.Ann.Head.str()) + " " + Ev.Store.str());
  }

  static const ImpTracerState &state(const MonitorState &S) {
    return static_cast<const ImpTracerState &>(S);
  }
};

//===----------------------------------------------------------------------===//
// Store-invariant demon
//===----------------------------------------------------------------------===//

class ImpInvariantState : public MonitorState {
public:
  std::set<std::string> Violations;
  std::string str() const override {
    std::string Out = "{";
    bool First = true;
    for (const std::string &L : Violations) {
      if (!First)
        Out += ", ";
      First = false;
      Out += L;
    }
    return Out + "}";
  }
};

/// Fires when \p Invariant returns false on the store after an annotated
/// command (cf. the sorted-list demon of Fig. 8, lifted to stores).
class ImpInvariantDemon : public ImpMonitor {
public:
  ImpInvariantDemon(std::string Name,
                    std::function<bool(const ImpStoreView &)> Invariant)
      : MonitorName(std::move(Name)), Invariant(std::move(Invariant)) {}

  std::string_view name() const override { return MonitorName; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<ImpInvariantState>();
  }
  void pre(const ImpMonitorEvent &, MonitorState &) const override {}
  void post(const ImpMonitorEvent &Ev, MonitorState &S) const override {
    if (!Invariant(Ev.Store))
      static_cast<ImpInvariantState &>(S).Violations.insert(
          std::string(Ev.Ann.Head.str()));
  }

  static const ImpInvariantState &state(const MonitorState &S) {
    return static_cast<const ImpInvariantState &>(S);
  }

private:
  std::string MonitorName;
  std::function<bool(const ImpStoreView &)> Invariant;
};

} // namespace monsem

#endif // MONSEM_IMP_IMPMONITORS_H
