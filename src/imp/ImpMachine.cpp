//===- imp/ImpMachine.cpp --------------------------------------------------===//

#include "imp/ImpMachine.h"

#include "semantics/Primitives.h"
#include "syntax/Parser.h"

#include <optional>

using namespace monsem;

namespace {

/// Recursive evaluator for the expression sub-language. Environments are
/// EnvNode chains rooted in the store snapshot; all heap values live in the
/// machine's arena so store cells stay valid across commands.
class ExprEval {
public:
  ExprEval(Arena &A, const ImpStore &Store, const ImpRunOptions &Opts,
           uint64_t &Steps, MonitorHooks *Hooks, Governor &Gov)
      : A(A), Store(Store), Opts(Opts), Steps(Steps), Hooks(Hooks),
        Gov(Gov) {}

  bool failed() const { return Failed; }
  const std::string &error() const { return Error; }

  Value eval(const Expr *E, EnvNode *Env, unsigned Depth) {
    if (Failed)
      return Value();
    ++Steps;
    if (Steps >= Gov.nextPause()) {
      // The governor is shared with the command loop, so fuel, deadline
      // and the rest are charged uniformly across both levels; Depth here
      // is the expression recursion depth.
      Outcome O = Gov.pause(Steps, A.bytesAllocated(), Depth);
      if (O != Outcome::Ok) {
        Stop = O;
        Failed = true;
        return Value();
      }
    }
    if (Depth > Opts.MaxExprDepth)
      return fail("expression recursion too deep");
    switch (E->kind()) {
    case ExprKind::Const: {
      const ConstVal &C = cast<ConstExpr>(E)->Val;
      switch (C.K) {
      case ConstVal::Kind::Int:
        return Value::mkInt(C.Int, A);
      case ConstVal::Kind::Bool:
        return Value::mkBool(C.Bool);
      case ConstVal::Kind::Str:
        return Value::mkStr(C.Str);
      case ConstVal::Kind::Nil:
        return Value::mkNil();
      }
      return Value();
    }
    case ExprKind::Var: {
      Symbol Name = cast<VarExpr>(E)->Name;
      for (EnvNode *N = Env; N; N = N->Parent)
        if (N->Name == Name) {
          if (N->Val.isUnit())
            return fail("letrec variable '" + std::string(Name.str()) +
                        "' referenced before initialization");
          return N->Val;
        }
      auto It = Store.find(Name);
      if (It != Store.end())
        return It->second;
      if (auto P1 = lookupPrim1(Name))
        return Value::mkPrim1(*P1);
      if (auto P2 = lookupPrim2(Name))
        return Value::mkPrim2(*P2);
      return fail("variable '" + std::string(Name.str()) +
                  "' is not initialized");
    }
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      return Value::mkClosure(A.create<Closure>(L, Env));
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      Value C = eval(I->Cond, Env, Depth + 1);
      if (Failed)
        return Value();
      if (!C.is(ValueKind::Bool))
        return fail("conditional scrutinee must be a boolean, found " +
                    toDisplayString(C));
      return eval(C.asBool() ? I->Then : I->Else, Env, Depth + 1);
    }
    case ExprKind::App: {
      const auto *Ap = cast<AppExpr>(E);
      // Paper order: operand first.
      Value Arg = eval(Ap->Arg, Env, Depth + 1);
      if (Failed)
        return Value();
      Value Fn = eval(Ap->Fn, Env, Depth + 1);
      if (Failed)
        return Value();
      return apply(Fn, Arg, Depth + 1);
    }
    case ExprKind::Letrec: {
      const auto *L = cast<LetrecExpr>(E);
      EnvNode *Node = extendEnv(A, Env, L->Name, Value::mkUnit());
      Value B = eval(L->Bound, Node, Depth + 1);
      if (Failed)
        return Value();
      Node->Val = B;
      return eval(L->Body, Node, Depth + 1);
    }
    case ExprKind::Prim1: {
      const auto *P = cast<Prim1Expr>(E);
      Value V = eval(P->Arg, Env, Depth + 1);
      if (Failed)
        return Value();
      PrimResult R = applyPrim1(P->Op, V, A);
      if (!R.Ok)
        return fail(std::move(R.Error));
      return R.Val;
    }
    case ExprKind::Prim2: {
      const auto *P = cast<Prim2Expr>(E);
      Value L = eval(P->Lhs, Env, Depth + 1);
      if (Failed)
        return Value();
      Value R = eval(P->Rhs, Env, Depth + 1);
      if (Failed)
        return Value();
      PrimResult PR = applyPrim2(P->Op, L, R, A);
      if (!PR.Ok)
        return fail(std::move(PR.Error));
      return PR.Val;
    }
    case ExprKind::Annot: {
      // Expression-level annotations fire on the expression cascade when
      // one is attached (cross-level monitoring); without one the
      // standard semantics is oblivious to them.
      const auto *N = cast<AnnotExpr>(E);
      if (!Hooks)
        return eval(N->Inner, Env, Depth + 1);
      Hooks->pre(*N->Ann, *N->Inner, EnvView(Env), Steps,
                 A.bytesAllocated());
      Value V = eval(N->Inner, Env, Depth + 1);
      if (!Failed)
        Hooks->post(*N->Ann, *N->Inner, EnvView(Env), V, Steps,
                    A.bytesAllocated());
      return V;
    }
    }
    return Value();
  }

  Outcome Stop = Outcome::Ok; ///< Governance stop reason, if any.

private:
  Value apply(Value Fn, Value Arg, unsigned Depth) {
    switch (Fn.kind()) {
    case ValueKind::Closure: {
      Closure *C = Fn.asClosure();
      EnvNode *Env = extendEnv(A, C->Env, C->L->Param, Arg);
      return eval(C->L->Body, Env, Depth + 1);
    }
    case ValueKind::Prim1: {
      PrimResult R = applyPrim1(Fn.asPrim1(), Arg, A);
      if (!R.Ok)
        return fail(std::move(R.Error));
      return R.Val;
    }
    case ValueKind::Prim2:
      return Value::mkPrim2Partial(
          A.create<PrimPartial>(Fn.asPrim2(), Arg));
    case ValueKind::Prim2Partial: {
      PrimPartial *PP = Fn.asPrim2Partial();
      PrimResult R = applyPrim2(PP->Op, PP->First, Arg, A);
      if (!R.Ok)
        return fail(std::move(R.Error));
      return R.Val;
    }
    default:
      return fail("cannot apply a non-function value (" +
                  toDisplayString(Fn) + ")");
    }
  }

  Value fail(std::string Msg) {
    if (!Failed) {
      Failed = true;
      Error = std::move(Msg);
    }
    return Value();
  }

  Arena &A;
  const ImpStore &Store;
  const ImpRunOptions &Opts;
  uint64_t &Steps;
  MonitorHooks *Hooks;
  Governor &Gov;
  bool Failed = false;
  std::string Error;
};

/// The command machine.
class ImpMachine {
public:
  ImpMachine(const Cmd *Program, ImpRuntimeCascade *Hooks,
             MonitorHooks *ExprHooks, ImpRunOptions Opts)
      : Program(Program), Hooks(Hooks), ExprHooks(ExprHooks), Opts(Opts) {}

  ImpRunResult run() {
    ImpRunResult R;
    Governor Gov(Opts.Limits, Opts.MaxSteps);
    A.setByteLimit(Gov.arenaByteCap());
    GovPtr = &Gov;
    try {
      Work.push_back(Item{Item::Kind::Run, Program, nullptr});
      while (!Work.empty()) {
        ++Steps;
        if (Steps >= Gov.nextPause()) {
          Outcome O = Gov.pause(Steps, A.bytesAllocated(), Work.size());
          if (O != Outcome::Ok) {
            R.setOutcome(O);
            R.Steps = Steps;
            return R;
          }
        }
        Item It = Work.back();
        Work.pop_back();
        if (It.K == Item::Kind::Post) {
          if (Hooks)
            Hooks->post(*cast<AnnotCmd>(It.C)->Ann,
                        *cast<AnnotCmd>(It.C)->Inner, Store, Steps);
          continue;
        }
        if (!step(It.C))
          break;
      }
    } catch (const MonitorAbort &E) {
      fail(E.what());
    } catch (const ArenaLimitExceeded &) {
      R.setOutcome(Outcome::MemoryExceeded);
      R.Steps = Steps;
      return R;
    }
    R.Steps = Steps;
    if (Stop != Outcome::Ok) {
      R.setOutcome(Stop);
      return R;
    }
    if (Failed) {
      R.setOutcome(Outcome::Error);
      R.Error = std::move(Error);
      return R;
    }
    R.setOutcome(Outcome::Ok);
    R.Output = std::move(Output);
    for (const auto &[Name, Val] : Store)
      R.Store.emplace(std::string(Name.str()), toDisplayString(Val));
    return R;
  }

private:
  struct Item {
    enum class Kind : uint8_t { Run, Post };
    Kind K;
    const Cmd *C;
    const Annotation *Ann;
  };

  bool step(const Cmd *C) {
    switch (C->kind()) {
    case CmdKind::Skip:
      return true;
    case CmdKind::Assign: {
      const auto *A2 = cast<AssignCmd>(C);
      Value V = evalExpr(A2->Value);
      if (Failed || Stop != Outcome::Ok)
        return false;
      Store[A2->Var] = V;
      return true;
    }
    case CmdKind::Seq: {
      const auto *S = cast<SeqCmd>(C);
      Work.push_back(Item{Item::Kind::Run, S->Second, nullptr});
      Work.push_back(Item{Item::Kind::Run, S->First, nullptr});
      return true;
    }
    case CmdKind::If: {
      const auto *I = cast<IfCmd>(C);
      Value V = evalExpr(I->Cond);
      if (Failed || Stop != Outcome::Ok)
        return false;
      if (!V.is(ValueKind::Bool)) {
        fail("conditional scrutinee must be a boolean, found " +
             toDisplayString(V));
        return false;
      }
      Work.push_back(Item{Item::Kind::Run, V.asBool() ? I->Then : I->Else,
                          nullptr});
      return true;
    }
    case CmdKind::While: {
      const auto *W = cast<WhileCmd>(C);
      Value V = evalExpr(W->Cond);
      if (Failed || Stop != Outcome::Ok)
        return false;
      if (!V.is(ValueKind::Bool)) {
        fail("loop condition must be a boolean, found " +
             toDisplayString(V));
        return false;
      }
      if (V.asBool()) {
        Work.push_back(Item{Item::Kind::Run, C, nullptr}); // Re-test.
        Work.push_back(Item{Item::Kind::Run, W->Body, nullptr});
      }
      return true;
    }
    case CmdKind::Print: {
      const auto *P = cast<PrintCmd>(C);
      Value V = evalExpr(P->Value);
      if (Failed || Stop != Outcome::Ok)
        return false;
      Output.push_back(toDisplayString(V));
      return true;
    }
    case CmdKind::Read: {
      const auto *Rd = cast<ReadCmd>(C);
      if (InputPos >= Opts.Input.size()) {
        fail("read: input stream exhausted");
        return false;
      }
      Store[Rd->Var] = Value::mkInt(Opts.Input[InputPos++], A);
      return true;
    }
    case CmdKind::Annot: {
      const auto *A2 = cast<AnnotCmd>(C);
      if (Hooks) {
        Hooks->pre(*A2->Ann, *A2->Inner, Store, Steps);
        Work.push_back(Item{Item::Kind::Post, C, A2->Ann});
      }
      Work.push_back(Item{Item::Kind::Run, A2->Inner, nullptr});
      return true;
    }
    }
    return true;
  }

  Value evalExpr(const Expr *E) {
    ExprEval Ev(A, Store, Opts, Steps, ExprHooks, *GovPtr);
    Value V = Ev.eval(E, nullptr, 0);
    if (Ev.Stop != Outcome::Ok) {
      Stop = Ev.Stop;
      return Value();
    }
    if (Ev.failed()) {
      fail(Ev.error());
      return Value();
    }
    return V;
  }

  void fail(std::string Msg) {
    if (!Failed) {
      Failed = true;
      Error = std::move(Msg);
    }
  }

  const Cmd *Program;
  ImpRuntimeCascade *Hooks;
  MonitorHooks *ExprHooks;
  ImpRunOptions Opts;
  Arena A;
  Governor *GovPtr = nullptr; ///< Valid for the duration of run().
  ImpStore Store;
  std::vector<Item> Work;
  std::vector<std::string> Output;
  size_t InputPos = 0;
  uint64_t Steps = 0;
  bool Failed = false;
  Outcome Stop = Outcome::Ok; ///< Governance stop raised in evalExpr.
  std::string Error;
};

} // namespace

ImpRunResult monsem::runImp(const Cmd *Program, ImpRunOptions Opts) {
  ImpMachine M(Program, nullptr, nullptr, Opts);
  return M.run();
}

ImpRunResult monsem::runImp(const ImpCascade &C, const Cmd *Program,
                            ImpRunOptions Opts) {
  Cascade Empty;
  return runImp(C, Empty, Program, Opts);
}

void monsem::collectImpExprAnnotations(const Cmd *Program,
                                       std::vector<const Annotation *> &Out) {
  switch (Program->kind()) {
  case CmdKind::Skip:
  case CmdKind::Read:
    return;
  case CmdKind::Assign:
    collectAnnotations(cast<AssignCmd>(Program)->Value, Out);
    return;
  case CmdKind::Seq: {
    const auto *S = cast<SeqCmd>(Program);
    collectImpExprAnnotations(S->First, Out);
    collectImpExprAnnotations(S->Second, Out);
    return;
  }
  case CmdKind::If: {
    const auto *I = cast<IfCmd>(Program);
    collectAnnotations(I->Cond, Out);
    collectImpExprAnnotations(I->Then, Out);
    collectImpExprAnnotations(I->Else, Out);
    return;
  }
  case CmdKind::While: {
    const auto *W = cast<WhileCmd>(Program);
    collectAnnotations(W->Cond, Out);
    collectImpExprAnnotations(W->Body, Out);
    return;
  }
  case CmdKind::Print:
    collectAnnotations(cast<PrintCmd>(Program)->Value, Out);
    return;
  case CmdKind::Annot:
    collectImpExprAnnotations(cast<AnnotCmd>(Program)->Inner, Out);
    return;
  }
}

ImpRunResult monsem::runImp(const ImpCascade &C, const Cascade &ExprC,
                            const Cmd *Program, ImpRunOptions Opts) {
  if (C.empty() && ExprC.empty())
    return runImp(Program, Opts);

  DiagnosticSink Diags;
  if (!C.empty() && !C.validateFor(Program, Diags)) {
    ImpRunResult R;
    R.Error = Diags.str();
    return R;
  }
  if (!ExprC.empty()) {
    std::vector<const Annotation *> ExprAnns;
    collectImpExprAnnotations(Program, ExprAnns);
    for (const Annotation *Ann : ExprAnns)
      if (ExprC.resolve(*Ann, &Diags) == -2) {
        ImpRunResult R;
        R.Error = Diags.str();
        return R;
      }
  }

  std::optional<ImpRuntimeCascade> RC;
  if (!C.empty())
    RC.emplace(C, Opts.MonitorFaultPolicy, Opts.MonitorRetryBudget);
  std::optional<RuntimeCascade> ERC;
  if (!ExprC.empty())
    ERC.emplace(ExprC, Opts.MonitorFaultPolicy, Opts.MonitorRetryBudget);

  ImpMachine M(Program, RC ? &*RC : nullptr, ERC ? &*ERC : nullptr, Opts);
  ImpRunResult R = M.run();
  if (RC) {
    R.FinalStates = RC->takeStates();
    R.MonitorFaults = RC->takeFaults();
  }
  if (ERC) {
    for (auto &S : ERC->takeStates())
      R.FinalStates.push_back(std::move(S));
    for (auto &F : ERC->takeFaults())
      R.MonitorFaults.push_back(std::move(F));
  }
  return R;
}
