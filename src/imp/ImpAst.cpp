//===- imp/ImpAst.cpp ------------------------------------------------------===//

#include "imp/ImpAst.h"

#include "syntax/Printer.h"

using namespace monsem;

namespace {

void print(std::string &Out, const Cmd *C) {
  switch (C->kind()) {
  case CmdKind::Skip:
    Out += "skip";
    return;
  case CmdKind::Assign: {
    const auto *A = cast<AssignCmd>(C);
    Out += A->Var.str();
    Out += " := ";
    Out += printExpr(A->Value);
    return;
  }
  case CmdKind::Seq: {
    const auto *S = cast<SeqCmd>(C);
    print(Out, S->First);
    Out += "; ";
    print(Out, S->Second);
    return;
  }
  case CmdKind::If: {
    const auto *I = cast<IfCmd>(C);
    Out += "if ";
    Out += printExpr(I->Cond);
    Out += " then ";
    print(Out, I->Then);
    Out += " else ";
    print(Out, I->Else);
    Out += " end";
    return;
  }
  case CmdKind::While: {
    const auto *W = cast<WhileCmd>(C);
    Out += "while ";
    Out += printExpr(W->Cond);
    Out += " do ";
    print(Out, W->Body);
    Out += " end";
    return;
  }
  case CmdKind::Print: {
    Out += "print ";
    Out += printExpr(cast<PrintCmd>(C)->Value);
    return;
  }
  case CmdKind::Read:
    Out += "read ";
    Out += cast<ReadCmd>(C)->Var.str();
    return;
  case CmdKind::Annot: {
    const auto *A = cast<AnnotCmd>(C);
    Out += A->Ann->text();
    Out += ": ";
    print(Out, A->Inner);
    return;
  }
  }
}

} // namespace

std::string monsem::printCmd(const Cmd *C) {
  std::string Out;
  print(Out, C);
  return Out;
}

void monsem::collectCmdAnnotations(const Cmd *C,
                                   std::vector<const Annotation *> &Out) {
  switch (C->kind()) {
  case CmdKind::Skip:
  case CmdKind::Assign:
  case CmdKind::Print:
  case CmdKind::Read:
    return;
  case CmdKind::Seq: {
    const auto *S = cast<SeqCmd>(C);
    collectCmdAnnotations(S->First, Out);
    collectCmdAnnotations(S->Second, Out);
    return;
  }
  case CmdKind::If: {
    const auto *I = cast<IfCmd>(C);
    collectCmdAnnotations(I->Then, Out);
    collectCmdAnnotations(I->Else, Out);
    return;
  }
  case CmdKind::While:
    collectCmdAnnotations(cast<WhileCmd>(C)->Body, Out);
    return;
  case CmdKind::Annot: {
    const auto *A = cast<AnnotCmd>(C);
    Out.push_back(A->Ann);
    collectCmdAnnotations(A->Inner, Out);
    return;
  }
  }
}

const Cmd *monsem::stripCmdAnnotations(ImpContext &Ctx, const Cmd *C) {
  switch (C->kind()) {
  case CmdKind::Skip:
  case CmdKind::Assign:
  case CmdKind::Print:
  case CmdKind::Read:
    return C; // Leaves share structure (expressions are untouched).
  case CmdKind::Seq: {
    const auto *S = cast<SeqCmd>(C);
    return Ctx.mkSeq(stripCmdAnnotations(Ctx, S->First),
                     stripCmdAnnotations(Ctx, S->Second), C->loc());
  }
  case CmdKind::If: {
    const auto *I = cast<IfCmd>(C);
    return Ctx.mkIf(I->Cond, stripCmdAnnotations(Ctx, I->Then),
                    stripCmdAnnotations(Ctx, I->Else), C->loc());
  }
  case CmdKind::While: {
    const auto *W = cast<WhileCmd>(C);
    return Ctx.mkWhile(W->Cond, stripCmdAnnotations(Ctx, W->Body), C->loc());
  }
  case CmdKind::Annot:
    return stripCmdAnnotations(Ctx, cast<AnnotCmd>(C)->Inner);
  }
  return C;
}
