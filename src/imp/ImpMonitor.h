//===- imp/ImpMonitor.h - Monitor specs for L_imp ---------------*- C++ -*-===//
///
/// \file
/// Definition 5.1 instantiated at L_imp's command valuation function. The
/// semantic context A*_i of a command is the store, so the monitoring
/// functions have the shape
///
///   M_pre  : Ann -> Cmd -> Store -> MS -> MS
///   M_post : Ann -> Cmd -> Store -> Store' -> MS -> MS
///
/// (the post function observes the store *after* the command ran). The
/// C++ surface mirrors the L_lambda framework: const views in, a mutable
/// reference to the monitor's own state only — monitors cannot write the
/// store, so Theorem 7.7 holds for L_imp by the same construction. This
/// demonstrates the paper's claim that the derivation applies to any
/// language given in continuation style; C++'s type system simply requires
/// one concrete instantiation per language.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_IMP_IMPMONITOR_H
#define MONSEM_IMP_IMPMONITOR_H

#include "imp/ImpAst.h"
#include "monitor/FaultIsolation.h"
#include "monitor/MonitorSpec.h" // MonitorState
#include "semantics/Value.h"
#include "support/Diagnostics.h"

#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace monsem {

using ImpStore = std::map<Symbol, Value>;

/// Read-only view of the store.
class ImpStoreView {
public:
  explicit ImpStoreView(const ImpStore &S) : S(S) {}

  std::optional<Value> lookup(Symbol Name) const {
    auto It = S.find(Name);
    if (It == S.end())
      return std::nullopt;
    return It->second;
  }

  std::string lookupStr(Symbol Name) const {
    if (auto V = lookup(Name))
      return toDisplayString(*V);
    return "?";
  }

  /// "[a = 3, b = [1, 2]]", sorted by variable name.
  std::string str() const;

  const ImpStore &raw() const { return S; }

private:
  const ImpStore &S;
};

struct ImpMonitorEvent {
  const Annotation &Ann;
  const Cmd &C;
  ImpStoreView Store;
  uint64_t StepIndex;
};

/// An L_imp monitor specification (MSyn = accepts, MAlg = initialState,
/// MFun = pre/post). MonitorState is shared with the L_lambda framework.
class ImpMonitor {
public:
  virtual ~ImpMonitor();
  virtual std::string_view name() const = 0;
  virtual bool accepts(const Annotation &Ann) const = 0;
  virtual std::unique_ptr<MonitorState> initialState() const = 0;
  virtual void pre(const ImpMonitorEvent &Ev, MonitorState &State) const = 0;
  virtual void post(const ImpMonitorEvent &Ev, MonitorState &State) const = 0;
};

/// Composition with the Section 6 disjointness constraint.
class ImpCascade {
public:
  ImpCascade &use(const ImpMonitor &M) {
    Monitors.push_back(&M);
    Policies.push_back(std::nullopt);
    return *this;
  }
  /// Same, with a per-monitor fault policy overriding the run-wide default
  /// (ImpRunOptions::MonitorFaultPolicy).
  ImpCascade &use(const ImpMonitor &M, FaultPolicy P) {
    Monitors.push_back(&M);
    Policies.push_back(P);
    return *this;
  }
  unsigned size() const { return static_cast<unsigned>(Monitors.size()); }
  bool empty() const { return Monitors.empty(); }
  const ImpMonitor &monitor(unsigned I) const { return *Monitors[I]; }
  std::optional<FaultPolicy> faultPolicy(unsigned I) const {
    return I < Policies.size() ? Policies[I] : std::nullopt;
  }

  int resolve(const Annotation &Ann, DiagnosticSink *Diags = nullptr) const;
  bool validateFor(const Cmd *Program, DiagnosticSink &Diags) const;

private:
  std::vector<const ImpMonitor *> Monitors;
  std::vector<std::optional<FaultPolicy>> Policies;
};

/// Per-run states plus probe dispatch.
class ImpRuntimeCascade {
public:
  /// Hooks run inside a fault boundary with \p DefaultPolicy /
  /// \p RetryBudget (see FaultIsolation.h); per-monitor overrides come
  /// from ImpCascade::use(M, Policy).
  explicit ImpRuntimeCascade(const ImpCascade &C,
                             FaultPolicy DefaultPolicy = FaultPolicy::Quarantine,
                             unsigned RetryBudget = 3);

  void pre(const Annotation &Ann, const Cmd &C, const ImpStore &S,
           uint64_t Step);
  void post(const Annotation &Ann, const Cmd &C, const ImpStore &S,
            uint64_t Step);

  std::vector<std::unique_ptr<MonitorState>> takeStates();
  std::vector<MonitorFault> takeFaults() { return Iso.takeFaults(); }
  const FaultIsolator &isolator() const { return Iso; }

private:
  int resolveCached(const Annotation &Ann);

  const ImpCascade &C;
  std::vector<std::unique_ptr<MonitorState>> States;
  std::unordered_map<const Annotation *, int> Cache;
  FaultIsolator Iso;
};

} // namespace monsem

#endif // MONSEM_IMP_IMPMONITOR_H
