//===- analysis/Resolver.cpp ----------------------------------------------===//

#include "analysis/Resolver.h"

#include "semantics/Primitives.h"

#include <mutex>
#include <unordered_map>
#include <unordered_set>

using namespace monsem;

namespace monsem {

/// The single-pass scope walk. One instance per resolveProgram call.
class Resolver {
public:
  explicit Resolver(Resolution &R) : R(R) {
    // Reserve shape id 0 for the shared primitives frame, which sits at
    // the root of every run-time frame chain but is not produced by this
    // pass (its own Id defaults to 0).
    R.Table.push_back(primFrameShape());
  }

  void run(const Expr *Program) {
    FrameShape *Root = R.newShape();
    R.Root = Root;
    // The root frame has no owner binding; letrec binders coalesced at the
    // program's outermost level fill its slots (possibly none).
    visit(Program, /*Level=*/0, Root, /*Coalesce=*/true, /*Tail=*/true);
  }

private:
  /// One name in scope. FrameLevel/Slot locate its runtime storage;
  /// BinderOrdinal is its position in the binder-counted de Bruijn
  /// numbering the bytecode compiler uses.
  struct ScopeEntry {
    Symbol Name;
    uint32_t FrameLevel;
    uint32_t Slot;
    uint32_t BinderOrdinal;
  };

  /// \p Tail: E is in tail position of the enclosing lambda body — its
  /// value is the body's value with nothing of this activation pending,
  /// and (because frame heads only occur in non-tail positions) the
  /// run-time environment at E is exactly the activation frame. Recorded
  /// on applications (AppExpr::TailPos) for self-tail-call frame reuse.
  void visit(const Expr *E, uint32_t Level, FrameShape *Shape, bool Coalesce,
             bool Tail) {
    if (!R.Ok)
      return;
    // Per-node annotations are only meaningful if each node is reachable
    // exactly once. Shared subtrees (e.g. residual programs from the
    // partial evaluator) make addresses ambiguous: refuse, callers fall
    // back to the named chain.
    if (!Visited.insert(E).second) {
      R.Ok = false;
      return;
    }
    switch (E->kind()) {
    case ExprKind::Const:
      return;
    case ExprKind::Var:
      resolveVar(cast<VarExpr>(E), Level);
      return;
    case ExprKind::Lam: {
      const LamExpr *L = cast<LamExpr>(E);
      FrameShape *S = R.newShape();
      S->Slots.push_back(L->Param);
      L->Shape = S;
      // A lambda anywhere inside an enclosing lambda's body can capture
      // that body's activation frame — none of the enclosing frames may
      // be reused after this point.
      for (auto &Entry : LamStack)
        Entry.second = false;
      LamStack.push_back({L, true});
      // The body opens a fresh frame per application, so letrecs directly
      // under it coalesce into *that* frame, never the enclosing one.
      Scope.push_back({L->Param, Level + 1, 0, numBinders()});
      visit(L->Body, Level + 1, S, /*Coalesce=*/true, /*Tail=*/true);
      Scope.pop_back();
      L->FrameReusable = LamStack.back().second;
      LamStack.pop_back();
      return;
    }
    case ExprKind::If: {
      const IfExpr *I = cast<IfExpr>(E);
      // Condition and the taken branch run exactly when the `if` does, in
      // the same environment: coalescing passes through. Only the taken
      // branch is in tail position; the condition has a pending Branch
      // frame.
      visit(I->Cond, Level, Shape, Coalesce, /*Tail=*/false);
      visit(I->Then, Level, Shape, Coalesce, Tail);
      visit(I->Else, Level, Shape, Coalesce, Tail);
      return;
    }
    case ExprKind::App: {
      const AppExpr *A = cast<AppExpr>(E);
      A->TailPos = Tail;
      // The operator is evaluated strictly under every strategy; the
      // operand may become a thunk (call-by-name re-evaluates it), so a
      // letrec inside it must keep allocating its own frame.
      visit(A->Fn, Level, Shape, Coalesce, /*Tail=*/false);
      visit(A->Arg, Level, Shape, /*Coalesce=*/false, /*Tail=*/false);
      return;
    }
    case ExprKind::Letrec: {
      const LetrecExpr *L = cast<LetrecExpr>(E);
      if (Coalesce) {
        // Member: claim the next slot of the enclosing frame. The binder
        // scopes over both the bound expression and the body.
        uint32_t Slot = Shape->numSlots();
        Shape->Slots.push_back(L->Name);
        L->Shape = nullptr;
        L->SlotIndex = Slot;
        Scope.push_back({L->Name, Level, Slot, numBinders()});
        visit(L->Bound, Level, Shape, /*Coalesce=*/false, /*Tail=*/false);
        visit(L->Body, Level, Shape, /*Coalesce=*/true, Tail);
        Scope.pop_back();
        return;
      }
      // Head: this letrec allocates a fresh frame (it may run many times
      // per enclosing frame instance — e.g. inside a thunked operand).
      // Its body runs in that fresh frame, not the lambda's activation
      // frame, so nothing under it is in tail position.
      FrameShape *S = R.newShape();
      S->Slots.push_back(L->Name);
      L->Shape = S;
      L->SlotIndex = 0;
      Scope.push_back({L->Name, Level + 1, 0, numBinders()});
      visit(L->Bound, Level + 1, S, /*Coalesce=*/false, /*Tail=*/false);
      visit(L->Body, Level + 1, S, /*Coalesce=*/true, /*Tail=*/false);
      Scope.pop_back();
      return;
    }
    case ExprKind::Prim1: {
      const Prim1Expr *P = cast<Prim1Expr>(E);
      // Primitive operands are strict under every strategy.
      visit(P->Arg, Level, Shape, Coalesce, /*Tail=*/false);
      return;
    }
    case ExprKind::Prim2: {
      const Prim2Expr *P = cast<Prim2Expr>(E);
      visit(P->Lhs, Level, Shape, Coalesce, /*Tail=*/false);
      visit(P->Rhs, Level, Shape, Coalesce, /*Tail=*/false);
      return;
    }
    case ExprKind::Annot: {
      const AnnotExpr *A = cast<AnnotExpr>(E);
      // Probes observe but never change the environment (Thm. 7.7) — but
      // they *do* observe it: a pending MonPost frame holds the current
      // env at the annotated expression, so no enclosing activation frame
      // may be reused (monitored sites keep paper-exact allocation), and
      // the inner expression is not in tail position.
      for (auto &Entry : LamStack)
        Entry.second = false;
      visit(A->Inner, Level, Shape, Coalesce, /*Tail=*/false);
      return;
    }
    }
  }

  void resolveVar(const VarExpr *V, uint32_t Level) {
    for (size_t I = Scope.size(); I-- > 0;) {
      const ScopeEntry &S = Scope[I];
      if (S.Name != V->Name)
        continue;
      V->Addr = VarExpr::AddrKind::Local;
      V->FrameDepth = Level - S.FrameLevel;
      V->SlotIndex = S.Slot;
      V->BinderDepth = numBinders() - 1 - S.BinderOrdinal;
      return;
    }
    const std::vector<PrimBinding> &Prims = primBindings();
    for (size_t I = 0; I < Prims.size(); ++I) {
      if (Prims[I].Name != V->Name)
        continue;
      V->Addr = VarExpr::AddrKind::Global;
      V->FrameDepth = 0;
      V->SlotIndex = static_cast<uint32_t>(I);
      V->BinderDepth = 0;
      return;
    }
    V->Addr = VarExpr::AddrKind::Unbound;
    V->FrameDepth = 0;
    V->SlotIndex = 0;
    V->BinderDepth = 0;
  }

  uint32_t numBinders() const { return static_cast<uint32_t>(Scope.size()); }

  Resolution &R;
  std::vector<ScopeEntry> Scope;
  /// Lambdas currently being visited, each with a still-reusable flag any
  /// inner lambda or annotation clears (see LamExpr::FrameReusable).
  std::vector<std::pair<const LamExpr *, bool>> LamStack;
  std::unordered_set<const Expr *> Visited;
};

} // namespace monsem

std::unique_ptr<Resolution> monsem::resolveProgram(const Expr *Program) {
  auto R = std::make_unique<Resolution>();
  Resolver(*R).run(Program);
  // A raw resolve repoints the tree's annotations away from whatever the
  // cache may hold for this root; drop the stamp so a later cached lookup
  // re-resolves instead of returning a Resolution the annotations no
  // longer belong to.
  Program->ResolutionStamp = nullptr;
  return R;
}

namespace {

/// Guards the cache map, the per-root stamps, and — crucially — the
/// annotation-writing resolve pass itself. Holding it across the pass is
/// what publishes the AST writes to every thread that later looks the same
/// tree up: lock acquire/release gives the happens-before edge.
std::mutex &resolveCacheMutex() {
  static std::mutex M;
  return M;
}

using ResolveCache =
    std::unordered_map<const Expr *, std::shared_ptr<const Resolution>>;

ResolveCache &resolveCache() {
  // Leaked on purpose: entries may be handed out to threads that outlive
  // static destruction order.
  static ResolveCache *C = new ResolveCache();
  return *C;
}

/// Above this many entries a miss sweeps out every Resolution nobody but
/// the cache still holds. use_count() == 1 is trustworthy here because new
/// references are only ever minted under the cache mutex, which the
/// sweeper holds. Evicting a still-live tree's entry is safe (the next run
/// re-resolves while provably nobody is mid-run on it) — merely wasted
/// work, so the threshold is generous.
constexpr size_t kResolveCacheSweep = 256;

} // namespace

std::shared_ptr<const Resolution>
monsem::resolveProgramCached(const Expr *Program) {
  std::lock_guard<std::mutex> Lock(resolveCacheMutex());
  ResolveCache &Cache = resolveCache();
  auto It = Cache.find(Program);
  if (It != Cache.end() && Program->ResolutionStamp == It->second.get())
    return It->second;
  if (Cache.size() >= kResolveCacheSweep)
    for (auto SI = Cache.begin(); SI != Cache.end();)
      SI = SI->second.use_count() == 1 ? Cache.erase(SI) : std::next(SI);
  std::shared_ptr<const Resolution> Res = resolveProgram(Program);
  Program->ResolutionStamp = Res.get();
  Cache[Program] = Res;
  return Res;
}
