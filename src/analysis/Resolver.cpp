//===- analysis/Resolver.cpp ----------------------------------------------===//

#include "analysis/Resolver.h"

#include "semantics/Primitives.h"

#include <unordered_set>

using namespace monsem;

namespace monsem {

/// The single-pass scope walk. One instance per resolveProgram call.
class Resolver {
public:
  explicit Resolver(Resolution &R) : R(R) {
    // Reserve shape id 0 for the shared primitives frame, which sits at
    // the root of every run-time frame chain but is not produced by this
    // pass (its own Id defaults to 0).
    R.Table.push_back(primFrameShape());
  }

  void run(const Expr *Program) {
    FrameShape *Root = R.newShape();
    R.Root = Root;
    // The root frame has no owner binding; letrec binders coalesced at the
    // program's outermost level fill its slots (possibly none).
    visit(Program, /*Level=*/0, Root, /*Coalesce=*/true);
  }

private:
  /// One name in scope. FrameLevel/Slot locate its runtime storage;
  /// BinderOrdinal is its position in the binder-counted de Bruijn
  /// numbering the bytecode compiler uses.
  struct ScopeEntry {
    Symbol Name;
    uint32_t FrameLevel;
    uint32_t Slot;
    uint32_t BinderOrdinal;
  };

  void visit(const Expr *E, uint32_t Level, FrameShape *Shape, bool Coalesce) {
    if (!R.Ok)
      return;
    // Per-node annotations are only meaningful if each node is reachable
    // exactly once. Shared subtrees (e.g. residual programs from the
    // partial evaluator) make addresses ambiguous: refuse, callers fall
    // back to the named chain.
    if (!Visited.insert(E).second) {
      R.Ok = false;
      return;
    }
    switch (E->kind()) {
    case ExprKind::Const:
      return;
    case ExprKind::Var:
      resolveVar(cast<VarExpr>(E), Level);
      return;
    case ExprKind::Lam: {
      const LamExpr *L = cast<LamExpr>(E);
      FrameShape *S = R.newShape();
      S->Slots.push_back(L->Param);
      L->Shape = S;
      // The body opens a fresh frame per application, so letrecs directly
      // under it coalesce into *that* frame, never the enclosing one.
      Scope.push_back({L->Param, Level + 1, 0, numBinders()});
      visit(L->Body, Level + 1, S, /*Coalesce=*/true);
      Scope.pop_back();
      return;
    }
    case ExprKind::If: {
      const IfExpr *I = cast<IfExpr>(E);
      // Condition and the taken branch run exactly when the `if` does, in
      // the same environment: coalescing passes through.
      visit(I->Cond, Level, Shape, Coalesce);
      visit(I->Then, Level, Shape, Coalesce);
      visit(I->Else, Level, Shape, Coalesce);
      return;
    }
    case ExprKind::App: {
      const AppExpr *A = cast<AppExpr>(E);
      // The operator is evaluated strictly under every strategy; the
      // operand may become a thunk (call-by-name re-evaluates it), so a
      // letrec inside it must keep allocating its own frame.
      visit(A->Fn, Level, Shape, Coalesce);
      visit(A->Arg, Level, Shape, /*Coalesce=*/false);
      return;
    }
    case ExprKind::Letrec: {
      const LetrecExpr *L = cast<LetrecExpr>(E);
      if (Coalesce) {
        // Member: claim the next slot of the enclosing frame. The binder
        // scopes over both the bound expression and the body.
        uint32_t Slot = Shape->numSlots();
        Shape->Slots.push_back(L->Name);
        L->Shape = nullptr;
        L->SlotIndex = Slot;
        Scope.push_back({L->Name, Level, Slot, numBinders()});
        visit(L->Bound, Level, Shape, /*Coalesce=*/false);
        visit(L->Body, Level, Shape, /*Coalesce=*/true);
        Scope.pop_back();
        return;
      }
      // Head: this letrec allocates a fresh frame (it may run many times
      // per enclosing frame instance — e.g. inside a thunked operand).
      FrameShape *S = R.newShape();
      S->Slots.push_back(L->Name);
      L->Shape = S;
      L->SlotIndex = 0;
      Scope.push_back({L->Name, Level + 1, 0, numBinders()});
      visit(L->Bound, Level + 1, S, /*Coalesce=*/false);
      visit(L->Body, Level + 1, S, /*Coalesce=*/true);
      Scope.pop_back();
      return;
    }
    case ExprKind::Prim1: {
      const Prim1Expr *P = cast<Prim1Expr>(E);
      // Primitive operands are strict under every strategy.
      visit(P->Arg, Level, Shape, Coalesce);
      return;
    }
    case ExprKind::Prim2: {
      const Prim2Expr *P = cast<Prim2Expr>(E);
      visit(P->Lhs, Level, Shape, Coalesce);
      visit(P->Rhs, Level, Shape, Coalesce);
      return;
    }
    case ExprKind::Annot: {
      const AnnotExpr *A = cast<AnnotExpr>(E);
      // Probes observe but never change the environment (Thm. 7.7).
      visit(A->Inner, Level, Shape, Coalesce);
      return;
    }
    }
  }

  void resolveVar(const VarExpr *V, uint32_t Level) {
    for (size_t I = Scope.size(); I-- > 0;) {
      const ScopeEntry &S = Scope[I];
      if (S.Name != V->Name)
        continue;
      V->Addr = VarExpr::AddrKind::Local;
      V->FrameDepth = Level - S.FrameLevel;
      V->SlotIndex = S.Slot;
      V->BinderDepth = numBinders() - 1 - S.BinderOrdinal;
      return;
    }
    const std::vector<PrimBinding> &Prims = primBindings();
    for (size_t I = 0; I < Prims.size(); ++I) {
      if (Prims[I].Name != V->Name)
        continue;
      V->Addr = VarExpr::AddrKind::Global;
      V->FrameDepth = 0;
      V->SlotIndex = static_cast<uint32_t>(I);
      V->BinderDepth = 0;
      return;
    }
    V->Addr = VarExpr::AddrKind::Unbound;
    V->FrameDepth = 0;
    V->SlotIndex = 0;
    V->BinderDepth = 0;
  }

  uint32_t numBinders() const { return static_cast<uint32_t>(Scope.size()); }

  Resolution &R;
  std::vector<ScopeEntry> Scope;
  std::unordered_set<const Expr *> Visited;
};

} // namespace monsem

std::unique_ptr<Resolution> monsem::resolveProgram(const Expr *Program) {
  auto R = std::make_unique<Resolution>();
  Resolver(*R).run(Program);
  return R;
}
