//===- analysis/Resolver.h - Lexical-address resolution ---------*- C++ -*-===//
///
/// \file
/// The static resolution pass behind the CEK machine's level-2
/// specialization (Section 9.1 of the paper: after fixing the monitor
/// specification, fix the *program* and precompute everything the standard
/// semantics would otherwise rediscover at run time).
///
/// For every variable occurrence the pass computes a lexical address
/// `(frame depth, slot index)` into a chain of flat, array-backed
/// environment frames, so the machine's Var transition is two pointer hops
/// and an array index instead of an O(env-depth) name scan. For every
/// binder it computes the frame layout ("per-binder slot counts"): each
/// lambda owns one frame whose slot 0 is its parameter, and letrec binders
/// are *coalesced* into the nearest enclosing frame whenever that is
/// observationally sound, so a letrec in a hot function body costs a slot
/// write instead of an environment allocation.
///
/// Coalescing rule: a letrec joins the enclosing frame iff the path from
/// the frame owner's body to the letrec crosses only edges that (a) keep
/// the runtime environment unchanged and (b) are evaluated at most once
/// per frame instance under *every* strategy: If cond/branches, App
/// operator, primitive operands, annotation bodies, and letrec bodies.
/// App operands and letrec bound expressions are excluded — under the lazy
/// strategies they become thunks that may re-evaluate, and a re-evaluated
/// letrec must allocate a fresh frame (exactly like the named EnvNode
/// chain allocates a fresh node) so closures captured by an earlier
/// evaluation keep their own binding.
///
/// Free variables naming primitives resolve to Global slots in the shared
/// initial frame; other free variables resolve to a static Unbound marker
/// that reproduces the standard semantics' run-time error. The pass also
/// records the classic binder-counted de Bruijn distance that the bytecode
/// compiler uses as its compile-time environment shape.
///
/// Results are stored in mutable annotation fields of the AST (VarExpr,
/// LamExpr, LetrecExpr); the returned Resolution owns the frame shapes
/// those annotations point to and must outlive any run that uses them.
/// Resolution is only well-defined for trees: if the same node is
/// reachable twice (a DAG — e.g. a partial evaluator sharing residual
/// subtrees) the pass reports !ok() and callers fall back to the named
/// environment chain. Soundness (Thm. 7.7) is preserved either way: the
/// resolved machine produces the same answers, and monitors keep named
/// lookup through EnvView over the frames' slot names.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_ANALYSIS_RESOLVER_H
#define MONSEM_ANALYSIS_RESOLVER_H

#include "syntax/Ast.h"

#include <deque>
#include <memory>

namespace monsem {

/// Owns the frame shapes referenced by a resolved AST's annotations.
class Resolution {
public:
  /// False when the program is not a tree (shared nodes) and per-node
  /// addresses would be ambiguous; the AST annotations are then invalid
  /// and evaluation must use the named-chain path.
  bool ok() const { return Ok; }

  /// Shape of the program's top-level frame (letrecs at the program's
  /// outermost level live here). May have zero slots.
  const FrameShape *rootShape() const { return Root; }

  /// Total number of frame shapes (diagnostics/tests).
  size_t numShapes() const { return Shapes.size(); }

  /// Shape-id decode table for run-time frames: entry `S->Id` is `S`.
  /// Entry 0 is the shared primitives-frame shape (seeded by the
  /// resolver); machines hand this to EnvView so monitors can map a
  /// frame's packed shape id back to its slot names.
  const FrameShape *const *shapeTable() const { return Table.data(); }

private:
  friend class Resolver;
  FrameShape *newShape() {
    Shapes.emplace_back();
    FrameShape *S = &Shapes.back();
    S->Id = static_cast<uint32_t>(Table.size());
    Table.push_back(S);
    return S;
  }

  std::deque<FrameShape> Shapes;
  std::vector<const FrameShape *> Table;
  const FrameShape *Root = nullptr;
  bool Ok = true;
};

/// Runs the resolution pass over \p Program (see file comment). Always
/// returns a Resolution; check ok() before using the annotations.
///
/// The pass *writes* the AST annotation fields, so it must never run
/// concurrently with anything reading them — including another run of the
/// same tree. Single-threaded analysis and tests may call this directly;
/// execution paths (interpreter, compiler) go through
/// resolveProgramCached() instead, which serializes the write and reuses
/// one Resolution per tree.
std::unique_ptr<Resolution> resolveProgram(const Expr *Program);

/// Memoized, thread-safe front end to resolveProgram(): resolves each tree
/// at most once and hands every caller the same Resolution, pinned by a
/// process-wide cache so it outlives all runs that use it. This is what
/// makes one Expr tree shareable by concurrent runs (Session workers
/// time-slicing many runs of one program): the mutating pass happens once,
/// under the cache mutex — which also publishes the annotation writes to
/// every thread that looks the tree up afterwards — and later lookups are
/// read-only. Stale entries (the tree died; a new one reuses the root
/// address) are detected via Expr::ResolutionStamp and re-resolved.
std::shared_ptr<const Resolution> resolveProgramCached(const Expr *Program);

} // namespace monsem

#endif // MONSEM_ANALYSIS_RESOLVER_H
