//===- monitor/FaultIsolation.cpp ------------------------------------------===//

#include "monitor/FaultIsolation.h"

using namespace monsem;

const char *monsem::faultPolicyName(FaultPolicy P) {
  switch (P) {
  case FaultPolicy::Quarantine:
    return "quarantine";
  case FaultPolicy::Abort:
    return "abort";
  case FaultPolicy::RetryThenQuarantine:
    return "retry";
  }
  return "?";
}

bool monsem::parseFaultPolicy(std::string_view Name, FaultPolicy &Out) {
  if (Name == "quarantine")
    Out = FaultPolicy::Quarantine;
  else if (Name == "abort")
    Out = FaultPolicy::Abort;
  else if (Name == "retry")
    Out = FaultPolicy::RetryThenQuarantine;
  else
    return false;
  return true;
}

std::string MonitorFault::str() const {
  std::string Out = "monitor '" + MonitorName + "' fault in " +
                    (InPost ? "post" : "pre") + " at " + Site + " (step " +
                    std::to_string(Step) + "): " + Message;
  if (Quarantined)
    Out += " [quarantined]";
  return Out;
}

void FaultIsolator::configure(unsigned NumMonitors, FaultPolicy Default,
                              unsigned RetryBudget) {
  Slots.assign(NumMonitors, Slot{Default, RetryBudget, false});
}

void FaultIsolator::setPolicy(unsigned Idx, FaultPolicy P) {
  if (Idx < Slots.size())
    Slots[Idx].Policy = P;
}

bool FaultIsolator::onFault(unsigned Idx, std::string_view Name,
                            std::string_view Site, bool InPost,
                            uint64_t Step, std::string Message) {
  MonitorFault F;
  F.MonitorIndex = Idx;
  F.MonitorName = std::string(Name);
  F.Site = std::string(Site);
  F.InPost = InPost;
  F.Step = Step;
  F.Message = std::move(Message);

  // A hook of an unconfigured cascade (never expected, but don't make a
  // fault handler the thing that crashes): treat as quarantine-on-first.
  if (Idx >= Slots.size()) {
    F.Quarantined = true;
    Faults.push_back(std::move(F));
    return false;
  }

  Slot &S = Slots[Idx];
  switch (S.Policy) {
  case FaultPolicy::Abort: {
    std::string Msg = F.str();
    Faults.push_back(std::move(F));
    throw MonitorAbort(Msg);
  }
  case FaultPolicy::Quarantine:
    S.Quarantined = true;
    F.Quarantined = true;
    Faults.push_back(std::move(F));
    return false;
  case FaultPolicy::RetryThenQuarantine:
    if (S.Budget == 0) {
      S.Quarantined = true;
      F.Quarantined = true;
      Faults.push_back(std::move(F));
      return false;
    }
    --S.Budget;
    Faults.push_back(std::move(F));
    return true; // Retry the hook.
  }
  return false;
}
