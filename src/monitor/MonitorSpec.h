//===- monitor/MonitorSpec.h - Monitor specifications -----------*- C++ -*-===//
///
/// \file
/// Definition 5.1: a monitor specification is a triple
/// Mon = (MSyn, MAlg, MFun):
///
///  * MSyn — the syntactic domain of monitor annotations: here, the
///    `accepts` predicate over Annotation values (which annotations belong
///    to this monitor's annotation language);
///  * MAlg — the monitor algebras, in particular the monitor-state domain
///    MS: here, the MonitorState subclass built by `initialState`;
///  * MFun — the pair of monitoring functions
///      M_pre  : Ann -> S -> A* -> MS -> MS
///      M_post : Ann -> S -> A* -> A*' -> MS -> MS
///    here, the `pre` and `post` virtual methods.
///
/// Soundness by construction (Theorem 7.7): `pre`/`post` receive const
/// views of the syntax, the semantic context, and the intermediate result,
/// and a mutable reference only to the monitor's *own* state. A monitor is
/// therefore a monitor-state transformer and cannot change program
/// behavior. (Monitors may perform I/O — e.g. the interactive debugger —
/// but only through channels held in their own state.)
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITOR_MONITORSPEC_H
#define MONSEM_MONITOR_MONITORSPEC_H

#include "semantics/Value.h"
#include "support/Checkpoint.h"
#include "syntax/Ast.h"

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace monsem {

/// Root of all monitor-state domains (the sigma in MS). Concrete monitors
/// define their own subclass; the framework only creates, owns, and hands
/// back these objects.
class MonitorState {
public:
  virtual ~MonitorState() = default;

  /// Human-readable rendering of the final state (used by examples and
  /// EXPERIMENTS.md); the paper prints states like `[fac -> 4, mul -> 3]`.
  virtual std::string str() const { return "<state>"; }

  /// Checkpoint support: serialize this state's *data* — counters, tables,
  /// buffered output — never live handles (streams, ballast, callbacks),
  /// which the owning Monitor re-establishes through initialState() on
  /// resume. The default saves nothing, which is correct for stateless
  /// monitors; a monitor that keeps data and does not override these pairs
  /// resumes with a fresh state. See docs/WRITING_MONITORS.md ("Making
  /// your monitor checkpointable").
  virtual void save(Serializer &S) const {}

  /// Inverse of save(): called on a state freshly built by initialState(),
  /// so members not written by save() keep their initial-state values.
  /// Report malformed input via D.fail(); never trust sizes blindly.
  virtual void load(Deserializer &D) {}
};

/// Read-only view of the semantic context (the A*_i arguments: for
/// L_lambda, the environment rho) that a monitoring function receives.
class EnvView {
public:
  explicit EnvView(const EnvNode *Env) : Node(Env) {}
  /// Flat-frame view; \p Table is the resolving Resolution's shape table
  /// (frames store shape ids, not shape pointers).
  EnvView(const EnvFrame *Env, FrameShapeTable Table)
      : Frame(Env), Table(Table) {}

  /// rho(x): innermost binding of \p Name, if any. On the flat-frame
  /// representation, Unit slots (letrec members whose binder has not run
  /// yet) are treated as absent.
  std::optional<Value> lookup(Symbol Name) const {
    if (Frame) {
      if (const Value *V = lookupFrame(Frame, Name, Table))
        return *V;
      return std::nullopt;
    }
    for (const EnvNode *N = Node; N; N = N->Parent)
      if (N->Name == Name)
        return N->Val;
    return std::nullopt;
  }

  /// ToStr(rho(x)) with "?" for unbound names — the tracer's convention.
  std::string lookupStr(Symbol Name) const {
    if (auto V = lookup(Name))
      return toDisplayString(*V);
    return "?";
  }

  /// The visible bindings, innermost first, up to \p Limit entries.
  /// Shadowed duplicates are included (callers can filter).
  std::vector<std::pair<Symbol, Value>> bindings(size_t Limit = 32) const {
    std::vector<std::pair<Symbol, Value>> Out;
    if (Frame) {
      for (const EnvFrame *F = Frame; F && Out.size() < Limit;
           F = F->parent()) {
        const FrameShape *S = frameShape(F, Table);
        for (uint32_t I = S->numSlots(); I-- > 0 && Out.size() < Limit;)
          if (!F->slots()[I].isUnit())
            Out.emplace_back(S->slotName(I), F->slots()[I]);
      }
      return Out;
    }
    for (const EnvNode *N = Node; N && Out.size() < Limit; N = N->Parent)
      Out.emplace_back(N->Name, N->Val);
    return Out;
  }

private:
  const EnvNode *Node = nullptr;
  const EnvFrame *Frame = nullptr;
  FrameShapeTable Table = nullptr;
};

/// What a monitoring function may observe about the rest of the cascade:
/// the states of the monitors *inside* it (derived earlier). This is the
/// Section 6 remark that "a monitor could monitor the behavior of the
/// monitors before it in the cascade".
class MonitorContext {
public:
  virtual ~MonitorContext() = default;

  /// Number of monitors inside the current one in the cascade.
  virtual unsigned numInnerMonitors() const = 0;

  /// Read-only state of inner monitor \p Idx (0 = innermost).
  virtual const MonitorState &innerState(unsigned Idx) const = 0;
};

/// One monitoring probe: the data passed to both M_pre and M_post
/// (M_post additionally receives the intermediate result).
struct MonitorEvent {
  const Annotation &Ann; ///< mu — the annotation.
  const Expr &E;         ///< sbar' — the annotated expression.
  EnvView Env;           ///< rho — the semantic context.
  uint64_t StepIndex;    ///< Machine step count at probe time.
  uint64_t AllocatedBytes; ///< Cumulative arena allocation at probe time.
  const MonitorContext &Ctx;
};

/// A monitor specification (see file comment). Instances are immutable and
/// shareable; all per-run data lives in the MonitorState.
class Monitor {
public:
  virtual ~Monitor();

  /// Monitor name; doubles as the annotation qualifier this monitor claims
  /// (an annotation `{name:...}` is routed to the monitor called `name`).
  virtual std::string_view name() const = 0;

  /// MSyn: does \p Ann belong to this monitor's annotation syntax?
  /// Qualified annotations are pre-routed by qualifier; this predicate is
  /// consulted for the unqualified ones.
  virtual bool accepts(const Annotation &Ann) const = 0;

  /// MAlg: a fresh initial monitor state (the paper's initState/initEnv).
  virtual std::unique_ptr<MonitorState> initialState() const = 0;

  /// MFun, first component: sigma' = M_pre mu sbar' a* sigma.
  virtual void pre(const MonitorEvent &Ev, MonitorState &State) const = 0;

  /// MFun, second component: sigma' = M_post mu sbar' a* iota* sigma.
  virtual void post(const MonitorEvent &Ev, Value Result,
                    MonitorState &State) const = 0;
};

} // namespace monsem

#endif // MONSEM_MONITOR_MONITORSPEC_H
