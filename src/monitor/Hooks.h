//===- monitor/Hooks.h - Machine-side monitoring interface ------*- C++ -*-===//
///
/// \file
/// The interface through which an evaluator (the CEK machine, the direct
/// interpreter, the bytecode VM, the imperative machine) communicates
/// monitoring probes. Definition 4.2's annotated-syntax case becomes:
///
///   case {mu}: s'  =>  Hooks.pre(event);
///                      evaluate s' with a continuation that first calls
///                      Hooks.post(event, result) and then continues;
///
/// A null hooks pointer yields the standard semantics (obliviousness,
/// Definition 7.1 — annotations are skipped entirely).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITOR_HOOKS_H
#define MONSEM_MONITOR_HOOKS_H

#include "monitor/MonitorSpec.h"

namespace monsem {

class MonitorHooks {
public:
  virtual ~MonitorHooks() = default;

  /// updPre = M_pre mu sbar' a* : MS -> MS, applied to the current state.
  /// \p Env is a read-only view of whichever environment representation
  /// the evaluator uses (named chain or flat frames). \p AllocatedBytes is
  /// the run's cumulative arena allocation at probe time (enables
  /// allocation-profiling monitors).
  virtual void pre(const Annotation &Ann, const Expr &E, EnvView Env,
                   uint64_t StepIndex, uint64_t AllocatedBytes) = 0;

  /// updPost = M_post mu sbar' a* iota* : MS -> MS.
  virtual void post(const Annotation &Ann, const Expr &E, EnvView Env,
                    Value Result, uint64_t StepIndex,
                    uint64_t AllocatedBytes) = 0;
};

} // namespace monsem

#endif // MONSEM_MONITOR_HOOKS_H
