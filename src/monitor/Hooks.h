//===- monitor/Hooks.h - Machine-side monitoring interface ------*- C++ -*-===//
///
/// \file
/// The interface through which an evaluator (the CEK machine, the direct
/// interpreter, the bytecode VM, the imperative machine) communicates
/// monitoring probes. Definition 4.2's annotated-syntax case becomes:
///
///   case {mu}: s'  =>  Hooks.pre(event);
///                      evaluate s' with a continuation that first calls
///                      Hooks.post(event, result) and then continues;
///
/// A null hooks pointer yields the standard semantics (obliviousness,
/// Definition 7.1 — annotations are skipped entirely).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITOR_HOOKS_H
#define MONSEM_MONITOR_HOOKS_H

#include "monitor/MonitorSpec.h"
#include "support/Durability.h"
#include "support/Journal.h"

#include <functional>

namespace monsem {

/// The canonical one-line rendering of a probe event. The journal, the
/// event tap (RunOptions::EventSink — what `monsem serve` streams to
/// clients), and the `--resume-journal` tail printer all share these two
/// functions, so every event stream a run can emit is byte-identical.
inline std::string probePreText(const Annotation &Ann) {
  return "pre " + Ann.text();
}
inline std::string probePostText(const Annotation &Ann, Value Result) {
  return "post " + Ann.text() + " = " + toDisplayString(Result);
}

class MonitorHooks {
public:
  virtual ~MonitorHooks() = default;

  /// updPre = M_pre mu sbar' a* : MS -> MS, applied to the current state.
  /// \p Env is a read-only view of whichever environment representation
  /// the evaluator uses (named chain or flat frames). \p AllocatedBytes is
  /// the run's cumulative arena allocation at probe time (enables
  /// allocation-profiling monitors).
  virtual void pre(const Annotation &Ann, const Expr &E, EnvView Env,
                   uint64_t StepIndex, uint64_t AllocatedBytes) = 0;

  /// updPost = M_post mu sbar' a* iota* : MS -> MS.
  virtual void post(const Annotation &Ann, const Expr &E, EnvView Env,
                    Value Result, uint64_t StepIndex,
                    uint64_t AllocatedBytes) = 0;

  /// Checkpoint support: serialize every live monitor state into the
  /// checkpoint's monitor section. The default writes an empty section
  /// (zero monitors), matching hook implementations that carry no state.
  virtual void saveMonitorSection(Serializer &S) const { S.writeU32(0); }

  /// Restores the monitor section written by saveMonitorSection into
  /// freshly initialized states. Mismatches (different cascade) are
  /// reported through D.fail().
  virtual void loadMonitorSection(Deserializer &D) {
    if (D.readU32() != 0)
      D.fail("checkpoint has monitor states but this run has no monitors");
  }
};

/// Decorator that appends every probe event to a run journal before
/// forwarding to the wrapped hooks — the crash-safe event trail the CLI
/// replays after an abort. Checkpoint sections delegate unchanged.
///
/// Append failures are routed to the run's DurabilityTracker (when one is
/// attached): under Abort the tracker throws out of the probe, ending the
/// run; under the degrade policies the event is dropped, the fault is
/// recorded, and — once the journal sink is demoted — further appends are
/// skipped entirely. The wrapped hooks always still see the event: the
/// journal is an observer, and losing it must not change what the monitors
/// observe (Thm. 7.7 one level down).
class JournalingHooks : public MonitorHooks {
public:
  JournalingHooks(MonitorHooks &Inner, Journal &J,
                  DurabilityTracker *Durability = nullptr)
      : Inner(Inner), J(J), Durability(Durability) {}

  void pre(const Annotation &Ann, const Expr &E, EnvView Env,
           uint64_t StepIndex, uint64_t AllocatedBytes) override {
    append(StepIndex, probePreText(Ann));
    Inner.pre(Ann, E, Env, StepIndex, AllocatedBytes);
  }

  void post(const Annotation &Ann, const Expr &E, EnvView Env, Value Result,
            uint64_t StepIndex, uint64_t AllocatedBytes) override {
    append(StepIndex, probePostText(Ann, Result));
    Inner.post(Ann, E, Env, Result, StepIndex, AllocatedBytes);
  }

  void saveMonitorSection(Serializer &S) const override {
    Inner.saveMonitorSection(S);
  }
  void loadMonitorSection(Deserializer &D) override {
    Inner.loadMonitorSection(D);
  }

private:
  void append(uint64_t StepIndex, std::string Text) {
    if (Durability && Durability->degraded("journal"))
      return;
    if (!J.appendEvent(StepIndex, Text) && Durability)
      Durability->report("journal", J.error(), StepIndex);
  }

  MonitorHooks &Inner;
  Journal &J;
  DurabilityTracker *Durability;
};

/// Decorator that hands every probe event — rendered with the same
/// canonical text the journal records — to an in-process observer before
/// forwarding to the wrapped hooks. This is how `monsem serve` streams a
/// run's probe events to the submitting client: the tap sees exactly the
/// event stream a journaled standalone run would have persisted, byte for
/// byte. Like the journal, the tap is an observer: it cannot change what
/// the monitors see (Thm. 7.7 one level down), and it must not throw.
class EventTapHooks : public MonitorHooks {
public:
  using Sink = std::function<void(uint64_t Step, const std::string &Text)>;

  EventTapHooks(MonitorHooks &Inner, Sink Tap)
      : Inner(Inner), Tap(std::move(Tap)) {}

  void pre(const Annotation &Ann, const Expr &E, EnvView Env,
           uint64_t StepIndex, uint64_t AllocatedBytes) override {
    Tap(StepIndex, probePreText(Ann));
    Inner.pre(Ann, E, Env, StepIndex, AllocatedBytes);
  }

  void post(const Annotation &Ann, const Expr &E, EnvView Env, Value Result,
            uint64_t StepIndex, uint64_t AllocatedBytes) override {
    Tap(StepIndex, probePostText(Ann, Result));
    Inner.post(Ann, E, Env, Result, StepIndex, AllocatedBytes);
  }

  void saveMonitorSection(Serializer &S) const override {
    Inner.saveMonitorSection(S);
  }
  void loadMonitorSection(Deserializer &D) override {
    Inner.loadMonitorSection(D);
  }

private:
  MonitorHooks &Inner;
  Sink Tap;
};

} // namespace monsem

#endif // MONSEM_MONITOR_HOOKS_H
