//===- monitor/Cascade.cpp -------------------------------------------------===//

#include "monitor/Cascade.h"

using namespace monsem;

Monitor::~Monitor() = default;

int Cascade::resolve(const Annotation &Ann, DiagnosticSink *Diags) const {
  // Qualified annotations route by monitor name and are unambiguous.
  if (Ann.Qual) {
    for (unsigned I = 0; I < Monitors.size(); ++I)
      if (Monitors[I]->name() == Ann.Qual.str())
        return static_cast<int>(I);
    return -1;
  }
  int Found = -1;
  for (unsigned I = 0; I < Monitors.size(); ++I) {
    if (!Monitors[I]->accepts(Ann))
      continue;
    if (Found >= 0) {
      if (Diags)
        Diags->error(Ann.Loc,
                     "annotation " + Ann.text() +
                         " is claimed by two monitors ('" +
                         std::string(Monitors[Found]->name()) + "' and '" +
                         std::string(Monitors[I]->name()) +
                         "'); qualify it or make the syntaxes disjoint");
      return -2;
    }
    Found = static_cast<int>(I);
  }
  return Found;
}

bool Cascade::validateFor(const Expr *Program, DiagnosticSink &Diags) const {
  std::vector<const Annotation *> Anns;
  collectAnnotations(Program, Anns);
  bool Ok = true;
  for (const Annotation *Ann : Anns)
    if (resolve(*Ann, &Diags) == -2)
      Ok = false;
  return Ok;
}

unsigned Cascade::reportUnclaimed(const Expr *Program,
                                  DiagnosticSink &Diags) const {
  std::vector<const Annotation *> Anns;
  collectAnnotations(Program, Anns);
  unsigned Count = 0;
  for (const Annotation *Ann : Anns) {
    if (resolve(*Ann) == -1) {
      ++Count;
      Diags.warning(Ann->Loc, "annotation " + Ann->text() +
                                  " is not claimed by any monitor in the "
                                  "cascade and will be skipped");
    }
  }
  return Count;
}

Cascade monsem::cascadeOf(std::initializer_list<const Monitor *> Ms) {
  Cascade C;
  for (const Monitor *M : Ms)
    C.use(*M);
  return C;
}

RuntimeCascade::RuntimeCascade(const Cascade &C, FaultPolicy DefaultPolicy,
                               unsigned RetryBudget)
    : C(C) {
  for (unsigned I = 0; I < C.size(); ++I)
    States.push_back(C.monitor(I).initialState());
  Iso.configure(C.size(), DefaultPolicy, RetryBudget);
  for (unsigned I = 0; I < C.size(); ++I)
    if (auto P = C.faultPolicy(I))
      Iso.setPolicy(I, *P);
}

int RuntimeCascade::resolveCached(const Annotation &Ann) {
  auto It = ResolutionCache.find(&Ann);
  if (It != ResolutionCache.end())
    return It->second;
  int Idx = C.resolve(Ann);
  if (Idx == -2)
    Idx = -1; // Ambiguous: validateFor should have caught it; skip probe.
  ResolutionCache.emplace(&Ann, Idx);
  return Idx;
}

void RuntimeCascade::pre(const Annotation &Ann, const Expr &E, EnvView Env,
                         uint64_t StepIndex, uint64_t AllocatedBytes) {
  int Idx = resolveCached(Ann);
  if (Idx < 0)
    return;
  InnerView View(*this, static_cast<unsigned>(Idx));
  MonitorEvent Ev{Ann, E, Env, StepIndex, AllocatedBytes, View};
  Iso.guard(static_cast<unsigned>(Idx), C.monitor(Idx).name(), Ann.text(),
            /*InPost=*/false, StepIndex,
            [&] { C.monitor(Idx).pre(Ev, *States[Idx]); });
}

void RuntimeCascade::post(const Annotation &Ann, const Expr &E, EnvView Env,
                          Value Result, uint64_t StepIndex,
                          uint64_t AllocatedBytes) {
  int Idx = resolveCached(Ann);
  if (Idx < 0)
    return;
  InnerView View(*this, static_cast<unsigned>(Idx));
  MonitorEvent Ev{Ann, E, Env, StepIndex, AllocatedBytes, View};
  Iso.guard(static_cast<unsigned>(Idx), C.monitor(Idx).name(), Ann.text(),
            /*InPost=*/true, StepIndex,
            [&] { C.monitor(Idx).post(Ev, Result, *States[Idx]); });
}

std::vector<std::unique_ptr<MonitorState>> RuntimeCascade::takeStates() {
  return std::move(States);
}

void RuntimeCascade::saveMonitorSection(Serializer &S) const {
  S.writeU32(C.size());
  for (unsigned I = 0; I < C.size(); ++I) {
    S.writeString(std::string(C.monitor(I).name()));
    Serializer Blob;
    States[I]->save(Blob);
    S.writeU32(static_cast<uint32_t>(Blob.size()));
    S.writeBytes(Blob.bytes().data(), Blob.size());
  }
}

void RuntimeCascade::loadMonitorSection(Deserializer &D) {
  uint32_t N = D.readU32();
  if (!D.ok())
    return;
  if (N != C.size()) {
    D.fail("checkpoint was written with a different number of monitors (" +
           std::to_string(N) + " saved, " + std::to_string(C.size()) +
           " in this run's cascade)");
    return;
  }
  for (unsigned I = 0; I < C.size(); ++I) {
    std::string Name = D.readString();
    if (!D.ok())
      return;
    if (Name != C.monitor(I).name()) {
      D.fail("checkpoint monitor #" + std::to_string(I) + " is '" + Name +
             "' but this run's cascade has '" +
             std::string(C.monitor(I).name()) + "' at that position");
      return;
    }
    uint32_t Len = D.readU32();
    if (!D.ok())
      return;
    if (Len > D.remaining()) {
      D.fail("monitor state blob for '" + Name + "' is truncated");
      return;
    }
    // Each state's load() runs against a sub-view of exactly its own blob,
    // so a monitor that misreads its bytes cannot desynchronize the rest
    // of the section.
    Deserializer Sub(D.cursor(), Len);
    States[I]->load(Sub);
    if (!Sub.ok()) {
      D.fail("monitor '" + Name + "': " + Sub.error());
      return;
    }
    D.skip(Len);
  }
}
