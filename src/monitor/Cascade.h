//===- monitor/Cascade.h - Monitor composition ------------------*- C++ -*-===//
///
/// \file
/// Section 6: monitors compose. `Cascade` is an ordered list of monitor
/// specifications — index 0 is the innermost monitor (the first one derived
/// from the standard semantics); each later monitor is derived from the
/// semantics produced by its predecessors and may observe their states.
///
/// The section's constraint that annotation syntaxes be *disjoint* is
/// enforced by `validateFor`: for a given program, every annotation must be
/// claimed by at most one monitor in the cascade (annotations claimed by
/// none are fine — the semantics is oblivious to them, Definition 7.1).
/// Qualified annotations `{name:...}` are disjoint by construction.
///
/// `RuntimeCascade` instantiates the cascade for one execution: it owns one
/// MonitorState per monitor and implements the machine-facing MonitorHooks
/// dispatch, including the per-annotation monitor-resolution cache.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITOR_CASCADE_H
#define MONSEM_MONITOR_CASCADE_H

#include "monitor/FaultIsolation.h"
#include "monitor/Hooks.h"
#include "monitor/MonitorSpec.h"
#include "support/Diagnostics.h"

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

namespace monsem {

/// An immutable composition of monitor specifications.
class Cascade {
public:
  Cascade() = default;

  /// Appends \p M as the new outermost monitor; returns *this for chaining
  /// (the paper's `profile & debug` composition operator).
  Cascade &use(const Monitor &M) {
    Monitors.push_back(&M);
    Policies.push_back(std::nullopt);
    return *this;
  }

  /// Same, with a per-monitor fault policy overriding the run-wide default
  /// (RunOptions::MonitorFaultPolicy).
  Cascade &use(const Monitor &M, FaultPolicy P) {
    Monitors.push_back(&M);
    Policies.push_back(P);
    return *this;
  }

  unsigned size() const { return static_cast<unsigned>(Monitors.size()); }
  bool empty() const { return Monitors.empty(); }
  const Monitor &monitor(unsigned Idx) const { return *Monitors[Idx]; }

  /// The per-monitor fault-policy override, if one was given at use().
  std::optional<FaultPolicy> faultPolicy(unsigned Idx) const {
    return Idx < Policies.size() ? Policies[Idx] : std::nullopt;
  }

  /// Resolves \p Ann to the index of the unique monitor that claims it, or
  /// -1 if none does. Ambiguity (more than one claimant for an unqualified
  /// annotation) is reported through \p Diags if provided.
  int resolve(const Annotation &Ann, DiagnosticSink *Diags = nullptr) const;

  /// Checks the disjointness constraint for every annotation in \p Program.
  /// Returns false (with diagnostics) on ambiguity.
  bool validateFor(const Expr *Program, DiagnosticSink &Diags) const;

  /// Emits a warning for every annotation in \p Program that no monitor in
  /// this cascade claims (legal — the semantics is oblivious to them — but
  /// usually a typo in the label or a missing monitor). Returns the number
  /// of unclaimed annotations.
  unsigned reportUnclaimed(const Expr *Program, DiagnosticSink &Diags) const;

private:
  std::vector<const Monitor *> Monitors;
  std::vector<std::optional<FaultPolicy>> Policies;
};

/// Convenience composition: `cascadeOf({&profiler, &tracer})`.
Cascade cascadeOf(std::initializer_list<const Monitor *> Ms);

/// The per-execution instantiation of a cascade (one sigma per monitor)
/// and the dispatch of probes to the claiming monitor.
class RuntimeCascade : public MonitorHooks {
public:
  /// \p DefaultPolicy/\p RetryBudget configure the fault boundary every
  /// hook invocation runs inside (see FaultIsolation.h); per-monitor
  /// overrides come from Cascade::use(M, Policy).
  explicit RuntimeCascade(const Cascade &C,
                          FaultPolicy DefaultPolicy = FaultPolicy::Quarantine,
                          unsigned RetryBudget = 3);

  void pre(const Annotation &Ann, const Expr &E, EnvView Env,
           uint64_t StepIndex, uint64_t AllocatedBytes) override;
  void post(const Annotation &Ann, const Expr &E, EnvView Env,
            Value Result, uint64_t StepIndex,
            uint64_t AllocatedBytes) override;

  /// Checkpoint support: writes one named, length-prefixed record per
  /// monitor (MonitorState::save). The name prefix lets resume verify the
  /// same cascade is being restored; the length prefix keeps one monitor's
  /// framing error from desynchronizing the rest of the section.
  void saveMonitorSection(Serializer &S) const override;
  void loadMonitorSection(Deserializer &D) override;

  /// Final monitor states, transferred to the caller (paper: the sigma'
  /// component of the <alpha, sigma'> answer pair).
  std::vector<std::unique_ptr<MonitorState>> takeStates();

  /// Faults recorded by the fault boundary, transferred to the caller.
  std::vector<MonitorFault> takeFaults() { return Iso.takeFaults(); }
  const FaultIsolator &isolator() const { return Iso; }

  /// Read access while the run is in progress (tests, debugger).
  const MonitorState &state(unsigned Idx) const { return *States[Idx]; }
  MonitorState &state(unsigned Idx) { return *States[Idx]; }
  unsigned numMonitors() const { return C.size(); }

private:
  /// MonitorContext exposing the states of monitors inside monitor \p Idx.
  class InnerView : public MonitorContext {
  public:
    InnerView(const RuntimeCascade &RC, unsigned Idx) : RC(RC), Idx(Idx) {}
    unsigned numInnerMonitors() const override { return Idx; }
    const MonitorState &innerState(unsigned I) const override {
      return *RC.States[I];
    }

  private:
    const RuntimeCascade &RC;
    unsigned Idx;
  };

  int resolveCached(const Annotation &Ann);

  const Cascade &C;
  std::vector<std::unique_ptr<MonitorState>> States;
  std::unordered_map<const Annotation *, int> ResolutionCache;
  FaultIsolator Iso;
};

} // namespace monsem

#endif // MONSEM_MONITOR_CASCADE_H
