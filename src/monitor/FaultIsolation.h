//===- monitor/FaultIsolation.h - Monitor fault boundaries ------*- C++ -*-===//
///
/// \file
/// Fault isolation for monitor hooks. Theorem 7.7 guarantees that a
/// *well-behaved* monitor cannot change the program's answer; this layer
/// extends the guarantee to monitors that misbehave: a `pre`/`post` hook
/// that throws is caught at the hook boundary, the fault is recorded, and a
/// per-monitor policy decides what happens next —
///
///   * Quarantine (default): the offending monitor's hooks are skipped for
///     the rest of the run. For that monitor the derived semantics
///     degenerates to the oblivious functional G_obl of Definition 7.1, so
///     the run still produces the standard answer; the *other* monitors in
///     the cascade keep their probes and their states.
///   * Abort: the fault terminates the run with an error (for monitors
///     whose output is worthless unless complete).
///   * RetryThenQuarantine: the hook is re-invoked against a small error
///     budget before the monitor is quarantined (for monitors with
///     transient failures, e.g. flaky I/O in their own state).
///
/// This is the in-process realization of running monitors "in a separate
/// process" (Jahier & Ducassé) with explicit monitor-failure transitions
/// (Inoue & Yamagata): the hook boundary is the process boundary, and a
/// fault is an observable event in the run's result (MonitorFaults), never
/// a crash of the monitored program.
///
/// `FaultIsolator` is evaluator-agnostic: RuntimeCascade (CEK machine and
/// bytecode VM), the direct CPS interpreter's deriveMonitoring, and
/// ImpRuntimeCascade all guard their hook invocations through it.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITOR_FAULTISOLATION_H
#define MONSEM_MONITOR_FAULTISOLATION_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace monsem {

/// What to do when a monitor's hook throws.
enum class FaultPolicy : uint8_t { Quarantine, Abort, RetryThenQuarantine };

const char *faultPolicyName(FaultPolicy P);

/// Parses "quarantine" / "abort" / "retry"; returns false on anything else.
bool parseFaultPolicy(std::string_view Name, FaultPolicy &Out);

/// One recorded monitor fault: which monitor, at which probe site, at which
/// step, and what it threw.
struct MonitorFault {
  unsigned MonitorIndex = 0;  ///< Index within its cascade.
  std::string MonitorName;
  std::string Site;           ///< Annotation text of the probe, e.g. "{fac}".
  bool InPost = false;        ///< Probe side: updPre (false) or updPost.
  uint64_t Step = 0;          ///< Evaluator step count at fault time.
  std::string Message;        ///< what() of the escaped exception.
  bool Quarantined = false;   ///< Whether this fault tripped quarantine.

  /// "monitor 'prof' fault in pre at {fac} (step 12): boom [quarantined]"
  std::string str() const;
};

/// Raised out of a fault boundary when the faulting monitor's policy is
/// FaultPolicy::Abort; evaluators catch it at the run loop and report an
/// error outcome.
class MonitorAbort : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Per-run quarantine + fault bookkeeping for one cascade. See file
/// comment.
class FaultIsolator {
public:
  FaultIsolator() = default;

  /// Arms the isolator for \p NumMonitors monitors with the run-wide
  /// default policy and retry budget (faults tolerated per monitor before
  /// RetryThenQuarantine quarantines it).
  void configure(unsigned NumMonitors, FaultPolicy Default,
                 unsigned RetryBudget);

  /// Per-monitor policy override (from Cascade::use(M, Policy)).
  void setPolicy(unsigned Idx, FaultPolicy P);

  bool quarantined(unsigned Idx) const {
    return Idx < Slots.size() && Slots[Idx].Quarantined;
  }

  /// Runs \p Hook inside the fault boundary for monitor \p Idx. A hook of
  /// a quarantined monitor is skipped. Anything the hook throws is caught
  /// and handled per the monitor's policy; only MonitorAbort (policy
  /// Abort) propagates to the caller.
  template <typename Fn>
  void guard(unsigned Idx, std::string_view Name, std::string_view Site,
             bool InPost, uint64_t Step, Fn &&Hook) {
    if (quarantined(Idx))
      return;
    while (true) {
      try {
        Hook();
        return;
      } catch (const std::exception &E) {
        if (!onFault(Idx, Name, Site, InPost, Step, E.what()))
          return;
      } catch (...) {
        if (!onFault(Idx, Name, Site, InPost, Step,
                     "non-standard exception"))
          return;
      }
    }
  }

  const std::vector<MonitorFault> &faults() const { return Faults; }
  std::vector<MonitorFault> takeFaults() { return std::move(Faults); }

private:
  /// Records the fault and applies the policy. Returns true to retry the
  /// hook, false to skip it and continue the run; throws MonitorAbort
  /// under FaultPolicy::Abort.
  bool onFault(unsigned Idx, std::string_view Name, std::string_view Site,
               bool InPost, uint64_t Step, std::string Message);

  struct Slot {
    FaultPolicy Policy = FaultPolicy::Quarantine;
    unsigned Budget = 0; ///< Remaining retries (RetryThenQuarantine).
    bool Quarantined = false;
  };

  std::vector<Slot> Slots;
  std::vector<MonitorFault> Faults;
};

} // namespace monsem

#endif // MONSEM_MONITOR_FAULTISOLATION_H
