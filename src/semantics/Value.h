//===- semantics/Value.h - Denotable values ---------------------*- C++ -*-===//
///
/// \file
/// The paper's semantic algebras (Fig. 2):
///
///   Bas = Int + Bool + Str + Nil      basic values (incl. list nil)
///   Fun = V -> Kont -> Ans            function values
///   V   = Bas + Fun (+ Cell + Thunk)  denotable values
///
/// Function values are closures; primitives are also first-class function
/// values (bare or partially applied). Thunks appear only under the lazy
/// evaluation strategies. All heap cells are arena-allocated and trivially
/// destructible.
///
/// A Value is a single 8-byte tagged word passed by value — the
/// representation the machine copies into every environment slot, cons
/// cell, and continuation frame. Arena allocations are at least 8-aligned,
/// so the low three bits of any payload pointer are free to carry the tag;
/// small values are immediates:
///
///     bits  63..16            15..8      7..3      2..0
///          +-----------------+----------+---------+-------+
///   Int    | 48-bit payload  |    0     | imm=Int | tag=0 |  (inline)
///   Bool   |        0        | 0/1      | imm=Bool| tag=0 |
///   Prim   |        0        | opcode   | imm=Prim| tag=0 |
///   Nil    |        0        |    0     | imm=Nil | tag=0 |
///   Unit   |        0        |    0     |    0    |   0   |  (all zero)
///          +-----------------+----------+---------+-------+
///   ptr    |          pointer, low 3 bits zero    | tag!=0|
///          +--------------------------------------+-------+
///
/// Integers in [-2^47, 2^47) are stored inline, sign-extended on decode
/// (`(int64_t)bits >> 16`); anything wider is boxed as an arena int64
/// behind its own pointer tag, so the full int64 range is preserved —
/// `Value::mkInt(v, arena)` picks the representation, and `asInt()` makes
/// the choice unobservable. Unit (the letrec "not yet initialized"
/// placeholder) is the all-zero word, so a zero-filled frame is a frame of
/// placeholders.
///
/// The encoding is invisible outside this file: every consumer goes
/// through the mk*/as*/kind()/is() accessors, which is also why monitors
/// can never observe it (they receive Values, not bits). The flat
/// environment frame header is packed the same way (parent pointer plus
/// shape id in one word — see EnvFrame), and closures carry two words (the
/// defining LamExpr and the captured environment). Configuring with
/// -DMONSEM_VALUE_BOXED=ON restores the legacy representations — two-word
/// tagged Value struct, two-pointer frame header — for differential
/// testing; the accessor API is identical in both builds.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SEMANTICS_VALUE_H
#define MONSEM_SEMANTICS_VALUE_H

#include "support/Arena.h"
#include "support/Symbol.h"
#include "syntax/Ast.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace monsem {

class Value;

/// A single-binding environment frame (the paper's Env = Ide -> V realized
/// as a persistent linked list; extension is O(1) and shares the parent).
/// `Val` is mutated exactly twice in well-formed runs: once to tie the
/// letrec knot and once per thunk update.
struct EnvNode;

/// A flat, array-backed environment frame used by the lexically-addressed
/// CEK machine (see analysis/Resolver.h). The frame header is followed
/// in-place by Shape->numSlots() Values; a variable resolved to address
/// (depth, index) walks `depth` Parent links and indexes slot `index`,
/// with no name comparison. Slot names live in the (static) FrameShape so
/// monitors can still look bindings up by name through EnvView.
struct EnvFrame;

/// A cons cell.
struct Cell;

/// A user-defined function value: the defining `lambda` closed over its
/// environment. Param, body, and the frame shape an application allocates
/// all live on the LamExpr (the resolver annotates Shape there), so the
/// closure carries only the lambda and the captured environment — and a
/// given run uses exactly one environment representation, so the two
/// pointers share a slot. Two words total; closures are the second-highest
/// volume allocation after frames (one per curried application step).
struct Closure {
  const LamExpr *L;
  union {
    EnvNode *Env;   ///< Named-chain runs.
    EnvFrame *FEnv; ///< Flat-frame (lexical) runs.
  };

  Closure(const LamExpr *L, EnvNode *Env) : L(L), Env(Env) {}
  Closure(const LamExpr *L, EnvFrame *FEnv) : L(L), FEnv(FEnv) {}
};

/// A suspended computation (lazy strategies only); defined after Value.
struct Thunk;

/// A binary primitive applied to its first argument.
struct PrimPartial;

/// A closure over compiled bytecode (see compile/Bytecode.h); the VM's
/// counterpart of Closure. Defined here rather than in compile/ so the
/// value-graph serializer (semantics/ValueGraph.h) can rebuild one.
struct VMClosure {
  uint32_t Block;
  EnvNode *Env;
};

enum class ValueKind : uint8_t {
  Unit, ///< The letrec "not yet initialized" placeholder.
  Int,
  Bool,
  Str,
  Nil,
  Cell,
  Closure,
  Prim1,        ///< Unapplied unary primitive.
  Prim2,        ///< Unapplied binary primitive.
  Prim2Partial, ///< Binary primitive with one argument applied.
  Thunk,
  CompiledClosure, ///< Bytecode closure (compile/VM.h).
};

#ifndef MONSEM_VALUE_BOXED

class Value {
public:
  constexpr Value() : B(0) {}

  static constexpr Value mkUnit() { return Value(); }

  /// Inline-only constructor: \p V must be in the 48-bit immediate range
  /// (asserted). Run-time value producers that can see arbitrary int64s —
  /// primitive arithmetic, constant loading — use the arena overload below,
  /// which falls back to a boxed int64.
  static Value mkInt(int64_t V) {
    assert(fitsInline(V) &&
           "int outside the 48-bit inline range needs mkInt(V, Arena)");
    return fromBits(encodeInt(V));
  }
  /// Full-range constructor: inline when \p V fits 48 bits, otherwise a
  /// boxed int64 allocated in \p A. The choice is unobservable through the
  /// accessors (kind() is Int and asInt() returns \p V either way).
  static Value mkInt(int64_t V, Arena &A) {
    if (fitsInline(V))
      return fromBits(encodeInt(V));
    return fromPtr(TagBoxedInt, A.create<int64_t>(V));
  }
  static constexpr Value mkBool(bool V) {
    return fromBits((ImmBool << kImmShift) |
                    (static_cast<uint64_t>(V) << kPayloadShift));
  }
  static Value mkStr(const std::string *S) { return fromPtr(TagStr, S); }
  static constexpr Value mkNil() { return fromBits(ImmNil << kImmShift); }
  static Value mkCell(Cell *C) { return fromPtr(TagCell, C); }
  static Value mkClosure(Closure *C) { return fromPtr(TagClosure, C); }
  static constexpr Value mkPrim1(Prim1Op Op) {
    return fromBits((ImmPrim1 << kImmShift) |
                    (static_cast<uint64_t>(Op) << kPayloadShift));
  }
  static constexpr Value mkPrim2(Prim2Op Op) {
    return fromBits((ImmPrim2 << kImmShift) |
                    (static_cast<uint64_t>(Op) << kPayloadShift));
  }
  static Value mkPrim2Partial(PrimPartial *PP) {
    return fromPtr(TagPrimPartial, PP);
  }
  static Value mkThunk(Thunk *T) { return fromPtr(TagThunk, T); }
  static Value mkCompiledClosure(VMClosure *C) {
    return fromPtr(TagVMClosure, C);
  }

  ValueKind kind() const {
    switch (B & TagMask) {
    case TagImm:
      switch ((B >> kImmShift) & 7) {
      case ImmUnit:
        return ValueKind::Unit;
      case ImmInt:
        return ValueKind::Int;
      case ImmBool:
        return ValueKind::Bool;
      case ImmNil:
        return ValueKind::Nil;
      case ImmPrim1:
        return ValueKind::Prim1;
      default:
        return ValueKind::Prim2;
      }
    case TagCell:
      return ValueKind::Cell;
    case TagClosure:
      return ValueKind::Closure;
    case TagThunk:
      return ValueKind::Thunk;
    case TagPrimPartial:
      return ValueKind::Prim2Partial;
    case TagVMClosure:
      return ValueKind::CompiledClosure;
    case TagStr:
      return ValueKind::Str;
    default: // TagBoxedInt — representation detail; the kind is Int.
      return ValueKind::Int;
    }
  }
  bool is(ValueKind Kind) const { return kind() == Kind; }

  /// The Unit-placeholder tag predicate (see allocFrame): true exactly for
  /// the all-zero word. Cheaper than kind() on the slot-scanning paths.
  constexpr bool isUnit() const { return B == 0; }

  int64_t asInt() const {
    assert(kind() == ValueKind::Int);
    if ((B & TagMask) == TagImm)
      return static_cast<int64_t>(B) >> kPayloadShift16;
    return *static_cast<const int64_t *>(ptr());
  }
  bool asBool() const {
    assert(kind() == ValueKind::Bool);
    return (B >> kPayloadShift) & 1;
  }
  const std::string &asStr() const {
    assert(kind() == ValueKind::Str);
    return *static_cast<const std::string *>(ptr());
  }
  Cell *asCell() const {
    assert(kind() == ValueKind::Cell);
    return static_cast<Cell *>(ptr());
  }
  Closure *asClosure() const {
    assert(kind() == ValueKind::Closure);
    return static_cast<Closure *>(ptr());
  }
  Prim1Op asPrim1() const {
    assert(kind() == ValueKind::Prim1);
    return static_cast<Prim1Op>((B >> kPayloadShift) & 0xFF);
  }
  Prim2Op asPrim2() const {
    assert(kind() == ValueKind::Prim2);
    return static_cast<Prim2Op>((B >> kPayloadShift) & 0xFF);
  }
  PrimPartial *asPrim2Partial() const {
    assert(kind() == ValueKind::Prim2Partial);
    return static_cast<PrimPartial *>(ptr());
  }
  Thunk *asThunk() const {
    assert(kind() == ValueKind::Thunk);
    return static_cast<Thunk *>(ptr());
  }
  VMClosure *asCompiledClosure() const {
    assert(kind() == ValueKind::CompiledClosure);
    return static_cast<VMClosure *>(ptr());
  }

  /// True for closures and (partial) primitives — the paper's Fun domain.
  bool isFunction() const {
    switch (B & TagMask) {
    case TagClosure:
    case TagPrimPartial:
    case TagVMClosure:
      return true;
    case TagImm: {
      uint64_t Imm = (B >> kImmShift) & 7;
      return Imm == ImmPrim1 || Imm == ImmPrim2;
    }
    default:
      return false;
    }
  }

  /// True when \p V survives the 48-bit inline encoding round trip.
  static constexpr bool fitsInline(int64_t V) {
    return V == static_cast<int64_t>(static_cast<uint64_t>(V)
                                     << kPayloadShift16) >>
                    kPayloadShift16;
  }

private:
  // Low-3-bit tags. Tag 0 is the immediate space; every nonzero tag is a
  // pointer whose payload is `B & ~TagMask` (arena objects and std::string
  // are all at least 8-aligned, asserted in fromPtr).
  enum : uint64_t {
    TagMask = 7,
    TagImm = 0,
    TagCell = 1,
    TagClosure = 2,
    TagThunk = 3,
    TagPrimPartial = 4,
    TagVMClosure = 5,
    TagStr = 6,
    TagBoxedInt = 7, ///< Arena int64 outside the inline range.
  };
  // Immediate sub-kinds, bits [5:3]. ImmUnit is 0 so Unit is the all-zero
  // word (the letrec-placeholder convention allocFrame relies on).
  enum : uint64_t {
    ImmUnit = 0,
    ImmInt = 1,
    ImmBool = 2,
    ImmNil = 3,
    ImmPrim1 = 4,
    ImmPrim2 = 5,
  };
  static constexpr unsigned kImmShift = 3;    ///< Sub-kind bits [5:3].
  static constexpr unsigned kPayloadShift = 8;  ///< Bool/opcode payload.
  static constexpr int kPayloadShift16 = 16;    ///< Inline-int payload.

  static constexpr uint64_t encodeInt(int64_t V) {
    return (static_cast<uint64_t>(V) << kPayloadShift16) |
           (ImmInt << kImmShift);
  }
  static constexpr Value fromBits(uint64_t Bits) {
    Value R;
    R.B = Bits;
    return R;
  }
  static Value fromPtr(uint64_t Tag, const void *P) {
    uintptr_t U = reinterpret_cast<uintptr_t>(P);
    assert((U & TagMask) == 0 && "tagged pointers must be 8-aligned");
    Value R;
    R.B = U | Tag;
    return R;
  }
  void *ptr() const {
    return reinterpret_cast<void *>(static_cast<uintptr_t>(B & ~TagMask));
  }

  uint64_t B;
};

static_assert(sizeof(Value) == 8,
              "the tagged Value must be a single machine word");

#else // MONSEM_VALUE_BOXED

/// The legacy two-word representation (ValueKind byte + 8-byte union,
/// padded to 16 bytes), kept buildable behind -DMONSEM_VALUE_BOXED=ON for
/// differential testing against the tagged word above. Same accessor API.
class Value {
public:
  Value() : K(ValueKind::Unit) { P.Int = 0; }

  static Value mkUnit() { return Value(); }
  static Value mkInt(int64_t V) {
    Value R(ValueKind::Int);
    R.P.Int = V;
    return R;
  }
  /// Arena overload for API parity with the tagged build; the boxed
  /// representation holds any int64 inline, so the arena is unused.
  static Value mkInt(int64_t V, Arena &) { return mkInt(V); }
  static Value mkBool(bool V) {
    Value R(ValueKind::Bool);
    R.P.B = V;
    return R;
  }
  static Value mkStr(const std::string *S) {
    Value R(ValueKind::Str);
    R.P.S = S;
    return R;
  }
  static Value mkNil() { return Value(ValueKind::Nil); }
  static Value mkCell(Cell *C) {
    Value R(ValueKind::Cell);
    R.P.C = C;
    return R;
  }
  static Value mkClosure(Closure *C) {
    Value R(ValueKind::Closure);
    R.P.Cl = C;
    return R;
  }
  static Value mkPrim1(Prim1Op Op) {
    Value R(ValueKind::Prim1);
    R.P.Op = static_cast<uint8_t>(Op);
    return R;
  }
  static Value mkPrim2(Prim2Op Op) {
    Value R(ValueKind::Prim2);
    R.P.Op = static_cast<uint8_t>(Op);
    return R;
  }
  static Value mkPrim2Partial(PrimPartial *PP) {
    Value R(ValueKind::Prim2Partial);
    R.P.PP = PP;
    return R;
  }
  static Value mkThunk(Thunk *T) {
    Value R(ValueKind::Thunk);
    R.P.T = T;
    return R;
  }
  static Value mkCompiledClosure(VMClosure *C) {
    Value R(ValueKind::CompiledClosure);
    R.P.VC = C;
    return R;
  }

  ValueKind kind() const { return K; }
  bool is(ValueKind Kind) const { return K == Kind; }
  bool isUnit() const { return K == ValueKind::Unit; }

  /// Everything fits the boxed union; mirrors the tagged predicate so
  /// representation-sensitive tests compile in both builds.
  static constexpr bool fitsInline(int64_t) { return true; }

  int64_t asInt() const {
    assert(K == ValueKind::Int);
    return P.Int;
  }
  bool asBool() const {
    assert(K == ValueKind::Bool);
    return P.B;
  }
  const std::string &asStr() const {
    assert(K == ValueKind::Str);
    return *P.S;
  }
  Cell *asCell() const {
    assert(K == ValueKind::Cell);
    return P.C;
  }
  Closure *asClosure() const {
    assert(K == ValueKind::Closure);
    return P.Cl;
  }
  Prim1Op asPrim1() const {
    assert(K == ValueKind::Prim1);
    return static_cast<Prim1Op>(P.Op);
  }
  Prim2Op asPrim2() const {
    assert(K == ValueKind::Prim2);
    return static_cast<Prim2Op>(P.Op);
  }
  PrimPartial *asPrim2Partial() const {
    assert(K == ValueKind::Prim2Partial);
    return P.PP;
  }
  Thunk *asThunk() const {
    assert(K == ValueKind::Thunk);
    return P.T;
  }
  VMClosure *asCompiledClosure() const {
    assert(K == ValueKind::CompiledClosure);
    return P.VC;
  }

  /// True for closures and (partial) primitives — the paper's Fun domain.
  bool isFunction() const {
    return K == ValueKind::Closure || K == ValueKind::Prim1 ||
           K == ValueKind::Prim2 || K == ValueKind::Prim2Partial ||
           K == ValueKind::CompiledClosure;
  }

private:
  explicit Value(ValueKind K) : K(K) { P.Int = 0; }

  ValueKind K;
  union {
    int64_t Int;
    bool B;
    const std::string *S;
    Cell *C;
    Closure *Cl;
    Thunk *T;
    PrimPartial *PP;
    VMClosure *VC;
    uint8_t Op;
  } P;
};

#endif // MONSEM_VALUE_BOXED

struct Cell {
  Value Head;
  Value Tail;
};

struct PrimPartial {
  Prim2Op Op;
  Value First;
};

struct EnvNode {
  Symbol Name;
  Value Val;
  EnvNode *Parent;
};

struct EnvFrame {
#ifndef MONSEM_VALUE_BOXED
  /// Packed header, one word: the parent pointer in the low 47 bits
  /// (x86-64/AArch64 user addresses; asserted on construction) and the
  /// frame shape's per-resolution id in the high 17. The hot path — the
  /// lexical Var transition — only ever decodes the parent; the shape is
  /// needed solely by the monitors' named-lookup paths, which carry the
  /// owning Resolution's shape table (see frameShape below).
  uint64_t Bits;

  static constexpr uint64_t kParentMask = (uint64_t(1) << 47) - 1;

  EnvFrame(const FrameShape *Shape, EnvFrame *Parent);
  EnvFrame *parent() const {
    return reinterpret_cast<EnvFrame *>(Bits & kParentMask);
  }
  uint32_t shapeId() const { return static_cast<uint32_t>(Bits >> 47); }
#else
  const FrameShape *Shape;
  EnvFrame *Parent;

  EnvFrame(const FrameShape *Shape, EnvFrame *Parent)
      : Shape(Shape), Parent(Parent) {}
  EnvFrame *parent() const { return Parent; }
#endif

  Value *slots() { return reinterpret_cast<Value *>(this + 1); }
  const Value *slots() const {
    return reinterpret_cast<const Value *>(this + 1);
  }
};

#ifndef MONSEM_VALUE_BOXED
inline EnvFrame::EnvFrame(const FrameShape *Shape, EnvFrame *Parent) {
  uintptr_t P = reinterpret_cast<uintptr_t>(Parent);
  assert((P & ~kParentMask) == 0 && "parent pointer exceeds 47 bits");
  assert(Shape->Id < (uint32_t(1) << 17) && "frame shape id exceeds 17 bits");
  Bits = (uint64_t(Shape->Id) << 47) | P;
}
#endif

/// A shape-id decode table: entry i is the FrameShape with Id == i. The
/// Resolution that resolved the running program owns it (entry 0 is always
/// the shared primitives-frame shape); named-chain paths pass nullptr.
using FrameShapeTable = const FrameShape *const *;

/// The shape of \p F. The tagged build stores only the shape id in the
/// frame header; the boxed build keeps the direct pointer and ignores
/// \p Table.
inline const FrameShape *frameShape(const EnvFrame *F, FrameShapeTable T) {
#ifndef MONSEM_VALUE_BOXED
  return T[F->shapeId()];
#else
  (void)T;
  return F->Shape;
#endif
}
static_assert(alignof(EnvFrame) % alignof(Value) == 0 &&
                  sizeof(EnvFrame) % alignof(Value) == 0,
              "slot array is stored in-place after the frame header");

struct Thunk {
  enum class State : uint8_t { Unforced, Forcing, Forced };
  const Expr *E;
  EnvNode *Env;
  State St;
  Value Memo; ///< Meaningful only when St == Forced.
  EnvFrame *FEnv = nullptr; ///< Flat-frame counterpart of Env.
};

//===----------------------------------------------------------------------===//
// Environment operations
//===----------------------------------------------------------------------===//

inline EnvNode *extendEnv(Arena &A, EnvNode *Parent, Symbol Name, Value V) {
  return A.create<EnvNode>(Name, V, Parent);
}

/// Innermost binding of \p Name, or nullptr.
inline EnvNode *lookupEnv(EnvNode *Env, Symbol Name) {
  for (EnvNode *N = Env; N; N = N->Parent)
    if (N->Name == Name)
      return N;
  return nullptr;
}

/// Allocates a frame of \p Shape with slot 0 = \p Slot0 and every other
/// slot Unit. This is the single home of the Unit-placeholder convention:
/// a default-constructed Value *is* the "letrec member not yet initialized"
/// marker, and slot scanners (lookupFrame, EnvView) test for it with the
/// isUnit() tag predicate rather than re-deriving the convention.
inline EnvFrame *allocFrame(Arena &A, const FrameShape *Shape,
                            EnvFrame *Parent, Value Slot0 = Value()) {
  assert(Value().isUnit() &&
         "default Value must be the Unit placeholder slots are seeded with");
  uint32_t N = Shape->numSlots();
  void *Mem = A.allocate(sizeof(EnvFrame) + N * sizeof(Value),
                         alignof(EnvFrame));
  EnvFrame *F = new (Mem) EnvFrame{Shape, Parent};
  Value *S = F->slots();
  if (N)
    new (S) Value(Slot0);
  for (uint32_t I = 1; I < N; ++I)
    new (S + I) Value();
  return F;
}

/// Innermost non-Unit binding of \p Name in a flat-frame chain, or null.
/// Within a frame, higher slot indices were bound later, so they are
/// scanned first; Unit slots (letrec members whose binder has not run yet,
/// identified by the isUnit() tag predicate) are treated as absent.
/// \p Table is the owning Resolution's shape table (frames store shape
/// ids, not pointers; see EnvFrame).
inline const Value *lookupFrame(const EnvFrame *Env, Symbol Name,
                                FrameShapeTable Table) {
  for (const EnvFrame *F = Env; F; F = F->parent()) {
    const FrameShape *S = frameShape(F, Table);
    for (uint32_t I = S->numSlots(); I-- > 0;)
      if (S->slotName(I) == Name && !F->slots()[I].isUnit())
        return &F->slots()[I];
  }
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Rendering and equality
//===----------------------------------------------------------------------===//

/// The paper's ToStr: "3", "True", "[3, 12, 102]", "<fun>", string contents
/// verbatim, "<thunk>" for unforced thunks (forced ones render their memo).
std::string toDisplayString(Value V);

/// Structural equality as computed by the `=` primitive. Sets \p Ok to
/// false (and returns false) when the comparison is undefined (functions).
bool valueEquals(Value A, Value B, bool &Ok);

} // namespace monsem

#endif // MONSEM_SEMANTICS_VALUE_H
