//===- semantics/Value.h - Denotable values ---------------------*- C++ -*-===//
///
/// \file
/// The paper's semantic algebras (Fig. 2):
///
///   Bas = Int + Bool + Str + Nil      basic values (incl. list nil)
///   Fun = V -> Kont -> Ans            function values
///   V   = Bas + Fun (+ Cell + Thunk)  denotable values
///
/// Function values are closures; primitives are also first-class function
/// values (bare or partially applied). Thunks appear only under the lazy
/// evaluation strategies. All heap cells are arena-allocated and trivially
/// destructible; a Value is a two-word tagged handle passed by value.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SEMANTICS_VALUE_H
#define MONSEM_SEMANTICS_VALUE_H

#include "support/Arena.h"
#include "support/Symbol.h"
#include "syntax/Ast.h"

#include <cassert>
#include <cstdint>
#include <string>

namespace monsem {

class Value;

/// A single-binding environment frame (the paper's Env = Ide -> V realized
/// as a persistent linked list; extension is O(1) and shares the parent).
/// `Val` is mutated exactly twice in well-formed runs: once to tie the
/// letrec knot and once per thunk update.
struct EnvNode;

/// A flat, array-backed environment frame used by the lexically-addressed
/// CEK machine (see analysis/Resolver.h). The frame header is followed
/// in-place by Shape->numSlots() Values; a variable resolved to address
/// (depth, index) walks `depth` Parent links and indexes slot `index`,
/// with no name comparison. Slot names live in the (static) FrameShape so
/// monitors can still look bindings up by name through EnvView.
struct EnvFrame;

/// A cons cell.
struct Cell;

/// A user-defined function value: `lambda Param. Body` closed over Env
/// (named chain) or FEnv + Shape (flat frames). A given run uses exactly
/// one of the two environment representations.
struct Closure {
  Symbol Param;
  const Expr *Body;
  EnvNode *Env = nullptr;
  EnvFrame *FEnv = nullptr;
  const FrameShape *Shape = nullptr; ///< Frame the application allocates.
};

/// A suspended computation (lazy strategies only); defined after Value.
struct Thunk;

/// A binary primitive applied to its first argument.
struct PrimPartial;

/// A closure over compiled bytecode (see compile/Bytecode.h); the VM's
/// counterpart of Closure.
struct VMClosure;

enum class ValueKind : uint8_t {
  Unit, ///< The letrec "not yet initialized" placeholder.
  Int,
  Bool,
  Str,
  Nil,
  Cell,
  Closure,
  Prim1,        ///< Unapplied unary primitive.
  Prim2,        ///< Unapplied binary primitive.
  Prim2Partial, ///< Binary primitive with one argument applied.
  Thunk,
  CompiledClosure, ///< Bytecode closure (compile/VM.h).
};

class Value {
public:
  Value() : K(ValueKind::Unit) { P.Int = 0; }

  static Value mkUnit() { return Value(); }
  static Value mkInt(int64_t V) {
    Value R(ValueKind::Int);
    R.P.Int = V;
    return R;
  }
  static Value mkBool(bool V) {
    Value R(ValueKind::Bool);
    R.P.B = V;
    return R;
  }
  static Value mkStr(const std::string *S) {
    Value R(ValueKind::Str);
    R.P.S = S;
    return R;
  }
  static Value mkNil() { return Value(ValueKind::Nil); }
  static Value mkCell(Cell *C) {
    Value R(ValueKind::Cell);
    R.P.C = C;
    return R;
  }
  static Value mkClosure(Closure *C) {
    Value R(ValueKind::Closure);
    R.P.Cl = C;
    return R;
  }
  static Value mkPrim1(Prim1Op Op) {
    Value R(ValueKind::Prim1);
    R.P.Op = static_cast<uint8_t>(Op);
    return R;
  }
  static Value mkPrim2(Prim2Op Op) {
    Value R(ValueKind::Prim2);
    R.P.Op = static_cast<uint8_t>(Op);
    return R;
  }
  static Value mkPrim2Partial(PrimPartial *PP) {
    Value R(ValueKind::Prim2Partial);
    R.P.PP = PP;
    return R;
  }
  static Value mkThunk(Thunk *T) {
    Value R(ValueKind::Thunk);
    R.P.T = T;
    return R;
  }
  static Value mkCompiledClosure(VMClosure *C) {
    Value R(ValueKind::CompiledClosure);
    R.P.VC = C;
    return R;
  }

  ValueKind kind() const { return K; }
  bool is(ValueKind Kind) const { return K == Kind; }

  int64_t asInt() const {
    assert(K == ValueKind::Int);
    return P.Int;
  }
  bool asBool() const {
    assert(K == ValueKind::Bool);
    return P.B;
  }
  const std::string &asStr() const {
    assert(K == ValueKind::Str);
    return *P.S;
  }
  Cell *asCell() const {
    assert(K == ValueKind::Cell);
    return P.C;
  }
  Closure *asClosure() const {
    assert(K == ValueKind::Closure);
    return P.Cl;
  }
  Prim1Op asPrim1() const {
    assert(K == ValueKind::Prim1);
    return static_cast<Prim1Op>(P.Op);
  }
  Prim2Op asPrim2() const {
    assert(K == ValueKind::Prim2);
    return static_cast<Prim2Op>(P.Op);
  }
  PrimPartial *asPrim2Partial() const {
    assert(K == ValueKind::Prim2Partial);
    return P.PP;
  }
  Thunk *asThunk() const {
    assert(K == ValueKind::Thunk);
    return P.T;
  }
  VMClosure *asCompiledClosure() const {
    assert(K == ValueKind::CompiledClosure);
    return P.VC;
  }

  /// True for closures and (partial) primitives — the paper's Fun domain.
  bool isFunction() const {
    return K == ValueKind::Closure || K == ValueKind::Prim1 ||
           K == ValueKind::Prim2 || K == ValueKind::Prim2Partial ||
           K == ValueKind::CompiledClosure;
  }

private:
  explicit Value(ValueKind K) : K(K) { P.Int = 0; }

  ValueKind K;
  union {
    int64_t Int;
    bool B;
    const std::string *S;
    Cell *C;
    Closure *Cl;
    Thunk *T;
    PrimPartial *PP;
    VMClosure *VC;
    uint8_t Op;
  } P;
};

struct Cell {
  Value Head;
  Value Tail;
};

struct PrimPartial {
  Prim2Op Op;
  Value First;
};

struct EnvNode {
  Symbol Name;
  Value Val;
  EnvNode *Parent;
};

struct EnvFrame {
  const FrameShape *Shape;
  EnvFrame *Parent;

  Value *slots() { return reinterpret_cast<Value *>(this + 1); }
  const Value *slots() const {
    return reinterpret_cast<const Value *>(this + 1);
  }
};
static_assert(alignof(EnvFrame) % alignof(Value) == 0 &&
                  sizeof(EnvFrame) % alignof(Value) == 0,
              "slot array is stored in-place after the frame header");

struct Thunk {
  enum class State : uint8_t { Unforced, Forcing, Forced };
  const Expr *E;
  EnvNode *Env;
  State St;
  Value Memo; ///< Meaningful only when St == Forced.
  EnvFrame *FEnv = nullptr; ///< Flat-frame counterpart of Env.
};

//===----------------------------------------------------------------------===//
// Environment operations
//===----------------------------------------------------------------------===//

inline EnvNode *extendEnv(Arena &A, EnvNode *Parent, Symbol Name, Value V) {
  return A.create<EnvNode>(Name, V, Parent);
}

/// Innermost binding of \p Name, or nullptr.
inline EnvNode *lookupEnv(EnvNode *Env, Symbol Name) {
  for (EnvNode *N = Env; N; N = N->Parent)
    if (N->Name == Name)
      return N;
  return nullptr;
}

/// Allocates a frame of \p Shape with slot 0 = \p Slot0 and every other
/// slot Unit (the letrec "not yet initialized" placeholder).
inline EnvFrame *allocFrame(Arena &A, const FrameShape *Shape,
                            EnvFrame *Parent, Value Slot0 = Value()) {
  uint32_t N = Shape->numSlots();
  void *Mem = A.allocate(sizeof(EnvFrame) + N * sizeof(Value),
                         alignof(EnvFrame));
  EnvFrame *F = new (Mem) EnvFrame{Shape, Parent};
  Value *S = F->slots();
  if (N)
    new (S) Value(Slot0);
  for (uint32_t I = 1; I < N; ++I)
    new (S + I) Value();
  return F;
}

/// Innermost non-Unit binding of \p Name in a flat-frame chain, or null.
/// Within a frame, higher slot indices were bound later, so they are
/// scanned first; Unit slots (letrec members whose binder has not run yet)
/// are treated as absent.
inline const Value *lookupFrame(const EnvFrame *Env, Symbol Name) {
  for (const EnvFrame *F = Env; F; F = F->Parent)
    for (uint32_t I = F->Shape->numSlots(); I-- > 0;)
      if (F->Shape->slotName(I) == Name &&
          !F->slots()[I].is(ValueKind::Unit))
        return &F->slots()[I];
  return nullptr;
}

//===----------------------------------------------------------------------===//
// Rendering and equality
//===----------------------------------------------------------------------===//

/// The paper's ToStr: "3", "True", "[3, 12, 102]", "<fun>", string contents
/// verbatim, "<thunk>" for unforced thunks (forced ones render their memo).
std::string toDisplayString(Value V);

/// Structural equality as computed by the `=` primitive. Sets \p Ok to
/// false (and returns false) when the comparison is undefined (functions).
bool valueEquals(Value A, Value B, bool &Ok);

} // namespace monsem

#endif // MONSEM_SEMANTICS_VALUE_H
