//===- semantics/Answer.cpp ------------------------------------------------===//

#include "semantics/Answer.h"

using namespace monsem;

const StdAnswerAlgebra &StdAnswerAlgebra::instance() {
  static const StdAnswerAlgebra Algebra;
  return Algebra;
}

const StringAnswerAlgebra &StringAnswerAlgebra::instance() {
  static const StringAnswerAlgebra Algebra;
  return Algebra;
}
