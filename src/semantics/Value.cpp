//===- semantics/Value.cpp -------------------------------------------------===//

#include "semantics/Value.h"

using namespace monsem;

namespace {

void render(std::string &Out, Value V) {
  switch (V.kind()) {
  case ValueKind::Unit:
    Out += "<uninitialized>";
    return;
  case ValueKind::Int:
    Out += std::to_string(V.asInt());
    return;
  case ValueKind::Bool:
    Out += V.asBool() ? "True" : "False";
    return;
  case ValueKind::Str:
    Out += V.asStr();
    return;
  case ValueKind::Nil:
    Out += "[]";
    return;
  case ValueKind::Cell: {
    Out += '[';
    Value Cur = V;
    bool First = true;
    while (Cur.is(ValueKind::Cell)) {
      if (!First)
        Out += ", ";
      First = false;
      render(Out, Cur.asCell()->Head);
      Cur = Cur.asCell()->Tail;
    }
    if (!Cur.is(ValueKind::Nil)) {
      // Improper list: render the dotted tail.
      Out += " . ";
      render(Out, Cur);
    }
    Out += ']';
    return;
  }
  case ValueKind::Closure:
  case ValueKind::CompiledClosure:
    Out += "<fun>";
    return;
  case ValueKind::Prim1:
    Out += "<prim ";
    Out += prim1Name(V.asPrim1());
    Out += '>';
    return;
  case ValueKind::Prim2:
    Out += "<prim ";
    Out += prim2Name(V.asPrim2());
    Out += '>';
    return;
  case ValueKind::Prim2Partial:
    Out += "<prim ";
    Out += prim2Name(V.asPrim2Partial()->Op);
    Out += " _>";
    return;
  case ValueKind::Thunk: {
    const Thunk *T = V.asThunk();
    if (T->St == Thunk::State::Forced) {
      render(Out, T->Memo);
      return;
    }
    Out += "<thunk>";
    return;
  }
  }
}

} // namespace

std::string monsem::toDisplayString(Value V) {
  std::string Out;
  render(Out, V);
  return Out;
}

bool monsem::valueEquals(Value A, Value B, bool &Ok) {
  // Forced thunks compare through their memo.
  if (A.is(ValueKind::Thunk) && A.asThunk()->St == Thunk::State::Forced)
    return valueEquals(A.asThunk()->Memo, B, Ok);
  if (B.is(ValueKind::Thunk) && B.asThunk()->St == Thunk::State::Forced)
    return valueEquals(A, B.asThunk()->Memo, Ok);

  if (A.isFunction() || B.isFunction() || A.is(ValueKind::Thunk) ||
      B.is(ValueKind::Thunk)) {
    Ok = false;
    return false;
  }
  if (A.kind() != B.kind())
    return false;
  switch (A.kind()) {
  case ValueKind::Int:
    return A.asInt() == B.asInt();
  case ValueKind::Bool:
    return A.asBool() == B.asBool();
  case ValueKind::Str:
    return A.asStr() == B.asStr();
  case ValueKind::Nil:
    return true;
  case ValueKind::Cell: {
    const Cell *CA = A.asCell(), *CB = B.asCell();
    return valueEquals(CA->Head, CB->Head, Ok) && Ok &&
           valueEquals(CA->Tail, CB->Tail, Ok) && Ok;
  }
  case ValueKind::Unit:
    return true;
  default:
    return false;
  }
}
