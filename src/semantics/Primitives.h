//===- semantics/Primitives.h - Primitive operations ------------*- C++ -*-===//
///
/// \file
/// Strict application of the built-in operators over denotable values. A
/// primitive either produces a value or a run-time error message; errors
/// abort evaluation (they are reported through the final answer, never
/// through C++ exceptions).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SEMANTICS_PRIMITIVES_H
#define MONSEM_SEMANTICS_PRIMITIVES_H

#include "semantics/Value.h"

#include <string>

namespace monsem {

/// Result of a primitive application.
struct PrimResult {
  bool Ok = true;
  Value Val;
  std::string Error;

  static PrimResult ok(Value V) {
    PrimResult R;
    R.Val = V;
    return R;
  }
  static PrimResult err(std::string Msg) {
    PrimResult R;
    R.Ok = false;
    R.Error = std::move(Msg);
    return R;
  }
};

/// Applies a unary primitive. \p A allocates cons cells if needed.
PrimResult applyPrim1(Prim1Op Op, Value V, Arena &A);

/// Applies a binary primitive.
PrimResult applyPrim2(Prim2Op Op, Value L, Value R, Arena &A);

/// One binding of the initial environment: a primitive name and its
/// first-class function value.
struct PrimBinding {
  Symbol Name;
  Value Val;
};

/// The initial-environment bindings in slot order — the single source of
/// truth shared by initialEnv (named chain), initialFrame (flat frame) and
/// the resolver (static addresses into the global frame).
const std::vector<PrimBinding> &primBindings();

/// The frame shape of the initial environment (slot i names
/// primBindings()[i]).
const FrameShape *primFrameShape();

/// Builds the initial environment binding every primitive name (`hd`,
/// `min`, ...) to its first-class function value, so unsaturated or
/// shadow-escaping uses still work.
EnvNode *initialEnv(Arena &A);

/// Flat-frame counterpart of initialEnv: one frame of primFrameShape().
EnvFrame *initialFrame(Arena &A);

} // namespace monsem

#endif // MONSEM_SEMANTICS_PRIMITIVES_H
