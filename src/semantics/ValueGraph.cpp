//===- semantics/ValueGraph.cpp -------------------------------------------===//

#include "semantics/ValueGraph.h"

using namespace monsem;

namespace {

// Object record kinds. Part of the checkpoint wire format (DESIGN.md);
// values must never be renumbered within a format version.
enum : uint8_t {
  ObjStr = 1,
  ObjCell = 2,
  ObjClosure = 3,
  ObjThunk = 4,
  ObjPrimPartial = 5,
  ObjEnvNode = 6,
  ObjEnvFrame = 7,
  ObjVMClosure = 8,
};

// Value encodings. Deliberately distinct from ValueKind so the in-memory
// enum can evolve without changing the format.
enum : uint8_t {
  ValUnit = 0,
  ValInt = 1,
  ValBool = 2,
  ValStr = 3,
  ValNil = 4,
  ValCell = 5,
  ValClosure = 6,
  ValPrim1 = 7,
  ValPrim2 = 8,
  ValPrim2Partial = 9,
  ValThunk = 10,
  ValCompiledClosure = 11,
};

// Closure env-union discriminants on the wire.
enum : uint8_t { EnvNone = 0, EnvNamed = 1, EnvFlat = 2 };

constexpr uint8_t kMaxPrim1 = static_cast<uint8_t>(Prim1Op::Abs);
constexpr uint8_t kMaxPrim2 = static_cast<uint8_t>(Prim2Op::Max);

} // namespace

//===----------------------------------------------------------------------===//
// Writer
//===----------------------------------------------------------------------===//

uint32_t ValueGraphWriter::idOf(uint8_t Kind, const void *Ptr) {
  if (!Ptr)
    return 0;
  auto [It, New] = ObjectIds.emplace(Ptr, NumObjects + 1);
  if (New) {
    ++NumObjects;
    Worklist.push_back(Pending{Kind, Ptr});
  }
  return It->second;
}

uint32_t ValueGraphWriter::idOfEnvNode(const EnvNode *N) {
  return idOf(ObjEnvNode, N);
}
uint32_t ValueGraphWriter::idOfEnvFrame(const EnvFrame *F) {
  if (F && !Shapes)
    fail("flat environment frame in a graph without a shape table");
  return idOf(ObjEnvFrame, F);
}
uint32_t ValueGraphWriter::idOfThunk(const Thunk *T) {
  return idOf(ObjThunk, T);
}

void ValueGraphWriter::encodeExprRef(Serializer &S, const Expr *E) {
  if (!E) {
    S.writeU32(0);
    return;
  }
  if (!Exprs) {
    fail("expression reference in a graph without an expression table");
    S.writeU32(0);
    return;
  }
  uint32_t Id = Exprs->idOf(E);
  if (!Id)
    fail("expression is not part of the checkpointed program tree");
  S.writeU32(Id);
}

void ValueGraphWriter::writeExprRef(const Expr *E) { encodeExprRef(Roots, E); }

void ValueGraphWriter::encodeValue(Serializer &S, Value V) {
  switch (V.kind()) {
  case ValueKind::Unit:
    S.writeU8(ValUnit);
    return;
  case ValueKind::Int:
    // Always the full 64-bit integer: the reader re-picks inline vs boxed
    // for its own build, which is what makes checkpoints portable between
    // tagged and MONSEM_VALUE_BOXED binaries.
    S.writeU8(ValInt);
    S.writeI64(V.asInt());
    return;
  case ValueKind::Bool:
    S.writeU8(ValBool);
    S.writeBool(V.asBool());
    return;
  case ValueKind::Str:
    S.writeU8(ValStr);
    S.writeU32(idOf(ObjStr, &V.asStr()));
    return;
  case ValueKind::Nil:
    S.writeU8(ValNil);
    return;
  case ValueKind::Cell:
    S.writeU8(ValCell);
    S.writeU32(idOf(ObjCell, V.asCell()));
    return;
  case ValueKind::Closure:
    S.writeU8(ValClosure);
    S.writeU32(idOf(ObjClosure, V.asClosure()));
    return;
  case ValueKind::Prim1:
    S.writeU8(ValPrim1);
    S.writeU8(static_cast<uint8_t>(V.asPrim1()));
    return;
  case ValueKind::Prim2:
    S.writeU8(ValPrim2);
    S.writeU8(static_cast<uint8_t>(V.asPrim2()));
    return;
  case ValueKind::Prim2Partial:
    S.writeU8(ValPrim2Partial);
    S.writeU32(idOf(ObjPrimPartial, V.asPrim2Partial()));
    return;
  case ValueKind::Thunk:
    S.writeU8(ValThunk);
    S.writeU32(idOfThunk(V.asThunk()));
    return;
  case ValueKind::CompiledClosure:
    S.writeU8(ValCompiledClosure);
    S.writeU32(idOf(ObjVMClosure, V.asCompiledClosure()));
    return;
  }
}

void ValueGraphWriter::writeValue(Value V) { encodeValue(Roots, V); }

void ValueGraphWriter::emit(const Pending &P) {
  Objects.writeU8(P.Kind);
  switch (P.Kind) {
  case ObjStr: {
    Objects.writeString(*static_cast<const std::string *>(P.Ptr));
    return;
  }
  case ObjCell: {
    const Cell *C = static_cast<const Cell *>(P.Ptr);
    encodeValue(Objects, C->Head);
    encodeValue(Objects, C->Tail);
    return;
  }
  case ObjClosure: {
    const Closure *C = static_cast<const Closure *>(P.Ptr);
    encodeExprRef(Objects, C->L);
    if (LexicalEnvs) {
      Objects.writeU8(C->FEnv ? EnvFlat : EnvNone);
      Objects.writeU32(idOfEnvFrame(C->FEnv));
    } else {
      Objects.writeU8(C->Env ? EnvNamed : EnvNone);
      Objects.writeU32(idOfEnvNode(C->Env));
    }
    return;
  }
  case ObjThunk: {
    const Thunk *T = static_cast<const Thunk *>(P.Ptr);
    encodeExprRef(Objects, T->E);
    Objects.writeU32(idOfEnvNode(T->Env));
    Objects.writeU32(idOfEnvFrame(T->FEnv));
    Objects.writeU8(static_cast<uint8_t>(T->St));
    encodeValue(Objects, T->Memo);
    return;
  }
  case ObjPrimPartial: {
    const PrimPartial *PP = static_cast<const PrimPartial *>(P.Ptr);
    Objects.writeU8(static_cast<uint8_t>(PP->Op));
    encodeValue(Objects, PP->First);
    return;
  }
  case ObjEnvNode: {
    const EnvNode *N = static_cast<const EnvNode *>(P.Ptr);
    Objects.writeString(N->Name.str());
    encodeValue(Objects, N->Val);
    Objects.writeU32(idOfEnvNode(N->Parent));
    return;
  }
  case ObjEnvFrame: {
    const EnvFrame *F = static_cast<const EnvFrame *>(P.Ptr);
    const FrameShape *S = frameShape(F, Shapes);
    Objects.writeU32(S->Id);
    Objects.writeU32(idOfEnvFrame(F->parent()));
    Objects.writeU32(S->numSlots());
    for (uint32_t I = 0; I < S->numSlots(); ++I)
      encodeValue(Objects, F->slots()[I]);
    return;
  }
  case ObjVMClosure: {
    const VMClosure *C = static_cast<const VMClosure *>(P.Ptr);
    Objects.writeU32(C->Block);
    Objects.writeU32(idOfEnvNode(C->Env));
    return;
  }
  }
}

void ValueGraphWriter::finish(Serializer &Out) {
  while (!Worklist.empty()) {
    Pending P = Worklist.front();
    Worklist.pop_front();
    emit(P);
  }
  Out.writeU32(NumObjects);
  Out.writeBytes(Objects.bytes().data(), Objects.size());
  Out.writeBytes(Roots.bytes().data(), Roots.size());
}

//===----------------------------------------------------------------------===//
// Reader
//===----------------------------------------------------------------------===//

ValueGraphReader::EncValue ValueGraphReader::parseValue() {
  EncValue E;
  E.Kind = D.readU8();
  switch (E.Kind) {
  case ValUnit:
  case ValNil:
    break;
  case ValInt:
    E.Int = D.readI64();
    break;
  case ValBool:
  case ValPrim1:
  case ValPrim2:
    E.Byte = D.readU8();
    break;
  case ValStr:
  case ValCell:
  case ValClosure:
  case ValPrim2Partial:
  case ValThunk:
  case ValCompiledClosure:
    E.Id = D.readU32();
    break;
  default:
    D.fail("unknown value encoding tag in checkpoint");
  }
  return E;
}

void *ValueGraphReader::objAt(uint32_t Id, uint8_t WantKind) {
  if (Id == 0)
    return nullptr;
  if (Id > Recs.size()) {
    D.fail("object id out of range in checkpoint");
    return nullptr;
  }
  Rec &R = Recs[Id - 1];
  if (R.Kind != WantKind) {
    D.fail("object id refers to the wrong object kind in checkpoint");
    return nullptr;
  }
  return R.Obj;
}

const Expr *ValueGraphReader::exprAt(uint32_t Id) {
  if (Id == 0)
    return nullptr;
  if (!Exprs) {
    D.fail("checkpoint references syntax but no program tree was supplied");
    return nullptr;
  }
  const Expr *E = Exprs->exprAt(Id);
  if (!E)
    D.fail("expression id out of range in checkpoint");
  return E;
}

Value ValueGraphReader::decode(const EncValue &E) {
  switch (E.Kind) {
  case ValUnit:
    return Value::mkUnit();
  case ValInt:
    return Value::mkInt(E.Int, A);
  case ValBool:
    return Value::mkBool(E.Byte != 0);
  case ValStr: {
    void *S = objAt(E.Id, ObjStr);
    if (!S) {
      D.fail("string value with null object id in checkpoint");
      return Value();
    }
    return Value::mkStr(static_cast<const std::string *>(S));
  }
  case ValNil:
    return Value::mkNil();
  case ValCell: {
    void *C = objAt(E.Id, ObjCell);
    if (!C) {
      D.fail("cell value with null object id in checkpoint");
      return Value();
    }
    return Value::mkCell(static_cast<Cell *>(C));
  }
  case ValClosure: {
    void *C = objAt(E.Id, ObjClosure);
    if (!C) {
      D.fail("closure value with null object id in checkpoint");
      return Value();
    }
    return Value::mkClosure(static_cast<Closure *>(C));
  }
  case ValPrim1:
    if (E.Byte > kMaxPrim1) {
      D.fail("unary primitive opcode out of range in checkpoint");
      return Value();
    }
    return Value::mkPrim1(static_cast<Prim1Op>(E.Byte));
  case ValPrim2:
    if (E.Byte > kMaxPrim2) {
      D.fail("binary primitive opcode out of range in checkpoint");
      return Value();
    }
    return Value::mkPrim2(static_cast<Prim2Op>(E.Byte));
  case ValPrim2Partial: {
    void *PP = objAt(E.Id, ObjPrimPartial);
    if (!PP) {
      D.fail("partial-primitive value with null object id in checkpoint");
      return Value();
    }
    return Value::mkPrim2Partial(static_cast<PrimPartial *>(PP));
  }
  case ValThunk: {
    void *T = objAt(E.Id, ObjThunk);
    if (!T) {
      D.fail("thunk value with null object id in checkpoint");
      return Value();
    }
    return Value::mkThunk(static_cast<Thunk *>(T));
  }
  case ValCompiledClosure: {
    void *C = objAt(E.Id, ObjVMClosure);
    if (!C) {
      D.fail("compiled-closure value with null object id in checkpoint");
      return Value();
    }
    return Value::mkCompiledClosure(static_cast<VMClosure *>(C));
  }
  }
  return Value();
}

bool ValueGraphReader::readObjects() {
  uint32_t Count = D.readU32();
  if (Count > D.remaining()) { // every record is at least one byte
    D.fail("checkpoint object count exceeds payload size");
    return false;
  }
  Recs.resize(Count);

  // Pass 1: parse every record. References stay encoded as ids.
  for (Rec &R : Recs) {
    R.Kind = D.readU8();
    switch (R.Kind) {
    case ObjStr:
      R.Str = D.readString();
      break;
    case ObjCell:
      R.V1 = parseValue();
      R.V2 = parseValue();
      break;
    case ObjClosure:
      R.A = D.readU32();
      R.Byte = D.readU8();
      R.B = D.readU32();
      break;
    case ObjThunk:
      R.A = D.readU32();
      R.B = D.readU32();
      R.C = D.readU32();
      R.Byte = D.readU8();
      R.V1 = parseValue();
      break;
    case ObjPrimPartial:
      R.Byte = D.readU8();
      R.V1 = parseValue();
      break;
    case ObjEnvNode:
      R.Str = D.readString();
      R.V1 = parseValue();
      R.B = D.readU32();
      break;
    case ObjEnvFrame: {
      R.A = D.readU32();
      R.B = D.readU32();
      R.C = D.readU32();
      if (R.C > D.remaining()) {
        D.fail("frame slot count exceeds payload size in checkpoint");
        return false;
      }
      R.Slots.resize(R.C);
      for (EncValue &E : R.Slots)
        E = parseValue();
      break;
    }
    case ObjVMClosure:
      R.A = D.readU32();
      R.B = D.readU32();
      break;
    default:
      D.fail("unknown object kind in checkpoint");
    }
    if (!D.ok())
      return false;
  }

  // Pass 2: allocate raw storage for every object (cycles and forward
  // references need every pointer to exist before any record is filled).
  for (Rec &R : Recs) {
    switch (R.Kind) {
    case ObjStr:
      Strings.push_back(std::move(R.Str));
      R.Obj = &Strings.back();
      break;
    case ObjCell:
      R.Obj = A.allocate(sizeof(Cell), alignof(Cell));
      break;
    case ObjClosure:
      R.Obj = A.allocate(sizeof(Closure), alignof(Closure));
      break;
    case ObjThunk:
      R.Obj = A.allocate(sizeof(Thunk), alignof(Thunk));
      break;
    case ObjPrimPartial:
      R.Obj = A.allocate(sizeof(PrimPartial), alignof(PrimPartial));
      break;
    case ObjEnvNode:
      R.Obj = A.allocate(sizeof(EnvNode), alignof(EnvNode));
      break;
    case ObjEnvFrame: {
      if (!Shapes || R.A >= NumShapes) {
        D.fail("frame shape id out of range in checkpoint");
        return false;
      }
      if (Shapes[R.A]->numSlots() != R.C) {
        D.fail("frame slot count disagrees with the resolved shape");
        return false;
      }
      R.Obj = A.allocate(sizeof(EnvFrame) + R.C * sizeof(Value),
                         alignof(EnvFrame));
      break;
    }
    case ObjVMClosure:
      R.Obj = A.allocate(sizeof(VMClosure), alignof(VMClosure));
      break;
    }
  }

  // Pass 3: construct each object with its references resolved.
  for (Rec &R : Recs) {
    switch (R.Kind) {
    case ObjStr:
      break;
    case ObjCell:
      new (R.Obj) Cell{decode(R.V1), decode(R.V2)};
      break;
    case ObjClosure: {
      const LamExpr *L = dyn_cast<LamExpr>(exprAt(R.A));
      if (!L) {
        D.fail("closure body id is not a lambda in checkpoint");
        return false;
      }
      if (R.Byte == EnvFlat)
        new (R.Obj) Closure(L, static_cast<EnvFrame *>(objAt(R.B, ObjEnvFrame)));
      else
        new (R.Obj) Closure(L, static_cast<EnvNode *>(objAt(R.B, ObjEnvNode)));
      break;
    }
    case ObjThunk: {
      const Expr *E = exprAt(R.A);
      if (!E) {
        D.fail("thunk expression id is null in checkpoint");
        return false;
      }
      if (R.Byte > static_cast<uint8_t>(Thunk::State::Forced)) {
        D.fail("thunk state out of range in checkpoint");
        return false;
      }
      new (R.Obj) Thunk{E, static_cast<EnvNode *>(objAt(R.B, ObjEnvNode)),
                        static_cast<Thunk::State>(R.Byte), decode(R.V1),
                        static_cast<EnvFrame *>(objAt(R.C, ObjEnvFrame))};
      break;
    }
    case ObjPrimPartial: {
      if (R.Byte > kMaxPrim2) {
        D.fail("partial-primitive opcode out of range in checkpoint");
        return false;
      }
      new (R.Obj) PrimPartial{static_cast<Prim2Op>(R.Byte), decode(R.V1)};
      break;
    }
    case ObjEnvNode:
      new (R.Obj) EnvNode{Symbol::intern(R.Str), decode(R.V1),
                          static_cast<EnvNode *>(objAt(R.B, ObjEnvNode))};
      break;
    case ObjEnvFrame: {
      EnvFrame *F = new (R.Obj)
          EnvFrame(Shapes[R.A], static_cast<EnvFrame *>(objAt(R.B, ObjEnvFrame)));
      Value *S = F->slots();
      for (uint32_t I = 0; I < R.C; ++I)
        new (S + I) Value(decode(R.Slots[I]));
      break;
    }
    case ObjVMClosure:
      new (R.Obj)
          VMClosure{R.A, static_cast<EnvNode *>(objAt(R.B, ObjEnvNode))};
      break;
    }
    if (!D.ok())
      return false;
  }
  return D.ok();
}

Value ValueGraphReader::readValue() { return decode(parseValue()); }

EnvNode *ValueGraphReader::readEnvNodeRef() {
  return static_cast<EnvNode *>(objAt(D.readU32(), ObjEnvNode));
}
EnvFrame *ValueGraphReader::readEnvFrameRef() {
  return static_cast<EnvFrame *>(objAt(D.readU32(), ObjEnvFrame));
}
Thunk *ValueGraphReader::readThunkRef() {
  return static_cast<Thunk *>(objAt(D.readU32(), ObjThunk));
}
const Expr *ValueGraphReader::readExprRef() { return exprAt(D.readU32()); }
