//===- semantics/Primitives.cpp --------------------------------------------===//

#include "semantics/Primitives.h"

using namespace monsem;

static std::string typeName(Value V) {
  switch (V.kind()) {
  case ValueKind::Unit:
    return "uninitialized";
  case ValueKind::Int:
    return "integer";
  case ValueKind::Bool:
    return "boolean";
  case ValueKind::Str:
    return "string";
  case ValueKind::Nil:
    return "empty list";
  case ValueKind::Cell:
    return "list";
  case ValueKind::Closure:
  case ValueKind::CompiledClosure:
  case ValueKind::Prim1:
  case ValueKind::Prim2:
  case ValueKind::Prim2Partial:
    return "function";
  case ValueKind::Thunk:
    return "thunk";
  }
  return "?";
}

static PrimResult typeError(const char *Prim, const char *Expected, Value V) {
  return PrimResult::err(std::string(Prim) + ": expected " + Expected +
                         ", found " + typeName(V));
}

PrimResult monsem::applyPrim1(Prim1Op Op, Value V, Arena &A) {
  switch (Op) {
  case Prim1Op::Neg:
    if (!V.is(ValueKind::Int))
      return typeError("-", "an integer", V);
    return PrimResult::ok(Value::mkInt(-V.asInt(), A));
  case Prim1Op::Abs:
    if (!V.is(ValueKind::Int))
      return typeError("abs", "an integer", V);
    return PrimResult::ok(Value::mkInt(V.asInt() < 0 ? -V.asInt()
                                                     : V.asInt(),
                                       A));
  case Prim1Op::Not:
    if (!V.is(ValueKind::Bool))
      return typeError("not", "a boolean", V);
    return PrimResult::ok(Value::mkBool(!V.asBool()));
  case Prim1Op::Hd:
    if (!V.is(ValueKind::Cell))
      return typeError("hd", "a non-empty list", V);
    return PrimResult::ok(V.asCell()->Head);
  case Prim1Op::Tl:
    if (!V.is(ValueKind::Cell))
      return typeError("tl", "a non-empty list", V);
    return PrimResult::ok(V.asCell()->Tail);
  case Prim1Op::Null:
    if (V.is(ValueKind::Nil))
      return PrimResult::ok(Value::mkBool(true));
    if (V.is(ValueKind::Cell))
      return PrimResult::ok(Value::mkBool(false));
    return typeError("null", "a list", V);
  case Prim1Op::IsInt:
    return PrimResult::ok(Value::mkBool(V.is(ValueKind::Int)));
  case Prim1Op::IsBool:
    return PrimResult::ok(Value::mkBool(V.is(ValueKind::Bool)));
  case Prim1Op::IsPair:
    return PrimResult::ok(Value::mkBool(V.is(ValueKind::Cell)));
  case Prim1Op::IsFun:
    return PrimResult::ok(Value::mkBool(V.isFunction()));
  }
  return PrimResult::err("unknown unary primitive");
}

PrimResult monsem::applyPrim2(Prim2Op Op, Value L, Value R, Arena &A) {
  switch (Op) {
  case Prim2Op::Add:
  case Prim2Op::Sub:
  case Prim2Op::Mul:
  case Prim2Op::Div:
  case Prim2Op::Mod:
  case Prim2Op::Min:
  case Prim2Op::Max: {
    const char *Name = prim2Name(Op);
    if (!L.is(ValueKind::Int))
      return typeError(Name, "an integer", L);
    if (!R.is(ValueKind::Int))
      return typeError(Name, "an integer", R);
    int64_t X = L.asInt(), Y = R.asInt();
    switch (Op) {
    case Prim2Op::Add:
      return PrimResult::ok(Value::mkInt(X + Y, A));
    case Prim2Op::Sub:
      return PrimResult::ok(Value::mkInt(X - Y, A));
    case Prim2Op::Mul:
      return PrimResult::ok(Value::mkInt(X * Y, A));
    case Prim2Op::Div:
      if (Y == 0)
        return PrimResult::err("/: division by zero");
      return PrimResult::ok(Value::mkInt(X / Y, A));
    case Prim2Op::Mod:
      if (Y == 0)
        return PrimResult::err("%: division by zero");
      return PrimResult::ok(Value::mkInt(X % Y, A));
    case Prim2Op::Min:
      return PrimResult::ok(Value::mkInt(X < Y ? X : Y, A));
    case Prim2Op::Max:
      return PrimResult::ok(Value::mkInt(X > Y ? X : Y, A));
    default:
      break;
    }
    return PrimResult::err("unreachable");
  }
  case Prim2Op::Eq:
  case Prim2Op::Ne: {
    bool Ok = true;
    bool Equal = valueEquals(L, R, Ok);
    if (!Ok)
      return PrimResult::err("=: cannot compare functions");
    return PrimResult::ok(Value::mkBool(Op == Prim2Op::Eq ? Equal : !Equal));
  }
  case Prim2Op::Lt:
  case Prim2Op::Le:
  case Prim2Op::Gt:
  case Prim2Op::Ge: {
    const char *Name = prim2Name(Op);
    // Integers and strings are ordered.
    if (L.is(ValueKind::Int) && R.is(ValueKind::Int)) {
      int64_t X = L.asInt(), Y = R.asInt();
      bool B = Op == Prim2Op::Lt   ? X < Y
               : Op == Prim2Op::Le ? X <= Y
               : Op == Prim2Op::Gt ? X > Y
                                   : X >= Y;
      return PrimResult::ok(Value::mkBool(B));
    }
    if (L.is(ValueKind::Str) && R.is(ValueKind::Str)) {
      int C = L.asStr().compare(R.asStr());
      bool B = Op == Prim2Op::Lt   ? C < 0
               : Op == Prim2Op::Le ? C <= 0
               : Op == Prim2Op::Gt ? C > 0
                                   : C >= 0;
      return PrimResult::ok(Value::mkBool(B));
    }
    if (!L.is(ValueKind::Int) && !L.is(ValueKind::Str))
      return typeError(Name, "an integer or string", L);
    return typeError(Name, "an integer or string", R);
  }
  case Prim2Op::Cons: {
    Cell *C = A.create<Cell>(L, R);
    return PrimResult::ok(Value::mkCell(C));
  }
  }
  return PrimResult::err("unknown binary primitive");
}

const std::vector<PrimBinding> &monsem::primBindings() {
  static const std::vector<PrimBinding> Bindings = [] {
    std::vector<PrimBinding> B;
    auto Bind1 = [&](const char *Name, Prim1Op Op) {
      B.push_back({Symbol::intern(Name), Value::mkPrim1(Op)});
    };
    auto Bind2 = [&](const char *Name, Prim2Op Op) {
      B.push_back({Symbol::intern(Name), Value::mkPrim2(Op)});
    };
    Bind1("hd", Prim1Op::Hd);
    Bind1("tl", Prim1Op::Tl);
    Bind1("null", Prim1Op::Null);
    Bind1("not", Prim1Op::Not);
    Bind1("abs", Prim1Op::Abs);
    Bind1("int?", Prim1Op::IsInt);
    Bind1("bool?", Prim1Op::IsBool);
    Bind1("pair?", Prim1Op::IsPair);
    Bind1("fun?", Prim1Op::IsFun);
    Bind2("min", Prim2Op::Min);
    Bind2("max", Prim2Op::Max);
    return B;
  }();
  return Bindings;
}

const FrameShape *monsem::primFrameShape() {
  static const FrameShape Shape = [] {
    FrameShape S;
    for (const PrimBinding &B : primBindings())
      S.Slots.push_back(B.Name);
    return S;
  }();
  return &Shape;
}

EnvNode *monsem::initialEnv(Arena &A) {
  EnvNode *Env = nullptr;
  for (const PrimBinding &B : primBindings())
    Env = extendEnv(A, Env, B.Name, B.Val);
  return Env;
}

EnvFrame *monsem::initialFrame(Arena &A) {
  const std::vector<PrimBinding> &Bs = primBindings();
  EnvFrame *F = allocFrame(A, primFrameShape(), nullptr);
  for (size_t I = 0; I < Bs.size(); ++I)
    F->slots()[I] = Bs[I].Val;
  return F;
}
