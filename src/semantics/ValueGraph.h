//===- semantics/ValueGraph.h - Serializing the value heap ------*- C++ -*-===//
///
/// \file
/// Serialization of the (possibly cyclic) graph of run-time values and
/// environments reachable from a machine's roots — the heart of the
/// checkpoint format. Three identity problems make this more than a tree
/// walk, and each gets an explicit encoding:
///
///  - **Heap identity.** Letrec knots make the value graph cyclic, and
///    thunk updates make sharing observable; every heap object therefore
///    gets a 1-based object id on first discovery, references are written
///    as ids, and the reader rebuilds the graph in two phases (allocate
///    blanks, then fill), so cycles and sharing survive the round trip.
///    Writing only what the roots reach doubles as an arena-compacting
///    copy: garbage never enters the checkpoint.
///
///  - **Syntax identity.** Closures and thunks point into the program AST.
///    Those pointers are process-local, so they are encoded as pre-order
///    indices (ExprTable) into the program tree; the resuming process
///    re-parses the same program and maps indices back. Frame shapes are
///    encoded as resolver shape ids the same way (resolution is a pure
///    function of the tree, so ids agree across processes).
///
///  - **Representation independence.** Integers are always written as
///    64-bit values and re-encoded on load (`Value::mkInt(V, Arena)`), so a
///    checkpoint taken by a tagged-Value build resumes under
///    MONSEM_VALUE_BOXED and vice versa. Strings are written by content and
///    revived into reader-owned storage.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SEMANTICS_VALUEGRAPH_H
#define MONSEM_SEMANTICS_VALUEGRAPH_H

#include "semantics/Value.h"
#include "support/Checkpoint.h"

#include <deque>
#include <unordered_map>
#include <vector>

namespace monsem {

/// Pre-order index over a program tree (collectExprs order): a stable,
/// process-independent name for every node. Ids are 1-based; 0 encodes a
/// null expression.
class ExprTable {
public:
  explicit ExprTable(const Expr *Root) {
    collectExprs(Root, Nodes);
    Ids.reserve(Nodes.size());
    for (uint32_t I = 0; I < Nodes.size(); ++I)
      Ids.emplace(Nodes[I], I + 1);
  }

  const Expr *root() const { return Nodes.front(); }
  uint32_t size() const { return static_cast<uint32_t>(Nodes.size()); }

  /// 1-based pre-order id of \p E, or 0 when \p E is null or foreign to
  /// the indexed tree.
  uint32_t idOf(const Expr *E) const {
    if (!E)
      return 0;
    auto It = Ids.find(E);
    return It == Ids.end() ? 0 : It->second;
  }

  /// Inverse of idOf; null for 0 or out-of-range ids.
  const Expr *exprAt(uint32_t Id) const {
    if (Id == 0 || Id > Nodes.size())
      return nullptr;
    return Nodes[Id - 1];
  }

private:
  std::vector<const Expr *> Nodes;
  std::unordered_map<const Expr *, uint32_t> Ids;
};

/// Serializes values and environments reachable from the roots a machine
/// feeds it. Root encodings are buffered so the object table (discovered
/// while encoding the roots) can precede them in the stream; call finish()
/// last to assemble `[object table][root bytes]` into the checkpoint.
class ValueGraphWriter {
public:
  /// \p Exprs may be null for graphs that never reference syntax (the VM's
  /// heap); encountering a closure or thunk then marks the writer failed.
  /// \p Shapes likewise may be null when no flat frames can occur.
  /// \p LexicalEnvs selects which member of Closure's env union is live.
  ValueGraphWriter(const ExprTable *Exprs, FrameShapeTable Shapes,
                   bool LexicalEnvs)
      : Exprs(Exprs), Shapes(Shapes), LexicalEnvs(LexicalEnvs) {}

  /// The root stream: machines interleave their own scalars (frame kinds,
  /// mode bytes, ...) with encoded references here.
  Serializer &roots() { return Roots; }

  void writeValue(Value V);
  void writeEnvNodeRef(const EnvNode *N) { Roots.writeU32(idOfEnvNode(N)); }
  void writeEnvFrameRef(const EnvFrame *F) { Roots.writeU32(idOfEnvFrame(F)); }
  void writeThunkRef(const Thunk *T) { Roots.writeU32(idOfThunk(T)); }
  void writeExprRef(const Expr *E);

  bool ok() const { return Good; }
  const std::string &error() const { return Err; }

  /// Drains the discovery worklist and appends `[u32 object count]
  /// [object records][root bytes]` to \p Out. Call exactly once.
  void finish(Serializer &Out);

private:
  struct Pending {
    uint8_t Kind;
    const void *Ptr;
  };

  uint32_t idOf(uint8_t Kind, const void *Ptr);
  uint32_t idOfEnvNode(const EnvNode *N);
  uint32_t idOfEnvFrame(const EnvFrame *F);
  uint32_t idOfThunk(const Thunk *T);
  void encodeValue(Serializer &S, Value V);
  void encodeExprRef(Serializer &S, const Expr *E);
  void emit(const Pending &P);
  void fail(std::string Msg) {
    if (Good) {
      Good = false;
      Err = std::move(Msg);
    }
  }

  const ExprTable *Exprs;
  FrameShapeTable Shapes;
  bool LexicalEnvs;
  Serializer Roots;
  Serializer Objects;
  std::unordered_map<const void *, uint32_t> ObjectIds;
  std::deque<Pending> Worklist;
  uint32_t NumObjects = 0;
  bool Good = true;
  std::string Err;
};

/// Rebuilds a value graph written by ValueGraphWriter into \p A. After
/// readObjects() succeeds, the root-section read* calls mirror the writer's
/// root writes one for one. The reader owns the storage of revived strings;
/// keep it (or takeStrings()) alive as long as the rebuilt values.
class ValueGraphReader {
public:
  ValueGraphReader(Deserializer &D, Arena &A, const ExprTable *Exprs,
                   FrameShapeTable Shapes, uint32_t NumShapes)
      : D(D), A(A), Exprs(Exprs), Shapes(Shapes), NumShapes(NumShapes) {}

  /// Parses the object table and rebuilds every object (allocate blanks,
  /// then fill). False — with D failed — on any malformed input.
  bool readObjects();

  Value readValue();
  EnvNode *readEnvNodeRef();
  EnvFrame *readEnvFrameRef();
  Thunk *readThunkRef();
  const Expr *readExprRef();

  /// Ownership of the revived string storage (pointed into by Str values).
  std::deque<std::string> takeStrings() { return std::move(Strings); }

private:
  struct EncValue {
    uint8_t Kind = 0;
    int64_t Int = 0;
    uint8_t Byte = 0;
    uint32_t Id = 0;
  };
  struct Rec {
    uint8_t Kind = 0;
    uint32_t A = 0, B = 0, C = 0;
    uint8_t Byte = 0;
    std::string Str;
    EncValue V1, V2;
    std::vector<EncValue> Slots;
    void *Obj = nullptr;
  };

  EncValue parseValue();
  Value decode(const EncValue &E);
  void *objAt(uint32_t Id, uint8_t WantKind);
  const Expr *exprAt(uint32_t Id);

  Deserializer &D;
  Arena &A;
  const ExprTable *Exprs;
  FrameShapeTable Shapes;
  uint32_t NumShapes;
  std::vector<Rec> Recs;
  std::deque<std::string> Strings;
};

} // namespace monsem

#endif // MONSEM_SEMANTICS_VALUEGRAPH_H
