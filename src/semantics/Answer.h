//===- semantics/Answer.h - Answer algebras ---------------------*- C++ -*-===//
///
/// \file
/// The answer-algebra parameterization of Section 3.1 (Definitions 3.2 and
/// 3.3). The standard continuation semantics is parameterized with an
/// algebra Ans = [Ans; {phi}] whose operation phi maps denotable values to
/// final answers; the initial continuation is kappa_init = \v. phi v.
///
/// Two concrete algebras mirror the paper's examples:
///  * StdAnswerAlgebra — Ans_std: the identity projection (rendered);
///  * StringAnswerAlgebra — Ans_str: "The result is: " ++ toStr(v).
///
/// The *monitoring* answer algebra Ans_mon of Definition 4.1 — phi_bar =
/// theta . phi with theta alpha = \sigma. <alpha, sigma> — is realized by
/// the run result type: an execution yields the pair of phi(value) and the
/// final monitor states.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SEMANTICS_ANSWER_H
#define MONSEM_SEMANTICS_ANSWER_H

#include "semantics/Value.h"

#include <string>

namespace monsem {

/// phi : V -> Ans, rendered as text so answers survive the arena that owns
/// the value's cells.
class AnswerAlgebra {
public:
  virtual ~AnswerAlgebra() = default;
  virtual std::string render(Value V) const = 0;
};

/// Ans_std of Section 3.1.
class StdAnswerAlgebra : public AnswerAlgebra {
public:
  std::string render(Value V) const override { return toDisplayString(V); }
  static const StdAnswerAlgebra &instance();
};

/// Ans_str of Section 3.1: maps results to character strings.
class StringAnswerAlgebra : public AnswerAlgebra {
public:
  std::string render(Value V) const override {
    return "The result is: " + toDisplayString(V);
  }
  static const StringAnswerAlgebra &instance();
};

} // namespace monsem

#endif // MONSEM_SEMANTICS_ANSWER_H
