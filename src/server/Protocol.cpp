//===- server/Protocol.cpp - JSONL parsing and validation ------------------===//

#include "server/Protocol.h"

#include <cctype>
#include <cstdlib>

using namespace monsem;
using json::Value;

//===----------------------------------------------------------------------===//
// JSON parsing
//===----------------------------------------------------------------------===//

const Value *Value::field(std::string_view Name) const {
  if (K != Kind::Object)
    return nullptr;
  auto It = Fields.find(std::string(Name));
  return It == Fields.end() ? nullptr : &It->second;
}

namespace {

/// Recursive-descent parser over a single line. Depth-capped so a
/// pathological request cannot exhaust the C stack.
class Parser {
public:
  Parser(std::string_view Text) : Text(Text) {}

  bool run(Value &Out, std::string &Err) {
    skipWs();
    if (!parseValue(Out, 0)) {
      Err = Error.empty() ? "malformed JSON" : Error;
      return false;
    }
    skipWs();
    if (Pos != Text.size()) {
      Err = "trailing characters after JSON document";
      return false;
    }
    return true;
  }

private:
  static constexpr unsigned kMaxDepth = 64;

  bool fail(std::string Msg) {
    if (Error.empty())
      Error = std::move(Msg);
    return false;
  }

  void skipWs() {
    while (Pos < Text.size() &&
           (Text[Pos] == ' ' || Text[Pos] == '\t' || Text[Pos] == '\n' ||
            Text[Pos] == '\r'))
      ++Pos;
  }

  bool eat(char C) {
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  bool lit(std::string_view L) {
    if (Text.substr(Pos, L.size()) != L)
      return false;
    Pos += L.size();
    return true;
  }

  bool parseValue(Value &Out, unsigned Depth) {
    if (Depth > kMaxDepth)
      return fail("JSON nested too deeply");
    if (Pos >= Text.size())
      return fail("unexpected end of input");
    switch (Text[Pos]) {
    case '{':
      return parseObject(Out, Depth);
    case '[':
      return parseArray(Out, Depth);
    case '"':
      Out.K = Value::Kind::Str;
      return parseString(Out.S);
    case 't':
      Out.K = Value::Kind::Bool;
      Out.B = true;
      return lit("true") || fail("bad literal");
    case 'f':
      Out.K = Value::Kind::Bool;
      Out.B = false;
      return lit("false") || fail("bad literal");
    case 'n':
      Out.K = Value::Kind::Null;
      return lit("null") || fail("bad literal");
    default:
      return parseNumber(Out);
    }
  }

  bool parseObject(Value &Out, unsigned Depth) {
    Out.K = Value::Kind::Object;
    ++Pos; // '{'
    skipWs();
    if (eat('}'))
      return true;
    for (;;) {
      skipWs();
      if (Pos >= Text.size() || Text[Pos] != '"')
        return fail("expected object key");
      std::string Key;
      if (!parseString(Key))
        return false;
      skipWs();
      if (!eat(':'))
        return fail("expected ':' after object key");
      skipWs();
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Fields[std::move(Key)] = std::move(V);
      skipWs();
      if (eat(','))
        continue;
      if (eat('}'))
        return true;
      return fail("expected ',' or '}' in object");
    }
  }

  bool parseArray(Value &Out, unsigned Depth) {
    Out.K = Value::Kind::Array;
    ++Pos; // '['
    skipWs();
    if (eat(']'))
      return true;
    for (;;) {
      skipWs();
      Value V;
      if (!parseValue(V, Depth + 1))
        return false;
      Out.Elems.push_back(std::move(V));
      skipWs();
      if (eat(','))
        continue;
      if (eat(']'))
        return true;
      return fail("expected ',' or ']' in array");
    }
  }

  bool hex4(uint32_t &Out) {
    Out = 0;
    for (int I = 0; I < 4; ++I) {
      if (Pos >= Text.size())
        return fail("truncated \\u escape");
      char C = Text[Pos++];
      uint32_t D;
      if (C >= '0' && C <= '9')
        D = C - '0';
      else if (C >= 'a' && C <= 'f')
        D = C - 'a' + 10;
      else if (C >= 'A' && C <= 'F')
        D = C - 'A' + 10;
      else
        return fail("bad \\u escape");
      Out = Out << 4 | D;
    }
    return true;
  }

  void appendUtf8(std::string &S, uint32_t CP) {
    if (CP < 0x80) {
      S.push_back(static_cast<char>(CP));
    } else if (CP < 0x800) {
      S.push_back(static_cast<char>(0xC0 | (CP >> 6)));
      S.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
    } else if (CP < 0x10000) {
      S.push_back(static_cast<char>(0xE0 | (CP >> 12)));
      S.push_back(static_cast<char>(0x80 | ((CP >> 6) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
    } else {
      S.push_back(static_cast<char>(0xF0 | (CP >> 18)));
      S.push_back(static_cast<char>(0x80 | ((CP >> 12) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | ((CP >> 6) & 0x3F)));
      S.push_back(static_cast<char>(0x80 | (CP & 0x3F)));
    }
  }

  bool parseString(std::string &Out) {
    ++Pos; // '"'
    for (;;) {
      if (Pos >= Text.size())
        return fail("unterminated string");
      char C = Text[Pos++];
      if (C == '"')
        return true;
      if (static_cast<unsigned char>(C) < 0x20)
        return fail("raw control character in string");
      if (C != '\\') {
        Out.push_back(C);
        continue;
      }
      if (Pos >= Text.size())
        return fail("truncated escape");
      char E = Text[Pos++];
      switch (E) {
      case '"':
      case '\\':
      case '/':
        Out.push_back(E);
        break;
      case 'b':
        Out.push_back('\b');
        break;
      case 'f':
        Out.push_back('\f');
        break;
      case 'n':
        Out.push_back('\n');
        break;
      case 'r':
        Out.push_back('\r');
        break;
      case 't':
        Out.push_back('\t');
        break;
      case 'u': {
        uint32_t CP;
        if (!hex4(CP))
          return false;
        if (CP >= 0xD800 && CP <= 0xDBFF) {
          // Surrogate pair.
          if (!lit("\\u"))
            return fail("unpaired surrogate");
          uint32_t Lo;
          if (!hex4(Lo))
            return false;
          if (Lo < 0xDC00 || Lo > 0xDFFF)
            return fail("bad low surrogate");
          CP = 0x10000 + ((CP - 0xD800) << 10) + (Lo - 0xDC00);
        } else if (CP >= 0xDC00 && CP <= 0xDFFF) {
          return fail("unpaired surrogate");
        }
        appendUtf8(Out, CP);
        break;
      }
      default:
        return fail("unknown escape");
      }
    }
  }

  bool parseNumber(Value &Out) {
    size_t Start = Pos;
    if (eat('-'))
      ;
    while (Pos < Text.size() && std::isdigit(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
    if (Pos == Start || (Text[Start] == '-' && Pos == Start + 1))
      return fail("malformed number");
    if (Pos < Text.size() &&
        (Text[Pos] == '.' || Text[Pos] == 'e' || Text[Pos] == 'E'))
      return fail("fractional numbers are not part of the protocol");
    errno = 0;
    std::string Tok(Text.substr(Start, Pos - Start));
    char *End = nullptr;
    long long V = std::strtoll(Tok.c_str(), &End, 10);
    if (errno == ERANGE || End != Tok.c_str() + Tok.size())
      return fail("integer out of range");
    Out.K = Value::Kind::Int;
    Out.I = V;
    return true;
  }

  std::string_view Text;
  size_t Pos = 0;
  std::string Error;
};

} // namespace

bool json::parse(std::string_view Text, Value &Out, std::string &Err) {
  return Parser(Text).run(Out, Err);
}

void json::appendQuoted(std::string &Out, std::string_view S) {
  Out.push_back('"');
  for (char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        static const char *Hex = "0123456789abcdef";
        Out += "\\u00";
        Out.push_back(Hex[(C >> 4) & 0xF]);
        Out.push_back(Hex[C & 0xF]);
      } else {
        Out.push_back(C);
      }
    }
  }
  Out.push_back('"');
}

//===----------------------------------------------------------------------===//
// Request validation
//===----------------------------------------------------------------------===//

bool monsem::validRunId(std::string_view Id) {
  if (Id.empty() || Id.size() > 64)
    return false;
  for (char C : Id)
    if (!std::isalnum(static_cast<unsigned char>(C)) && C != '_' && C != '-')
      return false;
  return true;
}

namespace {

uint64_t limitField(const Value &Limits, std::string_view Name) {
  const Value *F = Limits.field(Name);
  int64_t V = F ? F->intOr() : 0;
  return V > 0 ? static_cast<uint64_t>(V) : 0;
}

bool stringList(const Value *F, std::vector<std::string> &Out,
                std::string_view What, std::string &Err) {
  if (!F)
    return true;
  if (!F->isArray()) {
    Err = std::string(What) + " must be an array of strings";
    return false;
  }
  for (const Value &E : F->Elems) {
    if (E.K != Value::Kind::Str) {
      Err = std::string(What) + " must be an array of strings";
      return false;
    }
    Out.push_back(E.S);
  }
  return true;
}

} // namespace

bool monsem::parseRequest(std::string_view Line, Request &Out,
                          std::string &Err, std::string &ErrId) {
  Value V;
  if (!json::parse(Line, V, Err))
    return false;
  if (!V.isObject()) {
    Err = "request must be a JSON object";
    return false;
  }
  if (const Value *Id = V.field("id"))
    ErrId = Id->S; // Best-effort: lets the error response name the run.
  const Value *OpF = V.field("op");
  if (!OpF || OpF->K != Value::Kind::Str) {
    Err = "missing \"op\"";
    return false;
  }
  std::string_view Op = OpF->S;

  if (Op == "status") {
    Out.O = Request::Op::Status;
    return true;
  }
  if (Op == "shutdown") {
    Out.O = Request::Op::Shutdown;
    return true;
  }
  if (Op == "cancel") {
    const Value *Id = V.field("id");
    if (!Id || !validRunId(Id->strOr())) {
      Err = "cancel needs a valid \"id\" ([A-Za-z0-9_-]{1,64})";
      return false;
    }
    Out.O = Request::Op::Cancel;
    Out.CancelId = Id->S;
    return true;
  }
  if (Op != "submit") {
    Err = "unknown op \"" + std::string(Op) +
          "\" (expected submit, cancel, status or shutdown)";
    return false;
  }

  Out.O = Request::Op::Submit;
  SubmitRequest &S = Out.Submit;
  const Value *Id = V.field("id");
  if (!Id || !validRunId(Id->strOr())) {
    Err = "submit needs a valid \"id\" ([A-Za-z0-9_-]{1,64})";
    return false;
  }
  S.Id = Id->S;
  const Value *Prog = V.field("program");
  if (!Prog || Prog->K != Value::Kind::Str || Prog->S.empty()) {
    Err = "submit needs a non-empty \"program\" string";
    return false;
  }
  S.Program = Prog->S;
  if (!stringList(V.field("monitors"), S.Monitors, "\"monitors\"", Err) ||
      !stringList(V.field("names"), S.Names, "\"names\"", Err))
    return false;
  if (const Value *T = V.field("tenant")) {
    if (!validRunId(T->strOr())) {
      Err = "\"tenant\" must match [A-Za-z0-9_-]{1,64}";
      return false;
    }
    S.Tenant = T->S;
  }
  if (const Value *B = V.field("backend")) {
    S.Backend = B->strOr("cek");
    if (S.Backend != "cek" && S.Backend != "vm" && S.Backend != "vm-reg" &&
        S.Backend != "vm-aot" && S.Backend != "direct") {
      Err = "unknown backend \"" + S.Backend +
            "\" (valid: cek, vm, vm-reg, vm-aot, direct)";
      return false;
    }
  }
  if (const Value *St = V.field("strategy")) {
    S.Strategy = St->strOr("strict");
    if (S.Strategy != "strict" && S.Strategy != "name" &&
        S.Strategy != "need") {
      Err = "unknown strategy \"" + S.Strategy +
            "\" (valid: strict, name, need)";
      return false;
    }
  }
  if (const Value *P = V.field("prelude"))
    S.Prelude = P->boolOr();
  if (const Value *D = V.field("durable"))
    S.Durable = D->boolOr();
  if (const Value *L = V.field("limits")) {
    if (!L->isObject()) {
      Err = "\"limits\" must be an object";
      return false;
    }
    S.MaxSteps = limitField(*L, "max_steps");
    S.DeadlineMs = limitField(*L, "deadline_ms");
    S.MaxBytes = limitField(*L, "max_bytes");
    S.MaxDepth = limitField(*L, "max_depth");
  }
  return true;
}
