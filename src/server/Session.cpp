//===- server/Session.cpp - Worker pool and run time-slicing --------------===//

#include "server/Session.h"

#include "support/Journal.h"

#include <algorithm>

#include <unistd.h>

using namespace monsem;
using detail::RunState;
using Phase = detail::RunState::Phase;

//===----------------------------------------------------------------------===//
// RunHandle
//===----------------------------------------------------------------------===//

void RunHandle::pause() {
  if (!S)
    return;
  std::lock_guard<std::mutex> L(S->M);
  if (S->Ph == Phase::Done)
    return;
  S->PauseRequested = true;
  S->SliceStop.store(true, std::memory_order_relaxed);
}

void RunHandle::resume() {
  if (!S)
    return;
  bool Requeue = false;
  {
    std::lock_guard<std::mutex> L(S->M);
    S->PauseRequested = false;
    if (S->Ph == Phase::Paused) {
      S->Ph = Phase::Queued;
      Requeue = true;
    }
  }
  if (Requeue)
    Sess->enqueue(S);
}

void RunHandle::cancel() {
  if (!S)
    return;
  bool Requeue = false;
  {
    std::lock_guard<std::mutex> L(S->M);
    if (S->Ph == Phase::Done)
      return;
    S->CancelRequested = true;
    S->SliceStop.store(true, std::memory_order_relaxed);
    // A paused run is off the queue; put it back so a worker finalizes it.
    if (S->Ph == Phase::Paused) {
      S->Ph = Phase::Queued;
      Requeue = true;
    }
  }
  if (Requeue)
    Sess->enqueue(S);
}

bool RunHandle::done() const {
  if (!S)
    return false;
  std::lock_guard<std::mutex> L(S->M);
  return S->Ph == Phase::Done;
}

RunResult RunHandle::outcome() {
  RunResult R;
  if (!S) {
    R.Error = "invalid run handle";
    return R;
  }
  std::unique_lock<std::mutex> L(S->M);
  S->CV.wait(L, [&] { return S->Ph == Phase::Done; });
  if (!S->HasResult) {
    R.Error = "run outcome already consumed";
    return R;
  }
  S->HasResult = false;
  return std::move(S->Result);
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

Session::Session(Config Cfg)
    : NumWorkers(Cfg.Workers ? Cfg.Workers : 1), Quantum(Cfg.QuantumSteps),
      MaxLiveRuns(Cfg.MaxLiveRuns), MaxLivePerTenant(Cfg.MaxLivePerTenant),
      MaxResidentBytes(Cfg.MaxResidentBytes), ParkDir(std::move(Cfg.ParkDir)) {
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

Session::~Session() {
  std::vector<RunStatePtr> Drain;
  {
    std::lock_guard<std::mutex> L(QM);
    Stopping = true;
    for (const std::weak_ptr<RunState> &W : AllRuns)
      if (RunStatePtr R = W.lock())
        Drain.push_back(std::move(R));
  }
  // Mark every unfinished run cancelled; the workers drain the queues (the
  // pre-slice triage turns a cancelled pop into an immediate finish), so
  // even an unbounded run cannot wedge the join below past its next
  // governor boundary.
  for (const RunStatePtr &R : Drain) {
    std::lock_guard<std::mutex> L(R->M);
    if (R->Ph == Phase::Done)
      continue;
    R->CancelRequested = true;
    R->SliceStop.store(true, std::memory_order_relaxed);
    if (R->Ph == Phase::Paused) {
      R->Ph = Phase::Queued;
      std::lock_guard<std::mutex> QL(QM);
      pushLocked(R);
    }
  }
  QCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

bool Session::admissibleLocked(const std::string &Tenant,
                               std::string *Why) const {
  if (MaxLiveRuns && Live.load(std::memory_order_relaxed) >= MaxLiveRuns) {
    if (Why)
      *Why = "session at max live runs";
    return false;
  }
  if (MaxLivePerTenant) {
    auto It = Tenants.find(Tenant);
    if (It != Tenants.end() && It->second.LiveRuns >= MaxLivePerTenant) {
      if (Why)
        *Why = "tenant at max live runs";
      return false;
    }
  }
  return true;
}

bool Session::admissible(const std::string &Tenant, std::string *Why) const {
  std::lock_guard<std::mutex> L(QM);
  return admissibleLocked(Tenant, Why);
}

RunHandle Session::submit(EvalMode Mode, const Expr *Program, RunEvents Ev,
                          std::string Tenant, std::string *AdmitErr) {
  auto R = std::make_shared<RunState>();
  R->Mode = std::move(Mode);
  R->Program = Program;
  R->Ev = std::move(Ev);
  R->Tenant = std::move(Tenant);
  R->Start = std::chrono::steady_clock::now();
  if (R->Mode.ResumeFrom) {
    // Own the resume point so requeued slices can overwrite it in place;
    // the caller's checkpoint need not outlive the run.
    R->CK = *R->Mode.ResumeFrom;
    R->HasCK = true;
    R->BaseSteps = R->DoneSteps = R->CK.header().SavedSteps;
    R->ResidentBytes = R->CK.bytes().size();
    R->Mode.ResumeFrom = nullptr;
  }
  {
    std::lock_guard<std::mutex> L(QM);
    if (AdmitErr && !admissibleLocked(R->Tenant, AdmitErr))
      return RunHandle();
    Live.fetch_add(1, std::memory_order_relaxed);
    Resident.fetch_add(R->ResidentBytes, std::memory_order_relaxed);
    R->Id = NextId.fetch_add(1, std::memory_order_relaxed);
    AllRuns.push_back(R);
    // Compact dead registry entries opportunistically so a long-lived
    // server's registry stays proportional to its live runs.
    if (AllRuns.size() > 64 && AllRuns.size() > 4 * Live.load()) {
      size_t Kept = 0;
      for (std::weak_ptr<RunState> &W : AllRuns)
        if (!W.expired())
          AllRuns[Kept++] = std::move(W);
      AllRuns.resize(Kept);
    }
    ++Tenants[R->Tenant].LiveRuns;
    pushLocked(R);
  }
  QCV.notify_one();
  maybeEvict(); // A resume-submit can push residency over the cap.
  return RunHandle(this, std::move(R));
}

void Session::pushLocked(RunStatePtr R) {
  TenantState &TS = Tenants[R->Tenant];
  if (!TS.InRR) {
    TS.InRR = true;
    RR.push_back(R->Tenant);
  }
  TS.Q.push_back(std::move(R));
  ++QueuedCount;
}

Session::RunStatePtr Session::popNextLocked() {
  if (QueuedCount == 0)
    return nullptr;
  // Deficit round robin with unknown per-slice costs: every slice is
  // charged one quantum up front (creditSteps refunds what it did not
  // use), and each rotation visit grants one quantum of credit, so
  // tenants with many short slices get proportionally more dispatches —
  // not proportionally more steps for whoever queues most.
  const uint64_t Cost = Quantum ? Quantum : 1;
  while (!RR.empty()) {
    if (RRPos >= RR.size())
      RRPos = 0;
    TenantState &TS = Tenants[RR[RRPos]];
    if (TS.Q.empty()) {
      // Tenant went idle: drop it from the rotation (and its credit — an
      // idle tenant must not bank a burst).
      TS.InRR = false;
      TS.Deficit = 0;
      RR.erase(RR.begin() + RRPos);
      continue;
    }
    if (TS.Deficit >= Cost) {
      TS.Deficit -= Cost;
      RunStatePtr R = std::move(TS.Q.front());
      TS.Q.pop_front();
      --QueuedCount;
      return R;
    }
    TS.Deficit += Cost;
    ++RRPos;
  }
  return nullptr;
}

void Session::enqueue(RunStatePtr R) {
  {
    std::lock_guard<std::mutex> L(QM);
    pushLocked(std::move(R));
  }
  QCV.notify_one();
}

void Session::workerLoop() {
  for (;;) {
    RunStatePtr R;
    {
      std::unique_lock<std::mutex> L(QM);
      QCV.wait(L, [&] { return Stopping || QueuedCount > 0; });
      R = popNextLocked();
      if (!R) {
        if (Stopping)
          return; // Stopping and drained.
        continue;
      }
    }
    runSlice(std::move(R));
  }
}

void Session::creditSteps(RunState &R, uint64_t Delta) {
  UserSteps.fetch_add(Delta, std::memory_order_relaxed);
  std::lock_guard<std::mutex> QL(QM);
  TenantState &TS = Tenants[R.Tenant];
  TS.Steps += Delta;
  const uint64_t Cost = Quantum ? Quantum : 1;
  if (Delta < Cost)
    TS.Deficit = std::min(TS.Deficit + (Cost - Delta), 8 * Cost);
}

void Session::setResidentLocked(RunState &R, uint64_t Bytes) {
  if (Bytes >= R.ResidentBytes)
    Resident.fetch_add(Bytes - R.ResidentBytes, std::memory_order_relaxed);
  else
    Resident.fetch_sub(R.ResidentBytes - Bytes, std::memory_order_relaxed);
  R.ResidentBytes = Bytes;
}

bool Session::parkLocked(RunState &R) {
  R.ParkPath = ParkDir + "/run-" + std::to_string(R.Id) + ".park";
  ::unlink(R.ParkPath.c_str());
  std::string Err;
  JournalOptions JO;
  JO.SyncOnCheckpoint = false; // Park files need no crash durability.
  std::unique_ptr<Journal> J = Journal::open(R.ParkPath, Err, JO);
  if (!J || !J->appendCheckpoint(R.CK.bytes())) {
    ::unlink(R.ParkPath.c_str());
    R.ParkPath.clear();
    return false; // Spill failed: the run simply stays resident.
  }
  J.reset(); // Close (and flush) before the checkpoint goes away.
  R.CK = Checkpoint();
  R.HasCK = false;
  R.Parked = true;
  setResidentLocked(R, 0);
  Evictions.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> QL(QM);
    ++Tenants[R.Tenant].Evicted;
  }
  return true;
}

bool Session::restoreLocked(RunState &R) {
  JournalRecovery Rec = recoverJournal(R.ParkPath);
  if (!Rec.Opened || Rec.LastCheckpoint.empty())
    return false;
  std::string Err;
  Checkpoint CK = Checkpoint::fromBytes(Rec.LastCheckpoint, Err);
  if (!CK.valid())
    return false;
  ::unlink(R.ParkPath.c_str());
  R.ParkPath.clear();
  R.Parked = false;
  R.CK = std::move(CK);
  R.HasCK = true;
  setResidentLocked(R, R.CK.bytes().size());
  return true;
}

void Session::maybeEvict() {
  if (!MaxResidentBytes || ParkDir.empty())
    return;
  if (Resident.load(std::memory_order_relaxed) <= MaxResidentBytes)
    return;
  // Snapshot the registry, then park coldest-first until back under the
  // cap. Races with other evictors or with a worker picking the run up
  // are settled by the per-run lock and the Parked/Phase recheck.
  std::vector<RunStatePtr> Cands;
  {
    std::lock_guard<std::mutex> L(QM);
    Cands.reserve(AllRuns.size());
    for (const std::weak_ptr<RunState> &W : AllRuns)
      if (RunStatePtr R = W.lock())
        Cands.push_back(std::move(R));
  }
  std::sort(Cands.begin(), Cands.end(),
            [](const RunStatePtr &A, const RunStatePtr &B) {
              return A->LastSliceSeq.load(std::memory_order_relaxed) <
                     B->LastSliceSeq.load(std::memory_order_relaxed);
            });
  for (const RunStatePtr &R : Cands) {
    if (Resident.load(std::memory_order_relaxed) <= MaxResidentBytes)
      break;
    std::lock_guard<std::mutex> L(R->M);
    if (R->Ph != Phase::Queued && R->Ph != Phase::Paused)
      continue;
    if (!R->HasCK || R->Parked || R->CancelRequested || R->ResidentBytes == 0)
      continue;
    parkLocked(*R);
  }
}

void Session::finish(RunState &R, RunResult Res) {
  // Caller holds R.M with Ph != Done.
  if (!R.ParkPath.empty()) {
    ::unlink(R.ParkPath.c_str());
    R.ParkPath.clear();
  }
  R.Parked = false;
  setResidentLocked(R, 0);
  {
    std::lock_guard<std::mutex> QL(QM);
    TenantState &TS = Tenants[R.Tenant];
    if (TS.LiveRuns)
      --TS.LiveRuns;
    ++TS.Done;
  }
  R.Result = std::move(Res);
  R.HasResult = true;
  R.Ph = Phase::Done;
  // OnFinish fires before the live count drops: a drainer that sees
  // liveRuns() == 0 may then rely on every outcome having been delivered
  // (e.g. queued to a client outbox) already.
  if (R.Ev.OnFinish)
    R.Ev.OnFinish(R.Result);
  Live.fetch_sub(1, std::memory_order_relaxed);
  R.CV.notify_all();
}

std::vector<Session::TenantStats> Session::tenantStats() const {
  std::vector<TenantStats> Out;
  std::lock_guard<std::mutex> L(QM);
  Out.reserve(Tenants.size());
  for (const auto &[Name, TS] : Tenants) {
    TenantStats Row;
    Row.Tenant = Name;
    Row.Queued = TS.Q.size();
    Row.Active = TS.Active;
    Row.Live = TS.LiveRuns;
    Row.UserSteps = TS.Steps;
    Row.Evicted = TS.Evicted;
    Row.Done = TS.Done;
    Out.push_back(std::move(Row));
  }
  return Out; // std::map iteration: already sorted by tenant id.
}

void Session::runSlice(RunStatePtr RP) {
  RunState &R = *RP;
  {
    std::unique_lock<std::mutex> L(R.M);
    if (R.Ph == Phase::Done)
      return;
    if (R.CancelRequested) {
      // Cancelled while queued or paused: finish without running (and
      // without restoring a parked checkpoint nobody will use).
      RunResult Res;
      Res.setOutcome(Outcome::Cancelled);
      Res.Steps = R.DoneSteps;
      finish(R, std::move(Res));
      return;
    }
    if (R.PauseRequested) {
      R.Ph = Phase::Paused; // Parked before the slice started.
      return;
    }
    if (R.Parked && !restoreLocked(R)) {
      RunResult Res;
      Res.setOutcome(Outcome::Error);
      Res.Error = "evicted run could not be restored from " + R.ParkPath;
      Res.Steps = R.DoneSteps;
      finish(R, std::move(Res));
      return;
    }
    R.Ph = Phase::Running;
    R.SliceStop.store(false, std::memory_order_relaxed);
  }

  // Perf counters: this run occupies a worker until runSlice returns, and
  // whatever durable progress the slice makes is credited against the
  // resume point it started from.
  const uint64_t Before = R.DoneSteps;
  ActiveSlices.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> QL(QM);
    ++Tenants[R.Tenant].Active;
  }
  struct SliceGuard {
    Session &S;
    RunState &R;
    ~SliceGuard() {
      S.ActiveSlices.fetch_sub(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> QL(S.QM);
      --S.Tenants[R.Tenant].Active;
    }
  } Guard{*this, R};

  // Assemble this quantum's mode from the submitted one.
  EvalMode Slice = R.Mode;
  Slice.Limits.PreemptFlag = &R.SliceStop;

  // Fuel: the user budget measures steps since submit (a resumed run gets
  // a fresh budget, matching the standalone rule), so the slice gets the
  // remaining budget — or one quantum, whichever is smaller. The Direct
  // backend cannot checkpoint and is never sliced.
  const uint64_t UserFuel = R.Mode.Limits.MaxSteps;
  const uint64_t Progress = R.DoneSteps - R.BaseSteps;
  const uint64_t Remaining =
      UserFuel ? (UserFuel > Progress ? UserFuel - Progress : 1) : 0;
  const bool CanSlice = Quantum != 0 && R.Mode.B != Backend::Direct;
  const bool QuantumLimited =
      CanSlice && (UserFuel == 0 || Quantum < Remaining);
  if (QuantumLimited)
    Slice.Limits.MaxSteps = Quantum;
  else if (UserFuel)
    Slice.Limits.MaxSteps = Remaining;

  // Deadline: wall clock is charged against the whole run, not per slice.
  if (uint64_t D = R.Mode.Limits.DeadlineMs) {
    auto ElapsedMs =
        static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                  std::chrono::steady_clock::now() - R.Start)
                                  .count());
    Slice.Limits.DeadlineMs = ElapsedMs >= D ? 1 : D - ElapsedMs;
  }

  if (R.HasCK)
    Slice.ResumeFrom = &R.CK;

  // Capture the freshest checkpoint the slice emits so a requeue or park
  // can resume from it; the user's sink (if any) still sees every one.
  Checkpoint Latest;
  bool Got = false;
  if (CanSlice || R.Mode.CheckpointSink) {
    Slice.CheckpointSink = [&Latest, &Got,
                            User = R.Mode.CheckpointSink](const Checkpoint &CK) {
      Latest = CK;
      Got = true;
      if (User)
        User(CK);
    };
    Slice.CheckpointOnStop = R.Mode.CheckpointOnStop || CanSlice;
  }

  // Probe taps compose: the scheduler never swallows the user's own sink.
  if (R.Ev.OnProbe) {
    Slice.EventSink = [Tap = R.Ev.OnProbe, User = R.Mode.EventSink](
                          uint64_t Step, const std::string &Text) {
      Tap(Step, Text);
      if (User)
        User(Step, Text);
    };
  }

  RunResult SR = evaluate(Slice, R.Program);

  std::unique_lock<std::mutex> L(R.M);
  R.LastSliceSeq.store(SliceSeq.fetch_add(1, std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  if (Got) {
    R.CK = std::move(Latest);
    R.HasCK = true;
    setResidentLocked(R, R.CK.bytes().size());
  }
  if (R.Ph == Phase::Done)
    return; // Defensive; finish only happens here, under this lock.

  const bool Preempted = R.SliceStop.load(std::memory_order_relaxed);
  if (SR.St == Outcome::Cancelled && Preempted && !R.CancelRequested) {
    // The scheduler, not the user, stopped the slice.
    if (Got)
      R.DoneSteps = R.CK.header().SavedSteps;
    // else: no checkpoint was captured (Direct backend, or serialization
    // failed) — the run restarts from its previous resume point; the
    // machines are deterministic, so re-execution is exact.
    creditSteps(R, R.DoneSteps - Before);
    uint64_t At = R.DoneSteps;
    auto OnCk = (Got && R.Ev.OnCheckpoint) ? R.Ev.OnCheckpoint : nullptr;
    if (R.PauseRequested) {
      R.Ph = Phase::Paused;
      L.unlock();
      if (OnCk)
        OnCk(At);
      maybeEvict();
      return;
    }
    // A pause raced with a resume: neither request stands, keep going.
    R.Ph = Phase::Queued;
    L.unlock();
    if (OnCk)
      OnCk(At);
    enqueue(std::move(RP));
    maybeEvict();
    return;
  }
  if (SR.St == Outcome::FuelExhausted && QuantumLimited &&
      !R.CancelRequested) {
    // Quantum expired: checkpoint, requeue, let any worker resume it.
    if (Got)
      R.DoneSteps = R.CK.header().SavedSteps;
    creditSteps(R, R.DoneSteps - Before);
    R.Ph = Phase::Queued;
    uint64_t At = R.DoneSteps;
    auto OnCk = (Got && R.Ev.OnCheckpoint) ? R.Ev.OnCheckpoint : nullptr;
    L.unlock();
    if (OnCk)
      OnCk(At);
    enqueue(std::move(RP));
    maybeEvict();
    return;
  }
  // A cancel that lands just as the quantum expires: the slice reports
  // FuelExhausted, but that fuel limit was the scheduler's, not the
  // user's — the run is cancelled, not out of budget.
  if (SR.St == Outcome::FuelExhausted && QuantumLimited && R.CancelRequested)
    SR.setOutcome(Outcome::Cancelled);
  // Final: the program finished, errored, hit a user limit, or was
  // cancelled. Steps/states are cumulative (the machine continues the
  // counter across resumes), so the result matches an uninterrupted run.
  creditSteps(R, SR.Steps > Before ? SR.Steps - Before : 0);
  finish(R, std::move(SR));
}
