//===- server/Session.cpp - Worker pool and run time-slicing --------------===//

#include "server/Session.h"

using namespace monsem;
using detail::RunState;
using Phase = detail::RunState::Phase;

//===----------------------------------------------------------------------===//
// RunHandle
//===----------------------------------------------------------------------===//

void RunHandle::pause() {
  if (!S)
    return;
  std::lock_guard<std::mutex> L(S->M);
  if (S->Ph == Phase::Done)
    return;
  S->PauseRequested = true;
  S->SliceStop.store(true, std::memory_order_relaxed);
}

void RunHandle::resume() {
  if (!S)
    return;
  bool Requeue = false;
  {
    std::lock_guard<std::mutex> L(S->M);
    S->PauseRequested = false;
    if (S->Ph == Phase::Paused) {
      S->Ph = Phase::Queued;
      Requeue = true;
    }
  }
  if (Requeue)
    Sess->enqueue(S);
}

void RunHandle::cancel() {
  if (!S)
    return;
  bool Requeue = false;
  {
    std::lock_guard<std::mutex> L(S->M);
    if (S->Ph == Phase::Done)
      return;
    S->CancelRequested = true;
    S->SliceStop.store(true, std::memory_order_relaxed);
    // A paused run is off the queue; put it back so a worker finalizes it.
    if (S->Ph == Phase::Paused) {
      S->Ph = Phase::Queued;
      Requeue = true;
    }
  }
  if (Requeue)
    Sess->enqueue(S);
}

bool RunHandle::done() const {
  if (!S)
    return false;
  std::lock_guard<std::mutex> L(S->M);
  return S->Ph == Phase::Done;
}

RunResult RunHandle::outcome() {
  RunResult R;
  if (!S) {
    R.Error = "invalid run handle";
    return R;
  }
  std::unique_lock<std::mutex> L(S->M);
  S->CV.wait(L, [&] { return S->Ph == Phase::Done; });
  if (!S->HasResult) {
    R.Error = "run outcome already consumed";
    return R;
  }
  S->HasResult = false;
  return std::move(S->Result);
}

//===----------------------------------------------------------------------===//
// Session
//===----------------------------------------------------------------------===//

Session::Session(Config Cfg)
    : NumWorkers(Cfg.Workers ? Cfg.Workers : 1), Quantum(Cfg.QuantumSteps) {
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

Session::~Session() {
  std::vector<RunStatePtr> Drain;
  {
    std::lock_guard<std::mutex> L(QM);
    Stopping = true;
    for (const std::weak_ptr<RunState> &W : AllRuns)
      if (RunStatePtr R = W.lock())
        Drain.push_back(std::move(R));
  }
  // Mark every unfinished run cancelled; the workers drain the queue (the
  // pre-slice triage turns a cancelled pop into an immediate finish), so
  // even an unbounded run cannot wedge the join below past its next
  // governor boundary.
  for (const RunStatePtr &R : Drain) {
    std::lock_guard<std::mutex> L(R->M);
    if (R->Ph == Phase::Done)
      continue;
    R->CancelRequested = true;
    R->SliceStop.store(true, std::memory_order_relaxed);
    if (R->Ph == Phase::Paused) {
      R->Ph = Phase::Queued;
      std::lock_guard<std::mutex> QL(QM);
      Queue.push_back(R);
    }
  }
  QCV.notify_all();
  for (std::thread &T : Workers)
    T.join();
}

RunHandle Session::submit(EvalMode Mode, const Expr *Program, RunEvents Ev) {
  auto R = std::make_shared<RunState>();
  R->Mode = std::move(Mode);
  R->Program = Program;
  R->Ev = std::move(Ev);
  R->Start = std::chrono::steady_clock::now();
  if (R->Mode.ResumeFrom) {
    // Own the resume point so requeued slices can overwrite it in place;
    // the caller's checkpoint need not outlive the run.
    R->CK = *R->Mode.ResumeFrom;
    R->HasCK = true;
    R->BaseSteps = R->DoneSteps = R->CK.header().SavedSteps;
    R->Mode.ResumeFrom = nullptr;
  }
  Live.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> L(QM);
    R->Id = NextId.fetch_add(1, std::memory_order_relaxed);
    AllRuns.push_back(R);
    // Compact dead registry entries opportunistically so a long-lived
    // server's registry stays proportional to its live runs.
    if (AllRuns.size() > 64 && AllRuns.size() > 4 * Live.load()) {
      size_t Kept = 0;
      for (std::weak_ptr<RunState> &W : AllRuns)
        if (!W.expired())
          AllRuns[Kept++] = std::move(W);
      AllRuns.resize(Kept);
    }
    Queue.push_back(R);
  }
  QCV.notify_one();
  return RunHandle(this, std::move(R));
}

void Session::enqueue(RunStatePtr R) {
  {
    std::lock_guard<std::mutex> L(QM);
    Queue.push_back(std::move(R));
  }
  QCV.notify_one();
}

void Session::workerLoop() {
  for (;;) {
    RunStatePtr R;
    {
      std::unique_lock<std::mutex> L(QM);
      QCV.wait(L, [&] { return Stopping || !Queue.empty(); });
      if (Queue.empty())
        return; // Stopping and drained.
      R = std::move(Queue.front());
      Queue.pop_front();
    }
    runSlice(std::move(R));
  }
}

void Session::finish(RunState &R, RunResult Res) {
  // Caller holds R.M with Ph != Done.
  R.Result = std::move(Res);
  R.HasResult = true;
  R.Ph = Phase::Done;
  Live.fetch_sub(1, std::memory_order_relaxed);
  if (R.Ev.OnFinish)
    R.Ev.OnFinish(R.Result);
  R.CV.notify_all();
}

void Session::runSlice(RunStatePtr RP) {
  RunState &R = *RP;
  {
    std::unique_lock<std::mutex> L(R.M);
    if (R.Ph == Phase::Done)
      return;
    if (R.CancelRequested) {
      // Cancelled while queued or paused: finish without running.
      RunResult Res;
      Res.setOutcome(Outcome::Cancelled);
      Res.Steps = R.DoneSteps;
      finish(R, std::move(Res));
      return;
    }
    if (R.PauseRequested) {
      R.Ph = Phase::Paused; // Parked before the slice started.
      return;
    }
    R.Ph = Phase::Running;
    R.SliceStop.store(false, std::memory_order_relaxed);
  }

  // Perf counters: this run occupies a worker until runSlice returns, and
  // whatever durable progress the slice makes is credited against the
  // resume point it started from.
  const uint64_t Before = R.DoneSteps;
  ActiveSlices.fetch_add(1, std::memory_order_relaxed);
  struct SliceGuard {
    std::atomic<uint64_t> &Active;
    ~SliceGuard() { Active.fetch_sub(1, std::memory_order_relaxed); }
  } Guard{ActiveSlices};

  // Assemble this quantum's mode from the submitted one.
  EvalMode Slice = R.Mode;
  Slice.Limits.PreemptFlag = &R.SliceStop;

  // Fuel: the user budget measures steps since submit (a resumed run gets
  // a fresh budget, matching the standalone rule), so the slice gets the
  // remaining budget — or one quantum, whichever is smaller. The Direct
  // backend cannot checkpoint and is never sliced.
  const uint64_t UserFuel = R.Mode.Limits.MaxSteps;
  const uint64_t Progress = R.DoneSteps - R.BaseSteps;
  const uint64_t Remaining =
      UserFuel ? (UserFuel > Progress ? UserFuel - Progress : 1) : 0;
  const bool CanSlice = Quantum != 0 && R.Mode.B != Backend::Direct;
  const bool QuantumLimited =
      CanSlice && (UserFuel == 0 || Quantum < Remaining);
  if (QuantumLimited)
    Slice.Limits.MaxSteps = Quantum;
  else if (UserFuel)
    Slice.Limits.MaxSteps = Remaining;

  // Deadline: wall clock is charged against the whole run, not per slice.
  if (uint64_t D = R.Mode.Limits.DeadlineMs) {
    auto ElapsedMs =
        static_cast<uint64_t>(std::chrono::duration_cast<std::chrono::milliseconds>(
                                  std::chrono::steady_clock::now() - R.Start)
                                  .count());
    Slice.Limits.DeadlineMs = ElapsedMs >= D ? 1 : D - ElapsedMs;
  }

  if (R.HasCK)
    Slice.ResumeFrom = &R.CK;

  // Capture the freshest checkpoint the slice emits so a requeue or park
  // can resume from it; the user's sink (if any) still sees every one.
  Checkpoint Latest;
  bool Got = false;
  if (CanSlice || R.Mode.CheckpointSink) {
    Slice.CheckpointSink = [&Latest, &Got,
                            User = R.Mode.CheckpointSink](const Checkpoint &CK) {
      Latest = CK;
      Got = true;
      if (User)
        User(CK);
    };
    Slice.CheckpointOnStop = R.Mode.CheckpointOnStop || CanSlice;
  }

  // Probe taps compose: the scheduler never swallows the user's own sink.
  if (R.Ev.OnProbe) {
    Slice.EventSink = [Tap = R.Ev.OnProbe, User = R.Mode.EventSink](
                          uint64_t Step, const std::string &Text) {
      Tap(Step, Text);
      if (User)
        User(Step, Text);
    };
  }

  RunResult SR = evaluate(Slice, R.Program);

  std::unique_lock<std::mutex> L(R.M);
  if (Got) {
    R.CK = std::move(Latest);
    R.HasCK = true;
  }
  if (R.Ph == Phase::Done)
    return; // Defensive; finish only happens here, under this lock.

  const bool Preempted = R.SliceStop.load(std::memory_order_relaxed);
  if (SR.St == Outcome::Cancelled && Preempted && !R.CancelRequested) {
    // The scheduler, not the user, stopped the slice.
    if (Got)
      R.DoneSteps = R.CK.header().SavedSteps;
    // else: no checkpoint was captured (Direct backend, or serialization
    // failed) — the run restarts from its previous resume point; the
    // machines are deterministic, so re-execution is exact.
    UserSteps.fetch_add(R.DoneSteps - Before, std::memory_order_relaxed);
    uint64_t At = R.DoneSteps;
    auto OnCk = (Got && R.Ev.OnCheckpoint) ? R.Ev.OnCheckpoint : nullptr;
    if (R.PauseRequested) {
      R.Ph = Phase::Paused;
      L.unlock();
      if (OnCk)
        OnCk(At);
      return;
    }
    // A pause raced with a resume: neither request stands, keep going.
    R.Ph = Phase::Queued;
    L.unlock();
    if (OnCk)
      OnCk(At);
    enqueue(std::move(RP));
    return;
  }
  if (SR.St == Outcome::FuelExhausted && QuantumLimited &&
      !R.CancelRequested) {
    // Quantum expired: checkpoint, requeue, let any worker resume it.
    if (Got)
      R.DoneSteps = R.CK.header().SavedSteps;
    UserSteps.fetch_add(R.DoneSteps - Before, std::memory_order_relaxed);
    R.Ph = Phase::Queued;
    uint64_t At = R.DoneSteps;
    auto OnCk = (Got && R.Ev.OnCheckpoint) ? R.Ev.OnCheckpoint : nullptr;
    L.unlock();
    if (OnCk)
      OnCk(At);
    enqueue(std::move(RP));
    return;
  }
  // A cancel that lands just as the quantum expires: the slice reports
  // FuelExhausted, but that fuel limit was the scheduler's, not the
  // user's — the run is cancelled, not out of budget.
  if (SR.St == Outcome::FuelExhausted && QuantumLimited && R.CancelRequested)
    SR.setOutcome(Outcome::Cancelled);
  // Final: the program finished, errored, hit a user limit, or was
  // cancelled. Steps/states are cumulative (the machine continues the
  // counter across resumes), so the result matches an uninterrupted run.
  if (SR.Steps > Before)
    UserSteps.fetch_add(SR.Steps - Before, std::memory_order_relaxed);
  finish(R, std::move(SR));
}
