//===- server/Serve.cpp - the `monsem serve` daemon ------------------------===//
//
// Wiring layers, top to bottom:
//
//   transport (LineChannel/Listener)  — bytes to lines
//   protocol  (parseRequest/Writer)   — lines to requests/responses
//   this file                         — requests to Session runs
//   Session                           — runs to governed evaluate() slices
//
// Response ordering invariants, per run: `accepted` (or `recovered`) is
// written before the run is submitted, so it precedes every probe batch;
// each `checkpoint` record is preceded by a flush of the probe buffer, so
// probes never appear after a checkpoint that covers them; `outcome` is
// last, after a final probe flush. Probe buffers are only ever touched by
// the worker currently running the run's slice (callbacks fire on worker
// threads, and a run is on at most one worker at a time), so they need no
// lock; the channel's writeLine is the single synchronization point.
//
// Socket transports run a poll-driven multiplexer: one serve thread polls
// the listener plus every client channel, ingests complete request lines,
// and drains bounded per-client outboxes. Workers enqueue responses into
// those outboxes through the channels' whole-line-atomic writeLine, so a
// client that stops reading stalls only its own bounded buffer — the
// serve thread and the worker pool never block on a peer. Hostile-client
// policies (request-size caps, slow-reader and idle disconnects,
// per-tenant admission) all live here, on top of Session's fair-share
// scheduler.
//
//===----------------------------------------------------------------------===//

#include "server/Serve.h"

#include "server/Protocol.h"
#include "server/Session.h"
#include "server/Transport.h"

#include "interp/Eval.h"
#include "monitors/AllocProfiler.h"
#include "monitors/CallGraph.h"
#include "monitors/Collecting.h"
#include "monitors/CostProfiler.h"
#include "monitors/Coverage.h"
#include "monitors/Demon.h"
#include "monitors/FlightRecorder.h"
#include "monitors/Profiler.h"
#include "support/Governor.h"
#include "support/Journal.h"
#include "syntax/Annotator.h"
#include "syntax/Prelude.h"

#include <algorithm>
#include <csignal>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>

#include <dirent.h>
#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

using namespace monsem;

namespace {

/// Everything owned on behalf of one served run: the parsed program (the
/// AST arena the run's Expr nodes live in), the monitor instances the
/// run's cascade references, the journal for durable runs, and the probe
/// batch buffer. Kept alive by the RunEvents closures until the outcome
/// record is written.
struct ServeRun {
  std::string Id;
  std::unique_ptr<ParsedProgram> P;
  const Expr *Program = nullptr;
  std::vector<std::unique_ptr<Monitor>> Owned;
  std::vector<std::string> MonitorNames; ///< Cascade order = outcome order.
  std::unique_ptr<Journal> J;            ///< Durable runs only.
  std::string ReqPath;    ///< Durable request file; unlinked at outcome.
  std::shared_ptr<LineChannel> Out; ///< Keeps the client channel alive.
  std::vector<std::pair<uint64_t, std::string>> Probes; ///< Worker-local.
  std::atomic<bool> Finished{false}; ///< Outcome written; sweepable.
};

/// A request limit clamped to the server's cap: tighter wins, and a
/// request cannot opt out of a cap by asking for 0 (unlimited).
uint64_t capLimit(uint64_t Requested, uint64_t Cap) {
  if (!Cap)
    return Requested;
  if (!Requested || Requested > Cap)
    return Cap;
  return Requested;
}

void emitError(LineChannel &Out, std::string_view Id, std::string_view Msg) {
  // Diagnostics often end in '\n'; the record is one line, so trim.
  while (!Msg.empty() && (Msg.back() == '\n' || Msg.back() == ' '))
    Msg.remove_suffix(1);
  json::Writer W;
  W.beginObject();
  W.key("event");
  W.str("error");
  if (!Id.empty()) {
    W.key("id");
    W.str(Id);
  }
  W.key("message");
  W.str(Msg);
  W.endObject();
  Out.writeLine(W.take());
}

void flushProbes(ServeRun &R) {
  if (R.Probes.empty())
    return;
  json::Writer W;
  W.beginObject();
  W.key("event");
  W.str("probes");
  W.key("id");
  W.str(R.Id);
  W.key("events");
  W.beginArray();
  for (const auto &[Step, Text] : R.Probes) {
    W.beginObject();
    W.key("step");
    W.num(Step);
    W.key("text");
    W.str(Text);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  R.Out->writeLine(W.take());
  R.Probes.clear();
}

void emitOutcome(ServeRun &R, const RunResult &Res) {
  json::Writer W;
  W.beginObject();
  W.key("event");
  W.str("outcome");
  W.key("id");
  W.str(R.Id);
  W.key("outcome");
  W.str(outcomeName(Res.St));
  W.key("exit_code");
  W.num(static_cast<int64_t>(exitCodeFor(Res.St)));
  W.key("steps");
  W.num(Res.Steps);
  if (Res.St == Outcome::Ok) {
    W.key("value");
    W.str(Res.ValueText);
  } else if (!Res.Error.empty()) {
    W.key("error");
    W.str(Res.Error);
  }
  W.key("monitors");
  W.beginArray();
  for (size_t I = 0;
       I < R.MonitorNames.size() && I < Res.FinalStates.size(); ++I) {
    W.beginObject();
    W.key("name");
    W.str(R.MonitorNames[I]);
    W.key("state");
    W.str(Res.FinalStates[I]->str());
    W.endObject();
  }
  W.endArray();
  W.endObject();
  R.Out->writeLine(W.take());
}

bool writeFileAtomic(const std::string &Path, std::string_view Data,
                     std::string &Err) {
  std::string Tmp = Path + ".tmp";
  int Fd = ::open(Tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (Fd < 0) {
    Err = "cannot create '" + Tmp + "'";
    return false;
  }
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t W = ::write(Fd, Data.data() + Off, Data.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      Err = "write failed";
      ::close(Fd);
      ::unlink(Tmp.c_str());
      return false;
    }
    Off += static_cast<size_t>(W);
  }
  ::fsync(Fd);
  ::close(Fd);
  if (::rename(Tmp.c_str(), Path.c_str()) != 0) {
    Err = "rename failed";
    ::unlink(Tmp.c_str());
    return false;
  }
  return true;
}

std::string readWholeFile(const std::string &Path) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return {};
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

/// The final line a slow reader sees before its connection is dropped
/// (queued by the channel itself when the outbox overflows).
std::string overflowNoticeLine() {
  json::Writer W;
  W.beginObject();
  W.key("event");
  W.str("error");
  W.key("message");
  W.str("outbound queue overflowed (slow reader); disconnecting");
  W.endObject();
  return W.take();
}

class Server {
public:
  Server(const ServeOptions &O, std::string SpoolDir)
      : O(O), S(makeConfig(O, std::move(SpoolDir))) {}

  int run();

private:
  struct Entry {
    RunHandle H;
    std::shared_ptr<ServeRun> R;
  };

  /// One multiplexed socket client.
  struct Client {
    std::shared_ptr<LineChannel> Ch;
    std::string Tenant; ///< Default tenant: "c<conn#>".
    std::chrono::steady_clock::time_point LastActivity;
    /// Since when the outbox has been write-blocked without draining a
    /// byte; epoch (time_point{}) = not stalled.
    std::chrono::steady_clock::time_point StallSince{};
    bool ReadClosed = false; ///< Peer EOF; may still be reading outcomes.
    bool Drop = false;       ///< Reap at the end of the cycle.
  };

  static Session::Config makeConfig(const ServeOptions &O,
                                    std::string SpoolDir) {
    Session::Config C;
    C.Workers = O.Workers ? O.Workers : 1;
    C.QuantumSteps = O.QuantumSteps;
    C.MaxLiveRuns = O.MaxLiveRuns;
    C.MaxLivePerTenant = O.MaxRunsPerTenant;
    C.MaxResidentBytes = O.MaxResidentBytes;
    C.ParkDir = std::move(SpoolDir);
    return C;
  }

  bool interrupted() const { return O.Interrupt && O.Interrupt->load(); }
  bool stopRequested() const { return interrupted() || ShutdownReq; }

  void serveChannel(const std::shared_ptr<LineChannel> &Ch);
  void dispatch(const std::string &Line,
                const std::shared_ptr<LineChannel> &Ch,
                const std::string &DefaultTenant);
  void submitRun(const SubmitRequest &Req, const std::string &RawLine,
                 const std::shared_ptr<LineChannel> &Out,
                 const std::string &DefaultTenant, const Checkpoint *Resume,
                 uint64_t ResumeSteps);
  void recoverDurable(const std::shared_ptr<LineChannel> &Out);
  void emitStatus(LineChannel &Out);
  void emitOverloaded(LineChannel &Out, const std::string &Id,
                      const std::string &Tenant, const std::string &Why);
  void sweepFinished();
  void cancelAllLive();
  int drainAndExit(bool CancelAll, LineChannel &Out);

  int runMux(const std::shared_ptr<LineChannel> &Stdio, Listener &L);
  void serviceClient(Client &C);
  void reapClients(std::vector<Client> &Clients);
  int drainMux(std::vector<Client> &Clients, bool CancelAll,
               LineChannel &Stdio);

  const ServeOptions &O;
  /// Daemon start, for the status report's steps/sec rate.
  const std::chrono::steady_clock::time_point StartTime =
      std::chrono::steady_clock::now();
  std::mutex RM;
  std::map<std::string, Entry> Registry;
  std::atomic<uint64_t> DoneCount{0};
  uint64_t NextConn = 0;    ///< Serve thread only.
  bool ShutdownReq = false; ///< Main thread only.
  /// Declared last: destroyed first, so the worker pool is joined while
  /// the registry (and the ServeRuns its callbacks reference) still exist.
  Session S;
};

void Server::emitStatus(LineChannel &Out) {
  json::Writer W;
  W.beginObject();
  W.key("event");
  W.str("status");
  W.key("live");
  W.num(S.liveRuns());
  W.key("done");
  W.num(DoneCount.load(std::memory_order_relaxed));
  W.key("workers");
  W.num(static_cast<uint64_t>(S.workers()));
  // Perf counters: scheduler occupancy and cumulative user-program
  // transitions, plus the average rate since the daemon started
  // (integer steps/sec — the counters are exact, the rate is a summary).
  W.key("active");
  W.num(S.activeRuns());
  W.key("queued");
  W.num(S.queuedRuns());
  uint64_t Steps = S.totalUserSteps();
  W.key("user_steps");
  W.num(Steps);
  auto ElapsedMs = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - StartTime)
          .count());
  W.key("steps_per_sec");
  W.num(ElapsedMs ? Steps * 1000 / ElapsedMs : 0);
  // Memory pressure: summed serialized size of resident run checkpoints
  // (the --max-resident-bytes gauge) and how often eviction fired.
  W.key("resident_bytes");
  W.num(S.residentBytes());
  W.key("evictions");
  W.num(S.evictions());
  // Fair-share accounting, one row per tenant ever seen.
  W.key("tenants");
  W.beginArray();
  for (const Session::TenantStats &T : S.tenantStats()) {
    W.beginObject();
    W.key("tenant");
    W.str(T.Tenant);
    W.key("queued");
    W.num(T.Queued);
    W.key("active");
    W.num(T.Active);
    W.key("live");
    W.num(T.Live);
    W.key("user_steps");
    W.num(T.UserSteps);
    W.key("evicted");
    W.num(T.Evicted);
    W.key("done");
    W.num(T.Done);
    W.endObject();
  }
  W.endArray();
  W.endObject();
  Out.writeLine(W.take());
}

void Server::emitOverloaded(LineChannel &Out, const std::string &Id,
                            const std::string &Tenant,
                            const std::string &Why) {
  // Backpressure, not failure: the client should retry after the hint.
  // The hint scales with queue depth per worker, capped so a client never
  // backs off absurdly far.
  uint64_t Queued = S.queuedRuns();
  uint64_t RetryMs = 100 * (1 + Queued / (S.workers() ? S.workers() : 1));
  RetryMs = std::min<uint64_t>(RetryMs, 5000);
  json::Writer W;
  W.beginObject();
  W.key("event");
  W.str("overloaded");
  W.key("id");
  W.str(Id);
  W.key("tenant");
  W.str(Tenant);
  W.key("reason");
  W.str(Why);
  W.key("queued");
  W.num(Queued);
  W.key("retry_after_ms");
  W.num(RetryMs);
  W.endObject();
  Out.writeLine(W.take());
}

void Server::sweepFinished() {
  std::lock_guard<std::mutex> Lock(RM);
  for (auto It = Registry.begin(); It != Registry.end();) {
    if (It->second.R->Finished.load(std::memory_order_acquire))
      It = Registry.erase(It);
    else
      ++It;
  }
}

void Server::cancelAllLive() {
  // Copy the handles out under the lock, cancel without it: RunHandle
  // methods take the run's own mutex, and a worker's OnFinish callback
  // must never find this thread holding RM while it wants a run lock.
  std::vector<RunHandle> Handles;
  {
    std::lock_guard<std::mutex> Lock(RM);
    Handles.reserve(Registry.size());
    for (auto &[Id, E] : Registry)
      Handles.push_back(E.H);
  }
  for (RunHandle &H : Handles)
    H.cancel();
}

void Server::submitRun(const SubmitRequest &Req, const std::string &RawLine,
                       const std::shared_ptr<LineChannel> &Out,
                       const std::string &DefaultTenant,
                       const Checkpoint *Resume, uint64_t ResumeSteps) {
  // The client may name its tenant (a cooperating pool of connections);
  // an unnamed submit is billed to the connection's own tenant.
  const std::string Tenant = Req.Tenant.empty() ? DefaultTenant : Req.Tenant;

  // Admission, before any parsing or persistence: a rejected submit must
  // be cheap and leave no trace. Recovery resumes bypass admission — the
  // daemon readmits its own durable obligations unconditionally. The
  // dispatch thread is the only submitter, so the pre-check is exact.
  if (!Resume) {
    std::string Why;
    if (!S.admissible(Tenant, &Why)) {
      emitOverloaded(*Out, Req.Id, Tenant, Why);
      return;
    }
  }

  {
    std::lock_guard<std::mutex> Lock(RM);
    auto It = Registry.find(Req.Id);
    if (It != Registry.end()) {
      if (!It->second.R->Finished.load(std::memory_order_acquire)) {
        emitError(*Out, Req.Id, "run id already live");
        return;
      }
      Registry.erase(It);
    }
  }

  auto R = std::make_shared<ServeRun>();
  R->Id = Req.Id;
  R->Out = Out;

  R->P = ParsedProgram::parse(Req.Program);
  if (!R->P->ok()) {
    emitError(*Out, Req.Id, R->P->diags().str());
    return;
  }
  const Expr *Program = R->P->root();
  if (Req.Prelude) {
    DiagnosticSink PD;
    Program = wrapWithPrelude(R->P->context(), Program, PD);
    if (!Program) {
      emitError(*Out, Req.Id, PD.str());
      return;
    }
  }

  EvalMode Mode;
  if (Req.Backend == "vm")
    Mode.B = Backend::VM;
  else if (Req.Backend == "vm-reg")
    Mode.B = Backend::VMRegister;
  else if (Req.Backend == "vm-aot")
    Mode.B = Backend::VMAot;
  else if (Req.Backend == "direct")
    Mode.B = Backend::Direct;
  else
    Mode.B = Backend::CEK;
  if (Req.Strategy == "name")
    Mode.Strat = Strategy::CallByName;
  else if (Req.Strategy == "need")
    Mode.Strat = Strategy::CallByNeed;
  else
    Mode.Strat = Strategy::Strict;
  if ((Mode.B == Backend::VM || Mode.B == Backend::VMRegister ||
       Mode.B == Backend::VMAot) &&
      Mode.Strat != Strategy::Strict) {
    emitError(*Out, Req.Id,
              "the bytecode backends support the strict strategy only");
    return;
  }

  // The monitor grant set, deny-by-default. Auto-annotation mirrors the
  // CLI (one qualifier per monitor kind keeps cascaded syntaxes disjoint);
  // interactive monitors are refused — there is no terminal to serve them
  // on, and probe events already stream to the client.
  std::vector<Symbol> Names;
  for (const std::string &N : Req.Names)
    Names.push_back(Symbol::intern(N));
  auto Annotate = [&](const char *Qual, bool WithParams) {
    AnnotateOptions AO;
    AO.Qualifier = Symbol::intern(Qual);
    AO.WithParams = WithParams;
    Program = annotateFunctionBodies(R->P->context(), Program, Names, AO);
  };
  for (const std::string &Kind : Req.Monitors) {
    std::unique_ptr<Monitor> M;
    if (Kind == "profile") {
      Annotate("profile", /*WithParams=*/false);
      M = std::make_unique<CallProfiler>();
    } else if (Kind == "cost") {
      Annotate("cost", /*WithParams=*/false);
      M = std::make_unique<CostProfiler>();
    } else if (Kind == "alloc") {
      Annotate("alloc", /*WithParams=*/false);
      M = std::make_unique<AllocProfiler>();
    } else if (Kind == "callgraph") {
      Annotate("callgraph", /*WithParams=*/false);
      M = std::make_unique<CallGraphMonitor>();
    } else if (Kind == "record") {
      Annotate("record", /*WithParams=*/true);
      M = std::make_unique<FlightRecorder>(16);
    } else if (Kind == "collect") {
      M = std::make_unique<CollectingMonitor>();
    } else if (Kind == "demon") {
      M = std::make_unique<Demon>(Demon::unsortedLists());
    } else if (Kind == "coverage") {
      unsigned NumPoints = 0;
      Program = labelProgramPoints(R->P->context(), Program, "p",
                                   Symbol::intern("cover"), &NumPoints);
      M = std::make_unique<CoverageMonitor>(NumPoints);
    } else if (Kind == "trace" || Kind == "step" || Kind == "debug") {
      emitError(*Out, Req.Id,
                "monitor '" + Kind +
                    "' is interactive and not served; probe events already "
                    "stream to the client");
      return;
    } else {
      emitError(*Out, Req.Id,
                "unknown monitor '" + Kind +
                    "'; served kinds: profile, cost, alloc, callgraph, "
                    "record, collect, demon, coverage");
      return;
    }
    R->MonitorNames.push_back(std::string(M->name()));
    Mode.C.use(*M);
    R->Owned.push_back(std::move(M));
  }
  R->Program = Program;

  Mode = Mode & maxSteps(capLimit(Req.MaxSteps, O.MaxSteps)) &
         deadlineMs(capLimit(Req.DeadlineMs, O.DeadlineMs)) &
         maxArenaBytes(capLimit(Req.MaxBytes, O.MaxBytes)) &
         maxDepth(capLimit(Req.MaxDepth, O.MaxDepth));

  if (Req.Durable) {
    if (O.JournalDir.empty()) {
      emitError(*Out, Req.Id,
                "durability not granted; start serve with --journal=DIR");
      return;
    }
    if (Mode.B == Backend::Direct) {
      emitError(*Out, Req.Id,
                "the direct backend cannot checkpoint; durable runs need "
                "cek or vm");
      return;
    }
    R->ReqPath = O.JournalDir + "/" + Req.Id + ".req.json";
    std::string Err;
    // Persist the request *before* acknowledging it: once the client sees
    // `accepted`, a crash must be recoverable.
    if (!Resume && !writeFileAtomic(R->ReqPath, RawLine + "\n", Err)) {
      emitError(*Out, Req.Id, "cannot persist request: " + Err);
      return;
    }
    R->J = Journal::open(O.JournalDir + "/" + Req.Id + ".journal", Err);
    if (!R->J) {
      emitError(*Out, Req.Id, "cannot open journal: " + Err);
      return;
    }
    Mode = Mode & journalInto(*R->J);
    Mode.CheckpointOnStop = true;
  }

  if (Resume) {
    Mode = Mode & resumeFrom(*Resume);
    // Backend and strategy travel in the checkpoint header; adopt them so
    // a recovered run continues the way it was started (a VM checkpoint is
    // tier-portable: an explicit vm-reg or vm-aot request keeps that
    // tier).
    if (Resume->header().Backend == CheckpointBackend::VM) {
      if (Mode.B != Backend::VMRegister && Mode.B != Backend::VMAot)
        Mode.B = Backend::VM;
    } else {
      Mode.B = Backend::CEK;
    }
    Mode.Strat = static_cast<Strategy>(Resume->header().Strategy);
  }

  {
    json::Writer W;
    W.beginObject();
    W.key("event");
    W.str(Resume ? "recovered" : "accepted");
    W.key("id");
    W.str(Req.Id);
    if (Resume) {
      W.key("steps");
      W.num(ResumeSteps);
    }
    W.endObject();
    Out->writeLine(W.take());
  }

  RunEvents Ev;
  Ev.OnProbe = [R](uint64_t Step, const std::string &Text) {
    R->Probes.emplace_back(Step, Text);
    if (R->Probes.size() >= 256)
      flushProbes(*R);
  };
  Ev.OnCheckpoint = [R](uint64_t Steps) {
    flushProbes(*R);
    json::Writer W;
    W.beginObject();
    W.key("event");
    W.str("checkpoint");
    W.key("id");
    W.str(R->Id);
    W.key("steps");
    W.num(Steps);
    W.endObject();
    R->Out->writeLine(W.take());
  };
  // NOTE: fires on a worker thread while the run's own lock is held — it
  // only writes output and flips Finished; it must not (and does not)
  // touch the registry or call RunHandle methods.
  Ev.OnFinish = [this, R](const RunResult &Res) {
    flushProbes(*R);
    emitOutcome(*R, Res);
    if (!R->ReqPath.empty())
      ::unlink(R->ReqPath.c_str());
    R->J.reset();
    DoneCount.fetch_add(1, std::memory_order_relaxed);
    R->Finished.store(true, std::memory_order_release);
  };

  RunHandle H = S.submit(Mode, R->Program, std::move(Ev), Tenant);
  {
    std::lock_guard<std::mutex> Lock(RM);
    Registry.insert_or_assign(Req.Id, Entry{H, R});
  }
}

void Server::recoverDurable(const std::shared_ptr<LineChannel> &Out) {
  DIR *D = ::opendir(O.JournalDir.c_str());
  if (!D)
    return;
  static constexpr std::string_view Suffix = ".req.json";
  std::vector<std::string> Ids;
  while (dirent *E = ::readdir(D)) {
    std::string_view Name(E->d_name);
    if (Name.size() > Suffix.size() &&
        Name.substr(Name.size() - Suffix.size()) == Suffix)
      Ids.emplace_back(Name.substr(0, Name.size() - Suffix.size()));
  }
  ::closedir(D);
  std::sort(Ids.begin(), Ids.end()); // readdir order is not deterministic.

  for (const std::string &Id : Ids) {
    if (!validRunId(Id))
      continue;
    std::string Raw = readWholeFile(O.JournalDir + "/" + Id + Suffix.data());
    while (!Raw.empty() && (Raw.back() == '\n' || Raw.back() == '\r'))
      Raw.pop_back();
    Request Req;
    std::string Err, ErrId;
    if (Raw.empty() || !parseRequest(Raw, Req, Err, ErrId) ||
        Req.O != Request::Op::Submit || Req.Submit.Id != Id) {
      emitError(*Out, Id, "unrecoverable durable request: " + Err);
      continue;
    }
    // Resume from the journal's last durable checkpoint; a journal with
    // no checkpoint yet (crash before the first quantum expired) restarts
    // the run from the beginning — same at-least-once rule as --supervise.
    JournalRecovery Rec = recoverJournal(O.JournalDir + "/" + Id + ".journal");
    Checkpoint CK;
    uint64_t Steps = 0;
    if (Rec.Opened && !Rec.LastCheckpoint.empty()) {
      std::string CErr;
      CK = Checkpoint::fromBytes(Rec.LastCheckpoint, CErr);
      if (CK.valid())
        Steps = CK.header().SavedSteps;
    }
    submitRun(Req.Submit, Raw, Out, /*DefaultTenant=*/"stdio",
              CK.valid() ? &CK : nullptr, Steps);
  }
}

void Server::dispatch(const std::string &Line,
                      const std::shared_ptr<LineChannel> &Ch,
                      const std::string &DefaultTenant) {
  Request Req;
  std::string Err, ErrId;
  if (!parseRequest(Line, Req, Err, ErrId)) {
    emitError(*Ch, ErrId, Err);
    return;
  }
  switch (Req.O) {
  case Request::Op::Submit:
    submitRun(Req.Submit, Line, Ch, DefaultTenant, /*Resume=*/nullptr, 0);
    break;
  case Request::Op::Cancel: {
    RunHandle H;
    {
      std::lock_guard<std::mutex> Lock(RM);
      auto It = Registry.find(Req.CancelId);
      if (It != Registry.end())
        H = It->second.H;
    }
    if (!H.valid())
      emitError(*Ch, Req.CancelId, "no such live run");
    else
      H.cancel(); // The outcome record is the acknowledgement.
    break;
  }
  case Request::Op::Status:
    emitStatus(*Ch);
    break;
  case Request::Op::Shutdown:
    ShutdownReq = true;
    break;
  }
}

void Server::serveChannel(const std::shared_ptr<LineChannel> &Ch) {
  std::string Line;
  for (;;) {
    LineChannel::ReadStatus St =
        Ch->readLine(Line, [this] { return stopRequested(); });
    if (St == LineChannel::ReadStatus::TooLong) {
      emitError(*Ch, {},
                "request line exceeds " + std::to_string(O.MaxRequestBytes) +
                    " bytes; disconnecting");
      return;
    }
    if (St != LineChannel::ReadStatus::Line)
      return;
    sweepFinished();
    if (Line.find_first_not_of(" \t\r") == std::string::npos)
      continue;
    dispatch(Line, Ch, /*DefaultTenant=*/"stdio");
    if (ShutdownReq)
      return;
  }
}

int Server::drainAndExit(bool CancelAll, LineChannel &Out) {
  if (CancelAll)
    cancelAllLive();
  while (S.liveRuns() > 0) {
    if (!CancelAll && interrupted()) {
      // ^C during a graceful drain escalates to a cancel-drain; a second
      // ^C within the grace window hard-exits via the CLI's handler.
      CancelAll = true;
      cancelAllLive();
    }
    ::usleep(20 * 1000);
  }
  sweepFinished();
  json::Writer W;
  W.beginObject();
  W.key("event");
  W.str("shutdown");
  W.key("done");
  W.num(DoneCount.load(std::memory_order_relaxed));
  W.endObject();
  Out.writeLine(W.take());
  return interrupted() ? 130 : 0;
}

//===----------------------------------------------------------------------===//
// Socket multiplexer
//===----------------------------------------------------------------------===//

void Server::serviceClient(Client &C) {
  const auto Now = std::chrono::steady_clock::now();

  // Writes first: draining the outbox both frees space for this cycle's
  // responses and feeds the slow-reader stall detector.
  switch (C.Ch->flushOut()) {
  case LineChannel::Flush::Error:
    C.Drop = true;
    return;
  case LineChannel::Flush::Blocked:
    if (C.StallSince == std::chrono::steady_clock::time_point{})
      C.StallSince = Now;
    break;
  case LineChannel::Flush::Idle:
  case LineChannel::Flush::Progress:
    C.StallSince = {};
    break;
  }

  // Reads: bounded rounds so one firehose client cannot monopolize the
  // serve thread; whatever is left is picked up next poll cycle.
  std::string Line;
  for (int Round = 0; Round < 16; ++Round) {
    while (C.Ch->nextLine(Line)) {
      C.LastActivity = Now;
      if (Line.find_first_not_of(" \t\r") == std::string::npos)
        continue;
      dispatch(Line, C.Ch, C.Tenant);
      if (ShutdownReq)
        return;
    }
    if (C.ReadClosed)
      return;
    switch (C.Ch->pumpIn()) {
    case LineChannel::Pump::Progress:
      C.LastActivity = Now;
      continue;
    case LineChannel::Pump::WouldBlock:
      return;
    case LineChannel::Pump::Eof:
      // Half-close: the client is done submitting but may still be
      // reading outcomes; drain remaining buffered lines, then keep the
      // connection for its pending responses.
      C.ReadClosed = true;
      continue;
    case LineChannel::Pump::TooLong:
      emitError(*C.Ch, {},
                "request line exceeds " + std::to_string(O.MaxRequestBytes) +
                    " bytes; disconnecting");
      C.Ch->flushOut(); // Best effort: get the verdict onto the wire.
      C.Drop = true;
      return;
    case LineChannel::Pump::Error:
      C.Drop = true;
      return;
    }
  }
}

void Server::reapClients(std::vector<Client> &Clients) {
  const auto Now = std::chrono::steady_clock::now();
  for (Client &C : Clients) {
    if (C.Drop || C.Ch->dead())
      continue;
    const bool OutIdle = !C.Ch->wantsWrite();
    // use_count() == 1 means no live run still holds this channel for its
    // responses — only the client table references it.
    const bool NoRuns = C.Ch.use_count() == 1;
    if (C.Ch->overflowed() && OutIdle) {
      // The overflow notice has drained (or died trying); cut the cord.
      C.Drop = true;
      continue;
    }
    if (C.ReadClosed && NoRuns && OutIdle) {
      C.Drop = true; // Clean finish: EOF seen, every response delivered.
      continue;
    }
    if (O.SlowReaderMs && C.StallSince != std::chrono::steady_clock::time_point{} &&
        Now - C.StallSince > std::chrono::milliseconds(O.SlowReaderMs)) {
      // Write-blocked with zero drain for the whole window. The error
      // record is almost certainly undeliverable (the pipe is full), but
      // queue it anyway for the post-mortem read() a dying client might do.
      emitError(*C.Ch, {}, "slow reader: no drain for " +
                               std::to_string(O.SlowReaderMs) +
                               " ms; disconnecting");
      C.Drop = true;
      continue;
    }
    if (O.IdleTimeoutMs && !C.ReadClosed && NoRuns && OutIdle &&
        Now - C.LastActivity > std::chrono::milliseconds(O.IdleTimeoutMs)) {
      emitError(*C.Ch, {}, "idle timeout after " +
                               std::to_string(O.IdleTimeoutMs) +
                               " ms; disconnecting");
      C.Ch->flushOut();
      C.Drop = true;
      continue;
    }
  }
  for (Client &C : Clients)
    if (C.Drop)
      C.Ch->shutdownNow(); // Workers holding the channel see dead() and
                           // drop their output; the fd is gone now.
  Clients.erase(std::remove_if(Clients.begin(), Clients.end(),
                               [](const Client &C) { return C.Drop; }),
                Clients.end());
}

int Server::runMux(const std::shared_ptr<LineChannel> &Stdio, Listener &L) {
  std::vector<Client> Clients;
  std::vector<pollfd> P;
  while (!stopRequested()) {
    sweepFinished();

    P.clear();
    P.push_back({L.fd(), POLLIN, 0});
    for (const Client &C : Clients) {
      short Ev = 0;
      if (!C.ReadClosed)
        Ev |= POLLIN;
      if (C.Ch->wantsWrite())
        Ev |= POLLOUT;
      P.push_back({C.Ch->fd(), Ev, 0});
    }
    // 200ms cap keeps the loop responsive to SIGINT and to timers even
    // when poll reports nothing.
    if (::poll(P.data(), P.size(), 200) < 0 && errno != EINTR)
      break;

    // Accept a bounded batch of new connections per cycle.
    for (int I = 0; I < 32; ++I) {
      std::string AErr;
      std::unique_ptr<LineChannel> Ch = L.acceptOne(AErr);
      if (!Ch) {
        if (!AErr.empty())
          emitError(*Stdio, {}, "accept failed: " + AErr);
        break;
      }
      Ch->setMaxLineBytes(O.MaxRequestBytes);
      Ch->setNonBlocking(O.MaxOutboxBytes, overflowNoticeLine());
      if (O.SockSndbufBytes) {
        // Bound kernel-side buffering so a slow reader exerts backpressure
        // on the outbox (where the overflow/stall policy lives) instead of
        // hiding behind megabytes of autotuned socket buffer.
        int Buf = static_cast<int>(
            std::min<uint64_t>(O.SockSndbufBytes, 1u << 30));
        ::setsockopt(Ch->fd(), SOL_SOCKET, SO_SNDBUF, &Buf, sizeof(Buf));
      }
      Client C;
      C.Ch = std::move(Ch);
      C.Tenant = "c" + std::to_string(++NextConn);
      C.LastActivity = std::chrono::steady_clock::now();
      Clients.push_back(std::move(C));
    }

    for (Client &C : Clients) {
      serviceClient(C);
      if (ShutdownReq)
        break;
    }
    reapClients(Clients);
    if (ShutdownReq)
      break;
  }
  return drainMux(Clients, stopRequested(), *Stdio);
}

int Server::drainMux(std::vector<Client> &Clients, bool CancelAll,
                     LineChannel &Stdio) {
  if (CancelAll)
    cancelAllLive();
  for (;;) {
    bool Pending = false;
    for (Client &C : Clients) {
      if (C.Ch->dead())
        continue;
      if (C.Ch->flushOut() == LineChannel::Flush::Error)
        C.Ch->shutdownNow();
      else if (C.Ch->wantsWrite())
        Pending = true;
    }
    if (S.liveRuns() == 0 && !Pending)
      break;
    if (!CancelAll && interrupted()) {
      // ^C during a graceful drain escalates to a cancel-drain; a second
      // ^C within the grace window hard-exits via the CLI's handler.
      CancelAll = true;
      cancelAllLive();
    }
    ::usleep(20 * 1000);
  }
  sweepFinished();
  json::Writer W;
  W.beginObject();
  W.key("event");
  W.str("shutdown");
  W.key("done");
  W.num(DoneCount.load(std::memory_order_relaxed));
  W.endObject();
  std::string Line = W.take();
  for (Client &C : Clients) {
    if (C.Ch->dead())
      continue;
    C.Ch->writeLine(Line);
    C.Ch->flushOut(); // Best effort; a blocked peer forfeits the record.
    C.Ch->shutdownNow();
  }
  Stdio.writeLine(Line);
  return interrupted() ? 130 : 0;
}

int Server::run() {
  // Workers write to client sockets; a hung-up peer must surface as a
  // writeLine failure, not a process-killing SIGPIPE.
  std::signal(SIGPIPE, SIG_IGN);

  auto Stdio = std::make_shared<LineChannel>(0, 1, /*OwnsFds=*/false);
  Stdio->setMaxLineBytes(O.MaxRequestBytes);
  if (!O.JournalDir.empty())
    recoverDurable(Stdio);

  if (!O.UnixPath.empty() || O.TcpPort >= 0) {
    std::string Err;
    std::unique_ptr<Listener> L =
        !O.UnixPath.empty()
            ? Listener::listenUnix(O.UnixPath, Err)
            : Listener::listenTcp(static_cast<uint16_t>(O.TcpPort), Err);
    if (!L) {
      emitError(*Stdio, {}, "cannot listen: " + Err);
      return 1;
    }
    // Announce the endpoint on stdout — with --listen-tcp=0 this is how
    // the client learns the picked port.
    {
      json::Writer W;
      W.beginObject();
      W.key("event");
      W.str("listening");
      W.key("transport");
      W.str(!O.UnixPath.empty() ? "unix" : "tcp");
      if (!O.UnixPath.empty()) {
        W.key("path");
        W.str(O.UnixPath);
      } else {
        W.key("port");
        W.num(static_cast<uint64_t>(L->boundPort()));
      }
      W.endObject();
      Stdio->writeLine(W.take());
    }
    return runMux(Stdio, *L);
  }

  serveChannel(Stdio);
  // stdin EOF drains gracefully (runs finish, outcomes flush, exit 0);
  // shutdown/^C cancel what is in flight first — every live run still
  // gets its final outcome record before the process exits.
  return drainAndExit(interrupted() || ShutdownReq, *Stdio);
}

} // namespace

int monsem::runServe(const ServeOptions &O) {
  if (!O.JournalDir.empty())
    ::mkdir(O.JournalDir.c_str(), 0777); // EEXIST is the common case.
  // Eviction spills into the journal directory when one was granted, else
  // into a private per-process spool under TMPDIR.
  std::string SpoolDir;
  bool OwnSpool = false;
  if (O.MaxResidentBytes) {
    if (!O.JournalDir.empty()) {
      SpoolDir = O.JournalDir;
    } else {
      const char *Tmp = std::getenv("TMPDIR");
      SpoolDir = std::string(Tmp && *Tmp ? Tmp : "/tmp") +
                 "/monsem-serve-spool-" + std::to_string(::getpid());
      ::mkdir(SpoolDir.c_str(), 0700);
      OwnSpool = true;
    }
  }
  int Rc;
  {
    Server Srv(O, SpoolDir);
    Rc = Srv.run();
  } // Session joined: every park file is unlinked by now.
  if (OwnSpool)
    ::rmdir(SpoolDir.c_str());
  return Rc;
}
