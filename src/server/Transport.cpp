//===- server/Transport.cpp - poll-driven line I/O --------------------------===//

#include "server/Transport.h"

#include <cerrno>
#include <cstring>

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace monsem;

LineChannel::~LineChannel() {
  if (OwnsFds) {
    ::close(InFd);
    if (OutFd != InFd)
      ::close(OutFd);
  }
}

LineChannel::ReadStatus
LineChannel::readLine(std::string &Out, const std::function<bool()> &Stop) {
  for (;;) {
    // Serve a buffered line first; EOF only after the buffer drains.
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      Out.assign(Buf, 0, NL);
      Buf.erase(0, NL + 1);
      return ReadStatus::Line;
    }
    if (SawEof) {
      if (!Buf.empty()) {
        Out = std::move(Buf);
        Buf.clear();
        return ReadStatus::Line;
      }
      return ReadStatus::Eof;
    }
    if (Stop && Stop())
      return ReadStatus::Stopped;

    struct pollfd P = {InFd, POLLIN, 0};
    int N = ::poll(&P, 1, 200);
    if (N < 0) {
      if (errno == EINTR)
        continue; // A signal (SIGINT) landed; re-check the stop predicate.
      return ReadStatus::Error;
    }
    if (N == 0)
      continue; // Timeout: re-check the stop predicate.

    char Chunk[4096];
    ssize_t R = ::read(InFd, Chunk, sizeof(Chunk));
    if (R < 0) {
      if (errno == EINTR)
        continue;
      return ReadStatus::Error;
    }
    if (R == 0)
      SawEof = true;
    else
      Buf.append(Chunk, static_cast<size_t>(R));
  }
}

bool LineChannel::writeLine(std::string_view Line) {
  std::lock_guard<std::mutex> Lock(WM);
  std::string Out(Line);
  Out.push_back('\n');
  size_t Off = 0;
  while (Off < Out.size()) {
    ssize_t W = ::write(OutFd, Out.data() + Off, Out.size() - Off);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      return false; // Peer hung up (SIGPIPE is ignored by the serve loop).
    }
    Off += static_cast<size_t>(W);
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Listener
//===----------------------------------------------------------------------===//

Listener::~Listener() {
  ::close(Fd);
  if (!UnlinkPath.empty())
    ::unlink(UnlinkPath.c_str());
}

std::unique_ptr<Listener> Listener::listenUnix(const std::string &Path,
                                               std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "unix socket path too long";
    return nullptr;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::strerror(errno);
    return nullptr;
  }
  ::unlink(Path.c_str()); // A stale socket from a crashed server.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 16) < 0) {
    Err = std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  return std::unique_ptr<Listener>(new Listener(Fd, Path, 0));
}

std::unique_ptr<Listener> Listener::listenTcp(uint16_t Port,
                                              std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Err = std::strerror(errno);
    return nullptr;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // Loopback only, by design.
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 16) < 0) {
    Err = std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    Port = ntohs(Addr.sin_port);
  return std::unique_ptr<Listener>(new Listener(Fd, std::string(), Port));
}

std::unique_ptr<LineChannel>
Listener::accept(const std::function<bool()> &Stop) {
  for (;;) {
    if (Stop && Stop())
      return nullptr;
    struct pollfd P = {Fd, POLLIN, 0};
    int N = ::poll(&P, 1, 200);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      return nullptr;
    }
    if (N == 0)
      continue;
    int Client = ::accept(Fd, nullptr, nullptr);
    if (Client < 0) {
      if (errno == EINTR || errno == ECONNABORTED)
        continue;
      return nullptr;
    }
    return std::make_unique<LineChannel>(Client, Client, /*OwnsFds=*/true);
  }
}
