//===- server/Transport.cpp - poll-driven line I/O --------------------------===//

#include "server/Transport.h"

#include "support/FailPoint.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace monsem;

namespace {

/// Consults a socket failpoint. Cheap when no plan is installed.
FailAction hitSocket(FailSite S) {
  if (!failPointsArmed())
    return FailAction();
  return failPointHit(S);
}

bool wouldBlock(int E) { return E == EAGAIN || E == EWOULDBLOCK; }

void setNonBlockingFd(int Fd) {
  int Flags = ::fcntl(Fd, F_GETFL, 0);
  if (Flags >= 0)
    ::fcntl(Fd, F_SETFL, Flags | O_NONBLOCK);
}

} // namespace

LineChannel::~LineChannel() {
  if (OwnsFds && InFd >= 0) {
    ::close(InFd);
    if (OutFd != InFd && OutFd >= 0)
      ::close(OutFd);
  }
}

ssize_t LineChannel::rawRead(char *Ptr, size_t Len) {
  // Stdio channels (not OwnsFds) skip injection: the env-delivered plan is
  // meant for the daemon's durable I/O and its *sockets*, not its stdout.
  if (OwnsFds) {
    FailAction A = hitSocket(FailSite::SocketRead);
    switch (A.K) {
    case FailAction::Kind::None:
      break;
    case FailAction::Kind::Error:
      errno = A.Errno;
      return -1;
    case FailAction::Kind::Short:
      if (A.Bytes == 0) {
        errno = EAGAIN;
        return -1;
      }
      Len = A.Bytes < Len ? static_cast<size_t>(A.Bytes) : Len;
      break;
    case FailAction::Kind::Crash:
      _exit(kFailPointCrashExit);
    }
  }
  return ::read(InFd, Ptr, Len);
}

ssize_t LineChannel::rawWrite(const char *Ptr, size_t Len) {
  if (OwnsFds) {
    FailAction A = hitSocket(FailSite::SocketWrite);
    switch (A.K) {
    case FailAction::Kind::None:
      break;
    case FailAction::Kind::Error:
      errno = A.Errno;
      return -1;
    case FailAction::Kind::Short:
      if (A.Bytes == 0) {
        errno = EAGAIN;
        return -1;
      }
      Len = A.Bytes < Len ? static_cast<size_t>(A.Bytes) : Len;
      break;
    case FailAction::Kind::Crash:
      _exit(kFailPointCrashExit);
    }
  }
  return ::write(OutFd, Ptr, Len);
}

LineChannel::ReadStatus
LineChannel::readLine(std::string &Out, const std::function<bool()> &Stop) {
  for (;;) {
    // Serve a buffered line first; EOF only after the buffer drains.
    size_t NL = Buf.find('\n');
    if (NL != std::string::npos) {
      Out.assign(Buf, 0, NL);
      Buf.erase(0, NL + 1);
      return ReadStatus::Line;
    }
    if (MaxLineBytes && Buf.size() > MaxLineBytes)
      return ReadStatus::TooLong;
    if (SawEof) {
      if (!Buf.empty()) {
        Out = std::move(Buf);
        Buf.clear();
        return ReadStatus::Line;
      }
      return ReadStatus::Eof;
    }
    if (Stop && Stop())
      return ReadStatus::Stopped;

    struct pollfd P = {InFd, POLLIN, 0};
    int N = ::poll(&P, 1, 200);
    if (N < 0) {
      if (errno == EINTR)
        continue; // A signal (SIGINT) landed; re-check the stop predicate.
      return ReadStatus::Error;
    }
    if (N == 0)
      continue; // Timeout: re-check the stop predicate.

    char Chunk[4096];
    ssize_t R = rawRead(Chunk, sizeof(Chunk));
    if (R < 0) {
      if (errno == EINTR || wouldBlock(errno))
        continue;
      return ReadStatus::Error;
    }
    if (R == 0)
      SawEof = true;
    else
      Buf.append(Chunk, static_cast<size_t>(R));
  }
}

void LineChannel::setNonBlocking(size_t MaxOutboxBytes,
                                 std::string Notice) {
  setNonBlockingFd(InFd);
  if (OutFd != InFd)
    setNonBlockingFd(OutFd);
  std::lock_guard<std::mutex> Lock(WM);
  NonBlocking = true;
  MaxOutbox = MaxOutboxBytes;
  OverflowNotice = std::move(Notice);
}

LineChannel::Pump LineChannel::pumpIn() {
  if (dead())
    return Pump::Error;
  if (SawEof)
    return Pump::Eof;
  char Chunk[4096];
  ssize_t R = rawRead(Chunk, sizeof(Chunk));
  if (R < 0) {
    if (errno == EINTR || wouldBlock(errno))
      return Pump::WouldBlock;
    return Pump::Error;
  }
  if (R == 0) {
    SawEof = true;
    return Pump::Eof;
  }
  Buf.append(Chunk, static_cast<size_t>(R));
  // Cap the unterminated tail; complete buffered lines are still handed
  // out by nextLine before the caller acts on TooLong (it will not — the
  // serve loop disconnects, because an oversized request is a protocol
  // error that poisons the rest of the stream).
  if (MaxLineBytes) {
    size_t LastNL = Buf.rfind('\n');
    size_t Tail = LastNL == std::string::npos ? Buf.size()
                                              : Buf.size() - LastNL - 1;
    if (Tail > MaxLineBytes)
      return Pump::TooLong;
  }
  return Pump::Progress;
}

bool LineChannel::nextLine(std::string &Out) {
  size_t NL = Buf.find('\n');
  if (NL != std::string::npos) {
    Out.assign(Buf, 0, NL);
    Buf.erase(0, NL + 1);
    return true;
  }
  if (SawEof && !Buf.empty()) {
    Out = std::move(Buf);
    Buf.clear();
    return true;
  }
  return false;
}

bool LineChannel::writeLine(std::string_view Line) {
  if (dead())
    return false;
  std::lock_guard<std::mutex> Lock(WM);
  if (!NonBlocking) {
    // Blocking mode (stdio): write through, retrying partial writes.
    std::string Out(Line);
    Out.push_back('\n');
    size_t Off = 0;
    while (Off < Out.size()) {
      ssize_t W = rawWrite(Out.data() + Off, Out.size() - Off);
      if (W < 0) {
        if (errno == EINTR)
          continue;
        return false; // Peer hung up (SIGPIPE is ignored by the serve loop).
      }
      Off += static_cast<size_t>(W);
    }
    return true;
  }

  if (HardError || Overflow)
    return false;
  size_t Pending = Outbox.size() - OutboxSent;
  if (MaxOutbox && Pending + Line.size() + 1 > MaxOutbox && Pending > 0) {
    // Maybe the socket just drained; only then is dropping justified.
    (void)flushLocked();
    if (HardError)
      return false;
    Pending = Outbox.size() - OutboxSent;
  }
  // A single line larger than the cap is admitted when nothing else is
  // pending: the bound degrades to max(MaxOutbox, one line), which is
  // still bounded — response lines are sized by the server, not the peer.
  if (MaxOutbox && Pending + Line.size() + 1 > MaxOutbox && Pending > 0) {
    // Slow reader: drop the backlog at a line boundary (keep only the
    // partially-sent line, through its '\n'), queue the final notice, and
    // mark for disconnect. The wire never carries a torn line.
    size_t Keep = OutboxSent;
    if (OutboxSent > 0 && Outbox[OutboxSent - 1] != '\n') {
      size_t NL = Outbox.find('\n', OutboxSent);
      Keep = NL == std::string::npos ? Outbox.size() : NL + 1;
    }
    Outbox.resize(Keep);
    if (!OverflowNotice.empty()) {
      Outbox.append(OverflowNotice);
      Outbox.push_back('\n');
    }
    Overflow = true;
    return false;
  }
  Outbox.append(Line);
  Outbox.push_back('\n');
  if (Pending == 0)
    (void)flushLocked(); // Common case: socket is writable; skip a poll round.
  return !HardError;
}

LineChannel::Flush LineChannel::flushOut() {
  if (dead())
    return Flush::Error;
  std::lock_guard<std::mutex> Lock(WM);
  return flushLocked();
}

LineChannel::Flush LineChannel::flushLocked() {
  if (HardError)
    return Flush::Error;
  if (OutboxSent >= Outbox.size()) {
    Outbox.clear();
    OutboxSent = 0;
    return Flush::Idle;
  }
  bool Any = false;
  while (OutboxSent < Outbox.size()) {
    ssize_t W = rawWrite(Outbox.data() + OutboxSent, Outbox.size() - OutboxSent);
    if (W < 0) {
      if (errno == EINTR)
        continue;
      if (wouldBlock(errno))
        break;
      HardError = true;
      Outbox.clear();
      OutboxSent = 0;
      return Flush::Error;
    }
    if (W == 0)
      break;
    OutboxSent += static_cast<size_t>(W);
    Any = true;
  }
  if (OutboxSent >= Outbox.size()) {
    Outbox.clear();
    OutboxSent = 0;
  } else if (OutboxSent > 65536) {
    Outbox.erase(0, OutboxSent);
    OutboxSent = 0;
  }
  return Any ? Flush::Progress : Flush::Blocked;
}

bool LineChannel::wantsWrite() const {
  if (dead())
    return false;
  std::lock_guard<std::mutex> Lock(WM);
  return !HardError && OutboxSent < Outbox.size();
}

bool LineChannel::overflowed() const {
  std::lock_guard<std::mutex> Lock(WM);
  return Overflow;
}

void LineChannel::shutdownNow() {
  std::lock_guard<std::mutex> Lock(WM);
  if (Dead.exchange(true, std::memory_order_acq_rel))
    return;
  Outbox.clear();
  OutboxSent = 0;
  if (OwnsFds && InFd >= 0) {
    ::close(InFd);
    if (OutFd != InFd && OutFd >= 0)
      ::close(OutFd);
  }
  InFd = OutFd = -1;
}

//===----------------------------------------------------------------------===//
// Listener
//===----------------------------------------------------------------------===//

Listener::~Listener() {
  ::close(Fd);
  if (!UnlinkPath.empty())
    ::unlink(UnlinkPath.c_str());
}

std::unique_ptr<Listener> Listener::listenUnix(const std::string &Path,
                                               std::string &Err) {
  sockaddr_un Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    Err = "unix socket path too long";
    return nullptr;
  }
  std::memcpy(Addr.sun_path, Path.c_str(), Path.size() + 1);

  int Fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (Fd < 0) {
    Err = std::strerror(errno);
    return nullptr;
  }
  ::unlink(Path.c_str()); // A stale socket from a crashed server.
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    Err = std::strerror(errno);
    ::close(Fd);
    ::unlink(Path.c_str()); // Never leave a half-set-up socket file behind.
    return nullptr;
  }
  return std::unique_ptr<Listener>(new Listener(Fd, Path, 0));
}

std::unique_ptr<Listener> Listener::listenTcp(uint16_t Port,
                                              std::string &Err) {
  int Fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC | SOCK_NONBLOCK, 0);
  if (Fd < 0) {
    Err = std::strerror(errno);
    return nullptr;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  sockaddr_in Addr;
  std::memset(&Addr, 0, sizeof(Addr));
  Addr.sin_family = AF_INET;
  Addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK); // Loopback only, by design.
  Addr.sin_port = htons(Port);
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Fd, 64) < 0) {
    Err = std::strerror(errno);
    ::close(Fd);
    return nullptr;
  }
  socklen_t Len = sizeof(Addr);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Addr), &Len) == 0)
    Port = ntohs(Addr.sin_port);
  return std::unique_ptr<Listener>(new Listener(Fd, std::string(), Port));
}

std::unique_ptr<LineChannel> Listener::acceptOne(std::string &Err) {
  Err.clear();
  FailAction A = hitSocket(FailSite::SocketAccept);
  if (A.K == FailAction::Kind::Crash)
    _exit(kFailPointCrashExit);
  if (A.armed())
    return nullptr; // Injected accept failure: transient, daemon survives.
  int Client = ::accept4(Fd, nullptr, nullptr, SOCK_CLOEXEC | SOCK_NONBLOCK);
  if (Client < 0) {
    switch (errno) {
    case EAGAIN:
#if EAGAIN != EWOULDBLOCK
    case EWOULDBLOCK:
#endif
    case EINTR:
    case ECONNABORTED:
    case EMFILE:  // Out of fds: shed this connection, keep serving.
    case ENFILE:
    case ENOBUFS:
    case ENOMEM:
    case EPERM:
      return nullptr;
    default:
      Err = std::strerror(errno);
      return nullptr;
    }
  }
  return std::make_unique<LineChannel>(Client, Client, /*OwnsFds=*/true);
}
