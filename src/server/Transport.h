//===- server/Transport.h - Line transports for monsem serve ----*- C++ -*-===//
///
/// \file
/// Byte transport for the JSONL protocol: a `LineChannel` turns a pair of
/// file descriptors into a line-oriented duplex channel, and `Listener`
/// accepts unix-domain or loopback-TCP connections that become channels.
///
/// Reads poll with a short timeout and consult a stop predicate between
/// polls, so the serve loop notices SIGINT (or a shutdown request) even
/// while idle at a blocking read. Writes are mutex-guarded and whole-line
/// atomic: concurrent workers can stream probe batches for different runs
/// into one channel without interleaving bytes.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SERVER_TRANSPORT_H
#define MONSEM_SERVER_TRANSPORT_H

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace monsem {

/// A line-oriented duplex channel over two (possibly equal) fds. Does not
/// own the fds unless told to (socket channels do, stdio does not).
class LineChannel {
public:
  LineChannel(int InFd, int OutFd, bool OwnsFds = false)
      : InFd(InFd), OutFd(OutFd), OwnsFds(OwnsFds) {}
  ~LineChannel();

  LineChannel(const LineChannel &) = delete;
  LineChannel &operator=(const LineChannel &) = delete;

  enum class ReadStatus : uint8_t {
    Line,    ///< A complete line was read (returned without the '\n').
    Eof,     ///< Input exhausted (a final unterminated line is delivered
             ///< as Line first).
    Stopped, ///< The stop predicate fired.
    Error,   ///< read() failed.
  };

  /// Reads the next line. Between 200ms polls, \p Stop is consulted; when
  /// it returns true the call gives up with Stopped.
  ReadStatus readLine(std::string &Out, const std::function<bool()> &Stop);

  /// Writes \p Line plus '\n' atomically with respect to other writeLine
  /// calls on this channel. Returns false on write failure (e.g. the peer
  /// hung up); the channel stays usable for the caller to decide.
  bool writeLine(std::string_view Line);

private:
  int InFd;
  int OutFd;
  bool OwnsFds;
  std::string Buf;     ///< Bytes read but not yet returned.
  bool SawEof = false;
  std::mutex WM;
};

/// A listening unix-domain or loopback-TCP socket. Connections are served
/// one at a time (accept, serve to EOF, accept the next); the protocol is
/// request-streamed, so a client holds the connection for as long as it
/// wants to submit and observe runs.
class Listener {
public:
  ~Listener();

  /// Binds and listens on a unix-domain socket at \p Path (unlinking a
  /// stale socket first). Null + \p Err on failure.
  static std::unique_ptr<Listener> listenUnix(const std::string &Path,
                                              std::string &Err);

  /// Binds and listens on 127.0.0.1:\p Port. \p Port 0 picks a free port
  /// (see boundPort()). Null + \p Err on failure.
  static std::unique_ptr<Listener> listenTcp(uint16_t Port, std::string &Err);

  /// Accepts the next connection as an owning channel. Polls with the same
  /// 200ms cadence as reads; returns null when \p Stop fires or accept
  /// fails terminally.
  std::unique_ptr<LineChannel> accept(const std::function<bool()> &Stop);

  uint16_t boundPort() const { return Port; }

private:
  Listener(int Fd, std::string UnlinkPath, uint16_t Port)
      : Fd(Fd), UnlinkPath(std::move(UnlinkPath)), Port(Port) {}

  int Fd;
  std::string UnlinkPath; ///< Unix socket path to unlink on close.
  uint16_t Port = 0;
};

} // namespace monsem

#endif // MONSEM_SERVER_TRANSPORT_H
