//===- server/Transport.h - Line transports for monsem serve ----*- C++ -*-===//
///
/// \file
/// Byte transport for the JSONL protocol: a `LineChannel` turns a pair of
/// file descriptors into a line-oriented duplex channel, and `Listener`
/// accepts unix-domain or loopback-TCP connections that become channels.
///
/// A channel operates in one of two modes:
///
///  * **Blocking** (stdio): `readLine` polls with a short timeout and
///    consults a stop predicate between polls, so the serve loop notices
///    SIGINT (or a shutdown request) even while idle at a blocking read.
///    Writes block until the peer drains them.
///
///  * **Non-blocking** (socket clients under the serve multiplexer):
///    `pumpIn`/`nextLine` split reading into "ingest what the socket has"
///    and "hand out buffered lines", so one poll loop can serve many
///    clients without any of them blocking it. Writes go through a bounded
///    outbound queue (`writeLine` enqueues, `flushOut` drains when poll
///    reports writability); a peer that stops reading overflows the queue,
///    which truncates the backlog at a line boundary, queues a final
///    structured notice, and marks the channel for disconnect — a slow
///    reader can cost the daemon one bounded buffer, never a stalled
///    worker or serve loop.
///
/// In both modes writes are mutex-guarded and whole-line atomic: concurrent
/// workers can stream probe batches for different runs into one channel
/// without interleaving bytes. Oversized request lines (no '\n' within the
/// configured cap) are reported as `TooLong` instead of growing the buffer
/// without bound.
///
/// Socket-owned channels thread every read/write through the
/// `socket.{read,write}` failpoints (support/FailPoint.h), and `Listener`
/// threads accepts through `socket.accept`, so the chaos tests can inject
/// mid-response disconnects, short reads/writes, and accept failures
/// deterministically. Stdio channels (which do not own their fds) skip the
/// failpoints — `MONSEM_FAILPOINTS` is delivered via the environment, and
/// arming the daemon's own stdout would break the test transcripts that
/// observe the injected faults.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SERVER_TRANSPORT_H
#define MONSEM_SERVER_TRANSPORT_H

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

namespace monsem {

/// A line-oriented duplex channel over two (possibly equal) fds. Does not
/// own the fds unless told to (socket channels do, stdio does not).
class LineChannel {
public:
  /// Default cap on one request line; 0 disables the cap.
  static constexpr size_t kDefaultMaxLineBytes = 1 << 20;

  LineChannel(int InFd, int OutFd, bool OwnsFds = false)
      : InFd(InFd), OutFd(OutFd), OwnsFds(OwnsFds) {}
  ~LineChannel();

  LineChannel(const LineChannel &) = delete;
  LineChannel &operator=(const LineChannel &) = delete;

  enum class ReadStatus : uint8_t {
    Line,    ///< A complete line was read (returned without the '\n').
    Eof,     ///< Input exhausted (a final unterminated line is delivered
             ///< as Line first).
    Stopped, ///< The stop predicate fired.
    Error,   ///< read() failed.
    TooLong, ///< A single line exceeded the request-size cap.
  };

  /// Reads the next line (blocking mode). Between 200ms polls, \p Stop is
  /// consulted; when it returns true the call gives up with Stopped.
  ReadStatus readLine(std::string &Out, const std::function<bool()> &Stop);

  /// Writes \p Line plus '\n' atomically with respect to other writeLine
  /// calls on this channel. Blocking mode: returns false on write failure
  /// (e.g. the peer hung up). Non-blocking mode: enqueues into the bounded
  /// outbox and opportunistically flushes; returns false once the channel
  /// is dead or the outbox overflowed (the line is dropped, the channel is
  /// marked for disconnect). The channel stays usable for the caller to
  /// decide.
  bool writeLine(std::string_view Line);

  /// Caps the size of one request line; lines without a '\n' within the
  /// cap read as TooLong. 0 disables the cap.
  void setMaxLineBytes(size_t N) { MaxLineBytes = N; }

  //===--------------------------------------------------------------------===//
  // Multiplexer surface (non-blocking socket clients)
  //===--------------------------------------------------------------------===//

  /// Switches the channel to non-blocking mode (O_NONBLOCK on both fds)
  /// with an outbound queue bounded at \p MaxOutboxBytes (0 = unbounded).
  /// \p OverflowNotice is the final line queued to a slow reader whose
  /// backlog overflowed, before the serve loop disconnects it.
  void setNonBlocking(size_t MaxOutboxBytes, std::string OverflowNotice);

  int fd() const { return InFd; }

  enum class Pump : uint8_t {
    Progress,   ///< Bytes were ingested; call nextLine().
    WouldBlock, ///< Nothing to read right now.
    Eof,        ///< Peer closed its write side; drain buffered lines.
    TooLong,    ///< A single line exceeded the request-size cap.
    Error,      ///< read() failed; disconnect.
  };

  /// One non-blocking read into the line buffer.
  Pump pumpIn();

  /// Extracts the next buffered complete line (or, after EOF, a final
  /// unterminated one). False when no full line is buffered.
  bool nextLine(std::string &Out);

  enum class Flush : uint8_t {
    Idle,     ///< Outbox empty, nothing to do.
    Progress, ///< Some bytes drained (possibly all).
    Blocked,  ///< The socket would block; try after the next POLLOUT.
    Error,    ///< write() failed; disconnect.
  };

  /// Drains the outbox as far as the socket allows.
  Flush flushOut();

  /// True when the outbox holds bytes (poll for POLLOUT).
  bool wantsWrite() const;

  /// True once the outbox overflowed (slow reader); the serve loop
  /// disconnects the client after the final notice drains.
  bool overflowed() const;

  /// Marks the channel dead and closes its fds now (idempotent). Later
  /// writeLine calls return false without touching the (possibly reused)
  /// descriptor numbers — runs that still hold the channel simply lose
  /// their audience.
  void shutdownNow();

  bool dead() const { return Dead.load(std::memory_order_acquire); }

private:
  ssize_t rawRead(char *Buf, size_t Len);    ///< socket.read failpoint.
  ssize_t rawWrite(const char *Buf, size_t Len); ///< socket.write failpoint.
  Flush flushLocked();

  int InFd;
  int OutFd;
  bool OwnsFds;
  bool NonBlocking = false;
  size_t MaxLineBytes = kDefaultMaxLineBytes;
  std::string Buf;     ///< Bytes read but not yet returned.
  bool SawEof = false;
  std::atomic<bool> Dead{false};

  mutable std::mutex WM;
  std::string Outbox;      ///< Queued outbound bytes (whole lines).
  size_t OutboxSent = 0;   ///< Prefix of Outbox already written.
  size_t MaxOutbox = 0;    ///< 0 = unbounded.
  bool Overflow = false;   ///< Backlog overflowed; disconnect after drain.
  bool HardError = false;  ///< write() failed hard; channel is toast.
  std::string OverflowNotice;
};

/// A listening unix-domain or loopback-TCP socket. The serve multiplexer
/// polls fd() alongside its client channels and accepts with acceptOne();
/// accepted sockets are non-blocking-ready and close-on-exec, so
/// `--supervise` (or vm-aot compiler) forks never inherit client
/// connections.
class Listener {
public:
  ~Listener();

  /// Binds and listens on a unix-domain socket at \p Path (unlinking a
  /// stale socket first). Null + \p Err on failure; the socket file is
  /// never left behind by a failed setup.
  static std::unique_ptr<Listener> listenUnix(const std::string &Path,
                                              std::string &Err);

  /// Binds and listens on 127.0.0.1:\p Port. \p Port 0 picks a free port
  /// (see boundPort()). Null + \p Err on failure.
  static std::unique_ptr<Listener> listenTcp(uint16_t Port, std::string &Err);

  /// Accepts one pending connection as an owning channel. Returns null
  /// with \p Err empty when no connection is ready or the failure is
  /// transient (EMFILE, ECONNABORTED, an injected `socket.accept` fault —
  /// the daemon must survive all of these); null with \p Err set only on
  /// a terminal listener error.
  std::unique_ptr<LineChannel> acceptOne(std::string &Err);

  int fd() const { return Fd; }
  uint16_t boundPort() const { return Port; }

private:
  Listener(int Fd, std::string UnlinkPath, uint16_t Port)
      : Fd(Fd), UnlinkPath(std::move(UnlinkPath)), Port(Port) {}

  int Fd;
  std::string UnlinkPath; ///< Unix socket path to unlink on close.
  uint16_t Port = 0;
};

} // namespace monsem

#endif // MONSEM_SERVER_TRANSPORT_H
