//===- server/Protocol.h - JSONL wire protocol for monsem serve --*- C++ -*-===//
///
/// \file
/// The `monsem serve` wire protocol: one JSON object per line in both
/// directions (JSONL). Requests carry an `"op"` discriminator, responses an
/// `"event"` one, so a client can demultiplex a shared stream with a single
/// string compare.
///
/// Requests:
///
///   {"op":"submit","id":"r1","program":"fac 6","monitors":["profile"],
///    "names":["fac"],"backend":"cek","strategy":"strict","prelude":true,
///    "limits":{"max_steps":100000,"deadline_ms":50,"max_bytes":0,
///              "max_depth":0},"durable":false,"tenant":"alice"}
///   {"op":"cancel","id":"r1"}
///   {"op":"status"}
///   {"op":"shutdown"}
///
/// Responses (all carry the run id where one applies):
///
///   {"event":"accepted","id":"r1"}
///   {"event":"probes","id":"r1","events":[{"step":12,"text":"pre fac"}]}
///   {"event":"checkpoint","id":"r1","steps":65536}
///   {"event":"recovered","id":"r1","steps":65536}
///   {"event":"outcome","id":"r1","outcome":"ok","exit_code":0,
///    "value":"720","steps":178,"monitors":[{"name":"profile",
///    "state":"[fac -> 7]"}]}
///   {"event":"status","live":7,"done":17,"workers":4,...,
///    "resident_bytes":81920,"evictions":3,
///    "tenants":[{"tenant":"alice","queued":2,"active":1,"user_steps":9000,
///                "evicted":1}]}
///   {"event":"overloaded","id":"r1","tenant":"alice","queued":64,
///    "retry_after_ms":1700}
///   {"event":"error","id":"r1","message":"unknown op"}
///   {"event":"listening","transport":"tcp","port":43117}
///   {"event":"shutdown","done":17}
///
/// The `outcome`/`exit_code` pair uses outcomeName()/exitCodeFor() from
/// support/Governor.h — the same table the CLI exits with, so scripting
/// against either surface sees identical codes.
///
/// The JSON support here is deliberately minimal (objects, arrays, strings
/// with full escape handling, 64-bit integers, booleans, null) — the
/// protocol needs nothing more and the toolchain bakes in no JSON library.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SERVER_PROTOCOL_H
#define MONSEM_SERVER_PROTOCOL_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace monsem {
namespace json {

/// A parsed JSON value. Numbers are 64-bit integers: the protocol's only
/// numeric fields are step counts, limits and sizes; fractional or
/// out-of-range literals are a parse error.
struct Value {
  enum class Kind : uint8_t { Null, Bool, Int, Str, Array, Object };

  Kind K = Kind::Null;
  bool B = false;
  int64_t I = 0;
  std::string S;
  std::vector<Value> Elems;
  std::map<std::string, Value> Fields;

  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }
  bool isArray() const { return K == Kind::Array; }

  /// Object field lookup; null when absent or not an object.
  const Value *field(std::string_view Name) const;

  // Typed accessors with defaults (missing/mistyped yields the default).
  std::string_view strOr(std::string_view Default = {}) const {
    return K == Kind::Str ? std::string_view(S) : Default;
  }
  int64_t intOr(int64_t Default = 0) const {
    return K == Kind::Int ? I : Default;
  }
  bool boolOr(bool Default = false) const {
    return K == Kind::Bool ? B : Default;
  }
};

/// Parses one JSON document from \p Text (trailing garbage is an error).
/// Returns false and sets \p Err on malformed input.
bool parse(std::string_view Text, Value &Out, std::string &Err);

/// Appends \p S to \p Out as a JSON string literal (quotes, escapes).
void appendQuoted(std::string &Out, std::string_view S);

/// Incremental writer for one JSON object/array line. Usage:
///
///   json::Writer W;
///   W.beginObject();
///   W.key("event"); W.str("accepted");
///   W.key("id");    W.str(Id);
///   W.endObject();
///   Out.writeLine(W.take());
class Writer {
public:
  void beginObject() { open('{'); }
  void endObject() { close('}'); }
  void beginArray() { open('['); }
  void endArray() { close(']'); }
  void key(std::string_view K) {
    comma();
    appendQuoted(Buf, K);
    Buf.push_back(':');
    JustKeyed = true;
  }
  void str(std::string_view S) {
    comma();
    appendQuoted(Buf, S);
  }
  void num(int64_t N) {
    comma();
    Buf += std::to_string(N);
  }
  void num(uint64_t N) {
    comma();
    Buf += std::to_string(N);
  }
  void boolean(bool B) {
    comma();
    Buf += B ? "true" : "false";
  }
  std::string take() { return std::move(Buf); }

private:
  void open(char C) {
    comma();
    Buf.push_back(C);
    NeedComma = false;
  }
  void close(char C) {
    Buf.push_back(C);
    NeedComma = true;
    JustKeyed = false;
  }
  void comma() {
    if (NeedComma && !JustKeyed)
      Buf.push_back(',');
    NeedComma = true;
    JustKeyed = false;
  }

  std::string Buf;
  bool NeedComma = false;
  bool JustKeyed = false;
};

} // namespace json

//===----------------------------------------------------------------------===//
// Requests
//===----------------------------------------------------------------------===//

/// A validated `"op":"submit"` request.
struct SubmitRequest {
  std::string Id;
  std::string Program;
  std::string Tenant;                ///< Fair-share queue ("" = connection).
  std::vector<std::string> Monitors; ///< Monitor kinds (serve's grant list).
  std::vector<std::string> Names;    ///< Functions to annotate (empty = all).
  std::string Backend = "cek";       ///< cek | vm | vm-reg | vm-aot | direct.
  std::string Strategy = "strict";   ///< strict | name | need.
  bool Prelude = false;
  uint64_t MaxSteps = 0;
  uint64_t DeadlineMs = 0;
  uint64_t MaxBytes = 0;
  uint64_t MaxDepth = 0;
  bool Durable = false;
};

/// One parsed request line.
struct Request {
  enum class Op : uint8_t { Submit, Cancel, Status, Shutdown } O = Op::Status;
  SubmitRequest Submit; ///< Valid when O == Submit.
  std::string CancelId; ///< Valid when O == Cancel.
};

/// True iff \p Id is a well-formed run id: [A-Za-z0-9_-]{1,64}. Keeps ids
/// safe to embed in journal-directory file names.
bool validRunId(std::string_view Id);

/// Parses and validates one request line. On failure returns false and
/// sets \p Err to a client-facing message (\p ErrId gets the request's id
/// when one was present, so the error response can name the run).
bool parseRequest(std::string_view Line, Request &Out, std::string &Err,
                  std::string &ErrId);

} // namespace monsem

#endif // MONSEM_SERVER_PROTOCOL_H
