//===- server/Serve.h - `monsem serve` daemon entry point -------*- C++ -*-===//
///
/// \file
/// The monitoring-as-a-service daemon behind `monsem serve`: a long-lived
/// process that reads JSONL requests (see server/Protocol.h) from stdin, a
/// unix-domain socket, or a loopback TCP socket, runs each submitted
/// program under the requested monitors on a shared Session worker pool,
/// and streams JSONL responses back.
///
/// Capability policy is deny-by-default: clients only get the monitors in
/// the serve grant set (profilers, recorders, coverage — nothing
/// interactive), limits the server was started with are hard caps that
/// requests can tighten but never exceed, and durability (journals +
/// request persistence, i.e. the right to write files) exists only when
/// the operator passed `--journal=DIR`.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SERVER_SERVE_H
#define MONSEM_SERVER_SERVE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace monsem {

/// Operator-side configuration for one `monsem serve` process, assembled
/// by the CLI from serve-mode flags.
struct ServeOptions {
  unsigned Workers = 4;            ///< --workers=N (worker threads).
  uint64_t QuantumSteps = 1 << 16; ///< --quantum-steps=N (0: no slicing).

  /// Per-run resource caps (--max-steps, --deadline-ms, --max-bytes,
  /// --max-depth — the CLI's existing spellings). 0 = unlimited. A
  /// request's own limits are clamped to these: tighter wins.
  uint64_t MaxSteps = 0;
  uint64_t DeadlineMs = 0;
  uint64_t MaxBytes = 0;
  uint64_t MaxDepth = 0;

  /// --journal=DIR: the durability grant. Durable submits persist their
  /// request to DIR/<id>.req.json and journal events + checkpoints to
  /// DIR/<id>.journal; on startup the directory is scanned and interrupted
  /// durable runs are resumed from their last durable checkpoint. Empty =
  /// durability denied.
  std::string JournalDir;

  std::string UnixPath; ///< --listen-unix=PATH (empty: no unix socket).
  int TcpPort = -1;     ///< --listen-tcp=PORT (-1: no TCP; 0: pick free).

  /// The CLI's SIGINT flag (GCancel). When it flips, serve stops accepting
  /// requests, cancels every in-flight run, drains the final outcome
  /// records, and exits 130 — the polite half of the CLI's two-stage ^C.
  std::atomic<bool> *Interrupt = nullptr;
};

/// Runs the daemon until EOF / shutdown request / interrupt. Returns the
/// process exit code (0 clean, 1 setup failure, 130 interrupted).
int runServe(const ServeOptions &O);

} // namespace monsem

#endif // MONSEM_SERVER_SERVE_H
