//===- server/Serve.h - `monsem serve` daemon entry point -------*- C++ -*-===//
///
/// \file
/// The monitoring-as-a-service daemon behind `monsem serve`: a long-lived
/// process that reads JSONL requests (see server/Protocol.h) from stdin, a
/// unix-domain socket, or a loopback TCP socket, runs each submitted
/// program under the requested monitors on a shared Session worker pool,
/// and streams JSONL responses back. Socket transports serve many clients
/// concurrently through a poll-driven multiplexer with per-client bounded
/// buffering; per-tenant fair-share scheduling, admission control and
/// memory-pressure eviction keep one hostile or heavy client from
/// starving the rest (see server/Session.h).
///
/// Capability policy is deny-by-default: clients only get the monitors in
/// the serve grant set (profilers, recorders, coverage — nothing
/// interactive), limits the server was started with are hard caps that
/// requests can tighten but never exceed, and durability (journals +
/// request persistence, i.e. the right to write files) exists only when
/// the operator passed `--journal=DIR`.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SERVER_SERVE_H
#define MONSEM_SERVER_SERVE_H

#include <atomic>
#include <cstdint>
#include <string>

namespace monsem {

/// Operator-side configuration for one `monsem serve` process, assembled
/// by the CLI from serve-mode flags.
struct ServeOptions {
  unsigned Workers = 4;            ///< --workers=N (worker threads).
  uint64_t QuantumSteps = 1 << 16; ///< --quantum-steps=N (0: no slicing).

  /// Per-run resource caps (--max-steps, --deadline-ms, --max-bytes,
  /// --max-depth — the CLI's existing spellings). 0 = unlimited. A
  /// request's own limits are clamped to these: tighter wins.
  uint64_t MaxSteps = 0;
  uint64_t DeadlineMs = 0;
  uint64_t MaxBytes = 0;
  uint64_t MaxDepth = 0;

  /// --journal=DIR: the durability grant. Durable submits persist their
  /// request to DIR/<id>.req.json and journal events + checkpoints to
  /// DIR/<id>.journal; on startup the directory is scanned and interrupted
  /// durable runs are resumed from their last durable checkpoint. Empty =
  /// durability denied.
  std::string JournalDir;

  std::string UnixPath; ///< --listen-unix=PATH (empty: no unix socket).
  int TcpPort = -1;     ///< --listen-tcp=PORT (-1: no TCP; 0: pick free).

  /// Admission caps (--max-live-runs, --max-runs-per-tenant): unfinished
  /// runs the daemon will hold, in total and per tenant. Over-cap submits
  /// get a structured `overloaded` response with a retry-after hint
  /// instead of unbounded queue growth. 0 = uncapped.
  uint64_t MaxLiveRuns = 0;
  uint64_t MaxRunsPerTenant = 0;

  /// --max-resident-bytes: memory-pressure eviction threshold on the
  /// summed serialized size of resident run checkpoints. Over it, the
  /// coldest queued/paused runs are parked to per-run journals (under
  /// --journal=DIR when given, else a private spool directory) and
  /// restored on demand. 0 = never evict.
  uint64_t MaxResidentBytes = 0;

  /// --max-request-bytes: cap on one JSONL request line. Over-limit input
  /// yields a structured `error` record and a disconnect. 0 = uncapped.
  uint64_t MaxRequestBytes = 1 << 20;

  /// --max-outbox-bytes: per-client bound on queued outbound bytes. A
  /// reader slow enough to overflow it loses its backlog (truncated at a
  /// line boundary), receives a final `error` record, and is dropped.
  uint64_t MaxOutboxBytes = 8u << 20;

  /// --idle-timeout-ms: disconnect a socket client with no requests and
  /// no live runs after this long. 0 = never.
  uint64_t IdleTimeoutMs = 0;

  /// --slow-reader-ms: disconnect a socket client whose outbound queue
  /// has been write-blocked without draining a byte for this long.
  uint64_t SlowReaderMs = 10000;

  /// --sock-sndbuf-bytes: SO_SNDBUF for accepted client sockets. Bounds
  /// the *kernel-side* per-client memory on top of --max-outbox-bytes,
  /// and makes backpressure from a slow reader surface promptly instead
  /// of hiding behind megabytes of autotuned socket buffer. 0 = leave
  /// the kernel default.
  uint64_t SockSndbufBytes = 0;

  /// The CLI's SIGINT flag (GCancel). When it flips, serve stops accepting
  /// requests, cancels every in-flight run, drains the final outcome
  /// records, and exits 130 — the polite half of the CLI's two-stage ^C.
  std::atomic<bool> *Interrupt = nullptr;
};

/// Runs the daemon until EOF / shutdown request / interrupt. Returns the
/// process exit code (0 clean, 1 setup failure, 130 interrupted).
int runServe(const ServeOptions &O);

} // namespace monsem

#endif // MONSEM_SERVER_SERVE_H
