//===- server/Session.h - Stable embedding API for monitored runs -*- C++ -*-===//
///
/// \file
/// The embedding API `monsem serve` and the CLI are both built on: a
/// `Session` owns a fixed pool of worker threads and multiplexes any number
/// of submitted runs across them by time-slicing.
///
/// Each scheduler quantum is one `evaluate(mode & maxSteps(quantum) &
/// checkpointInto(...))` call; when the quantum expires the run's
/// checkpoint is captured, the run is requeued, and the next worker to
/// pick it up resumes with `resumeFrom` — possibly a different thread than
/// the one that started it. Because checkpoints record exact transition
/// boundaries (support/Checkpoint.h) and resumed runs re-execute from
/// SavedSteps+1, a sliced run's answer, cumulative step count and probe
/// event stream are byte-identical to an uninterrupted run.
///
/// A `RunHandle` is the caller's view of one submitted run:
///
///   Session S({.Workers = 4, .QuantumSteps = 1 << 16});
///   RunHandle H = S.submit(profiler & maxSteps(1'000'000), P.root());
///   RunResult R = H.outcome();   // blocks until the run finishes
///
/// pause()/resume() park a run at the next governor boundary (checkpointed,
/// off the queue) and put it back; cancel() finishes it with
/// Outcome::Cancelled. Preemption rides the governor's one-compare hot
/// loop via ResourceLimits::PreemptFlag, so an idle flag costs nothing.
///
/// **Fair-share scheduling.** Runs are queued per *tenant* (an opaque
/// string chosen at submit; the empty string is the default tenant) and
/// dispatched by deficit round robin: each visit of the rotation grants a
/// tenant one quantum of credit, a dispatch spends one, and the unspent
/// remainder of a short slice is refunded (capped at a few quanta so an
/// idle tenant cannot hoard a burst). One tenant with a thousand queued
/// runs therefore delays another tenant's first slice by at most a
/// rotation, not by a thousand quanta — the single-FIFO convoy is gone.
///
/// **Admission control.** `Config::MaxLiveRuns` / `MaxLivePerTenant` bound
/// the unfinished-run population; `submit` with an `AdmitErr` out-param
/// enforces them and returns an invalid handle instead of queueing
/// unboundedly (recovery and embedders that pre-check with `admissible()`
/// pass nullptr to bypass).
///
/// **Memory-pressure eviction.** Between slices a preempted run *is* its
/// checkpoint, so when the cumulative resident checkpoint bytes exceed
/// `Config::MaxResidentBytes` the session parks the coldest queued/paused
/// runs out to per-run journal files under `Config::ParkDir` (checkpoint
/// appended, in-memory machine freed) and restores them transparently when
/// a worker next picks them up. Parking is invisible to outcomes: restore
/// resumes from the identical checkpoint bytes, so answers, step counts
/// and probe streams stay byte-identical to an unevicted (or standalone)
/// run.
///
/// With `Workers = 1, QuantumSteps = 0` a Session degenerates to a plain
/// synchronous `evaluate()` — that configuration is exactly what the CLI
/// uses, so the flag surface and the server cannot skew.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SERVER_SESSION_H
#define MONSEM_SERVER_SESSION_H

#include "interp/Eval.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace monsem {

/// Observer callbacks for one run. All of them fire on worker threads; the
/// embedder is responsible for its own synchronization (the server routes
/// them through a mutex-guarded JSONL writer).
struct RunEvents {
  /// Every probe event, as (cumulative step, canonical journal text) — the
  /// same text JournalingHooks writes, so streamed and journaled event
  /// sequences are byte-identical.
  std::function<void(uint64_t Step, const std::string &Text)> OnProbe;
  /// A checkpoint was captured at a park/requeue boundary; \p Steps is the
  /// checkpoint's SavedSteps (completed transitions).
  std::function<void(uint64_t Steps)> OnCheckpoint;
  /// The run reached a final outcome. Fires exactly once, before outcome()
  /// unblocks; the result reference is valid for the duration of the call.
  std::function<void(const RunResult &R)> OnFinish;
};

namespace detail {

/// Shared state of one submitted run. Lifecycle:
///
///   Queued -> Running -> { Queued (quantum expired, requeued)
///                        | Paused (pause() honored at a boundary)
///                        | Done   (final outcome) }
///
/// orthogonally, a Queued/Paused run with a checkpoint may be Parked
/// (checkpoint spilled to disk, machine freed); the next slice restores
/// it before resuming. Guarded by M except SliceStop, which the governor
/// polls lock-free.
struct RunState {
  enum class Phase : uint8_t { Queued, Running, Paused, Done };

  uint64_t Id = 0;
  EvalMode Mode;              ///< As submitted (user limits, sinks, cascade).
  const Expr *Program = nullptr;
  RunEvents Ev;
  std::string Tenant;         ///< Fair-share queue key; immutable.

  std::mutex M;
  std::condition_variable CV; ///< Signaled on Done.
  Phase Ph = Phase::Queued;
  bool CancelRequested = false;
  bool PauseRequested = false;
  /// Scheduler preemption flag, wired as ResourceLimits::PreemptFlag for
  /// the duration of each slice.
  std::atomic<bool> SliceStop{false};

  /// Latest checkpoint (requeue/park resume point). Valid iff HasCK.
  Checkpoint CK;
  bool HasCK = false;
  /// Checkpoint spilled to ParkPath by memory-pressure eviction; CK is
  /// empty until the next slice restores it.
  bool Parked = false;
  std::string ParkPath;
  /// CK's serialized size, as charged against Session::MaxResidentBytes.
  uint64_t ResidentBytes = 0;
  /// Global slice sequence number of this run's last slice (0 = never
  /// ran); eviction parks the lowest first — coldest-out. Atomic because
  /// maybeEvict() sorts a registry snapshot by it without taking every
  /// run's lock; it is a heuristic, so relaxed reads are fine.
  std::atomic<uint64_t> LastSliceSeq{0};
  /// Completed transitions so far (CK.header().SavedSteps once HasCK).
  uint64_t DoneSteps = 0;
  /// Step count at submit (0, or the resume checkpoint's SavedSteps):
  /// fuel budgets measure steps *since submit*, matching the standalone
  /// rule that a resumed run gets a fresh budget.
  uint64_t BaseSteps = 0;
  /// Wall-clock submit time; per-slice deadlines subtract elapsed time so
  /// a sliced run's total deadline matches an uninterrupted one.
  std::chrono::steady_clock::time_point Start;

  RunResult Result;
  bool HasResult = false;
};

} // namespace detail

class Session;

/// The caller's handle on one submitted run. Copyable; all copies refer to
/// the same run.
class RunHandle {
public:
  RunHandle() = default;

  bool valid() const { return S != nullptr; }
  uint64_t id() const { return S ? S->Id : 0; }

  /// Requests a park at the next governor boundary: the run checkpoints,
  /// leaves the queue, and holds until resume(). No-op on finished runs.
  void pause();

  /// Puts a paused run back on the queue. No-op unless paused.
  void resume();

  /// Finishes the run with Outcome::Cancelled (honored at the next
  /// governor boundary if it is mid-slice). No-op on finished runs.
  void cancel();

  /// True once the run has a final outcome.
  bool done() const;

  /// Blocks until the run finishes and moves the result out. Single-shot:
  /// a second call returns an empty error result.
  RunResult outcome();

private:
  friend class Session;
  RunHandle(Session *Sess, std::shared_ptr<detail::RunState> S)
      : Sess(Sess), S(std::move(S)) {}

  Session *Sess = nullptr;
  std::shared_ptr<detail::RunState> S;
};

/// A fixed worker pool multiplexing monitored runs by time-slicing. See
/// the file comment for the model.
class Session {
public:
  struct Config {
    /// Worker threads. 0 is clamped to 1.
    unsigned Workers = 1;
    /// Scheduler quantum in machine transitions; 0 = run every slice to
    /// completion (no preemptive multiplexing, cancel/pause still work).
    /// Runs on the Direct backend are never sliced — the definitional
    /// interpreter cannot checkpoint.
    uint64_t QuantumSteps = 0;
    /// Admission caps on unfinished runs, total and per tenant; 0 = no
    /// cap. Enforced only for submits that pass an AdmitErr out-param.
    uint64_t MaxLiveRuns = 0;
    uint64_t MaxLivePerTenant = 0;
    /// Memory-pressure eviction: when the summed serialized size of
    /// resident run checkpoints exceeds this, the coldest queued/paused
    /// runs are parked to ParkDir. 0 (or an empty ParkDir) disables
    /// eviction.
    uint64_t MaxResidentBytes = 0;
    /// Directory for park journals (`run-<id>.park`); must exist.
    std::string ParkDir;
  };

  /// One tenant's accounting row, as surfaced by the daemon's `status`.
  struct TenantStats {
    std::string Tenant;  ///< "" is the default tenant.
    uint64_t Queued = 0; ///< Runs waiting for a worker.
    uint64_t Active = 0; ///< Runs executing a slice right now.
    uint64_t Live = 0;   ///< Unfinished runs (queued + active + paused).
    uint64_t UserSteps = 0; ///< Durable transitions credited to the tenant.
    uint64_t Evicted = 0;   ///< Times one of its runs was parked to disk.
    uint64_t Done = 0;      ///< Finished runs.
  };

  Session() : Session(Config{}) {}
  explicit Session(Config Cfg);

  /// Cancels every unfinished run, drains the queue and joins the workers.
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Submits a run under \p Tenant's fair-share queue ("" = the default
  /// tenant). The program, the monitors referenced by the mode's cascade,
  /// and anything the mode's sinks capture must outlive the run (i.e.
  /// until done() or outcome()). Thread-safe.
  ///
  /// When \p AdmitErr is non-null the admission caps are enforced: an
  /// over-cap submit returns an invalid handle with *AdmitErr set.
  /// Passing nullptr bypasses admission (crash recovery must readmit its
  /// own runs unconditionally).
  RunHandle submit(EvalMode Mode, const Expr *Program, RunEvents Ev = {},
                   std::string Tenant = {}, std::string *AdmitErr = nullptr);

  /// Whether a submit for \p Tenant would currently pass admission. A
  /// pre-check for callers that must do work (persist a durable request)
  /// before submitting; exact only while the caller is the sole
  /// submitter.
  bool admissible(const std::string &Tenant, std::string *Why = nullptr) const;

  unsigned workers() const { return NumWorkers; }
  uint64_t quantumSteps() const { return Quantum; }

  /// Runs currently queued, running or paused (not yet Done).
  uint64_t liveRuns() const { return Live.load(std::memory_order_relaxed); }

  /// Runs executing a slice on a worker right now.
  uint64_t activeRuns() const {
    return ActiveSlices.load(std::memory_order_relaxed);
  }

  /// Runs waiting in the scheduler queues for a worker.
  uint64_t queuedRuns() const {
    std::lock_guard<std::mutex> L(QM);
    return QueuedCount;
  }

  /// Cumulative user-program transitions completed across all runs (the
  /// machine's step counter, summed over every slice that made durable
  /// progress — re-executed work after a checkpoint-less preemption is not
  /// double-counted). The daemon's status report derives steps/sec from
  /// this.
  uint64_t totalUserSteps() const {
    return UserSteps.load(std::memory_order_relaxed);
  }

  /// Summed serialized size of in-memory run checkpoints (the eviction
  /// pressure gauge).
  uint64_t residentBytes() const {
    return Resident.load(std::memory_order_relaxed);
  }

  /// Times any run was parked to disk by memory pressure.
  uint64_t evictions() const {
    return Evictions.load(std::memory_order_relaxed);
  }

  /// Per-tenant accounting rows, sorted by tenant id. Tenants persist
  /// after their runs finish so `status` keeps reporting them.
  std::vector<TenantStats> tenantStats() const;

private:
  friend class RunHandle;
  using RunStatePtr = std::shared_ptr<detail::RunState>;

  /// One tenant's scheduler state. Guarded by QM.
  struct TenantState {
    std::deque<RunStatePtr> Q;
    uint64_t Deficit = 0; ///< Unspent dispatch credit, in quantum steps.
    bool InRR = false;    ///< Present in the RR rotation.
    uint64_t LiveRuns = 0;
    uint64_t Active = 0;
    uint64_t Steps = 0;
    uint64_t Evicted = 0;
    uint64_t Done = 0;
  };

  void enqueue(RunStatePtr R);
  void pushLocked(RunStatePtr R);            ///< Caller holds QM.
  RunStatePtr popNextLocked();               ///< Caller holds QM. DRR pick.
  bool admissibleLocked(const std::string &Tenant, std::string *Why) const;
  void workerLoop();
  /// Runs one scheduler quantum of \p R and dispatches on how it stopped.
  void runSlice(RunStatePtr R);
  /// Finalizes \p R with \p Res. Caller holds R.M with Ph != Done.
  void finish(detail::RunState &R, RunResult Res);
  /// Credits \p Delta durable steps to \p R's tenant and refunds unspent
  /// quantum. Caller holds R.M (QM is taken inside; QM is a leaf).
  void creditSteps(detail::RunState &R, uint64_t Delta);
  /// Re-points the resident-bytes gauge at \p R's new checkpoint size.
  /// Caller holds R.M.
  void setResidentLocked(detail::RunState &R, uint64_t Bytes);
  /// Spills R.CK to its park journal and frees it. Caller holds R.M with
  /// HasCK. False (run stays resident) if the spill fails.
  bool parkLocked(detail::RunState &R);
  /// Reloads a parked checkpoint. Caller holds R.M with Parked.
  bool restoreLocked(detail::RunState &R);
  /// Parks coldest runs while resident bytes exceed the cap. Lock-free
  /// entry; takes QM then per-run M.
  void maybeEvict();

  unsigned NumWorkers;
  uint64_t Quantum;
  uint64_t MaxLiveRuns;
  uint64_t MaxLivePerTenant;
  uint64_t MaxResidentBytes;
  std::string ParkDir;
  std::atomic<uint64_t> Live{0};
  std::atomic<uint64_t> NextId{1};
  std::atomic<uint64_t> ActiveSlices{0};
  std::atomic<uint64_t> UserSteps{0};
  std::atomic<uint64_t> Resident{0};
  std::atomic<uint64_t> Evictions{0};
  std::atomic<uint64_t> SliceSeq{0};

  mutable std::mutex QM;
  std::condition_variable QCV;
  /// Fair-share state: per-tenant queues (never erased — stats persist)
  /// and the DRR rotation over tenants with queued runs.
  std::map<std::string, TenantState> Tenants;
  std::vector<std::string> RR;
  size_t RRPos = 0;
  size_t QueuedCount = 0;
  /// Every submitted run (weak, compacted as runs finish); the destructor
  /// uses it to cancel whatever is still live, eviction to find cold runs.
  std::vector<std::weak_ptr<detail::RunState>> AllRuns;
  bool Stopping = false;

  std::vector<std::thread> Workers;
};

} // namespace monsem

#endif // MONSEM_SERVER_SESSION_H
