//===- server/Session.h - Stable embedding API for monitored runs -*- C++ -*-===//
///
/// \file
/// The embedding API `monsem serve` and the CLI are both built on: a
/// `Session` owns a fixed pool of worker threads and multiplexes any number
/// of submitted runs across them by time-slicing.
///
/// Each scheduler quantum is one `evaluate(mode & maxSteps(quantum) &
/// checkpointInto(...))` call; when the quantum expires the run's
/// checkpoint is captured, the run is requeued, and the next worker to
/// pick it up resumes with `resumeFrom` — possibly a different thread than
/// the one that started it. Because checkpoints record exact transition
/// boundaries (support/Checkpoint.h) and resumed runs re-execute from
/// SavedSteps+1, a sliced run's answer, cumulative step count and probe
/// event stream are byte-identical to an uninterrupted run.
///
/// A `RunHandle` is the caller's view of one submitted run:
///
///   Session S({.Workers = 4, .QuantumSteps = 1 << 16});
///   RunHandle H = S.submit(profiler & maxSteps(1'000'000), P.root());
///   RunResult R = H.outcome();   // blocks until the run finishes
///
/// pause()/resume() park a run at the next governor boundary (checkpointed,
/// off the queue) and put it back; cancel() finishes it with
/// Outcome::Cancelled. Preemption rides the governor's one-compare hot
/// loop via ResourceLimits::PreemptFlag, so an idle flag costs nothing.
///
/// With `Workers = 1, QuantumSteps = 0` a Session degenerates to a plain
/// synchronous `evaluate()` — that configuration is exactly what the CLI
/// uses, so the flag surface and the server cannot skew.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SERVER_SESSION_H
#define MONSEM_SERVER_SESSION_H

#include "interp/Eval.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace monsem {

/// Observer callbacks for one run. All of them fire on worker threads; the
/// embedder is responsible for its own synchronization (the server routes
/// them through a mutex-guarded JSONL writer).
struct RunEvents {
  /// Every probe event, as (cumulative step, canonical journal text) — the
  /// same text JournalingHooks writes, so streamed and journaled event
  /// sequences are byte-identical.
  std::function<void(uint64_t Step, const std::string &Text)> OnProbe;
  /// A checkpoint was captured at a park/requeue boundary; \p Steps is the
  /// checkpoint's SavedSteps (completed transitions).
  std::function<void(uint64_t Steps)> OnCheckpoint;
  /// The run reached a final outcome. Fires exactly once, before outcome()
  /// unblocks; the result reference is valid for the duration of the call.
  std::function<void(const RunResult &R)> OnFinish;
};

namespace detail {

/// Shared state of one submitted run. Lifecycle:
///
///   Queued -> Running -> { Queued (quantum expired, requeued)
///                        | Paused (pause() honored at a boundary)
///                        | Done   (final outcome) }
///
/// Guarded by M except SliceStop, which the governor polls lock-free.
struct RunState {
  enum class Phase : uint8_t { Queued, Running, Paused, Done };

  uint64_t Id = 0;
  EvalMode Mode;              ///< As submitted (user limits, sinks, cascade).
  const Expr *Program = nullptr;
  RunEvents Ev;

  std::mutex M;
  std::condition_variable CV; ///< Signaled on Done.
  Phase Ph = Phase::Queued;
  bool CancelRequested = false;
  bool PauseRequested = false;
  /// Scheduler preemption flag, wired as ResourceLimits::PreemptFlag for
  /// the duration of each slice.
  std::atomic<bool> SliceStop{false};

  /// Latest checkpoint (requeue/park resume point). Valid iff HasCK.
  Checkpoint CK;
  bool HasCK = false;
  /// Completed transitions so far (CK.header().SavedSteps once HasCK).
  uint64_t DoneSteps = 0;
  /// Step count at submit (0, or the resume checkpoint's SavedSteps):
  /// fuel budgets measure steps *since submit*, matching the standalone
  /// rule that a resumed run gets a fresh budget.
  uint64_t BaseSteps = 0;
  /// Wall-clock submit time; per-slice deadlines subtract elapsed time so
  /// a sliced run's total deadline matches an uninterrupted one.
  std::chrono::steady_clock::time_point Start;

  RunResult Result;
  bool HasResult = false;
};

} // namespace detail

class Session;

/// The caller's handle on one submitted run. Copyable; all copies refer to
/// the same run.
class RunHandle {
public:
  RunHandle() = default;

  bool valid() const { return S != nullptr; }
  uint64_t id() const { return S ? S->Id : 0; }

  /// Requests a park at the next governor boundary: the run checkpoints,
  /// leaves the queue, and holds until resume(). No-op on finished runs.
  void pause();

  /// Puts a paused run back on the queue. No-op unless paused.
  void resume();

  /// Finishes the run with Outcome::Cancelled (honored at the next
  /// governor boundary if it is mid-slice). No-op on finished runs.
  void cancel();

  /// True once the run has a final outcome.
  bool done() const;

  /// Blocks until the run finishes and moves the result out. Single-shot:
  /// a second call returns an empty error result.
  RunResult outcome();

private:
  friend class Session;
  RunHandle(Session *Sess, std::shared_ptr<detail::RunState> S)
      : Sess(Sess), S(std::move(S)) {}

  Session *Sess = nullptr;
  std::shared_ptr<detail::RunState> S;
};

/// A fixed worker pool multiplexing monitored runs by time-slicing. See
/// the file comment for the model.
class Session {
public:
  struct Config {
    /// Worker threads. 0 is clamped to 1.
    unsigned Workers = 1;
    /// Scheduler quantum in machine transitions; 0 = run every slice to
    /// completion (no preemptive multiplexing, cancel/pause still work).
    /// Runs on the Direct backend are never sliced — the definitional
    /// interpreter cannot checkpoint.
    uint64_t QuantumSteps = 0;
  };

  Session() : Session(Config{}) {}
  explicit Session(Config Cfg);

  /// Cancels every unfinished run, drains the queue and joins the workers.
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  /// Submits a run. The program, the monitors referenced by the mode's
  /// cascade, and anything the mode's sinks capture must outlive the run
  /// (i.e. until done() or outcome()). Thread-safe.
  RunHandle submit(EvalMode Mode, const Expr *Program, RunEvents Ev = {});

  unsigned workers() const { return NumWorkers; }
  uint64_t quantumSteps() const { return Quantum; }

  /// Runs currently queued, running or paused (not yet Done).
  uint64_t liveRuns() const { return Live.load(std::memory_order_relaxed); }

  /// Runs executing a slice on a worker right now.
  uint64_t activeRuns() const {
    return ActiveSlices.load(std::memory_order_relaxed);
  }

  /// Runs waiting in the scheduler queue for a worker.
  uint64_t queuedRuns() const {
    std::lock_guard<std::mutex> L(QM);
    return Queue.size();
  }

  /// Cumulative user-program transitions completed across all runs (the
  /// machine's step counter, summed over every slice that made durable
  /// progress — re-executed work after a checkpoint-less preemption is not
  /// double-counted). The daemon's status report derives steps/sec from
  /// this.
  uint64_t totalUserSteps() const {
    return UserSteps.load(std::memory_order_relaxed);
  }

private:
  friend class RunHandle;
  using RunStatePtr = std::shared_ptr<detail::RunState>;

  void enqueue(RunStatePtr R);
  void workerLoop();
  /// Runs one scheduler quantum of \p R and dispatches on how it stopped.
  void runSlice(RunStatePtr R);
  /// Finalizes \p R with \p Res. Caller holds R.M with Ph != Done.
  void finish(detail::RunState &R, RunResult Res);

  unsigned NumWorkers;
  uint64_t Quantum;
  std::atomic<uint64_t> Live{0};
  std::atomic<uint64_t> NextId{1};
  std::atomic<uint64_t> ActiveSlices{0};
  std::atomic<uint64_t> UserSteps{0};

  mutable std::mutex QM;
  std::condition_variable QCV;
  std::deque<RunStatePtr> Queue;
  /// Every submitted run (weak, compacted as runs finish); the destructor
  /// uses it to cancel whatever is still live.
  std::vector<std::weak_ptr<detail::RunState>> AllRuns;
  bool Stopping = false;

  std::vector<std::thread> Workers;
};

} // namespace monsem

#endif // MONSEM_SERVER_SESSION_H
