//===- compile/AotEmit.h - AOT-to-C native tier over RegProgram -*- C++ -*-===//
///
/// \file
/// The third level of specialization: the register tier's three-address
/// blocks, translated to C functions over the *same* register-window frame
/// layout, compiled by the system C compiler into a shared object, and
/// executed by the trampoline driver in AotRun.cpp (`--backend=vm-aot`).
///
/// Only leaf blocks are emitted (no MkClosure, no PushRecEnv, no probes —
/// the blocks that already run without an environment allocation per
/// call). Non-leaf blocks, every MonPre/MonPost probe window, and any
/// governor pause execute in the shared register interpreter at the same
/// (block, pc) coordinates, so probe event streams, step counts,
/// ResourceLimits outcomes, and checkpoint coordinates are byte-identical
/// to `vm-reg`, and checkpoints stay tier-portable in both directions.
///
/// Shared objects are cached on disk keyed by the program fingerprint
/// (the same stack-disassembly hash checkpoints use), the emitter version,
/// the compiler identification line, and the Value representation; a
/// per-process registry memoizes loaded libraries so repeated runs of the
/// same program dlopen once. When no C compiler is available (or the
/// build uses the boxed Value representation), `aotLoad` reports why and
/// the caller falls back to `vm-reg`.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_COMPILE_AOTEMIT_H
#define MONSEM_COMPILE_AOTEMIT_H

#include "compile/VM.h"

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace monsem {

/// The C ABI boundary between the trampoline driver and emitted code. One
/// instance lives on the driver's stack per run; the emitted functions
/// read machine state from it, run as far as they safely can, sync state
/// back, and return an AotStatus. Helper callbacks re-enter the C++ VM
/// for everything that allocates frames, builds error messages, or takes
/// the slow primitive paths — each helper leaves the VM in exactly the
/// state the interpreter would after the same instruction.
///
/// The struct is mirrored textually in the emitted C; AotRun.cpp
/// static_asserts the layout it depends on.
struct AotCtx {
  uint64_t *Regs;        ///< Register file (tagged Value words).
  uint64_t Base;         ///< Current window base index.
  uint64_t Steps;        ///< Source-machine step counter.
  uint64_t NextPause;    ///< Governor's next pause step (pure snapshot).
  uint64_t Env;          ///< Current EnvNode* (leaf: the closure's chain).
  uint32_t Block;        ///< Sync slot: current block.
  uint32_t PC;           ///< Sync slot: current pc (post-fetch convention).
  const uint64_t *Consts; ///< Constant pool (tagged Value words).
  void *VM;              ///< The driving AotVM instance.
  int (*Apply)(AotCtx *, uint64_t Fn, uint64_t Arg, int Tail, uint32_t Dst);
  int (*Prim1)(AotCtx *, uint32_t Op, uint64_t V, uint32_t Dst);
  int (*Prim2)(AotCtx *, uint32_t Op, uint64_t L, uint64_t R, uint32_t Dst);
  /// Fused compare-and-branch slow path; *Taken reports the branch.
  int (*Prim2Branch)(AotCtx *, uint32_t Op, uint64_t L, uint64_t R,
                     int *Taken);
  uint64_t (*BoxInt)(AotCtx *, int64_t V); ///< mkInt outside inline range.
  int (*DoRet)(AotCtx *, uint64_t V);      ///< Pop frame, deliver result.
  void (*FailUninit)(AotCtx *, uint64_t EnvNodePtr); ///< letrec-before-init.
  void (*FailNonBool)(AotCtx *, uint64_t V); ///< Conditional scrutinee.
};

/// Status codes returned by emitted block functions (mirrored in the C).
enum : uint64_t {
  kAotTransfer = 0, ///< Control moved (call/ret); state synced in ctx.
  kAotYield = 1,    ///< Governor pause near; interpret from (Block, PC).
  kAotFail = 2,     ///< A helper recorded a failure; unwind to errorResult.
  kAotBail = 3,     ///< Entry pc not compiled; interpret (defensive).
};

using AotBlockFn = uint64_t (*)(AotCtx *);

/// A loaded native library for one RegProgram: per-block function pointers
/// (null where the block is interpreted), the per-block conservative cost
/// bound the trampoline checks against the governor, and the enterable-pc
/// bitmap (pc 0 plus every call-return pc).
class AotLibrary {
public:
  ~AotLibrary();

  const std::vector<AotBlockFn> &fns() const { return Fns; }
  const std::vector<uint64_t> &blockCost() const { return BlockCost; }
  bool enterable(uint32_t Block, uint32_t PC) const {
    const std::vector<uint8_t> &E = Enterable[Block];
    return PC < E.size() && E[PC];
  }
  const std::string &source() const { return Source; }
  const std::string &path() const { return SoPath; }

private:
  friend std::shared_ptr<const AotLibrary>
  aotLoad(const RegProgram &RP, const std::string &CacheDir,
          std::string *WhyNot);
  void *Handle = nullptr;
  std::vector<AotBlockFn> Fns;
  std::vector<uint64_t> BlockCost;
  std::vector<std::vector<uint8_t>> Enterable;
  std::string Source;
  std::string SoPath;
};

/// True when the native tier can work in this process: tagged Value build
/// and a working C compiler (`MONSEM_AOT_CC`, else `cc` on PATH). The
/// compiler probe runs once and is cached.
bool aotAvailable();

/// The compiler identification line used in cache keys ("" when
/// unavailable).
const std::string &aotCompilerId();

/// Emits the C translation unit for \p RP (also shown by the CLI's
/// `--disasm` under `--backend=vm-aot`).
std::string aotEmitSource(const RegProgram &RP);

/// Emits, compiles (or reuses the fingerprint-keyed cached shared object
/// under \p CacheDir — defaulting to a per-user directory under TMPDIR),
/// loads, and resolves the native library for \p RP. Returns null with a
/// one-line reason in \p WhyNot when the native tier cannot be used; the
/// caller falls back to the register interpreter.
std::shared_ptr<const AotLibrary> aotLoad(const RegProgram &RP,
                                          const std::string &CacheDir,
                                          std::string *WhyNot);

/// Executes \p RP with native leaf blocks from \p Lib, interpreting
/// everything else — the `vm-aot` driver (AotRun.cpp).
RunResult runAotProgram(const RegProgram &RP, const AotLibrary &Lib,
                        MonitorHooks *Hooks, RunOptions Opts);

} // namespace monsem

#endif // MONSEM_COMPILE_AOTEMIT_H
