//===- compile/RegLower.cpp - Stack bytecode -> register tier -------------===//
///
/// \file
/// The block-local register allocator. Each stack slot becomes a fixed
/// virtual register: at every pc the static stack height `h` is known
/// (control flow inside a block is forward-only — loops exist only via
/// calls), so the slot pushed at height h always lives in register
/// TempBase + h of the current frame window. Lowering is 1:1 — one RInstr
/// per Instr at the same pc with the same Cost — which keeps step counts,
/// probe positions, and checkpoint (block, pc) coordinates identical to
/// the stack tier.
///
/// Leaf blocks (no MkClosure, no PushRecEnv, no probes; never the entry)
/// additionally keep their parameter in register 0 instead of an
/// environment node, eliding the per-call arena allocation that dominates
/// call-heavy workloads. Variable references in leaf blocks are rewritten:
/// depth 0 becomes the kParamReg register reference, depth d >= 1 becomes
/// environment depth d-1 against the closure's captured environment.
///
//===----------------------------------------------------------------------===//

#include "compile/Compiler.h"
#include "semantics/Primitives.h"

#include <cstdlib>

using namespace monsem;

namespace {

/// Static per-op stack effect of the *stack* encoding: values popped and
/// pushed by the instruction, used to propagate entry heights forward.
/// Terminal instructions (Ret/TailCall/VarTailCall/Halt) have no
/// fall-through successor and are handled separately.
struct StackEffect {
  unsigned Pops;
  unsigned Pushes;
};

StackEffect effectOf(const Instr &I) {
  static_assert(kNumOps == 24, "new opcode: update effectOf()");
  switch (I.Code) {
  case Op::Const:
  case Op::Var:
  case Op::MkClosure:
    return {0, 1};
  case Op::Jump:
  case Op::PushRecEnv:
  case Op::PopEnv:
  case Op::MonPre:
  case Op::MonPost:
    return {0, 0};
  case Op::JumpIfFalse:
  case Op::PatchRec:
    return {1, 0};
  case Op::Call:
    return {2, 1}; // Result materializes where the arg was.
  case Op::TailCall:
    return {2, 0};
  case Op::Ret:
  case Op::Halt:
    return {1, 0};
  case Op::Prim1:
    return {1, 1};
  case Op::Prim2:
    return {2, 1};
  case Op::VarVar:
    return {0, 2};
  case Op::VarPrim2:
  case Op::ConstPrim2:
    return {1, 1};
  case Op::VarConstPrim2:
  case Op::VarVarPrim2:
    return {0, 1};
  case Op::Prim2JumpIfFalse:
    return {2, 0};
  case Op::VarCall:
    return {1, 1};
  case Op::VarTailCall:
    return {1, 0};
  }
  std::abort();
}

bool isTerminal(Op O) {
  return O == Op::Ret || O == Op::Halt || O == Op::TailCall ||
         O == Op::VarTailCall;
}

/// Entry stack height at every pc of \p B, or empty on an inconsistency
/// (which the compiler never produces). Forward-only control flow makes a
/// single left-to-right pass sufficient: every jump target is greater than
/// the jump's pc. Unreachable pcs keep kDeadHeight.
///
/// \p IsEntry: the entry block's final Halt is reachable through the
/// sentinel frame (a top-level tail call returns straight to it) even when
/// no fall-through path reaches it, always with exactly the answer on the
/// stack — seed it at height 1 so the Halt reads the sentinel frame's
/// return destination register.
std::vector<uint16_t> computeHeights(const CodeBlock &B, bool IsEntry) {
  std::vector<uint16_t> H(B.Code.size(), kDeadHeight);
  if (B.Code.empty())
    return {};
  H[0] = 0;
  if (IsEntry)
    H[B.Code.size() - 1] = 1;
  auto Merge = [&](size_t Pc, unsigned Height) {
    if (Pc >= B.Code.size() || Height > 0x7FFF)
      return false;
    if (H[Pc] == kDeadHeight) {
      H[Pc] = static_cast<uint16_t>(Height);
      return true;
    }
    return H[Pc] == Height;
  };
  for (size_t Pc = 0; Pc < B.Code.size(); ++Pc) {
    if (H[Pc] == kDeadHeight)
      continue; // Dead code (e.g. the if-join jump after a taken tail call).
    const Instr &I = B.Code[Pc];
    StackEffect E = effectOf(I);
    if (H[Pc] < E.Pops)
      return {};
    unsigned Exit = H[Pc] - E.Pops + E.Pushes;
    bool IsJump = I.Code == Op::Jump || I.Code == Op::JumpIfFalse ||
                  I.Code == Op::Prim2JumpIfFalse;
    if (IsJump) {
      if (I.A <= Pc || !Merge(I.A, Exit)) // Forward-only, consistent.
        return {};
    }
    if (!isTerminal(I.Code) && I.Code != Op::Jump)
      if (!Merge(Pc + 1, Exit))
        return {};
  }
  return H;
}

/// True when \p B can run without a per-call environment node: nothing in
/// it captures or extends the environment, and no probe needs to observe
/// it. The entry block (index 0) is excluded — its frame is the program
/// root and the Halt convention reads the answer from register 0.
bool isLeafBlock(const CodeBlock &B) {
  for (const Instr &I : B.Code)
    switch (I.Code) {
    case Op::MkClosure:
    case Op::PushRecEnv:
    case Op::MonPre:
    case Op::MonPost:
      return false;
    default:
      break;
    }
  return true;
}

class Lowerer {
public:
  explicit Lowerer(const CompiledProgram &P) : P(P) {}

  std::unique_ptr<RegProgram> run() {
    auto RP = std::make_unique<RegProgram>();
    RP->Src = &P;
    RP->Blocks.resize(P.Blocks.size());
    for (size_t B = 0; B < P.Blocks.size(); ++B) {
      if (!lowerBlock(P.Blocks[B], B == 0,
                      B != 0 && isLeafBlock(P.Blocks[B]), RP->Blocks[B]))
        return nullptr;
      markCurrier(P.Blocks[B], B == 0, RP->Blocks[B]);
    }
    return RP;
  }

private:
  const CompiledProgram &P;

  /// Detects the curried-parameter shape (`MkClosure k; Ret`) so the
  /// register VM's apply path can collapse the call. Entry blocks are
  /// excluded (their Halt convention differs); the lowered body stays
  /// intact for checkpoint resume into the block.
  static void markCurrier(const CodeBlock &B, bool IsEntry, RegBlock &Out) {
    if (IsEntry || B.Code.size() != 2 || B.Code[0].Code != Op::MkClosure ||
        B.Code[1].Code != Op::Ret)
      return;
    unsigned Cost = unsigned(B.Code[0].Cost) + unsigned(B.Code[1].Cost);
    if (Cost > 0xFF)
      return;
    Out.Currier = true;
    Out.CurrierInner = B.Code[0].A;
    Out.CurrierCost = static_cast<uint8_t>(Cost);
  }

  /// Rewrites a stack-encoding environment depth for the current block.
  /// Returns false when the depth exceeds the u16 operand encoding.
  bool refOf(uint32_t Depth, bool Leaf, uint16_t &Out) {
    if (Leaf) {
      if (Depth == 0) {
        Out = kParamReg;
        return true;
      }
      --Depth; // The closure's env is the leaf frame's outer chain.
    }
    if (Depth >= kParamReg)
      return false;
    Out = static_cast<uint16_t>(Depth);
    return true;
  }

  bool lowerBlock(const CodeBlock &B, bool IsEntry, bool Leaf,
                  RegBlock &Out) {
    Out.Leaf = Leaf;
    Out.TempBase = Leaf ? 1 : 0;
    Out.Param = B.Param;
    Out.Name = B.Name;
    Out.Height = computeHeights(B, IsEntry);
    if (Out.Height.size() != B.Code.size())
      return false;
    Out.Code.reserve(B.Code.size());
    const uint32_t TB = Out.TempBase;
    uint32_t MaxReg = TB; // Highest register index written, exclusive.
    bool AnyDead = false;
    for (size_t Pc = 0; Pc < B.Code.size(); ++Pc) {
      const Instr &I = B.Code[Pc];
      // Dead instructions never execute; lower them against a clamped
      // height so their register operands stay in-bounds.
      unsigned H = Out.Height[Pc];
      if (H == kDeadHeight) {
        AnyDead = true;
        H = 2;
      }
      auto Reg = [&](unsigned Slot) { return static_cast<uint16_t>(TB + Slot); };
      RInstr R;
      R.Code = static_cast<ROp>(I.Code);
      R.Cost = I.Cost;
      static_assert(kNumOps == 24, "new opcode: update lowerBlock()");
      switch (I.Code) {
      case Op::Const:
        R.A = I.A;
        R.D = Reg(H);
        break;
      case Op::Var:
        if (!refOf(I.A, Leaf, R.S1))
          return false;
        R.D = Reg(H);
        break;
      case Op::MkClosure: // Leaf blocks contain none by construction.
        R.A = I.A;
        R.D = Reg(H);
        break;
      case Op::Jump:
        R.A = I.A;
        break;
      case Op::JumpIfFalse:
        R.A = I.A;
        R.S1 = Reg(H - 1);
        break;
      case Op::Call:
        R.S1 = Reg(H - 1); // fn (top)
        R.S2 = Reg(H - 2); // arg
        R.D = Reg(H - 2);  // result replaces the pair
        break;
      case Op::TailCall:
        R.S1 = Reg(H - 1);
        R.S2 = Reg(H - 2);
        break;
      case Op::Ret:
      case Op::Halt:
        R.S1 = Reg(H - 1);
        break;
      case Op::Prim1:
        R.A = I.A;
        R.S1 = R.D = Reg(H - 1);
        break;
      case Op::Prim2:
        R.A = I.A;
        R.S1 = Reg(H - 2);
        R.S2 = Reg(H - 1);
        R.D = Reg(H - 2);
        break;
      case Op::PushRecEnv: // Leaf blocks contain none by construction.
      case Op::PopEnv:
      case Op::MonPre:
        R.A = I.A;
        break;
      case Op::PatchRec:
        R.S1 = Reg(H - 1);
        break;
      case Op::MonPost:
        R.A = I.A;
        R.S1 = Reg(H - 1);
        break;
      case Op::VarVar:
        if (!refOf(I.A, Leaf, R.S1) || !refOf(I.B, Leaf, R.S2))
          return false;
        R.D = Reg(H);
        break;
      case Op::VarPrim2:
        if (!refOf(I.A, Leaf, R.S2))
          return false;
        R.B = I.B;
        R.S1 = R.D = Reg(H - 1);
        break;
      case Op::ConstPrim2:
        R.A = I.A;
        R.B = I.B;
        R.S1 = R.D = Reg(H - 1);
        break;
      case Op::VarConstPrim2:
        if (!refOf(unpackDepth(I.B), Leaf, R.S1))
          return false;
        R.A = I.A;
        R.B = I.B;
        R.D = Reg(H);
        break;
      case Op::VarVarPrim2:
        if (!refOf(unpackDepth(I.B), Leaf, R.S1) ||
            !refOf(I.A, Leaf, R.S2))
          return false;
        R.B = I.B;
        R.D = Reg(H);
        break;
      case Op::Prim2JumpIfFalse:
        R.A = I.A;
        R.B = I.B;
        R.S1 = Reg(H - 2);
        R.S2 = Reg(H - 1);
        break;
      case Op::VarCall:
        if (!refOf(I.A, Leaf, R.S2))
          return false;
        R.S1 = R.D = Reg(H - 1); // arg in, result out
        break;
      case Op::VarTailCall:
        if (!refOf(I.A, Leaf, R.S2))
          return false;
        R.S1 = Reg(H - 1);
        break;
      }
      StackEffect E = effectOf(I);
      uint32_t Peak = TB + H - E.Pops + E.Pushes;
      if (I.Code == Op::VarVar)
        Peak = TB + H + 2; // Writes D and D+1.
      if (Peak > MaxReg)
        MaxReg = Peak;
      if (Peak > 0x7FFF)
        return false;
      Out.Code.push_back(R);
    }
    // Dead instructions were lowered at clamped height 2; keep their
    // (never-read) registers inside the window.
    if (AnyDead && MaxReg < TB + 4)
      MaxReg = TB + 4;
    Out.NumRegs = MaxReg;
    // Every window needs at least the parameter/result slot.
    if (Out.NumRegs < TB + 1)
      Out.NumRegs = TB + 1;
    return true;
  }
};

} // namespace

std::unique_ptr<RegProgram> monsem::lowerToRegisters(const CompiledProgram &P) {
  return Lowerer(P).run();
}

std::string RegProgram::disassemble() const {
  static_assert(kNumROps == 24,
                "new register opcode: update RegProgram::disassemble()");
  auto OpName = [](ROp O) -> const char * {
    switch (O) {
    case ROp::Const:
      return "rconst";
    case ROp::Var:
      return "rvar";
    case ROp::MkClosure:
      return "rclosure";
    case ROp::Jump:
      return "rjump";
    case ROp::JumpIfFalse:
      return "rjfalse";
    case ROp::Call:
      return "rcall";
    case ROp::TailCall:
      return "rtailcall";
    case ROp::Ret:
      return "rret";
    case ROp::Prim1:
      return "rprim1";
    case ROp::Prim2:
      return "rprim2";
    case ROp::PushRecEnv:
      return "rpushrec";
    case ROp::PatchRec:
      return "rpatchrec";
    case ROp::PopEnv:
      return "rpopenv";
    case ROp::MonPre:
      return "rmonpre";
    case ROp::MonPost:
      return "rmonpost";
    case ROp::Halt:
      return "rhalt";
    case ROp::VarVar:
      return "rvarvar";
    case ROp::VarPrim2:
      return "rvarprim2";
    case ROp::ConstPrim2:
      return "rconstprim2";
    case ROp::VarConstPrim2:
      return "rvarconstprim2";
    case ROp::VarVarPrim2:
      return "rvarvarprim2";
    case ROp::Prim2JumpIfFalse:
      return "rprim2jfalse";
    case ROp::VarCall:
      return "rvarcall";
    case ROp::VarTailCall:
      return "rvartailcall";
    }
    std::abort();
  };
  auto R = [](uint16_t Idx) { return "r" + std::to_string(Idx); };
  // A varref operand: the leaf parameter register or an env depth.
  auto V = [](uint16_t Ref) {
    return Ref == kParamReg ? std::string("param")
                            : "env[" + std::to_string(Ref) + "]";
  };
  auto P2 = [](uint16_t B) {
    return std::string(prim2Name(static_cast<Prim2Op>(unpackPrimOp(B))));
  };
  std::string Out;
  for (size_t B = 0; B < Blocks.size(); ++B) {
    const RegBlock &RB = Blocks[B];
    Out += "block " + std::to_string(B) + " (" + RB.Name + ")";
    Out += RB.Leaf ? " leaf" : "";
    Out += " regs=" + std::to_string(RB.NumRegs) + ":\n";
    for (size_t I = 0; I < RB.Code.size(); ++I) {
      const RInstr &In = RB.Code[I];
      Out += "  " + std::to_string(I) + ": " + OpName(In.Code);
      switch (In.Code) {
      case ROp::Const:
        Out += " " + R(In.D) + " = " + toDisplayString(Src->ConstPool[In.A]);
        break;
      case ROp::Var:
        Out += " " + R(In.D) + " = " + V(In.S1);
        break;
      case ROp::MkClosure:
        Out += " " + R(In.D) + " = block " + std::to_string(In.A);
        break;
      case ROp::Jump:
        Out += " " + std::to_string(In.A);
        break;
      case ROp::JumpIfFalse:
        Out += " " + R(In.S1) + " -> " + std::to_string(In.A);
        break;
      case ROp::Call:
        Out += " " + R(In.D) + " = " + R(In.S1) + "(" + R(In.S2) + ")";
        break;
      case ROp::TailCall:
        Out += " " + R(In.S1) + "(" + R(In.S2) + ")";
        break;
      case ROp::Ret:
      case ROp::Halt:
        Out += " " + R(In.S1);
        break;
      case ROp::Prim1:
        Out += " " + R(In.D) + " = " +
               prim1Name(static_cast<Prim1Op>(In.A)) + " " + R(In.S1);
        break;
      case ROp::Prim2:
        Out += " " + R(In.D) + " = " + R(In.S1) + " " +
               prim2Name(static_cast<Prim2Op>(In.A)) + " " + R(In.S2);
        break;
      case ROp::PushRecEnv:
      case ROp::PopEnv:
        Out += " " + std::to_string(In.A);
        break;
      case ROp::PatchRec:
        Out += " " + R(In.S1);
        break;
      case ROp::MonPre:
        Out += " " + Src->Probes[In.A].Ann->text();
        break;
      case ROp::MonPost:
        Out += " " + Src->Probes[In.A].Ann->text() + " " + R(In.S1);
        break;
      case ROp::VarVar:
        Out += " " + R(In.D) + " = " + V(In.S1) + ", r" +
               std::to_string(In.D + 1) + " = " + V(In.S2);
        break;
      case ROp::VarPrim2:
        Out += " " + R(In.D) + " = " + R(In.S1) + " " + P2(In.B) + " " +
               V(In.S2);
        break;
      case ROp::ConstPrim2:
        Out += " " + R(In.D) + " = " + R(In.S1) + " " + P2(In.B) + " " +
               toDisplayString(Src->ConstPool[In.A]);
        break;
      case ROp::VarConstPrim2:
        Out += " " + R(In.D) + " = " + V(In.S1) + " " + P2(In.B) + " " +
               toDisplayString(Src->ConstPool[In.A]);
        break;
      case ROp::VarVarPrim2:
        Out += " " + R(In.D) + " = " + V(In.S1) + " " + P2(In.B) + " " +
               V(In.S2);
        break;
      case ROp::Prim2JumpIfFalse:
        Out += " " + R(In.S1) + " " + P2(In.B) + " " + R(In.S2) + " -> " +
               std::to_string(In.A);
        break;
      case ROp::VarCall:
        Out += " " + R(In.D) + " = " + V(In.S2) + "(" + R(In.S1) + ")";
        break;
      case ROp::VarTailCall:
        Out += " " + V(In.S2) + "(" + R(In.S1) + ")";
        break;
      }
      Out += '\n';
    }
  }
  return Out;
}
