//===- compile/Compiler.cpp ------------------------------------------------===//

#include "compile/Compiler.h"

#include "analysis/Resolver.h"
#include "semantics/Primitives.h"
#include "syntax/Parser.h"

#include <cstdlib>
#include <optional>
#include <vector>

using namespace monsem;

namespace {

class Compiler {
public:
  Compiler(DiagnosticSink &Diags, CompileOptions Opts)
      : Diags(Diags), Opts(Opts), Prog(std::make_unique<CompiledProgram>()) {
    Prog->Instrumented = Opts.Instrument;
  }

  std::unique_ptr<CompiledProgram> run(const Expr *Program) {
    // Reuse the resolver's binder numbering: its BinderDepth is exactly
    // the VM's env-link distance (the compiler and the VM both push one
    // env node per lambda parameter and per letrec binder, the latter in
    // scope for bound expression and body alike). On shared-node programs
    // the resolver refuses and the legacy scope scan below is used.
    Res = resolveProgramCached(Program);
    Resolved = Res->ok();
    Prog->Blocks.emplace_back();
    Prog->Blocks[0].Name = "<main>";
    compileInto(0, Program);
    if (Failed)
      return nullptr;
    emit(0, Op::Halt);
    if (Opts.Fuse)
      fuseSuperinstructions(*Prog);
    markReusableFrames(*Prog);
    return std::move(Prog);
  }

private:
  DiagnosticSink &Diags;
  CompileOptions Opts;
  std::unique_ptr<CompiledProgram> Prog;
  std::shared_ptr<const Resolution> Res;
  bool Resolved = false;
  std::vector<Symbol> Scope; ///< Legacy compile-time environment shape.
  bool Failed = false;

  void emit(uint32_t Block, Op Code, uint32_t A = 0) {
    Instr I;
    I.Code = Code;
    I.A = A;
    Prog->Blocks[Block].Code.push_back(I);
  }
  size_t here(uint32_t Block) const {
    return Prog->Blocks[Block].Code.size();
  }
  void patch(uint32_t Block, size_t At, uint32_t Target) {
    Prog->Blocks[Block].Code[At].A = Target;
  }

  uint32_t addConst(Value V) {
    Prog->ConstPool.push_back(V);
    return static_cast<uint32_t>(Prog->ConstPool.size() - 1);
  }
  uint32_t addName(Symbol S) {
    Prog->Names.push_back(S);
    return static_cast<uint32_t>(Prog->Names.size() - 1);
  }
  uint32_t addProbe(const Annotation *Ann, const Expr *Inner) {
    Prog->Probes.push_back(ProbeSite{Ann, Inner});
    return static_cast<uint32_t>(Prog->Probes.size() - 1);
  }

  std::optional<uint32_t> depthOf(Symbol Name) const {
    for (size_t I = Scope.size(); I-- > 0;)
      if (Scope[I] == Name)
        return static_cast<uint32_t>(Scope.size() - 1 - I);
    return std::nullopt;
  }

  void compileInto(uint32_t Block, const Expr *Top) {
    compileExpr(Block, Top, /*Tail=*/true);
  }

  /// Compiles \p E into \p Block; when \p Tail, the expression's value is
  /// the block's result (calls become TailCall; the caller then emits
  /// Ret/Halt after the block body).
  void compileExpr(uint32_t Block, const Expr *E, bool Tail) {
    if (Failed)
      return;
    switch (E->kind()) {
    case ExprKind::Const: {
      const ConstVal &C = cast<ConstExpr>(E)->Val;
      Value V;
      switch (C.K) {
      case ConstVal::Kind::Int:
        V = Value::mkInt(C.Int, Prog->ConstArena);
        break;
      case ConstVal::Kind::Bool:
        V = Value::mkBool(C.Bool);
        break;
      case ConstVal::Kind::Str:
        V = Value::mkStr(C.Str);
        break;
      case ConstVal::Kind::Nil:
        V = Value::mkNil();
        break;
      }
      emit(Block, Op::Const, addConst(V));
      return;
    }
    case ExprKind::Var: {
      const auto *V = cast<VarExpr>(E);
      Symbol Name = V->Name;
      if (Resolved) {
        switch (V->Addr) {
        case VarExpr::AddrKind::Local:
          emit(Block, Op::Var, V->BinderDepth);
          return;
        case VarExpr::AddrKind::Global:
          // The resolver's global slot indexes primBindings directly.
          emit(Block, Op::Const,
               addConst(primBindings()[V->SlotIndex].Val));
          return;
        case VarExpr::AddrKind::Unbound:
        case VarExpr::AddrKind::Unresolved:
          Diags.error(E->loc(), "unbound variable '" +
                                    std::string(Name.str()) + "'");
          Failed = true;
          return;
        }
        return;
      }
      if (auto Depth = depthOf(Name)) {
        emit(Block, Op::Var, *Depth);
        return;
      }
      // Free variables denote primitives (the initial environment) or are
      // compile-time errors — the environment shape is fully static.
      if (auto P1 = lookupPrim1(Name)) {
        emit(Block, Op::Const, addConst(Value::mkPrim1(*P1)));
        return;
      }
      if (auto P2 = lookupPrim2(Name)) {
        emit(Block, Op::Const, addConst(Value::mkPrim2(*P2)));
        return;
      }
      Diags.error(E->loc(), "unbound variable '" + std::string(Name.str()) +
                                "'");
      Failed = true;
      return;
    }
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      uint32_t Sub = static_cast<uint32_t>(Prog->Blocks.size());
      Prog->Blocks.emplace_back();
      Prog->Blocks[Sub].Param = L->Param;
      Prog->Blocks[Sub].Name = "lambda " + std::string(L->Param.str());
      Scope.push_back(L->Param);
      compileExpr(Sub, L->Body, /*Tail=*/true);
      Scope.pop_back();
      emit(Sub, Op::Ret);
      emit(Block, Op::MkClosure, Sub);
      return;
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      compileExpr(Block, I->Cond, /*Tail=*/false);
      size_t JF = here(Block);
      emit(Block, Op::JumpIfFalse);
      compileExpr(Block, I->Then, Tail);
      size_t J = here(Block);
      emit(Block, Op::Jump);
      patch(Block, JF, static_cast<uint32_t>(here(Block)));
      compileExpr(Block, I->Else, Tail);
      patch(Block, J, static_cast<uint32_t>(here(Block)));
      return;
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      // Paper order: operand, then operator.
      compileExpr(Block, A->Arg, /*Tail=*/false);
      compileExpr(Block, A->Fn, /*Tail=*/false);
      emit(Block, Tail && Opts.TailCalls ? Op::TailCall : Op::Call);
      return;
    }
    case ExprKind::Letrec: {
      const auto *L = cast<LetrecExpr>(E);
      emit(Block, Op::PushRecEnv, addName(L->Name));
      Scope.push_back(L->Name);
      compileExpr(Block, L->Bound, /*Tail=*/false);
      emit(Block, Op::PatchRec);
      compileExpr(Block, L->Body, Tail);
      Scope.pop_back();
      if (!Tail)
        emit(Block, Op::PopEnv, 1);
      return;
    }
    case ExprKind::Prim1: {
      const auto *P = cast<Prim1Expr>(E);
      compileExpr(Block, P->Arg, /*Tail=*/false);
      emit(Block, Op::Prim1, static_cast<uint32_t>(P->Op));
      return;
    }
    case ExprKind::Prim2: {
      const auto *P = cast<Prim2Expr>(E);
      compileExpr(Block, P->Lhs, /*Tail=*/false);
      compileExpr(Block, P->Rhs, /*Tail=*/false);
      emit(Block, Op::Prim2, static_cast<uint32_t>(P->Op));
      return;
    }
    case ExprKind::Annot: {
      const auto *N = cast<AnnotExpr>(E);
      if (!Opts.Instrument) {
        // Compile-time obliviousness (Definition 7.1).
        compileExpr(Block, N->Inner, Tail);
        return;
      }
      uint32_t Probe = addProbe(N->Ann, N->Inner);
      emit(Block, Op::MonPre, Probe);
      // The post probe must run after the value is produced, so the inner
      // expression is not in tail position (same as the CEK machine's
      // MonPost frame).
      compileExpr(Block, N->Inner, /*Tail=*/false);
      emit(Block, Op::MonPost, Probe);
      return;
    }
    }
  }
};

//===----------------------------------------------------------------------===//
// Superinstruction fusion
//===----------------------------------------------------------------------===//

bool isJump(Op O) {
  return O == Op::Jump || O == Op::JumpIfFalse || O == Op::Prim2JumpIfFalse;
}

/// One left-to-right fusion scan over \p Code. \p TryFuse maps an adjacent
/// pair to its fused form (or nullopt). A pair is skipped when its second
/// member is a branch target — fusing it would make the jump land in the
/// middle of a superinstruction — or when the summed Cost would overflow
/// the step counter's per-instruction byte. Jump operands are remapped to
/// the post-fusion indices afterward. Returns the number of pairs fused.
template <typename FuseFn>
size_t fusePhase(std::vector<Instr> &Code, FuseFn TryFuse) {
  // Branch targets always point at an instruction (every patched operand
  // is filled by a later emit before the block's closing Ret/Halt), but
  // size n+1 tolerates an end-of-block target anyway.
  std::vector<bool> Target(Code.size() + 1, false);
  for (const Instr &I : Code)
    if (isJump(I.Code))
      Target[I.A] = true;
  std::vector<Instr> Out;
  Out.reserve(Code.size());
  std::vector<uint32_t> Map(Code.size() + 1);
  size_t Fused = 0;
  for (size_t I = 0; I < Code.size(); ++I) {
    Map[I] = static_cast<uint32_t>(Out.size());
    if (I + 1 < Code.size() && !Target[I + 1] &&
        Code[I].Cost + Code[I + 1].Cost <= 0xFF) {
      if (std::optional<Instr> F = TryFuse(Code[I], Code[I + 1])) {
        F->Cost = static_cast<uint8_t>(Code[I].Cost + Code[I + 1].Cost);
        Map[I + 1] = static_cast<uint32_t>(Out.size());
        Out.push_back(*F);
        ++I;
        ++Fused;
        continue;
      }
    }
    Out.push_back(Code[I]);
  }
  Map[Code.size()] = static_cast<uint32_t>(Out.size());
  for (Instr &I : Out)
    if (isJump(I.Code))
      I.A = Map[I.A];
  Code = std::move(Out);
  return Fused;
}

std::optional<Instr> mkFused(Op Code, uint32_t A, uint16_t B = 0) {
  Instr F;
  F.Code = Code;
  F.A = A;
  F.B = B;
  return F;
}

} // namespace

size_t monsem::fuseSuperinstructions(CompiledProgram &P) {
  size_t Total = 0;
  for (CodeBlock &B : P.Blocks) {
    std::vector<Instr> &C = B.Code;
    // Phase order matters: the producer+Prim2 phases run first so the
    // triple forms (Var;Const;Prim2 / Var;Var;Prim2) are reachable as
    // Var + {Const,Var}Prim2, which a single greedy pair scan would miss.
    // No rule matches MonPre/MonPost, so probes break every window.
    //
    // Phase 0: {Var,Const} + Prim2.
    Total += fusePhase(C, [](const Instr &X,
                             const Instr &Y) -> std::optional<Instr> {
      if (Y.Code != Op::Prim2 || Y.A > 0xFF)
        return std::nullopt;
      uint16_t OpB = packOpDepth(static_cast<uint8_t>(Y.A), 0);
      if (X.Code == Op::Var)
        return mkFused(Op::VarPrim2, X.A, OpB);
      if (X.Code == Op::Const)
        return mkFused(Op::ConstPrim2, X.A, OpB);
      return std::nullopt;
    });
    // Phase 1: Var + {Const,Var}Prim2 — the lhs variable folds into the
    // depth byte when it fits and the slot is still free.
    Total += fusePhase(C, [](const Instr &X,
                             const Instr &Y) -> std::optional<Instr> {
      if (X.Code != Op::Var || X.A > kMaxPackedDepth)
        return std::nullopt;
      if (Y.Code == Op::ConstPrim2 && unpackDepth(Y.B) == 0)
        return mkFused(Op::VarConstPrim2, Y.A,
                       packOpDepth(unpackPrimOp(Y.B), X.A));
      if (Y.Code == Op::VarPrim2 && unpackDepth(Y.B) == 0)
        return mkFused(Op::VarVarPrim2, Y.A,
                       packOpDepth(unpackPrimOp(Y.B), X.A));
      return std::nullopt;
    });
    // Phase 2: Prim2 + JumpIfFalse (test-and-branch).
    Total += fusePhase(C, [](const Instr &X,
                             const Instr &Y) -> std::optional<Instr> {
      if (X.Code == Op::Prim2 && X.A <= 0xFF && Y.Code == Op::JumpIfFalse)
        return mkFused(Op::Prim2JumpIfFalse, Y.A,
                       packOpDepth(static_cast<uint8_t>(X.A), 0));
      return std::nullopt;
    });
    // Phase 3: Var + {Tail}Call (calling a letrec binding).
    Total += fusePhase(C, [](const Instr &X,
                             const Instr &Y) -> std::optional<Instr> {
      if (X.Code != Op::Var)
        return std::nullopt;
      if (Y.Code == Op::Call)
        return mkFused(Op::VarCall, X.A);
      if (Y.Code == Op::TailCall)
        return mkFused(Op::VarTailCall, X.A);
      return std::nullopt;
    });
    // Phase 4: Var + Var (whatever pairs survive the earlier phases).
    Total += fusePhase(C, [](const Instr &X,
                             const Instr &Y) -> std::optional<Instr> {
      if (X.Code == Op::Var && Y.Code == Op::Var && Y.A <= kMaxSecondaryVar)
        return mkFused(Op::VarVar, X.A, static_cast<uint16_t>(Y.A));
      return std::nullopt;
    });
  }
  return Total;
}

void monsem::markReusableFrames(CompiledProgram &P) {
  for (CodeBlock &B : P.Blocks) {
    bool Reusable = true;
    for (const Instr &I : B.Code)
      if (I.Code == Op::MkClosure || I.Code == Op::MonPre ||
          I.Code == Op::MonPost)
        Reusable = false;
    B.ReusableFrame = Reusable;
  }
}

std::unique_ptr<CompiledProgram> monsem::compileProgram(const Expr *Program,
                                                        DiagnosticSink &Diags,
                                                        CompileOptions Opts) {
  return Compiler(Diags, Opts).run(Program);
}

std::string CompiledProgram::disassemble() const {
  // Both switches below are exhaustive over Op with no default, so -Wswitch
  // flags any opcode added without a disassembly; the trailing abort makes
  // a corrupted opcode loud rather than silently printing "?".
  static_assert(kNumOps == 24,
                "new opcode: update disassemble()'s two switches");
  auto OpName = [](Op O) -> const char * {
    switch (O) {
    case Op::Const:
      return "const";
    case Op::Var:
      return "var";
    case Op::MkClosure:
      return "closure";
    case Op::Jump:
      return "jump";
    case Op::JumpIfFalse:
      return "jfalse";
    case Op::Call:
      return "call";
    case Op::TailCall:
      return "tailcall";
    case Op::Ret:
      return "ret";
    case Op::Prim1:
      return "prim1";
    case Op::Prim2:
      return "prim2";
    case Op::PushRecEnv:
      return "pushrec";
    case Op::PatchRec:
      return "patchrec";
    case Op::PopEnv:
      return "popenv";
    case Op::MonPre:
      return "monpre";
    case Op::MonPost:
      return "monpost";
    case Op::Halt:
      return "halt";
    case Op::VarVar:
      return "varvar";
    case Op::VarPrim2:
      return "varprim2";
    case Op::ConstPrim2:
      return "constprim2";
    case Op::VarConstPrim2:
      return "varconstprim2";
    case Op::VarVarPrim2:
      return "varvarprim2";
    case Op::Prim2JumpIfFalse:
      return "prim2jfalse";
    case Op::VarCall:
      return "varcall";
    case Op::VarTailCall:
      return "vartailcall";
    }
    std::abort();
  };
  auto P2 = [](uint32_t Raw) {
    return std::string(prim2Name(static_cast<Prim2Op>(Raw)));
  };
  std::string Out;
  for (size_t B = 0; B < Blocks.size(); ++B) {
    Out += "block " + std::to_string(B) + " (" + Blocks[B].Name + "):\n";
    const auto &Code = Blocks[B].Code;
    for (size_t I = 0; I < Code.size(); ++I) {
      const Instr &In = Code[I];
      Out += "  " + std::to_string(I) + ": " + OpName(In.Code);
      switch (In.Code) {
      case Op::Prim1:
        Out += std::string(" ") + prim1Name(static_cast<Prim1Op>(In.A));
        break;
      case Op::Prim2:
        Out += " " + P2(In.A);
        break;
      case Op::MonPre:
      case Op::MonPost:
        Out += " " + Probes[In.A].Ann->text();
        break;
      case Op::Const:
        Out += " " + toDisplayString(ConstPool[In.A]);
        break;
      case Op::Var:
      case Op::MkClosure:
      case Op::Jump:
      case Op::JumpIfFalse:
      case Op::PushRecEnv:
      case Op::PopEnv:
      case Op::VarCall:
      case Op::VarTailCall:
        Out += " " + std::to_string(In.A);
        break;
      case Op::Ret:
      case Op::Halt:
      case Op::Call:
      case Op::TailCall:
      case Op::PatchRec:
        break;
      case Op::VarVar:
        Out += " " + std::to_string(In.A) + " " + std::to_string(In.B);
        break;
      case Op::VarPrim2:
        Out += " " + std::to_string(In.A) + " " + P2(unpackPrimOp(In.B));
        break;
      case Op::ConstPrim2:
        Out += " " + toDisplayString(ConstPool[In.A]) + " " +
               P2(unpackPrimOp(In.B));
        break;
      case Op::VarConstPrim2:
        Out += " " + std::to_string(unpackDepth(In.B)) + " " +
               toDisplayString(ConstPool[In.A]) + " " + P2(unpackPrimOp(In.B));
        break;
      case Op::VarVarPrim2:
        Out += " " + std::to_string(unpackDepth(In.B)) + " " +
               std::to_string(In.A) + " " + P2(unpackPrimOp(In.B));
        break;
      case Op::Prim2JumpIfFalse:
        Out += " " + P2(unpackPrimOp(In.B)) + " -> " + std::to_string(In.A);
        break;
      }
      Out += '\n';
    }
  }
  return Out;
}
