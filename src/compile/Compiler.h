//===- compile/Compiler.h - AST -> bytecode ---------------------*- C++ -*-===//
///
/// \file
/// Compiles an (annotated) L_lambda program to bytecode. See Bytecode.h for
/// the role this plays in the paper's specialization pipeline.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_COMPILE_COMPILER_H
#define MONSEM_COMPILE_COMPILER_H

#include "compile/Bytecode.h"
#include "support/Diagnostics.h"

#include <memory>

namespace monsem {

struct CompileOptions {
  /// Emit MonPre/MonPost probes at annotation sites. With instrumentation
  /// off, annotations compile to nothing — the standard semantics'
  /// obliviousness (Definition 7.1) performed at compile time.
  bool Instrument = true;
  /// Emit TailCall for calls in tail position.
  bool TailCalls = true;
  /// Run the peephole superinstruction fusion pass after emission.
  bool Fuse = true;
};

/// Compiles \p Program. Returns nullptr (with diagnostics) for programs
/// with unbound non-primitive variables — the only compile-time error.
std::unique_ptr<CompiledProgram> compileProgram(const Expr *Program,
                                                DiagnosticSink &Diags,
                                                CompileOptions Opts = {});

/// Peephole pass: rewrites hot adjacent instruction pairs into the fused
/// superinstructions of Bytecode.h. Jump-target aware (never fuses a pair
/// whose second instruction is a branch target) and probe-transparent (no
/// rule matches MonPre/MonPost, so probes break every fusion window).
/// Returns the number of pairs fused. Exposed for tests; compileProgram
/// runs it when CompileOptions::Fuse is set.
size_t fuseSuperinstructions(CompiledProgram &P);

/// Computes CodeBlock::ReusableFrame for every block (no MkClosure, no
/// probes). Run after fusion by compileProgram; exposed for tests.
void markReusableFrames(CompiledProgram &P);

/// Lowers a compiled (optionally fused) program to the register tier: a
/// block-local allocator maps each stack slot to a fixed virtual register
/// from the static stack height at every pc, producing exactly one RInstr
/// per stack instruction at the same (block, pc) with the same Cost. The
/// returned program borrows \p P (constants, names, probes), which must
/// outlive it. Returns nullptr when a block exceeds the register-operand
/// encoding limits (pathological nesting depth) — callers fall back to the
/// stack tier.
std::unique_ptr<RegProgram> lowerToRegisters(const CompiledProgram &P);

} // namespace monsem

#endif // MONSEM_COMPILE_COMPILER_H
