//===- compile/RegVMImpl.h - Register VM shared implementation --*- C++ -*-===//
///
/// \file
/// The register-window virtual machine's state, call protocol, and
/// checkpoint logic, shared by the two drivers built on top of it:
///
///  - RegVM.cpp     — the pure interpreter (`--backend=vm-reg`), switch and
///                    token-threaded dispatch loops;
///  - AotRun.cpp    — the AOT-native trampoline (`--backend=vm-aot`), which
///                    runs compiled leaf blocks natively and falls back to
///                    the same interpreter loop at deopt points.
///
/// Both drivers include this header and derive from `RegVMBase`, so the
/// apply path (leaf windows, currier collapse, frame reuse), environment
/// discipline, failure messages, and the MSCK checkpoint spill/restore are
/// one implementation — the tiers cannot drift apart observably.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_COMPILE_REGVMIMPL_H
#define MONSEM_COMPILE_REGVMIMPL_H

#include "compile/VM.h"

#include "compile/Compiler.h"
#include "semantics/Primitives.h"
#include "semantics/ValueGraph.h"
#include "support/Checkpoint.h"

#include <algorithm>
#include <deque>

#if defined(MONSEM_VM_THREADED) && (defined(__GNUC__) || defined(__clang__))
#define MONSEM_VM_HAS_CGOTO 1
#else
#define MONSEM_VM_HAS_CGOTO 0
#endif

namespace monsem {
namespace regvm_impl {


/// A suspended call: where to resume, that frame's register window base,
/// and the absolute register its callee's result lands in. `Env` is the
/// frame's environment chain — for leaf frames the *outer* chain (the
/// parameter lives in Regs[Base], not in a node).
struct RFrame {
  uint32_t Block;
  uint32_t PC;
  uint32_t Base;
  uint32_t Dst;
  EnvNode *Env;
};
class RegVMBase {
public:
  RegVMBase(const RegProgram &RP, MonitorHooks *Hooks, RunOptions Opts)
      : RP(RP), Src(*RP.Src), Hooks(Hooks), Opts(Opts) {}


protected:
  const RegProgram &RP;
  const CompiledProgram &Src;
  MonitorHooks *Hooks;
  RunOptions Opts;
  Arena A;

  std::vector<Value> Regs;
  std::vector<RFrame> Frames;
  uint32_t Base = 0;
  uint32_t Block = 0;
  uint32_t PC = 0;
  EnvNode *Env = nullptr;
  uint64_t Steps = 0;
  bool Failed = false;
  std::string Error;

  uint64_t StepBase = 0;
  uint64_t Fp = 0;
  bool FpComputed = false;
  std::deque<std::string> RevivedStrings;


  /// Same fingerprint as the stack VM — a hash of the *stack* disassembly
  /// of the shared source program — so checkpoints cross tiers.
  uint64_t fingerprint() {
    if (!FpComputed) {
      Fp = fnv1aHash(Src.disassemble());
      FpComputed = true;
    }
    return Fp;
  }

  Value &R(uint32_t Idx) { return Regs[Base + Idx]; }

  void ensureRegs(size_t N) {
    if (Regs.size() < N)
      Regs.resize(std::max(N, Regs.size() * 2));
  }

  void fail(std::string Msg) {
    Failed = true;
    Error = std::move(Msg);
  }

  /// The environment value at link depth \p D — the stack VM's envAt,
  /// letrec before-initialization check included.
  Value envAt(uint32_t D) {
    EnvNode *N = Env;
    for (; D; --D)
      N = N->Parent;
    if (N->Val.isUnit()) {
      fail("letrec variable '" + std::string(N->Name.str()) +
           "' referenced before initialization");
      return Value();
    }
    return N->Val;
  }

  /// Resolves a varref operand: the leaf parameter register, or an
  /// environment depth. Parameters can never be uninitialized (the unit
  /// marker is not a source value), so the register path needs no check.
  Value refVal(uint16_t Ref) {
    if (Ref == kParamReg)
      return Regs[Base];
    return envAt(Ref);
  }

  /// Applies \p Op2 into window register \p Dst (or fails).
  void prim2Set(Prim2Op Op2, Value Lhs, Value Rhs, uint16_t Dst) {
    PrimResult PR = applyPrim2(Op2, Lhs, Rhs, A);
    if (!PR.Ok)
      return fail(std::move(PR.Error));
    R(Dst) = PR.Val;
  }

  /// Returns \p V to the caller frame's destination register.
  void doRet(Value V) {
    RFrame F = Frames.back();
    Frames.pop_back();
    Block = F.Block;
    PC = F.PC;
    Base = F.Base;
    Env = F.Env;
    Regs[F.Dst] = V;
  }

  /// Applies \p Fn to \p Arg; a closure call's eventual result lands in
  /// window register \p Dst. Leaf callees get a register window and no
  /// environment node; non-leaf callees behave exactly like the stack VM
  /// (including the self-tail-call env reuse under ReuseTailFrames).
  void apply(Value Fn, Value Arg, bool Tail, uint16_t Dst) {
    switch (Fn.kind()) {
    case ValueKind::CompiledClosure: {
      VMClosure *C = Fn.asCompiledClosure();
      const RegBlock &CB = RP.Blocks[C->Block];
      if (CB.Currier) {
        // Curried-parameter collapse: the callee's whole body is
        // `MkClosure CurrierInner; Ret`. Perform both instructions here —
        // same two arena allocations, same step charge — without pushing
        // and popping a register window.
        Steps += CB.CurrierCost;
        EnvNode *E = extendEnv(A, C->Env, CB.Param, Arg);
        VMClosure *NC = A.create<VMClosure>(CB.CurrierInner, E);
        Value V = Value::mkCompiledClosure(NC);
        if (Tail)
          doRet(V);
        else
          R(Dst) = V;
        return;
      }
      if (CB.Leaf) {
        if (Tail) {
          // Window reset on frame reuse: the current frame is dead, its
          // window becomes the callee's. No allocation of any kind.
          ensureRegs(Base + CB.NumRegs);
          Regs[Base] = Arg;
          Block = C->Block;
          PC = 0;
          Env = C->Env;
          return;
        }
        uint32_t NewBase = Base + RP.Blocks[Block].NumRegs;
        ensureRegs(NewBase + CB.NumRegs);
        Frames.push_back(RFrame{Block, PC, Base, Base + Dst, Env});
        Regs[NewBase] = Arg;
        Base = NewBase;
        Block = C->Block;
        PC = 0;
        Env = C->Env;
        return;
      }
      if (Tail && Opts.ReuseTailFrames && C->Block == Block && Env &&
          Env->Parent == C->Env && Src.Blocks[Block].ReusableFrame) {
        Env->Val = Arg;
        PC = 0;
        return;
      }
      if (Tail) {
        ensureRegs(Base + CB.NumRegs);
      } else {
        uint32_t NewBase = Base + RP.Blocks[Block].NumRegs;
        ensureRegs(NewBase + CB.NumRegs);
        Frames.push_back(RFrame{Block, PC, Base, Base + Dst, Env});
        Base = NewBase;
      }
      Block = C->Block;
      PC = 0;
      Env = extendEnv(A, C->Env, CB.Param, Arg);
      return;
    }
    case ValueKind::Prim1: {
      PrimResult PR = applyPrim1(Fn.asPrim1(), Arg, A);
      if (!PR.Ok)
        return fail(std::move(PR.Error));
      if (Tail)
        doRet(PR.Val);
      else
        R(Dst) = PR.Val;
      return;
    }
    case ValueKind::Prim2: {
      PrimPartial *PP = A.create<PrimPartial>(Fn.asPrim2(), Arg);
      Value V = Value::mkPrim2Partial(PP);
      if (Tail)
        doRet(V);
      else
        R(Dst) = V;
      return;
    }
    case ValueKind::Prim2Partial: {
      PrimPartial *PP = Fn.asPrim2Partial();
      PrimResult PR = applyPrim2(PP->Op, PP->First, Arg, A);
      if (!PR.Ok)
        return fail(std::move(PR.Error));
      if (Tail)
        doRet(PR.Val);
      else
        R(Dst) = PR.Val;
      return;
    }
    default:
      fail("cannot apply a non-function value (" + toDisplayString(Fn) +
           ")");
    }
  }

  /// Probe entry points for the dispatch handlers. The environment is
  /// passed explicitly because the dispatch loops keep it in a local (see
  /// MONSEM_REGVM_LOCAL_STATE); `Steps` is synced every dispatch, so the
  /// hook sees the current step index.
  void probePre(uint32_t ProbeIdx, EnvNode *E) {
    const ProbeSite &S = Src.Probes[ProbeIdx];
    Hooks->pre(*S.Ann, *S.Inner, EnvView(E), Steps, A.bytesAllocated());
  }
  void probePost(uint32_t ProbeIdx, EnvNode *E, Value V) {
    const ProbeSite &S = Src.Probes[ProbeIdx];
    Hooks->post(*S.Ann, *S.Inner, EnvView(E), V, Steps, A.bytesAllocated());
  }

  /// The environment a leaf frame would have on the stack tier: a fresh
  /// node binding the parameter (held in the window's register 0) over the
  /// closure's captured chain. Leaf blocks create no closures, so the node
  /// the stack VM would have allocated is never shared — materializing a
  /// fresh one yields an isomorphic value graph.
  EnvNode *materializeLeafEnv(const RegBlock &B, uint32_t FrameBase,
                              EnvNode *Outer) {
    return extendEnv(A, Outer, B.Param, Regs[FrameBase]);
  }

  /// Serializes the machine at an instruction boundary in the stack VM's
  /// exact payload layout: register windows spill to the canonical flat
  /// operand stack (each suspended frame contributes Height[retPC]-1
  /// values, the executing window Height[pc]), and leaf frames materialize
  /// their environment node. A checkpoint taken here restores on either
  /// tier.
  Checkpoint makeCheckpoint(const RInstr &I) {
    CheckpointHeader H;
    H.Backend = CheckpointBackend::VM;
    H.Strategy = static_cast<uint8_t>(Strategy::Strict);
    H.Lexical = false;
    H.Monitored = Hooks != nullptr;
#ifdef MONSEM_VALUE_BOXED
    H.BoxedValues = true;
#endif
    H.ProgramFingerprint = fingerprint();
    H.SavedSteps = Steps - I.Cost;
    Serializer S = Checkpoint::begin(H);
    if (Hooks)
      Hooks->saveMonitorSection(S);
    else
      S.writeU32(0);
    ValueGraphWriter W(nullptr, nullptr, false);
    Serializer &RS = W.roots();
    uint32_t CurPC = PC - 1; // The instruction that did not execute.
    const RegBlock &CB = RP.Blocks[Block];
    RS.writeU32(Block);
    RS.writeU32(CurPC);
    W.writeEnvNodeRef(CB.Leaf ? materializeLeafEnv(CB, Base, Env) : Env);
    uint32_t NS = CB.Height[CurPC];
    for (const RFrame &F : Frames)
      NS += RP.Blocks[F.Block].Height[F.PC] - 1;
    RS.writeU32(NS);
    for (const RFrame &F : Frames) {
      const RegBlock &FB = RP.Blocks[F.Block];
      uint32_t Len = FB.Height[F.PC] - 1;
      for (uint32_t J = 0; J < Len; ++J)
        W.writeValue(Regs[F.Base + FB.TempBase + J]);
    }
    for (uint32_t J = 0, Len = CB.Height[CurPC]; J < Len; ++J)
      W.writeValue(Regs[Base + CB.TempBase + J]);
    RS.writeU32(static_cast<uint32_t>(Frames.size()));
    for (const RFrame &F : Frames) {
      const RegBlock &FB = RP.Blocks[F.Block];
      RS.writeU32(F.Block);
      RS.writeU32(F.PC);
      W.writeEnvNodeRef(FB.Leaf ? materializeLeafEnv(FB, F.Base, F.Env)
                                : F.Env);
    }
    if (!W.ok())
      return Checkpoint();
    W.finish(S);
    return Checkpoint::seal(std::move(S));
  }

  void emitCheckpoint(const RInstr &I) {
    if (!Opts.CheckpointSink)
      return;
    if (Opts.Durability && Opts.Durability->degraded("checkpoint"))
      return;
    Checkpoint CK = makeCheckpoint(I);
    if (CK.valid())
      Opts.CheckpointSink(CK);
  }

  bool validCodeRef(uint32_t B, uint32_t Pc) const {
    return B < RP.Blocks.size() && Pc < RP.Blocks[B].Code.size();
  }

  /// Rebuilds register windows from the stack VM's payload: window bases
  /// are reassigned cumulatively, the flat operand stack is split by the
  /// static height at each frame's resume pc, and leaf frames unpack their
  /// parameter from the serialized environment node.
  bool restoreCheckpoint(const Checkpoint &CK, std::string &Err) {
    const CheckpointHeader &H = CK.header();
    if (H.Backend != CheckpointBackend::VM) {
      Err = "checkpoint was taken by the CEK machine, not the VM";
      return false;
    }
    if (H.Monitored != (Hooks != nullptr)) {
      Err = H.Monitored
                ? "checkpoint was taken by a monitored run; attach the "
                  "same cascade to resume"
                : "checkpoint was taken by an unmonitored run";
      return false;
    }
    if (H.ProgramFingerprint != fingerprint()) {
      Err = "checkpoint was taken for a different program (fingerprint "
            "mismatch)";
      return false;
    }
    Deserializer D = CK.payload();
    if (Hooks)
      Hooks->loadMonitorSection(D);
    else if (D.readU32() != 0)
      D.fail("checkpoint has monitor states but this run is unmonitored");
    if (!D.ok()) {
      Err = D.error();
      return false;
    }
    ValueGraphReader Rd(D, A, nullptr, nullptr, 0);
    if (!Rd.readObjects()) {
      Err = D.error();
      return false;
    }
    Block = D.readU32();
    PC = D.readU32();
    if (D.ok() && !validCodeRef(Block, PC)) {
      Err = "corrupt checkpoint: program counter out of range";
      return false;
    }
    EnvNode *TopEnv = Rd.readEnvNodeRef();
    uint32_t NS = D.readU32();
    if (!D.ok() || NS > (1u << 28)) {
      Err = D.ok() ? "corrupt checkpoint: bad stack length" : D.error();
      return false;
    }
    std::vector<Value> Flat;
    Flat.reserve(NS);
    for (uint32_t I = 0; I < NS && D.ok(); ++I)
      Flat.push_back(Rd.readValue());
    // Zero frames is legitimate: the final return pops the sentinel frame,
    // so a checkpoint at the entry Halt boundary has none and the resumed
    // run halts immediately.
    uint32_t NF = D.readU32();
    if (!D.ok() || NF > (1u << 28)) {
      Err = D.ok() ? "corrupt checkpoint: bad call-frame count" : D.error();
      return false;
    }
    Frames.reserve(NF);
    uint64_t B = 0;
    size_t StackIdx = 0;
    for (uint32_t I = 0; I < NF && D.ok(); ++I) {
      uint32_t FBlock = D.readU32();
      uint32_t FPC = D.readU32();
      EnvNode *FEnv = Rd.readEnvNodeRef();
      if (!D.ok())
        break;
      if (!validCodeRef(FBlock, FPC)) {
        Err = "corrupt checkpoint: call frame return address out of range";
        return false;
      }
      const RegBlock &FB = RP.Blocks[FBlock];
      uint32_t FH = FB.Height[FPC];
      if (FH == kDeadHeight || FH < 1) {
        Err = "corrupt checkpoint: call frame resumes at an invalid "
              "stack height";
        return false;
      }
      uint32_t Len = FH - 1;
      if (StackIdx + Len > Flat.size() || B + FB.NumRegs > (1u << 28)) {
        Err = "corrupt checkpoint: operand stack does not match the "
              "frame layout";
        return false;
      }
      ensureRegs(B + FB.NumRegs);
      for (uint32_t J = 0; J < Len; ++J)
        Regs[B + FB.TempBase + J] = Flat[StackIdx++];
      if (FB.Leaf) {
        if (!FEnv) {
          Err = "corrupt checkpoint: missing environment for a leaf frame";
          return false;
        }
        Regs[B] = FEnv->Val;
        FEnv = FEnv->Parent;
      }
      Frames.push_back(RFrame{FBlock, FPC,
                              static_cast<uint32_t>(B),
                              static_cast<uint32_t>(B + FB.TempBase + Len),
                              FEnv});
      B += FB.NumRegs;
    }
    if (!D.ok()) {
      Err = D.error();
      return false;
    }
    const RegBlock &CB = RP.Blocks[Block];
    uint32_t TopLen = CB.Height[PC];
    if (TopLen == kDeadHeight || StackIdx + TopLen != Flat.size() ||
        B + CB.NumRegs > (1u << 28)) {
      Err = "corrupt checkpoint: operand stack does not match the "
            "frame layout";
      return false;
    }
    Base = static_cast<uint32_t>(B);
    ensureRegs(Base + CB.NumRegs);
    for (uint32_t J = 0; J < TopLen; ++J)
      Regs[Base + CB.TempBase + J] = Flat[StackIdx++];
    Env = TopEnv;
    if (CB.Leaf) {
      if (!Env) {
        Err = "corrupt checkpoint: missing environment for a leaf frame";
        return false;
      }
      Regs[Base] = Env->Val;
      Env = Env->Parent;
    }
    RevivedStrings = Rd.takeStrings();
    if (!D.ok()) {
      Err = D.error();
      return false;
    }
    return true;
  }

  RunResult haltResult(Value V) {
    RunResult Res;
    Res.setOutcome(Outcome::Ok);
    Res.Steps = Steps;
    Res.ArenaBytes = A.bytesAllocated();
    Res.ValueText = Opts.Algebra->render(V);
    if (V.is(ValueKind::Int))
      Res.IntValue = V.asInt();
    if (V.is(ValueKind::Bool))
      Res.BoolValue = V.asBool();
    return Res;
  }

  RunResult stopResult(Outcome O) {
    RunResult Res;
    Res.setOutcome(O);
    Res.Steps = Steps;
    Res.ArenaBytes = A.bytesAllocated();
    return Res;
  }

  RunResult errorResult() {
    RunResult Res;
    Res.setOutcome(Outcome::Error);
    Res.Error = std::move(Error);
    Res.Steps = Steps;
    Res.ArenaBytes = A.bytesAllocated();
    return Res;
  }
};

/// Inline integer arms of the binary primitives, shared by the dispatch
/// loops' prim2Set and the fused compare-and-branch handler. applyPrim2
/// returns a PrimResult whose error slot is a std::string — an out-of-line
/// call plus a 48-byte struct round-trip that dwarfs the two-integer op
/// itself, and arithmetic on two known integers cannot fail (Div/Mod keep
/// their zero checks on the shared path). Result construction goes through
/// the same mkInt(V, A) as applyPrim2, so value representation and arena
/// accounting are bit-identical to the slow path.
inline bool intPrim2Fast(Prim2Op Op, int64_t X, int64_t Y, Arena &A,
                         Value &Out) {
  switch (Op) {
  case Prim2Op::Add:
    Out = Value::mkInt(X + Y, A);
    return true;
  case Prim2Op::Sub:
    Out = Value::mkInt(X - Y, A);
    return true;
  case Prim2Op::Mul:
    Out = Value::mkInt(X * Y, A);
    return true;
  case Prim2Op::Min:
    Out = Value::mkInt(X < Y ? X : Y, A);
    return true;
  case Prim2Op::Max:
    Out = Value::mkInt(X > Y ? X : Y, A);
    return true;
  case Prim2Op::Eq:
    Out = Value::mkBool(X == Y);
    return true;
  case Prim2Op::Ne:
    Out = Value::mkBool(X != Y);
    return true;
  case Prim2Op::Lt:
    Out = Value::mkBool(X < Y);
    return true;
  case Prim2Op::Le:
    Out = Value::mkBool(X <= Y);
    return true;
  case Prim2Op::Gt:
    Out = Value::mkBool(X > Y);
    return true;
  case Prim2Op::Ge:
    Out = Value::mkBool(X >= Y);
    return true;
  default:
    return false; // Div/Mod (zero check) and Cons take the shared path.
  }
}

} // namespace regvm_impl
} // namespace monsem

/// Hot interpreter state lives in locals inside the dispatch loops: the
/// member round-trips per dispatch (PC, Base, Env through `this`) cost
/// more than interpreting many of the opcodes, and the compiler cannot
/// promote the members itself past the opaque primitive calls. The locals
/// shadow the members of the same name, so the shared handler file reads
/// and writes them directly; the same goes for the helper lambdas, which
/// shadow their member namesakes but operate on the locals. The members
/// are re-synced at the cold boundaries — governor pauses (which may
/// checkpoint), the out-of-line apply() — and `Steps` is synced every
/// dispatch so result construction and exception unwinds always see the
/// current count.
#define MONSEM_REGVM_LOCAL_STATE                                               \
  const RegBlock *const Blocks = RP.Blocks.data();                             \
  uint32_t Block = this->Block;                                                \
  uint32_t PC = this->PC;                                                      \
  uint32_t Base = this->Base;                                                  \
  EnvNode *Env = this->Env;                                                    \
  uint64_t Steps = this->Steps;                                                \
  Value *Rg = Regs.data();                                                     \
  auto R = [&](uint32_t Idx) -> Value & { return Rg[Base + Idx]; };            \
  auto refVal = [&](uint16_t Ref) -> Value {                                   \
    if (Ref == kParamReg)                                                      \
      return Rg[Base];                                                         \
    EnvNode *N = Env;                                                          \
    for (uint32_t D = Ref; D; --D)                                             \
      N = N->Parent;                                                           \
    if (N->Val.isUnit()) {                                                     \
      fail("letrec variable '" + std::string(N->Name.str()) +                  \
           "' referenced before initialization");                              \
      return Value();                                                          \
    }                                                                          \
    return N->Val;                                                             \
  };                                                                           \
  auto prim2Set = [&](Prim2Op Op2, Value Lhs, Value Rhs, uint16_t Dst) {       \
    Value Out;                                                                 \
    if (Lhs.is(ValueKind::Int) && Rhs.is(ValueKind::Int) &&                    \
        intPrim2Fast(Op2, Lhs.asInt(), Rhs.asInt(), A, Out)) {                 \
      R(Dst) = Out;                                                            \
      return;                                                                  \
    }                                                                          \
    PrimResult PR = applyPrim2(Op2, Lhs, Rhs, A);                              \
    if (!PR.Ok)                                                                \
      return fail(std::move(PR.Error));                                        \
    R(Dst) = PR.Val;                                                           \
  };                                                                           \
  auto doRet = [&](Value V) {                                                  \
    RFrame F = Frames.back();                                                  \
    Frames.pop_back();                                                         \
    Block = F.Block;                                                           \
    PC = F.PC;                                                                 \
    Base = F.Base;                                                             \
    Env = F.Env;                                                               \
    Rg[F.Dst] = V;                                                             \
  };                                                                           \
  auto apply = [&](Value Fn, Value Arg, bool Tail, uint16_t Dst) {             \
    this->Block = Block;                                                       \
    this->PC = PC;                                                             \
    this->Base = Base;                                                         \
    this->Env = Env;                                                           \
    this->apply(Fn, Arg, Tail, Dst);                                           \
    Block = this->Block;                                                       \
    PC = this->PC;                                                             \
    Base = this->Base;                                                         \
    Env = this->Env;                                                           \
    Steps = this->Steps; /* currier collapse charges steps in apply() */       \
    Rg = Regs.data();                                                          \
  };

#endif // MONSEM_COMPILE_REGVMIMPL_H
