//===- compile/VM.h - Bytecode virtual machine ------------------*- C++ -*-===//
///
/// \file
/// Executes compiled (optionally instrumented) programs. Strict semantics
/// only — the VM is the residual of specializing the *strict* monitored
/// interpreter with respect to a program (Section 9.1); the lazy language
/// modules run on the CEK machine.
///
/// Monitoring probes dispatch through the same MonitorHooks interface as
/// the CEK machine, so any toolbox monitor/cascade runs unchanged on
/// instrumented bytecode, and the soundness property carries over (probes
/// cannot touch the value stack).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_COMPILE_VM_H
#define MONSEM_COMPILE_VM_H

#include "compile/Bytecode.h"
#include "interp/Machine.h" // RunResult, RunOptions
#include "monitor/Cascade.h"

namespace monsem {

/// Runs \p Program on the VM. \p Hooks may be null (standard semantics).
/// Honors RunOptions::MaxSteps/Limits, Algebra, VMThreaded (token-threaded
/// vs. switch dispatch) and ReuseTailFrames (self-tail-call env reuse);
/// the strategy is always strict. Each instruction advances the step
/// counter by its Cost (its source-step count), so fused and unfused
/// programs report identical step counts.
RunResult runCompiled(const CompiledProgram &Program,
                      MonitorHooks *Hooks = nullptr, RunOptions Opts = {});

/// Runs a lowered program on the register VM. Same contract as
/// runCompiled — identical step counts, probe streams, and checkpoint
/// format (MSCK checkpoints are portable across the stack and register
/// tiers in both directions) — with register windows instead of an
/// operand stack. \p RP.Src must outlive the run.
RunResult runRegisterProgram(const RegProgram &RP,
                             MonitorHooks *Hooks = nullptr,
                             RunOptions Opts = {});

/// True when this build supports computed-goto dispatch (GCC/Clang with
/// MONSEM_VM_THREADED); otherwise RunOptions::VMThreaded is ignored and
/// the portable switch loop always runs.
bool vmThreadedDispatchAvailable();

/// Convenience: compile-and-run under a cascade, mirroring
/// evaluate(Cascade, Expr). Validates disjointness first.
RunResult evaluateCompiled(const Cascade &C, const Expr *Program,
                           RunOptions Opts = {});

} // namespace monsem

#endif // MONSEM_COMPILE_VM_H
