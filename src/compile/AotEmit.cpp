//===- compile/AotEmit.cpp - C emitter + shared-object cache --------------===//
///
/// \file
/// Translates eligible RegProgram blocks to C (see AotEmit.h for the tier
/// contract), drives the system C compiler, and caches the resulting
/// shared objects by program fingerprint + emitter version + compiler
/// identification + Value representation.
///
/// Emission rules, per instruction at the same (block, pc) as the
/// interpreter, charging the same Cost:
///  - register operands index the shared window file (`regs[base + k]`);
///  - varref operands either read the leaf parameter register or walk the
///    closure's EnvNode chain inline (letrec-uninitialized check kept);
///  - integer primitives specialize at emit time on the instruction's op:
///    inline-tagged operands compute in C (wraparound casts keep overflow
///    defined; out-of-range results box through the arena helper), and
///    anything else — boxed ints, Div/Mod's zero check, Cons's cell
///    allocation, type errors — re-enters the interpreter's own slow path
///    so error messages and arena accounting cannot diverge;
///  - calls go through the Apply helper (the interpreter's apply(), frames
///    and windows included), except self tail calls, which reset the
///    window and loop natively after re-checking the governor bound;
///  - Ret pops the C++ frame via DoRet and transfers to the trampoline.
///
/// Every block function begins with a pc switch over its enterable points
/// (entry plus call-return pcs), so the trampoline can resume a block
/// mid-flight after a call or a deopt.
///
//===----------------------------------------------------------------------===//

#include "compile/AotEmit.h"

#include "compile/Compiler.h"
#include "semantics/Primitives.h"
#include "support/Checkpoint.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <mutex>
#include <fstream>

#ifndef _WIN32
#include <dlfcn.h>
#include <unistd.h>
#endif

using namespace monsem;

/// Bumped whenever emitted code or the AotCtx ABI changes shape; part of
/// the cache key so stale shared objects can never be loaded.
static constexpr const char *kEmitterVersion = "monsem-aot-v1";

//===----------------------------------------------------------------------===//
// Compiler discovery
//===----------------------------------------------------------------------===//

namespace {

struct CompilerInfo {
  std::string Path; ///< Command to invoke (may be a bare PATH name).
  std::string Id;   ///< First line of `--version`; empty when unusable.
};

CompilerInfo probeCompiler() {
  CompilerInfo CI;
  const char *Env = std::getenv("MONSEM_AOT_CC");
  CI.Path = Env && *Env ? Env : "cc";
#ifdef _WIN32
  return CI;
#else
  std::string Cmd = "'" + CI.Path + "' --version 2>/dev/null";
  // A quote in the compiler path cannot be quoted away safely; refuse it.
  if (CI.Path.find('\'') != std::string::npos)
    return CI;
  if (FILE *P = popen(Cmd.c_str(), "r")) {
    char Line[512];
    if (fgets(Line, sizeof(Line), P)) {
      CI.Id = Line;
      while (!CI.Id.empty() && (CI.Id.back() == '\n' || CI.Id.back() == '\r'))
        CI.Id.pop_back();
    }
    if (pclose(P) != 0)
      CI.Id.clear();
  }
  return CI;
#endif
}

const CompilerInfo &compilerInfo() {
  static CompilerInfo CI = probeCompiler();
  return CI;
}

} // namespace

bool monsem::aotAvailable() {
#ifdef MONSEM_VALUE_BOXED
  return false;
#else
  return !compilerInfo().Id.empty();
#endif
}

const std::string &monsem::aotCompilerId() { return compilerInfo().Id; }

//===----------------------------------------------------------------------===//
// Eligibility
//===----------------------------------------------------------------------===//

namespace {

/// Pause bound covering any single pass through the block (forward-only
/// control flow; the self-tail loop re-checks per iteration). Blocks whose
/// bound reaches the governor's minimum check interval are never entered
/// natively, so cap eligibility there.
uint64_t blockCostBound(const RegBlock &B) {
  uint64_t C = 0;
  for (const RInstr &I : B.Code)
    C += I.Cost;
  return C;
}

bool emittableOp(ROp O) {
  switch (O) {
  case ROp::Const:
  case ROp::Var:
  case ROp::Jump:
  case ROp::JumpIfFalse:
  case ROp::Call:
  case ROp::TailCall:
  case ROp::Ret:
  case ROp::Prim1:
  case ROp::Prim2:
  case ROp::VarVar:
  case ROp::VarPrim2:
  case ROp::ConstPrim2:
  case ROp::VarConstPrim2:
  case ROp::VarVarPrim2:
  case ROp::Prim2JumpIfFalse:
  case ROp::VarCall:
  case ROp::VarTailCall:
    return true;
  default:
    // MkClosure/PushRecEnv/probes never appear in leaf blocks; PatchRec,
    // PopEnv, and Halt deopt the whole block to the interpreter.
    return false;
  }
}

bool emittableBlock(const RegBlock &B, uint32_t Index) {
  if (Index == 0 || !B.Leaf || B.Code.empty())
    return false;
  if (blockCostBound(B) >= 512)
    return false;
  for (const RInstr &I : B.Code)
    if (!emittableOp(I.Code))
      return false;
  return true;
}

std::vector<uint8_t> enterablePcs(const RegBlock &B) {
  std::vector<uint8_t> E(B.Code.size(), 0);
  if (!E.empty())
    E[0] = 1;
  for (size_t Pc = 0; Pc < B.Code.size(); ++Pc)
    if ((B.Code[Pc].Code == ROp::Call || B.Code[Pc].Code == ROp::VarCall) &&
        Pc + 1 < B.Code.size())
      E[Pc + 1] = 1;
  return E;
}

//===----------------------------------------------------------------------===//
// Emitter
//===----------------------------------------------------------------------===//

/// Tagged-Value constants mirrored into the C. AotRun.cpp static_asserts
/// the object layouts; the value encodings match semantics/Value.h's
/// private enums (inline int: tag 0, sub-kind 1 at bits [5:3], payload at
/// bit 16; bool: sub-kind 2, payload bit 8; nil: sub-kind 3; cell tag 1;
/// VMClosure tag 5).
constexpr const char *kPrelude = R"(#include <stdint.h>

typedef struct MonsemAotCtx MonsemAotCtx;
struct MonsemAotCtx {
  uint64_t *regs;
  uint64_t base;
  uint64_t steps;
  uint64_t next_pause;
  uint64_t env;
  uint32_t block;
  uint32_t pc;
  const uint64_t *consts;
  void *vm;
  int (*apply)(MonsemAotCtx *, uint64_t, uint64_t, int, uint32_t);
  int (*prim1)(MonsemAotCtx *, uint32_t, uint64_t, uint32_t);
  int (*prim2)(MonsemAotCtx *, uint32_t, uint64_t, uint64_t, uint32_t);
  int (*prim2_branch)(MonsemAotCtx *, uint32_t, uint64_t, uint64_t, int *);
  uint64_t (*box_int)(MonsemAotCtx *, int64_t);
  int (*do_ret)(MonsemAotCtx *, uint64_t);
  void (*fail_uninit)(MonsemAotCtx *, uint64_t);
  void (*fail_nonbool)(MonsemAotCtx *, uint64_t);
};

#define AOT_TRANSFER 0u
#define AOT_YIELD 1u
#define AOT_FAIL 2u
#define AOT_BAIL 3u

#define LDU64(p) (*(const uint64_t *)(uintptr_t)(p))
#define IS_IINT(v) (((v) & 0x3fu) == 0x08u)
#define IINT(v) ((int64_t)(v) >> 16)
#define MK_IINT(x) ((((uint64_t)(x)) << 16) | 0x08u)
#define FITS(x) ((int64_t)((uint64_t)(x) << 16) >> 16 == (x))
#define IS_BOOL(v) (((v) & 0x3fu) == 0x10u)
#define BOOLV(v) (((v) >> 8) & 1u)
#define MK_BOOL(b) ((((uint64_t)(b)) << 8) | 0x10u)
#define IS_NIL(v) (((v) & 0x3fu) == 0x18u)
#define TAGOF(v) ((v) & 7u)
#define PTROF(v) ((v) & ~(uint64_t)7u)
#define CL_BLOCK(p) (*(const uint32_t *)(uintptr_t)(p))
#define CL_ENV(p) LDU64((p) + 8)
#define ENV_VAL(n) LDU64((n) + 8)
#define ENV_PARENT(n) LDU64((n) + 16)
#define CELL_HD(p) LDU64(p)
#define CELL_TL(p) LDU64((p) + 8)
)";

class Emitter {
public:
  Emitter(const RegProgram &RP) : RP(RP) {}

  std::string run() {
    O = "/* monsem vm-aot native tier; ";
    O += kEmitterVersion;
    O += "; generated code — do not edit. */\n";
    O += kPrelude;
    for (uint32_t B = 0; B < RP.Blocks.size(); ++B)
      if (emittableBlock(RP.Blocks[B], B))
        emitBlock(B);
    return std::move(O);
  }

private:
  const RegProgram &RP;
  std::string O;
  uint32_t BI = 0;       ///< Current block index.
  uint64_t BCost = 0;    ///< Current block pause bound.
  uint32_t PC = 0;       ///< Current pc (for sync emission).

  static std::string num(uint64_t V) { return std::to_string(V); }
  static std::string reg(uint16_t K) {
    return K ? "regs[base + " + num(K) + "]" : "regs[base]";
  }
  std::string label(uint32_t Pc) const {
    return "L" + num(BI) + "_" + num(Pc);
  }

  /// `ctx->steps = steps; ctx->block = BI; ctx->pc = PC + 1;` — machine
  /// state at the interpreter's post-fetch convention, emitted before any
  /// helper that can fail, allocate, or move control.
  std::string sync() const {
    return "ctx->steps = steps; ctx->block = " + num(BI) +
           "u; ctx->pc = " + num(PC + 1) + "u; ";
  }

  /// Reads varref \p Ref into C lvalue \p T (leaf parameter register or an
  /// inline walk of the environment chain with the letrec check).
  void varref(uint16_t Ref, const char *T) {
    if (Ref == kParamReg) {
      O += std::string("  ") + T + " = regs[base];\n";
      return;
    }
    O += "  { uint64_t n = ctx->env;\n";
    for (uint16_t D = 0; D < Ref; ++D)
      O += "    n = ENV_PARENT(n);\n";
    O += std::string("    ") + T + " = ENV_VAL(n);\n";
    O += std::string("    if (!") + T + ") { " + sync() +
         "ctx->fail_uninit(ctx, n); return AOT_FAIL; } }\n";
  }

  /// The integer fast path of prim2 (op known at emit time), writing the
  /// tagged result into \p Dst; non-inline operands and the remaining ops
  /// take the interpreter's slow path via the Prim2 helper.
  void prim2Into(Prim2Op Op, const std::string &L, const std::string &R,
                 uint16_t Dst) {
    const char *COp = cmpOp(Op);
    std::string Slow = "  { " + sync() + "if (ctx->prim2(ctx, " +
                       num(static_cast<unsigned>(Op)) + "u, " + L + ", " + R +
                       ", " + num(Dst) + "u)) return AOT_FAIL; }\n";
    if (COp) {
      O += "  if (IS_IINT(" + L + ") && IS_IINT(" + R + "))\n";
      O += "    " + reg(Dst) + " = MK_BOOL(IINT(" + L + ") " + COp +
           " IINT(" + R + "));\n";
      O += "  else\n  " + Slow;
      return;
    }
    switch (Op) {
    case Prim2Op::Add:
    case Prim2Op::Sub:
    case Prim2Op::Mul: {
      const char *A = Op == Prim2Op::Add   ? "+"
                      : Op == Prim2Op::Sub ? "-"
                                           : "*";
      O += "  if (IS_IINT(" + L + ") && IS_IINT(" + R + ")) {\n";
      O += "    int64_t z = (int64_t)((uint64_t)IINT(" + L + ") " + A +
           " (uint64_t)IINT(" + R + "));\n";
      O += "    if (FITS(z)) " + reg(Dst) + " = MK_IINT(z);\n";
      O += "    else { " + sync() + reg(Dst) +
           " = ctx->box_int(ctx, z); }\n";
      O += "  } else\n  " + Slow;
      return;
    }
    case Prim2Op::Min:
    case Prim2Op::Max: {
      // The interpreter re-encodes min/max through mkInt, which for two
      // inline operands reproduces the chosen operand's word exactly.
      const char *C = Op == Prim2Op::Min ? "<" : ">";
      O += "  if (IS_IINT(" + L + ") && IS_IINT(" + R + "))\n";
      O += "    " + reg(Dst) + " = IINT(" + L + ") " + C + " IINT(" + R +
           ") ? " + L + " : " + R + ";\n";
      O += "  else\n  " + Slow;
      return;
    }
    default: // Div, Mod (zero checks), Cons (allocation).
      O += Slow;
      return;
    }
  }

  static const char *cmpOp(Prim2Op Op) {
    switch (Op) {
    case Prim2Op::Eq:
      return "==";
    case Prim2Op::Ne:
      return "!=";
    case Prim2Op::Lt:
      return "<";
    case Prim2Op::Le:
      return "<=";
    case Prim2Op::Gt:
      return ">";
    case Prim2Op::Ge:
      return ">=";
    default:
      return nullptr;
    }
  }

  /// A call site: \p Fn and \p Arg are C expressions already loaded into
  /// temporaries. Self tail calls loop natively (window reset + governor
  /// re-check); everything else funnels through the interpreter's apply.
  /// Non-tail calls whose apply completes in place (primitives, curried
  /// closures) continue natively at the return pc.
  void emitCall(const std::string &Fn, const std::string &Arg, bool Tail,
                uint16_t Dst) {
    if (Tail) {
      O += "  if (TAGOF(" + Fn + ") == 5u) { uint64_t cl = PTROF(" + Fn +
           ");\n";
      O += "    if (CL_BLOCK(cl) == " + num(BI) + "u) {\n";
      O += "      ctx->env = CL_ENV(cl); regs[base] = " + Arg + ";\n";
      O += "      if (steps + " + num(BCost) +
           "u >= ctx->next_pause) { ctx->steps = steps; ctx->block = " +
           num(BI) + "u; ctx->pc = 0u; return AOT_YIELD; }\n";
      O += "      goto " + label(0) + ";\n    } }\n";
    }
    O += "  " + sync() + "\n";
    O += "  if (ctx->apply(ctx, " + Fn + ", " + Arg + ", " +
         (Tail ? "1" : "0") + ", " + num(Dst) + "u)) return AOT_FAIL;\n";
    O += "  steps = ctx->steps;\n";
    if (!Tail) {
      O += "  if (ctx->block == " + num(BI) + "u && ctx->pc == " +
           num(PC + 1) + "u && ctx->base == base) {\n";
      O += "    regs = ctx->regs;\n";
      O += "    if (steps + " + num(BCost) +
           "u >= ctx->next_pause) return AOT_YIELD;\n";
      O += "    goto " + label(PC + 1) + ";\n  }\n";
    }
    O += "  return AOT_TRANSFER;\n";
  }

  void emitBlock(uint32_t B) {
    BI = B;
    const RegBlock &RB = RP.Blocks[B];
    BCost = blockCostBound(RB);
    std::vector<uint8_t> Enter = enterablePcs(RB);
    O += "\n/* block " + num(B) + " (" + RB.Name + "), cost bound " +
         num(BCost) + " */\n";
    O += "uint64_t monsem_aot_b" + num(B) + "(MonsemAotCtx *ctx) {\n";
    O += "  uint64_t *regs = ctx->regs;\n";
    O += "  uint64_t base = ctx->base;\n";
    O += "  uint64_t steps = ctx->steps;\n";
    O += "  uint64_t t0, t1; int taken;\n";
    O += "  (void)t0; (void)t1; (void)taken;\n";
    O += "  switch (ctx->pc) {\n";
    for (uint32_t Pc = 0; Pc < Enter.size(); ++Pc)
      if (Enter[Pc])
        O += "  case " + num(Pc) + "u: goto " + label(Pc) + ";\n";
    O += "  default: return AOT_BAIL;\n  }\n";
    for (PC = 0; PC < RB.Code.size(); ++PC)
      emitInstr(RB.Code[PC]);
    O += "}\n";
  }

  void emitInstr(const RInstr &I) {
    O += label(PC) + ": ;\n";
    O += "  steps += " + num(I.Cost) + "u;\n";
    switch (I.Code) {
    case ROp::Const:
      O += "  " + reg(I.D) + " = ctx->consts[" + num(I.A) + "u];\n";
      break;
    case ROp::Var:
      varref(I.S1, "t0");
      O += "  " + reg(I.D) + " = t0;\n";
      break;
    case ROp::Jump:
      O += "  goto " + label(I.A) + ";\n";
      break;
    case ROp::JumpIfFalse:
      O += "  t0 = " + reg(I.S1) + ";\n";
      O += "  if (!IS_BOOL(t0)) { " + sync() +
           "ctx->fail_nonbool(ctx, t0); return AOT_FAIL; }\n";
      O += "  if (!BOOLV(t0)) goto " + label(I.A) + ";\n";
      break;
    case ROp::Call:
      O += "  t0 = " + reg(I.S1) + ";\n  t1 = " + reg(I.S2) + ";\n";
      emitCall("t0", "t1", /*Tail=*/false, I.D);
      break;
    case ROp::TailCall:
      O += "  t0 = " + reg(I.S1) + ";\n  t1 = " + reg(I.S2) + ";\n";
      emitCall("t0", "t1", /*Tail=*/true, 0);
      break;
    case ROp::Ret:
      O += "  " + sync() + "\n";
      O += "  if (ctx->do_ret(ctx, " + reg(I.S1) +
           ")) return AOT_FAIL;\n";
      O += "  return AOT_TRANSFER;\n";
      break;
    case ROp::Prim1:
      emitPrim1(static_cast<Prim1Op>(I.A), I);
      break;
    case ROp::Prim2:
      O += "  t0 = " + reg(I.S1) + ";\n  t1 = " + reg(I.S2) + ";\n";
      prim2Into(static_cast<Prim2Op>(I.A), "t0", "t1", I.D);
      break;
    case ROp::VarVar:
      varref(I.S1, "t0");
      O += "  " + reg(I.D) + " = t0;\n";
      varref(I.S2, "t1");
      O += "  regs[base + " + num(I.D + 1) + "] = t1;\n";
      break;
    case ROp::VarPrim2:
      // Rhs variable check precedes the lhs register read (unfused order).
      varref(I.S2, "t1");
      O += "  t0 = " + reg(I.S1) + ";\n";
      prim2Into(static_cast<Prim2Op>(unpackPrimOp(I.B)), "t0", "t1", I.D);
      break;
    case ROp::ConstPrim2:
      O += "  t0 = " + reg(I.S1) + ";\n";
      O += "  t1 = ctx->consts[" + num(I.A) + "u];\n";
      prim2Into(static_cast<Prim2Op>(unpackPrimOp(I.B)), "t0", "t1", I.D);
      break;
    case ROp::VarConstPrim2:
      varref(I.S1, "t0");
      O += "  t1 = ctx->consts[" + num(I.A) + "u];\n";
      prim2Into(static_cast<Prim2Op>(unpackPrimOp(I.B)), "t0", "t1", I.D);
      break;
    case ROp::VarVarPrim2:
      varref(I.S1, "t0");
      varref(I.S2, "t1");
      prim2Into(static_cast<Prim2Op>(unpackPrimOp(I.B)), "t0", "t1", I.D);
      break;
    case ROp::Prim2JumpIfFalse: {
      O += "  t0 = " + reg(I.S1) + ";\n  t1 = " + reg(I.S2) + ";\n";
      Prim2Op Op = static_cast<Prim2Op>(unpackPrimOp(I.B));
      const char *C = cmpOp(Op);
      std::string Slow = "{ " + sync() + "if (ctx->prim2_branch(ctx, " +
                         num(static_cast<unsigned>(Op)) +
                         "u, t0, t1, &taken)) return AOT_FAIL;\n" +
                         "    if (taken) goto " + label(I.A) + "; }\n";
      if (C) {
        O += "  if (IS_IINT(t0) && IS_IINT(t1)) {\n";
        O += "    if (!(IINT(t0) " + std::string(C) + " IINT(t1))) goto " +
             label(I.A) + ";\n";
        O += "  } else " + Slow;
      } else {
        O += "  " + Slow;
      }
      break;
    }
    case ROp::VarCall:
      varref(I.S2, "t0");
      O += "  t1 = " + reg(I.S1) + ";\n";
      emitCall("t0", "t1", /*Tail=*/false, I.D);
      break;
    case ROp::VarTailCall:
      varref(I.S2, "t0");
      O += "  t1 = " + reg(I.S1) + ";\n";
      emitCall("t0", "t1", /*Tail=*/true, 0);
      break;
    default: // Unreachable: emittableBlock filtered these out.
      O += "  return AOT_BAIL;\n";
      break;
    }
  }

  void emitPrim1(Prim1Op Op, const RInstr &I) {
    O += "  t0 = " + reg(I.S1) + ";\n";
    std::string Slow = "  { " + sync() + "if (ctx->prim1(ctx, " +
                       num(static_cast<unsigned>(Op)) + "u, t0, " +
                       num(I.D) + "u)) return AOT_FAIL; }\n";
    switch (Op) {
    case Prim1Op::Neg:
      O += "  if (IS_IINT(t0)) {\n";
      O += "    int64_t z = (int64_t)(0 - (uint64_t)IINT(t0));\n";
      O += "    if (FITS(z)) " + reg(I.D) + " = MK_IINT(z);\n";
      O += "    else { " + sync() + reg(I.D) +
           " = ctx->box_int(ctx, z); }\n";
      O += "  } else\n" + Slow;
      return;
    case Prim1Op::Not:
      O += "  if (IS_BOOL(t0)) " + reg(I.D) + " = t0 ^ 0x100u;\n";
      O += "  else\n" + Slow;
      return;
    case Prim1Op::Null:
      O += "  if (IS_NIL(t0)) " + reg(I.D) + " = MK_BOOL(1);\n";
      O += "  else if (TAGOF(t0) == 1u) " + reg(I.D) + " = MK_BOOL(0);\n";
      O += "  else\n" + Slow;
      return;
    case Prim1Op::Hd:
      O += "  if (TAGOF(t0) == 1u) " + reg(I.D) + " = CELL_HD(PTROF(t0));\n";
      O += "  else\n" + Slow;
      return;
    case Prim1Op::Tl:
      O += "  if (TAGOF(t0) == 1u) " + reg(I.D) + " = CELL_TL(PTROF(t0));\n";
      O += "  else\n" + Slow;
      return;
    default:
      O += Slow;
      return;
    }
  }
};

} // namespace

std::string monsem::aotEmitSource(const RegProgram &RP) {
  return Emitter(RP).run();
}

//===----------------------------------------------------------------------===//
// Cache + loading
//===----------------------------------------------------------------------===//

AotLibrary::~AotLibrary() {
#ifndef _WIN32
  if (Handle)
    dlclose(Handle);
#endif
}

namespace {

std::string defaultCacheDir() {
  if (const char *Env = std::getenv("MONSEM_AOT_CACHE"))
    if (*Env)
      return Env;
  const char *Tmp = std::getenv("TMPDIR");
  std::string Base = Tmp && *Tmp ? Tmp : "/tmp";
#ifndef _WIN32
  return Base + "/monsem-aot-" + std::to_string(getuid());
#else
  return Base + "/monsem-aot";
#endif
}

std::string hex64(uint64_t V) {
  char Buf[17];
  std::snprintf(Buf, sizeof(Buf), "%016llx", (unsigned long long)V);
  return Buf;
}

/// Structural fingerprint over *every* block of the program, eligible or
/// not. The library's per-program tables (Fns / BlockCost / Enterable) are
/// indexed by block number across the whole program, but the emitted C
/// source only contains the eligible leaf blocks — so two different
/// programs can emit byte-identical source. The registry must therefore
/// never key those tables by the source hash alone; this hash
/// disambiguates them. (The .so file itself may still be shared: the
/// object code reads constants and registers through the ctx at run time.)
uint64_t structHash(const RegProgram &RP) {
  uint64_t H = 1469598103934665603ull;
  auto Mix = [&H](uint64_t V) {
    for (int I = 0; I < 8; ++I) {
      H ^= (V >> (I * 8)) & 0xff;
      H *= 1099511628211ull;
    }
  };
  Mix(RP.Blocks.size());
  for (const RegBlock &B : RP.Blocks) {
    Mix(B.Code.size());
    Mix(B.NumRegs);
    Mix(B.Leaf);
    // RInstr is two fully-initialized machine words (static_assert'd in
    // Bytecode.h), so hashing its raw bytes is deterministic.
    for (const RInstr &I : B.Code) {
      uint64_t W[2];
      std::memcpy(W, &I, sizeof(W));
      Mix(W[0]);
      Mix(W[1]);
    }
  }
  return H;
}

/// Loaded libraries, keyed by the cache fingerprint — repeated runs of the
/// same program (bench iterations, server sessions) dlopen once.
std::mutex RegistryMu;
std::map<uint64_t, std::shared_ptr<const AotLibrary>> &registry() {
  static std::map<uint64_t, std::shared_ptr<const AotLibrary>> R;
  return R;
}

} // namespace

std::shared_ptr<const AotLibrary>
monsem::aotLoad(const RegProgram &RP, const std::string &CacheDir,
                std::string *WhyNot) {
  auto No = [&](std::string Why) -> std::shared_ptr<const AotLibrary> {
    if (WhyNot)
      *WhyNot = std::move(Why);
    return nullptr;
  };
#if defined(MONSEM_VALUE_BOXED) || defined(_WIN32)
  (void)RP;
  (void)CacheDir;
  return No("the native tier requires the tagged Value representation");
#else
  const CompilerInfo &CI = compilerInfo();
  if (CI.Id.empty())
    return No("no C compiler available (checked MONSEM_AOT_CC, then 'cc')");

  std::string Source = aotEmitSource(RP);
  // The source text covers the eligible blocks + emitter version; fold in
  // the compiler identification so a toolchain change recompiles. This key
  // names the shared object on disk.
  uint64_t SoKey = fnv1aHash(Source) ^ fnv1aHash(CI.Id);
  // The registry entry additionally carries per-program tables indexed by
  // block number, so its key must distinguish whole programs, not just
  // their emitted subsets.
  uint64_t Key = SoKey ^ structHash(RP);

  std::lock_guard<std::mutex> Lock(RegistryMu);
  auto It = registry().find(Key);
  if (It != registry().end())
    return It->second;

  std::string Dir = CacheDir.empty() ? defaultCacheDir() : CacheDir;
  std::error_code EC;
  std::filesystem::create_directories(Dir, EC);
  if (EC)
    return No("cannot create AOT cache directory " + Dir + ": " +
              EC.message());
  std::string SoPath = Dir + "/monsem-aot-" + hex64(SoKey) + ".so";

  if (!std::filesystem::exists(SoPath)) {
    std::string Stem =
        Dir + "/monsem-aot-" + hex64(SoKey) + "." + std::to_string(getpid());
    std::string CPath = Stem + ".c", TmpSo = Stem + ".so";
    {
      std::ofstream CF(CPath, std::ios::trunc);
      CF << Source;
      if (!CF)
        return No("cannot write AOT source file " + CPath);
    }
    // -fexceptions: the arena-limit exception must unwind through native
    // frames back to the driver's catch. -w: generated code has unused
    // labels by construction.
    std::string Cmd = "'" + CI.Path + "' -O2 -fPIC -shared -fexceptions -w " +
                      "-o '" + TmpSo + "' '" + CPath + "' 2>/dev/null";
    int RC = std::system(Cmd.c_str());
    std::filesystem::remove(CPath, EC);
    if (RC != 0) {
      std::filesystem::remove(TmpSo, EC);
      return No("C compiler failed (exit " + std::to_string(RC) + ")");
    }
    std::filesystem::rename(TmpSo, SoPath, EC); // Atomic publish.
    if (EC) {
      std::filesystem::remove(TmpSo, EC);
      return No("cannot publish AOT shared object: " + EC.message());
    }
  }

  void *Handle = dlopen(SoPath.c_str(), RTLD_NOW | RTLD_LOCAL);
  if (!Handle) {
    const char *E = dlerror();
    return No(std::string("dlopen failed: ") + (E ? E : "unknown error"));
  }

  auto Lib = std::make_shared<AotLibrary>();
  Lib->Handle = Handle;
  Lib->Source = Source;
  Lib->SoPath = SoPath;
  Lib->Fns.assign(RP.Blocks.size(), nullptr);
  Lib->BlockCost.assign(RP.Blocks.size(), 0);
  Lib->Enterable.resize(RP.Blocks.size());
  for (uint32_t B = 0; B < RP.Blocks.size(); ++B) {
    if (!emittableBlock(RP.Blocks[B], B))
      continue;
    std::string Sym = "monsem_aot_b" + std::to_string(B);
    void *Fn = dlsym(Handle, Sym.c_str());
    if (!Fn)
      return No("dlsym failed for " + Sym + " (stale cache entry?)");
    Lib->Fns[B] = reinterpret_cast<AotBlockFn>(Fn);
    Lib->BlockCost[B] = blockCostBound(RP.Blocks[B]);
    Lib->Enterable[B] = enterablePcs(RP.Blocks[B]);
  }

  std::shared_ptr<const AotLibrary> Out = Lib;
  registry().emplace(Key, Out);
  return Out;
#endif
}
