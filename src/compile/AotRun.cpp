//===- compile/AotRun.cpp - Native-tier trampoline driver -----------------===//
///
/// \file
/// The `--backend=vm-aot` driver: a register interpreter (shared with
/// RegVM.cpp via RegVMBase) whose dispatch loop first offers each (block,
/// pc) to the compiled native function for that block. Native code runs
/// whole leaf blocks; the trampoline interprets everything else — non-leaf
/// blocks, probe windows, any pc the emitter did not mark enterable, and
/// every governor pause.
///
/// The governor invariant: a native block is only entered when the block's
/// conservative cost bound fits entirely below the governor's next pause
/// step, and emitted self-tail loops re-check the same bound per
/// iteration, yielding back when it no longer holds. Native code therefore
/// never crosses a pause boundary; every pause (fuel, deadline, periodic
/// checkpoint) fires in the interpreter at exactly the same step and
/// machine state as `vm-reg`, which is what keeps step counts, probe
/// streams, ResourceLimits outcomes, and checkpoint coordinates
/// byte-identical across the tiers.
///
/// Helper shims below re-enter RegVMBase for calls, returns, slow
/// primitive paths, and error construction, so the two tiers share one
/// implementation of everything observable.
///
//===----------------------------------------------------------------------===//

#include "compile/AotEmit.h"

#include "compile/RegVMImpl.h"

#include <cstring>

using namespace monsem;
using namespace monsem::regvm_impl;

#ifndef MONSEM_VALUE_BOXED

// The emitted C hard-codes these layouts (see kPrelude in AotEmit.cpp).
static_assert(sizeof(Value) == 8, "native tier requires one-word Values");
static_assert(offsetof(VMClosure, Block) == 0, "emitted CL_BLOCK offset");
static_assert(offsetof(VMClosure, Env) == 8, "emitted CL_ENV offset");
static_assert(offsetof(EnvNode, Val) == 8, "emitted ENV_VAL offset");
static_assert(offsetof(EnvNode, Parent) == 16, "emitted ENV_PARENT offset");
static_assert(offsetof(Cell, Head) == 0, "emitted CELL_HD offset");
static_assert(offsetof(Cell, Tail) == 8, "emitted CELL_TL offset");

namespace {

inline Value toValue(uint64_t Bits) {
  // One tagged word; the void* cast sidesteps -Wclass-memaccess (Value has
  // user-declared constructors but is still a single trivially-copyable
  // word in this configuration — the static_assert above pins the size).
  Value V;
  std::memcpy(static_cast<void *>(&V), &Bits, sizeof(V));
  return V;
}

/// The trampoline. Owns the AotCtx for the run; the static shims are the
/// function pointers emitted code calls back through.
class AotVM final : public RegVMBase {
public:
  AotVM(const RegProgram &RP, const AotLibrary &Lib, MonitorHooks *Hooks,
        RunOptions Opts)
      : RegVMBase(RP, Hooks, Opts), Lib(Lib) {}

  RunResult run();

private:
  const AotLibrary &Lib;

  RunResult runTrampoline(Governor &Gov);

  /// Every shim follows the same protocol: adopt the machine state the
  /// native caller synced into the ctx, perform the operation exactly as
  /// the interpreter's handler would, then publish the (possibly moved)
  /// state back into the ctx. Returns nonzero on failure so emitted code
  /// can return kAotFail.
  static AotVM &vm(AotCtx *C) { return *static_cast<AotVM *>(C->VM); }

  static void adopt(AotCtx *C) {
    AotVM &M = vm(C);
    M.Block = C->Block;
    M.PC = C->PC;
    M.Base = static_cast<uint32_t>(C->Base);
    M.Env = reinterpret_cast<EnvNode *>(C->Env);
    M.Steps = C->Steps;
  }

  static void publish(AotCtx *C) {
    AotVM &M = vm(C);
    C->Regs = reinterpret_cast<uint64_t *>(M.Regs.data());
    C->Base = M.Base;
    C->Block = M.Block;
    C->PC = M.PC;
    C->Env = reinterpret_cast<uint64_t>(M.Env);
    C->Steps = M.Steps;
  }

  static int applyShim(AotCtx *C, uint64_t Fn, uint64_t Arg, int Tail,
                       uint32_t Dst) {
    adopt(C);
    AotVM &M = vm(C);
    M.apply(toValue(Fn), toValue(Arg), Tail != 0,
            static_cast<uint16_t>(Dst));
    publish(C);
    return M.Failed ? 1 : 0;
  }

  static int prim1Shim(AotCtx *C, uint32_t Op, uint64_t V, uint32_t Dst) {
    adopt(C);
    AotVM &M = vm(C);
    PrimResult PR = applyPrim1(static_cast<Prim1Op>(Op), toValue(V), M.A);
    if (!PR.Ok) {
      M.fail(std::move(PR.Error));
      return 1;
    }
    M.Regs[C->Base + Dst] = PR.Val;
    return 0;
  }

  static int prim2Shim(AotCtx *C, uint32_t Op, uint64_t L, uint64_t R,
                       uint32_t Dst) {
    adopt(C);
    AotVM &M = vm(C);
    Value Lhs = toValue(L), Rhs = toValue(R), Out;
    Prim2Op Op2 = static_cast<Prim2Op>(Op);
    // Same shape as the interpreter's prim2Set: native code only comes
    // here off its inline fast path, but boxed integers still take the
    // shared integer arm so arena accounting matches.
    if (Lhs.is(ValueKind::Int) && Rhs.is(ValueKind::Int) &&
        intPrim2Fast(Op2, Lhs.asInt(), Rhs.asInt(), M.A, Out)) {
      M.Regs[C->Base + Dst] = Out;
      return 0;
    }
    PrimResult PR = applyPrim2(Op2, Lhs, Rhs, M.A);
    if (!PR.Ok) {
      M.fail(std::move(PR.Error));
      return 1;
    }
    M.Regs[C->Base + Dst] = PR.Val;
    return 0;
  }

  static int prim2BranchShim(AotCtx *C, uint32_t Op, uint64_t L, uint64_t R,
                             int *Taken) {
    adopt(C);
    AotVM &M = vm(C);
    Value Lhs = toValue(L), Rhs = toValue(R);
    Prim2Op Op2 = static_cast<Prim2Op>(Op);
    if (Lhs.is(ValueKind::Int) && Rhs.is(ValueKind::Int)) {
      Value Out;
      if (intPrim2Fast(Op2, Lhs.asInt(), Rhs.asInt(), M.A, Out) &&
          Out.is(ValueKind::Bool)) {
        *Taken = !Out.asBool();
        return 0;
      }
    }
    PrimResult PR = applyPrim2(Op2, Lhs, Rhs, M.A);
    if (!PR.Ok) {
      M.fail(std::move(PR.Error));
      return 1;
    }
    if (!PR.Val.is(ValueKind::Bool)) {
      M.fail("conditional scrutinee must be a boolean, found " +
             toDisplayString(PR.Val));
      return 1;
    }
    *Taken = !PR.Val.asBool();
    return 0;
  }

  static uint64_t boxIntShim(AotCtx *C, int64_t V) {
    adopt(C);
    AotVM &M = vm(C);
    Value Out = Value::mkInt(V, M.A);
    uint64_t Bits;
    std::memcpy(&Bits, &Out, sizeof(Bits));
    return Bits;
  }

  static int doRetShim(AotCtx *C, uint64_t V) {
    adopt(C);
    vm(C).doRet(toValue(V));
    publish(C);
    return 0;
  }

  static void failUninitShim(AotCtx *C, uint64_t EnvNodePtr) {
    adopt(C);
    EnvNode *N = reinterpret_cast<EnvNode *>(EnvNodePtr);
    vm(C).fail("letrec variable '" + std::string(N->Name.str()) +
               "' referenced before initialization");
  }

  static void failNonBoolShim(AotCtx *C, uint64_t V) {
    adopt(C);
    vm(C).fail("conditional scrutinee must be a boolean, found " +
               toDisplayString(toValue(V)));
  }
};

/// The interpreter loop of RegVM::runSwitch with a native-entry gate at
/// the top: when the pc is an enterable point of a compiled block and the
/// whole block fits under the governor's next pause, hand control to the
/// native function. Everything the native code cannot (or must not) do
/// comes back here.
RunResult AotVM::runTrampoline(Governor &Gov) {
  MONSEM_REGVM_LOCAL_STATE
  const AotBlockFn *Fns = Lib.fns().data();
  const uint64_t *BCost = Lib.blockCost().data();
  AotCtx Ctx;
  Ctx.Consts = reinterpret_cast<const uint64_t *>(Src.ConstPool.data());
  Ctx.VM = this;
  Ctx.Apply = &applyShim;
  Ctx.Prim1 = &prim1Shim;
  Ctx.Prim2 = &prim2Shim;
  Ctx.Prim2Branch = &prim2BranchShim;
  Ctx.BoxInt = &boxIntShim;
  Ctx.DoRet = &doRetShim;
  Ctx.FailUninit = &failUninitShim;
  Ctx.FailNonBool = &failNonBoolShim;
  while (true) {
    if (AotBlockFn Fn = Fns[Block]) {
      if (Steps + BCost[Block] < Gov.nextPause() &&
          Lib.enterable(Block, PC)) {
        this->Block = Block;
        this->PC = PC;
        this->Base = Base;
        this->Env = Env;
        this->Steps = Steps;
        Ctx.Regs = reinterpret_cast<uint64_t *>(Rg);
        Ctx.Base = Base;
        Ctx.Steps = Steps;
        Ctx.NextPause = Gov.nextPause();
        Ctx.Env = reinterpret_cast<uint64_t>(Env);
        Ctx.Block = Block;
        Ctx.PC = PC;
        uint64_t St = Fn(&Ctx);
        Block = Ctx.Block;
        PC = Ctx.PC;
        Base = static_cast<uint32_t>(Ctx.Base);
        Env = reinterpret_cast<EnvNode *>(Ctx.Env);
        Steps = Ctx.Steps;
        this->Steps = Steps;
        Rg = Regs.data();
        if (St == kAotFail || Failed)
          return errorResult();
        if (St != kAotBail)
          continue; // Transfer or yield: re-gate at the new (block, pc).
      }
    }
    const RInstr &I = Blocks[Block].Code[PC++];
    Steps += I.Cost;
    this->Steps = Steps;
    if (Steps >= Gov.nextPause()) {
      this->Block = Block;
      this->PC = PC;
      this->Base = Base;
      this->Env = Env;
      Outcome O = Gov.pause(Steps, A.bytesAllocated(), Frames.size());
      if (O != Outcome::Ok) {
        if (Opts.CheckpointOnStop)
          emitCheckpoint(I);
        return stopResult(O);
      }
      if (Gov.takeCheckpointDue())
        emitCheckpoint(I);
    }
    switch (I.Code) {
#define VM_CASE(Name) case ROp::Name:
#define VM_NEXT() break
#include "compile/RegVMDispatch.inc"
#undef VM_CASE
#undef VM_NEXT
    }
    if (Failed)
      return errorResult();
  }
}

RunResult AotVM::run() {
  if (Opts.ResumeFrom) {
    std::string Err;
    if (!restoreCheckpoint(*Opts.ResumeFrom, Err)) {
      RunResult Res;
      Res.setOutcome(Outcome::Error);
      Res.Error = "cannot resume from checkpoint: " + Err;
      return Res;
    }
    StepBase = Steps = Opts.ResumeFrom->header().SavedSteps;
  }
  Governor Gov(Opts.Limits, Opts.MaxSteps, StepBase,
               Opts.CheckpointSink ? Opts.CheckpointEveryNSteps : 0);
  A.setByteLimit(Gov.arenaByteCap());
  if (!Opts.ResumeFrom) {
    Frames.push_back(RFrame{
        0, static_cast<uint32_t>(RP.Blocks[0].Code.size() - 1), 0, 0,
        nullptr});
    ensureRegs(RP.Blocks[0].NumRegs);
  }
  try {
    return runTrampoline(Gov);
  } catch (const MonitorAbort &E) {
    fail(E.what());
  } catch (const DurabilityAbort &E) {
    fail(E.what());
  } catch (const ArenaLimitExceeded &) {
    return stopResult(Outcome::MemoryExceeded);
  }
  return errorResult();
}

} // namespace

RunResult monsem::runAotProgram(const RegProgram &RP, const AotLibrary &Lib,
                                MonitorHooks *Hooks, RunOptions Opts) {
  AotVM M(RP, Lib, Hooks, Opts);
  return M.run();
}

#else // MONSEM_VALUE_BOXED

// The native tier is emitted against the tagged one-word Value encoding;
// boxed builds never load a library (aotLoad refuses), so the driver just
// degrades to the register interpreter.
RunResult monsem::runAotProgram(const RegProgram &RP, const AotLibrary &,
                                MonitorHooks *Hooks, RunOptions Opts) {
  return runRegisterProgram(RP, Hooks, Opts);
}

#endif // MONSEM_VALUE_BOXED
