//===- compile/Bytecode.h - Compiled (instrumented) programs ----*- C++ -*-===//
///
/// \file
/// The paper's second level of specialization (Section 9.1, Fig. 10):
/// specializing the (monitored) interpreter with respect to a source
/// program yields an *instrumented program* — code in which all static
/// computation (syntax dispatch, environment shape, which monitor probes
/// fire where) has been performed once, and only the dynamic computation
/// (values and monitor-state updates) remains.
///
/// Here that residual program is bytecode: one pass over the annotated AST
/// emits straight-line instructions; `MonPre`/`MonPost` instructions appear
/// exactly at annotation sites. Compiling with instrumentation disabled
/// yields the residual of specializing the *standard* interpreter — the
/// baseline "compiled program".
///
/// Variables are resolved to lexical depths at compile time; the run-time
/// environment nevertheless keeps binder names so monitoring functions can
/// perform rho(x) lookups (the tracer's ToStr(rho(x))), exactly as the
/// semantics prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_COMPILE_BYTECODE_H
#define MONSEM_COMPILE_BYTECODE_H

#include "semantics/Value.h"
#include "syntax/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace monsem {

enum class Op : uint8_t {
  Const,       ///< push ConstPool[A]
  Var,         ///< push value at env depth A (error if uninitialized)
  MkClosure,   ///< push closure over Blocks[A] and the current env
  Jump,        ///< pc = A
  JumpIfFalse, ///< pop condition; pc = A when false (error if non-bool)
  Call,        ///< pop fn, pop arg; invoke
  TailCall,    ///< like Call but reuses the current frame
  Ret,         ///< return the top of stack to the caller
  Prim1,       ///< pop v; push prim1<A>(v)
  Prim2,       ///< pop rhs, pop lhs; push prim2<A>(lhs, rhs)
  PushRecEnv,  ///< extend env with Names[A] bound to <uninitialized>
  PatchRec,    ///< pop v; patch the innermost env node (letrec knot)
  PopEnv,      ///< drop A innermost env nodes
  MonPre,      ///< monitoring probe updPre for Annots[A]
  MonPost,     ///< monitoring probe updPost for Annots[A] (peeks the top)
  Halt,        ///< stop; top of stack is the answer
};

struct Instr {
  Op Code;
  uint32_t A = 0;
};

/// One compiled lambda (or the program entry).
struct CodeBlock {
  Symbol Param;             ///< Binder for Call (empty for the entry block).
  std::vector<Instr> Code;
  std::string Name;         ///< Best-effort name for disassembly.
};

/// A monitoring probe site: the annotation and the annotated expression
/// (needed to build MonitorEvents at run time).
struct ProbeSite {
  const Annotation *Ann;
  const Expr *Inner;
};

struct CompiledProgram {
  std::vector<CodeBlock> Blocks; ///< Blocks[0] is the entry.
  /// Constant pool. String constants reference the AstContext that owns the
  /// source AST, which must outlive the compiled program.
  std::vector<Value> ConstPool;
  /// Backing store for constants that do not fit a Value immediate (int64s
  /// outside the 48-bit inline range). Lives as long as the program.
  Arena ConstArena;
  std::vector<Symbol> Names;     ///< Binder names for PushRecEnv.
  std::vector<ProbeSite> Probes;
  bool Instrumented = false;

  size_t numInstructions() const {
    size_t N = 0;
    for (const CodeBlock &B : Blocks)
      N += B.Code.size();
    return N;
  }

  /// Human-readable disassembly (tests, debugging).
  std::string disassemble() const;
};

struct VMClosure {
  uint32_t Block;
  EnvNode *Env;
};

} // namespace monsem

#endif // MONSEM_COMPILE_BYTECODE_H
