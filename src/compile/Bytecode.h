//===- compile/Bytecode.h - Compiled (instrumented) programs ----*- C++ -*-===//
///
/// \file
/// The paper's second level of specialization (Section 9.1, Fig. 10):
/// specializing the (monitored) interpreter with respect to a source
/// program yields an *instrumented program* — code in which all static
/// computation (syntax dispatch, environment shape, which monitor probes
/// fire where) has been performed once, and only the dynamic computation
/// (values and monitor-state updates) remains.
///
/// Here that residual program is bytecode: one pass over the annotated AST
/// emits straight-line instructions; `MonPre`/`MonPost` instructions appear
/// exactly at annotation sites. Compiling with instrumentation disabled
/// yields the residual of specializing the *standard* interpreter — the
/// baseline "compiled program".
///
/// Variables are resolved to lexical depths at compile time; the run-time
/// environment nevertheless keeps binder names so monitoring functions can
/// perform rho(x) lookups (the tracer's ToStr(rho(x))), exactly as the
/// semantics prescribes.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_COMPILE_BYTECODE_H
#define MONSEM_COMPILE_BYTECODE_H

#include "semantics/Value.h"
#include "syntax/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace monsem {

enum class Op : uint8_t {
  Const,       ///< push ConstPool[A]
  Var,         ///< push value at env depth A (error if uninitialized)
  MkClosure,   ///< push closure over Blocks[A] and the current env
  Jump,        ///< pc = A
  JumpIfFalse, ///< pop condition; pc = A when false (error if non-bool)
  Call,        ///< pop fn, pop arg; invoke
  TailCall,    ///< like Call but reuses the current frame
  Ret,         ///< return the top of stack to the caller
  Prim1,       ///< pop v; push prim1<A>(v)
  Prim2,       ///< pop rhs, pop lhs; push prim2<A>(lhs, rhs)
  PushRecEnv,  ///< extend env with Names[A] bound to <uninitialized>
  PatchRec,    ///< pop v; patch the innermost env node (letrec knot)
  PopEnv,      ///< drop A innermost env nodes
  MonPre,      ///< monitoring probe updPre for Annots[A]
  MonPost,     ///< monitoring probe updPost for Annots[A] (peeks the top)
  Halt,        ///< stop; top of stack is the answer

  // Fused superinstructions. Each replaces the adjacent pair (or triple)
  // named in its comment; the peephole pass (`fuseSuperinstructions`)
  // produces them, the compiler never emits them directly. Every fused
  // instruction performs its constituents' checks in the original order,
  // so error messages and failure points are bit-identical to the unfused
  // program. None of them may span a MonPre/MonPost probe: the fusion
  // pass has no rule mentioning probes, so annotated sites keep the
  // paper-exact instruction sequence (Definition 7.1 obliviousness).
  VarVar,        ///< Var A; Var B — push env[A] then env[B]
  VarPrim2,      ///< Var A; Prim2 — pop lhs; push prim2<B.op>(lhs, env[A])
  ConstPrim2,    ///< Const A; Prim2 — pop lhs; push prim2<B.op>(lhs, pool[A])
  VarConstPrim2, ///< Var B.depth; Const A; Prim2 — push prim2<B.op>(env[B.depth], pool[A])
  VarVarPrim2,   ///< Var B.depth; Var A; Prim2 — push prim2<B.op>(env[B.depth], env[A])
  Prim2JumpIfFalse, ///< Prim2 B.op; JumpIfFalse A — pop rhs, lhs; branch on the result
  VarCall,       ///< Var A; Call — fn = env[A], arg = pop; invoke
  VarTailCall,   ///< Var A; TailCall — fn = env[A], arg = pop; tail-invoke
};

/// Number of opcodes, fused included. Dispatch tables and the
/// disassembler's switches static_assert against this so a new opcode
/// cannot be added without updating every consumer.
inline constexpr unsigned kNumOps = static_cast<unsigned>(Op::VarTailCall) + 1;

/// One instruction. Still a single 8-byte word after fusion support:
///  - `Cost` is the number of *source-machine steps* this instruction
///    represents (1 for core ops, the sum of its constituents for fused
///    ops). The VM advances its step counter by Cost, so monitored step
///    counts, governor fuel accounting, and bench step-parity assertions
///    are identical fused vs. unfused at every instruction boundary.
///  - `B` is the secondary operand of fused instructions: the packed
///    prim2 op (low byte) and variable depth (high byte) for the
///    *Prim2 family, or the second variable depth for VarVar.
struct Instr {
  Op Code;
  uint8_t Cost = 1;
  uint16_t B = 0;
  uint32_t A = 0;
};
static_assert(sizeof(Instr) == 8, "Instr must stay one machine word");

/// Operand packing for the fused *Prim2 instructions: prim2 opcode in the
/// low byte of B, variable depth in the high byte.
inline constexpr uint32_t kMaxPackedDepth = 0xFF;
/// VarVar packs its second depth into B whole.
inline constexpr uint32_t kMaxSecondaryVar = 0xFFFF;

inline uint16_t packOpDepth(uint8_t PrimOp, uint32_t Depth) {
  return static_cast<uint16_t>(PrimOp | (Depth << 8));
}
inline uint8_t unpackPrimOp(uint16_t B) { return static_cast<uint8_t>(B); }
inline uint32_t unpackDepth(uint16_t B) { return B >> 8; }

//===----------------------------------------------------------------------===//
// Register tier
//===----------------------------------------------------------------------===//

struct CompiledProgram;

/// Three-address register opcodes. The register tier is a 1:1 re-encoding
/// of the *fused* stack bytecode: `lowerToRegisters` maps every stack
/// instruction to exactly one register instruction at the same (block, pc)
/// coordinate with the same Cost, so step counts, governor pause points,
/// probe positions, and checkpoint coordinates are identical across tiers
/// — a checkpoint taken on either tier resumes on the other.
///
/// The enumerators mirror `Op` name for name and value for value (the
/// static_asserts below pin the correspondence); what changes is the
/// operand encoding: pushes and pops become explicit register indices
/// computed by the lowering pass from the static stack height at each pc.
enum class ROp : uint8_t {
  Const,       ///< r[D] = ConstPool[A]
  Var,         ///< r[D] = varref S1 (register or environment, see kParamReg)
  MkClosure,   ///< r[D] = closure over Blocks[A] and the current env
  Jump,        ///< pc = A
  JumpIfFalse, ///< pc = A when r[S1] is false (error if non-bool)
  Call,        ///< fn = r[S1], arg = r[S2]; result lands in r[D]
  TailCall,    ///< like Call but reuses the current register window
  Ret,         ///< return r[S1] to the caller's destination register
  Prim1,       ///< r[D] = prim1<A>(r[S1])
  Prim2,       ///< r[D] = prim2<A>(r[S1], r[S2])
  PushRecEnv,  ///< extend env with Names[A] bound to <uninitialized>
  PatchRec,    ///< patch the innermost env node with r[S1]
  PopEnv,      ///< drop A innermost env nodes
  MonPre,      ///< monitoring probe updPre for Probes[A]
  MonPost,     ///< monitoring probe updPost for Probes[A] (peeks r[S1])
  Halt,        ///< stop; r[S1] is the answer

  // Register forms of the fused superinstructions (same Cost accounting,
  // same constituent check order).
  VarVar,           ///< r[D] = varref S1; r[D+1] = varref S2
  VarPrim2,         ///< r[D] = prim2<B.op>(r[S1], varref S2)
  ConstPrim2,       ///< r[D] = prim2<B.op>(r[S1], pool[A])
  VarConstPrim2,    ///< r[D] = prim2<B.op>(varref S1, pool[A])
  VarVarPrim2,      ///< r[D] = prim2<B.op>(varref S1, varref S2)
  Prim2JumpIfFalse, ///< pc = A unless prim2<B.op>(r[S1], r[S2])
  VarCall,          ///< fn = varref S2, arg = r[S1]; result in r[D]
  VarTailCall,      ///< fn = varref S2, arg = r[S1]; tail-invoke
};

inline constexpr unsigned kNumROps =
    static_cast<unsigned>(ROp::VarTailCall) + 1;
static_assert(kNumROps == kNumOps,
              "the register tier mirrors the stack opcode set 1:1");
static_assert(static_cast<unsigned>(ROp::Halt) ==
                      static_cast<unsigned>(Op::Halt) &&
                  static_cast<unsigned>(ROp::VarTailCall) ==
                      static_cast<unsigned>(Op::VarTailCall),
              "ROp enumerators must keep Op's order");

/// A variable reference operand (`varref` above): either an environment
/// depth, or — in leaf blocks, where the parameter lives in register 0
/// instead of an environment node — the sentinel kParamReg naming that
/// register. Parameters are never uninitialized, so the register path
/// skips the letrec before-initialization check the env path performs.
inline constexpr uint16_t kParamReg = 0xFFFF;

/// Entry stack heights are recorded per pc for checkpoint spill/restore;
/// statically unreachable instructions (e.g. the join jump after a taken
/// tail call) carry this sentinel.
inline constexpr uint16_t kDeadHeight = 0xFFFF;

/// One register instruction: 16 bytes, operands fully explicit so the
/// interpreter never consults the height table.
///  - `D` is the destination register, window-relative.
///  - `S1`/`S2` are source registers, or variable references where the
///    opcode says `varref`.
///  - `A`/`B` keep their stack-encoding meaning (constant index, block
///    index, jump target, packed prim2 op, ...).
///  - `Cost` is copied from the stack instruction: source-machine steps.
struct RInstr {
  ROp Code;
  uint8_t Cost = 1;
  uint16_t D = 0;
  uint32_t A = 0;
  uint16_t S1 = 0;
  uint16_t S2 = 0;
  uint16_t B = 0;
  uint16_t Pad = 0;
};
static_assert(sizeof(RInstr) == 16, "RInstr must stay two machine words");

/// One lowered block. `Leaf` blocks (no MkClosure, no PushRecEnv, no
/// probes; never the entry block) keep their parameter in register 0 and
/// allocate no environment node per call — the environment chain is
/// materialized on demand only at checkpoint safepoints. Non-leaf blocks
/// maintain the same environment chain as the stack VM, so probes observe
/// the paper's environment unchanged.
struct RegBlock {
  std::vector<RInstr> Code;
  /// Entry stack height per pc (kDeadHeight for unreachable pcs). Used by
  /// checkpoint spill/restore to map register windows to the canonical
  /// flat operand stack and back.
  std::vector<uint16_t> Height;
  /// Registers per frame window: locals (1 in leaf blocks, 0 otherwise)
  /// plus the block's maximal temporary count.
  uint32_t NumRegs = 0;
  uint32_t TempBase = 0; ///< First temporary register (1 in leaf blocks).
  bool Leaf = false;
  /// A *currier*: a non-entry block whose whole body is `MkClosure k; Ret`
  /// — the shape curried definitions (`\x. \y. ...`) lower to for every
  /// outer parameter. Calls into a currier are collapsed by the register
  /// tier's apply path: instead of pushing a register window, dispatching
  /// two instructions, and popping it, the caller allocates the same env
  /// node + closure pair inline and charges CurrierCost steps. Allocation
  /// count, probe streams (curriers have none by construction), and total
  /// step counts are unchanged; only the *interior* pause coordinate moves
  /// to the caller's next instruction boundary (the fused-superinstruction
  /// precedent). The block body is kept intact so checkpoints taken inside
  /// it by older producers still resume.
  bool Currier = false;
  uint32_t CurrierInner = 0; ///< Block index the MkClosure captures.
  uint8_t CurrierCost = 0;   ///< MkClosure.Cost + Ret.Cost.
  Symbol Param;     ///< Copied from the source block (checkpoint spill).
  std::string Name; ///< Copied from the source block (disassembly).
};

/// The lowered program. Non-owning view over the source CompiledProgram
/// (constants, names, probes, disassembly fingerprint), which must outlive
/// it.
struct RegProgram {
  const CompiledProgram *Src = nullptr;
  std::vector<RegBlock> Blocks;

  /// Human-readable register-form disassembly (tests, debugging).
  std::string disassemble() const;
};

/// One compiled lambda (or the program entry).
struct CodeBlock {
  Symbol Param;             ///< Binder for Call (empty for the entry block).
  std::vector<Instr> Code;
  std::string Name;         ///< Best-effort name for disassembly.
  /// True when a self-tail-call into this block may overwrite the caller's
  /// environment node in place: the block contains no MkClosure (nothing
  /// can capture the entry node mid-iteration) and no MonPre/MonPost
  /// (annotated blocks keep paper-exact allocation so probe-observed
  /// environments are never mutated retroactively). Computed by
  /// `markReusableFrames` after fusion.
  bool ReusableFrame = false;
};

/// A monitoring probe site: the annotation and the annotated expression
/// (needed to build MonitorEvents at run time).
struct ProbeSite {
  const Annotation *Ann;
  const Expr *Inner;
};

struct CompiledProgram {
  std::vector<CodeBlock> Blocks; ///< Blocks[0] is the entry.
  /// Constant pool. String constants reference the AstContext that owns the
  /// source AST, which must outlive the compiled program.
  std::vector<Value> ConstPool;
  /// Backing store for constants that do not fit a Value immediate (int64s
  /// outside the 48-bit inline range). Lives as long as the program.
  Arena ConstArena;
  std::vector<Symbol> Names;     ///< Binder names for PushRecEnv.
  std::vector<ProbeSite> Probes;
  bool Instrumented = false;

  size_t numInstructions() const {
    size_t N = 0;
    for (const CodeBlock &B : Blocks)
      N += B.Code.size();
    return N;
  }

  /// Human-readable disassembly (tests, debugging).
  std::string disassemble() const;
};

// VMClosure (the bytecode closure these programs allocate) is defined in
// semantics/Value.h alongside the other heap object layouts.

} // namespace monsem

#endif // MONSEM_COMPILE_BYTECODE_H
