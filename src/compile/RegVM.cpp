//===- compile/RegVM.cpp - Register-window virtual machine ----------------===//
///
/// \file
/// Executes register-tier programs (see RegLower.cpp). The machine keeps
/// one contiguous Value array partitioned into per-call register windows;
/// leaf calls write the argument to register 0 of a fresh window instead
/// of allocating an environment node. Everything observable is identical
/// to the stack VM: step counts (Cost accounting at the same pcs), probe
/// event streams (probes run only in blocks that keep the full environment
/// chain), governor pause points, and the MSCK checkpoint format — a
/// checkpoint spills register windows back to the canonical flat operand
/// stack + environment form, so checkpoints are portable across tiers in
/// both directions.
///
//===----------------------------------------------------------------------===//

#include "compile/RegVMImpl.h"

using namespace monsem;
using namespace monsem::regvm_impl;

namespace {

/// The pure register-tier interpreter. Dispatch loops live here; all
/// machine state and the call/checkpoint protocol are inherited from
/// RegVMBase (shared with the AOT trampoline in AotRun.cpp).
class RegVM final : public RegVMBase {
public:
  using RegVMBase::RegVMBase;

  RunResult run();

private:
  RunResult runSwitch(Governor &Gov);
#if MONSEM_VM_HAS_CGOTO
  RunResult runThreaded(Governor &Gov);
#endif
};

/// Portable dispatch loop; Cost accounting and governor behavior are the
/// stack VM's, down to checkpoint rollback of the fetched instruction.
RunResult RegVM::runSwitch(Governor &Gov) {
  MONSEM_REGVM_LOCAL_STATE
  while (true) {
    const RInstr &I = Blocks[Block].Code[PC++];
    Steps += I.Cost;
    this->Steps = Steps;
    if (Steps >= Gov.nextPause()) {
      this->Block = Block;
      this->PC = PC;
      this->Base = Base;
      this->Env = Env;
      Outcome O = Gov.pause(Steps, A.bytesAllocated(), Frames.size());
      if (O != Outcome::Ok) {
        if (Opts.CheckpointOnStop)
          emitCheckpoint(I);
        return stopResult(O);
      }
      if (Gov.takeCheckpointDue())
        emitCheckpoint(I);
    }
    switch (I.Code) {
#define VM_CASE(Name) case ROp::Name:
#define VM_NEXT() break
#include "compile/RegVMDispatch.inc"
#undef VM_CASE
#undef VM_NEXT
    }
    if (Failed)
      return errorResult();
  }
}

#if MONSEM_VM_HAS_CGOTO
/// Token-threaded dispatch, mirroring the stack VM's.
RunResult RegVM::runThreaded(Governor &Gov) {
  static const void *Tbl[] = {
      &&L_Const,      &&L_Var,           &&L_MkClosure,
      &&L_Jump,       &&L_JumpIfFalse,   &&L_Call,
      &&L_TailCall,   &&L_Ret,           &&L_Prim1,
      &&L_Prim2,      &&L_PushRecEnv,    &&L_PatchRec,
      &&L_PopEnv,     &&L_MonPre,        &&L_MonPost,
      &&L_Halt,       &&L_VarVar,        &&L_VarPrim2,
      &&L_ConstPrim2, &&L_VarConstPrim2, &&L_VarVarPrim2,
      &&L_Prim2JumpIfFalse, &&L_VarCall, &&L_VarTailCall,
  };
  static_assert(sizeof(Tbl) / sizeof(Tbl[0]) == kNumROps,
                "label table must cover every register opcode in enum order");
  MONSEM_REGVM_LOCAL_STATE
  // Declared before the first goto target so no jump skips initialization.
  RInstr I;
  goto Dispatch;
Pause: {
  this->Block = Block;
  this->PC = PC;
  this->Base = Base;
  this->Env = Env;
  Outcome O = Gov.pause(Steps, A.bytesAllocated(), Frames.size());
  if (O != Outcome::Ok) {
    if (Opts.CheckpointOnStop)
      emitCheckpoint(I);
    return stopResult(O);
  }
  if (Gov.takeCheckpointDue())
    emitCheckpoint(I);
  goto *Tbl[static_cast<unsigned>(I.Code)];
}
Dispatch:
  I = Blocks[Block].Code[PC++];
  Steps += I.Cost;
  this->Steps = Steps;
  if (Steps >= Gov.nextPause())
    goto Pause;
  goto *Tbl[static_cast<unsigned>(I.Code)];
// Unlike the stack VM, VM_NEXT replicates the fetch into every handler
// instead of jumping back to a single dispatch point: each opcode gets its
// own indirect branch, so the BTB can correlate successor opcodes per
// handler rather than funneling every prediction through one slot.
#define VM_CASE(Name) L_##Name:
#define VM_NEXT()                                                              \
  do {                                                                         \
    if (Failed)                                                                \
      return errorResult();                                                    \
    I = Blocks[Block].Code[PC++];                                              \
    Steps += I.Cost;                                                           \
    this->Steps = Steps;                                                       \
    if (Steps >= Gov.nextPause())                                              \
      goto Pause;                                                              \
    goto *Tbl[static_cast<unsigned>(I.Code)];                                  \
  } while (0)
#include "compile/RegVMDispatch.inc"
#undef VM_CASE
#undef VM_NEXT
}
#endif // MONSEM_VM_HAS_CGOTO

RunResult RegVM::run() {
  if (Opts.ResumeFrom) {
    std::string Err;
    if (!restoreCheckpoint(*Opts.ResumeFrom, Err)) {
      RunResult Res;
      Res.setOutcome(Outcome::Error);
      Res.Error = "cannot resume from checkpoint: " + Err;
      return Res;
    }
    StepBase = Steps = Opts.ResumeFrom->header().SavedSteps;
  }
  Governor Gov(Opts.Limits, Opts.MaxSteps, StepBase,
               Opts.CheckpointSink ? Opts.CheckpointEveryNSteps : 0);
  A.setByteLimit(Gov.arenaByteCap());
  if (!Opts.ResumeFrom) {
    // Sentinel frame: a top-level tail call returns to the entry block's
    // Halt, whose operand is register 0 of the entry window.
    Frames.push_back(RFrame{
        0, static_cast<uint32_t>(RP.Blocks[0].Code.size() - 1), 0, 0,
        nullptr});
    ensureRegs(RP.Blocks[0].NumRegs);
  }
  try {
#if MONSEM_VM_HAS_CGOTO
    if (Opts.VMThreaded)
      return runThreaded(Gov);
#endif
    return runSwitch(Gov);
  } catch (const MonitorAbort &E) {
    fail(E.what());
  } catch (const DurabilityAbort &E) {
    fail(E.what());
  } catch (const ArenaLimitExceeded &) {
    return stopResult(Outcome::MemoryExceeded);
  }
  return errorResult();
}

} // namespace

RunResult monsem::runRegisterProgram(const RegProgram &RP,
                                     MonitorHooks *Hooks, RunOptions Opts) {
  RegVM M(RP, Hooks, Opts);
  return M.run();
}
