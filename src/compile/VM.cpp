//===- compile/VM.cpp ------------------------------------------------------===//

#include "compile/VM.h"

#include "compile/AotEmit.h"
#include "compile/Compiler.h"
#include "semantics/Primitives.h"
#include "semantics/ValueGraph.h"
#include "support/Checkpoint.h"

#include <deque>

using namespace monsem;

/// Computed-goto dispatch is a GNU extension; the build opts in with
/// -DMONSEM_VM_THREADED (default ON in CMake) and the compiler must
/// support it. Otherwise only the portable switch loop is compiled and
/// RunOptions::VMThreaded is ignored.
#if defined(MONSEM_VM_THREADED) && (defined(__GNUC__) || defined(__clang__))
#define MONSEM_VM_HAS_CGOTO 1
#else
#define MONSEM_VM_HAS_CGOTO 0
#endif

bool monsem::vmThreadedDispatchAvailable() { return MONSEM_VM_HAS_CGOTO; }

namespace {

struct CallFrame {
  uint32_t Block;
  uint32_t PC;
  EnvNode *Env;
};

class VM {
public:
  VM(const CompiledProgram &P, MonitorHooks *Hooks, RunOptions Opts)
      : P(P), Hooks(Hooks), Opts(Opts) {}

  RunResult run();

private:
  const CompiledProgram &P;
  MonitorHooks *Hooks;
  RunOptions Opts;
  Arena A;

  std::vector<Value> Stack;
  std::vector<CallFrame> Frames;
  uint32_t Block = 0;
  uint32_t PC = 0;
  EnvNode *Env = nullptr;
  uint64_t Steps = 0;
  bool Failed = false;
  std::string Error;

  // Checkpoint/resume support.
  uint64_t StepBase = 0; ///< Steps completed before this process (resume).
  uint64_t Fp = 0;
  bool FpComputed = false;
  /// Storage for strings revived from a checkpoint; Str values on the
  /// stack/heap point into it, so it lives as long as the VM.
  std::deque<std::string> RevivedStrings;

  RunResult runSwitch(Governor &Gov);
#if MONSEM_VM_HAS_CGOTO
  RunResult runThreaded(Governor &Gov);
#endif

  /// Structural fingerprint of the compiled program: a hash of the
  /// disassembly, which is pointer-free (block indices, opcode names,
  /// rendered constants, annotation text) and thus stable across
  /// processes. Resume refuses a mismatched program.
  uint64_t fingerprint() {
    if (!FpComputed) {
      Fp = fnv1aHash(P.disassemble());
      FpComputed = true;
    }
    return Fp;
  }

  /// Serializes the full VM state at an instruction boundary. \p I is the
  /// fetched-but-unexecuted instruction: PC already advanced past it and
  /// Steps already includes its Cost, so the checkpoint rolls both back
  /// and a resumed run re-executes it. Fused superinstructions are never
  /// in flight at a boundary, so step counts stay identical to an
  /// uninterrupted (or unfused) run.
  Checkpoint makeCheckpoint(const Instr &I) {
    CheckpointHeader H;
    H.Backend = CheckpointBackend::VM;
    H.Strategy = static_cast<uint8_t>(Strategy::Strict);
    H.Lexical = false;
    H.Monitored = Hooks != nullptr;
#ifdef MONSEM_VALUE_BOXED
    H.BoxedValues = true;
#endif
    H.ProgramFingerprint = fingerprint();
    H.SavedSteps = Steps - I.Cost;
    Serializer S = Checkpoint::begin(H);
    if (Hooks)
      Hooks->saveMonitorSection(S);
    else
      S.writeU32(0);
    // The VM heap never references syntax (closures hold block indices),
    // so the writer needs no ExprTable or shape table.
    ValueGraphWriter W(nullptr, nullptr, false);
    Serializer &RS = W.roots();
    RS.writeU32(Block);
    RS.writeU32(PC - 1); // The instruction that did not execute.
    W.writeEnvNodeRef(Env);
    RS.writeU32(static_cast<uint32_t>(Stack.size()));
    for (Value V : Stack)
      W.writeValue(V);
    RS.writeU32(static_cast<uint32_t>(Frames.size()));
    for (const CallFrame &F : Frames) {
      RS.writeU32(F.Block);
      RS.writeU32(F.PC);
      W.writeEnvNodeRef(F.Env);
    }
    if (!W.ok())
      return Checkpoint();
    W.finish(S);
    return Checkpoint::seal(std::move(S));
  }

  void emitCheckpoint(const Instr &I) {
    if (!Opts.CheckpointSink)
      return;
    if (Opts.Durability && Opts.Durability->degraded("checkpoint"))
      return;
    Checkpoint CK = makeCheckpoint(I);
    if (CK.valid())
      Opts.CheckpointSink(CK);
  }

  bool validCodeRef(uint32_t B, uint32_t Pc) const {
    return B < P.Blocks.size() && Pc < P.Blocks[B].Code.size();
  }

  bool restoreCheckpoint(const Checkpoint &CK, std::string &Err) {
    const CheckpointHeader &H = CK.header();
    if (H.Backend != CheckpointBackend::VM) {
      Err = "checkpoint was taken by the CEK machine, not the VM";
      return false;
    }
    if (H.Monitored != (Hooks != nullptr)) {
      Err = H.Monitored
                ? "checkpoint was taken by a monitored run; attach the "
                  "same cascade to resume"
                : "checkpoint was taken by an unmonitored run";
      return false;
    }
    if (H.ProgramFingerprint != fingerprint()) {
      Err = "checkpoint was taken for a different program (fingerprint "
            "mismatch)";
      return false;
    }
    Deserializer D = CK.payload();
    if (Hooks)
      Hooks->loadMonitorSection(D);
    else if (D.readU32() != 0)
      D.fail("checkpoint has monitor states but this run is unmonitored");
    if (!D.ok()) {
      Err = D.error();
      return false;
    }
    ValueGraphReader Rd(D, A, nullptr, nullptr, 0);
    if (!Rd.readObjects()) {
      Err = D.error();
      return false;
    }
    Block = D.readU32();
    PC = D.readU32();
    if (D.ok() && !validCodeRef(Block, PC)) {
      Err = "corrupt checkpoint: program counter out of range";
      return false;
    }
    Env = Rd.readEnvNodeRef();
    uint32_t NS = D.readU32();
    if (!D.ok() || NS > (1u << 28)) {
      Err = D.ok() ? "corrupt checkpoint: bad stack length" : D.error();
      return false;
    }
    Stack.reserve(NS);
    for (uint32_t I = 0; I < NS && D.ok(); ++I)
      Stack.push_back(Rd.readValue());
    // Zero frames is legitimate: the final return pops the sentinel frame,
    // so a checkpoint at the entry Halt boundary has none and the resumed
    // run halts immediately.
    uint32_t NF = D.readU32();
    if (!D.ok() || NF > (1u << 28)) {
      Err = D.ok() ? "corrupt checkpoint: bad call-frame count" : D.error();
      return false;
    }
    Frames.reserve(NF);
    for (uint32_t I = 0; I < NF && D.ok(); ++I) {
      CallFrame F;
      F.Block = D.readU32();
      F.PC = D.readU32();
      F.Env = Rd.readEnvNodeRef();
      if (D.ok() && !validCodeRef(F.Block, F.PC)) {
        Err = "corrupt checkpoint: call frame return address out of range";
        return false;
      }
      Frames.push_back(F);
    }
    RevivedStrings = Rd.takeStrings();
    if (!D.ok()) {
      Err = D.error();
      return false;
    }
    return true;
  }

  void fail(std::string Msg) {
    Failed = true;
    Error = std::move(Msg);
  }

  Value pop() {
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  }

  /// The environment value at link depth \p D. Fails (returning Unit) on
  /// a letrec binding read before its PatchRec — the Var instruction's
  /// error, shared by every fused form.
  Value envAt(uint32_t D) {
    EnvNode *N = Env;
    for (; D; --D)
      N = N->Parent;
    if (N->Val.isUnit()) {
      fail("letrec variable '" + std::string(N->Name.str()) +
           "' referenced before initialization");
      return Value();
    }
    return N->Val;
  }

  /// Applies \p Op2 and pushes the result (or fails).
  void prim2Push(Prim2Op Op2, Value Lhs, Value Rhs) {
    PrimResult PR = applyPrim2(Op2, Lhs, Rhs, A);
    if (!PR.Ok)
      return fail(std::move(PR.Error));
    Stack.push_back(PR.Val);
  }

  /// Applies \p Fn to \p Arg. Compiled closures enter a new (or, for tail
  /// calls, the current) frame; primitives apply immediately.
  void apply(Value Fn, Value Arg, bool Tail) {
    switch (Fn.kind()) {
    case ValueKind::CompiledClosure: {
      VMClosure *C = Fn.asCompiledClosure();
      // Self-tail-call frame reuse: when a block tail-calls a closure over
      // its *own* block and the current env node sits directly on the
      // closure's env (the plain `f x` recursion shape), the callee's
      // frame is behaviorally identical to ours — overwrite the binding in
      // place instead of allocating. ReusableFrame guarantees the block
      // creates no closures (nothing can capture this node mid-iteration)
      // and contains no probes; the Parent check excludes live letrec
      // extensions (PushRecEnv without PopEnv) and curried shapes.
      if (Tail && Opts.ReuseTailFrames && C->Block == Block && Env &&
          Env->Parent == C->Env && P.Blocks[Block].ReusableFrame) {
        Env->Val = Arg;
        PC = 0;
        return;
      }
      if (!Tail)
        Frames.push_back(CallFrame{Block, PC, Env});
      Block = C->Block;
      PC = 0;
      Env = extendEnv(A, C->Env, P.Blocks[C->Block].Param, Arg);
      return;
    }
    case ValueKind::Prim1: {
      PrimResult R = applyPrim1(Fn.asPrim1(), Arg, A);
      if (!R.Ok)
        return fail(std::move(R.Error));
      Stack.push_back(R.Val);
      if (Tail)
        doRet();
      return;
    }
    case ValueKind::Prim2: {
      PrimPartial *PP = A.create<PrimPartial>(Fn.asPrim2(), Arg);
      Stack.push_back(Value::mkPrim2Partial(PP));
      if (Tail)
        doRet();
      return;
    }
    case ValueKind::Prim2Partial: {
      PrimPartial *PP = Fn.asPrim2Partial();
      PrimResult R = applyPrim2(PP->Op, PP->First, Arg, A);
      if (!R.Ok)
        return fail(std::move(R.Error));
      Stack.push_back(R.Val);
      if (Tail)
        doRet();
      return;
    }
    default:
      fail("cannot apply a non-function value (" + toDisplayString(Fn) +
           ")");
    }
  }

  /// Returns to the caller frame (the value stays on the stack). When no
  /// frame remains, execution falls back to the entry block's Halt.
  void doRet() {
    CallFrame F = Frames.back();
    Frames.pop_back();
    Block = F.Block;
    PC = F.PC;
    Env = F.Env;
  }

  RunResult haltResult() {
    RunResult R;
    R.setOutcome(Outcome::Ok);
    R.Steps = Steps;
    R.ArenaBytes = A.bytesAllocated();
    Value V = Stack.back();
    R.ValueText = Opts.Algebra->render(V);
    if (V.is(ValueKind::Int))
      R.IntValue = V.asInt();
    if (V.is(ValueKind::Bool))
      R.BoolValue = V.asBool();
    return R;
  }

  RunResult stopResult(Outcome O) {
    RunResult R;
    R.setOutcome(O);
    R.Steps = Steps;
    R.ArenaBytes = A.bytesAllocated();
    return R;
  }

  RunResult errorResult() {
    RunResult R;
    R.setOutcome(Outcome::Error);
    R.Error = std::move(Error);
    R.Steps = Steps;
    R.ArenaBytes = A.bytesAllocated();
    return R;
  }
};

/// Portable dispatch loop. `Steps` advances by the instruction's Cost (its
/// source-step count), so fused programs report identical step counts to
/// unfused ones at every instruction boundary.
RunResult VM::runSwitch(Governor &Gov) {
  while (true) {
    const Instr &I = P.Blocks[Block].Code[PC++];
    Steps += I.Cost;
    if (Steps >= Gov.nextPause()) {
      Outcome O = Gov.pause(Steps, A.bytesAllocated(), Frames.size());
      if (O != Outcome::Ok) {
        if (Opts.CheckpointOnStop)
          emitCheckpoint(I);
        return stopResult(O);
      }
      if (Gov.takeCheckpointDue())
        emitCheckpoint(I);
    }
    switch (I.Code) {
#define VM_CASE(Name) case Op::Name:
#define VM_NEXT() break
#include "compile/VMDispatch.inc"
#undef VM_CASE
#undef VM_NEXT
    }
    if (Failed)
      return errorResult();
  }
}

#if MONSEM_VM_HAS_CGOTO
/// Token-threaded dispatch: each handler jumps straight to the next
/// opcode's handler through a label table, so the branch predictor sees
/// one indirect branch per handler (correlated with opcode pairs) instead
/// of the switch loop's single shared branch.
RunResult VM::runThreaded(Governor &Gov) {
  static const void *Tbl[] = {
      &&L_Const,      &&L_Var,           &&L_MkClosure,
      &&L_Jump,       &&L_JumpIfFalse,   &&L_Call,
      &&L_TailCall,   &&L_Ret,           &&L_Prim1,
      &&L_Prim2,      &&L_PushRecEnv,    &&L_PatchRec,
      &&L_PopEnv,     &&L_MonPre,        &&L_MonPost,
      &&L_Halt,       &&L_VarVar,        &&L_VarPrim2,
      &&L_ConstPrim2, &&L_VarConstPrim2, &&L_VarVarPrim2,
      &&L_Prim2JumpIfFalse, &&L_VarCall, &&L_VarTailCall,
  };
  static_assert(sizeof(Tbl) / sizeof(Tbl[0]) == kNumOps,
                "label table must cover every opcode in enum order");
  // Declared before the first goto target so no jump skips initialization.
  Instr I;
Dispatch:
  I = P.Blocks[Block].Code[PC++];
  Steps += I.Cost;
  if (Steps >= Gov.nextPause()) {
    Outcome O = Gov.pause(Steps, A.bytesAllocated(), Frames.size());
    if (O != Outcome::Ok) {
      if (Opts.CheckpointOnStop)
        emitCheckpoint(I);
      return stopResult(O);
    }
    if (Gov.takeCheckpointDue())
      emitCheckpoint(I);
  }
  goto *Tbl[static_cast<unsigned>(I.Code)];
#define VM_CASE(Name) L_##Name:
#define VM_NEXT()                                                              \
  do {                                                                         \
    if (Failed)                                                                \
      return errorResult();                                                    \
    goto Dispatch;                                                             \
  } while (0)
#include "compile/VMDispatch.inc"
#undef VM_CASE
#undef VM_NEXT
}
#endif // MONSEM_VM_HAS_CGOTO

RunResult VM::run() {
  if (Opts.ResumeFrom) {
    std::string Err;
    if (!restoreCheckpoint(*Opts.ResumeFrom, Err)) {
      RunResult R;
      R.setOutcome(Outcome::Error);
      R.Error = "cannot resume from checkpoint: " + Err;
      return R;
    }
    // Continue the cumulative step counter; fuel and checkpoint
    // boundaries measure steps since the resume point (fresh budget).
    StepBase = Steps = Opts.ResumeFrom->header().SavedSteps;
  }
  Governor Gov(Opts.Limits, Opts.MaxSteps, StepBase,
               Opts.CheckpointSink ? Opts.CheckpointEveryNSteps : 0);
  A.setByteLimit(Gov.arenaByteCap());
  if (!Opts.ResumeFrom) {
    // Sentinel frame: a tail call at the top level of the entry block
    // returns straight to the entry's Halt instruction.
    Frames.push_back(CallFrame{
        0, static_cast<uint32_t>(P.Blocks[0].Code.size() - 1), nullptr});
  }
  try {
#if MONSEM_VM_HAS_CGOTO
    if (Opts.VMThreaded)
      return runThreaded(Gov);
#endif
    return runSwitch(Gov);
  } catch (const MonitorAbort &E) {
    // A monitor under FaultPolicy::Abort faulted at a MonPre/MonPost probe.
    fail(E.what());
  } catch (const DurabilityAbort &E) {
    // A durable sink failed under OnDurabilityFailure::Abort.
    fail(E.what());
  } catch (const ArenaLimitExceeded &) {
    return stopResult(Outcome::MemoryExceeded);
  }
  return errorResult();
}

} // namespace

RunResult monsem::runCompiled(const CompiledProgram &Program,
                              MonitorHooks *Hooks, RunOptions Opts) {
  VM M(Program, Hooks, Opts);
  return M.run();
}

RunResult monsem::evaluateCompiled(const Cascade &C, const Expr *Program,
                                   RunOptions Opts) {
  DurabilityTracker Tracker(Opts.DurabilityPolicy, Opts.DurabilityRetryBudget);
  armDurabilityTracker(Opts, Tracker);
  armJournalCheckpointSink(Opts);
  DiagnosticSink Diags;
  if (!C.empty() && !C.validateFor(Program, Diags)) {
    RunResult R;
    R.Error = Diags.str();
    return R;
  }
  CompileOptions CO;
  CO.Instrument = !C.empty();
  std::unique_ptr<CompiledProgram> CP = compileProgram(Program, Diags, CO);
  if (!CP) {
    RunResult R;
    R.Error = Diags.str();
    return R;
  }
  // Register tier: lower after compilation; a program the lowering pass
  // cannot encode (pathological nesting depth) falls back to the stack VM
  // — same observable behavior either way.
  std::unique_ptr<RegProgram> RP;
  if (Opts.VMRegister || Opts.VMAot)
    RP = lowerToRegisters(*CP);
  // Native tier on top of the lowering: load (emit + compile + cache) the
  // leaf-block library; any reason it cannot be used — no C compiler,
  // boxed Values, nothing eligible — degrades to the register interpreter
  // with identical observable behavior.
  std::shared_ptr<const AotLibrary> AotLib;
  if (Opts.VMAot && RP)
    AotLib = aotLoad(*RP, Opts.AotCacheDir, nullptr);
  auto Run = [&](MonitorHooks *H) {
    if (AotLib)
      return runAotProgram(*RP, *AotLib, H, Opts);
    return RP ? runRegisterProgram(*RP, H, Opts) : runCompiled(*CP, H, Opts);
  };
  if (C.empty()) {
    RunResult R = Run(nullptr);
    R.DurabilityFaults = Opts.Durability->takeFaults();
    return R;
  }
  // Hook chain, outermost first: journal -> event tap -> cascade (same
  // order as the CEK driver in Eval.cpp, so streams match across tiers).
  RuntimeCascade RC(C, Opts.MonitorFaultPolicy, Opts.MonitorRetryBudget);
  std::unique_ptr<EventTapHooks> ET;
  std::unique_ptr<JournalingHooks> JH;
  MonitorHooks *Hooks = &RC;
  if (Opts.EventSink) {
    ET = std::make_unique<EventTapHooks>(*Hooks, Opts.EventSink);
    Hooks = ET.get();
  }
  if (Opts.RunJournal) {
    JH = std::make_unique<JournalingHooks>(*Hooks, *Opts.RunJournal,
                                           Opts.Durability);
    Hooks = JH.get();
  }
  RunResult R = Run(Hooks);
  R.FinalStates = RC.takeStates();
  R.MonitorFaults = RC.takeFaults();
  R.DurabilityFaults = Opts.Durability->takeFaults();
  return R;
}
