//===- compile/VM.cpp ------------------------------------------------------===//

#include "compile/VM.h"

#include "compile/Compiler.h"
#include "semantics/Primitives.h"

using namespace monsem;

namespace {

struct CallFrame {
  uint32_t Block;
  uint32_t PC;
  EnvNode *Env;
};

class VM {
public:
  VM(const CompiledProgram &P, MonitorHooks *Hooks, RunOptions Opts)
      : P(P), Hooks(Hooks), Opts(Opts) {}

  RunResult run();

private:
  const CompiledProgram &P;
  MonitorHooks *Hooks;
  RunOptions Opts;
  Arena A;

  std::vector<Value> Stack;
  std::vector<CallFrame> Frames;
  uint32_t Block = 0;
  uint32_t PC = 0;
  EnvNode *Env = nullptr;
  uint64_t Steps = 0;
  bool Failed = false;
  std::string Error;

  void fail(std::string Msg) {
    Failed = true;
    Error = std::move(Msg);
  }

  Value pop() {
    Value V = Stack.back();
    Stack.pop_back();
    return V;
  }

  /// Applies \p Fn to \p Arg. Compiled closures enter a new (or, for tail
  /// calls, the current) frame; primitives apply immediately.
  void apply(Value Fn, Value Arg, bool Tail) {
    switch (Fn.kind()) {
    case ValueKind::CompiledClosure: {
      VMClosure *C = Fn.asCompiledClosure();
      if (!Tail)
        Frames.push_back(CallFrame{Block, PC, Env});
      Block = C->Block;
      PC = 0;
      Env = extendEnv(A, C->Env, P.Blocks[C->Block].Param, Arg);
      return;
    }
    case ValueKind::Prim1: {
      PrimResult R = applyPrim1(Fn.asPrim1(), Arg, A);
      if (!R.Ok)
        return fail(std::move(R.Error));
      Stack.push_back(R.Val);
      if (Tail)
        doRet();
      return;
    }
    case ValueKind::Prim2: {
      PrimPartial *PP = A.create<PrimPartial>(Fn.asPrim2(), Arg);
      Stack.push_back(Value::mkPrim2Partial(PP));
      if (Tail)
        doRet();
      return;
    }
    case ValueKind::Prim2Partial: {
      PrimPartial *PP = Fn.asPrim2Partial();
      PrimResult R = applyPrim2(PP->Op, PP->First, Arg, A);
      if (!R.Ok)
        return fail(std::move(R.Error));
      Stack.push_back(R.Val);
      if (Tail)
        doRet();
      return;
    }
    default:
      fail("cannot apply a non-function value (" + toDisplayString(Fn) +
           ")");
    }
  }

  /// Returns to the caller frame (the value stays on the stack). When no
  /// frame remains, execution falls back to the entry block's Halt.
  void doRet() {
    CallFrame F = Frames.back();
    Frames.pop_back();
    Block = F.Block;
    PC = F.PC;
    Env = F.Env;
  }
};

RunResult VM::run() {
  RunResult R;
  Governor Gov(Opts.Limits, Opts.MaxSteps);
  A.setByteLimit(Gov.arenaByteCap());
  // Sentinel frame: a tail call at the top level of the entry block
  // returns straight to the entry's Halt instruction.
  Frames.push_back(CallFrame{
      0, static_cast<uint32_t>(P.Blocks[0].Code.size() - 1), nullptr});
  try {
  while (!Failed) {
    ++Steps;
    if (Steps >= Gov.nextPause()) {
      Outcome O = Gov.pause(Steps, A.bytesAllocated(), Frames.size());
      if (O != Outcome::Ok) {
        R.setOutcome(O);
        R.Steps = Steps;
        return R;
      }
    }
    const Instr &I = P.Blocks[Block].Code[PC++];
    switch (I.Code) {
    case Op::Const:
      Stack.push_back(P.ConstPool[I.A]);
      break;
    case Op::Var: {
      EnvNode *N = Env;
      for (uint32_t D = I.A; D; --D)
        N = N->Parent;
      if (N->Val.isUnit()) {
        fail("letrec variable '" + std::string(N->Name.str()) +
             "' referenced before initialization");
        break;
      }
      Stack.push_back(N->Val);
      break;
    }
    case Op::MkClosure: {
      VMClosure *C = A.create<VMClosure>(I.A, Env);
      Stack.push_back(Value::mkCompiledClosure(C));
      break;
    }
    case Op::Jump:
      PC = I.A;
      break;
    case Op::JumpIfFalse: {
      Value V = pop();
      if (!V.is(ValueKind::Bool)) {
        fail("conditional scrutinee must be a boolean, found " +
             toDisplayString(V));
        break;
      }
      if (!V.asBool())
        PC = I.A;
      break;
    }
    case Op::Call: {
      Value Fn = pop();
      Value Arg = pop();
      apply(Fn, Arg, /*Tail=*/false);
      break;
    }
    case Op::TailCall: {
      Value Fn = pop();
      Value Arg = pop();
      apply(Fn, Arg, /*Tail=*/true);
      break;
    }
    case Op::Ret:
      doRet();
      break;
    case Op::Prim1: {
      Value V = pop();
      PrimResult PR = applyPrim1(static_cast<Prim1Op>(I.A), V, A);
      if (!PR.Ok) {
        fail(std::move(PR.Error));
        break;
      }
      Stack.push_back(PR.Val);
      break;
    }
    case Op::Prim2: {
      Value Rhs = pop();
      Value Lhs = pop();
      PrimResult PR = applyPrim2(static_cast<Prim2Op>(I.A), Lhs, Rhs, A);
      if (!PR.Ok) {
        fail(std::move(PR.Error));
        break;
      }
      Stack.push_back(PR.Val);
      break;
    }
    case Op::PushRecEnv:
      Env = extendEnv(A, Env, P.Names[I.A], Value::mkUnit());
      break;
    case Op::PatchRec:
      Env->Val = pop();
      break;
    case Op::PopEnv:
      for (uint32_t D = I.A; D; --D)
        Env = Env->Parent;
      break;
    case Op::MonPre:
      if (Hooks) {
        const ProbeSite &S = P.Probes[I.A];
        Hooks->pre(*S.Ann, *S.Inner, EnvView(Env), Steps,
                   A.bytesAllocated());
      }
      break;
    case Op::MonPost:
      if (Hooks) {
        const ProbeSite &S = P.Probes[I.A];
        Hooks->post(*S.Ann, *S.Inner, EnvView(Env), Stack.back(), Steps,
                    A.bytesAllocated());
      }
      break;
    case Op::Halt: {
      R.setOutcome(Outcome::Ok);
      R.Steps = Steps;
      Value V = Stack.back();
      R.ValueText = Opts.Algebra->render(V);
      if (V.is(ValueKind::Int))
        R.IntValue = V.asInt();
      if (V.is(ValueKind::Bool))
        R.BoolValue = V.asBool();
      return R;
    }
    }
  }
  } catch (const MonitorAbort &E) {
    // A monitor under FaultPolicy::Abort faulted at a MonPre/MonPost probe.
    fail(E.what());
  } catch (const ArenaLimitExceeded &) {
    R.setOutcome(Outcome::MemoryExceeded);
    R.Steps = Steps;
    return R;
  }
  R.setOutcome(Outcome::Error);
  R.Error = std::move(Error);
  R.Steps = Steps;
  return R;
}

} // namespace

RunResult monsem::runCompiled(const CompiledProgram &Program,
                              MonitorHooks *Hooks, RunOptions Opts) {
  VM M(Program, Hooks, Opts);
  return M.run();
}

RunResult monsem::evaluateCompiled(const Cascade &C, const Expr *Program,
                                   RunOptions Opts) {
  DiagnosticSink Diags;
  if (!C.empty() && !C.validateFor(Program, Diags)) {
    RunResult R;
    R.Error = Diags.str();
    return R;
  }
  CompileOptions CO;
  CO.Instrument = !C.empty();
  std::unique_ptr<CompiledProgram> CP = compileProgram(Program, Diags, CO);
  if (!CP) {
    RunResult R;
    R.Error = Diags.str();
    return R;
  }
  if (C.empty())
    return runCompiled(*CP, nullptr, Opts);
  RuntimeCascade RC(C, Opts.MonitorFaultPolicy, Opts.MonitorRetryBudget);
  RunResult R = runCompiled(*CP, &RC, Opts);
  R.FinalStates = RC.takeStates();
  R.MonitorFaults = RC.takeFaults();
  return R;
}
