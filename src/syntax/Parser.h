//===- syntax/Parser.h - Parser for L_lambda --------------------*- C++ -*-===//
///
/// \file
/// Recursive-descent parser for L_lambda's concrete syntax. Precedence, from
/// loosest to tightest:
///
///   expression forms:  {ann}: e   lambda x. e   if/then/else
///                      letrec f = e in e        let x = e in e
///   or  <  and  <  comparisons (= <> < <= > >=, non-associative)
///   <  cons `:` (right-assoc)  <  + -  <  * / %  <  unary -  <  application
///
/// Sugar handled here:
///  * `let x = e1 in e2`       desugars to `(lambda x. e2) e1`.
///  * `a and b` / `a or b`     desugar to conditionals (short-circuit).
///  * `lambda x y. e`          desugars to nested lambdas.
///  * `[e1, e2, ...]`          desugars to cons chains ending in `[]`.
///  * saturated applications of primitive names (`hd e`, `min a b`) become
///    Prim1/Prim2 nodes when the name is not locally shadowed; unsaturated
///    or shadowed uses stay variables (the initial environment binds them).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SYNTAX_PARSER_H
#define MONSEM_SYNTAX_PARSER_H

#include "support/Diagnostics.h"
#include "syntax/Ast.h"

#include <optional>
#include <string_view>

namespace monsem {

struct ParseOptions {
  /// Rewrite saturated applications of unshadowed primitive names into
  /// Prim1/Prim2 nodes.
  bool ResolvePrims = true;
};

/// Parses a complete program. Returns nullptr and fills \p Diags on error;
/// on success the returned expression is owned by \p Ctx.
const Expr *parseProgram(AstContext &Ctx, std::string_view Source,
                         DiagnosticSink &Diags, ParseOptions Opts = {});

class Lexer;

/// Parses one (maximal) expression from \p Lex, leaving trailing tokens
/// (e.g. the imperative module's `then`, `do`, `;`) unconsumed. Used by
/// host languages that embed L_lambda expressions.
const Expr *parseExprWith(AstContext &Ctx, Lexer &Lex, DiagnosticSink &Diags,
                          ParseOptions Opts = {});

/// Looks up \p Name in the primitive tables used by prim resolution.
std::optional<Prim1Op> lookupPrim1(Symbol Name);
std::optional<Prim2Op> lookupPrim2(Symbol Name);

} // namespace monsem

#endif // MONSEM_SYNTAX_PARSER_H
