//===- syntax/Annotator.h - Automatic annotation insertion ------*- C++ -*-===//
///
/// \file
/// Section 4.1 envisions a "suitably engineered programming environment"
/// that inserts monitoring annotations mechanically when the user asks,
/// e.g., to trace calls to `f`. These utilities are that environment:
///
///  * annotateFunctionBodies — wraps the body of each named letrec-bound
///    function with `{f}` or `{f(x1,...,xn)}` (the profiler and tracer
///    conventions of Section 8);
///  * labelProgramPoints — gives every application node a unique label
///    `{p0}, {p1}, ...` (used by the coverage monitor and the debugger's
///    breakpoint machinery).
///
/// Both return a rewritten tree in the given context and leave the input
/// untouched.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SYNTAX_ANNOTATOR_H
#define MONSEM_SYNTAX_ANNOTATOR_H

#include "syntax/Ast.h"

#include <vector>

namespace monsem {

struct AnnotateOptions {
  /// Optional monitor qualifier, producing `{qual:f(...)}` annotations.
  /// Qualifiers make cascaded monitors' annotation syntaxes disjoint
  /// (Section 6).
  Symbol Qualifier;
  /// Emit function-header annotations `{f(x1,...,xn)}` (tracer style)
  /// instead of bare labels `{f}` (profiler style).
  bool WithParams = false;
};

/// Annotates the bodies of the letrec-bound functions named in \p Names
/// (empty \p Names means every letrec-bound function). For a curried
/// definition `letrec f = lambda x. lambda y. e` the annotation wraps the
/// innermost body and lists both parameters, exactly like the paper's
/// `mul` example.
const Expr *annotateFunctionBodies(AstContext &Ctx, const Expr *E,
                                   const std::vector<Symbol> &Names,
                                   AnnotateOptions Opts = {});

/// Wraps every application node with a fresh `{<prefix>N}` label.
/// Returns the rewritten tree; \p NumLabels receives the number of labels.
const Expr *labelProgramPoints(AstContext &Ctx, const Expr *E,
                               std::string_view Prefix, Symbol Qualifier,
                               unsigned *NumLabels = nullptr);

} // namespace monsem

#endif // MONSEM_SYNTAX_ANNOTATOR_H
