//===- syntax/Prelude.cpp --------------------------------------------------===//

#include "syntax/Prelude.h"

#include "syntax/Parser.h"

#include <vector>

using namespace monsem;

// Definitions in dependency order; each is a `name := lambda ...` pair
// separated by `;;`. Written against the concrete syntax in
// docs/LANGUAGE.md.
static const char PreludeText[] = R"prelude(
id = lambda x. x
;;
compose = lambda f g x. f (g x)
;;
flip = lambda f x y. f y x
;;
length = lambda l. letrec go = lambda l n.
  if l = [] then n else go (tl l) (n + 1) in go l 0
;;
append = lambda a b. letrec go = lambda a.
  if a = [] then b else hd a : go (tl a) in go a
;;
reverse = lambda l. letrec go = lambda l acc.
  if l = [] then acc else go (tl l) (hd l : acc) in go l []
;;
map = lambda f. letrec go = lambda l.
  if l = [] then [] else f (hd l) : go (tl l) in go
;;
filter = lambda p. letrec go = lambda l.
  if l = [] then []
  else if p (hd l) then hd l : go (tl l)
  else go (tl l) in go
;;
foldl = lambda f. letrec go = lambda acc l.
  if l = [] then acc else go (f acc (hd l)) (tl l) in go
;;
foldr = lambda f z. letrec go = lambda l.
  if l = [] then z else f (hd l) (go (tl l)) in go
;;
range = lambda a b. letrec go = lambda i.
  if i > b then [] else i : go (i + 1) in go a
;;
take = lambda n l. letrec go = lambda n l.
  if n = 0 or l = [] then [] else hd l : go (n - 1) (tl l) in go n l
;;
drop = lambda n l. letrec go = lambda n l.
  if n = 0 or l = [] then l else go (n - 1) (tl l) in go n l
;;
elem = lambda x. letrec go = lambda l.
  if l = [] then false
  else if hd l = x then true
  else go (tl l) in go
;;
sum = lambda l. foldl (lambda a b. a + b) 0 l
;;
product = lambda l. foldl (lambda a b. a * b) 1 l
;;
all = lambda p l. foldl (lambda a x. a and p x) true l
;;
any = lambda p l. foldl (lambda a x. a or p x) false l
;;
zipwith = lambda f. letrec go = lambda a b.
  if a = [] or b = [] then []
  else f (hd a) (hd b) : go (tl a) (tl b) in go
;;
nth = lambda n l. letrec go = lambda n l.
  if n = 0 then hd l else go (n - 1) (tl l) in go n l
)prelude";

std::string_view monsem::preludeSource() { return PreludeText; }

namespace {

struct Def {
  std::string Name;
  std::string Body;
};

std::vector<Def> splitDefs(std::string_view Text) {
  std::vector<Def> Out;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find(";;", Pos);
    std::string_view Chunk = Text.substr(
        Pos, End == std::string_view::npos ? std::string_view::npos
                                           : End - Pos);
    Pos = End == std::string_view::npos ? Text.size() : End + 2;
    // Chunk is "name = body".
    size_t Eq = Chunk.find('=');
    if (Eq == std::string_view::npos)
      continue;
    std::string Name(Chunk.substr(0, Eq));
    std::string Body(Chunk.substr(Eq + 1));
    // Trim.
    auto Trim = [](std::string &S) {
      size_t B = S.find_first_not_of(" \t\n\r");
      size_t E = S.find_last_not_of(" \t\n\r");
      S = B == std::string::npos ? "" : S.substr(B, E - B + 1);
    };
    Trim(Name);
    Trim(Body);
    if (!Name.empty())
      Out.push_back(Def{std::move(Name), std::move(Body)});
  }
  return Out;
}

} // namespace

const Expr *monsem::wrapWithPrelude(AstContext &Ctx, const Expr *Program,
                                    DiagnosticSink &Diags) {
  // Parse each definition body, then nest letrecs innermost-last so later
  // definitions see earlier ones and the program sees all of them.
  std::vector<Def> Defs = splitDefs(PreludeText);
  std::vector<std::pair<Symbol, const Expr *>> Parsed;
  for (const Def &D : Defs) {
    const Expr *Body = parseProgram(Ctx, D.Body, Diags);
    if (!Body) {
      Diags.error({}, "prelude definition '" + D.Name + "' failed to parse");
      return nullptr;
    }
    Parsed.emplace_back(Symbol::intern(D.Name), Body);
  }
  const Expr *Out = Program;
  for (size_t I = Parsed.size(); I-- > 0;)
    Out = Ctx.mkLetrec(Parsed[I].first, Parsed[I].second, Out);
  return Out;
}
