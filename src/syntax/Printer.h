//===- syntax/Printer.h - Pretty printer for L_lambda -----------*- C++ -*-===//
///
/// \file
/// Precedence-aware pretty printer. The invariant (checked by property
/// tests) is that printing then reparsing yields a structurally equal tree:
/// `parse(print(e)) == e` for every tree the parser can produce.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SYNTAX_PRINTER_H
#define MONSEM_SYNTAX_PRINTER_H

#include "syntax/Ast.h"

#include <string>

namespace monsem {

/// Renders \p E in concrete syntax on a single line.
std::string printExpr(const Expr *E);

} // namespace monsem

#endif // MONSEM_SYNTAX_PRINTER_H
