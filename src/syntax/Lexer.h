//===- syntax/Lexer.h - Lexer for L_lambda ----------------------*- C++ -*-===//
///
/// \file
/// A hand-written lexer for the concrete syntax used throughout the paper's
/// examples:
///
///   letrec fac = lambda x. {fac(x)}: if (x = 0) then 1 else x * fac (x - 1)
///   in fac 3
///
/// Comments run from `--` to end of line. `\` is accepted as a synonym for
/// `lambda`. String literals use double quotes with `\n`, `\t`, `\\`, `\"`
/// escapes.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SYNTAX_LEXER_H
#define MONSEM_SYNTAX_LEXER_H

#include "support/Diagnostics.h"
#include "syntax/Token.h"

#include <string_view>

namespace monsem {

class Lexer {
public:
  Lexer(std::string_view Source, DiagnosticSink &Diags);

  /// Lexes and returns the next token.
  Token next();

  /// The token that next() would return, without consuming it.
  const Token &peek();

private:
  Token lexImpl();
  Token makeToken(TokenKind K) const;
  char cur() const { return Pos < Src.size() ? Src[Pos] : '\0'; }
  char lookahead() const {
    return Pos + 1 < Src.size() ? Src[Pos + 1] : '\0';
  }
  void advance();
  void skipTrivia();

  std::string_view Src;
  DiagnosticSink &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
  SourceLoc TokLoc;
  Token Lookahead;
  bool HasLookahead = false;
};

} // namespace monsem

#endif // MONSEM_SYNTAX_LEXER_H
