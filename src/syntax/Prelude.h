//===- syntax/Prelude.h - Standard prelude for L_lambda ---------*- C++ -*-===//
///
/// \file
/// A small standard library of list and arithmetic functions, provided as
/// ordinary L_lambda source and wrapped around user programs as a chain of
/// letrec bindings. Everything here is written in the object language, so
/// the prelude runs under every evaluator, every strategy, and every
/// monitor — and can itself be traced or profiled like user code.
///
/// Provided bindings: id, compose, flip, length, append, reverse, map,
/// filter, foldl, foldr, range, take, drop, elem, sum, product, all, any,
/// zipwith, nth.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SYNTAX_PRELUDE_H
#define MONSEM_SYNTAX_PRELUDE_H

#include "support/Diagnostics.h"
#include "syntax/Ast.h"

#include <string_view>

namespace monsem {

/// The prelude's source text (a sequence of `name = expr` definitions in
/// dependency order; see Prelude.cpp).
std::string_view preludeSource();

/// Wraps \p Program in the prelude's letrec chain:
///   letrec id = ... in letrec map = ... in ... <Program>
/// Returns nullptr (with diagnostics) only if the prelude itself fails to
/// parse, which is a build defect and covered by tests.
const Expr *wrapWithPrelude(AstContext &Ctx, const Expr *Program,
                            DiagnosticSink &Diags);

} // namespace monsem

#endif // MONSEM_SYNTAX_PRELUDE_H
