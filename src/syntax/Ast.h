//===- syntax/Ast.h - Abstract syntax for L_lambda --------------*- C++ -*-===//
///
/// \file
/// Abstract syntax of the paper's higher-order functional language
/// `L_lambda` (Fig. 2), extended per Section 4.1 with annotated expressions
/// `{mu}:e`. The BNF is:
///
///   e ::= k | x | lambda x . e | if e1 then e2 else e3 | e1 e2
///       | letrec f = e1 in e2 | {mu}: e
///
/// plus primitive-application nodes (`Prim1`/`Prim2`) that the parser
/// introduces for saturated uses of built-in operators (the paper assumes
/// `-`, `*`, `=`, `hd`, `tl`, ... are primitives). Unsaturated uses remain
/// variables bound in the initial environment, so primitives stay
/// first-class.
///
/// Nodes are immutable and arena-allocated inside an AstContext; structural
/// sharing is safe and cloning across contexts is provided.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SYNTAX_AST_H
#define MONSEM_SYNTAX_AST_H

#include "support/Arena.h"
#include "support/SourceLoc.h"
#include "support/Symbol.h"

#include <cassert>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

namespace monsem {

//===----------------------------------------------------------------------===//
// Constants and primitive operators
//===----------------------------------------------------------------------===//

/// A literal constant (the paper's syntactic domain Con and the basic-value
/// part of the semantic domain Bas).
struct ConstVal {
  enum class Kind : uint8_t { Int, Bool, Str, Nil };
  Kind K = Kind::Nil;
  int64_t Int = 0;
  bool Bool = false;
  /// Owned by the AstContext that created this constant.
  const std::string *Str = nullptr;

  static ConstVal mkInt(int64_t V) {
    ConstVal C;
    C.K = Kind::Int;
    C.Int = V;
    return C;
  }
  static ConstVal mkBool(bool V) {
    ConstVal C;
    C.K = Kind::Bool;
    C.Bool = V;
    return C;
  }
  static ConstVal mkStr(const std::string *S) {
    ConstVal C;
    C.K = Kind::Str;
    C.Str = S;
    return C;
  }
  static ConstVal mkNil() { return ConstVal(); }

  friend bool operator==(const ConstVal &A, const ConstVal &B) {
    if (A.K != B.K)
      return false;
    switch (A.K) {
    case Kind::Int:
      return A.Int == B.Int;
    case Kind::Bool:
      return A.Bool == B.Bool;
    case Kind::Str:
      return *A.Str == *B.Str;
    case Kind::Nil:
      return true;
    }
    return false;
  }
};

/// Unary primitives.
enum class Prim1Op : uint8_t { Neg, Not, Hd, Tl, Null, IsInt, IsBool, IsPair,
                               IsFun, Abs };

/// Binary primitives.
enum class Prim2Op : uint8_t { Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Le, Gt,
                               Ge, Cons, Min, Max };

/// Operator spelling for printing/diagnostics, e.g. "+" or "hd".
const char *prim1Name(Prim1Op Op);
const char *prim2Name(Prim2Op Op);

/// True for primitives printed infix by the pretty printer.
bool isInfix(Prim2Op Op);

//===----------------------------------------------------------------------===//
// Static resolution annotations (analysis/Resolver.h)
//===----------------------------------------------------------------------===//

/// The shape of one flat, array-backed environment frame as computed by the
/// resolver: the slot names, in slot order. Slot 0 is the frame owner's own
/// binding (lambda parameter or letrec-head name); later slots belong to
/// letrec binders the resolver coalesced into the same frame. Shapes are
/// owned by the Resolution object that created them; AST nodes hold
/// non-owning pointers.
struct FrameShape {
  std::vector<Symbol> Slots;
  /// Index into the owning Resolution's shape table. Run-time frames store
  /// this id (packed next to the parent pointer) instead of a shape
  /// pointer; id 0 is reserved for the shared primitives-frame shape.
  uint32_t Id = 0;

  uint32_t numSlots() const { return static_cast<uint32_t>(Slots.size()); }
  Symbol slotName(uint32_t I) const { return Slots[I]; }
};

//===----------------------------------------------------------------------===//
// Annotations (Section 4.1)
//===----------------------------------------------------------------------===//

/// A monitoring annotation `{mu}` (Section 4.1). The concrete syntax we
/// support generalizes all of the paper's examples:
///
///   {A}            — bare label (counting profiler, demon, collecting)
///   {fac(x)}       — function header (fancy tracer, Fig. 7)
///   {trace:fac(x)} — qualified form; the qualifier names the monitor the
///                    annotation belongs to, making annotation syntaxes of
///                    cascaded monitors disjoint by construction (Section 6).
struct Annotation {
  Symbol Qual;                ///< Optional monitor qualifier; empty if none.
  Symbol Head;                ///< The label / function name.
  std::vector<Symbol> Params; ///< Parameters of a function-header annotation.
  bool HasParams = false;     ///< Distinguishes `{f()}` from `{f}`.
  SourceLoc Loc;

  /// Renders the annotation in concrete syntax, braces included.
  std::string text() const;

  friend bool operator==(const Annotation &A, const Annotation &B) {
    return A.Qual == B.Qual && A.Head == B.Head && A.Params == B.Params &&
           A.HasParams == B.HasParams;
  }
};

//===----------------------------------------------------------------------===//
// Expression nodes
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  Const,
  Var,
  Lam,
  If,
  App,
  Letrec,
  Prim1,
  Prim2,
  Annot,
};

class Expr {
public:
  ExprKind kind() const { return K; }
  SourceLoc loc() const { return Loc; }

  /// Identity of the Resolution whose annotations this tree currently
  /// carries. Written on the *root* node only, by the resolver (see
  /// resolveProgramCached): it lets the process-wide resolution cache
  /// distinguish a live entry from a stale one left behind when an arena
  /// died and a new tree was allocated at the same root address. Guarded
  /// by the cache's mutex; never read by evaluators.
  mutable const void *ResolutionStamp = nullptr;

protected:
  Expr(ExprKind K, SourceLoc Loc) : K(K), Loc(Loc) {}

private:
  ExprKind K;
  SourceLoc Loc;
};

class ConstExpr : public Expr {
public:
  ConstVal Val;
  ConstExpr(ConstVal Val, SourceLoc Loc)
      : Expr(ExprKind::Const, Loc), Val(Val) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Const; }
};

class VarExpr : public Expr {
public:
  Symbol Name;

  /// Where the resolver (analysis/Resolver.h) located this variable.
  enum class AddrKind : uint8_t {
    Unresolved, ///< Resolver has not run; evaluators use the named chain.
    Local,      ///< User binding: FrameDepth frames up, slot SlotIndex.
    Global,     ///< Initial-environment primitive: slot SlotIndex there.
    Unbound     ///< Statically unbound; evaluation fails when reached.
  };
  /// Resolution annotations. Mutable: they are a cache derived purely from
  /// the tree's shape, (re)computed by each resolveProgram run. Valid only
  /// while the owning Resolution is alive and only for trees (the resolver
  /// refuses DAGs, where a node's address would be ambiguous).
  mutable AddrKind Addr = AddrKind::Unresolved;
  mutable uint32_t FrameDepth = 0; ///< Frames to walk (Local).
  mutable uint32_t SlotIndex = 0;  ///< Slot within that frame.
  /// Classic de Bruijn distance counted in *binders* (not frames) — the
  /// compile-time environment shape the bytecode compiler uses.
  mutable uint32_t BinderDepth = 0;

  VarExpr(Symbol Name, SourceLoc Loc) : Expr(ExprKind::Var, Loc), Name(Name) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Var; }
};

class LamExpr : public Expr {
public:
  Symbol Param;
  const Expr *Body;
  /// Shape of the flat frame each application of this lambda allocates:
  /// slot 0 is Param, later slots are coalesced letrec binders from the
  /// body. Filled by the resolver; null until it runs.
  mutable const FrameShape *Shape = nullptr;
  /// True when the body contains no lambda and no annotation anywhere in
  /// its subtree, so nothing evaluated in an activation of this lambda
  /// can capture or observe the activation frame beyond the activation
  /// itself — a self-tail-call may then overwrite the frame in place.
  /// Filled by the resolver.
  mutable bool FrameReusable = false;
  LamExpr(Symbol Param, const Expr *Body, SourceLoc Loc)
      : Expr(ExprKind::Lam, Loc), Param(Param), Body(Body) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Lam; }
};

class IfExpr : public Expr {
public:
  const Expr *Cond, *Then, *Else;
  IfExpr(const Expr *Cond, const Expr *Then, const Expr *Else, SourceLoc Loc)
      : Expr(ExprKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::If; }
};

class AppExpr : public Expr {
public:
  const Expr *Fn, *Arg;
  /// True when this application is in tail position of the enclosing
  /// lambda body (through `if` branches and coalesced letrec bodies, never
  /// under operands, bound expressions or annotations) — at evaluation
  /// time the current environment is then exactly that lambda's activation
  /// frame. Filled by the resolver; gates self-tail-call frame reuse.
  mutable bool TailPos = false;
  AppExpr(const Expr *Fn, const Expr *Arg, SourceLoc Loc)
      : Expr(ExprKind::App, Loc), Fn(Fn), Arg(Arg) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::App; }
};

/// `letrec f = e1 in e2`. The paper's grammar fixes e1 to a lambda; the
/// Section 8 demon example also uses plain value bindings (`letrec l1 =
/// {l1}:(...) in ...`), so we accept any e1. Self-reference during the
/// strict evaluation of a non-lambda e1 is a run-time error.
class LetrecExpr : public Expr {
public:
  Symbol Name;
  const Expr *Bound, *Body;
  /// Resolver annotations. A letrec is either a *frame head* (Shape
  /// non-null: evaluating it allocates a fresh frame whose slot 0 is Name)
  /// or a *member* (Shape null, SlotIndex > 0 possible: it writes its
  /// binding into slot SlotIndex of the frame already current, which the
  /// enclosing head preallocated). Null/0 until the resolver runs.
  mutable const FrameShape *Shape = nullptr;
  mutable uint32_t SlotIndex = 0;
  LetrecExpr(Symbol Name, const Expr *Bound, const Expr *Body, SourceLoc Loc)
      : Expr(ExprKind::Letrec, Loc), Name(Name), Bound(Bound), Body(Body) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Letrec; }
};

class Prim1Expr : public Expr {
public:
  Prim1Op Op;
  const Expr *Arg;
  Prim1Expr(Prim1Op Op, const Expr *Arg, SourceLoc Loc)
      : Expr(ExprKind::Prim1, Loc), Op(Op), Arg(Arg) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Prim1; }
};

class Prim2Expr : public Expr {
public:
  Prim2Op Op;
  const Expr *Lhs, *Rhs;
  Prim2Expr(Prim2Op Op, const Expr *Lhs, const Expr *Rhs, SourceLoc Loc)
      : Expr(ExprKind::Prim2, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Prim2; }
};

/// `{mu}: e` — the annotated-syntax production added by the syntactic
/// functional Hbar of Section 4.1.
class AnnotExpr : public Expr {
public:
  const Annotation *Ann;
  const Expr *Inner;
  AnnotExpr(const Annotation *Ann, const Expr *Inner, SourceLoc Loc)
      : Expr(ExprKind::Annot, Loc), Ann(Ann), Inner(Inner) {}
  static bool classof(const Expr *E) { return E->kind() == ExprKind::Annot; }
};

/// Checked downcast in the LLVM style (kind-tag based, no RTTI).
template <typename T> const T *cast(const Expr *E) {
  assert(E && T::classof(E) && "cast to wrong expression kind");
  return static_cast<const T *>(E);
}

template <typename T> const T *dyn_cast(const Expr *E) {
  return E && T::classof(E) ? static_cast<const T *>(E) : nullptr;
}

//===----------------------------------------------------------------------===//
// AstContext
//===----------------------------------------------------------------------===//

/// Owns the storage of a program's AST: expression nodes live in a bump
/// arena; annotations and string literals (which need destructors) live in
/// stable deques.
class AstContext {
public:
  AstContext() = default;
  AstContext(const AstContext &) = delete;
  AstContext &operator=(const AstContext &) = delete;

  const Expr *mkInt(int64_t V, SourceLoc Loc = {}) {
    return A.create<ConstExpr>(ConstVal::mkInt(V), Loc);
  }
  const Expr *mkBool(bool V, SourceLoc Loc = {}) {
    return A.create<ConstExpr>(ConstVal::mkBool(V), Loc);
  }
  const Expr *mkNil(SourceLoc Loc = {}) {
    return A.create<ConstExpr>(ConstVal::mkNil(), Loc);
  }
  const Expr *mkStr(std::string S, SourceLoc Loc = {}) {
    Strings.push_back(std::move(S));
    return A.create<ConstExpr>(ConstVal::mkStr(&Strings.back()), Loc);
  }
  const Expr *mkConst(ConstVal V, SourceLoc Loc = {}) {
    if (V.K == ConstVal::Kind::Str)
      return mkStr(*V.Str, Loc);
    return A.create<ConstExpr>(V, Loc);
  }
  const Expr *mkVar(Symbol Name, SourceLoc Loc = {}) {
    return A.create<VarExpr>(Name, Loc);
  }
  const Expr *mkLam(Symbol Param, const Expr *Body, SourceLoc Loc = {}) {
    return A.create<LamExpr>(Param, Body, Loc);
  }
  const Expr *mkIf(const Expr *C, const Expr *T, const Expr *E,
                   SourceLoc Loc = {}) {
    return A.create<IfExpr>(C, T, E, Loc);
  }
  const Expr *mkApp(const Expr *Fn, const Expr *Arg, SourceLoc Loc = {}) {
    return A.create<AppExpr>(Fn, Arg, Loc);
  }
  const Expr *mkLetrec(Symbol Name, const Expr *Bound, const Expr *Body,
                       SourceLoc Loc = {}) {
    return A.create<LetrecExpr>(Name, Bound, Body, Loc);
  }
  const Expr *mkPrim1(Prim1Op Op, const Expr *Arg, SourceLoc Loc = {}) {
    return A.create<Prim1Expr>(Op, Arg, Loc);
  }
  const Expr *mkPrim2(Prim2Op Op, const Expr *L, const Expr *R,
                      SourceLoc Loc = {}) {
    return A.create<Prim2Expr>(Op, L, R, Loc);
  }
  const Expr *mkAnnot(const Annotation *Ann, const Expr *Inner,
                      SourceLoc Loc = {}) {
    return A.create<AnnotExpr>(Ann, Inner, Loc);
  }

  /// Copies \p Ann into this context and returns a stable pointer.
  const Annotation *internAnnotation(Annotation Ann) {
    Annotations.push_back(std::move(Ann));
    return &Annotations.back();
  }

  size_t numAnnotations() const { return Annotations.size(); }

private:
  Arena A;
  std::deque<Annotation> Annotations;
  std::deque<std::string> Strings;
};

//===----------------------------------------------------------------------===//
// Structural utilities
//===----------------------------------------------------------------------===//

/// Structural equality (annotations compared by content).
bool exprEquals(const Expr *A, const Expr *B);

/// Deep-copies \p E into \p Ctx (which may differ from the owning context).
const Expr *cloneExpr(AstContext &Ctx, const Expr *E);

/// Number of nodes, counting annotations.
size_t exprSize(const Expr *E);

/// Collects every annotation reachable in \p E in pre-order.
void collectAnnotations(const Expr *E, std::vector<const Annotation *> &Out);

/// Collects every node of \p E in pre-order (children visited in field
/// order). Because every ExprKind has a fixed arity, a node's pre-order
/// position is a stable identity across processes for structurally
/// identical trees — the checkpoint format uses it to name expressions.
void collectExprs(const Expr *E, std::vector<const Expr *> &Out);

/// Deterministic structural fingerprint: FNV-1a over the pre-order stream
/// of node kinds, constants, binder/variable spellings and annotation text.
/// Equal for structurally equal trees in any process; used to refuse
/// resuming a checkpoint against a different program.
uint64_t exprFingerprint(const Expr *E);

/// Strips every annotation node: the mapping from sbar back to s used in the
/// soundness theorem (Thm. 7.7).
const Expr *stripAnnotations(AstContext &Ctx, const Expr *E);

} // namespace monsem

#endif // MONSEM_SYNTAX_AST_H
