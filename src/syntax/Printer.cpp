//===- syntax/Printer.cpp --------------------------------------------------===//

#include "syntax/Printer.h"

using namespace monsem;

namespace {

// Precedence levels, loosest to tightest. A node is parenthesized whenever
// its own level is looser than the level its context requires.
enum Level : int {
  LvlExpr = 0, // lambda, if, letrec, annotation
  LvlCmp = 3,
  LvlCons = 4,
  LvlAdd = 5,
  LvlMul = 6,
  LvlUnary = 7,
  LvlApp = 8,
  LvlAtom = 9,
};

int prim2Level(Prim2Op Op) {
  switch (Op) {
  case Prim2Op::Eq:
  case Prim2Op::Ne:
  case Prim2Op::Lt:
  case Prim2Op::Le:
  case Prim2Op::Gt:
  case Prim2Op::Ge:
    return LvlCmp;
  case Prim2Op::Cons:
    return LvlCons;
  case Prim2Op::Add:
  case Prim2Op::Sub:
    return LvlAdd;
  case Prim2Op::Mul:
  case Prim2Op::Div:
  case Prim2Op::Mod:
    return LvlMul;
  case Prim2Op::Min:
  case Prim2Op::Max:
    return LvlApp;
  }
  return LvlAtom;
}

int exprLevel(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Const: {
    const auto *C = cast<ConstExpr>(E);
    // Negative literals reparse through unary minus; give them that level
    // so they are parenthesized in argument position.
    if (C->Val.K == ConstVal::Kind::Int && C->Val.Int < 0)
      return LvlUnary;
    return LvlAtom;
  }
  case ExprKind::Var:
    return LvlAtom;
  case ExprKind::Lam:
  case ExprKind::If:
  case ExprKind::Letrec:
  case ExprKind::Annot:
    return LvlExpr;
  case ExprKind::App:
    return LvlApp;
  case ExprKind::Prim1:
    return cast<Prim1Expr>(E)->Op == Prim1Op::Neg ? LvlUnary : LvlApp;
  case ExprKind::Prim2:
    return prim2Level(cast<Prim2Expr>(E)->Op);
  }
  return LvlAtom;
}

void print(std::string &Out, const Expr *E, int Required);

void printAt(std::string &Out, const Expr *E, int Required) {
  if (exprLevel(E) < Required) {
    Out += '(';
    print(Out, E, LvlExpr);
    Out += ')';
    return;
  }
  print(Out, E, Required);
}

void print(std::string &Out, const Expr *E, int Required) {
  switch (E->kind()) {
  case ExprKind::Const: {
    const ConstVal &V = cast<ConstExpr>(E)->Val;
    switch (V.K) {
    case ConstVal::Kind::Int:
      Out += std::to_string(V.Int);
      return;
    case ConstVal::Kind::Bool:
      Out += V.Bool ? "true" : "false";
      return;
    case ConstVal::Kind::Nil:
      Out += "[]";
      return;
    case ConstVal::Kind::Str: {
      Out += '"';
      for (char C : *V.Str) {
        switch (C) {
        case '\n':
          Out += "\\n";
          break;
        case '\t':
          Out += "\\t";
          break;
        case '\\':
          Out += "\\\\";
          break;
        case '"':
          Out += "\\\"";
          break;
        default:
          Out += C;
        }
      }
      Out += '"';
      return;
    }
    }
    return;
  }
  case ExprKind::Var:
    Out += cast<VarExpr>(E)->Name.str();
    return;
  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    Out += "lambda ";
    Out += L->Param.str();
    // Coalesce nested lambdas: lambda x y. e
    const Expr *Body = L->Body;
    while (const auto *Inner = dyn_cast<LamExpr>(Body)) {
      Out += ' ';
      Out += Inner->Param.str();
      Body = Inner->Body;
    }
    Out += ". ";
    print(Out, Body, LvlExpr);
    return;
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    Out += "if ";
    print(Out, I->Cond, LvlExpr);
    Out += " then ";
    print(Out, I->Then, LvlExpr);
    Out += " else ";
    print(Out, I->Else, LvlExpr);
    return;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    printAt(Out, A->Fn, LvlApp);
    Out += ' ';
    printAt(Out, A->Arg, LvlAtom);
    return;
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    Out += "letrec ";
    Out += L->Name.str();
    Out += " = ";
    print(Out, L->Bound, LvlExpr);
    Out += " in ";
    print(Out, L->Body, LvlExpr);
    return;
  }
  case ExprKind::Prim1: {
    const auto *P = cast<Prim1Expr>(E);
    if (P->Op == Prim1Op::Neg) {
      Out += '-';
      printAt(Out, P->Arg, LvlUnary);
      return;
    }
    Out += prim1Name(P->Op);
    Out += ' ';
    printAt(Out, P->Arg, LvlAtom);
    return;
  }
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    if (!isInfix(P->Op)) {
      Out += prim2Name(P->Op);
      Out += ' ';
      printAt(Out, P->Lhs, LvlAtom);
      Out += ' ';
      printAt(Out, P->Rhs, LvlAtom);
      return;
    }
    int Lvl = prim2Level(P->Op);
    if (P->Op == Prim2Op::Cons) {
      // Right-associative.
      printAt(Out, P->Lhs, Lvl + 1);
      Out += " : ";
      printAt(Out, P->Rhs, Lvl);
      return;
    }
    bool NonAssoc = Lvl == LvlCmp;
    printAt(Out, P->Lhs, NonAssoc ? Lvl + 1 : Lvl);
    Out += ' ';
    Out += prim2Name(P->Op);
    Out += ' ';
    printAt(Out, P->Rhs, Lvl + 1);
    return;
  }
  case ExprKind::Annot: {
    const auto *N = cast<AnnotExpr>(E);
    Out += N->Ann->text();
    Out += ": ";
    print(Out, N->Inner, LvlExpr);
    return;
  }
  }
}

} // namespace

std::string monsem::printExpr(const Expr *E) {
  std::string Out;
  print(Out, E, LvlExpr);
  return Out;
}
