//===- syntax/Ast.cpp - AST utilities --------------------------------------===//

#include "syntax/Ast.h"

#include "support/Checkpoint.h"

using namespace monsem;

const char *monsem::prim1Name(Prim1Op Op) {
  switch (Op) {
  case Prim1Op::Neg:
    return "-";
  case Prim1Op::Not:
    return "not";
  case Prim1Op::Hd:
    return "hd";
  case Prim1Op::Tl:
    return "tl";
  case Prim1Op::Null:
    return "null";
  case Prim1Op::IsInt:
    return "int?";
  case Prim1Op::IsBool:
    return "bool?";
  case Prim1Op::IsPair:
    return "pair?";
  case Prim1Op::IsFun:
    return "fun?";
  case Prim1Op::Abs:
    return "abs";
  }
  return "?";
}

const char *monsem::prim2Name(Prim2Op Op) {
  switch (Op) {
  case Prim2Op::Add:
    return "+";
  case Prim2Op::Sub:
    return "-";
  case Prim2Op::Mul:
    return "*";
  case Prim2Op::Div:
    return "/";
  case Prim2Op::Mod:
    return "%";
  case Prim2Op::Eq:
    return "=";
  case Prim2Op::Ne:
    return "<>";
  case Prim2Op::Lt:
    return "<";
  case Prim2Op::Le:
    return "<=";
  case Prim2Op::Gt:
    return ">";
  case Prim2Op::Ge:
    return ">=";
  case Prim2Op::Cons:
    return ":";
  case Prim2Op::Min:
    return "min";
  case Prim2Op::Max:
    return "max";
  }
  return "?";
}

bool monsem::isInfix(Prim2Op Op) {
  switch (Op) {
  case Prim2Op::Min:
  case Prim2Op::Max:
    return false;
  default:
    return true;
  }
}

std::string Annotation::text() const {
  std::string Out = "{";
  if (Qual) {
    Out += Qual.str();
    Out += ':';
  }
  Out += Head.str();
  if (HasParams) {
    Out += '(';
    for (size_t I = 0; I < Params.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Params[I].str();
    }
    Out += ')';
  }
  Out += '}';
  return Out;
}

bool monsem::exprEquals(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ExprKind::Const:
    return cast<ConstExpr>(A)->Val == cast<ConstExpr>(B)->Val;
  case ExprKind::Var:
    return cast<VarExpr>(A)->Name == cast<VarExpr>(B)->Name;
  case ExprKind::Lam: {
    const auto *LA = cast<LamExpr>(A), *LB = cast<LamExpr>(B);
    return LA->Param == LB->Param && exprEquals(LA->Body, LB->Body);
  }
  case ExprKind::If: {
    const auto *IA = cast<IfExpr>(A), *IB = cast<IfExpr>(B);
    return exprEquals(IA->Cond, IB->Cond) && exprEquals(IA->Then, IB->Then) &&
           exprEquals(IA->Else, IB->Else);
  }
  case ExprKind::App: {
    const auto *AA = cast<AppExpr>(A), *AB = cast<AppExpr>(B);
    return exprEquals(AA->Fn, AB->Fn) && exprEquals(AA->Arg, AB->Arg);
  }
  case ExprKind::Letrec: {
    const auto *LA = cast<LetrecExpr>(A), *LB = cast<LetrecExpr>(B);
    return LA->Name == LB->Name && exprEquals(LA->Bound, LB->Bound) &&
           exprEquals(LA->Body, LB->Body);
  }
  case ExprKind::Prim1: {
    const auto *PA = cast<Prim1Expr>(A), *PB = cast<Prim1Expr>(B);
    return PA->Op == PB->Op && exprEquals(PA->Arg, PB->Arg);
  }
  case ExprKind::Prim2: {
    const auto *PA = cast<Prim2Expr>(A), *PB = cast<Prim2Expr>(B);
    return PA->Op == PB->Op && exprEquals(PA->Lhs, PB->Lhs) &&
           exprEquals(PA->Rhs, PB->Rhs);
  }
  case ExprKind::Annot: {
    const auto *NA = cast<AnnotExpr>(A), *NB = cast<AnnotExpr>(B);
    return *NA->Ann == *NB->Ann && exprEquals(NA->Inner, NB->Inner);
  }
  }
  return false;
}

const Expr *monsem::cloneExpr(AstContext &Ctx, const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Const:
    return Ctx.mkConst(cast<ConstExpr>(E)->Val, E->loc());
  case ExprKind::Var:
    return Ctx.mkVar(cast<VarExpr>(E)->Name, E->loc());
  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    return Ctx.mkLam(L->Param, cloneExpr(Ctx, L->Body), E->loc());
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return Ctx.mkIf(cloneExpr(Ctx, I->Cond), cloneExpr(Ctx, I->Then),
                    cloneExpr(Ctx, I->Else), E->loc());
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    return Ctx.mkApp(cloneExpr(Ctx, A->Fn), cloneExpr(Ctx, A->Arg), E->loc());
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    return Ctx.mkLetrec(L->Name, cloneExpr(Ctx, L->Bound),
                        cloneExpr(Ctx, L->Body), E->loc());
  }
  case ExprKind::Prim1: {
    const auto *P = cast<Prim1Expr>(E);
    return Ctx.mkPrim1(P->Op, cloneExpr(Ctx, P->Arg), E->loc());
  }
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    return Ctx.mkPrim2(P->Op, cloneExpr(Ctx, P->Lhs), cloneExpr(Ctx, P->Rhs),
                       E->loc());
  }
  case ExprKind::Annot: {
    const auto *N = cast<AnnotExpr>(E);
    const Annotation *Ann = Ctx.internAnnotation(*N->Ann);
    return Ctx.mkAnnot(Ann, cloneExpr(Ctx, N->Inner), E->loc());
  }
  }
  return nullptr;
}

size_t monsem::exprSize(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::Var:
    return 1;
  case ExprKind::Lam:
    return 1 + exprSize(cast<LamExpr>(E)->Body);
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return 1 + exprSize(I->Cond) + exprSize(I->Then) + exprSize(I->Else);
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    return 1 + exprSize(A->Fn) + exprSize(A->Arg);
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    return 1 + exprSize(L->Bound) + exprSize(L->Body);
  }
  case ExprKind::Prim1:
    return 1 + exprSize(cast<Prim1Expr>(E)->Arg);
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    return 1 + exprSize(P->Lhs) + exprSize(P->Rhs);
  }
  case ExprKind::Annot:
    return 1 + exprSize(cast<AnnotExpr>(E)->Inner);
  }
  return 0;
}

void monsem::collectAnnotations(const Expr *E,
                                std::vector<const Annotation *> &Out) {
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::Var:
    return;
  case ExprKind::Lam:
    collectAnnotations(cast<LamExpr>(E)->Body, Out);
    return;
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    collectAnnotations(I->Cond, Out);
    collectAnnotations(I->Then, Out);
    collectAnnotations(I->Else, Out);
    return;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    collectAnnotations(A->Fn, Out);
    collectAnnotations(A->Arg, Out);
    return;
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    collectAnnotations(L->Bound, Out);
    collectAnnotations(L->Body, Out);
    return;
  }
  case ExprKind::Prim1:
    collectAnnotations(cast<Prim1Expr>(E)->Arg, Out);
    return;
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    collectAnnotations(P->Lhs, Out);
    collectAnnotations(P->Rhs, Out);
    return;
  }
  case ExprKind::Annot: {
    const auto *N = cast<AnnotExpr>(E);
    Out.push_back(N->Ann);
    collectAnnotations(N->Inner, Out);
    return;
  }
  }
}

void monsem::collectExprs(const Expr *E, std::vector<const Expr *> &Out) {
  Out.push_back(E);
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::Var:
    return;
  case ExprKind::Lam:
    collectExprs(cast<LamExpr>(E)->Body, Out);
    return;
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    collectExprs(I->Cond, Out);
    collectExprs(I->Then, Out);
    collectExprs(I->Else, Out);
    return;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    collectExprs(A->Fn, Out);
    collectExprs(A->Arg, Out);
    return;
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    collectExprs(L->Bound, Out);
    collectExprs(L->Body, Out);
    return;
  }
  case ExprKind::Prim1:
    collectExprs(cast<Prim1Expr>(E)->Arg, Out);
    return;
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    collectExprs(P->Lhs, Out);
    collectExprs(P->Rhs, Out);
    return;
  }
  case ExprKind::Annot:
    collectExprs(cast<AnnotExpr>(E)->Inner, Out);
    return;
  }
}

namespace {
uint64_t hashChain(uint64_t H, std::string_view S) {
  H = fnv1aHash(S.data(), S.size(), H);
  return fnv1aHash("\x1f", 1, H); // field separator
}
} // namespace

uint64_t monsem::exprFingerprint(const Expr *E) {
  // Every kind has a fixed arity, so hashing the pre-order stream of
  // (kind, payload) pairs identifies the tree unambiguously.
  std::vector<const Expr *> Nodes;
  collectExprs(E, Nodes);
  uint64_t H = 0xcbf29ce484222325ull;
  for (const Expr *N : Nodes) {
    uint8_t K = static_cast<uint8_t>(N->kind());
    H = fnv1aHash(&K, 1, H);
    switch (N->kind()) {
    case ExprKind::Const: {
      const ConstVal &V = cast<ConstExpr>(N)->Val;
      uint8_t CK = static_cast<uint8_t>(V.K);
      H = fnv1aHash(&CK, 1, H);
      switch (V.K) {
      case ConstVal::Kind::Int: {
        int64_t I = V.Int;
        H = fnv1aHash(&I, sizeof(I), H);
        break;
      }
      case ConstVal::Kind::Bool:
        H = hashChain(H, V.Bool ? "t" : "f");
        break;
      case ConstVal::Kind::Str:
        H = hashChain(H, *V.Str);
        break;
      case ConstVal::Kind::Nil:
        break;
      }
      break;
    }
    case ExprKind::Var:
      H = hashChain(H, cast<VarExpr>(N)->Name.str());
      break;
    case ExprKind::Lam:
      H = hashChain(H, cast<LamExpr>(N)->Param.str());
      break;
    case ExprKind::Letrec:
      H = hashChain(H, cast<LetrecExpr>(N)->Name.str());
      break;
    case ExprKind::Prim1: {
      uint8_t Op = static_cast<uint8_t>(cast<Prim1Expr>(N)->Op);
      H = fnv1aHash(&Op, 1, H);
      break;
    }
    case ExprKind::Prim2: {
      uint8_t Op = static_cast<uint8_t>(cast<Prim2Expr>(N)->Op);
      H = fnv1aHash(&Op, 1, H);
      break;
    }
    case ExprKind::Annot:
      H = hashChain(H, cast<AnnotExpr>(N)->Ann->text());
      break;
    case ExprKind::If:
    case ExprKind::App:
      break;
    }
  }
  return H;
}

const Expr *monsem::stripAnnotations(AstContext &Ctx, const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Const:
    return Ctx.mkConst(cast<ConstExpr>(E)->Val, E->loc());
  case ExprKind::Var:
    return Ctx.mkVar(cast<VarExpr>(E)->Name, E->loc());
  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    return Ctx.mkLam(L->Param, stripAnnotations(Ctx, L->Body), E->loc());
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return Ctx.mkIf(stripAnnotations(Ctx, I->Cond),
                    stripAnnotations(Ctx, I->Then),
                    stripAnnotations(Ctx, I->Else), E->loc());
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    return Ctx.mkApp(stripAnnotations(Ctx, A->Fn),
                     stripAnnotations(Ctx, A->Arg), E->loc());
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    return Ctx.mkLetrec(L->Name, stripAnnotations(Ctx, L->Bound),
                        stripAnnotations(Ctx, L->Body), E->loc());
  }
  case ExprKind::Prim1: {
    const auto *P = cast<Prim1Expr>(E);
    return Ctx.mkPrim1(P->Op, stripAnnotations(Ctx, P->Arg), E->loc());
  }
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    return Ctx.mkPrim2(P->Op, stripAnnotations(Ctx, P->Lhs),
                       stripAnnotations(Ctx, P->Rhs), E->loc());
  }
  case ExprKind::Annot:
    return stripAnnotations(Ctx, cast<AnnotExpr>(E)->Inner);
  }
  return nullptr;
}
