//===- syntax/Ast.cpp - AST utilities --------------------------------------===//

#include "syntax/Ast.h"

using namespace monsem;

const char *monsem::prim1Name(Prim1Op Op) {
  switch (Op) {
  case Prim1Op::Neg:
    return "-";
  case Prim1Op::Not:
    return "not";
  case Prim1Op::Hd:
    return "hd";
  case Prim1Op::Tl:
    return "tl";
  case Prim1Op::Null:
    return "null";
  case Prim1Op::IsInt:
    return "int?";
  case Prim1Op::IsBool:
    return "bool?";
  case Prim1Op::IsPair:
    return "pair?";
  case Prim1Op::IsFun:
    return "fun?";
  case Prim1Op::Abs:
    return "abs";
  }
  return "?";
}

const char *monsem::prim2Name(Prim2Op Op) {
  switch (Op) {
  case Prim2Op::Add:
    return "+";
  case Prim2Op::Sub:
    return "-";
  case Prim2Op::Mul:
    return "*";
  case Prim2Op::Div:
    return "/";
  case Prim2Op::Mod:
    return "%";
  case Prim2Op::Eq:
    return "=";
  case Prim2Op::Ne:
    return "<>";
  case Prim2Op::Lt:
    return "<";
  case Prim2Op::Le:
    return "<=";
  case Prim2Op::Gt:
    return ">";
  case Prim2Op::Ge:
    return ">=";
  case Prim2Op::Cons:
    return ":";
  case Prim2Op::Min:
    return "min";
  case Prim2Op::Max:
    return "max";
  }
  return "?";
}

bool monsem::isInfix(Prim2Op Op) {
  switch (Op) {
  case Prim2Op::Min:
  case Prim2Op::Max:
    return false;
  default:
    return true;
  }
}

std::string Annotation::text() const {
  std::string Out = "{";
  if (Qual) {
    Out += Qual.str();
    Out += ':';
  }
  Out += Head.str();
  if (HasParams) {
    Out += '(';
    for (size_t I = 0; I < Params.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Params[I].str();
    }
    Out += ')';
  }
  Out += '}';
  return Out;
}

bool monsem::exprEquals(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (!A || !B || A->kind() != B->kind())
    return false;
  switch (A->kind()) {
  case ExprKind::Const:
    return cast<ConstExpr>(A)->Val == cast<ConstExpr>(B)->Val;
  case ExprKind::Var:
    return cast<VarExpr>(A)->Name == cast<VarExpr>(B)->Name;
  case ExprKind::Lam: {
    const auto *LA = cast<LamExpr>(A), *LB = cast<LamExpr>(B);
    return LA->Param == LB->Param && exprEquals(LA->Body, LB->Body);
  }
  case ExprKind::If: {
    const auto *IA = cast<IfExpr>(A), *IB = cast<IfExpr>(B);
    return exprEquals(IA->Cond, IB->Cond) && exprEquals(IA->Then, IB->Then) &&
           exprEquals(IA->Else, IB->Else);
  }
  case ExprKind::App: {
    const auto *AA = cast<AppExpr>(A), *AB = cast<AppExpr>(B);
    return exprEquals(AA->Fn, AB->Fn) && exprEquals(AA->Arg, AB->Arg);
  }
  case ExprKind::Letrec: {
    const auto *LA = cast<LetrecExpr>(A), *LB = cast<LetrecExpr>(B);
    return LA->Name == LB->Name && exprEquals(LA->Bound, LB->Bound) &&
           exprEquals(LA->Body, LB->Body);
  }
  case ExprKind::Prim1: {
    const auto *PA = cast<Prim1Expr>(A), *PB = cast<Prim1Expr>(B);
    return PA->Op == PB->Op && exprEquals(PA->Arg, PB->Arg);
  }
  case ExprKind::Prim2: {
    const auto *PA = cast<Prim2Expr>(A), *PB = cast<Prim2Expr>(B);
    return PA->Op == PB->Op && exprEquals(PA->Lhs, PB->Lhs) &&
           exprEquals(PA->Rhs, PB->Rhs);
  }
  case ExprKind::Annot: {
    const auto *NA = cast<AnnotExpr>(A), *NB = cast<AnnotExpr>(B);
    return *NA->Ann == *NB->Ann && exprEquals(NA->Inner, NB->Inner);
  }
  }
  return false;
}

const Expr *monsem::cloneExpr(AstContext &Ctx, const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Const:
    return Ctx.mkConst(cast<ConstExpr>(E)->Val, E->loc());
  case ExprKind::Var:
    return Ctx.mkVar(cast<VarExpr>(E)->Name, E->loc());
  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    return Ctx.mkLam(L->Param, cloneExpr(Ctx, L->Body), E->loc());
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return Ctx.mkIf(cloneExpr(Ctx, I->Cond), cloneExpr(Ctx, I->Then),
                    cloneExpr(Ctx, I->Else), E->loc());
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    return Ctx.mkApp(cloneExpr(Ctx, A->Fn), cloneExpr(Ctx, A->Arg), E->loc());
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    return Ctx.mkLetrec(L->Name, cloneExpr(Ctx, L->Bound),
                        cloneExpr(Ctx, L->Body), E->loc());
  }
  case ExprKind::Prim1: {
    const auto *P = cast<Prim1Expr>(E);
    return Ctx.mkPrim1(P->Op, cloneExpr(Ctx, P->Arg), E->loc());
  }
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    return Ctx.mkPrim2(P->Op, cloneExpr(Ctx, P->Lhs), cloneExpr(Ctx, P->Rhs),
                       E->loc());
  }
  case ExprKind::Annot: {
    const auto *N = cast<AnnotExpr>(E);
    const Annotation *Ann = Ctx.internAnnotation(*N->Ann);
    return Ctx.mkAnnot(Ann, cloneExpr(Ctx, N->Inner), E->loc());
  }
  }
  return nullptr;
}

size_t monsem::exprSize(const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::Var:
    return 1;
  case ExprKind::Lam:
    return 1 + exprSize(cast<LamExpr>(E)->Body);
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return 1 + exprSize(I->Cond) + exprSize(I->Then) + exprSize(I->Else);
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    return 1 + exprSize(A->Fn) + exprSize(A->Arg);
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    return 1 + exprSize(L->Bound) + exprSize(L->Body);
  }
  case ExprKind::Prim1:
    return 1 + exprSize(cast<Prim1Expr>(E)->Arg);
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    return 1 + exprSize(P->Lhs) + exprSize(P->Rhs);
  }
  case ExprKind::Annot:
    return 1 + exprSize(cast<AnnotExpr>(E)->Inner);
  }
  return 0;
}

void monsem::collectAnnotations(const Expr *E,
                                std::vector<const Annotation *> &Out) {
  switch (E->kind()) {
  case ExprKind::Const:
  case ExprKind::Var:
    return;
  case ExprKind::Lam:
    collectAnnotations(cast<LamExpr>(E)->Body, Out);
    return;
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    collectAnnotations(I->Cond, Out);
    collectAnnotations(I->Then, Out);
    collectAnnotations(I->Else, Out);
    return;
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    collectAnnotations(A->Fn, Out);
    collectAnnotations(A->Arg, Out);
    return;
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    collectAnnotations(L->Bound, Out);
    collectAnnotations(L->Body, Out);
    return;
  }
  case ExprKind::Prim1:
    collectAnnotations(cast<Prim1Expr>(E)->Arg, Out);
    return;
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    collectAnnotations(P->Lhs, Out);
    collectAnnotations(P->Rhs, Out);
    return;
  }
  case ExprKind::Annot: {
    const auto *N = cast<AnnotExpr>(E);
    Out.push_back(N->Ann);
    collectAnnotations(N->Inner, Out);
    return;
  }
  }
}

const Expr *monsem::stripAnnotations(AstContext &Ctx, const Expr *E) {
  switch (E->kind()) {
  case ExprKind::Const:
    return Ctx.mkConst(cast<ConstExpr>(E)->Val, E->loc());
  case ExprKind::Var:
    return Ctx.mkVar(cast<VarExpr>(E)->Name, E->loc());
  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    return Ctx.mkLam(L->Param, stripAnnotations(Ctx, L->Body), E->loc());
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    return Ctx.mkIf(stripAnnotations(Ctx, I->Cond),
                    stripAnnotations(Ctx, I->Then),
                    stripAnnotations(Ctx, I->Else), E->loc());
  }
  case ExprKind::App: {
    const auto *A = cast<AppExpr>(E);
    return Ctx.mkApp(stripAnnotations(Ctx, A->Fn),
                     stripAnnotations(Ctx, A->Arg), E->loc());
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    return Ctx.mkLetrec(L->Name, stripAnnotations(Ctx, L->Bound),
                        stripAnnotations(Ctx, L->Body), E->loc());
  }
  case ExprKind::Prim1: {
    const auto *P = cast<Prim1Expr>(E);
    return Ctx.mkPrim1(P->Op, stripAnnotations(Ctx, P->Arg), E->loc());
  }
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    return Ctx.mkPrim2(P->Op, stripAnnotations(Ctx, P->Lhs),
                       stripAnnotations(Ctx, P->Rhs), E->loc());
  }
  case ExprKind::Annot:
    return stripAnnotations(Ctx, cast<AnnotExpr>(E)->Inner);
  }
  return nullptr;
}
