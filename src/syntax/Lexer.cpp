//===- syntax/Lexer.cpp ----------------------------------------------------===//

#include "syntax/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace monsem;

const char *monsem::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Error:
    return "invalid token";
  case TokenKind::Ident:
    return "identifier";
  case TokenKind::IntLit:
    return "integer literal";
  case TokenKind::StrLit:
    return "string literal";
  case TokenKind::KwLambda:
    return "'lambda'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwThen:
    return "'then'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwLetrec:
    return "'letrec'";
  case TokenKind::KwLet:
    return "'let'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwDo:
    return "'do'";
  case TokenKind::KwSkip:
    return "'skip'";
  case TokenKind::KwPrint:
    return "'print'";
  case TokenKind::KwBegin:
    return "'begin'";
  case TokenKind::KwEnd:
    return "'end'";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Assign:
    return "':='";
  case TokenKind::Eq:
    return "'='";
  case TokenKind::Ne:
    return "'<>'";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  }
  return "?";
}

static const std::unordered_map<std::string_view, TokenKind> &keywordTable() {
  static const std::unordered_map<std::string_view, TokenKind> Table = {
      {"lambda", TokenKind::KwLambda}, {"if", TokenKind::KwIf},
      {"then", TokenKind::KwThen},     {"else", TokenKind::KwElse},
      {"letrec", TokenKind::KwLetrec}, {"let", TokenKind::KwLet},
      {"in", TokenKind::KwIn},         {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},   {"and", TokenKind::KwAnd},
      {"or", TokenKind::KwOr},         {"while", TokenKind::KwWhile},
      {"do", TokenKind::KwDo},         {"skip", TokenKind::KwSkip},
      {"print", TokenKind::KwPrint},   {"begin", TokenKind::KwBegin},
      {"end", TokenKind::KwEnd},
  };
  return Table;
}

Lexer::Lexer(std::string_view Source, DiagnosticSink &Diags)
    : Src(Source), Diags(Diags) {}

void Lexer::advance() {
  if (Pos >= Src.size())
    return;
  if (Src[Pos] == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  ++Pos;
}

void Lexer::skipTrivia() {
  while (Pos < Src.size()) {
    char C = Src[Pos];
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '-' && lookahead() == '-') {
      while (Pos < Src.size() && Src[Pos] != '\n')
        advance();
      continue;
    }
    break;
  }
}

Token Lexer::makeToken(TokenKind K) const {
  Token T;
  T.Kind = K;
  T.Loc = TokLoc;
  return T;
}

const Token &Lexer::peek() {
  if (!HasLookahead) {
    Lookahead = lexImpl();
    HasLookahead = true;
  }
  return Lookahead;
}

Token Lexer::next() {
  if (HasLookahead) {
    HasLookahead = false;
    return std::move(Lookahead);
  }
  return lexImpl();
}

Token Lexer::lexImpl() {
  skipTrivia();
  TokLoc = SourceLoc{Line, Col};
  if (Pos >= Src.size())
    return makeToken(TokenKind::Eof);

  char C = cur();

  if (std::isdigit(static_cast<unsigned char>(C))) {
    int64_t V = 0;
    bool Overflow = false;
    while (std::isdigit(static_cast<unsigned char>(cur()))) {
      int64_t Digit = cur() - '0';
      if (V > (INT64_MAX - Digit) / 10)
        Overflow = true;
      else
        V = V * 10 + Digit;
      advance();
    }
    if (Overflow)
      Diags.error(TokLoc, "integer literal too large");
    Token T = makeToken(TokenKind::IntLit);
    T.IntValue = V;
    return T;
  }

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
    size_t Start = Pos;
    while (std::isalnum(static_cast<unsigned char>(cur())) || cur() == '_' ||
           cur() == '\'' || cur() == '?')
      advance();
    std::string_view Text = Src.substr(Start, Pos - Start);
    auto It = keywordTable().find(Text);
    if (It != keywordTable().end())
      return makeToken(It->second);
    Token T = makeToken(TokenKind::Ident);
    T.Ident = Symbol::intern(Text);
    return T;
  }

  if (C == '"') {
    advance();
    std::string Text;
    while (Pos < Src.size() && cur() != '"') {
      char D = cur();
      if (D == '\\') {
        advance();
        switch (cur()) {
        case 'n':
          Text += '\n';
          break;
        case 't':
          Text += '\t';
          break;
        case '\\':
          Text += '\\';
          break;
        case '"':
          Text += '"';
          break;
        default:
          Diags.error(SourceLoc{Line, Col}, "unknown escape sequence");
          Text += cur();
          break;
        }
        advance();
        continue;
      }
      Text += D;
      advance();
    }
    if (Pos >= Src.size()) {
      Diags.error(TokLoc, "unterminated string literal");
      return makeToken(TokenKind::Error);
    }
    advance(); // Closing quote.
    Token T = makeToken(TokenKind::StrLit);
    T.StrValue = std::move(Text);
    return T;
  }

  advance();
  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen);
  case ')':
    return makeToken(TokenKind::RParen);
  case '[':
    return makeToken(TokenKind::LBracket);
  case ']':
    return makeToken(TokenKind::RBracket);
  case '{':
    return makeToken(TokenKind::LBrace);
  case '}':
    return makeToken(TokenKind::RBrace);
  case ',':
    return makeToken(TokenKind::Comma);
  case '.':
    return makeToken(TokenKind::Dot);
  case ';':
    return makeToken(TokenKind::Semi);
  case '\\':
    return makeToken(TokenKind::KwLambda);
  case ':':
    if (cur() == '=') {
      advance();
      return makeToken(TokenKind::Assign);
    }
    return makeToken(TokenKind::Colon);
  case '=':
    if (cur() == '=') {
      advance();
      return makeToken(TokenKind::Eq);
    }
    return makeToken(TokenKind::Eq);
  case '<':
    if (cur() == '=') {
      advance();
      return makeToken(TokenKind::Le);
    }
    if (cur() == '>') {
      advance();
      return makeToken(TokenKind::Ne);
    }
    return makeToken(TokenKind::Lt);
  case '>':
    if (cur() == '=') {
      advance();
      return makeToken(TokenKind::Ge);
    }
    return makeToken(TokenKind::Gt);
  case '+':
    return makeToken(TokenKind::Plus);
  case '-':
    return makeToken(TokenKind::Minus);
  case '*':
    return makeToken(TokenKind::Star);
  case '/':
    return makeToken(TokenKind::Slash);
  case '%':
    return makeToken(TokenKind::Percent);
  default: {
    Diags.error(TokLoc, std::string("unexpected character '") + C + "'");
    Token T = makeToken(TokenKind::Error);
    T.StrValue = std::string(1, C);
    return T;
  }
  }
}
