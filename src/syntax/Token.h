//===- syntax/Token.h - Tokens for L_lambda ---------------------*- C++ -*-===//
///
/// \file
/// Token kinds produced by the lexer for the concrete syntax of L_lambda
/// (and shared by the imperative language module).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SYNTAX_TOKEN_H
#define MONSEM_SYNTAX_TOKEN_H

#include "support/SourceLoc.h"
#include "support/Symbol.h"

#include <cstdint>
#include <string>

namespace monsem {

enum class TokenKind : uint8_t {
  Eof,
  Error,
  Ident,
  IntLit,
  StrLit,
  // Keywords.
  KwLambda,
  KwIf,
  KwThen,
  KwElse,
  KwLetrec,
  KwLet,
  KwIn,
  KwTrue,
  KwFalse,
  KwAnd,
  KwOr,
  // Imperative-module keywords (harmless extra reserved words for L_lambda).
  KwWhile,
  KwDo,
  KwSkip,
  KwPrint,
  KwBegin,
  KwEnd,
  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  LBrace,
  RBrace,
  Comma,
  Dot,
  Colon,
  Semi,
  Assign, // :=
  Eq,     // = or ==
  Ne,     // <>
  Lt,
  Le,
  Gt,
  Ge,
  Plus,
  Minus,
  Star,
  Slash,
  Percent,
};

const char *tokenKindName(TokenKind K);

struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  Symbol Ident;        ///< For Ident tokens.
  int64_t IntValue = 0; ///< For IntLit tokens.
  std::string StrValue; ///< For StrLit and Error tokens.

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace monsem

#endif // MONSEM_SYNTAX_TOKEN_H
