//===- syntax/Annotator.cpp ------------------------------------------------===//

#include "syntax/Annotator.h"

#include <algorithm>

using namespace monsem;

namespace {

class BodyAnnotator {
public:
  BodyAnnotator(AstContext &Ctx, const std::vector<Symbol> &Names,
                AnnotateOptions Opts)
      : Ctx(Ctx), Names(Names), Opts(Opts) {}

  const Expr *run(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Const:
    case ExprKind::Var:
      return E;
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      return Ctx.mkLam(L->Param, run(L->Body), E->loc());
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      return Ctx.mkIf(run(I->Cond), run(I->Then), run(I->Else), E->loc());
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      return Ctx.mkApp(run(A->Fn), run(A->Arg), E->loc());
    }
    case ExprKind::Letrec: {
      const auto *L = cast<LetrecExpr>(E);
      const Expr *Bound = run(L->Bound);
      if (shouldAnnotate(L->Name))
        Bound = annotateLambdaChain(L->Name, Bound);
      return Ctx.mkLetrec(L->Name, Bound, run(L->Body), E->loc());
    }
    case ExprKind::Prim1: {
      const auto *P = cast<Prim1Expr>(E);
      return Ctx.mkPrim1(P->Op, run(P->Arg), E->loc());
    }
    case ExprKind::Prim2: {
      const auto *P = cast<Prim2Expr>(E);
      return Ctx.mkPrim2(P->Op, run(P->Lhs), run(P->Rhs), E->loc());
    }
    case ExprKind::Annot: {
      const auto *N = cast<AnnotExpr>(E);
      return Ctx.mkAnnot(N->Ann, run(N->Inner), E->loc());
    }
    }
    return E;
  }

private:
  bool shouldAnnotate(Symbol Name) const {
    return Names.empty() ||
           std::find(Names.begin(), Names.end(), Name) != Names.end();
  }

  /// Rewrites `lambda x1. ... lambda xn. body` into
  /// `lambda x1. ... lambda xn. {f(x1,...,xn)}: body`. Non-lambda bindings
  /// get the annotation directly on the bound expression (the demon
  /// example's `letrec l1 = {l1}:(...)` convention).
  const Expr *annotateLambdaChain(Symbol Name, const Expr *Bound) {
    std::vector<const LamExpr *> Chain;
    const Expr *Body = Bound;
    while (const auto *L = dyn_cast<LamExpr>(Body)) {
      Chain.push_back(L);
      Body = L->Body;
    }
    // Idempotence: skip only if an identical annotation (same label *and*
    // qualifier) is already present; annotations for other monitors stack.
    for (const Expr *Probe = Body;;) {
      const auto *Already = dyn_cast<AnnotExpr>(Probe);
      if (!Already)
        break;
      if (Already->Ann->Head == Name && Already->Ann->Qual == Opts.Qualifier)
        return Bound;
      Probe = Already->Inner;
    }

    Annotation Ann;
    Ann.Qual = Opts.Qualifier;
    Ann.Head = Name;
    if (Opts.WithParams) {
      Ann.HasParams = true;
      for (const LamExpr *L : Chain)
        Ann.Params.push_back(L->Param);
    }
    const Expr *New =
        Ctx.mkAnnot(Ctx.internAnnotation(std::move(Ann)), Body, Body->loc());
    for (size_t I = Chain.size(); I-- > 0;)
      New = Ctx.mkLam(Chain[I]->Param, New, Chain[I]->loc());
    return New;
  }

  AstContext &Ctx;
  const std::vector<Symbol> &Names;
  AnnotateOptions Opts;
};

class PointLabeler {
public:
  PointLabeler(AstContext &Ctx, std::string_view Prefix, Symbol Qual)
      : Ctx(Ctx), Prefix(Prefix), Qual(Qual) {}

  const Expr *run(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Const:
    case ExprKind::Var:
      return E;
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      return Ctx.mkLam(L->Param, run(L->Body), E->loc());
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      return Ctx.mkIf(run(I->Cond), run(I->Then), run(I->Else), E->loc());
    }
    case ExprKind::App: {
      const auto *A = cast<AppExpr>(E);
      const Expr *New = Ctx.mkApp(run(A->Fn), run(A->Arg), E->loc());
      Annotation Ann;
      Ann.Qual = Qual;
      Ann.Head = Symbol::intern(Prefix + std::to_string(Counter++));
      Ann.Loc = E->loc();
      return Ctx.mkAnnot(Ctx.internAnnotation(std::move(Ann)), New, E->loc());
    }
    case ExprKind::Letrec: {
      const auto *L = cast<LetrecExpr>(E);
      return Ctx.mkLetrec(L->Name, run(L->Bound), run(L->Body), E->loc());
    }
    case ExprKind::Prim1: {
      const auto *P = cast<Prim1Expr>(E);
      return Ctx.mkPrim1(P->Op, run(P->Arg), E->loc());
    }
    case ExprKind::Prim2: {
      const auto *P = cast<Prim2Expr>(E);
      return Ctx.mkPrim2(P->Op, run(P->Lhs), run(P->Rhs), E->loc());
    }
    case ExprKind::Annot: {
      const auto *N = cast<AnnotExpr>(E);
      return Ctx.mkAnnot(N->Ann, run(N->Inner), E->loc());
    }
    }
    return E;
  }

  unsigned numLabels() const { return Counter; }

private:
  AstContext &Ctx;
  std::string Prefix;
  Symbol Qual;
  unsigned Counter = 0;
};

} // namespace

const Expr *monsem::annotateFunctionBodies(AstContext &Ctx, const Expr *E,
                                           const std::vector<Symbol> &Names,
                                           AnnotateOptions Opts) {
  return BodyAnnotator(Ctx, Names, Opts).run(E);
}

const Expr *monsem::labelProgramPoints(AstContext &Ctx, const Expr *E,
                                       std::string_view Prefix,
                                       Symbol Qualifier, unsigned *NumLabels) {
  PointLabeler L(Ctx, Prefix, Qualifier);
  const Expr *Out = L.run(E);
  if (NumLabels)
    *NumLabels = L.numLabels();
  return Out;
}
