//===- syntax/Parser.cpp ---------------------------------------------------===//

#include "syntax/Parser.h"

#include "syntax/Lexer.h"

#include <unordered_map>
#include <unordered_set>
#include <vector>

using namespace monsem;

std::optional<Prim1Op> monsem::lookupPrim1(Symbol Name) {
  static const std::unordered_map<std::string_view, Prim1Op> Table = {
      {"hd", Prim1Op::Hd},      {"tl", Prim1Op::Tl},
      {"null", Prim1Op::Null},  {"not", Prim1Op::Not},
      {"abs", Prim1Op::Abs},    {"int?", Prim1Op::IsInt},
      {"bool?", Prim1Op::IsBool}, {"pair?", Prim1Op::IsPair},
      {"fun?", Prim1Op::IsFun},
  };
  auto It = Table.find(Name.str());
  if (It == Table.end())
    return std::nullopt;
  return It->second;
}

std::optional<Prim2Op> monsem::lookupPrim2(Symbol Name) {
  static const std::unordered_map<std::string_view, Prim2Op> Table = {
      {"min", Prim2Op::Min},
      {"max", Prim2Op::Max},
  };
  auto It = Table.find(Name.str());
  if (It == Table.end())
    return std::nullopt;
  return It->second;
}

namespace {

class Parser {
public:
  Parser(AstContext &Ctx, Lexer &Lex, DiagnosticSink &Diags)
      : Ctx(Ctx), Lex(Lex), Diags(Diags) {}

  const Expr *parseOne() { return parseExpr(); }

  const Expr *parseTop() {
    const Expr *E = parseExpr();
    if (!E)
      return nullptr;
    if (!Lex.peek().is(TokenKind::Eof)) {
      error("expected end of input, found " +
            std::string(tokenKindName(Lex.peek().Kind)));
      return nullptr;
    }
    return E;
  }

private:
  AstContext &Ctx;
  Lexer &Lex;
  DiagnosticSink &Diags;

  void error(const std::string &Msg) { Diags.error(Lex.peek().Loc, Msg); }

  bool expect(TokenKind K) {
    if (Lex.peek().is(K)) {
      Lex.next();
      return true;
    }
    error(std::string("expected ") + tokenKindName(K) + ", found " +
          tokenKindName(Lex.peek().Kind));
    return false;
  }

  /// expr := '{'ann'}' ':' expr | lambda | if | letrec | let | orExpr
  const Expr *parseExpr() {
    const Token &T = Lex.peek();
    switch (T.Kind) {
    case TokenKind::LBrace:
      return parseAnnotated();
    case TokenKind::KwLambda:
      return parseLambda();
    case TokenKind::KwIf:
      return parseIf();
    case TokenKind::KwLetrec:
      return parseLetBinding(/*Recursive=*/true);
    case TokenKind::KwLet:
      return parseLetBinding(/*Recursive=*/false);
    default:
      return parseOr();
    }
  }

  const Expr *parseAnnotated() {
    SourceLoc Loc = Lex.peek().Loc;
    Lex.next(); // '{'
    Annotation Ann;
    Ann.Loc = Loc;
    if (!Lex.peek().is(TokenKind::Ident)) {
      error("expected annotation label");
      return nullptr;
    }
    Ann.Head = Lex.next().Ident;
    // Optional qualifier: {qual:head...}.
    if (Lex.peek().is(TokenKind::Colon)) {
      Lex.next();
      if (!Lex.peek().is(TokenKind::Ident)) {
        error("expected annotation label after qualifier");
        return nullptr;
      }
      Ann.Qual = Ann.Head;
      Ann.Head = Lex.next().Ident;
    }
    // Optional parameter list: {f(x, y)}.
    if (Lex.peek().is(TokenKind::LParen)) {
      Lex.next();
      Ann.HasParams = true;
      if (!Lex.peek().is(TokenKind::RParen)) {
        while (true) {
          if (!Lex.peek().is(TokenKind::Ident)) {
            error("expected parameter name in annotation");
            return nullptr;
          }
          Ann.Params.push_back(Lex.next().Ident);
          if (!Lex.peek().is(TokenKind::Comma))
            break;
          Lex.next();
        }
      }
      if (!expect(TokenKind::RParen))
        return nullptr;
    }
    if (!expect(TokenKind::RBrace) || !expect(TokenKind::Colon))
      return nullptr;
    const Expr *Inner = parseExpr();
    if (!Inner)
      return nullptr;
    return Ctx.mkAnnot(Ctx.internAnnotation(std::move(Ann)), Inner, Loc);
  }

  const Expr *parseLambda() {
    SourceLoc Loc = Lex.next().Loc; // 'lambda'
    std::vector<std::pair<Symbol, SourceLoc>> Params;
    while (Lex.peek().is(TokenKind::Ident)) {
      const Token &T = Lex.peek();
      Params.emplace_back(T.Ident, T.Loc);
      Lex.next();
    }
    if (Params.empty()) {
      error("expected parameter name after 'lambda'");
      return nullptr;
    }
    if (!expect(TokenKind::Dot))
      return nullptr;
    const Expr *Body = parseExpr();
    if (!Body)
      return nullptr;
    for (size_t I = Params.size(); I-- > 0;)
      Body = Ctx.mkLam(Params[I].first, Body,
                       I == 0 ? Loc : Params[I].second);
    return Body;
  }

  const Expr *parseIf() {
    SourceLoc Loc = Lex.next().Loc; // 'if'
    const Expr *C = parseExpr();
    if (!C || !expect(TokenKind::KwThen))
      return nullptr;
    const Expr *T = parseExpr();
    if (!T || !expect(TokenKind::KwElse))
      return nullptr;
    const Expr *E = parseExpr();
    if (!E)
      return nullptr;
    return Ctx.mkIf(C, T, E, Loc);
  }

  const Expr *parseLetBinding(bool Recursive) {
    SourceLoc Loc = Lex.next().Loc; // 'letrec' / 'let'
    if (!Lex.peek().is(TokenKind::Ident)) {
      error("expected binding name");
      return nullptr;
    }
    Symbol Name = Lex.next().Ident;
    if (!expect(TokenKind::Eq))
      return nullptr;
    const Expr *Bound = parseExpr();
    if (!Bound || !expect(TokenKind::KwIn))
      return nullptr;
    const Expr *Body = parseExpr();
    if (!Body)
      return nullptr;
    if (Recursive)
      return Ctx.mkLetrec(Name, Bound, Body, Loc);
    // let x = e1 in e2  ==  (lambda x. e2) e1
    return Ctx.mkApp(Ctx.mkLam(Name, Body, Loc), Bound, Loc);
  }

  const Expr *parseOr() {
    const Expr *L = parseAnd();
    if (!L)
      return nullptr;
    while (Lex.peek().is(TokenKind::KwOr)) {
      SourceLoc Loc = Lex.next().Loc;
      const Expr *R = parseAnd();
      if (!R)
        return nullptr;
      // Short-circuit: a or b == if a then true else b.
      L = Ctx.mkIf(L, Ctx.mkBool(true, Loc), R, Loc);
    }
    return L;
  }

  const Expr *parseAnd() {
    const Expr *L = parseCmp();
    if (!L)
      return nullptr;
    while (Lex.peek().is(TokenKind::KwAnd)) {
      SourceLoc Loc = Lex.next().Loc;
      const Expr *R = parseCmp();
      if (!R)
        return nullptr;
      // Short-circuit: a and b == if a then b else false.
      L = Ctx.mkIf(L, R, Ctx.mkBool(false, Loc), Loc);
    }
    return L;
  }

  const Expr *parseCmp() {
    const Expr *L = parseCons();
    if (!L)
      return nullptr;
    Prim2Op Op;
    switch (Lex.peek().Kind) {
    case TokenKind::Eq:
      Op = Prim2Op::Eq;
      break;
    case TokenKind::Ne:
      Op = Prim2Op::Ne;
      break;
    case TokenKind::Lt:
      Op = Prim2Op::Lt;
      break;
    case TokenKind::Le:
      Op = Prim2Op::Le;
      break;
    case TokenKind::Gt:
      Op = Prim2Op::Gt;
      break;
    case TokenKind::Ge:
      Op = Prim2Op::Ge;
      break;
    default:
      return L;
    }
    SourceLoc Loc = Lex.next().Loc;
    const Expr *R = parseCons();
    if (!R)
      return nullptr;
    return Ctx.mkPrim2(Op, L, R, Loc);
  }

  const Expr *parseCons() {
    const Expr *L = parseAdd();
    if (!L)
      return nullptr;
    if (!Lex.peek().is(TokenKind::Colon))
      return L;
    SourceLoc Loc = Lex.next().Loc;
    const Expr *R = parseCons(); // Right-associative.
    if (!R)
      return nullptr;
    return Ctx.mkPrim2(Prim2Op::Cons, L, R, Loc);
  }

  const Expr *parseAdd() {
    const Expr *L = parseMul();
    if (!L)
      return nullptr;
    while (true) {
      Prim2Op Op;
      if (Lex.peek().is(TokenKind::Plus))
        Op = Prim2Op::Add;
      else if (Lex.peek().is(TokenKind::Minus))
        Op = Prim2Op::Sub;
      else
        return L;
      SourceLoc Loc = Lex.next().Loc;
      const Expr *R = parseMul();
      if (!R)
        return nullptr;
      L = Ctx.mkPrim2(Op, L, R, Loc);
    }
  }

  const Expr *parseMul() {
    const Expr *L = parseUnary();
    if (!L)
      return nullptr;
    while (true) {
      Prim2Op Op;
      if (Lex.peek().is(TokenKind::Star))
        Op = Prim2Op::Mul;
      else if (Lex.peek().is(TokenKind::Slash))
        Op = Prim2Op::Div;
      else if (Lex.peek().is(TokenKind::Percent))
        Op = Prim2Op::Mod;
      else
        return L;
      SourceLoc Loc = Lex.next().Loc;
      const Expr *R = parseUnary();
      if (!R)
        return nullptr;
      L = Ctx.mkPrim2(Op, L, R, Loc);
    }
  }

  const Expr *parseUnary() {
    if (Lex.peek().is(TokenKind::Minus)) {
      SourceLoc Loc = Lex.next().Loc;
      const Expr *E = parseUnary();
      if (!E)
        return nullptr;
      // Fold negation of literals so `-3` is a constant.
      if (const auto *C = dyn_cast<ConstExpr>(E);
          C && C->Val.K == ConstVal::Kind::Int)
        return Ctx.mkInt(-C->Val.Int, Loc);
      return Ctx.mkPrim1(Prim1Op::Neg, E, Loc);
    }
    return parseApp();
  }

  static bool startsAtom(TokenKind K) {
    switch (K) {
    case TokenKind::IntLit:
    case TokenKind::StrLit:
    case TokenKind::Ident:
    case TokenKind::KwTrue:
    case TokenKind::KwFalse:
    case TokenKind::LParen:
    case TokenKind::LBracket:
      return true;
    default:
      return false;
    }
  }

  const Expr *parseApp() {
    const Expr *E = parseAtom();
    if (!E)
      return nullptr;
    while (startsAtom(Lex.peek().Kind)) {
      SourceLoc Loc = Lex.peek().Loc;
      const Expr *Arg = parseAtom();
      if (!Arg)
        return nullptr;
      E = Ctx.mkApp(E, Arg, Loc);
    }
    return E;
  }

  const Expr *parseAtom() {
    const Token &T = Lex.peek();
    switch (T.Kind) {
    case TokenKind::IntLit: {
      Token Tok = Lex.next();
      return Ctx.mkInt(Tok.IntValue, Tok.Loc);
    }
    case TokenKind::StrLit: {
      Token Tok = Lex.next();
      return Ctx.mkStr(std::move(Tok.StrValue), Tok.Loc);
    }
    case TokenKind::KwTrue: {
      SourceLoc Loc = Lex.next().Loc;
      return Ctx.mkBool(true, Loc);
    }
    case TokenKind::KwFalse: {
      SourceLoc Loc = Lex.next().Loc;
      return Ctx.mkBool(false, Loc);
    }
    case TokenKind::Ident: {
      Token Tok = Lex.next();
      return Ctx.mkVar(Tok.Ident, Tok.Loc);
    }
    case TokenKind::LParen: {
      Lex.next();
      const Expr *E = parseExpr();
      if (!E || !expect(TokenKind::RParen))
        return nullptr;
      return E;
    }
    case TokenKind::LBracket:
      return parseList();
    default:
      error(std::string("expected expression, found ") +
            tokenKindName(T.Kind));
      return nullptr;
    }
  }

  const Expr *parseList() {
    SourceLoc Loc = Lex.next().Loc; // '['
    std::vector<const Expr *> Elems;
    if (!Lex.peek().is(TokenKind::RBracket)) {
      while (true) {
        const Expr *E = parseExpr();
        if (!E)
          return nullptr;
        Elems.push_back(E);
        if (!Lex.peek().is(TokenKind::Comma))
          break;
        Lex.next();
      }
    }
    if (!expect(TokenKind::RBracket))
      return nullptr;
    const Expr *List = Ctx.mkNil(Loc);
    for (size_t I = Elems.size(); I-- > 0;)
      List = Ctx.mkPrim2(Prim2Op::Cons, Elems[I], List, Loc);
    return List;
  }
};

//===----------------------------------------------------------------------===//
// Primitive-application resolution
//===----------------------------------------------------------------------===//

/// Rewrites saturated applications of unshadowed primitive names into
/// Prim1/Prim2 nodes. Rebuilds the tree bottom-up; unchanged structure is
/// still rebuilt (cheap, arena-allocated).
class PrimResolver {
public:
  explicit PrimResolver(AstContext &Ctx) : Ctx(Ctx) {}

  const Expr *resolve(const Expr *E) {
    switch (E->kind()) {
    case ExprKind::Const:
    case ExprKind::Var:
      return E;
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      ScopeGuard G(*this, L->Param);
      return Ctx.mkLam(L->Param, resolve(L->Body), E->loc());
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      return Ctx.mkIf(resolve(I->Cond), resolve(I->Then), resolve(I->Else),
                      E->loc());
    }
    case ExprKind::App:
      return resolveApp(cast<AppExpr>(E));
    case ExprKind::Letrec: {
      const auto *L = cast<LetrecExpr>(E);
      ScopeGuard G(*this, L->Name);
      return Ctx.mkLetrec(L->Name, resolve(L->Bound), resolve(L->Body),
                          E->loc());
    }
    case ExprKind::Prim1: {
      const auto *P = cast<Prim1Expr>(E);
      return Ctx.mkPrim1(P->Op, resolve(P->Arg), E->loc());
    }
    case ExprKind::Prim2: {
      const auto *P = cast<Prim2Expr>(E);
      return Ctx.mkPrim2(P->Op, resolve(P->Lhs), resolve(P->Rhs), E->loc());
    }
    case ExprKind::Annot: {
      const auto *N = cast<AnnotExpr>(E);
      return Ctx.mkAnnot(N->Ann, resolve(N->Inner), E->loc());
    }
    }
    return E;
  }

private:
  struct ScopeGuard {
    ScopeGuard(PrimResolver &R, Symbol S) : R(R), S(S) {
      ++R.Shadowed[S.id()];
    }
    ~ScopeGuard() { --R.Shadowed[S.id()]; }
    PrimResolver &R;
    Symbol S;
  };

  bool isShadowed(Symbol S) const {
    auto It = Shadowed.find(S.id());
    return It != Shadowed.end() && It->second > 0;
  }

  const Expr *resolveApp(const AppExpr *E) {
    // Unwind the application spine.
    std::vector<const AppExpr *> Spine;
    const Expr *Head = E;
    while (const auto *A = dyn_cast<AppExpr>(Head)) {
      Spine.push_back(A);
      Head = A->Fn;
    }
    // Spine.back() is the innermost application.
    if (const auto *V = dyn_cast<VarExpr>(Head); V && !isShadowed(V->Name)) {
      size_t NArgs = Spine.size();
      if (auto Op1 = lookupPrim1(V->Name); Op1 && NArgs >= 1) {
        const AppExpr *Inner = Spine[NArgs - 1];
        const Expr *Base =
            Ctx.mkPrim1(*Op1, resolve(Inner->Arg), Inner->loc());
        return rebuildOuter(Base, Spine, NArgs - 1);
      }
      if (auto Op2 = lookupPrim2(V->Name); Op2 && NArgs >= 2) {
        const AppExpr *Inner = Spine[NArgs - 1];
        const AppExpr *Second = Spine[NArgs - 2];
        const Expr *Base = Ctx.mkPrim2(*Op2, resolve(Inner->Arg),
                                       resolve(Second->Arg), Second->loc());
        return rebuildOuter(Base, Spine, NArgs - 2);
      }
    }
    return Ctx.mkApp(resolve(E->Fn), resolve(E->Arg), E->loc());
  }

  /// Reapplies the remaining outer spine applications (indices
  /// [0, Remaining) in outermost-first order) on top of \p Base.
  const Expr *rebuildOuter(const Expr *Base,
                           const std::vector<const AppExpr *> &Spine,
                           size_t Remaining) {
    for (size_t I = Remaining; I-- > 0;)
      Base = Ctx.mkApp(Base, resolve(Spine[I]->Arg), Spine[I]->loc());
    return Base;
  }

  AstContext &Ctx;
  std::unordered_map<unsigned, int> Shadowed;
};

} // namespace

const Expr *monsem::parseProgram(AstContext &Ctx, std::string_view Source,
                                 DiagnosticSink &Diags, ParseOptions Opts) {
  Lexer Lex(Source, Diags);
  Parser P(Ctx, Lex, Diags);
  const Expr *E = P.parseTop();
  if (!E || Diags.hasErrors())
    return nullptr;
  if (Opts.ResolvePrims)
    E = PrimResolver(Ctx).resolve(E);
  return E;
}

const Expr *monsem::parseExprWith(AstContext &Ctx, Lexer &Lex,
                                  DiagnosticSink &Diags, ParseOptions Opts) {
  Parser P(Ctx, Lex, Diags);
  const Expr *E = P.parseOne();
  if (!E || Diags.hasErrors())
    return nullptr;
  if (Opts.ResolvePrims)
    E = PrimResolver(Ctx).resolve(E);
  return E;
}
