//===- pe/PartialEval.cpp --------------------------------------------------===//

#include "pe/PartialEval.h"

#include "semantics/Primitives.h"
#include "support/Arena.h"
#include "syntax/Parser.h"

#include <string>

using namespace monsem;

namespace {

struct SClosure;

/// A specialization-time value: fully known (Ground), a known function
/// (Fun), or residual code (Dyn).
struct PEVal {
  enum class Kind : uint8_t { Ground, Fun, Dyn };
  Kind K = Kind::Dyn;
  Value V;                   ///< Ground (incl. primitives, ground cells).
  SClosure *F = nullptr;     ///< Fun.
  const Expr *Res = nullptr; ///< Dyn (expression in the output context).

  static PEVal ground(Value V) {
    PEVal R;
    R.K = Kind::Ground;
    R.V = V;
    return R;
  }
  static PEVal fun(SClosure *F) {
    PEVal R;
    R.K = Kind::Fun;
    R.F = F;
    return R;
  }
  static PEVal dyn(const Expr *E) {
    PEVal R;
    R.K = Kind::Dyn;
    R.Res = E;
    return R;
  }
  bool isStatic() const { return K != Kind::Dyn; }
};

struct PEEnvNode {
  Symbol Name;
  PEVal Val;
  PEEnvNode *Parent;
};

/// A known function value. RecName is set for letrec-bound functions;
/// such functions may acquire one memoized residual specialization
/// (SpecName/SpecLam) emitted at their letrec site.
struct SClosure {
  Symbol Param;
  const Expr *Body;
  PEEnvNode *Env;
  Symbol RecName;

  Symbol SpecName = {};
  const Expr *SpecLam = nullptr;
  bool SpecInProgress = false;
  bool Emitted = false; ///< The letrec scope has closed.
};

class PE {
public:
  PE(AstContext &Out, PEOptions Opts) : Out(Out), Opts(Opts) {}

  PEResult run(const Expr *Program) {
    PEVal R = peval(Program, nullptr, 0);
    PEResult Result;
    if (!GaveUp)
      Result.Residual = lift(R); // May itself give up.
    if (GaveUp) {
      Result.GaveUp = true;
      Result.Residual = cloneExpr(Out, Program);
    }
    Result.Steps = Steps;
    Result.Unfolds = Unfolds;
    Result.Specializations = Specializations;
    return Result;
  }

private:
  AstContext &Out;
  PEOptions Opts;
  Arena A;
  uint64_t Steps = 0;
  unsigned Depth = 0;
  unsigned Unfolds = 0;
  unsigned Specializations = 0;
  unsigned FreshCounter = 0;
  bool GaveUp = false;

  Symbol fresh(std::string_view Base) {
    return Symbol::intern(std::string(Base) + "_" +
                          std::to_string(FreshCounter++));
  }

  PEEnvNode *extend(PEEnvNode *Env, Symbol Name, PEVal V) {
    return A.create<PEEnvNode>(Name, V, Env);
  }

  PEVal giveUp() {
    GaveUp = true;
    return PEVal::dyn(Out.mkInt(0));
  }

  //===--------------------------------------------------------------------===//
  // Lifting static values into residual code
  //===--------------------------------------------------------------------===//

  const Expr *liftValue(Value V) {
    switch (V.kind()) {
    case ValueKind::Int:
      return Out.mkInt(V.asInt());
    case ValueKind::Bool:
      return Out.mkBool(V.asBool());
    case ValueKind::Nil:
      return Out.mkNil();
    case ValueKind::Str:
      return Out.mkStr(V.asStr());
    case ValueKind::Cell:
      return Out.mkPrim2(Prim2Op::Cons, liftValue(V.asCell()->Head),
                         liftValue(V.asCell()->Tail));
    case ValueKind::Prim1:
      return Out.mkVar(Symbol::intern(prim1Name(V.asPrim1())));
    case ValueKind::Prim2: {
      // Only named (non-infix) primitives can occur as first-class
      // statics; infix operator values are never bound in environments.
      if (isInfix(V.asPrim2())) {
        GaveUp = true;
        return Out.mkInt(0);
      }
      return Out.mkVar(Symbol::intern(prim2Name(V.asPrim2())));
    }
    case ValueKind::Prim2Partial: {
      PrimPartial *PP = V.asPrim2Partial();
      if (isInfix(PP->Op)) {
        GaveUp = true;
        return Out.mkInt(0);
      }
      return Out.mkApp(Out.mkVar(Symbol::intern(prim2Name(PP->Op))),
                       liftValue(PP->First));
    }
    default:
      GaveUp = true;
      return Out.mkInt(0);
    }
  }

  /// Residualizes a known closure as a lambda with a fresh parameter.
  const Expr *liftClosure(SClosure *C) {
    Symbol P = fresh(C->Param.str());
    PEEnvNode *Env = extend(C->Env, C->Param, PEVal::dyn(Out.mkVar(P)));
    // A residual function body starts a fresh unfolding context.
    const Expr *Body = lift(peval(C->Body, Env, 0));
    return Out.mkLam(P, Body);
  }

  const Expr *lift(PEVal V) {
    switch (V.K) {
    case PEVal::Kind::Ground:
      return liftValue(V.V);
    case PEVal::Kind::Fun:
      return liftClosure(V.F);
    case PEVal::Kind::Dyn:
      return V.Res;
    }
    return nullptr;
  }

  //===--------------------------------------------------------------------===//
  // Function application
  //===--------------------------------------------------------------------===//

  /// The memoized dynamic-argument specialization of a letrec function.
  Symbol ensureSpec(SClosure *C) {
    if (C->Emitted && !C->SpecLam) {
      // The letrec scope has already closed; a fresh specialization could
      // not be scoped. Sound fallback: give up.
      GaveUp = true;
      return C->RecName;
    }
    if (C->SpecName && (C->SpecInProgress || C->SpecLam))
      return C->SpecName;
    ++Specializations;
    C->SpecName = fresh(C->RecName ? C->RecName.str() : "fn");
    C->SpecInProgress = true;
    Symbol P = fresh(C->Param.str());
    PEEnvNode *Env = extend(C->Env, C->Param, PEVal::dyn(Out.mkVar(P)));
    // The memoized residual body starts a fresh unfolding context.
    const Expr *Body = lift(peval(C->Body, Env, 0));
    C->SpecLam = Out.mkLam(P, Body);
    C->SpecInProgress = false;
    return C->SpecName;
  }

  PEVal apply(PEVal Fn, PEVal Arg, unsigned UDepth) {
    if (GaveUp)
      return Fn;
    switch (Fn.K) {
    case PEVal::Kind::Fun: {
      SClosure *C = Fn.F;
      bool Trivial =
          Arg.isStatic() || (Arg.Res && Arg.Res->kind() == ExprKind::Var);
      if (Trivial && UDepth < Opts.MaxUnfoldDepth) {
        ++Unfolds;
        PEEnvNode *Env = extend(C->Env, C->Param, Arg);
        return peval(C->Body, Env, UDepth + 1);
      }
      if (C->RecName && Arg.K == PEVal::Kind::Dyn) {
        // Call the memoized residual version.
        Symbol Name = ensureSpec(C);
        return PEVal::dyn(Out.mkApp(Out.mkVar(Name), lift(Arg)));
      }
      // Residual beta-redex: keeps the argument's evaluation in place and
      // specializes the body against a dynamic parameter.
      Symbol P = fresh(C->Param.str());
      PEEnvNode *Env = extend(C->Env, C->Param, PEVal::dyn(Out.mkVar(P)));
      const Expr *Body = lift(peval(C->Body, Env, UDepth + 1));
      return PEVal::dyn(Out.mkApp(Out.mkLam(P, Body), lift(Arg)));
    }
    case PEVal::Kind::Ground: {
      Value F = Fn.V;
      if (F.is(ValueKind::Prim1) && Arg.K == PEVal::Kind::Ground) {
        PrimResult R = applyPrim1(F.asPrim1(), Arg.V, A);
        if (R.Ok)
          return PEVal::ground(R.Val);
        return PEVal::dyn(Out.mkApp(lift(Fn), lift(Arg)));
      }
      if (F.is(ValueKind::Prim2) && Arg.K == PEVal::Kind::Ground) {
        PrimPartial *PP = A.create<PrimPartial>(F.asPrim2(), Arg.V);
        return PEVal::ground(Value::mkPrim2Partial(PP));
      }
      if (F.is(ValueKind::Prim2Partial) && Arg.K == PEVal::Kind::Ground) {
        PrimPartial *PP = F.asPrim2Partial();
        PrimResult R = applyPrim2(PP->Op, PP->First, Arg.V, A);
        if (R.Ok)
          return PEVal::ground(R.Val);
        return PEVal::dyn(Out.mkApp(lift(Fn), lift(Arg)));
      }
      // Non-function ground value or a function/argument mix we do not
      // fold: keep the application (run-time error or prim application).
      return PEVal::dyn(Out.mkApp(lift(Fn), lift(Arg)));
    }
    case PEVal::Kind::Dyn:
      return PEVal::dyn(Out.mkApp(Fn.Res, lift(Arg)));
    }
    return giveUp();
  }

  //===--------------------------------------------------------------------===//
  // The specializer proper
  //===--------------------------------------------------------------------===//

  /// Syntactic occurrence check (conservative: ignores shadowing).
  static bool mentionsVar(const Expr *E, Symbol S) {
    switch (E->kind()) {
    case ExprKind::Const:
      return false;
    case ExprKind::Var:
      return cast<VarExpr>(E)->Name == S;
    case ExprKind::Lam:
      return mentionsVar(cast<LamExpr>(E)->Body, S);
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      return mentionsVar(I->Cond, S) || mentionsVar(I->Then, S) ||
             mentionsVar(I->Else, S);
    }
    case ExprKind::App: {
      const auto *Ap = cast<AppExpr>(E);
      return mentionsVar(Ap->Fn, S) || mentionsVar(Ap->Arg, S);
    }
    case ExprKind::Letrec: {
      const auto *L = cast<LetrecExpr>(E);
      return mentionsVar(L->Bound, S) || mentionsVar(L->Body, S);
    }
    case ExprKind::Prim1:
      return mentionsVar(cast<Prim1Expr>(E)->Arg, S);
    case ExprKind::Prim2: {
      const auto *P = cast<Prim2Expr>(E);
      return mentionsVar(P->Lhs, S) || mentionsVar(P->Rhs, S);
    }
    case ExprKind::Annot:
      return mentionsVar(cast<AnnotExpr>(E)->Inner, S);
    }
    return true;
  }

  PEVal peval(const Expr *E, PEEnvNode *Env, unsigned UDepth) {
    if (GaveUp)
      return PEVal::dyn(Out.mkInt(0));
    if (++Steps > Opts.MaxSteps || Depth >= Opts.MaxDepth)
      return giveUp();
    ++Depth;
    PEVal R = pevalImpl(E, Env, UDepth);
    --Depth;
    return R;
  }

  PEVal pevalImpl(const Expr *E, PEEnvNode *Env, unsigned UDepth) {
    switch (E->kind()) {
    case ExprKind::Const: {
      const ConstVal &C = cast<ConstExpr>(E)->Val;
      switch (C.K) {
      case ConstVal::Kind::Int:
        return PEVal::ground(Value::mkInt(C.Int, A));
      case ConstVal::Kind::Bool:
        return PEVal::ground(Value::mkBool(C.Bool));
      case ConstVal::Kind::Nil:
        return PEVal::ground(Value::mkNil());
      case ConstVal::Kind::Str:
        return PEVal::ground(Value::mkStr(C.Str));
      }
      return giveUp();
    }
    case ExprKind::Var: {
      Symbol Name = cast<VarExpr>(E)->Name;
      for (PEEnvNode *N = Env; N; N = N->Parent)
        if (N->Name == Name)
          return N->Val;
      if (auto P1 = lookupPrim1(Name))
        return PEVal::ground(Value::mkPrim1(*P1));
      if (auto P2 = lookupPrim2(Name))
        return PEVal::ground(Value::mkPrim2(*P2));
      // Free variable: a dynamic input.
      return PEVal::dyn(Out.mkVar(Name));
    }
    case ExprKind::Lam: {
      const auto *L = cast<LamExpr>(E);
      return PEVal::fun(
          A.create<SClosure>(L->Param, L->Body, Env, Symbol()));
    }
    case ExprKind::If: {
      const auto *I = cast<IfExpr>(E);
      PEVal C = peval(I->Cond, Env, UDepth);
      if (C.K == PEVal::Kind::Ground && C.V.is(ValueKind::Bool))
        return peval(C.V.asBool() ? I->Then : I->Else, Env, UDepth);
      const Expr *CR = lift(C);
      const Expr *TR = lift(peval(I->Then, Env, UDepth));
      const Expr *ER = lift(peval(I->Else, Env, UDepth));
      return PEVal::dyn(Out.mkIf(CR, TR, ER));
    }
    case ExprKind::App: {
      const auto *Ap = cast<AppExpr>(E);
      PEVal Fn = peval(Ap->Fn, Env, UDepth);
      PEVal Arg = peval(Ap->Arg, Env, UDepth);
      return apply(Fn, Arg, UDepth);
    }
    case ExprKind::Letrec: {
      const auto *L = cast<LetrecExpr>(E);
      if (const auto *Lam = dyn_cast<LamExpr>(L->Bound)) {
        // Tie the specialization-time knot.
        SClosure *C =
            A.create<SClosure>(Lam->Param, Lam->Body, nullptr, L->Name);
        PEEnvNode *Env2 = extend(Env, L->Name, PEVal::fun(C));
        C->Env = Env2;
        PEVal R = peval(L->Body, Env2, UDepth);
        // Closures must not escape the letrec scope unlifted: lift here so
        // any specialization they trigger is still in scope.
        if (R.K == PEVal::Kind::Fun)
          R = PEVal::dyn(lift(R));
        if (C->SpecLam) {
          // Emit the memoized residual version at the original site.
          const Expr *Body = lift(R);
          C->Emitted = true;
          return PEVal::dyn(Out.mkLetrec(C->SpecName, C->SpecLam, Body));
        }
        C->Emitted = true;
        return R;
      }
      // Value binding. If the bound expression does not mention the name,
      // this is an ordinary let; otherwise residualize conservatively.
      if (!mentionsVar(L->Bound, L->Name)) {
        PEVal BV = peval(L->Bound, Env, UDepth);
        if (BV.K == PEVal::Kind::Fun)
          BV = PEVal::dyn(lift(BV));
        return peval(L->Body, extend(Env, L->Name, BV), UDepth);
      }
      Symbol N = fresh(L->Name.str());
      PEEnvNode *Env2 = extend(Env, L->Name, PEVal::dyn(Out.mkVar(N)));
      const Expr *BR = lift(peval(L->Bound, Env2, UDepth));
      const Expr *Body = lift(peval(L->Body, Env2, UDepth));
      return PEVal::dyn(Out.mkLetrec(N, BR, Body));
    }
    case ExprKind::Prim1: {
      const auto *P = cast<Prim1Expr>(E);
      PEVal V = peval(P->Arg, Env, UDepth);
      if (V.K == PEVal::Kind::Ground) {
        PrimResult R = applyPrim1(P->Op, V.V, A);
        if (R.Ok)
          return PEVal::ground(R.Val);
      }
      return PEVal::dyn(Out.mkPrim1(P->Op, lift(V)));
    }
    case ExprKind::Prim2: {
      const auto *P = cast<Prim2Expr>(E);
      PEVal L = peval(P->Lhs, Env, UDepth);
      PEVal R = peval(P->Rhs, Env, UDepth);
      if (L.K == PEVal::Kind::Ground && R.K == PEVal::Kind::Ground) {
        PrimResult PR = applyPrim2(P->Op, L.V, R.V, A);
        if (PR.Ok)
          return PEVal::ground(PR.Val);
      }
      return PEVal::dyn(Out.mkPrim2(P->Op, lift(L), lift(R)));
    }
    case ExprKind::Annot: {
      // Monitoring is dynamic: the annotation (and hence its events) must
      // survive specialization. Annotation parameters are *names* resolved
      // in rho at probe time, so they must be mapped to the residual
      // environment: params bound to residual variables are renamed to
      // them; params bound to static values are rebound around the
      // annotated expression so the probe observes the same value.
      const auto *N = cast<AnnotExpr>(E);
      PEVal Inner = peval(N->Inner, Env, UDepth);
      Annotation NewAnn = *N->Ann;
      std::vector<std::pair<Symbol, const Expr *>> Rebinds;
      for (Symbol &Prm : NewAnn.Params) {
        PEEnvNode *Found = nullptr;
        for (PEEnvNode *Nd = Env; Nd; Nd = Nd->Parent)
          if (Nd->Name == Prm) {
            Found = Nd;
            break;
          }
        if (!Found)
          continue; // Unbound in the source too; renders "?" either way.
        if (Found->Val.K == PEVal::Kind::Dyn) {
          if (const auto *V = dyn_cast<VarExpr>(Found->Val.Res)) {
            Prm = V->Name;
            continue;
          }
          // A non-variable dynamic binding cannot be re-observed without
          // duplicating its evaluation; sound fallback only.
          return giveUp();
        }
        Symbol Fresh = fresh(Prm.str());
        Rebinds.emplace_back(Fresh, lift(Found->Val));
        Prm = Fresh;
      }
      const Expr *R =
          Out.mkAnnot(Out.internAnnotation(std::move(NewAnn)), lift(Inner));
      for (size_t I = Rebinds.size(); I-- > 0;)
        R = Out.mkApp(Out.mkLam(Rebinds[I].first, R), Rebinds[I].second);
      return PEVal::dyn(R);
    }
    }
    return giveUp();
  }
};

} // namespace

PEResult monsem::partialEvaluate(AstContext &Out, const Expr *Program,
                                 PEOptions Opts) {
  PE Engine(Out, Opts);
  return Engine.run(Program);
}

PEResult monsem::specializeApply(AstContext &Out, const Expr *Fn,
                                 const std::vector<const Expr *> &StaticArgs,
                                 unsigned NumDynamicArgs, PEOptions Opts) {
  // Build (in a scratch context):  Fn s1 ... sk h0 ... h{n-1}
  AstContext Scratch;
  const Expr *App = cloneExpr(Scratch, Fn);
  for (const Expr *Arg : StaticArgs)
    App = Scratch.mkApp(App, cloneExpr(Scratch, Arg));
  std::vector<Symbol> Holes;
  for (unsigned I = 0; I < NumDynamicArgs; ++I) {
    Symbol H = Symbol::intern("dyn_arg" + std::to_string(I));
    Holes.push_back(H);
    App = Scratch.mkApp(App, Scratch.mkVar(H));
  }
  PE Engine(Out, Opts);
  PEResult R = Engine.run(App);
  // Bind the holes.
  for (size_t I = Holes.size(); I-- > 0;)
    R.Residual = Out.mkLam(Holes[I], R.Residual);
  return R;
}
