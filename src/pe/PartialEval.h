//===- pe/PartialEval.h - Online partial evaluation -------------*- C++ -*-===//
///
/// \file
/// The paper's third level of specialization (Section 9.1, Fig. 10):
/// specializing an (instrumented) program with respect to partial input.
/// This is an *online* partial evaluator for L_lambda: it interprets the
/// static parts of a program at specialization time (constant folding,
/// conditional pruning, call unfolding) and emits residual code for the
/// dynamic parts, including memoized residual versions of letrec functions
/// whose calls cannot be unfolded.
///
/// Monitoring annotations are the canonical *dynamic* computation: an
/// annotated expression always residualizes (with its annotation intact),
/// so the residual program performs exactly the same monitoring events, in
/// the same order, with the same values — specialization preserves the
/// monitoring semantics, not just the standard one (checked by property
/// tests).
///
/// Safety rules guaranteeing that the residual program has the original's
/// observable behavior under the strict semantics:
///  * a dynamic argument is substituted into an unfolded body only when it
///    is trivial (a variable); otherwise a residual beta-redex keeps the
///    argument's evaluation (and thus its errors, divergence, and
///    monitoring events) exactly where the original had it;
///  * primitive applications fold only when they succeed; failing ones
///    (hd [], division by zero) residualize so the error stays at run time;
///  * every residual binder is freshly named, preventing capture;
///  * residual letrec definitions are emitted at the original letrec site,
///    so they close over exactly what the source function closed over.
///
/// The specializer gives up (returning the original program and GaveUp =
/// true) on its step/depth budgets or on shapes it cannot scope correctly
/// (e.g. a recursive closure escaping its letrec and being specialized
/// later). Giving up is always sound.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_PE_PARTIALEVAL_H
#define MONSEM_PE_PARTIALEVAL_H

#include "syntax/Ast.h"

#include <vector>

namespace monsem {

struct PEOptions {
  /// Maximum nested call unfoldings before a call residualizes.
  unsigned MaxUnfoldDepth = 200;
  /// Specializer work budget (peval steps) before giving up.
  uint64_t MaxSteps = 400000;
  /// C-stack guard for the recursive specializer.
  unsigned MaxDepth = 2500;
};

struct PEResult {
  const Expr *Residual = nullptr;
  bool GaveUp = false;
  uint64_t Steps = 0;
  unsigned Unfolds = 0;
  unsigned Specializations = 0;
};

/// Specializes the closed program \p Program (free variables other than
/// primitives are treated as dynamic inputs). The residual is built in
/// \p Out.
PEResult partialEvaluate(AstContext &Out, const Expr *Program,
                         PEOptions Opts = {});

/// Specializes the function expression \p Fn to the known arguments
/// \p StaticArgs, leaving \p NumDynamicArgs trailing arguments unknown.
/// The residual is a \p NumDynamicArgs-ary curried lambda; applying it to
/// the dynamic arguments is observationally equal to applying \p Fn to all
/// arguments.
PEResult specializeApply(AstContext &Out, const Expr *Fn,
                         const std::vector<const Expr *> &StaticArgs,
                         unsigned NumDynamicArgs, PEOptions Opts = {});

} // namespace monsem

#endif // MONSEM_PE_PARTIALEVAL_H
