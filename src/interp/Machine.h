//===- interp/Machine.h - CEK machine for L_lambda --------------*- C++ -*-===//
///
/// \file
/// The production evaluator: a trampolined CEK machine that is a
/// defunctionalized form of the paper's continuation semantics.
///
/// Standard semantics (Fig. 2): every transition below is one clause of
/// G_lambda. Continuations are explicit frame chains in the run's arena, so
/// the machine never grows the C stack; the paper's application order —
/// operand before operator — is preserved.
///
/// Monitoring semantics (Fig. 3, Definition 4.2): the single extra clause
/// for `{mu}: e` runs updPre on the monitor state, pushes a MonPost frame
/// (the kappa_post continuation), and evaluates e; when a value returns to
/// a MonPost frame, updPost runs and the value continues unchanged. With
/// monitoring disabled the clause reduces to evaluating e — the oblivious
/// functional G_obl of Definition 7.1.
///
/// The machine is a template over two specialization points (Section 9.1):
///
///  * a monitor *policy* (level 1): instantiating the machine with a
///    concrete, statically known monitor removes the interpretive overhead
///    of monitor dispatch, exactly as specializing the parameterized
///    interpreter with respect to a monitor specification does.
///    `NoMonitorPolicy` (standard semantics) and `DynamicMonitorPolicy`
///    (cascade chosen at run time) are provided; benchmarks instantiate
///    further policies.
///
///  * the environment representation (level 2, program-dependent): with
///    `Lexical = true` the machine runs a program annotated by the resolver
///    (analysis/Resolver.h) on flat, array-backed environment frames —
///    variable references index frames directly instead of scanning a
///    named chain, and coalesced letrec binders write slots of the current
///    frame instead of allocating. Monitors still see named bindings
///    through EnvView, so Thm. 7.7 soundness is representation-invariant.
///
/// Both machines recycle popped continuation frames through a free list
/// (frames are strictly LIFO — the language has no first-class
/// continuations — so a popped frame can never be referenced again); the
/// hot loop then touches a handful of cache lines instead of streaming
/// through the arena.
///
/// Three evaluation strategies (Section 9.2's "language modules"): strict,
/// call-by-name, and call-by-need.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_INTERP_MACHINE_H
#define MONSEM_INTERP_MACHINE_H

#include "analysis/Resolver.h"
#include "monitor/FaultIsolation.h"
#include "monitor/Hooks.h"
#include "semantics/Answer.h"
#include "semantics/ValueGraph.h"
#include "support/Checkpoint.h"
#include "support/Durability.h"
#include "support/FailPoint.h"
#include "support/Governor.h"
#include "semantics/Primitives.h"
#include "semantics/Value.h"
#include "syntax/Ast.h"

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <vector>

namespace monsem {

enum class Strategy : uint8_t { Strict, CallByName, CallByNeed };

const char *strategyName(Strategy S);

struct RunOptions {
  Strategy Strat = Strategy::Strict;
  /// 0 = unlimited. Each machine transition costs one unit.
  uint64_t MaxSteps = 0;
  /// The answer algebra phi used by the initial continuation (Section 3.1).
  const AnswerAlgebra *Algebra = &StdAnswerAlgebra::instance();
  /// Use the lexically-addressed machine when the program resolves (driver
  /// flag, consumed by evaluate(); the machine template ignores it).
  bool Lexical = true;
  /// Recycle popped continuation frames through the free list. Off gives
  /// the allocation behavior of the unoptimized machine (benchmarks).
  bool RecycleFrames = true;
  /// Resource budget beyond fuel: deadline, arena cap, depth bound,
  /// cooperative cancellation. Limits.MaxSteps supersedes MaxSteps above
  /// when nonzero.
  ResourceLimits Limits;
  /// Run-wide default for what happens when a monitor hook throws;
  /// per-monitor overrides come from Cascade::use(M, Policy).
  FaultPolicy MonitorFaultPolicy = FaultPolicy::Quarantine;
  /// Faults tolerated per monitor under RetryThenQuarantine.
  unsigned MonitorRetryBudget = 3;
  /// Reuse the caller's environment frame on self-tail-calls (lexical CEK
  /// machine and VM): `down 100000`-style loops run in O(1) arena bytes.
  /// Answers and step counts are unchanged; only arena accounting differs.
  bool ReuseTailFrames = true;
  /// Use token-threaded (computed-goto) dispatch in the VM when the build
  /// supports it (see vmThreadedDispatchAvailable()); off selects the
  /// portable switch loop. Benchmarks compare the two.
  bool VMThreaded = true;
  /// Run compiled programs on the register tier (lowered three-address
  /// bytecode with register-window frames) instead of the stack VM.
  /// Observable behavior — answers, step counts, probe event streams,
  /// checkpoints — is identical; only speed and arena accounting differ.
  /// Falls back to the stack VM for programs the lowering pass cannot
  /// encode (pathological nesting depth).
  bool VMRegister = false;
  /// On top of VMRegister: run leaf blocks as native code compiled by the
  /// system C compiler (`--backend=vm-aot`). Degrades to the register
  /// interpreter when no compiler is available or the program has no
  /// eligible blocks; observable behavior is identical either way.
  bool VMAot = false;
  /// Cache directory for vm-aot shared objects; "" selects the per-user
  /// default under TMPDIR (see compile/AotEmit.h).
  std::string AotCacheDir;
  /// Resume from this checkpoint instead of starting fresh. The checkpoint
  /// must match the run's configuration (backend, strategy, environment
  /// representation, monitored-ness, program fingerprint); a mismatch
  /// yields an error result without running. The pointee must outlive the
  /// run. The resumed run continues the cumulative step counter but gets a
  /// fresh budget (fuel/checkpoint boundaries measure steps since resume).
  const Checkpoint *ResumeFrom = nullptr;
  /// Where emitted checkpoints go (a file, a journal, a test buffer).
  /// Null disables all checkpoint capture.
  std::function<void(const Checkpoint &)> CheckpointSink;
  /// Emit a final checkpoint when the governor stops the run (fuel,
  /// deadline, memory, depth, cancellation) so it can be resumed.
  bool CheckpointOnStop = false;
  /// Emit a periodic checkpoint every N steps (0 = off). Folded into the
  /// governor's pause schedule, so the hot loop stays one compare per step.
  uint64_t CheckpointEveryNSteps = 0;
  /// In-process observer of every probe event, called with (step, text)
  /// where the text is the canonical journal rendering (probePreText /
  /// probePostText), so a tapped stream is byte-identical to a journaled
  /// one. The driver wraps the run's hooks in EventTapHooks; `monsem
  /// serve` uses this to stream probe batches to clients. Null = off.
  std::function<void(uint64_t Step, const std::string &Text)> EventSink;
  /// Append every probe event to this crash-safe journal (the driver wraps
  /// the run's hooks in JournalingHooks). Null disables journaling. The
  /// pointee must outlive the run.
  Journal *RunJournal = nullptr;
  /// What happens when a durable sink (journal append, checkpoint save)
  /// fails: abort the run, degrade the sink to best-effort immediately, or
  /// (default) tolerate DurabilityRetryBudget failures before degrading.
  /// See support/Durability.h.
  OnDurabilityFailure DurabilityPolicy = OnDurabilityFailure::RetryThenDegrade;
  /// Sink failures tolerated under RetryThenDegrade before demotion.
  unsigned DurabilityRetryBudget = 3;
  /// Failpoint plan installed (process-globally) by the driver before the
  /// run; empty = none. See support/FailPoint.h for the spec syntax.
  std::string FailPointSpec;
  /// The run's durability arbiter. Drivers leave this null and get a
  /// per-run tracker configured from the two fields above; embedders (the
  /// CLI) may install their own so sinks they construct can report into it.
  /// The pointee must outlive the run.
  DurabilityTracker *Durability = nullptr;
};

/// When \p O has a journal armed, rewrite its CheckpointSink so every
/// emitted checkpoint is appended to the journal first (each append is
/// flushed, so the checkpoint is durable even if the original sink never
/// persists it), then forwarded to the original sink if there was one.
/// Installing a sink also arms the periodic-checkpoint schedule, so
/// journaled runs get durable checkpoints by default. Drivers call this
/// once per run, before handing the options to a machine.
inline void armJournalCheckpointSink(RunOptions &O) {
  if (!O.RunJournal)
    return;
  Journal *J = O.RunJournal;
  DurabilityTracker *DT = O.Durability;
  O.CheckpointSink = [J, DT, User = std::move(O.CheckpointSink)](
                         const Checkpoint &CK) {
    if (DT && DT->degraded("checkpoint"))
      return;
    if (!J->appendCheckpoint(CK.bytes()) && DT)
      DT->report("checkpoint", J->error(), CK.header().SavedSteps);
    if (User)
      User(CK);
  };
}

/// Points the run at \p T unless an embedder already installed a tracker,
/// and installs the RunOptions failpoint plan (process-global; see
/// support/FailPoint.h). Drivers call this once per run, before
/// armJournalCheckpointSink.
inline void armDurabilityTracker(RunOptions &O, DurabilityTracker &T) {
  if (!O.Durability)
    O.Durability = &T;
  if (!O.FailPointSpec.empty()) {
    // The spec was validated where it entered (CLI flag, combinator); a
    // malformed one here degenerates to "no failpoints", never to UB.
    std::string Err;
    installFailPoints(O.FailPointSpec, Err);
  }
}

/// The final answer: the paper's <alpha, sigma'> pair. `ValueText` is
/// phi(alpha); typed accessors are provided for test convenience. Monitor
/// states are attached by the driver (see Eval.h), not by the machine.
struct RunResult {
  /// How the run ended; the single source of truth. `Ok` and
  /// `FuelExhausted` below are mirrors kept for the (many) callers that
  /// predate the Outcome enum — always set St through setOutcome().
  Outcome St = Outcome::Error;
  bool Ok = false;
  bool FuelExhausted = false;
  std::string Error;
  std::string ValueText;
  std::optional<int64_t> IntValue;
  std::optional<bool> BoolValue;
  uint64_t Steps = 0;
  /// Arena bytes the run allocated. Informational (benchmarks, the
  /// tail-reuse O(1) assertions); ignored by sameOutcome because it is a
  /// property of the representation and optimization level, not of the
  /// semantics.
  uint64_t ArenaBytes = 0;
  std::vector<std::unique_ptr<MonitorState>> FinalStates;
  /// Faults the monitor fault boundary recorded (see FaultIsolation.h).
  /// Non-empty MonitorFaults with St == Ok means quarantine kept the run
  /// alive; the FinalStates of quarantined monitors are partial.
  std::vector<MonitorFault> MonitorFaults;
  /// Failures of the durable sinks (journal, checkpoint). Non-empty with
  /// St == Ok means a degradation policy kept the run alive without full
  /// durability; under Abort the first fault also ends the run with
  /// St == Error. See support/Durability.h.
  std::vector<DurabilityFault> DurabilityFaults;

  void setOutcome(Outcome O) {
    St = O;
    Ok = O == Outcome::Ok;
    FuelExhausted = O == Outcome::FuelExhausted;
  }

  /// True when the governor (not the program) stopped the run.
  bool stoppedByGovernor() const { return isGovernanceStop(St); }

  /// True when two runs produced the same observable outcome.
  bool sameOutcome(const RunResult &O) const {
    if (St != O.St)
      return false;
    if (St == Outcome::Ok)
      return ValueText == O.ValueText;
    if (St == Outcome::Error)
      return Error == O.Error;
    return true; // Same governance stop.
  }
};

//===----------------------------------------------------------------------===//
// Monitor policies (level-1 specialization points)
//===----------------------------------------------------------------------===//

/// Standard semantics: annotations are skipped (G_obl of Definition 7.1).
struct NoMonitorPolicy {
  static constexpr bool Enabled = false;
  void pre(const Annotation &, const Expr &, EnvView, uint64_t, uint64_t) {}
  void post(const Annotation &, const Expr &, EnvView, Value, uint64_t,
            uint64_t) {}
};

/// Monitoring semantics with the cascade chosen at run time.
struct DynamicMonitorPolicy {
  static constexpr bool Enabled = true;
  MonitorHooks *Hooks = nullptr;
  void pre(const Annotation &Ann, const Expr &E, EnvView Env, uint64_t Step,
           uint64_t Bytes) {
    Hooks->pre(Ann, E, Env, Step, Bytes);
  }
  void post(const Annotation &Ann, const Expr &E, EnvView Env, Value V,
            uint64_t Step, uint64_t Bytes) {
    Hooks->post(Ann, E, Env, V, Step, Bytes);
  }
};

//===----------------------------------------------------------------------===//
// The machine
//===----------------------------------------------------------------------===//

namespace detail {

/// A defunctionalized continuation frame, parameterized over the
/// environment representation. One allocation per pending sub-evaluation
/// (amortized away by the free list); frames are immutable once pushed —
/// patching happens in environments/Thunks, never frames.
template <typename EnvT> struct FrameT {
  enum class Kind : uint8_t {
    Halt,
    EvalFn,     ///< Operand evaluated; evaluate the operator (paper order).
    Apply,      ///< Operator evaluated; apply it to the stored argument.
    Branch,     ///< Conditional scrutinee evaluated; pick a branch.
    LetrecBind, ///< Bound expression evaluated; tie the knot, run the body.
    Prim2Rhs,   ///< Left prim operand evaluated; evaluate the right one.
    Prim2Apply, ///< Both prim operands evaluated; apply the primitive.
    Prim1Apply, ///< Prim operand evaluated; apply the primitive.
    MonPost,    ///< kappa_post of Definition 4.2: run updPost, pass value on.
    UpdateThunk ///< Memoize a forced thunk (call-by-need).
  };

  Kind K;
  uint8_t Op = 0;           ///< Prim1Op/Prim2Op for primitive frames.
  uint32_t Idx = 0;         ///< LetrecBind slot index (lexical machine);
                            ///< tail-position flag for EvalFn/Apply (the
                            ///< application site's AppExpr::TailPos).
  const Expr *E1 = nullptr; ///< Pending expression (EvalFn/Branch/...).
  const Expr *E2 = nullptr; ///< Else branch (Branch).
  EnvT *Env = nullptr; ///< Environment for the pending evaluation; also the
                       ///< knot-tying target of LetrecBind (the EnvNode to
                       ///< patch, or the EnvFrame whose slot Idx to write).
  Value V;             ///< Stored intermediate value.
  const Annotation *Ann = nullptr; ///< MonPost.
  Thunk *Th = nullptr;             ///< UpdateThunk.
  FrameT *Next = nullptr;
};

/// Legacy name for the named-chain frame (diagnostics, tests).
using Frame = FrameT<EnvNode>;

} // namespace detail

/// One program execution. Owns the run's arena; `run()` drives the
/// transition loop to a final answer.
///
/// With `Lexical = true` the program must have been annotated by a
/// successful resolveProgram whose Resolution is passed in and outlives
/// the machine.
template <typename Policy, bool Lexical = false> class MachineT {
public:
  using EnvT = std::conditional_t<Lexical, EnvFrame, EnvNode>;

  MachineT(const Expr *Program, RunOptions Opts, Policy P = Policy(),
           const Resolution *Res = nullptr)
      : Program(Program), Opts(Opts), Pol(P), Res(Res) {}

  RunResult run();

  /// Bytes the run allocated (diagnostics/benchmarks).
  size_t arenaBytes() const { return A.bytesAllocated(); }

private:
  using Frame = detail::FrameT<EnvT>;
  using FK = typename Frame::Kind;

  Frame *mkFrame(FK K, Frame *Next) {
    ++KontDepth;
    Frame *F = FreeList;
    if (F)
      FreeList = F->Next;
    else
      F = A.create<Frame>();
    F->K = K;
    F->Next = Next;
    return F;
  }

  /// Returns a popped frame to the free list. Sound because continuation
  /// frames are strictly LIFO: nothing else ever holds a frame pointer
  /// (thunks and closures capture environments, not continuations), so a
  /// frame that has been returned through cannot be reached again. Every
  /// creation site initializes all the fields its kind reads, so recycled
  /// frames are not cleared.
  void recycle(Frame *F) {
    --KontDepth; // Frames are popped exactly once; the depth bound
                 // (ResourceLimits::MaxDepth) reads this counter.
    if (!Opts.RecycleFrames)
      return;
    F->Next = FreeList;
    FreeList = F;
  }

  void fail(std::string Msg) {
    Failed = true;
    Error = std::move(Msg);
  }

  /// Transition: evaluate \p E in \p Env with continuation \p K.
  /// Sets Mode to Return when a value is produced immediately.
  void doEval(const Expr *E, EnvT *Env, Frame *K);

  /// Transition: process exactly one frame of the continuation for the
  /// returned value \p V. Never recurses; chained pass-through frames
  /// (MonPost, UpdateThunk, primitive frames) bounce through the
  /// trampoline, keeping C-stack usage constant.
  void doReturn(Value V, Frame *K);

  /// Schedules delivery of \p V to \p K via the trampoline.
  void setReturn(Value V, Frame *K) {
    M = Mode::Return;
    CurVal = V;
    CurKont = K;
  }

  /// Applies function value \p Fn to argument \p Arg with continuation
  /// \p K. Handles closures, primitives and partial primitives; forces
  /// thunk arguments of primitives. \p CallerEnv is the application
  /// site's environment and \p Tail its AppExpr::TailPos flag — together
  /// with the dynamic shape/parent check they enable self-tail-call
  /// frame reuse on the lexical machine.
  void applyFunction(Value Fn, Value Arg, Frame *K, EnvT *CallerEnv = nullptr,
                     bool Tail = false);

  /// Forces \p V (a thunk) and delivers the result to \p K.
  void force(Value V, Frame *K);

  /// The environment a suspension or closure captured.
  EnvT *envOf(const Thunk *T) {
    if constexpr (Lexical)
      return T->FEnv;
    else
      return T->Env;
  }

  /// Monitor-facing view of \p Env. Flat frames carry shape ids, so the
  /// view needs the Resolution's decode table to answer named lookups.
  EnvView envView(EnvT *Env) const {
    if constexpr (Lexical)
      return EnvView(Env, Res->shapeTable());
    else
      return EnvView(Env);
  }

  //===--------------------------------------------------------------------===//
  // Checkpoint/resume
  //===--------------------------------------------------------------------===//

  /// Pre-order index of the program plus derived maps (annotation -> owning
  /// AnnotExpr id, structural fingerprint). Built lazily: only
  /// checkpoint-armed or resumed runs pay for it.
  const ExprTable *exprTable() {
    if (!Exprs) {
      Exprs = std::make_unique<ExprTable>(Program);
      for (uint32_t I = 1; I <= Exprs->size(); ++I) {
        const Expr *E = Exprs->exprAt(I);
        if (E && E->kind() == ExprKind::Annot)
          AnnotIds.emplace(cast<AnnotExpr>(E)->Ann, I);
      }
      Fingerprint = exprFingerprint(Program);
    }
    return Exprs.get();
  }
  uint64_t fingerprint() {
    exprTable();
    return Fingerprint;
  }
  uint32_t annotIdOf(const Annotation *Ann) const {
    if (!Ann)
      return 0;
    auto It = AnnotIds.find(Ann);
    return It == AnnotIds.end() ? 0 : It->second;
  }

  FrameShapeTable shapesOrNull() const {
    return Res ? Res->shapeTable() : nullptr;
  }
  uint32_t numShapesOrZero() const {
    // The decode table has one extra entry: id 0 is the shared
    // primitives-frame shape, seeded ahead of the resolver's own shapes.
    return Res ? static_cast<uint32_t>(Res->numShapes()) + 1 : 0;
  }

  void writeEnvRef(ValueGraphWriter &W, EnvT *Env) const {
    if constexpr (Lexical)
      W.writeEnvFrameRef(Env);
    else
      W.writeEnvNodeRef(Env);
  }
  EnvT *readEnvRef(ValueGraphReader &Rd) const {
    if constexpr (Lexical)
      return Rd.readEnvFrameRef();
    else
      return Rd.readEnvNodeRef();
  }

  /// Serializes the full machine state at a transition boundary. Called
  /// with Steps = s after ++Steps but before transition s executed, so the
  /// checkpoint records s-1 completed transitions; resume re-executes
  /// transition s and cumulative step counts match an uninterrupted run.
  /// Returns an invalid Checkpoint if serialization failed.
  Checkpoint makeCheckpoint();

  /// Emits a checkpoint to the configured sink, if any. Skips even the
  /// serialization once the checkpoint path has been degraded (the sink
  /// would drop it anyway).
  void emitCheckpoint() {
    if (!Opts.CheckpointSink)
      return;
    if (Opts.Durability && Opts.Durability->degraded("checkpoint"))
      return;
    Checkpoint CK = makeCheckpoint();
    if (CK.valid())
      Opts.CheckpointSink(CK);
  }

  /// Rebuilds the machine state from \p CK (header validation, monitor
  /// section, value graph, trampoline roots, continuation chain). On
  /// failure sets \p Err and leaves the machine unusable — run() reports
  /// the error without stepping.
  bool restoreCheckpoint(const Checkpoint &CK, std::string &Err);

  const Expr *Program;
  RunOptions Opts;
  Policy Pol;
  const Resolution *Res;
  Arena A;

  // Trampoline state.
  enum class Mode : uint8_t { Eval, Return, Done } M = Mode::Eval;
  const Expr *CurExpr = nullptr;
  EnvT *CurEnv = nullptr;
  Value CurVal;
  Frame *CurKont = nullptr;
  Frame *FreeList = nullptr;
  EnvFrame *PrimF = nullptr; ///< The initial frame (lexical Global slots).

  uint64_t Steps = 0;
  uint64_t KontDepth = 0; ///< Live continuation frames (depth bound).
  bool Failed = false;
  std::string Error;

  // Checkpoint/resume support (all lazily populated; see exprTable()).
  uint64_t StepBase = 0; ///< Steps already completed before this process.
  std::unique_ptr<ExprTable> Exprs;
  std::unordered_map<const Annotation *, uint32_t> AnnotIds;
  uint64_t Fingerprint = 0;
  /// Storage for strings revived from a checkpoint (Str values point into
  /// it); must live as long as the rebuilt heap, i.e. the machine.
  std::deque<std::string> RevivedStrings;
};

extern template class MachineT<NoMonitorPolicy, false>;
extern template class MachineT<DynamicMonitorPolicy, false>;
extern template class MachineT<NoMonitorPolicy, true>;
extern template class MachineT<DynamicMonitorPolicy, true>;

using StandardMachine = MachineT<NoMonitorPolicy, false>;
using MonitoredMachine = MachineT<DynamicMonitorPolicy, false>;
using ResolvedMachine = MachineT<NoMonitorPolicy, true>;
using ResolvedMonitoredMachine = MachineT<DynamicMonitorPolicy, true>;

//===----------------------------------------------------------------------===//
// Template implementation
//===----------------------------------------------------------------------===//

template <typename Policy, bool Lexical>
void MachineT<Policy, Lexical>::doEval(const Expr *E, EnvT *Env, Frame *K) {
  switch (E->kind()) {
  case ExprKind::Const: {
    const ConstVal &C = cast<ConstExpr>(E)->Val;
    switch (C.K) {
    case ConstVal::Kind::Int:
      setReturn(Value::mkInt(C.Int, A), K);
      return;
    case ConstVal::Kind::Bool:
      setReturn(Value::mkBool(C.Bool), K);
      return;
    case ConstVal::Kind::Str:
      setReturn(Value::mkStr(C.Str), K);
      return;
    case ConstVal::Kind::Nil:
      setReturn(Value::mkNil(), K);
      return;
    }
    return;
  }
  case ExprKind::Var: {
    const auto *V = cast<VarExpr>(E);
    Value Val;
    if constexpr (Lexical) {
      switch (V->Addr) {
      case VarExpr::AddrKind::Local: {
        EnvFrame *F = Env;
        for (uint32_t D = V->FrameDepth; D; --D)
          F = F->parent();
        Val = F->slots()[V->SlotIndex];
        break;
      }
      case VarExpr::AddrKind::Global:
        setReturn(PrimF->slots()[V->SlotIndex], K);
        return;
      case VarExpr::AddrKind::Unbound:
        fail("unbound variable '" + std::string(V->Name.str()) + "' at " +
             E->loc().str());
        return;
      case VarExpr::AddrKind::Unresolved:
        fail("internal error: unresolved variable '" +
             std::string(V->Name.str()) + "' in lexical machine");
        return;
      }
    } else {
      EnvNode *N = lookupEnv(Env, V->Name);
      if (!N) {
        fail("unbound variable '" + std::string(V->Name.str()) + "' at " +
             E->loc().str());
        return;
      }
      Val = N->Val;
    }
    if (Val.isUnit()) {
      fail("letrec variable '" + std::string(V->Name.str()) +
           "' referenced before initialization");
      return;
    }
    if (Val.is(ValueKind::Thunk)) {
      force(Val, K);
      return;
    }
    setReturn(Val, K);
    return;
  }
  case ExprKind::Lam: {
    const auto *L = cast<LamExpr>(E);
    Closure *C = A.create<Closure>(L, Env);
    setReturn(Value::mkClosure(C), K);
    return;
  }
  case ExprKind::If: {
    const auto *I = cast<IfExpr>(E);
    Frame *F = mkFrame(FK::Branch, K);
    F->E1 = I->Then;
    F->E2 = I->Else;
    F->Env = Env;
    M = Mode::Eval;
    CurExpr = I->Cond;
    CurEnv = Env;
    CurKont = F;
    return;
  }
  case ExprKind::App: {
    const auto *App = cast<AppExpr>(E);
    if (Opts.Strat == Strategy::Strict) {
      // Paper order: E[e2] rho { \v2. E[e1] rho { \v1. (v1|Fun) v2 k } }.
      Frame *F = mkFrame(FK::EvalFn, K);
      F->E1 = App->Fn;
      F->Env = Env;
      F->Idx = App->TailPos; // Threaded through to applyFunction's reuse check.
      M = Mode::Eval;
      CurExpr = App->Arg;
      CurEnv = Env;
      CurKont = F;
      return;
    }
    // Lazy strategies: suspend the operand, evaluate the operator.
    Thunk *T;
    if constexpr (Lexical)
      T = A.create<Thunk>(App->Arg, nullptr, Thunk::State::Unforced, Value(),
                          Env);
    else
      T = A.create<Thunk>(App->Arg, Env, Thunk::State::Unforced, Value());
    Frame *F = mkFrame(FK::Apply, K);
    F->V = Value::mkThunk(T);
    F->Env = Env;
    F->Idx = 0; // Tail reuse is strict-only (thunks capture environments).
    M = Mode::Eval;
    CurExpr = App->Fn;
    CurEnv = Env;
    CurKont = F;
    return;
  }
  case ExprKind::Letrec: {
    const auto *L = cast<LetrecExpr>(E);
    EnvT *Node;
    uint32_t Slot;
    if constexpr (Lexical) {
      if (L->Shape) {
        // Frame head: a fresh frame whose slot 0 is the binder.
        Node = allocFrame(A, L->Shape, Env);
        Slot = 0;
      } else {
        // Coalesced member: reuse the current frame; the resolver
        // guarantees this letrec runs at most once per frame instance, so
        // the preallocated slot is still Unit ("not yet initialized").
        Node = Env;
        Slot = L->SlotIndex;
      }
    } else {
      Node = extendEnv(A, Env, L->Name, Value::mkUnit());
      Slot = 0;
    }
    if (Opts.Strat != Strategy::Strict) {
      // Lazy letrec: bind the name to a thunk of the bound expression in
      // the extended environment; self-reference cycles are caught as
      // black holes under call-by-need.
      Thunk *T;
      if constexpr (Lexical) {
        T = A.create<Thunk>(L->Bound, nullptr, Thunk::State::Unforced,
                            Value(), Node);
        Node->slots()[Slot] = Value::mkThunk(T);
      } else {
        T = A.create<Thunk>(L->Bound, Node, Thunk::State::Unforced, Value());
        Node->Val = Value::mkThunk(T);
      }
      M = Mode::Eval;
      CurExpr = L->Body;
      CurEnv = Node;
      CurKont = K;
      return;
    }
    Frame *F = mkFrame(FK::LetrecBind, K);
    F->Env = Node;
    F->Idx = Slot;
    F->E1 = L->Body;
    M = Mode::Eval;
    CurExpr = L->Bound;
    CurEnv = Node;
    CurKont = F;
    return;
  }
  case ExprKind::Prim1: {
    const auto *P = cast<Prim1Expr>(E);
    Frame *F = mkFrame(FK::Prim1Apply, K);
    F->Op = static_cast<uint8_t>(P->Op);
    M = Mode::Eval;
    CurExpr = P->Arg;
    CurEnv = Env;
    CurKont = F;
    return;
  }
  case ExprKind::Prim2: {
    const auto *P = cast<Prim2Expr>(E);
    Frame *F = mkFrame(FK::Prim2Rhs, K);
    F->Op = static_cast<uint8_t>(P->Op);
    F->E1 = P->Rhs;
    F->Env = Env;
    M = Mode::Eval;
    CurExpr = P->Lhs;
    CurEnv = Env;
    CurKont = F;
    return;
  }
  case ExprKind::Annot: {
    const auto *N = cast<AnnotExpr>(E);
    if constexpr (Policy::Enabled) {
      // Definition 4.2: (Vbar [s'] a* kpost) . updPre
      Pol.pre(*N->Ann, *N->Inner, envView(Env), Steps, A.bytesAllocated());
      Frame *F = mkFrame(FK::MonPost, K);
      F->Ann = N->Ann;
      F->E1 = N->Inner;
      F->Env = Env;
      M = Mode::Eval;
      CurExpr = N->Inner;
      CurEnv = Env;
      CurKont = F;
      return;
    }
    // Oblivious (Definition 7.1): skip the annotation.
    M = Mode::Eval;
    CurExpr = N->Inner;
    CurEnv = Env;
    CurKont = K;
    return;
  }
  }
}

template <typename Policy, bool Lexical>
void MachineT<Policy, Lexical>::force(Value V, Frame *K) {
  Thunk *T = V.asThunk();
  switch (T->St) {
  case Thunk::State::Forced:
    setReturn(T->Memo, K);
    return;
  case Thunk::State::Forcing:
    fail("infinite value dependency (black hole)");
    return;
  case Thunk::State::Unforced:
    break;
  }
  if (Opts.Strat == Strategy::CallByNeed) {
    T->St = Thunk::State::Forcing;
    Frame *F = mkFrame(FK::UpdateThunk, K);
    F->Th = T;
    K = F;
  }
  M = Mode::Eval;
  CurExpr = T->E;
  CurEnv = envOf(T);
  CurKont = K;
}

template <typename Policy, bool Lexical>
void MachineT<Policy, Lexical>::applyFunction(Value Fn, Value Arg, Frame *K,
                                              EnvT *CallerEnv, bool Tail) {
  switch (Fn.kind()) {
  case ValueKind::Closure: {
    Closure *C = Fn.asClosure();
    EnvT *Env;
    if constexpr (Lexical) {
      const LamExpr *L = C->L;
      // Self-tail-call frame reuse: the application sits in tail position
      // of a lambda body whose activation frame is CallerEnv (TailPos
      // guarantees no head letrec intervened), the callee is a closure
      // over the *same* lambda (shapes are unique per lambda) with the
      // same parent chain, and the body creates no closures or probes
      // (FrameReusable) — so the fresh frame the callee would allocate is
      // indistinguishable from CallerEnv with its slots reset. Strict
      // only: lazy strategies capture environments in thunks.
      if (Tail && CallerEnv && L->FrameReusable && Opts.ReuseTailFrames &&
          Opts.Strat == Strategy::Strict &&
          CallerEnv->parent() == C->FEnv &&
          frameShape(CallerEnv, Res->shapeTable()) == L->Shape) {
        Value *S = CallerEnv->slots();
        uint32_t N = L->Shape->numSlots();
        S[0] = Arg;
        // Coalesced letrec member slots must read as "not yet
        // initialized" on frame entry, exactly as a fresh frame would.
        for (uint32_t J = 1; J < N; ++J)
          S[J] = Value();
        Env = CallerEnv;
      } else {
        Env = allocFrame(A, L->Shape, C->FEnv, Arg);
      }
    } else {
      Env = extendEnv(A, C->Env, C->L->Param, Arg);
    }
    M = Mode::Eval;
    CurExpr = C->L->Body;
    CurEnv = Env;
    CurKont = K;
    return;
  }
  case ValueKind::Prim1: {
    if (Arg.is(ValueKind::Thunk)) {
      // Primitives are strict: force, then re-apply.
      Frame *F = mkFrame(FK::Prim1Apply, K);
      F->Op = static_cast<uint8_t>(Fn.asPrim1());
      force(Arg, F);
      return;
    }
    PrimResult R = applyPrim1(Fn.asPrim1(), Arg, A);
    if (!R.Ok) {
      fail(std::move(R.Error));
      return;
    }
    setReturn(R.Val, K);
    return;
  }
  case ValueKind::Prim2: {
    if (Arg.is(ValueKind::Thunk)) {
      // Left-strict at partial application; see Primitives.h.
      Frame *F = mkFrame(FK::Prim2Rhs, K);
      F->Op = static_cast<uint8_t>(Fn.asPrim2());
      F->E1 = nullptr; // Signals "build a partial" instead of eval RHS.
      force(Arg, F);
      return;
    }
    PrimPartial *PP = A.create<PrimPartial>(Fn.asPrim2(), Arg);
    setReturn(Value::mkPrim2Partial(PP), K);
    return;
  }
  case ValueKind::Prim2Partial: {
    PrimPartial *PP = Fn.asPrim2Partial();
    if (Arg.is(ValueKind::Thunk)) {
      Frame *F = mkFrame(FK::Prim2Apply, K);
      F->Op = static_cast<uint8_t>(PP->Op);
      F->V = PP->First;
      force(Arg, F);
      return;
    }
    PrimResult R = applyPrim2(PP->Op, PP->First, Arg, A);
    if (!R.Ok) {
      fail(std::move(R.Error));
      return;
    }
    setReturn(R.Val, K);
    return;
  }
  default:
    fail("cannot apply a non-function value (" + toDisplayString(Fn) + ")");
    return;
  }
}

template <typename Policy, bool Lexical>
void MachineT<Policy, Lexical>::doReturn(Value V, Frame *K) {
  // Each case reads the frame's fields into locals, recycles the frame,
  // and only then continues — the recycled slot is usually reused by the
  // very next mkFrame, so the continuation's hot end stays in cache.
  switch (K->K) {
  case FK::Halt:
    M = Mode::Done;
    CurVal = V;
    return;
  case FK::EvalFn: {
    // V is the operand value; evaluate the operator next.
    const Expr *Fn = K->E1;
    EnvT *Env = K->Env;
    uint32_t Tail = K->Idx;
    Frame *Next = K->Next;
    recycle(K);
    Frame *F = mkFrame(FK::Apply, Next);
    F->V = V;
    F->Env = Env; // The application site's env, for the tail-reuse check.
    F->Idx = Tail;
    M = Mode::Eval;
    CurExpr = Fn;
    CurEnv = Env;
    CurKont = F;
    return;
  }
  case FK::Apply: {
    // V is the operator; the stored value is the operand.
    Value Arg = K->V;
    EnvT *CallerEnv = K->Env;
    bool Tail = K->Idx != 0;
    Frame *Next = K->Next;
    recycle(K);
    applyFunction(V, Arg, Next, CallerEnv, Tail);
    return;
  }
  case FK::Branch: {
    if (!V.is(ValueKind::Bool)) {
      fail("conditional scrutinee must be a boolean, found " +
           toDisplayString(V));
      return;
    }
    const Expr *Taken = V.asBool() ? K->E1 : K->E2;
    EnvT *Env = K->Env;
    Frame *Next = K->Next;
    recycle(K);
    M = Mode::Eval;
    CurExpr = Taken;
    CurEnv = Env;
    CurKont = Next;
    return;
  }
  case FK::LetrecBind: {
    EnvT *Env = K->Env;
    uint32_t Idx = K->Idx;
    const Expr *Body = K->E1;
    Frame *Next = K->Next;
    recycle(K);
    if constexpr (Lexical)
      Env->slots()[Idx] = V;
    else
      Env->Val = V;
    M = Mode::Eval;
    CurExpr = Body;
    CurEnv = Env;
    CurKont = Next;
    return;
  }
  case FK::Prim2Rhs: {
    uint8_t Op = K->Op;
    const Expr *Rhs = K->E1;
    EnvT *Env = K->Env;
    Frame *Next = K->Next;
    recycle(K);
    if (!Rhs) {
      // Forced first operand of a higher-order prim2 application.
      PrimPartial *PP = A.create<PrimPartial>(static_cast<Prim2Op>(Op), V);
      setReturn(Value::mkPrim2Partial(PP), Next);
      return;
    }
    Frame *F = mkFrame(FK::Prim2Apply, Next);
    F->Op = Op;
    F->V = V;
    M = Mode::Eval;
    CurExpr = Rhs;
    CurEnv = Env;
    CurKont = F;
    return;
  }
  case FK::Prim2Apply: {
    uint8_t Op = K->Op;
    Value Lhs = K->V;
    Frame *Next = K->Next;
    recycle(K);
    PrimResult R = applyPrim2(static_cast<Prim2Op>(Op), Lhs, V, A);
    if (!R.Ok) {
      fail(std::move(R.Error));
      return;
    }
    setReturn(R.Val, Next);
    return;
  }
  case FK::Prim1Apply: {
    uint8_t Op = K->Op;
    Frame *Next = K->Next;
    recycle(K);
    PrimResult R = applyPrim1(static_cast<Prim1Op>(Op), V, A);
    if (!R.Ok) {
      fail(std::move(R.Error));
      return;
    }
    setReturn(R.Val, Next);
    return;
  }
  case FK::MonPost: {
    if constexpr (Policy::Enabled)
      Pol.post(*K->Ann, *K->E1, envView(K->Env), V, Steps,
               A.bytesAllocated());
    Frame *Next = K->Next;
    recycle(K);
    setReturn(V, Next);
    return;
  }
  case FK::UpdateThunk: {
    Thunk *T = K->Th;
    Frame *Next = K->Next;
    recycle(K);
    T->St = Thunk::State::Forced;
    T->Memo = V;
    setReturn(V, Next);
    return;
  }
  }
}

/// Per-frame-kind payloads: each kind serializes exactly the fields its
/// doReturn case reads, so stale fields of recycled frames never drag
/// unreachable heap structure into the checkpoint.
template <typename Policy, bool Lexical>
Checkpoint MachineT<Policy, Lexical>::makeCheckpoint() {
  CheckpointHeader H;
  H.Backend = CheckpointBackend::CEK;
  H.Strategy = static_cast<uint8_t>(Opts.Strat);
  H.Lexical = Lexical;
  // Only hook-carrying policies (DynamicMonitorPolicy) have monitor states
  // to serialize; a level-1 inline policy keeps its state outside the
  // machine and checkpoints as unmonitored.
  constexpr bool HasHooks =
      requires(Policy &P, Serializer &Sec) { P.Hooks->saveMonitorSection(Sec); };
  H.Monitored = HasHooks;
#ifdef MONSEM_VALUE_BOXED
  H.BoxedValues = true;
#endif
  H.ProgramFingerprint = fingerprint();
  H.SavedSteps = Steps - 1;
  Serializer S = Checkpoint::begin(H);
  S.writeU8(M == Mode::Return ? 1 : 0);
  if constexpr (HasHooks)
    Pol.Hooks->saveMonitorSection(S);
  else
    S.writeU32(0);

  ValueGraphWriter W(exprTable(), shapesOrNull(), Lexical);
  Serializer &RS = W.roots();
  if (M == Mode::Return) {
    W.writeValue(CurVal);
  } else {
    W.writeExprRef(CurExpr);
    writeEnvRef(W, CurEnv);
  }
  if constexpr (Lexical)
    W.writeEnvFrameRef(PrimF);

  uint32_t N = 0;
  for (Frame *F = CurKont; F; F = F->Next)
    ++N;
  RS.writeU32(N);
  for (Frame *F = CurKont; F; F = F->Next) {
    RS.writeU8(static_cast<uint8_t>(F->K));
    switch (F->K) {
    case FK::Halt:
      break;
    case FK::EvalFn:
      W.writeExprRef(F->E1);
      writeEnvRef(W, F->Env);
      RS.writeU32(F->Idx);
      break;
    case FK::Apply:
      W.writeValue(F->V);
      writeEnvRef(W, F->Env);
      RS.writeU32(F->Idx);
      break;
    case FK::Branch:
      W.writeExprRef(F->E1);
      W.writeExprRef(F->E2);
      writeEnvRef(W, F->Env);
      break;
    case FK::LetrecBind:
      writeEnvRef(W, F->Env);
      RS.writeU32(F->Idx);
      W.writeExprRef(F->E1);
      break;
    case FK::Prim2Rhs:
      RS.writeU8(F->Op);
      W.writeExprRef(F->E1); // Null encodes "build a partial" (see doReturn).
      writeEnvRef(W, F->Env);
      break;
    case FK::Prim2Apply:
      RS.writeU8(F->Op);
      W.writeValue(F->V);
      break;
    case FK::Prim1Apply:
      RS.writeU8(F->Op);
      break;
    case FK::MonPost:
      // Ann and E1 both belong to one AnnotExpr; its pre-order id names
      // them across processes.
      RS.writeU32(annotIdOf(F->Ann));
      writeEnvRef(W, F->Env);
      break;
    case FK::UpdateThunk:
      W.writeThunkRef(F->Th);
      break;
    }
  }
  if (!W.ok())
    return Checkpoint();
  W.finish(S);
  return Checkpoint::seal(std::move(S));
}

template <typename Policy, bool Lexical>
bool MachineT<Policy, Lexical>::restoreCheckpoint(const Checkpoint &CK,
                                                  std::string &Err) {
  const CheckpointHeader &H = CK.header();
  if (H.Backend != CheckpointBackend::CEK) {
    Err = "checkpoint was taken by the VM backend, not the CEK machine";
    return false;
  }
  if (H.Strategy != static_cast<uint8_t>(Opts.Strat)) {
    Err = std::string("checkpoint was taken under the ") +
          strategyName(static_cast<Strategy>(H.Strategy)) +
          " strategy, this run uses " + strategyName(Opts.Strat);
    return false;
  }
  if (H.Lexical != Lexical) {
    Err = "checkpoint environment representation (flat frames vs named "
          "chain) does not match this machine";
    return false;
  }
  constexpr bool HasHooks = requires(Policy &P, Deserializer &Sec) {
    P.Hooks->loadMonitorSection(Sec);
  };
  if (H.Monitored != HasHooks) {
    Err = H.Monitored
              ? "checkpoint was taken by a monitored run; attach the same "
                "cascade to resume"
              : "checkpoint was taken by an unmonitored run";
    return false;
  }
  if (H.ProgramFingerprint != fingerprint()) {
    Err = "checkpoint was taken for a different program (fingerprint "
          "mismatch)";
    return false;
  }

  Deserializer D = CK.payload();
  uint8_t ModeByte = D.readU8();
  if (ModeByte > 1) {
    Err = "corrupt checkpoint: bad trampoline mode byte";
    return false;
  }
  if constexpr (HasHooks)
    Pol.Hooks->loadMonitorSection(D);
  else if (D.readU32() != 0)
    D.fail("checkpoint has monitor states but this run is unmonitored");
  if (!D.ok()) {
    Err = D.error();
    return false;
  }

  ValueGraphReader Rd(D, A, exprTable(), shapesOrNull(), numShapesOrZero());
  if (!Rd.readObjects()) {
    Err = D.error();
    return false;
  }
  if (ModeByte == 1) {
    CurVal = Rd.readValue();
    M = Mode::Return;
  } else {
    CurExpr = Rd.readExprRef();
    CurEnv = readEnvRef(Rd);
    M = Mode::Eval;
    if (D.ok() && !CurExpr) {
      Err = "corrupt checkpoint: null control expression";
      return false;
    }
  }
  if constexpr (Lexical)
    PrimF = Rd.readEnvFrameRef();

  uint32_t N = D.readU32();
  if (!D.ok() || N == 0 || N > (1u << 28)) {
    Err = D.ok() ? "corrupt checkpoint: bad continuation length" : D.error();
    return false;
  }
  std::vector<Frame *> Fs(N);
  for (uint32_t I = 0; I < N; ++I)
    Fs[I] = A.create<Frame>();
  for (uint32_t I = 0; I < N && D.ok(); ++I) {
    Frame *F = Fs[I];
    uint8_t Raw = D.readU8();
    if (Raw > static_cast<uint8_t>(FK::UpdateThunk)) {
      D.fail("corrupt checkpoint: unknown continuation frame kind");
      break;
    }
    F->K = static_cast<FK>(Raw);
    switch (F->K) {
    case FK::Halt:
      break;
    case FK::EvalFn:
      F->E1 = Rd.readExprRef();
      F->Env = readEnvRef(Rd);
      F->Idx = D.readU32();
      break;
    case FK::Apply:
      F->V = Rd.readValue();
      F->Env = readEnvRef(Rd);
      F->Idx = D.readU32();
      break;
    case FK::Branch:
      F->E1 = Rd.readExprRef();
      F->E2 = Rd.readExprRef();
      F->Env = readEnvRef(Rd);
      break;
    case FK::LetrecBind:
      F->Env = readEnvRef(Rd);
      F->Idx = D.readU32();
      F->E1 = Rd.readExprRef();
      break;
    case FK::Prim2Rhs:
      F->Op = D.readU8();
      F->E1 = Rd.readExprRef();
      F->Env = readEnvRef(Rd);
      break;
    case FK::Prim2Apply:
      F->Op = D.readU8();
      F->V = Rd.readValue();
      break;
    case FK::Prim1Apply:
      F->Op = D.readU8();
      break;
    case FK::MonPost: {
      uint32_t AnnId = D.readU32();
      const Expr *AE = exprTable()->exprAt(AnnId);
      if (!AE || AE->kind() != ExprKind::Annot) {
        D.fail("corrupt checkpoint: MonPost frame names a non-annotation");
        break;
      }
      F->Ann = cast<AnnotExpr>(AE)->Ann;
      F->E1 = cast<AnnotExpr>(AE)->Inner;
      F->Env = readEnvRef(Rd);
      break;
    }
    case FK::UpdateThunk:
      F->Th = Rd.readThunkRef();
      if (D.ok() && !F->Th) {
        D.fail("corrupt checkpoint: UpdateThunk frame without a thunk");
      }
      break;
    }
    F->Next = I + 1 < N ? Fs[I + 1] : nullptr;
  }
  if (D.ok() && Fs[N - 1]->K != FK::Halt)
    D.fail("corrupt checkpoint: continuation does not end in Halt");
  if (!D.ok()) {
    Err = D.error();
    return false;
  }
  CurKont = Fs[0];
  KontDepth = N;
  RevivedStrings = Rd.takeStrings();
  return true;
}

template <typename Policy, bool Lexical>
RunResult MachineT<Policy, Lexical>::run() {
  RunResult R;
  if (Opts.ResumeFrom) {
    std::string Err;
    if (!restoreCheckpoint(*Opts.ResumeFrom, Err)) {
      R.setOutcome(Outcome::Error);
      R.Error = "cannot resume from checkpoint: " + Err;
      return R;
    }
    // Continue the cumulative step counter; fuel and checkpoint boundaries
    // are measured from the resume point (fresh budget).
    StepBase = Steps = Opts.ResumeFrom->header().SavedSteps;
  }
  Governor Gov(Opts.Limits, Opts.MaxSteps, StepBase,
               Opts.CheckpointSink ? Opts.CheckpointEveryNSteps : 0);
  A.setByteLimit(Gov.arenaByteCap());
  try {
    if (!Opts.ResumeFrom) {
      Frame *Halt = mkFrame(FK::Halt, nullptr);
      CurExpr = Program;
      if constexpr (Lexical) {
        // The frame chain bottoms out at the initial frame so monitors see
        // the primitive bindings through EnvView, matching the named chain.
        // The machine itself addresses PrimF directly (AddrKind::Global).
        PrimF = initialFrame(A);
        CurEnv = allocFrame(A, Res->rootShape(), PrimF);
      } else {
        CurEnv = initialEnv(A);
      }
      CurKont = Halt;
      M = Mode::Eval;
    }

    while (M != Mode::Done && !Failed) {
      ++Steps;
      if (Steps >= Gov.nextPause()) {
        Outcome O = Gov.pause(Steps, A.bytesAllocated(), KontDepth);
        if (O != Outcome::Ok) {
          // ++Steps ran but transition `Steps` did not; the checkpoint
          // records Steps-1 completed transitions so a resumed run
          // re-executes exactly this transition.
          if (Opts.CheckpointOnStop)
            emitCheckpoint();
          R.setOutcome(O);
          R.Steps = Steps;
          R.ArenaBytes = A.bytesAllocated();
          return R;
        }
        if (Gov.takeCheckpointDue())
          emitCheckpoint();
      }
      if (M == Mode::Eval)
        doEval(CurExpr, CurEnv, CurKont);
      else
        doReturn(CurVal, CurKont);
    }
  } catch (const MonitorAbort &E) {
    // A monitor under FaultPolicy::Abort faulted: the run's answer is an
    // error, not a crash.
    Failed = true;
    Error = E.what();
  } catch (const DurabilityAbort &E) {
    // A durable sink failed under OnDurabilityFailure::Abort: "no
    // checkpoint, no progress" — surface it as the run's error.
    Failed = true;
    Error = E.what();
  } catch (const ArenaLimitExceeded &) {
    // A single step blew past the arena cap between checkpoints.
    R.setOutcome(Outcome::MemoryExceeded);
    R.Steps = Steps;
    R.ArenaBytes = A.bytesAllocated();
    return R;
  }

  R.Steps = Steps;
  R.ArenaBytes = A.bytesAllocated();
  if (Failed) {
    R.setOutcome(Outcome::Error);
    R.Error = std::move(Error);
    return R;
  }
  R.setOutcome(Outcome::Ok);
  // kappa_init = \v. phi v (Section 3.1).
  R.ValueText = Opts.Algebra->render(CurVal);
  if (CurVal.is(ValueKind::Int))
    R.IntValue = CurVal.asInt();
  if (CurVal.is(ValueKind::Bool))
    R.BoolValue = CurVal.asBool();
  return R;
}

} // namespace monsem

#endif // MONSEM_INTERP_MACHINE_H
