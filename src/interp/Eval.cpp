//===- interp/Eval.cpp -----------------------------------------------------===//

#include "interp/Eval.h"

using namespace monsem;

std::unique_ptr<ParsedProgram> ParsedProgram::parse(std::string_view Source,
                                                    ParseOptions Opts) {
  auto P = std::make_unique<ParsedProgram>();
  P->Root = parseProgram(P->Ctx, Source, P->Diags, Opts);
  return P;
}

RunResult monsem::evaluate(const Expr *Program, RunOptions Opts) {
  if (Opts.Lexical) {
    // Level-2 specialization: resolve once, then run on flat frames. The
    // resolver refuses shared-node programs (!ok), in which case the named
    // chain remains the semantics of record.
    std::unique_ptr<Resolution> Res = resolveProgram(Program);
    if (Res->ok()) {
      ResolvedMachine M(Program, Opts, NoMonitorPolicy(), Res.get());
      return M.run();
    }
  }
  StandardMachine M(Program, Opts);
  return M.run();
}

RunResult monsem::evaluate(const Cascade &C, const Expr *Program,
                           RunOptions Opts) {
  if (C.empty())
    return evaluate(Program, Opts);

  DiagnosticSink Diags;
  if (!C.validateFor(Program, Diags)) {
    RunResult R;
    R.setOutcome(Outcome::Error);
    R.Error = Diags.str();
    return R;
  }

  RuntimeCascade RC(C, Opts.MonitorFaultPolicy, Opts.MonitorRetryBudget);
  DynamicMonitorPolicy Policy{&RC};
  if (Opts.Lexical) {
    std::unique_ptr<Resolution> Res = resolveProgram(Program);
    if (Res->ok()) {
      ResolvedMonitoredMachine M(Program, Opts, Policy, Res.get());
      RunResult R = M.run();
      R.FinalStates = RC.takeStates();
      R.MonitorFaults = RC.takeFaults();
      return R;
    }
  }
  MonitoredMachine M(Program, Opts, Policy);
  RunResult R = M.run();
  R.FinalStates = RC.takeStates();
  R.MonitorFaults = RC.takeFaults();
  return R;
}

RunResult monsem::evaluate(const EvalMode &Mode, const Expr *Program) {
  RunOptions Opts;
  Opts.Strat = Mode.Strat;
  Opts.MaxSteps = Mode.MaxSteps;
  return evaluate(Mode.C, Program, Opts);
}

std::string monsem::describeStates(const Cascade &C, const RunResult &R) {
  std::string Out;
  for (unsigned I = 0; I < C.size() && I < R.FinalStates.size(); ++I) {
    Out += C.monitor(I).name();
    Out += ": ";
    Out += R.FinalStates[I]->str();
    Out += '\n';
  }
  return Out;
}
