//===- interp/Eval.cpp -----------------------------------------------------===//

#include "interp/Eval.h"

#include "compile/VM.h"
#include "interp/Direct.h"

using namespace monsem;

std::unique_ptr<ParsedProgram> ParsedProgram::parse(std::string_view Source,
                                                    ParseOptions Opts) {
  auto P = std::make_unique<ParsedProgram>();
  P->Root = parseProgram(P->Ctx, Source, P->Diags, Opts);
  return P;
}

RunResult monsem::evaluate(const Expr *Program, RunOptions Opts) {
  DurabilityTracker Tracker(Opts.DurabilityPolicy, Opts.DurabilityRetryBudget);
  armDurabilityTracker(Opts, Tracker);
  armJournalCheckpointSink(Opts);
  // On resume the machine choice (flat frames vs. named chain) must match
  // the one the checkpoint was written under; adopt it from the header so
  // a default-configured resume always pairs up. Program identity is still
  // guarded by the fingerprint check inside restoreCheckpoint().
  if (Opts.ResumeFrom && Opts.ResumeFrom->valid())
    Opts.Lexical = Opts.ResumeFrom->header().Lexical;
  RunResult R;
  if (Opts.Lexical) {
    // Level-2 specialization: resolve once, then run on flat frames. The
    // resolver refuses shared-node programs (!ok), in which case the named
    // chain remains the semantics of record.
    // Cached: one tree is resolved once, process-wide, so concurrent runs
    // sharing a program (Session workers) never race on the annotations.
    std::shared_ptr<const Resolution> Res = resolveProgramCached(Program);
    if (Res->ok()) {
      ResolvedMachine M(Program, Opts, NoMonitorPolicy(), Res.get());
      R = M.run();
      R.DurabilityFaults = Opts.Durability->takeFaults();
      return R;
    }
  }
  StandardMachine M(Program, Opts);
  R = M.run();
  R.DurabilityFaults = Opts.Durability->takeFaults();
  return R;
}

/// Monitoring semantics with \p C instantiated over \p Program. Internal:
/// the public surface is evaluate(EvalMode, Expr*) — EvalMode::runOptions()
/// is the single options constructor (a Cascade converts implicitly to an
/// EvalMode, so `evaluate(C & maxSteps(n), e)` is the spelling).
static RunResult evaluateMonitored(const Cascade &C, const Expr *Program,
                                   RunOptions Opts) {
  if (C.empty())
    return evaluate(Program, Opts);
  DurabilityTracker Tracker(Opts.DurabilityPolicy, Opts.DurabilityRetryBudget);
  armDurabilityTracker(Opts, Tracker);
  armJournalCheckpointSink(Opts);
  if (Opts.ResumeFrom && Opts.ResumeFrom->valid())
    Opts.Lexical = Opts.ResumeFrom->header().Lexical;

  DiagnosticSink Diags;
  if (!C.validateFor(Program, Diags)) {
    RunResult R;
    R.setOutcome(Outcome::Error);
    R.Error = Diags.str();
    return R;
  }

  // Hook chain, outermost first: journal -> event tap -> cascade. Both
  // decorators render events with the same canonical text, so the tapped
  // and journaled streams are byte-identical.
  RuntimeCascade RC(C, Opts.MonitorFaultPolicy, Opts.MonitorRetryBudget);
  std::unique_ptr<EventTapHooks> ET;
  std::unique_ptr<JournalingHooks> JH;
  MonitorHooks *Hooks = &RC;
  if (Opts.EventSink) {
    ET = std::make_unique<EventTapHooks>(*Hooks, Opts.EventSink);
    Hooks = ET.get();
  }
  if (Opts.RunJournal) {
    JH = std::make_unique<JournalingHooks>(*Hooks, *Opts.RunJournal,
                                           Opts.Durability);
    Hooks = JH.get();
  }
  DynamicMonitorPolicy Policy{Hooks};
  if (Opts.Lexical) {
    std::shared_ptr<const Resolution> Res = resolveProgramCached(Program);
    if (Res->ok()) {
      ResolvedMonitoredMachine M(Program, Opts, Policy, Res.get());
      RunResult R = M.run();
      R.FinalStates = RC.takeStates();
      R.MonitorFaults = RC.takeFaults();
      R.DurabilityFaults = Opts.Durability->takeFaults();
      return R;
    }
  }
  MonitoredMachine M(Program, Opts, Policy);
  RunResult R = M.run();
  R.FinalStates = RC.takeStates();
  R.MonitorFaults = RC.takeFaults();
  R.DurabilityFaults = Opts.Durability->takeFaults();
  return R;
}

static RunResult errorResult(std::string Msg) {
  RunResult R;
  R.setOutcome(Outcome::Error);
  R.Error = std::move(Msg);
  return R;
}

RunResult monsem::evaluate(const EvalMode &Mode, const Expr *Program) {
  RunOptions Opts = Mode.runOptions();
  switch (Mode.B) {
  case Backend::CEK:
    return evaluateMonitored(Mode.C, Program, Opts);

  case Backend::VM:
    if (Opts.Strat != Strategy::Strict)
      return errorResult("the VM backend is strict-only; drop kVM or the "
                         "lazy strategy tag");
    // evaluateCompiled validates disjointness itself.
    return evaluateCompiled(Mode.C, Program, Opts);

  case Backend::VMRegister:
    if (Opts.Strat != Strategy::Strict)
      return errorResult("the VM backend is strict-only; drop kVMReg or "
                         "the lazy strategy tag");
    Opts.VMRegister = true;
    return evaluateCompiled(Mode.C, Program, Opts);

  case Backend::VMAot:
    if (Opts.Strat != Strategy::Strict)
      return errorResult("the VM backend is strict-only; drop kVMAot or "
                         "the lazy strategy tag");
    Opts.VMRegister = true;
    Opts.VMAot = true;
    return evaluateCompiled(Mode.C, Program, Opts);

  case Backend::Direct: {
    if (Opts.Strat != Strategy::Strict)
      return errorResult("the Direct backend is strict-only; drop kDirect "
                         "or the lazy strategy tag");
    if (Opts.ResumeFrom)
      return errorResult("checkpoint/resume requires the CEK or VM backend; "
                         "drop kDirect");
    // runDirect assumes a validated cascade; validate here like the other
    // backends do.
    if (!Mode.C.empty()) {
      DiagnosticSink Diags;
      if (!Mode.C.validateFor(Program, Diags))
        return errorResult(Diags.str());
    }
    DirectOptions D;
    // The direct interpreter's call budget doubles as its fuel and depth
    // bound.
    if (Mode.Limits.MaxSteps)
      D.CallBudget = Mode.Limits.MaxSteps;
    D.Limits = Mode.Limits;
    D.MonitorFaultPolicy = Mode.MonitorFaultPolicy;
    D.MonitorRetryBudget = Mode.MonitorRetryBudget;
    return runDirect(Program, Mode.C.empty() ? nullptr : &Mode.C, D);
  }
  }
  return errorResult("unknown backend");
}

std::string monsem::describeStates(const Cascade &C, const RunResult &R) {
  std::string Out;
  for (unsigned I = 0; I < C.size() && I < R.FinalStates.size(); ++I) {
    Out += C.monitor(I).name();
    Out += ": ";
    Out += R.FinalStates[I]->str();
    Out += '\n';
  }
  return Out;
}
