//===- interp/Direct.cpp ---------------------------------------------------===//

#include "interp/Direct.h"

using namespace monsem;

DirectValuation monsem::fixpoint(DirectFunctional G) {
  // The recursive references inside the knot are non-owning: if Self held
  // the shared_ptr, `*Hole = G(Self)` would store Self inside Hole and
  // the reference cycle would never be collected. Only the returned
  // valuation owns Hole, so destroying it frees the whole structure.
  auto Hole = std::make_shared<DirectValuation>();
  DirectValuation *Raw = Hole.get();
  DirectValuation Self = [Raw](const Expr *E, EnvNode *Env,
                               const DirectKont &K) { (*Raw)(E, Env, K); };
  *Hole = G(Self);
  return [Hole, Self](const Expr *E, EnvNode *Env, const DirectKont &K) {
    Self(E, Env, K);
  };
}

namespace {

/// Applies function value \p Fn to \p Arg; recursive evaluation goes
/// through \p Self (the fixpoint), so derived behavior is inherited at all
/// levels of recursion.
void applyDirect(DirectContext &Ctx, const DirectValuation &Self, Value Fn,
                 Value Arg, const DirectKont &K) {
  switch (Fn.kind()) {
  case ValueKind::Closure: {
    Closure *C = Fn.asClosure();
    EnvNode *Env = extendEnv(Ctx.A, C->Env, C->L->Param, Arg);
    Self(C->L->Body, Env, K);
    return;
  }
  case ValueKind::Prim1: {
    PrimResult R = applyPrim1(Fn.asPrim1(), Arg, Ctx.A);
    if (!R.Ok) {
      Ctx.fail(std::move(R.Error));
      return;
    }
    K(R.Val);
    return;
  }
  case ValueKind::Prim2: {
    PrimPartial *PP = Ctx.A.create<PrimPartial>(Fn.asPrim2(), Arg);
    K(Value::mkPrim2Partial(PP));
    return;
  }
  case ValueKind::Prim2Partial: {
    PrimPartial *PP = Fn.asPrim2Partial();
    PrimResult R = applyPrim2(PP->Op, PP->First, Arg, Ctx.A);
    if (!R.Ok) {
      Ctx.fail(std::move(R.Error));
      return;
    }
    K(R.Val);
    return;
  }
  default:
    Ctx.fail("cannot apply a non-function value (" + toDisplayString(Fn) +
             ")");
    return;
  }
}

} // namespace

DirectFunctional monsem::standardFunctional(DirectContext &Ctx) {
  return [&Ctx](const DirectValuation &Self) -> DirectValuation {
    return [&Ctx, Self](const Expr *E, EnvNode *Env, const DirectKont &K) {
      if (Ctx.stopped() || !Ctx.charge())
        return;
      switch (E->kind()) {
      case ExprKind::Const: {
        const ConstVal &C = cast<ConstExpr>(E)->Val;
        switch (C.K) {
        case ConstVal::Kind::Int:
          K(Value::mkInt(C.Int, Ctx.A));
          return;
        case ConstVal::Kind::Bool:
          K(Value::mkBool(C.Bool));
          return;
        case ConstVal::Kind::Str:
          K(Value::mkStr(C.Str));
          return;
        case ConstVal::Kind::Nil:
          K(Value::mkNil());
          return;
        }
        return;
      }
      case ExprKind::Var: {
        const auto *V = cast<VarExpr>(E);
        EnvNode *N = lookupEnv(Env, V->Name);
        if (!N) {
          Ctx.fail("unbound variable '" + std::string(V->Name.str()) +
                   "' at " + E->loc().str());
          return;
        }
        if (N->Val.isUnit()) {
          Ctx.fail("letrec variable '" + std::string(V->Name.str()) +
                   "' referenced before initialization");
          return;
        }
        K(N->Val);
        return;
      }
      case ExprKind::Lam: {
        const auto *L = cast<LamExpr>(E);
        Closure *C = Ctx.A.create<Closure>(L, Env);
        K(Value::mkClosure(C));
        return;
      }
      case ExprKind::If: {
        const auto *I = cast<IfExpr>(E);
        // E[e1] rho { \v. v|Bool -> E[e2] rho k, E[e3] rho k }
        Self(I->Cond, Env, [&Ctx, Self, I, Env, K](Value V) {
          if (!V.is(ValueKind::Bool)) {
            Ctx.fail("conditional scrutinee must be a boolean, found " +
                     toDisplayString(V));
            return;
          }
          Self(V.asBool() ? I->Then : I->Else, Env, K);
        });
        return;
      }
      case ExprKind::App: {
        const auto *App = cast<AppExpr>(E);
        // E[e2] rho { \v2. E[e1] rho { \v1. (v1|Fun) v2 k } }
        Self(App->Arg, Env, [&Ctx, Self, App, Env, K](Value V2) {
          Self(App->Fn, Env, [&Ctx, Self, V2, K](Value V1) {
            applyDirect(Ctx, Self, V1, V2, K);
          });
        });
        return;
      }
      case ExprKind::Letrec: {
        const auto *L = cast<LetrecExpr>(E);
        EnvNode *Node = extendEnv(Ctx.A, Env, L->Name, Value::mkUnit());
        Self(L->Bound, Node, [&Ctx, Self, L, Node, K](Value V) {
          Node->Val = V; // rho' = rho[f -> ...]: tie the knot.
          Self(L->Body, Node, K);
        });
        return;
      }
      case ExprKind::Prim1: {
        const auto *P = cast<Prim1Expr>(E);
        Self(P->Arg, Env, [&Ctx, P, K](Value V) {
          PrimResult R = applyPrim1(P->Op, V, Ctx.A);
          if (!R.Ok) {
            Ctx.fail(std::move(R.Error));
            return;
          }
          K(R.Val);
        });
        return;
      }
      case ExprKind::Prim2: {
        const auto *P = cast<Prim2Expr>(E);
        Self(P->Lhs, Env, [&Ctx, Self, P, Env, K](Value L) {
          Self(P->Rhs, Env, [&Ctx, P, L, K](Value R) {
            PrimResult PR = applyPrim2(P->Op, L, R, Ctx.A);
            if (!PR.Ok) {
              Ctx.fail(std::move(PR.Error));
              return;
            }
            K(PR.Val);
          });
        });
        return;
      }
      case ExprKind::Annot:
        // G is oblivious to monitor annotations (Definition 7.1):
        // G_obl V [{mu}: sbar] a* k = V [sbar] a* k.
        Self(cast<AnnotExpr>(E)->Inner, Env, K);
        return;
      }
    };
  };
}

DirectFunctional monsem::deriveMonitoring(DirectFunctional G, const Monitor &M,
                                          MonitorState &State,
                                          const MonitorContext &MCtx,
                                          DirectContext &Ctx,
                                          FaultIsolator *Iso,
                                          unsigned MonitorIdx) {
  return [G, &M, &State, &MCtx, &Ctx, Iso, MonitorIdx](
             const DirectValuation &Self) -> DirectValuation {
    // Gbar Vbar: for non-annotated syntax, inherit G's equations (with the
    // *derived* fixpoint Vbar as the recursive valuation).
    DirectValuation Inherited = G(Self);
    return [&M, &State, &MCtx, &Ctx, Iso, MonitorIdx, Inherited, Self](
               const Expr *E, EnvNode *Env, const DirectKont &K) {
      if (Ctx.stopped())
        return;
      if (const auto *N = dyn_cast<AnnotExpr>(E)) {
        const Annotation &Ann = *N->Ann;
        bool Mine = Ann.Qual ? Ann.Qual.str() == M.name() : M.accepts(Ann);
        if (Mine) {
          // (Vbar [sbar'] a* kpost) . updPre   (Definition 4.2)
          MonitorEvent Pre{Ann,      *N->Inner, EnvView(Env),
                           Ctx.Calls, Ctx.A.bytesAllocated(), MCtx};
          if (Iso)
            Iso->guard(MonitorIdx, M.name(), Ann.text(), /*InPost=*/false,
                       Ctx.Calls, [&] { M.pre(Pre, State); });
          else
            M.pre(Pre, State);
          const Expr *Inner = N->Inner;
          DirectKont KPost = [&M, &State, &MCtx, &Ctx, Iso, MonitorIdx, N,
                              Inner, Env, K](Value V) {
            // kpost = { \iota*. (k iota*) . updPost }
            MonitorEvent Post{*N->Ann,   *Inner, EnvView(Env), Ctx.Calls,
                              Ctx.A.bytesAllocated(), MCtx};
            if (Iso)
              Iso->guard(MonitorIdx, M.name(), N->Ann->text(),
                         /*InPost=*/true, Ctx.Calls,
                         [&] { M.post(Post, V, State); });
            else
              M.post(Post, V, State);
            K(V);
          };
          Self(Inner, Env, KPost);
          return;
        }
      }
      Inherited(E, Env, K);
    };
  };
}

namespace {

/// MonitorContext exposing the first N states of a cascade run.
class PrefixContext : public MonitorContext {
public:
  PrefixContext(const std::vector<std::unique_ptr<MonitorState>> &States,
                unsigned N)
      : States(States), N(N) {}
  unsigned numInnerMonitors() const override { return N; }
  const MonitorState &innerState(unsigned I) const override {
    return *States[I];
  }

private:
  const std::vector<std::unique_ptr<MonitorState>> &States;
  unsigned N;
};

} // namespace

RunResult monsem::runDirect(const Expr *Program, const Cascade *C,
                            uint64_t CallBudget) {
  DirectOptions Opts;
  Opts.CallBudget = CallBudget;
  return runDirect(Program, C, Opts);
}

RunResult monsem::runDirect(const Expr *Program, const Cascade *C,
                            const DirectOptions &Opts) {
  DirectContext Ctx;
  Ctx.CallBudget = Opts.CallBudget;
  Governor Gov(Opts.Limits);
  Ctx.Gov = Opts.Limits.any() ? &Gov : nullptr;
  Ctx.A.setByteLimit(Gov.arenaByteCap());

  FaultIsolator Iso;
  std::vector<std::unique_ptr<MonitorState>> States;
  std::vector<std::unique_ptr<PrefixContext>> MCtxs;
  DirectFunctional G = standardFunctional(Ctx);
  if (C) {
    Iso.configure(C->size(), Opts.MonitorFaultPolicy, Opts.MonitorRetryBudget);
    for (unsigned I = 0; I < C->size(); ++I) {
      States.push_back(C->monitor(I).initialState());
      MCtxs.push_back(std::make_unique<PrefixContext>(States, I));
      if (auto P = C->faultPolicy(I))
        Iso.setPolicy(I, *P);
      G = deriveMonitoring(G, C->monitor(I), *States[I], *MCtxs[I], Ctx,
                           &Iso, I);
    }
  }

  DirectValuation V = fixpoint(G);
  DirectKont KInit = [&Ctx](Value Val) {
    Ctx.Result = Val;
    Ctx.HasResult = true;
  };
  try {
    V(Program, initialEnv(Ctx.A), KInit);
  } catch (const MonitorAbort &E) {
    Ctx.Failed = true;
    Ctx.Error = E.what();
  } catch (const ArenaLimitExceeded &) {
    Ctx.Stop = Outcome::MemoryExceeded;
  }

  RunResult R;
  R.Steps = Ctx.Calls;
  R.FinalStates = std::move(States);
  R.MonitorFaults = Iso.takeFaults();
  if (Ctx.Stop != Outcome::Ok) {
    R.setOutcome(Ctx.Stop);
    return R;
  }
  if (Ctx.Exhausted) {
    R.setOutcome(Outcome::FuelExhausted);
    return R;
  }
  if (Ctx.Failed || !Ctx.HasResult) {
    R.setOutcome(Outcome::Error);
    R.Error = Ctx.Failed ? Ctx.Error : "no result produced";
    return R;
  }
  R.setOutcome(Outcome::Ok);
  R.ValueText = StdAnswerAlgebra::instance().render(Ctx.Result);
  if (Ctx.Result.is(ValueKind::Int))
    R.IntValue = Ctx.Result.asInt();
  if (Ctx.Result.is(ValueKind::Bool))
    R.BoolValue = Ctx.Result.asBool();
  return R;
}
