//===- interp/Machine.cpp --------------------------------------------------===//

#include "interp/Machine.h"

namespace monsem {

const char *strategyName(Strategy S) {
  switch (S) {
  case Strategy::Strict:
    return "strict";
  case Strategy::CallByName:
    return "call-by-name";
  case Strategy::CallByNeed:
    return "call-by-need";
  }
  return "?";
}

template class MachineT<NoMonitorPolicy>;
template class MachineT<DynamicMonitorPolicy>;

} // namespace monsem
