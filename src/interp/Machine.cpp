//===- interp/Machine.cpp --------------------------------------------------===//

#include "interp/Machine.h"

namespace monsem {

const char *strategyName(Strategy S) {
  switch (S) {
  case Strategy::Strict:
    return "strict";
  case Strategy::CallByName:
    return "call-by-name";
  case Strategy::CallByNeed:
    return "call-by-need";
  }
  return "?";
}

template class MachineT<NoMonitorPolicy, false>;
template class MachineT<DynamicMonitorPolicy, false>;
template class MachineT<NoMonitorPolicy, true>;
template class MachineT<DynamicMonitorPolicy, true>;

} // namespace monsem
