//===- interp/Eval.h - Top-level evaluation API ------------------*- C++ -*-===//
///
/// \file
/// The user-facing API. It mirrors the Haskell environment of Section 9.2,
/// where the user writes
///
///   evaluate (profile & debug & strict) prog
///
/// Here:
///
///   ParsedProgram P = parseOrError(src);
///   RunResult R = evaluate(profiler & debugger & kStrict, P.root());
///
/// `&` composes monitor specifications into a cascade (Section 6) and may
/// also select the evaluation strategy ("language module"). Plain
/// `evaluate(expr)` runs the standard semantics.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_INTERP_EVAL_H
#define MONSEM_INTERP_EVAL_H

#include "interp/Machine.h"
#include "monitor/Cascade.h"
#include "syntax/Parser.h"

#include <memory>
#include <string>
#include <string_view>

namespace monsem {

/// A parsed program: the AST plus the context that owns it.
class ParsedProgram {
public:
  ParsedProgram() = default;
  ParsedProgram(const ParsedProgram &) = delete;
  ParsedProgram &operator=(const ParsedProgram &) = delete;

  /// Parses \p Source; on failure root() is null and diags() has errors.
  static std::unique_ptr<ParsedProgram> parse(std::string_view Source,
                                              ParseOptions Opts = {});

  const Expr *root() const { return Root; }
  bool ok() const { return Root != nullptr; }
  AstContext &context() { return Ctx; }
  const DiagnosticSink &diags() const { return Diags; }

private:
  AstContext Ctx;
  DiagnosticSink Diags;
  const Expr *Root = nullptr;
};

/// A cascade plus an evaluation strategy: the argument of the paper's
/// `evaluate (profile & debug & strict) prog`.
struct EvalMode {
  Cascade C;
  Strategy Strat = Strategy::Strict;
  uint64_t MaxSteps = 0;
};

/// Strategy selectors composable with `&`.
struct StrategyTag {
  Strategy S;
};
inline constexpr StrategyTag kStrict{Strategy::Strict};
inline constexpr StrategyTag kByName{Strategy::CallByName};
inline constexpr StrategyTag kByNeed{Strategy::CallByNeed};

inline EvalMode operator&(const Monitor &A, const Monitor &B) {
  EvalMode M;
  M.C.use(A).use(B);
  return M;
}
inline EvalMode operator&(const Monitor &A, StrategyTag T) {
  EvalMode M;
  M.C.use(A);
  M.Strat = T.S;
  return M;
}
inline EvalMode operator&(EvalMode M, const Monitor &B) {
  M.C.use(B);
  return M;
}
inline EvalMode operator&(EvalMode M, StrategyTag T) {
  M.Strat = T.S;
  return M;
}

/// Standard semantics: no monitoring, annotations skipped.
RunResult evaluate(const Expr *Program, RunOptions Opts = {});

/// Monitoring semantics with \p C instantiated over \p Program. Validates
/// annotation-syntax disjointness first (Section 6); a violation yields an
/// error result without running.
RunResult evaluate(const Cascade &C, const Expr *Program,
                   RunOptions Opts = {});

/// The Section 9.2 spelling.
RunResult evaluate(const EvalMode &Mode, const Expr *Program);

/// Renders final monitor states like the paper does, one per line:
///   profiler: [fac -> 4, mul -> 3]
std::string describeStates(const Cascade &C, const RunResult &R);

} // namespace monsem

#endif // MONSEM_INTERP_EVAL_H
