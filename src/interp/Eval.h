//===- interp/Eval.h - Top-level evaluation API ------------------*- C++ -*-===//
///
/// \file
/// The user-facing API. It mirrors the Haskell environment of Section 9.2,
/// where the user writes
///
///   evaluate (profile & debug & strict) prog
///
/// Here:
///
///   ParsedProgram P = parseOrError(src);
///   RunResult R = evaluate(profiler & debugger & kStrict, P.root());
///
/// `&` composes monitor specifications into a cascade (Section 6) and may
/// also select the evaluation strategy ("language module"), a resource
/// budget, a monitor fault policy, and the execution backend — each of
/// which composes like a strategy does:
///
///   evaluate(profiler & kStrict & deadlineMs(50) & kVM, P.root());
///   evaluate(tracer & maxSteps(100'000) & onMonitorFault(FaultPolicy::Abort),
///            P.root());
///
/// Every combination funnels into the one evaluate(EvalMode, Expr*) entry,
/// which assembles a single RunOptions (EvalMode::runOptions()) and routes
/// to the CEK machine, the bytecode VM, or the direct CPS interpreter.
/// Plain `evaluate(expr)` runs the standard semantics.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_INTERP_EVAL_H
#define MONSEM_INTERP_EVAL_H

#include "interp/Machine.h"
#include "monitor/Cascade.h"
#include "syntax/Parser.h"

#include <atomic>
#include <memory>
#include <string>
#include <string_view>

namespace monsem {

/// A parsed program: the AST plus the context that owns it.
class ParsedProgram {
public:
  ParsedProgram() = default;
  ParsedProgram(const ParsedProgram &) = delete;
  ParsedProgram &operator=(const ParsedProgram &) = delete;

  /// Parses \p Source; on failure root() is null and diags() has errors.
  static std::unique_ptr<ParsedProgram> parse(std::string_view Source,
                                              ParseOptions Opts = {});

  const Expr *root() const { return Root; }
  bool ok() const { return Root != nullptr; }
  AstContext &context() { return Ctx; }
  const DiagnosticSink &diags() const { return Diags; }

private:
  AstContext Ctx;
  DiagnosticSink Diags;
  const Expr *Root = nullptr;
};

/// Strategy selectors composable with `&`.
struct StrategyTag {
  Strategy S;
};
inline constexpr StrategyTag kStrict{Strategy::Strict};
inline constexpr StrategyTag kByName{Strategy::CallByName};
inline constexpr StrategyTag kByNeed{Strategy::CallByNeed};

/// Which evaluator executes the program.
enum class Backend : uint8_t {
  CEK,        ///< The production CEK machine (all three strategies).
  VM,         ///< Compile to bytecode, run on the stack VM (strict only).
  VMRegister, ///< Compile, lower to the register tier, run (strict only).
  VMAot,      ///< Register tier + native code for leaf blocks (strict
              ///< only); degrades to VMRegister without a C compiler.
  Direct,     ///< The definitional CPS interpreter (strict only).
};

/// Backend selectors composable with `&`.
struct BackendTag {
  Backend B;
};
inline constexpr BackendTag kCEK{Backend::CEK};
inline constexpr BackendTag kVM{Backend::VM};
inline constexpr BackendTag kVMReg{Backend::VMRegister};
inline constexpr BackendTag kVMAot{Backend::VMAot};
inline constexpr BackendTag kDirect{Backend::Direct};

/// Environment-representation selectors composable with `&` (CEK backend):
/// kLexicalEnv (the default) runs resolvable programs on flat frames;
/// kNamedEnv forces the named-chain machine. Differential tests pin both
/// representations against each other.
struct EnvRepTag {
  bool Lexical;
};
inline constexpr EnvRepTag kLexicalEnv{true};
inline constexpr EnvRepTag kNamedEnv{false};

/// A resource-limit fragment composable with `&`. Fragments merge
/// field-wise (nonzero wins), so `deadlineMs(50) & maxDepth(10'000)` arms
/// both limits.
struct LimitsTag {
  ResourceLimits L;
};
inline LimitsTag maxSteps(uint64_t N) {
  LimitsTag T;
  T.L.MaxSteps = N;
  return T;
}
inline LimitsTag deadlineMs(uint64_t Ms) {
  LimitsTag T;
  T.L.DeadlineMs = Ms;
  return T;
}
inline LimitsTag maxArenaBytes(uint64_t Bytes) {
  LimitsTag T;
  T.L.MaxArenaBytes = Bytes;
  return T;
}
inline LimitsTag maxDepth(uint64_t Depth) {
  LimitsTag T;
  T.L.MaxDepth = Depth;
  return T;
}
/// \p Flag must outlive the run (see ResourceLimits::CancelFlag).
inline LimitsTag cancelOn(std::atomic<bool> &Flag) {
  LimitsTag T;
  T.L.CancelFlag = &Flag;
  return T;
}

/// Resume selector composable with `&`: the run continues from \p CK
/// instead of starting fresh (CEK and VM backends only). The checkpoint
/// must outlive the evaluate() call.
struct ResumeTag {
  const Checkpoint *CK;
};
inline ResumeTag resumeFrom(const Checkpoint &CK) { return ResumeTag{&CK}; }

/// A checkpoint-capture fragment composable with `&`. Fragments merge
/// field-wise like limits do, so
/// `checkpointInto(sink) & checkpointEveryNSteps(1 << 16)` arms both the
/// stop-boundary checkpoint and the periodic schedule.
struct CheckpointTag {
  std::function<void(const Checkpoint &)> Sink;
  bool OnStop = false;
  uint64_t EveryNSteps = 0;
};
/// Deliver checkpoints to \p Sink; also arms the final checkpoint emitted
/// when the governor stops the run (fuel, deadline, memory, cancellation).
inline CheckpointTag
checkpointInto(std::function<void(const Checkpoint &)> Sink) {
  CheckpointTag T;
  T.Sink = std::move(Sink);
  T.OnStop = true;
  return T;
}
/// Emit a periodic checkpoint every \p N steps (needs a sink to go to).
inline CheckpointTag checkpointEveryNSteps(uint64_t N) {
  CheckpointTag T;
  T.EveryNSteps = N;
  return T;
}

/// Journal selector composable with `&`: every probe event is appended to
/// \p J (crash-safe, flushed per record) before the monitors see it. The
/// journal must outlive the run.
struct JournalTag {
  Journal *J;
};
inline JournalTag journalInto(Journal &J) { return JournalTag{&J}; }

/// An event-tap fragment composable with `&`: every probe event is handed
/// to \p Sink as (step, canonical journal text) before the monitors see
/// it. `monsem serve` streams these to clients; see RunOptions::EventSink.
struct EventsTag {
  std::function<void(uint64_t, const std::string &)> Sink;
};
inline EventsTag
eventsInto(std::function<void(uint64_t, const std::string &)> Sink) {
  return EventsTag{std::move(Sink)};
}

/// A monitor fault policy composable with `&` (run-wide default; per-
/// monitor overrides still come from Cascade::use(M, Policy)).
struct FaultPolicyTag {
  FaultPolicy P;
  unsigned RetryBudget;
};
inline FaultPolicyTag onMonitorFault(FaultPolicy P,
                                     unsigned RetryBudget = 3) {
  return FaultPolicyTag{P, RetryBudget};
}

/// A durability policy composable with `&`: what the run does when a
/// durable sink (journal append, checkpoint save) fails. See
/// support/Durability.h. `evaluate(profiler & journalInto(J) &
/// onDurabilityFailure(OnDurabilityFailure::Abort), p)`.
struct DurabilityPolicyTag {
  OnDurabilityFailure P;
  unsigned RetryBudget;
};
inline DurabilityPolicyTag onDurabilityFailure(OnDurabilityFailure P,
                                               unsigned RetryBudget = 3) {
  return DurabilityPolicyTag{P, RetryBudget};
}

/// A failpoint plan composable with `&`: installed (process-globally) by
/// the driver before the run starts. Spec syntax in support/FailPoint.h.
struct FailPointsTag {
  std::string Spec;
};
inline FailPointsTag failpointsSpec(std::string Spec) {
  return FailPointsTag{std::move(Spec)};
}

/// The argument of the paper's `evaluate (profile & debug & strict) prog`,
/// extended: a cascade plus everything else a run is configured with — the
/// strategy, the resource budget, the monitor fault policy, and the
/// backend. Built up by `&` from monitors and the tags above; every
/// ingredient is optional and later occurrences win.
struct EvalMode {
  Cascade C;
  Strategy Strat = Strategy::Strict;
  ResourceLimits Limits;
  Backend B = Backend::CEK;
  bool Lexical = true;
  FaultPolicy MonitorFaultPolicy = FaultPolicy::Quarantine;
  unsigned MonitorRetryBudget = 3;
  const Checkpoint *ResumeFrom = nullptr;
  std::function<void(const Checkpoint &)> CheckpointSink;
  bool CheckpointOnStop = false;
  uint64_t CheckpointEveryNSteps = 0;
  std::function<void(uint64_t, const std::string &)> EventSink;
  Journal *RunJournal = nullptr;
  OnDurabilityFailure DurabilityPolicy = OnDurabilityFailure::RetryThenDegrade;
  unsigned DurabilityRetryBudget = 3;
  std::string FailPointSpec;
  /// Embedder-owned durability tracker (optional; the CLI installs one so
  /// the file sink it builds can report into it). Must outlive the run.
  DurabilityTracker *Durability = nullptr;
  /// Cache directory for vm-aot shared objects; "" selects the per-user
  /// default under TMPDIR (see compile/AotEmit.h).
  std::string AotCacheDir;

  EvalMode() = default;
  // Implicit conversions so any single ingredient is already a mode and
  // `&` chains can start from anything: evaluate(kVM, p),
  // evaluate(profiler & deadlineMs(50), p), ...
  EvalMode(const Monitor &M) { C.use(M); }
  EvalMode(Cascade C) : C(std::move(C)) {}
  EvalMode(StrategyTag T) : Strat(T.S) {}
  EvalMode(BackendTag T) : B(T.B) {}
  EvalMode(EnvRepTag T) : Lexical(T.Lexical) {}
  EvalMode(LimitsTag T) : Limits(T.L) {}
  EvalMode(FaultPolicyTag T)
      : MonitorFaultPolicy(T.P), MonitorRetryBudget(T.RetryBudget) {}
  EvalMode(ResumeTag T) : ResumeFrom(T.CK) {}
  EvalMode(CheckpointTag T)
      : CheckpointSink(std::move(T.Sink)), CheckpointOnStop(T.OnStop),
        CheckpointEveryNSteps(T.EveryNSteps) {}
  EvalMode(JournalTag T) : RunJournal(T.J) {}
  EvalMode(EventsTag T) : EventSink(std::move(T.Sink)) {}
  EvalMode(DurabilityPolicyTag T)
      : DurabilityPolicy(T.P), DurabilityRetryBudget(T.RetryBudget) {}
  EvalMode(FailPointsTag T) : FailPointSpec(std::move(T.Spec)) {}

  /// The one place an EvalMode becomes a RunOptions. The CLI and the
  /// embedded API both funnel through here, so flags and `&` chains cannot
  /// skew.
  RunOptions runOptions() const {
    RunOptions O;
    O.Strat = Strat;
    O.Limits = Limits;
    O.Lexical = Lexical;
    O.MonitorFaultPolicy = MonitorFaultPolicy;
    O.MonitorRetryBudget = MonitorRetryBudget;
    O.ResumeFrom = ResumeFrom;
    O.CheckpointSink = CheckpointSink;
    O.CheckpointOnStop = CheckpointOnStop;
    O.CheckpointEveryNSteps = CheckpointEveryNSteps;
    O.EventSink = EventSink;
    O.RunJournal = RunJournal;
    O.DurabilityPolicy = DurabilityPolicy;
    O.DurabilityRetryBudget = DurabilityRetryBudget;
    O.FailPointSpec = FailPointSpec;
    O.Durability = Durability;
    O.AotCacheDir = AotCacheDir;
    return O;
  }
};

namespace detail {
/// Field-wise merge: nonzero/non-null fields of \p From win.
inline void mergeLimits(ResourceLimits &Into, const ResourceLimits &From) {
  if (From.MaxSteps)
    Into.MaxSteps = From.MaxSteps;
  if (From.DeadlineMs)
    Into.DeadlineMs = From.DeadlineMs;
  if (From.MaxArenaBytes)
    Into.MaxArenaBytes = From.MaxArenaBytes;
  if (From.MaxDepth)
    Into.MaxDepth = From.MaxDepth;
  if (From.CheckInterval)
    Into.CheckInterval = From.CheckInterval;
  if (From.CancelFlag)
    Into.CancelFlag = From.CancelFlag;
  if (From.PreemptFlag)
    Into.PreemptFlag = From.PreemptFlag;
}
} // namespace detail

// `&` composition. The left operand may be anything EvalMode implicitly
// converts from, so chains can start with a monitor, a strategy, a limit,
// a fault policy, or a backend.
inline EvalMode operator&(EvalMode M, const Monitor &B) {
  M.C.use(B);
  return M;
}
inline EvalMode operator&(EvalMode M, StrategyTag T) {
  M.Strat = T.S;
  return M;
}
inline EvalMode operator&(EvalMode M, BackendTag T) {
  M.B = T.B;
  return M;
}
inline EvalMode operator&(EvalMode M, EnvRepTag T) {
  M.Lexical = T.Lexical;
  return M;
}
inline EvalMode operator&(EvalMode M, LimitsTag T) {
  detail::mergeLimits(M.Limits, T.L);
  return M;
}
inline EvalMode operator&(EvalMode M, FaultPolicyTag T) {
  M.MonitorFaultPolicy = T.P;
  M.MonitorRetryBudget = T.RetryBudget;
  return M;
}
inline EvalMode operator&(EvalMode M, ResumeTag T) {
  M.ResumeFrom = T.CK;
  return M;
}
inline EvalMode operator&(EvalMode M, CheckpointTag T) {
  if (T.Sink)
    M.CheckpointSink = std::move(T.Sink);
  M.CheckpointOnStop = M.CheckpointOnStop || T.OnStop;
  if (T.EveryNSteps)
    M.CheckpointEveryNSteps = T.EveryNSteps;
  return M;
}
inline EvalMode operator&(EvalMode M, JournalTag T) {
  M.RunJournal = T.J;
  return M;
}
inline EvalMode operator&(EvalMode M, EventsTag T) {
  M.EventSink = std::move(T.Sink);
  return M;
}
inline EvalMode operator&(EvalMode M, DurabilityPolicyTag T) {
  M.DurabilityPolicy = T.P;
  M.DurabilityRetryBudget = T.RetryBudget;
  return M;
}
inline EvalMode operator&(EvalMode M, FailPointsTag T) {
  M.FailPointSpec = std::move(T.Spec);
  return M;
}

/// Standard semantics: no monitoring, annotations skipped.
RunResult evaluate(const Expr *Program, RunOptions Opts = {});

/// The Section 9.2 spelling: the unified entry. Assembles RunOptions via
/// EvalMode::runOptions() and routes to the selected backend — the CEK
/// machine (MachineT::run), the bytecode compiler + VM (runCompiled), or
/// the direct CPS interpreter (runDirect). The VM and Direct backends are
/// strict-only; selecting them with a lazy strategy yields an error result
/// without running.
RunResult evaluate(const EvalMode &Mode, const Expr *Program);

/// Renders final monitor states like the paper does, one per line:
///   profiler: [fac -> 4, mul -> 3]
std::string describeStates(const Cascade &C, const RunResult &R);

} // namespace monsem

#endif // MONSEM_INTERP_EVAL_H
