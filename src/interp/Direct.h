//===- interp/Direct.h - Definitional CPS interpreter -----------*- C++ -*-===//
///
/// \file
/// A direct transliteration of the paper's semantics into C++ closures.
/// This is the *reference* evaluator: it exists to realize the paper's
/// derivation technique literally and to cross-check the production CEK
/// machine, not to run big programs (CPS in C++ consumes C stack, so a
/// call budget bounds execution).
///
/// The valuation type is the paper's
///
///   T_lambda = Exp -> Env -> Kont -> Ans      (Fig. 2)
///
/// and valuation *functionals* G : T -> T are first-class values here, so
/// the fixpoint construction `V = fix G`, the monitoring derivation
/// `Gbar` (Fig. 3), and cascading (Fig. 5: derive, treat as standard,
/// derive again) are all expressed exactly as in the paper:
///
///   Valuation Std  = fixpoint(standardFunctional(Ctx));
///   Valuation Mon  = fixpoint(deriveMonitoring(standardFunctional(Ctx),
///                                              monitor, state, Ctx));
///   // Cascading: wrap the already-derived functional again.
///   Valuation Mon2 = fixpoint(deriveMonitoring(deriveMonitoring(G, m1,
///                                              s1, Ctx), m2, s2, Ctx));
///
/// Monitor states are updated in place; because evaluation is sequential
/// and monitoring functions are state transformers, this is observationally
/// the paper's state-threading MS -> (Ans x MS).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_INTERP_DIRECT_H
#define MONSEM_INTERP_DIRECT_H

#include "interp/Machine.h"
#include "monitor/Cascade.h"

#include <functional>
#include <memory>

namespace monsem {

/// Shared mutable context of one direct-interpretation run: the arena, the
/// final answer slot, failure state, and the call budget.
struct DirectContext {
  Arena A;
  /// Aborts runaway CPS recursion. Every valuation call nests on the C
  /// stack until the final continuation fires, so the budget bounds the
  /// peak C-stack depth as well as the work — it doubles as this
  /// evaluator's depth bound (ResourceLimits::MaxDepth has no separate
  /// meaning here).
  uint64_t CallBudget = 15000;
  /// Optional resource governor (deadline, arena cap, cancellation);
  /// checked from charge(), one compare per valuation call.
  Governor *Gov = nullptr;

  // Run state.
  uint64_t Calls = 0;
  bool Failed = false;
  bool Exhausted = false;
  Outcome Stop = Outcome::Ok; ///< Governance stop reason, if any.
  std::string Error;
  Value Result;
  bool HasResult = false;

  /// True once any stop condition fired; valuations and continuations
  /// unwind without further work.
  bool stopped() const { return Failed || Exhausted || Stop != Outcome::Ok; }

  void fail(std::string Msg) {
    if (stopped())
      return;
    Failed = true;
    Error = std::move(Msg);
  }

  /// Charges one valuation call; false when out of budget or stopped by
  /// the governor.
  bool charge() {
    ++Calls;
    if (CallBudget && Calls > CallBudget) {
      Exhausted = true;
      return false;
    }
    if (Gov && Calls >= Gov->nextPause()) {
      Outcome O = Gov->pause(Calls, A.bytesAllocated(), /*Depth=*/0);
      if (O != Outcome::Ok) {
        Stop = O;
        return false;
      }
    }
    return true;
  }
};

/// Kont = V -> Ans. Answers are delivered by side effect into the context,
/// so the C++ return type is void; every continuation call is a tail call
/// in the semantics (Reynolds' "serious" functions).
using DirectKont = std::function<void(Value)>;

/// The valuation-function type T_lambda.
using DirectValuation =
    std::function<void(const Expr *, EnvNode *, const DirectKont &)>;

/// A valuation functional G : T_lambda -> T_lambda.
using DirectFunctional =
    std::function<DirectValuation(const DirectValuation &)>;

/// fix : (T -> T) -> T, by knot-tying.
DirectValuation fixpoint(DirectFunctional G);

/// G_lambda of Fig. 2 (strict evaluation).
DirectFunctional standardFunctional(DirectContext &Ctx);

/// Gbar of Fig. 3 / Definition 4.2, derived from any functional \p G:
/// handles annotations accepted by \p M (updPre / kappa_post with updPost)
/// and inherits \p G's behavior everywhere else. Wrapping an already
/// derived functional yields the doubly-derived semantics of Fig. 5.
///
/// When \p Iso is given, updPre/updPost run inside its fault boundary as
/// monitor \p MonitorIdx (see FaultIsolation.h); without it a throwing
/// hook propagates.
DirectFunctional deriveMonitoring(DirectFunctional G, const Monitor &M,
                                  MonitorState &State,
                                  const MonitorContext &MCtx,
                                  DirectContext &Ctx,
                                  FaultIsolator *Iso = nullptr,
                                  unsigned MonitorIdx = 0);

/// Everything runDirect needs beyond the program and cascade.
struct DirectOptions {
  uint64_t CallBudget = 15000;
  ResourceLimits Limits;
  FaultPolicy MonitorFaultPolicy = FaultPolicy::Quarantine;
  unsigned MonitorRetryBudget = 3;
};

/// Convenience: derives a full cascade (innermost first) and runs
/// \p Program to a RunResult comparable with the CEK machine's.
RunResult runDirect(const Expr *Program, const Cascade *C = nullptr,
                    uint64_t CallBudget = 15000);

/// Same, with a full resource budget and monitor fault policy.
RunResult runDirect(const Expr *Program, const Cascade *C,
                    const DirectOptions &Opts);

} // namespace monsem

#endif // MONSEM_INTERP_DIRECT_H
