//===- support/Durability.cpp ---------------------------------------------===//

#include "support/Durability.h"

using namespace monsem;

const char *monsem::durabilityPolicyName(OnDurabilityFailure P) {
  switch (P) {
  case OnDurabilityFailure::Abort:
    return "abort";
  case OnDurabilityFailure::DegradeToBestEffort:
    return "degrade";
  case OnDurabilityFailure::RetryThenDegrade:
    return "retry";
  }
  return "?";
}

bool monsem::parseDurabilityPolicy(std::string_view Name,
                                   OnDurabilityFailure &Out) {
  if (Name == "abort")
    Out = OnDurabilityFailure::Abort;
  else if (Name == "degrade")
    Out = OnDurabilityFailure::DegradeToBestEffort;
  else if (Name == "retry")
    Out = OnDurabilityFailure::RetryThenDegrade;
  else
    return false;
  return true;
}
