//===- support/Diagnostics.h - Error reporting ------------------*- C++ -*-===//
///
/// \file
/// A collecting diagnostic sink. The library reports recoverable errors
/// (parse errors, run-time type errors) as Diagnostic records instead of
/// throwing; callers inspect hasErrors() and the message list.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_DIAGNOSTICS_H
#define MONSEM_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace monsem {

struct Diagnostic {
  enum class Level { Error, Warning, Note };
  Level Lvl;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Accumulates diagnostics during a pass (lexing, parsing, evaluation).
class DiagnosticSink {
public:
  void error(SourceLoc Loc, std::string Message) {
    Diags.push_back({Diagnostic::Level::Error, Loc, std::move(Message)});
    ++NumErrors;
  }
  void warning(SourceLoc Loc, std::string Message) {
    Diags.push_back({Diagnostic::Level::Warning, Loc, std::move(Message)});
  }
  void note(SourceLoc Loc, std::string Message) {
    Diags.push_back({Diagnostic::Level::Note, Loc, std::move(Message)});
  }

  bool hasErrors() const { return NumErrors != 0; }
  const std::vector<Diagnostic> &diagnostics() const { return Diags; }

  /// All messages joined with newlines; convenient for test failure output.
  std::string str() const;

  void clear() {
    Diags.clear();
    NumErrors = 0;
  }

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace monsem

#endif // MONSEM_SUPPORT_DIAGNOSTICS_H
