//===- support/Arena.cpp --------------------------------------------------===//
// Arena is header-only; this file anchors the library target.

#include "support/Arena.h"
