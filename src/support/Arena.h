//===- support/Arena.h - Bump allocation ------------------------*- C++ -*-===//
///
/// \file
/// A chunked bump allocator. Every run-time object of an execution
/// (environment frames, closures, continuation frames, cons cells, thunks)
/// is allocated from the arena owned by that execution and released
/// wholesale when the execution ends. Objects allocated here must be
/// trivially destructible, which the allocator enforces statically.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_ARENA_H
#define MONSEM_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace monsem {

/// Thrown when an allocation would push the arena past its configured byte
/// cap (Arena::setByteLimit). A typed, recoverable signal: evaluators catch
/// it at the run loop and report Outcome::MemoryExceeded instead of letting
/// a raw std::bad_alloc (or the OOM killer) take the process down
/// mid-step.
class ArenaLimitExceeded : public std::bad_alloc {
public:
  const char *what() const noexcept override {
    return "arena byte cap exceeded";
  }
};

/// Chunked bump allocator; see file comment.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align. Throws
  /// ArenaLimitExceeded when a byte cap is set and satisfying the request
  /// would map a chunk past it; the cap is checked before the chunk is
  /// mapped, so an oversized request fails without first committing
  /// memory.
  void *allocate(size_t Size, size_t Align) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
    // Subtraction form: Aligned + Size cannot be compared directly because
    // a huge Size (e.g. a runaway string concat) would wrap the sum.
    if (Aligned > reinterpret_cast<uintptr_t>(End) ||
        Size > reinterpret_cast<uintptr_t>(End) - Aligned) {
      grow(Size, Align);
      return allocate(Size, Align);
    }
    Cur = reinterpret_cast<char *>(Aligned + Size);
    BytesAllocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a T in the arena. T must be trivially destructible because
  /// destructors are never run.
  template <typename T, typename... Args> T *create(Args &&...As) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return new (allocate(sizeof(T), alignof(T))) T{std::forward<Args>(As)...};
  }

  /// Total payload bytes handed out (diagnostic counter).
  size_t bytesAllocated() const { return BytesAllocated; }

  /// Caps mapped chunk bytes at \p Limit (0 = uncapped). Exceeding the
  /// cap makes allocate() throw ArenaLimitExceeded — a soft failure the
  /// evaluators translate into Outcome::MemoryExceeded. Enforcement is at
  /// chunk granularity so the bump fast path stays branch-free; the
  /// resource governor additionally polls bytesAllocated() at its
  /// checkpoints for a payload-exact stop.
  void setByteLimit(size_t Limit) { ByteLimit = Limit; }
  size_t byteLimit() const { return ByteLimit; }

  /// Invalidates every pointer previously returned and rewinds the arena.
  /// The first chunk is retained and reused, so a reset-and-refill cycle
  /// (e.g. a benchmark running one program per iteration) stops paying one
  /// mmap/major page-fault storm per cycle.
  void reset() {
    if (!Chunks.empty()) {
      Chunks.resize(1);
      Cur = Chunks.front().Data.get();
      End = Cur + Chunks.front().Size;
      MappedBytes = Chunks.front().Size;
    } else {
      Cur = End = nullptr;
      MappedBytes = 0;
    }
    BytesAllocated = 0;
  }

private:
  void grow(size_t NeedSize, size_t NeedAlign) {
    // Overflow-checked sizing: the request must fit with worst-case
    // alignment padding, and chunk doubling must saturate rather than
    // wrap. A request too large to pad safely is unsatisfiable.
    if (NeedSize > SIZE_MAX - NeedAlign)
      throw std::bad_alloc();
    size_t AtLeast = NeedSize + NeedAlign;
    size_t Size = 16 * 1024;
    if (!Chunks.empty()) {
      size_t Prev = Chunks.back().Size;
      Size = Prev > SIZE_MAX / 2 ? SIZE_MAX : Prev * 2;
    }
    if (Size < AtLeast)
      Size = AtLeast;
    // The byte cap is enforced here rather than per allocation: growth is
    // rare, so the cost is off the bump fast path, and nothing has been
    // mapped yet when the throw happens (subtraction form avoids wrap).
    if (ByteLimit &&
        (MappedBytes >= ByteLimit || Size > ByteLimit - MappedBytes))
      throw ArenaLimitExceeded();
    Chunks.push_back(Chunk{std::make_unique<char[]>(Size), Size});
    MappedBytes += Size;
    Cur = Chunks.back().Data.get();
    End = Cur + Size;
  }

  struct Chunk {
    std::unique_ptr<char[]> Data;
    size_t Size;
  };

  std::vector<Chunk> Chunks;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t BytesAllocated = 0;
  size_t MappedBytes = 0;
  size_t ByteLimit = 0;
};

} // namespace monsem

#endif // MONSEM_SUPPORT_ARENA_H
