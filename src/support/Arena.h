//===- support/Arena.h - Bump allocation ------------------------*- C++ -*-===//
///
/// \file
/// A chunked bump allocator. Every run-time object of an execution
/// (environment frames, closures, continuation frames, cons cells, thunks)
/// is allocated from the arena owned by that execution and released
/// wholesale when the execution ends. Objects allocated here must be
/// trivially destructible, which the allocator enforces statically.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_ARENA_H
#define MONSEM_SUPPORT_ARENA_H

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace monsem {

/// Chunked bump allocator; see file comment.
class Arena {
public:
  Arena() = default;
  Arena(const Arena &) = delete;
  Arena &operator=(const Arena &) = delete;

  /// Allocates \p Size bytes aligned to \p Align.
  void *allocate(size_t Size, size_t Align) {
    uintptr_t P = reinterpret_cast<uintptr_t>(Cur);
    uintptr_t Aligned = (P + Align - 1) & ~(uintptr_t)(Align - 1);
    if (Aligned + Size > reinterpret_cast<uintptr_t>(End)) {
      grow(Size + Align);
      return allocate(Size, Align);
    }
    Cur = reinterpret_cast<char *>(Aligned + Size);
    BytesAllocated += Size;
    return reinterpret_cast<void *>(Aligned);
  }

  /// Constructs a T in the arena. T must be trivially destructible because
  /// destructors are never run.
  template <typename T, typename... Args> T *create(Args &&...As) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena objects are never destroyed");
    return new (allocate(sizeof(T), alignof(T))) T{std::forward<Args>(As)...};
  }

  /// Total payload bytes handed out (diagnostic counter).
  size_t bytesAllocated() const { return BytesAllocated; }

  /// Invalidates every pointer previously returned and rewinds the arena.
  /// The first chunk is retained and reused, so a reset-and-refill cycle
  /// (e.g. a benchmark running one program per iteration) stops paying one
  /// mmap/major page-fault storm per cycle.
  void reset() {
    if (!Chunks.empty()) {
      Chunks.resize(1);
      Cur = Chunks.front().Data.get();
      End = Cur + Chunks.front().Size;
    } else {
      Cur = End = nullptr;
    }
    BytesAllocated = 0;
  }

private:
  void grow(size_t AtLeast) {
    size_t Size = Chunks.empty() ? 16 * 1024 : Chunks.back().Size * 2;
    if (Size < AtLeast)
      Size = AtLeast;
    Chunks.push_back(Chunk{std::make_unique<char[]>(Size), Size});
    Cur = Chunks.back().Data.get();
    End = Cur + Size;
  }

  struct Chunk {
    std::unique_ptr<char[]> Data;
    size_t Size;
  };

  std::vector<Chunk> Chunks;
  char *Cur = nullptr;
  char *End = nullptr;
  size_t BytesAllocated = 0;
};

} // namespace monsem

#endif // MONSEM_SUPPORT_ARENA_H
