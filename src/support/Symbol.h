//===- support/Symbol.h - Interned identifiers ------------------*- C++ -*-===//
//
// Part of the monitoring-semantics reproduction of Kishon, Hudak & Consel,
// "Monitoring Semantics" (PLDI 1991).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interned identifiers (the paper's syntactic domain Ide). A Symbol is a
/// cheap, copyable handle; two Symbols compare equal iff their spellings are
/// identical. Interning makes environment lookup and annotation matching a
/// pointer comparison.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_SYMBOL_H
#define MONSEM_SUPPORT_SYMBOL_H

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>

namespace monsem {

/// An interned identifier. The empty Symbol (default constructed) is a valid
/// sentinel that compares unequal to every interned spelling.
///
/// The intern table is process-wide and not synchronized: like the rest of
/// the library, interning is single-threaded by design (an execution is a
/// sequential, deterministic process — the setting the paper's monitoring
/// semantics covers).
class Symbol {
public:
  Symbol() = default;

  /// Interns \p Spelling and returns its unique handle. Calling intern twice
  /// with the same spelling yields the same handle.
  static Symbol intern(std::string_view Spelling);

  /// The spelling this symbol was interned with; empty for the sentinel.
  std::string_view str() const;

  bool empty() const { return Id == 0; }
  explicit operator bool() const { return Id != 0; }

  /// Stable, dense id (0 is the sentinel). Useful as a vector index.
  unsigned id() const { return Id; }

  friend bool operator==(Symbol A, Symbol B) { return A.Id == B.Id; }
  friend bool operator!=(Symbol A, Symbol B) { return A.Id != B.Id; }
  friend bool operator<(Symbol A, Symbol B) { return A.Id < B.Id; }

private:
  explicit Symbol(unsigned Id) : Id(Id) {}
  unsigned Id = 0;
};

} // namespace monsem

namespace std {
template <> struct hash<monsem::Symbol> {
  size_t operator()(monsem::Symbol S) const noexcept { return S.id(); }
};
} // namespace std

#endif // MONSEM_SUPPORT_SYMBOL_H
