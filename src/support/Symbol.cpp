//===- support/Symbol.cpp - Interned identifiers --------------------------===//

#include "support/Symbol.h"

#include <cassert>
#include <deque>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

using namespace monsem;

namespace {

/// Process-wide intern table. Spellings are stored in a deque so handles
/// remain stable as the table grows. Index 0 is reserved for the sentinel.
///
/// Thread safety: server workers parse programs (and render probe events)
/// concurrently, so the table takes a reader-writer lock — shared for the
/// str() hot path and the already-interned fast path, exclusive only when
/// a new spelling is actually inserted. Handles and the string storage are
/// stable once published, so a Symbol obtained under one lock is usable
/// forever without one.
struct InternTable {
  std::shared_mutex M;
  std::deque<std::string> Spellings;
  std::unordered_map<std::string_view, unsigned> Index;

  InternTable() { Spellings.emplace_back(); }

  unsigned intern(std::string_view Spelling) {
    {
      std::shared_lock<std::shared_mutex> Lock(M);
      auto It = Index.find(Spelling);
      if (It != Index.end())
        return It->second;
    }
    std::unique_lock<std::shared_mutex> Lock(M);
    // Re-check: another thread may have interned it between the locks.
    auto It = Index.find(Spelling);
    if (It != Index.end())
      return It->second;
    Spellings.emplace_back(Spelling);
    unsigned Id = static_cast<unsigned>(Spellings.size() - 1);
    Index.emplace(std::string_view(Spellings.back()), Id);
    return Id;
  }

  std::string_view str(unsigned Id) {
    std::shared_lock<std::shared_mutex> Lock(M);
    return Spellings[Id];
  }
};

InternTable &table() {
  static InternTable Table;
  return Table;
}

} // namespace

Symbol Symbol::intern(std::string_view Spelling) {
  assert(!Spelling.empty() && "cannot intern an empty spelling");
  return Symbol(table().intern(Spelling));
}

std::string_view Symbol::str() const {
  return table().str(Id);
}
