//===- support/Symbol.cpp - Interned identifiers --------------------------===//

#include "support/Symbol.h"

#include <cassert>
#include <deque>
#include <unordered_map>

using namespace monsem;

namespace {

/// Process-wide intern table. Spellings are stored in a deque so handles
/// remain stable as the table grows. Index 0 is reserved for the sentinel.
struct InternTable {
  std::deque<std::string> Spellings;
  std::unordered_map<std::string_view, unsigned> Index;

  InternTable() { Spellings.emplace_back(); }

  unsigned intern(std::string_view Spelling) {
    auto It = Index.find(Spelling);
    if (It != Index.end())
      return It->second;
    Spellings.emplace_back(Spelling);
    unsigned Id = static_cast<unsigned>(Spellings.size() - 1);
    Index.emplace(std::string_view(Spellings.back()), Id);
    return Id;
  }
};

InternTable &table() {
  static InternTable Table;
  return Table;
}

} // namespace

Symbol Symbol::intern(std::string_view Spelling) {
  assert(!Spelling.empty() && "cannot intern an empty spelling");
  return Symbol(table().intern(Spelling));
}

std::string_view Symbol::str() const {
  return table().Spellings[Id];
}
