//===- support/FailPoint.cpp ----------------------------------------------===//

#include "support/FailPoint.h"

#include <atomic>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include <fcntl.h>
#include <libgen.h>
#include <unistd.h>

using namespace monsem;

const char *monsem::failPointSiteName(FailSite S) {
  switch (S) {
  case FailSite::CheckpointOpen:
    return "checkpoint.open";
  case FailSite::CheckpointWrite:
    return "checkpoint.write";
  case FailSite::CheckpointFlush:
    return "checkpoint.flush";
  case FailSite::CheckpointSync:
    return "checkpoint.sync";
  case FailSite::CheckpointClose:
    return "checkpoint.close";
  case FailSite::CheckpointRename:
    return "checkpoint.rename";
  case FailSite::CheckpointDirSync:
    return "checkpoint.dirsync";
  case FailSite::JournalOpen:
    return "journal.open";
  case FailSite::JournalTruncate:
    return "journal.truncate";
  case FailSite::JournalWrite:
    return "journal.write";
  case FailSite::JournalFlush:
    return "journal.flush";
  case FailSite::JournalSync:
    return "journal.sync";
  case FailSite::SocketAccept:
    return "socket.accept";
  case FailSite::SocketRead:
    return "socket.read";
  case FailSite::SocketWrite:
    return "socket.write";
  }
  return "?";
}

namespace {

/// One parsed rule plus its live trigger state.
struct FailRule {
  FailAction Action;     ///< What to do when the selectors say "now".
  uint64_t FromHit = 1;  ///< '@N': first hit (1-based) that triggers.
  uint64_t Times = UINT64_MAX; ///< '*K': triggers remaining before disarm.
  uint64_t Hits = 0;     ///< Queries seen at this site.
};

struct Registry {
  std::mutex M;
  bool HaveRule[kNumFailSites] = {};
  FailRule Rules[kNumFailSites];
  uint64_t Hits[kNumFailSites] = {};
  bool EnvChecked = false;
};

Registry &registry() {
  static Registry R;
  return R;
}

/// Cheap armed flag outside the mutex: the I/O wrappers check this before
/// taking the lock, so runs with no plan pay one relaxed load per call.
std::atomic<bool> GArmed{false};

int errnoByName(std::string_view Name) {
  struct Entry {
    const char *Name;
    int Value;
  };
  static constexpr Entry Table[] = {
      {"ENOSPC", ENOSPC}, {"EIO", EIO},       {"EDQUOT", EDQUOT},
      {"EINTR", EINTR},   {"EAGAIN", EAGAIN}, {"EACCES", EACCES},
      {"EROFS", EROFS},   {"EMFILE", EMFILE}, {"ENOENT", ENOENT},
      {"EFBIG", EFBIG},
  };
  for (const Entry &E : Table)
    if (Name == E.Name)
      return E.Value;
  return -1;
}

bool parseSite(std::string_view Name, FailSite &Out) {
  for (unsigned I = 0; I < kNumFailSites; ++I) {
    if (Name == failPointSiteName(static_cast<FailSite>(I))) {
      Out = static_cast<FailSite>(I);
      return true;
    }
  }
  return false;
}

bool parseU64(std::string_view S, uint64_t &Out) {
  if (S.empty())
    return false;
  uint64_t V = 0;
  for (char C : S) {
    if (C < '0' || C > '9')
      return false;
    V = V * 10 + static_cast<uint64_t>(C - '0');
  }
  Out = V;
  return true;
}

/// Parses one `site=action[selector...]` rule into \p Site / \p Rule.
bool parseRule(std::string_view Rule, FailSite &Site, FailRule &Out,
               std::string &Err) {
  size_t Eq = Rule.find('=');
  if (Eq == std::string_view::npos) {
    Err = "failpoint rule '" + std::string(Rule) + "' has no '='";
    return false;
  }
  if (!parseSite(Rule.substr(0, Eq), Site)) {
    Err = "unknown failpoint site '" + std::string(Rule.substr(0, Eq)) + "'";
    return false;
  }
  std::string_view Rest = Rule.substr(Eq + 1);

  // Split trailing selectors ('*K', '@N') off the action.
  Out = FailRule();
  while (!Rest.empty()) {
    size_t Sel = Rest.find_last_of("*@");
    // A '(' after the candidate selector means it is inside the action's
    // parentheses — no selectors remain.
    if (Sel == std::string_view::npos ||
        Rest.find('(', Sel) != std::string_view::npos)
      break;
    uint64_t N = 0;
    if (!parseU64(Rest.substr(Sel + 1), N) || N == 0) {
      Err = "bad failpoint selector in '" + std::string(Rule) + "'";
      return false;
    }
    if (Rest[Sel] == '*')
      Out.Times = N;
    else
      Out.FromHit = N;
    Rest = Rest.substr(0, Sel);
  }

  // The action proper: name, optional parenthesized argument.
  std::string_view Name = Rest;
  std::string_view Arg;
  size_t Paren = Rest.find('(');
  if (Paren != std::string_view::npos) {
    if (Rest.back() != ')') {
      Err = "unbalanced '(' in failpoint rule '" + std::string(Rule) + "'";
      return false;
    }
    Name = Rest.substr(0, Paren);
    Arg = Rest.substr(Paren + 1, Rest.size() - Paren - 2);
  }

  FailAction &A = Out.Action;
  A.Errno = EIO;
  if (Name == "err") {
    A.K = FailAction::Kind::Error;
    if (!Arg.empty()) {
      int E = errnoByName(Arg);
      if (E < 0) {
        Err = "unknown errno name '" + std::string(Arg) + "'";
        return false;
      }
      A.Errno = E;
    }
  } else if (Name == "short") {
    A.K = FailAction::Kind::Short;
    if (!parseU64(Arg, A.Bytes)) {
      Err = "short(...) needs a byte count in '" + std::string(Rule) + "'";
      return false;
    }
  } else if (Name == "crash") {
    A.K = FailAction::Kind::Crash;
    if (!Arg.empty() && !parseU64(Arg, A.Bytes)) {
      Err = "crash(...) takes a byte count in '" + std::string(Rule) + "'";
      return false;
    }
  } else {
    Err = "unknown failpoint action '" + std::string(Name) + "'";
    return false;
  }
  return true;
}

bool installLocked(Registry &R, std::string_view Spec, std::string &Err) {
  bool HaveRule[kNumFailSites] = {};
  FailRule Rules[kNumFailSites];
  std::string_view Rest = Spec;
  while (!Rest.empty()) {
    size_t Semi = Rest.find(';');
    std::string_view One =
        Semi == std::string_view::npos ? Rest : Rest.substr(0, Semi);
    Rest = Semi == std::string_view::npos ? std::string_view()
                                          : Rest.substr(Semi + 1);
    if (One.empty())
      continue;
    FailSite Site;
    FailRule Rule;
    if (!parseRule(One, Site, Rule, Err))
      return false;
    HaveRule[static_cast<unsigned>(Site)] = true;
    Rules[static_cast<unsigned>(Site)] = Rule;
  }
  bool Any = false;
  for (unsigned I = 0; I < kNumFailSites; ++I) {
    R.HaveRule[I] = HaveRule[I];
    R.Rules[I] = Rules[I];
    R.Hits[I] = 0;
    Any = Any || HaveRule[I];
  }
  GArmed.store(Any, std::memory_order_relaxed);
  return true;
}

} // namespace

bool monsem::installFailPoints(std::string_view Spec, std::string &Err) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  R.EnvChecked = true; // An explicit install overrides the env.
  return installLocked(R, Spec, Err);
}

void monsem::clearFailPoints() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  std::string Err;
  installLocked(R, {}, Err);
  R.EnvChecked = true;
}

bool monsem::failPointsArmed() {
  // The env plan is only discovered on the first hit; report armed until
  // we know either way so wrappers do take the slow path once.
  Registry &R = registry();
  if (GArmed.load(std::memory_order_relaxed))
    return true;
  std::lock_guard<std::mutex> Lock(R.M);
  return !R.EnvChecked;
}

FailAction monsem::failPointHit(FailSite S) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  if (!R.EnvChecked) {
    R.EnvChecked = true;
    if (const char *Env = std::getenv("MONSEM_FAILPOINTS")) {
      std::string Err;
      // The env path has no channel to report to; a malformed spec is
      // dropped (the CLI flag is the validating entry point).
      (void)installLocked(R, Env, Err);
    }
  }
  unsigned I = static_cast<unsigned>(S);
  ++R.Hits[I];
  if (!R.HaveRule[I])
    return FailAction();
  FailRule &Rule = R.Rules[I];
  ++Rule.Hits;
  if (Rule.Hits < Rule.FromHit || Rule.Times == 0)
    return FailAction();
  --Rule.Times;
  return Rule.Action;
}

uint64_t monsem::failPointHitCount(FailSite S) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Lock(R.M);
  return R.Hits[static_cast<unsigned>(S)];
}

//===----------------------------------------------------------------------===//
// FileSys wrappers
//===----------------------------------------------------------------------===//

namespace {

/// Shared slow path: consult the registry; for Crash actions on non-write
/// sites, exit immediately (nothing to persist first).
FailAction consult(FailSite S) {
  if (!failPointsArmed())
    return FailAction();
  return failPointHit(S);
}

[[noreturn]] void crashNow() {
  // Simulated power loss: no flushing of other streams, no atexit — the
  // kernel keeps what was already written, exactly like a real crash.
  _exit(kFailPointCrashExit);
}

} // namespace

std::FILE *monsem::FileSys::openFile(FailSite S, const char *Path,
                                     const char *Mode) {
  FailAction A = consult(S);
  if (A.K == FailAction::Kind::Crash)
    crashNow();
  if (A.armed()) {
    errno = A.Errno;
    return nullptr;
  }
  return std::fopen(Path, Mode);
}

size_t monsem::FileSys::writeFile(FailSite S, std::FILE *F, const void *Data,
                                  size_t Len) {
  FailAction A = consult(S);
  switch (A.K) {
  case FailAction::Kind::None:
    return std::fwrite(Data, 1, Len, F);
  case FailAction::Kind::Error:
    errno = A.Errno;
    return 0;
  case FailAction::Kind::Short: {
    size_t N = A.Bytes < Len ? static_cast<size_t>(A.Bytes) : Len;
    size_t W = std::fwrite(Data, 1, N, F);
    std::fflush(F); // Make the torn prefix real before reporting failure.
    errno = A.Errno;
    return W < Len ? W : Len - 1; // Always a short count.
  }
  case FailAction::Kind::Crash: {
    size_t N = A.Bytes < Len ? static_cast<size_t>(A.Bytes) : Len;
    if (N) {
      std::fwrite(Data, 1, N, F);
      std::fflush(F);
    }
    crashNow();
  }
  }
  return 0;
}

int monsem::FileSys::flushFile(FailSite S, std::FILE *F) {
  FailAction A = consult(S);
  if (A.K == FailAction::Kind::Crash) {
    std::fflush(F);
    crashNow();
  }
  if (A.armed()) {
    errno = A.Errno;
    return EOF;
  }
  return std::fflush(F);
}

int monsem::FileSys::syncFile(FailSite S, std::FILE *F) {
  FailAction A = consult(S);
  if (A.K == FailAction::Kind::Crash)
    crashNow();
  if (A.armed()) {
    errno = A.Errno;
    return -1;
  }
  if (std::fflush(F) != 0)
    return -1;
  return ::fsync(::fileno(F));
}

int monsem::FileSys::closeFile(FailSite S, std::FILE *F) {
  FailAction A = consult(S);
  if (A.K == FailAction::Kind::Crash) {
    std::fflush(F);
    crashNow();
  }
  if (A.armed()) {
    std::fclose(F); // Do not leak the stream on an injected close error.
    errno = A.Errno;
    return EOF;
  }
  return std::fclose(F);
}

int monsem::FileSys::renameFile(FailSite S, const char *From, const char *To) {
  FailAction A = consult(S);
  if (A.K == FailAction::Kind::Crash)
    crashNow();
  if (A.armed()) {
    errno = A.Errno;
    return -1;
  }
  return std::rename(From, To);
}

int monsem::FileSys::syncParentDir(FailSite S, const char *Path) {
  FailAction A = consult(S);
  if (A.K == FailAction::Kind::Crash)
    crashNow();
  if (A.armed()) {
    errno = A.Errno;
    return -1;
  }
  // dirname may modify its argument; work on a copy.
  std::vector<char> Buf(Path, Path + std::strlen(Path) + 1);
  const char *Dir = ::dirname(Buf.data());
  int Fd = ::open(Dir, O_RDONLY | O_DIRECTORY);
  if (Fd < 0)
    return -1;
  int Rc = ::fsync(Fd);
  ::close(Fd);
  return Rc;
}

int monsem::FileSys::truncatePath(FailSite S, const char *Path, uint64_t Len) {
  FailAction A = consult(S);
  if (A.K == FailAction::Kind::Crash)
    crashNow();
  if (A.armed()) {
    errno = A.Errno;
    return -1;
  }
  return ::truncate(Path, static_cast<off_t>(Len));
}
