//===- support/FailPoint.h - Deterministic fault injection ------*- C++ -*-===//
///
/// \file
/// A failpoint harness for the durable-I/O paths (support/Checkpoint.cpp,
/// support/Journal.cpp). Every host-I/O effect those files perform — open,
/// write, flush, fsync, close, rename, truncate — is routed through the
/// `FileSys` wrappers below, and each wrapper consults a process-global
/// `FailPlan` before touching the OS. A plan deterministically injects:
///
///   * errors   — the call fails with a chosen errno (ENOSPC, EIO, ...),
///   * short writes — fwrite persists only the first N bytes, then fails,
///   * crashes  — the process `_exit`s mid-operation (optionally after
///                persisting N bytes of the record being written), which is
///                how the crash-point enumeration tests simulate power loss
///                at every byte boundary of a durable write.
///
/// Plans are parsed from a spec string (the `MONSEM_FAILPOINTS` environment
/// variable, the CLI's `--failpoints=`, RunOptions::FailPointSpec, or the
/// `failpointsSpec(...)` EvalMode combinator — all funnel into
/// installFailPoints()):
///
///   spec    := rule (';' rule)*
///   rule    := site '=' action selector*
///   site    := checkpoint.{open,write,flush,sync,close,rename,dirsync}
///            | journal.{open,truncate,write,flush,sync}
///            | socket.{accept,read,write}
///   action  := 'err' ['(' errno-name ')']     fail the call (default EIO)
///            | 'short' '(' N ')'              persist N bytes, then fail
///            | 'crash' ['(' N ')']            _exit(kFailPointCrashExit)
///                                             [after persisting N bytes]
///   selector:= '*' K       trigger on the first K hits, then disarm
///            | '@' N       skip the first N-1 hits, trigger from the Nth
///
/// e.g.  MONSEM_FAILPOINTS='journal.write=short(5)@3;checkpoint.sync=err(ENOSPC)*1'
///
/// Determinism: hit counters are per-site and per-process, so the same
/// spec against the same run injects at exactly the same operation every
/// time. The registry is process-global (like every failpoint library's)
/// because the I/O layer is reached from static entry points; tests use
/// ScopedFailPoints to install and restore around each case.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_FAILPOINT_H
#define MONSEM_SUPPORT_FAILPOINT_H

#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

namespace monsem {

/// Exit status of a `crash` failpoint — the supervisor (and the subprocess
/// tests) distinguish an injected crash from a normal error exit by it.
/// 86 collides with no Outcome exit code (0..7) and no 128+signal status.
inline constexpr int kFailPointCrashExit = 86;

/// The enumerated injection sites. Keep failPointSiteName() and the parser
/// in FailPoint.cpp in sync when adding one.
enum class FailSite : uint8_t {
  CheckpointOpen,    ///< fopen of the checkpoint temp file.
  CheckpointWrite,   ///< fwrite of the framed checkpoint bytes.
  CheckpointFlush,   ///< fflush before fsync.
  CheckpointSync,    ///< fsync of the temp file before rename.
  CheckpointClose,   ///< fclose of the temp file.
  CheckpointRename,  ///< rename(temp, final).
  CheckpointDirSync, ///< fsync of the parent directory after rename.
  JournalOpen,       ///< fopen of the journal for appending.
  JournalTruncate,   ///< torn-tail truncation during Journal::open.
  JournalWrite,      ///< fwrite of one framed record.
  JournalFlush,      ///< fflush after a record append.
  JournalSync,       ///< fsync of the journal (batched; see Journal).
  SocketAccept,      ///< accept() of a client connection (serve).
  SocketRead,        ///< read() from a client socket (serve transport).
  SocketWrite,       ///< write() to a client socket (serve transport).
};

inline constexpr unsigned kNumFailSites =
    static_cast<unsigned>(FailSite::SocketWrite) + 1;

const char *failPointSiteName(FailSite S);

/// What an armed failpoint tells the I/O wrapper to do.
struct FailAction {
  enum class Kind : uint8_t {
    None,  ///< Not armed (or selector not yet satisfied): do the real I/O.
    Error, ///< Fail the call with `Errno`.
    Short, ///< Persist only `Bytes` bytes, then fail with `Errno`.
    Crash, ///< Persist `Bytes` bytes (write sites), then _exit.
  };
  Kind K = Kind::None;
  int Errno = 0;       ///< EIO unless the spec names another.
  uint64_t Bytes = 0;  ///< Short/Crash: bytes to persist first.

  bool armed() const { return K != Kind::None; }
};

/// Installs \p Spec as the process-global failpoint plan, replacing any
/// previous plan and resetting all hit counters. An empty spec clears the
/// plan. Returns false and sets \p Err on a malformed spec.
bool installFailPoints(std::string_view Spec, std::string &Err);

/// Clears the plan: every site reverts to real I/O.
void clearFailPoints();

/// True when any failpoint is armed (cheap; the I/O wrappers check this
/// first so unconfigured builds pay one relaxed load per operation).
bool failPointsArmed();

/// Consults (and advances the hit counter of) site \p S. Called by the
/// FileSys wrappers; tests may call it directly to assert selector
/// arithmetic. On the very first query of a process with no installed
/// plan, the MONSEM_FAILPOINTS environment variable is parsed and
/// installed (malformed env specs are ignored — the env path has nowhere
/// to report to; the CLI flag validates loudly).
FailAction failPointHit(FailSite S);

/// Total times \p S has been queried since the plan was installed
/// (diagnostics and tests).
uint64_t failPointHitCount(FailSite S);

/// RAII plan installation for tests: installs on construction (aborting
/// the test on a malformed spec is the caller's job — check ok()),
/// restores a clean registry on destruction.
class ScopedFailPoints {
public:
  explicit ScopedFailPoints(std::string_view Spec) {
    Ok = installFailPoints(Spec, Err);
  }
  ~ScopedFailPoints() { clearFailPoints(); }
  ScopedFailPoints(const ScopedFailPoints &) = delete;
  ScopedFailPoints &operator=(const ScopedFailPoints &) = delete;

  bool ok() const { return Ok; }
  const std::string &error() const { return Err; }

private:
  bool Ok = false;
  std::string Err;
};

//===----------------------------------------------------------------------===//
// FileSys: failpoint-aware wrappers over the host I/O calls
//===----------------------------------------------------------------------===//

/// The durable-I/O surface of the support layer. Every wrapper consults
/// the failpoint registry first and performs the real operation only when
/// the site is unarmed. Failed wrappers set errno like the real calls do.
namespace FileSys {

/// fopen with an injection site. Returns nullptr on (real or injected)
/// failure.
std::FILE *openFile(FailSite S, const char *Path, const char *Mode);

/// fwrite of \p Len bytes. Returns the number of bytes accepted; short
/// counts signal failure exactly as fwrite does. A `short(N)` injection
/// writes min(N, Len) real bytes (so torn-write tests produce genuine
/// partial records on disk); a `crash(N)` injection writes min(N, Len)
/// bytes, flushes them, and _exits.
size_t writeFile(FailSite S, std::FILE *F, const void *Data, size_t Len);

/// fflush. Returns 0 on success, EOF on failure.
int flushFile(FailSite S, std::FILE *F);

/// fsync(fileno(F)). Returns 0 on success, -1 on failure.
int syncFile(FailSite S, std::FILE *F);

/// fclose. Returns 0 on success, EOF on failure. The stream is closed
/// (and its descriptor released) even when an injected error is reported,
/// so callers never leak a FILE on the failure path.
int closeFile(FailSite S, std::FILE *F);

/// rename(From, To). Returns 0 on success, -1 on failure.
int renameFile(FailSite S, const char *From, const char *To);

/// fsync of the directory containing \p Path — the second half of the
/// atomic-rename discipline: the rename itself is durable only once the
/// parent directory's entry array is. Returns 0 on success, -1 on failure.
int syncParentDir(FailSite S, const char *Path);

/// truncate(Path, Len). Returns 0 on success, -1 on failure.
int truncatePath(FailSite S, const char *Path, uint64_t Len);

} // namespace FileSys

} // namespace monsem

#endif // MONSEM_SUPPORT_FAILPOINT_H
