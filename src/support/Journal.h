//===- support/Journal.h - Crash-safe run journal ---------------*- C++ -*-===//
///
/// \file
/// An append-only on-disk journal of probe events and periodic checkpoints,
/// so a run that crashes (or is killed) leaves behind (a) a FlightRecorder-
/// style tail of the last monitor events and (b) the last durable
/// checkpoint to resume from.
///
/// Record framing (little-endian):
///
///   [u8 type] [u32 len] [len payload bytes] [u64 FNV-1a of type+len+payload]
///
/// Types: 1 = event (u64 step + string text), 2 = checkpoint (the framed
/// Checkpoint bytes, themselves internally checksummed).
///
/// Invariants (see DESIGN.md §5d "Durability and failure model"):
///  - Records are only ever appended; nothing in a valid prefix is mutated.
///  - Each append is written and flushed before appendEvent/appendCheckpoint
///    returns true, so the journal is durable (to the OS) up to the last
///    completed record; checkpoints are additionally fsync'd (batched per
///    JournalOptions), so they survive power loss, not just process death.
///  - open() runs torn-tail recovery first: a trailing partial record left
///    by a crash is truncated away before the first append, so post-crash
///    records land on a record boundary and stay recoverable.
///  - A failed append restores the boundary invariant (the partial frame is
///    chopped back to the last durable offset) before returning false, so a
///    retried or later append never hides behind torn bytes.
///  - Transient errors (EINTR/EAGAIN) are retried with exponential backoff
///    up to MaxRetries before a failure is reported; the first failure
///    message is sticky (error()).
///  - Recovery scans from the start and stops at the first record whose
///    frame or checksum is invalid; the torn tail is reported, not trusted.
///    Everything before it is usable: a crash can lose at most the record
///    being written.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_JOURNAL_H
#define MONSEM_SUPPORT_JOURNAL_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace monsem {

/// One monitor-probe event as recorded in (and recovered from) a journal.
struct JournalEvent {
  uint64_t Step = 0;
  std::string Text;
};

/// Durability knobs for a journal handle. Every record is always fwritten
/// and fflushed; fsync is batched so the per-event cost stays amortized
/// (the checkpoint-overhead CI gate holds with the defaults).
struct JournalOptions {
  /// fsync after every Nth event record; 0 = never fsync for plain events
  /// (they are flushed to the OS, which is the pre-hardening behavior).
  unsigned SyncEveryEvents = 0;
  /// fsync after every checkpoint record (rare, so always affordable).
  bool SyncOnCheckpoint = true;
  /// Bounded retry for transient append errors (EINTR/EAGAIN).
  unsigned MaxRetries = 4;
  /// Backoff before retry attempt k is RetryBackoffUs << k microseconds.
  unsigned RetryBackoffUs = 100;
};

/// Append handle on a journal file. Create with Journal::open; every append
/// is framed, checksummed and flushed individually.
class Journal {
public:
  /// Opens \p Path for appending (creating it if absent). Any torn trailing
  /// record from a previous crash is truncated away first. Returns nullptr
  /// and sets \p Err on I/O failure.
  static std::unique_ptr<Journal> open(const std::string &Path,
                                       std::string &Err,
                                       JournalOptions Opts = {});
  ~Journal();
  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  /// Append one record; false on failure (see error()). After a failed
  /// append the file still ends on a record boundary, so appending again
  /// is safe — unless the journal is poisoned (boundary restoration itself
  /// failed), in which case every further append refuses immediately.
  bool appendEvent(uint64_t Step, std::string_view Text);
  bool appendCheckpoint(const std::vector<uint8_t> &CheckpointBytes);

  /// True once any append has failed.
  bool failed() const { return !FirstError.empty(); }
  /// The first failure's message (sticky; empty while healthy).
  const std::string &error() const { return FirstError; }

  const std::string &path() const { return Path; }

private:
  Journal(std::FILE *F, std::string Path, JournalOptions Opts,
          uint64_t DurableBytes)
      : F(F), Path(std::move(Path)), Opts(Opts), DurableBytes(DurableBytes) {}
  bool appendRecord(uint8_t Type, const std::vector<uint8_t> &Payload,
                    bool IsCheckpoint);
  bool writeFrame(const std::vector<uint8_t> &Frame, int &Errno);
  bool restoreTail();
  void setError(std::string Msg) {
    if (FirstError.empty())
      FirstError = std::move(Msg);
  }

  std::FILE *F;
  std::string Path;
  JournalOptions Opts;
  uint64_t DurableBytes;       ///< Offset just past the last intact record.
  unsigned EventsSinceSync = 0;
  bool Poisoned = false;       ///< Boundary restoration failed; refuse I/O.
  std::string FirstError;
};

/// What recovery found in a journal file. `LastCheckpoint` holds the framed
/// bytes of the most recent durable checkpoint (feed to
/// Checkpoint::fromBytes); `Tail` holds the last `TailLimit` events *after*
/// discarding any torn trailing record.
struct JournalRecovery {
  bool Opened = false; ///< File existed and was readable.
  std::vector<JournalEvent> Tail;
  uint64_t TotalEvents = 0;
  std::vector<uint8_t> LastCheckpoint;
  uint64_t EventsSinceCheckpoint = 0;
  uint64_t TornBytes = 0; ///< Trailing bytes of an incomplete record.
};

JournalRecovery recoverJournal(const std::string &Path, size_t TailLimit = 16);

} // namespace monsem

#endif // MONSEM_SUPPORT_JOURNAL_H
