//===- support/Journal.h - Crash-safe run journal ---------------*- C++ -*-===//
///
/// \file
/// An append-only on-disk journal of probe events and periodic checkpoints,
/// so a run that crashes (or is killed) leaves behind (a) a FlightRecorder-
/// style tail of the last monitor events and (b) the last durable
/// checkpoint to resume from.
///
/// Record framing (little-endian):
///
///   [u8 type] [u32 len] [len payload bytes] [u64 FNV-1a of type+len+payload]
///
/// Types: 1 = event (u64 step + string text), 2 = checkpoint (the framed
/// Checkpoint bytes, themselves internally checksummed).
///
/// Invariants (see DESIGN.md "Run journal"):
///  - Records are only ever appended; nothing in a valid prefix is mutated.
///  - Each append is flushed before appendEvent/appendCheckpoint returns,
///    so the journal is durable up to the last completed record.
///  - Recovery scans from the start and stops at the first record whose
///    frame or checksum is invalid; the torn tail is reported, not trusted.
///    Everything before it is usable: a crash can lose at most the record
///    being written.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_JOURNAL_H
#define MONSEM_SUPPORT_JOURNAL_H

#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace monsem {

/// One monitor-probe event as recorded in (and recovered from) a journal.
struct JournalEvent {
  uint64_t Step = 0;
  std::string Text;
};

/// Append handle on a journal file. Create with Journal::open; every append
/// is framed, checksummed and flushed individually.
class Journal {
public:
  /// Opens \p Path for appending (creating it if absent). Returns nullptr
  /// and sets \p Err on I/O failure.
  static std::unique_ptr<Journal> open(const std::string &Path,
                                       std::string &Err);
  ~Journal();
  Journal(const Journal &) = delete;
  Journal &operator=(const Journal &) = delete;

  void appendEvent(uint64_t Step, std::string_view Text);
  void appendCheckpoint(const std::vector<uint8_t> &CheckpointBytes);
  const std::string &path() const { return Path; }

private:
  Journal(std::FILE *F, std::string Path) : F(F), Path(std::move(Path)) {}
  void appendRecord(uint8_t Type, const std::vector<uint8_t> &Payload);

  std::FILE *F;
  std::string Path;
};

/// What recovery found in a journal file. `LastCheckpoint` holds the framed
/// bytes of the most recent durable checkpoint (feed to
/// Checkpoint::fromBytes); `Tail` holds the last `TailLimit` events *after*
/// discarding any torn trailing record.
struct JournalRecovery {
  bool Opened = false; ///< File existed and was readable.
  std::vector<JournalEvent> Tail;
  uint64_t TotalEvents = 0;
  std::vector<uint8_t> LastCheckpoint;
  uint64_t EventsSinceCheckpoint = 0;
  uint64_t TornBytes = 0; ///< Trailing bytes of an incomplete record.
};

JournalRecovery recoverJournal(const std::string &Path, size_t TailLimit = 16);

} // namespace monsem

#endif // MONSEM_SUPPORT_JOURNAL_H
