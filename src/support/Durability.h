//===- support/Durability.h - Durable-I/O failure policy --------*- C++ -*-===//
///
/// \file
/// What a run does when its durability layer — the checkpoint sink or the
/// run journal — fails. The paper's monitors must not change the meaning of
/// the monitored program (Thm. 7.7); the same discipline applies one level
/// down: a full disk under the journal must not silently corrupt the run's
/// answer, and — unless the operator asked for it — must not kill a healthy
/// run either. `OnDurabilityFailure` names the three policies, and
/// `DurabilityTracker` is the per-run arbiter every durable sink reports
/// into:
///
///   Abort               the run stops with a structured error the moment
///                       a durable write fails (after the I/O layer's own
///                       bounded retry); "no checkpoint, no progress".
///   DegradeToBestEffort the failing sink is demoted immediately: the run
///                       continues, further writes to that sink are
///                       skipped, and the failure surfaces as a
///                       DurabilityFault in RunResult.
///   RetryThenDegrade    (default) the sink gets RetryBudget failures —
///                       each a fresh attempt at the next boundary — before
///                       demotion; transient errors heal, persistent ones
///                       degrade.
///
/// Faults are never swallowed: every failure is recorded and returned in
/// RunResult::DurabilityFaults, so "the run succeeded but its last
/// checkpoint didn't land" is visible to callers and the CLI.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_DURABILITY_H
#define MONSEM_SUPPORT_DURABILITY_H

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace monsem {

enum class OnDurabilityFailure : uint8_t {
  Abort,
  DegradeToBestEffort,
  RetryThenDegrade,
};

const char *durabilityPolicyName(OnDurabilityFailure P);

/// Parses "abort" / "degrade" / "retry"; returns false on anything else.
bool parseDurabilityPolicy(std::string_view Name, OnDurabilityFailure &Out);

/// One recorded durability failure: which sink, what the I/O layer said,
/// and when. `Demoted` marks the fault that tripped degradation.
struct DurabilityFault {
  std::string Site;    ///< "journal" or "checkpoint" (sink granularity).
  std::string Error;   ///< The I/O layer's message (errno text included).
  uint64_t Step = 0;   ///< Evaluator step count at failure time.
  bool Demoted = false;

  /// "durability fault at journal (step 12): short write ... [degraded]"
  std::string str() const {
    std::string S = "durability fault at " + Site + " (step " +
                    std::to_string(Step) + "): " + Error;
    if (Demoted)
      S += " [sink degraded to best-effort]";
    return S;
  }
};

/// Raised out of a durable sink when the policy is Abort; evaluators catch
/// it at the run loop (next to MonitorAbort) and report an error outcome.
class DurabilityAbort : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Per-run durability bookkeeping, shared by the journal hooks and the
/// checkpoint sink wrapper. Sinks call report() on failure; it records the
/// fault and answers "may this sink still be used?". Not thread-safe (one
/// run, one thread — like the machines themselves).
class DurabilityTracker {
public:
  DurabilityTracker() = default;
  DurabilityTracker(OnDurabilityFailure P, unsigned RetryBudget)
      : Policy(P), RetryBudget(RetryBudget) {}

  /// Records a failure of \p Site. Under Abort, throws DurabilityAbort
  /// (the fault is recorded first, so drivers can still surface it).
  /// Otherwise returns true when the sink has been demoted — the caller
  /// must stop writing to it.
  bool report(std::string Site, std::string Error, uint64_t Step) {
    Faults.push_back(DurabilityFault{Site, std::move(Error), Step, false});
    if (Policy == OnDurabilityFailure::Abort) {
      std::string Msg = "durable " + Site + " write failed: " +
                        Faults.back().Error;
      throw DurabilityAbort(Msg);
    }
    unsigned &Count = Site == "journal" ? JournalFailures
                                        : CheckpointFailures;
    ++Count;
    unsigned Budget =
        Policy == OnDurabilityFailure::RetryThenDegrade ? RetryBudget : 0;
    if (Count > Budget) {
      Faults.back().Demoted = true;
      (Site == "journal" ? JournalDegraded : CheckpointDegraded) = true;
    }
    return degraded(Site);
  }

  /// True once \p Site ("journal" / "checkpoint") has been demoted; sinks
  /// check this before attempting a write.
  bool degraded(std::string_view Site) const {
    return Site == "journal" ? JournalDegraded : CheckpointDegraded;
  }

  bool anyFault() const { return !Faults.empty(); }
  const std::vector<DurabilityFault> &faults() const { return Faults; }
  std::vector<DurabilityFault> takeFaults() { return std::move(Faults); }

private:
  OnDurabilityFailure Policy = OnDurabilityFailure::RetryThenDegrade;
  unsigned RetryBudget = 3;
  unsigned JournalFailures = 0;
  unsigned CheckpointFailures = 0;
  bool JournalDegraded = false;
  bool CheckpointDegraded = false;
  std::vector<DurabilityFault> Faults;
};

} // namespace monsem

#endif // MONSEM_SUPPORT_DURABILITY_H
