//===- support/Governor.cpp ------------------------------------------------===//

#include "support/Governor.h"

namespace monsem {

const char *outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Ok:
    return "ok";
  case Outcome::Error:
    return "error";
  case Outcome::FuelExhausted:
    return "fuel-exhausted";
  case Outcome::Deadline:
    return "deadline";
  case Outcome::MemoryExceeded:
    return "memory-exceeded";
  case Outcome::DepthExceeded:
    return "depth-exceeded";
  case Outcome::Cancelled:
    return "cancelled";
  }
  return "?";
}

} // namespace monsem
