//===- support/Governor.cpp ------------------------------------------------===//

#include "support/Governor.h"

namespace monsem {

const char *outcomeName(Outcome O) {
  switch (O) {
  case Outcome::Ok:
    return "ok";
  case Outcome::Error:
    return "error";
  case Outcome::FuelExhausted:
    return "fuel-exhausted";
  case Outcome::Deadline:
    return "deadline";
  case Outcome::MemoryExceeded:
    return "memory-exceeded";
  case Outcome::DepthExceeded:
    return "depth-exceeded";
  case Outcome::Cancelled:
    return "cancelled";
  }
  return "?";
}

int exitCodeFor(Outcome O) {
  switch (O) {
  case Outcome::Ok:
    return 0;
  case Outcome::Error:
    return 2;
  case Outcome::FuelExhausted:
    return 3;
  case Outcome::Deadline:
    return 4;
  case Outcome::MemoryExceeded:
    return 5;
  case Outcome::Cancelled:
    return 6;
  case Outcome::DepthExceeded:
    return 7;
  }
  return 2;
}

} // namespace monsem
