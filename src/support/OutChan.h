//===- support/OutChan.h - Output channels ----------------------*- C++ -*-===//
///
/// \file
/// The paper's Stream / OutChan algebra (Fig. 7): an abstract output channel
/// with addStream, plus the indentation helpers the fancy tracer uses. Two
/// implementations: an in-memory buffer (used by tests and as monitor state)
/// and a tee to a std::ostream (used by the examples for live output).
///
/// Monitors own their channels as part of their monitor state, which is how
/// a "printing" monitor stays a pure monitor-state transformer in the sense
/// of Def. 4.2.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_OUTCHAN_H
#define MONSEM_SUPPORT_OUTCHAN_H

#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

namespace monsem {

class Serializer;
class Deserializer;

/// An append-only output channel: the paper's `Stream` with `addStream` and
/// `initStream`. Lines are recorded individually so tests can make precise
/// assertions, and the whole contents can be rendered as one string.
class OutChan {
public:
  OutChan() = default;

  /// Appends one complete line (the paper's addStream of a string followed
  /// by a newline; every tracer message is line-structured).
  void addLine(std::string Line);

  /// Appends raw text to the current (last) line without terminating it.
  void addText(std::string_view Text);

  /// Terminates the current line.
  void endLine();

  /// Optional live sink: every completed line is also written there.
  void echoTo(std::ostream *OS) { Echo = OS; }

  const std::vector<std::string> &lines() const { return Lines; }
  size_t numLines() const { return Lines.size(); }
  bool empty() const { return Lines.empty() && Pending.empty(); }

  /// All lines joined with '\n' (plus any unterminated pending text).
  std::string str() const;

  void clear();

  /// Checkpoint support: saves the buffered lines and any unterminated
  /// pending text. The live echo sink is a handle, not data — it is left
  /// untouched by load(), so a resumed run keeps its own sink.
  void save(Serializer &S) const;
  void load(Deserializer &D);

private:
  std::vector<std::string> Lines;
  std::string Pending;
  std::ostream *Echo = nullptr;
};

} // namespace monsem

#endif // MONSEM_SUPPORT_OUTCHAN_H
