//===- support/OutChan.cpp ------------------------------------------------===//

#include "support/OutChan.h"

#include "support/Checkpoint.h"

#include <ostream>

using namespace monsem;

void OutChan::addLine(std::string Line) {
  if (!Pending.empty()) {
    Line = Pending + Line;
    Pending.clear();
  }
  if (Echo)
    *Echo << Line << '\n';
  Lines.push_back(std::move(Line));
}

void OutChan::addText(std::string_view Text) { Pending += Text; }

void OutChan::endLine() {
  std::string Line = std::move(Pending);
  Pending.clear();
  if (Echo)
    *Echo << Line << '\n';
  Lines.push_back(std::move(Line));
}

std::string OutChan::str() const {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  Out += Pending;
  return Out;
}

void OutChan::clear() {
  Lines.clear();
  Pending.clear();
}

void OutChan::save(Serializer &S) const {
  S.writeU32(static_cast<uint32_t>(Lines.size()));
  for (const std::string &L : Lines)
    S.writeString(L);
  S.writeString(Pending);
}

void OutChan::load(Deserializer &D) {
  Lines.clear();
  Pending.clear();
  uint32_t N = D.readU32();
  for (uint32_t I = 0; I < N && D.ok(); ++I)
    Lines.push_back(D.readString());
  Pending = D.readString();
}
