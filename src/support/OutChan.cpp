//===- support/OutChan.cpp ------------------------------------------------===//

#include "support/OutChan.h"

#include <ostream>

using namespace monsem;

void OutChan::addLine(std::string Line) {
  if (!Pending.empty()) {
    Line = Pending + Line;
    Pending.clear();
  }
  if (Echo)
    *Echo << Line << '\n';
  Lines.push_back(std::move(Line));
}

void OutChan::addText(std::string_view Text) { Pending += Text; }

void OutChan::endLine() {
  std::string Line = std::move(Pending);
  Pending.clear();
  if (Echo)
    *Echo << Line << '\n';
  Lines.push_back(std::move(Line));
}

std::string OutChan::str() const {
  std::string Out;
  for (const std::string &L : Lines) {
    Out += L;
    Out += '\n';
  }
  Out += Pending;
  return Out;
}

void OutChan::clear() {
  Lines.clear();
  Pending.clear();
}
