//===- support/Diagnostics.cpp --------------------------------------------===//

#include "support/Diagnostics.h"

using namespace monsem;

std::string Diagnostic::str() const {
  std::string Out;
  switch (Lvl) {
  case Level::Error:
    Out = "error";
    break;
  case Level::Warning:
    Out = "warning";
    break;
  case Level::Note:
    Out = "note";
    break;
  }
  if (Loc.isValid())
    Out += " at " + Loc.str();
  Out += ": " + Message;
  return Out;
}

std::string DiagnosticSink::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    if (!Out.empty())
      Out += '\n';
    Out += D.str();
  }
  return Out;
}
