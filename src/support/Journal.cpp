//===- support/Journal.cpp ------------------------------------------------===//

#include "support/Journal.h"

#include "support/Checkpoint.h"

using namespace monsem;

namespace {
constexpr uint8_t kEventRecord = 1;
constexpr uint8_t kCheckpointRecord = 2;
} // namespace

std::unique_ptr<Journal> Journal::open(const std::string &Path,
                                       std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "ab");
  if (!F) {
    Err = "cannot open journal file '" + Path + "' for appending";
    return nullptr;
  }
  return std::unique_ptr<Journal>(new Journal(F, Path));
}

Journal::~Journal() {
  if (F)
    std::fclose(F);
}

void Journal::appendRecord(uint8_t Type, const std::vector<uint8_t> &Payload) {
  // Frame = type + len + payload; checksum covers the whole frame so a
  // record with a corrupted header is rejected too.
  Serializer S;
  S.writeU8(Type);
  S.writeU32(static_cast<uint32_t>(Payload.size()));
  S.writeBytes(Payload.data(), Payload.size());
  S.writeU64(fnv1aHash(S.bytes().data(), S.bytes().size()));
  std::fwrite(S.bytes().data(), 1, S.bytes().size(), F);
  std::fflush(F);
}

void Journal::appendEvent(uint64_t Step, std::string_view Text) {
  Serializer P;
  P.writeU64(Step);
  P.writeString(Text);
  appendRecord(kEventRecord, P.bytes());
}

void Journal::appendCheckpoint(const std::vector<uint8_t> &CheckpointBytes) {
  appendRecord(kCheckpointRecord, CheckpointBytes);
}

JournalRecovery monsem::recoverJournal(const std::string &Path,
                                       size_t TailLimit) {
  JournalRecovery R;
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return R;
  std::vector<uint8_t> Bytes;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  R.Opened = true;

  size_t Pos = 0;
  while (Bytes.size() - Pos >= 1 + 4 + 8) {
    Deserializer D(Bytes.data() + Pos, Bytes.size() - Pos);
    uint8_t Type = D.readU8();
    uint32_t Len = D.readU32();
    if (D.remaining() < static_cast<size_t>(Len) + 8)
      break; // torn tail: record body never made it to disk
    size_t FrameLen = 1 + 4 + Len;
    uint64_t Want = fnv1aHash(Bytes.data() + Pos, FrameLen);
    Deserializer T(Bytes.data() + Pos + FrameLen, 8);
    if (T.readU64() != Want)
      break; // corrupt record: stop trusting the file here
    Deserializer P(Bytes.data() + Pos + 1 + 4, Len);
    if (Type == kEventRecord) {
      JournalEvent E;
      E.Step = P.readU64();
      E.Text = P.readString();
      if (P.ok()) {
        ++R.TotalEvents;
        ++R.EventsSinceCheckpoint;
        R.Tail.push_back(std::move(E));
        if (R.Tail.size() > TailLimit)
          R.Tail.erase(R.Tail.begin());
      }
    } else if (Type == kCheckpointRecord) {
      R.LastCheckpoint.assign(Bytes.data() + Pos + 1 + 4,
                              Bytes.data() + Pos + 1 + 4 + Len);
      R.EventsSinceCheckpoint = 0;
    }
    // Unknown record types are skipped (forward compatibility).
    Pos += FrameLen + 8;
  }
  R.TornBytes = Bytes.size() - Pos;
  return R;
}
