//===- support/Journal.cpp ------------------------------------------------===//

#include "support/Journal.h"

#include "support/Checkpoint.h"
#include "support/FailPoint.h"

#include <cerrno>
#include <cstring>
#include <sys/stat.h>
#include <unistd.h>

using namespace monsem;

namespace {
constexpr uint8_t kEventRecord = 1;
constexpr uint8_t kCheckpointRecord = 2;

std::string errnoText(int E) {
  return E ? std::string(std::strerror(E)) : std::string("I/O error");
}

/// Walks \p Bytes record by record, stopping at the first torn or corrupt
/// frame. Returns the byte length of the intact prefix; when \p R is
/// non-null, also fills in the recovery view (tail events, last
/// checkpoint).
size_t scanJournalBytes(const std::vector<uint8_t> &Bytes, JournalRecovery *R,
                        size_t TailLimit) {
  size_t Pos = 0;
  while (Bytes.size() - Pos >= 1 + 4 + 8) {
    Deserializer D(Bytes.data() + Pos, Bytes.size() - Pos);
    uint8_t Type = D.readU8();
    uint32_t Len = D.readU32();
    if (D.remaining() < static_cast<size_t>(Len) + 8)
      break; // torn tail: record body never made it to disk
    size_t FrameLen = 1 + 4 + Len;
    uint64_t Want = fnv1aHash(Bytes.data() + Pos, FrameLen);
    Deserializer T(Bytes.data() + Pos + FrameLen, 8);
    if (T.readU64() != Want)
      break; // corrupt record: stop trusting the file here
    if (R) {
      Deserializer P(Bytes.data() + Pos + 1 + 4, Len);
      if (Type == kEventRecord) {
        JournalEvent E;
        E.Step = P.readU64();
        E.Text = P.readString();
        if (P.ok()) {
          ++R->TotalEvents;
          ++R->EventsSinceCheckpoint;
          R->Tail.push_back(std::move(E));
          if (R->Tail.size() > TailLimit)
            R->Tail.erase(R->Tail.begin());
        }
      } else if (Type == kCheckpointRecord) {
        R->LastCheckpoint.assign(Bytes.data() + Pos + 1 + 4,
                                 Bytes.data() + Pos + 1 + 4 + Len);
        R->EventsSinceCheckpoint = 0;
      }
      // Unknown record types are skipped (forward compatibility).
    }
    Pos += FrameLen + 8;
  }
  return Pos;
}

bool readWholeFile(const std::string &Path, std::vector<uint8_t> &Bytes) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return true;
}
} // namespace

std::unique_ptr<Journal> Journal::open(const std::string &Path,
                                       std::string &Err, JournalOptions Opts) {
  // Torn-tail recovery before the first append: a crash mid-record leaves
  // a partial frame at the end of the file, and anything appended behind
  // it would be unreachable to recovery (the scan stops at the bad frame).
  // Chop the tail back to the last intact record boundary first.
  std::vector<uint8_t> Bytes;
  uint64_t ValidPrefix = 0;
  if (readWholeFile(Path, Bytes)) {
    ValidPrefix = scanJournalBytes(Bytes, nullptr, 0);
    if (ValidPrefix < Bytes.size()) {
      errno = 0;
      if (FileSys::truncatePath(FailSite::JournalTruncate, Path.c_str(),
                                ValidPrefix) != 0) {
        Err = "cannot truncate torn tail of journal '" + Path +
              "': " + errnoText(errno);
        return nullptr;
      }
    }
  }
  errno = 0;
  std::FILE *F = FileSys::openFile(FailSite::JournalOpen, Path.c_str(), "ab");
  if (!F) {
    Err = "cannot open journal file '" + Path +
          "' for appending: " + errnoText(errno);
    return nullptr;
  }
  return std::unique_ptr<Journal>(new Journal(F, Path, Opts, ValidPrefix));
}

Journal::~Journal() {
  if (F)
    std::fclose(F);
}

/// One attempt at persisting a framed record: write + flush, with the
/// stream error state checked. On failure \p Errno holds the saved errno
/// (the caller classifies transient vs. persistent).
bool Journal::writeFrame(const std::vector<uint8_t> &Frame, int &Errno) {
  errno = 0;
  size_t W = FileSys::writeFile(FailSite::JournalWrite, F, Frame.data(),
                                Frame.size());
  if (W != Frame.size()) {
    Errno = errno;
    return false;
  }
  errno = 0;
  if (FileSys::flushFile(FailSite::JournalFlush, F) != 0 || std::ferror(F)) {
    Errno = errno;
    return false;
  }
  return true;
}

/// Re-establishes the record-boundary invariant after a failed attempt:
/// any partially written frame is truncated back to the last durable
/// offset. False (and poisons the handle) if even that fails — the file
/// may then end mid-record, and further appends must not run.
bool Journal::restoreTail() {
  std::clearerr(F);
  std::fflush(F); // best effort: push buffered partial bytes so ftruncate
                  // sees (and removes) them
  std::clearerr(F);
  if (::ftruncate(fileno(F), static_cast<off_t>(DurableBytes)) != 0) {
    Poisoned = true;
    return false;
  }
  // Mode "ab" positions every write at the (new) end of file, so no seek
  // is needed; clear any lingering stream error so the next attempt is
  // judged on its own I/O.
  std::clearerr(F);
  return true;
}

bool Journal::appendRecord(uint8_t Type, const std::vector<uint8_t> &Payload,
                           bool IsCheckpoint) {
  if (Poisoned)
    return false;
  // Frame = type + len + payload; checksum covers the whole frame so a
  // record with a corrupted header is rejected too.
  Serializer S;
  S.writeU8(Type);
  S.writeU32(static_cast<uint32_t>(Payload.size()));
  S.writeBytes(Payload.data(), Payload.size());
  S.writeU64(fnv1aHash(S.bytes().data(), S.bytes().size()));
  const std::vector<uint8_t> &Frame = S.bytes();

  for (unsigned Attempt = 0;; ++Attempt) {
    int Errno = 0;
    if (writeFrame(Frame, Errno)) {
      DurableBytes += Frame.size();
      break;
    }
    std::string Msg = "journal append to '" + Path +
                      "' failed: " + errnoText(Errno);
    if (!restoreTail()) {
      setError(Msg + " (and tail restoration failed; journal poisoned)");
      return false;
    }
    bool Transient = Errno == EINTR || Errno == EAGAIN;
    if (!Transient || Attempt >= Opts.MaxRetries) {
      setError(std::move(Msg));
      return false;
    }
    ::usleep(static_cast<useconds_t>(Opts.RetryBackoffUs) << Attempt);
  }

  // Batched fsync: checkpoints always (when configured), events every Nth.
  bool WantSync = IsCheckpoint
                      ? Opts.SyncOnCheckpoint
                      : Opts.SyncEveryEvents != 0 &&
                            ++EventsSinceSync >= Opts.SyncEveryEvents;
  if (WantSync) {
    EventsSinceSync = 0;
    errno = 0;
    if (FileSys::syncFile(FailSite::JournalSync, F) != 0) {
      // The record reached the OS (flush succeeded) but its on-disk
      // durability is not guaranteed; report the append as failed so the
      // policy layer can decide. The boundary invariant is intact.
      setError("journal fsync of '" + Path + "' failed: " + errnoText(errno));
      return false;
    }
  }
  return true;
}

bool Journal::appendEvent(uint64_t Step, std::string_view Text) {
  Serializer P;
  P.writeU64(Step);
  P.writeString(Text);
  return appendRecord(kEventRecord, P.bytes(), /*IsCheckpoint=*/false);
}

bool Journal::appendCheckpoint(const std::vector<uint8_t> &CheckpointBytes) {
  return appendRecord(kCheckpointRecord, CheckpointBytes,
                      /*IsCheckpoint=*/true);
}

JournalRecovery monsem::recoverJournal(const std::string &Path,
                                       size_t TailLimit) {
  JournalRecovery R;
  std::vector<uint8_t> Bytes;
  if (!readWholeFile(Path, Bytes))
    return R;
  R.Opened = true;
  size_t Pos = scanJournalBytes(Bytes, &R, TailLimit);
  R.TornBytes = Bytes.size() - Pos;
  return R;
}
