//===- support/Governor.h - Resource limits for evaluators ------*- C++ -*-===//
///
/// \file
/// A uniform resource-governance layer shared by every evaluator (the CEK
/// machine in both environment representations, the direct CPS
/// interpreter, the bytecode VM, and the imperative machine).
///
/// The paper's soundness theorem (Thm. 7.7) speaks about runs that reach an
/// answer; a production monitoring runtime also has to deal with runs that
/// must be *stopped* — runaway recursion, unbounded allocation, a deadline,
/// or an operator pressing Ctrl-C. `ResourceLimits` declares the budget and
/// `Governor` enforces it with a hot-loop cost of a single integer compare
/// per machine step:
///
///   if (Steps >= Gov.nextPause()) { Outcome O = Gov.pause(...); ... }
///
/// `nextPause()` is the earliest step at which anything could need
/// checking: the fuel limit (exact, so `MaxSteps` semantics are bit-for-bit
/// what they were before the governor existed) or the next periodic
/// checkpoint (`CheckInterval` steps) for the clock, the cancellation flag,
/// the arena cap and the depth bound. With no limits set, nextPause() is
/// UINT64_MAX and the loop never leaves the fast path.
///
/// Determinism: step, depth and memory outcomes are functions of the step
/// schedule only, so repeated runs of the same program under the same
/// limits stop with the identical Outcome and step count. Deadline and
/// cancellation outcomes are inherently wall-clock dependent and exempt.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_GOVERNOR_H
#define MONSEM_SUPPORT_GOVERNOR_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace monsem {

/// How a run ended. `Ok` and `Error` are the paper's two answers (a value
/// or wrong); the rest are governance stops, so drivers can distinguish "the
/// program misbehaved" from "we cut the program off".
enum class Outcome : uint8_t {
  Ok,             ///< Final answer produced.
  Error,          ///< Program (or aborting monitor) error.
  FuelExhausted,  ///< Step limit hit.
  Deadline,       ///< Wall-clock deadline passed.
  MemoryExceeded, ///< Arena byte cap exceeded.
  DepthExceeded,  ///< Continuation/recursion depth bound exceeded.
  Cancelled,      ///< Cooperative cancellation flag was raised.
};

const char *outcomeName(Outcome O);

/// The process exit code (and JSONL `exit_code` field) for each outcome:
/// 0 ok, 2 error, 3 fuel-exhausted, 4 deadline, 5 memory-exceeded,
/// 6 cancelled, 7 depth-exceeded. Exit code 1 is reserved for driver I/O
/// failures (unreadable input, bad flags), so it is not in this table. The
/// CLI and `monsem serve` both map through here — the two surfaces cannot
/// skew.
int exitCodeFor(Outcome O);

/// True for the outcomes imposed by the governor rather than produced by
/// the program.
inline bool isGovernanceStop(Outcome O) {
  return O != Outcome::Ok && O != Outcome::Error;
}

/// Declarative resource budget for one run. All limits are off by default
/// (0 / null = unlimited).
struct ResourceLimits {
  /// Step limit; each machine transition (or valuation call, for the
  /// direct interpreter) costs one unit. Supersedes the legacy
  /// RunOptions::MaxSteps when nonzero.
  uint64_t MaxSteps = 0;
  /// Wall-clock deadline in milliseconds from the start of the run,
  /// checked every CheckInterval steps.
  uint64_t DeadlineMs = 0;
  /// Cap on cumulative arena bytes. Checked at checkpoints and enforced as
  /// a hard cap inside the Arena itself (Arena::setByteLimit), so a single
  /// step that allocates wildly cannot blow past it.
  uint64_t MaxArenaBytes = 0;
  /// Bound on the evaluator's dynamic depth (continuation chain on the CEK
  /// machine, call frames on the VM, recursion depth on the imperative
  /// expression evaluator). Checked at checkpoints, so runs may overshoot
  /// by at most CheckInterval frames before stopping.
  uint64_t MaxDepth = 0;
  /// Steps between deadline/cancellation/memory/depth checks; keeps the
  /// hot loop at one compare per step. 0 means the default (1024).
  uint32_t CheckInterval = 0;
  /// Cooperative cancellation: the run stops with Outcome::Cancelled at
  /// the next checkpoint after the flag becomes true. The pointee must
  /// outlive the run (monsem_cli wires this to SIGINT).
  std::atomic<bool> *CancelFlag = nullptr;
  /// Scheduler preemption: a second cancellation channel owned by an
  /// embedding scheduler (server/Session.h) rather than the user, so a
  /// time-slicing host can yank a run off a worker without clobbering the
  /// user's CancelFlag. Raises Outcome::Cancelled exactly like CancelFlag;
  /// the scheduler disambiguates park-vs-cancel from its own bookkeeping.
  /// The pointee must outlive the run.
  std::atomic<bool> *PreemptFlag = nullptr;

  bool any() const {
    return MaxSteps || DeadlineMs || MaxArenaBytes || MaxDepth || CancelFlag ||
           PreemptFlag;
  }
};

/// Per-run enforcement of a ResourceLimits. See file comment for the
/// protocol; evaluators own one Governor per run.
class Governor {
public:
  static constexpr uint32_t kDefaultCheckInterval = 1024;

  /// \p LegacyMaxSteps is the pre-governor fuel field (RunOptions::MaxSteps
  /// and friends); it applies when Limits.MaxSteps is unset so existing
  /// drivers keep their exact semantics.
  ///
  /// \p StepBase is nonzero only for resumed runs: the machine's step
  /// counter continues from the checkpoint (so cumulative step counts match
  /// an uninterrupted run), while the budget is fresh — fuel measures
  /// `Steps - StepBase`, and checkpoint boundaries are relative to the
  /// resume point.
  ///
  /// \p CheckpointEvery (0 = off) schedules a checkpoint boundary every N
  /// steps; the machine polls takeCheckpointDue() after an Ok pause. Folding
  /// the boundary into the pause schedule keeps the hot loop at one compare
  /// per step whether or not checkpointing is armed.
  explicit Governor(const ResourceLimits &Limits, uint64_t LegacyMaxSteps = 0,
                    uint64_t StepBase = 0, uint64_t CheckpointEvery = 0)
      : L(Limits), Base(StepBase), CkptEvery(CheckpointEvery) {
    MaxSteps = L.MaxSteps ? L.MaxSteps : LegacyMaxSteps;
    Interval = L.CheckInterval ? L.CheckInterval : kDefaultCheckInterval;
    Periodic = L.DeadlineMs || L.MaxArenaBytes || L.MaxDepth || L.CancelFlag ||
               L.PreemptFlag;
    if (L.DeadlineMs)
      Deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(L.DeadlineMs);
    if (CkptEvery)
      NextCkpt = Base + CkptEvery;
    NextPause = computeNextPause(Base);
  }

  /// The first step count at which pause() must run. UINT64_MAX when no
  /// limit is armed.
  uint64_t nextPause() const { return NextPause; }

  /// Arena byte cap to install on the run's arena (0 = none).
  uint64_t arenaByteCap() const { return L.MaxArenaBytes; }

  /// The slow path: run every limit check and reschedule. Returns
  /// Outcome::Ok to continue, or the stop reason. Deterministic checks
  /// (fuel, memory, depth) run before the wall-clock ones so that runs
  /// that can stop deterministically do.
  Outcome pause(uint64_t Steps, uint64_t ArenaBytes, uint64_t Depth) {
    if (MaxSteps && Steps - Base > MaxSteps)
      return Outcome::FuelExhausted;
    if (L.MaxArenaBytes && ArenaBytes > L.MaxArenaBytes)
      return Outcome::MemoryExceeded;
    if (L.MaxDepth && Depth > L.MaxDepth)
      return Outcome::DepthExceeded;
    if (L.CancelFlag && L.CancelFlag->load(std::memory_order_relaxed))
      return Outcome::Cancelled;
    if (L.PreemptFlag && L.PreemptFlag->load(std::memory_order_relaxed))
      return Outcome::Cancelled;
    if (L.DeadlineMs && std::chrono::steady_clock::now() >= Deadline)
      return Outcome::Deadline;
    if (CkptEvery && Steps >= NextCkpt) {
      CkptDue = true;
      while (NextCkpt <= Steps)
        NextCkpt += CkptEvery;
    }
    NextPause = computeNextPause(Steps);
    return Outcome::Ok;
  }

  /// True once per crossed checkpoint boundary; the machine emits a
  /// checkpoint when this fires. Self-clearing.
  bool takeCheckpointDue() {
    bool Due = CkptDue;
    CkptDue = false;
    return Due;
  }

private:
  uint64_t computeNextPause(uint64_t Steps) const {
    uint64_t N = UINT64_MAX;
    if (Periodic)
      N = Steps + Interval;
    // Fuel is exact: stop on the first step past the budget, exactly like
    // the pre-governor per-step check did.
    if (MaxSteps && MaxSteps != UINT64_MAX && Base + MaxSteps + 1 < N)
      N = Base + MaxSteps + 1;
    if (CkptEvery && NextCkpt < N)
      N = NextCkpt;
    return N;
  }

  ResourceLimits L;
  uint64_t MaxSteps = 0;
  uint64_t Base = 0;
  uint32_t Interval = kDefaultCheckInterval;
  bool Periodic = false;
  uint64_t NextPause = UINT64_MAX;
  uint64_t CkptEvery = 0;
  uint64_t NextCkpt = UINT64_MAX;
  bool CkptDue = false;
  std::chrono::steady_clock::time_point Deadline;
};

} // namespace monsem

#endif // MONSEM_SUPPORT_GOVERNOR_H
