//===- support/SourceLoc.h - Source locations -------------------*- C++ -*-===//
///
/// \file
/// 1-based line/column source positions attached to tokens, AST nodes, and
/// diagnostics. Line 0 denotes "no location" (synthesized nodes).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_SOURCELOC_H
#define MONSEM_SUPPORT_SOURCELOC_H

#include <string>

namespace monsem {

struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }

  std::string str() const {
    if (!isValid())
      return "<synthesized>";
    return std::to_string(Line) + ":" + std::to_string(Col);
  }

  friend bool operator==(SourceLoc A, SourceLoc B) {
    return A.Line == B.Line && A.Col == B.Col;
  }
};

} // namespace monsem

#endif // MONSEM_SUPPORT_SOURCELOC_H
