//===- support/StrUtils.h - Small string helpers ----------------*- C++ -*-===//
///
/// \file
/// String helpers shared by the printer, tracer, and tests.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_STRUTILS_H
#define MONSEM_SUPPORT_STRUTILS_H

#include <string>
#include <string_view>
#include <vector>

namespace monsem {

/// Splits \p Text on \p Sep; keeps empty fields.
std::vector<std::string> splitString(std::string_view Text, char Sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trimString(std::string_view Text);

/// True if \p Text begins with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Joins \p Parts with \p Sep.
std::string joinStrings(const std::vector<std::string> &Parts,
                        std::string_view Sep);

} // namespace monsem

#endif // MONSEM_SUPPORT_STRUTILS_H
