//===- support/StrUtils.cpp -----------------------------------------------===//

#include "support/StrUtils.h"

using namespace monsem;

std::vector<std::string> monsem::splitString(std::string_view Text, char Sep) {
  std::vector<std::string> Out;
  size_t Start = 0;
  while (true) {
    size_t Pos = Text.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Out.emplace_back(Text.substr(Start));
      return Out;
    }
    Out.emplace_back(Text.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}

std::string_view monsem::trimString(std::string_view Text) {
  size_t B = 0, E = Text.size();
  while (B < E && (Text[B] == ' ' || Text[B] == '\t' || Text[B] == '\n' ||
                   Text[B] == '\r'))
    ++B;
  while (E > B && (Text[E - 1] == ' ' || Text[E - 1] == '\t' ||
                   Text[E - 1] == '\n' || Text[E - 1] == '\r'))
    --E;
  return Text.substr(B, E - B);
}

bool monsem::startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.substr(0, Prefix.size()) == Prefix;
}

std::string monsem::joinStrings(const std::vector<std::string> &Parts,
                                std::string_view Sep) {
  std::string Out;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Out += Sep;
    Out += Parts[I];
  }
  return Out;
}
