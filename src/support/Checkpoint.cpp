//===- support/Checkpoint.cpp ---------------------------------------------===//

#include "support/Checkpoint.h"

#include "support/FailPoint.h"

#include <cerrno>
#include <cstdio>
#include <cstring>

using namespace monsem;

namespace {
std::string errnoText(int E) {
  return E ? std::string(std::strerror(E)) : std::string("I/O error");
}
} // namespace

uint64_t monsem::fnv1aHash(const void *Data, size_t Len, uint64_t Seed) {
  const uint8_t *P = static_cast<const uint8_t *>(Data);
  uint64_t H = Seed;
  for (size_t I = 0; I < Len; ++I) {
    H ^= P[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

namespace {

constexpr char kMagic[4] = {'M', 'S', 'C', 'K'};
// magic + version + 8 header bytes + fingerprint + saved steps.
constexpr size_t kHeaderSize = 4 + 4 + 8 + 8 + 8;
constexpr size_t kTrailerSize = 8;

void writeHeader(Serializer &S, const CheckpointHeader &H) {
  S.writeBytes(kMagic, 4);
  S.writeU32(Checkpoint::kVersion);
  S.writeU8(static_cast<uint8_t>(H.Backend));
  S.writeU8(H.Strategy);
  S.writeBool(H.Lexical);
  S.writeBool(H.Monitored);
  S.writeBool(H.BoxedValues);
  S.writeU8(0); // reserved
  S.writeU8(0);
  S.writeU8(0);
  S.writeU64(H.ProgramFingerprint);
  S.writeU64(H.SavedSteps);
}

bool parseHeader(const std::vector<uint8_t> &Bytes, CheckpointHeader &H,
                 std::string &Err) {
  if (Bytes.size() < kHeaderSize + kTrailerSize) {
    Err = "checkpoint too small to contain a header";
    return false;
  }
  if (std::memcmp(Bytes.data(), kMagic, 4) != 0) {
    Err = "not a checkpoint file (bad magic)";
    return false;
  }
  Deserializer D(Bytes.data() + 4, Bytes.size() - 4);
  uint32_t Version = D.readU32();
  if (Version != Checkpoint::kVersion) {
    Err = "unsupported checkpoint version " + std::to_string(Version) +
          " (this build reads version " + std::to_string(Checkpoint::kVersion) +
          ")";
    return false;
  }
  uint8_t Backend = D.readU8();
  if (Backend > static_cast<uint8_t>(CheckpointBackend::VM)) {
    Err = "unknown checkpoint backend tag";
    return false;
  }
  H.Backend = static_cast<CheckpointBackend>(Backend);
  H.Strategy = D.readU8();
  H.Lexical = D.readBool();
  H.Monitored = D.readBool();
  H.BoxedValues = D.readBool();
  D.readU8();
  D.readU8();
  D.readU8();
  H.ProgramFingerprint = D.readU64();
  H.SavedSteps = D.readU64();
  uint64_t Stored = fnv1aHash(Bytes.data(), Bytes.size() - kTrailerSize);
  Deserializer T(Bytes.data() + Bytes.size() - kTrailerSize, kTrailerSize);
  if (T.readU64() != Stored) {
    Err = "checkpoint checksum mismatch (file corrupt or torn write)";
    return false;
  }
  return true;
}

} // namespace

Serializer Checkpoint::begin(const CheckpointHeader &H) {
  Serializer S;
  writeHeader(S, H);
  return S;
}

Checkpoint Checkpoint::seal(Serializer &&S) {
  uint64_t Sum = fnv1aHash(S.bytes().data(), S.bytes().size());
  S.writeU64(Sum);
  Checkpoint Ck;
  Ck.Bytes = S.take();
  std::string Err;
  bool Ok = parseHeader(Ck.Bytes, Ck.Header, Err);
  (void)Ok; // begin() wrote the header; seal() cannot produce a bad frame.
  return Ck;
}

Checkpoint Checkpoint::fromBytes(std::vector<uint8_t> Bytes, std::string &Err) {
  Checkpoint Ck;
  CheckpointHeader H;
  if (!parseHeader(Bytes, H, Err))
    return Ck;
  Ck.Header = H;
  Ck.Bytes = std::move(Bytes);
  return Ck;
}

Checkpoint Checkpoint::loadFile(const std::string &Path, std::string &Err) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Err = "cannot open checkpoint file '" + Path + "'";
    return Checkpoint();
  }
  std::vector<uint8_t> Bytes;
  uint8_t Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Bytes.insert(Bytes.end(), Buf, Buf + N);
  std::fclose(F);
  return fromBytes(std::move(Bytes), Err);
}

bool Checkpoint::saveFile(const std::string &Path, std::string &Err,
                          bool Fsync) const {
  if (!valid()) {
    Err = "refusing to write an empty checkpoint";
    return false;
  }
  // Atomic-replace discipline: write Path+".tmp", flush, fsync the file,
  // close (checked — close can surface deferred write errors), rename into
  // place, fsync the parent directory so the rename itself is durable.
  // Every failure path removes the temp file; the destination is only ever
  // a complete, previously-fsync'd checkpoint or whatever was there before.
  std::string Tmp = Path + ".tmp";
  errno = 0;
  std::FILE *F = FileSys::openFile(FailSite::CheckpointOpen, Tmp.c_str(), "wb");
  if (!F) {
    Err = "cannot create checkpoint file '" + Tmp + "': " + errnoText(errno);
    return false;
  }
  errno = 0;
  bool Ok = FileSys::writeFile(FailSite::CheckpointWrite, F, Bytes.data(),
                               Bytes.size()) == Bytes.size();
  if (!Ok)
    Err = "short write to checkpoint file '" + Tmp + "': " + errnoText(errno);
  if (Ok) {
    errno = 0;
    Ok = FileSys::flushFile(FailSite::CheckpointFlush, F) == 0;
    if (!Ok)
      Err = "cannot flush checkpoint file '" + Tmp + "': " + errnoText(errno);
  }
  if (Ok && Fsync) {
    errno = 0;
    Ok = FileSys::syncFile(FailSite::CheckpointSync, F) == 0;
    if (!Ok)
      Err = "cannot fsync checkpoint file '" + Tmp + "': " + errnoText(errno);
  }
  errno = 0;
  if (FileSys::closeFile(FailSite::CheckpointClose, F) != 0 && Ok) {
    Ok = false;
    Err = "cannot close checkpoint file '" + Tmp + "': " + errnoText(errno);
  }
  if (!Ok) {
    std::remove(Tmp.c_str());
    return false;
  }
  errno = 0;
  if (FileSys::renameFile(FailSite::CheckpointRename, Tmp.c_str(),
                          Path.c_str()) != 0) {
    Err = "cannot rename checkpoint file into place at '" + Path +
          "': " + errnoText(errno);
    std::remove(Tmp.c_str());
    return false;
  }
  if (Fsync) {
    errno = 0;
    if (FileSys::syncParentDir(FailSite::CheckpointDirSync, Path.c_str()) !=
        0) {
      // The rename happened (the destination is valid) but is not yet
      // guaranteed durable; report it so the policy layer can decide.
      Err = "cannot fsync parent directory of '" + Path +
            "': " + errnoText(errno);
      return false;
    }
  }
  return true;
}

Deserializer Checkpoint::payload() const {
  if (!valid())
    return Deserializer(nullptr, 0);
  return Deserializer(Bytes.data() + kHeaderSize,
                      Bytes.size() - kHeaderSize - kTrailerSize);
}
