//===- support/Checkpoint.h - Serialized run state --------------*- C++ -*-===//
///
/// \file
/// Byte-level serialization for checkpoint/resume: a little-endian
/// `Serializer`/`Deserializer` pair, and `Checkpoint`, the versioned,
/// checksummed container a paused run is saved into.
///
/// The wire format is deliberately representation-independent: integers are
/// always written as 64-bit two's complement, so a checkpoint written by a
/// tagged-Value build resumes under MONSEM_VALUE_BOXED and vice versa. The
/// layer above (semantics/ValueGraph.h, the machines) decides *what* to
/// write; this layer only guarantees framing, versioning and integrity:
///
///   [magic "MSCK"] [u32 version] [header] [payload ...] [u64 FNV-1a]
///
/// The trailing checksum covers every preceding byte, so a torn write (half
/// a checkpoint on disk after a crash) is detected on load rather than
/// resumed from. See DESIGN.md ("Checkpoint wire format") for the payload
/// layout.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_SUPPORT_CHECKPOINT_H
#define MONSEM_SUPPORT_CHECKPOINT_H

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace monsem {

/// FNV-1a over \p Len bytes, optionally chained via \p Seed.
uint64_t fnv1aHash(const void *Data, size_t Len,
                   uint64_t Seed = 0xcbf29ce484222325ull);

/// Convenience overload for strings (program fingerprints, journal text).
inline uint64_t fnv1aHash(std::string_view Text) {
  return fnv1aHash(Text.data(), Text.size());
}

/// Append-only little-endian byte writer. All multi-byte writes are
/// fixed-width so the reader needs no lookahead.
class Serializer {
public:
  void writeU8(uint8_t V) { Buf.push_back(V); }
  void writeBool(bool V) { writeU8(V ? 1 : 0); }
  void writeU32(uint32_t V) {
    for (int I = 0; I < 4; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void writeU64(uint64_t V) {
    for (int I = 0; I < 8; ++I)
      Buf.push_back(static_cast<uint8_t>(V >> (8 * I)));
  }
  void writeI64(int64_t V) { writeU64(static_cast<uint64_t>(V)); }
  void writeBytes(const void *Data, size_t Len) {
    const uint8_t *P = static_cast<const uint8_t *>(Data);
    Buf.insert(Buf.end(), P, P + Len);
  }
  /// Length-prefixed (u32) byte string.
  void writeString(std::string_view S) {
    writeU32(static_cast<uint32_t>(S.size()));
    writeBytes(S.data(), S.size());
  }

  size_t size() const { return Buf.size(); }
  const std::vector<uint8_t> &bytes() const { return Buf; }
  std::vector<uint8_t> take() { return std::move(Buf); }

private:
  std::vector<uint8_t> Buf;
};

/// Bounds-checked reader over a byte span it does not own. Errors are
/// sticky: after the first over-read or explicit fail() every read returns
/// zero and ok() is false, so decode loops can check once at the end.
class Deserializer {
public:
  Deserializer(const uint8_t *Data, size_t Len) : Data(Data), Len(Len) {}
  explicit Deserializer(const std::vector<uint8_t> &Buf)
      : Data(Buf.data()), Len(Buf.size()) {}

  uint8_t readU8() {
    if (!require(1))
      return 0;
    return Data[Pos++];
  }
  bool readBool() { return readU8() != 0; }
  uint32_t readU32() {
    if (!require(4))
      return 0;
    uint32_t V = 0;
    for (int I = 0; I < 4; ++I)
      V |= static_cast<uint32_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  uint64_t readU64() {
    if (!require(8))
      return 0;
    uint64_t V = 0;
    for (int I = 0; I < 8; ++I)
      V |= static_cast<uint64_t>(Data[Pos++]) << (8 * I);
    return V;
  }
  int64_t readI64() { return static_cast<int64_t>(readU64()); }
  std::string readString() {
    uint32_t N = readU32();
    if (!require(N))
      return std::string();
    std::string S(reinterpret_cast<const char *>(Data + Pos), N);
    Pos += N;
    return S;
  }

  bool ok() const { return Good; }
  const std::string &error() const { return Err; }
  void fail(std::string Msg) {
    if (Good) {
      Good = false;
      Err = std::move(Msg);
    }
  }
  size_t remaining() const { return Good ? Len - Pos : 0; }
  size_t position() const { return Pos; }
  /// Raw pointer to the current read position (for carving length-prefixed
  /// sub-views; pair with remaining()/skip()).
  const uint8_t *cursor() const { return Data + Pos; }
  void skip(size_t N) {
    if (require(N))
      Pos += N;
  }

private:
  bool require(size_t N) {
    if (!Good)
      return false;
    if (Len - Pos < N) {
      fail("checkpoint truncated: read past end of payload");
      return false;
    }
    return true;
  }

  const uint8_t *Data;
  size_t Len;
  size_t Pos = 0;
  bool Good = true;
  std::string Err;
};

/// Which machine produced a checkpoint. Resume requires the same backend.
enum class CheckpointBackend : uint8_t { CEK = 0, VM = 1 };

/// Fixed-size header written after the magic/version. Fields describing the
/// run configuration are validated on resume; `BoxedValues` is recorded for
/// diagnostics only (the payload encoding is representation-independent).
struct CheckpointHeader {
  CheckpointBackend Backend = CheckpointBackend::CEK;
  uint8_t Strategy = 0; ///< monsem::Strategy as a raw byte.
  bool Lexical = false; ///< CEK only: flat-frame vs named-chain envs.
  bool Monitored = false;
  bool BoxedValues = false; ///< Writer's Value representation (informational).
  /// Structural fingerprint of the program (AST for the CEK machine,
  /// disassembly for the VM); resume refuses a mismatched program.
  uint64_t ProgramFingerprint = 0;
  /// Machine transitions completed when the checkpoint was taken. The
  /// resumed run re-executes from step SavedSteps+1, so cumulative step
  /// counts match an uninterrupted run exactly.
  uint64_t SavedSteps = 0;
};

/// An immutable, framed checkpoint: header + opaque payload + checksum.
/// Produced by Checkpoint::seal() from a Serializer, or parsed (and
/// integrity-checked) from bytes/a file.
class Checkpoint {
public:
  static constexpr uint32_t kVersion = 1;

  Checkpoint() = default;

  /// Starts a checkpoint: writes magic, version and \p H into a fresh
  /// Serializer; the caller appends the payload and calls seal().
  static Serializer begin(const CheckpointHeader &H);

  /// Appends the checksum trailer and parses the result back into a
  /// Checkpoint (always valid by construction).
  static Checkpoint seal(Serializer &&S);

  /// Parses \p Bytes, verifying magic, version and checksum. On failure
  /// returns an invalid Checkpoint and sets \p Err.
  static Checkpoint fromBytes(std::vector<uint8_t> Bytes, std::string &Err);

  /// Reads and verifies a checkpoint file.
  static Checkpoint loadFile(const std::string &Path, std::string &Err);

  /// Atomically writes the framed bytes: write temp, flush, fsync, close
  /// (all checked), rename into place, fsync the parent directory. The temp
  /// file is removed on every failure path. \p Fsync=false skips the two
  /// fsyncs (tests and overhead measurements); the destination is still
  /// only ever replaced by a complete checkpoint.
  bool saveFile(const std::string &Path, std::string &Err,
                bool Fsync = true) const;

  bool valid() const { return !Bytes.empty(); }
  const CheckpointHeader &header() const { return Header; }
  const std::vector<uint8_t> &bytes() const { return Bytes; }

  /// A reader positioned at the first payload byte (checksum excluded).
  Deserializer payload() const;

private:
  CheckpointHeader Header;
  std::vector<uint8_t> Bytes;
};

} // namespace monsem

#endif // MONSEM_SUPPORT_CHECKPOINT_H
