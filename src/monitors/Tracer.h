//===- monitors/Tracer.h - Fancy tracer (Fig. 7) ----------------*- C++ -*-===//
///
/// \file
/// The fancy tracer of Fig. 7. The annotation syntax is a function header
/// `{f(x1,...,xn)}` placed on the function body; the monitor state is the
/// pair <output channel, trace level>. Before evaluating the body the
/// tracer prints `[F receives (v1 ... vn)]` and increments the level; after
/// evaluation it prints `[F returns v]` at the restored level.
///
/// Indentation: five spaces per level, e.g.
///
///   [FAC receives (3)]
///        [FAC receives (2)]
///             ...
///        [FAC returns 2]
///        [MUL receives (3 2)]
///        [MUL returns 6]
///   [FAC returns 6]
///
/// (The paper's figure decorates the margin with '|' glyphs; we keep the
/// plain-space indentation, preserving content and nesting structure.)
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_TRACER_H
#define MONSEM_MONITORS_TRACER_H

#include "monitor/MonitorSpec.h"
#include "support/OutChan.h"

#include <iosfwd>

namespace monsem {

/// MS = OutChan x N.
class TracerState : public MonitorState {
public:
  OutChan Chan;
  int Level = 0;

  std::string str() const override { return Chan.str(); }

  void save(Serializer &S) const override {
    Chan.save(S);
    S.writeI64(Level);
  }
  void load(Deserializer &D) override {
    Chan.load(D);
    Level = static_cast<int>(D.readI64());
  }
};

class Tracer : public Monitor {
public:
  /// \p Echo, if non-null, live-streams every trace line (examples).
  explicit Tracer(std::ostream *Echo = nullptr) : Echo(Echo) {}

  std::string_view name() const override { return "trace"; }

  /// MSyn: a function header `f(x1,...,xn)`.
  bool accepts(const Annotation &Ann) const override { return Ann.HasParams; }

  std::unique_ptr<MonitorState> initialState() const override;

  void pre(const MonitorEvent &Ev, MonitorState &State) const override;
  void post(const MonitorEvent &Ev, Value Result,
            MonitorState &State) const override;

  static const TracerState &state(const MonitorState &S) {
    return static_cast<const TracerState &>(S);
  }

private:
  std::ostream *Echo;
};

} // namespace monsem

#endif // MONSEM_MONITORS_TRACER_H
