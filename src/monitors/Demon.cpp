//===- monitors/Demon.cpp --------------------------------------------------===//

#include "monitors/Demon.h"

using namespace monsem;

bool monsem::isSortedList(Value V) {
  // sorted? (x:xs) = case xs of (y:ys) : (x <= y) & sorted? xs; Nil : True
  // sorted? Nil = True
  while (V.is(ValueKind::Cell)) {
    Cell *C = V.asCell();
    Value Tail = C->Tail;
    if (!Tail.is(ValueKind::Cell))
      return true;
    Value X = C->Head, Y = Tail.asCell()->Head;
    if (X.is(ValueKind::Int) && Y.is(ValueKind::Int)) {
      if (X.asInt() > Y.asInt())
        return false;
    } else if (X.is(ValueKind::Str) && Y.is(ValueKind::Str)) {
      if (X.asStr() > Y.asStr())
        return false;
    } else {
      // Heterogeneous or non-ordered elements: vacuously sorted.
      return true;
    }
    V = Tail;
  }
  return true;
}
