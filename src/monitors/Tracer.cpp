//===- monitors/Tracer.cpp -------------------------------------------------===//

#include "monitors/Tracer.h"

#include <cctype>

using namespace monsem;

static std::string upperName(Symbol S) {
  std::string Out(S.str());
  for (char &C : Out)
    C = static_cast<char>(std::toupper(static_cast<unsigned char>(C)));
  return Out;
}

static std::string indent(int N) {
  std::string Out;
  for (int I = 0; I < N; ++I)
    Out += "     ";
  return Out;
}

std::unique_ptr<MonitorState> Tracer::initialState() const {
  auto S = std::make_unique<TracerState>();
  if (Echo)
    S->Chan.echoTo(Echo);
  return S;
}

void Tracer::pre(const MonitorEvent &Ev, MonitorState &State) const {
  auto &S = static_cast<TracerState &>(State);
  // printChan ("[" ++ f ++ " receives (" ++ ToStr(rho(x1)) ++ ... ++ ")]")
  std::string Line = indent(S.Level) + "[" + upperName(Ev.Ann.Head) +
                     " receives (";
  for (size_t I = 0; I < Ev.Ann.Params.size(); ++I) {
    if (I != 0)
      Line += ' ';
    Line += Ev.Env.lookupStr(Ev.Ann.Params[I]);
  }
  Line += ")]";
  S.Chan.addLine(std::move(Line));
  ++S.Level;
}

void Tracer::post(const MonitorEvent &Ev, Value Result,
                  MonitorState &State) const {
  auto &S = static_cast<TracerState &>(State);
  --S.Level;
  S.Chan.addLine(indent(S.Level) + "[" + upperName(Ev.Ann.Head) +
                 " returns " + toDisplayString(Result) + "]");
}
