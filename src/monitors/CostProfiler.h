//===- monitors/CostProfiler.h - Inclusive step-cost profiler ---*- C++ -*-===//
///
/// \file
/// A cost profiler in the spirit of gprof, built from the same Definition
/// 5.1 recipe (an extension beyond the paper's toolbox): for each
/// annotation label it accumulates the *inclusive* machine-step cost of
/// evaluating the annotated expression — post's StepIndex minus pre's —
/// plus call counts and min/max. The semantic context already carries the
/// step counter, so no machine support is needed: this is exactly the kind
/// of monitor the paper's framework lets users add "in an effective,
/// straightforward way".
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_COSTPROFILER_H
#define MONSEM_MONITORS_COSTPROFILER_H

#include "monitor/MonitorSpec.h"

#include <map>
#include <string>
#include <vector>

namespace monsem {

class CostProfilerState : public MonitorState {
public:
  struct Entry {
    uint64_t Calls = 0;
    uint64_t TotalSteps = 0;
    uint64_t MinSteps = UINT64_MAX;
    uint64_t MaxSteps = 0;
  };

  std::map<std::string, Entry, std::less<>> Entries;
  /// Live probes: (label, entry StepIndex) — one per nested active probe.
  std::vector<std::pair<std::string, uint64_t>> Stack;

  const Entry *entry(std::string_view Label) const {
    auto It = Entries.find(Label);
    return It == Entries.end() ? nullptr : &It->second;
  }

  /// "[fac: calls=4 total=57 avg=14]"-style summary, sorted by label.
  std::string str() const override {
    std::string Out = "[";
    bool First = true;
    for (const auto &[Label, E] : Entries) {
      if (!First)
        Out += ", ";
      First = false;
      Out += Label + ": calls=" + std::to_string(E.Calls) +
             " total=" + std::to_string(E.TotalSteps) +
             " avg=" + std::to_string(E.Calls ? E.TotalSteps / E.Calls : 0);
    }
    return Out + "]";
  }

  void save(Serializer &S) const override {
    S.writeU32(static_cast<uint32_t>(Entries.size()));
    for (const auto &[Label, E] : Entries) {
      S.writeString(Label);
      S.writeU64(E.Calls);
      S.writeU64(E.TotalSteps);
      S.writeU64(E.MinSteps);
      S.writeU64(E.MaxSteps);
    }
    S.writeU32(static_cast<uint32_t>(Stack.size()));
    for (const auto &[Label, Start] : Stack) {
      S.writeString(Label);
      S.writeU64(Start);
    }
  }
  void load(Deserializer &D) override {
    Entries.clear();
    Stack.clear();
    uint32_t NE = D.readU32();
    for (uint32_t I = 0; I < NE && D.ok(); ++I) {
      std::string Label = D.readString();
      Entry E;
      E.Calls = D.readU64();
      E.TotalSteps = D.readU64();
      E.MinSteps = D.readU64();
      E.MaxSteps = D.readU64();
      Entries[std::move(Label)] = E;
    }
    uint32_t NS = D.readU32();
    for (uint32_t I = 0; I < NS && D.ok(); ++I) {
      std::string Label = D.readString();
      uint64_t Start = D.readU64();
      Stack.emplace_back(std::move(Label), Start);
    }
  }
};

class CostProfiler : public Monitor {
public:
  std::string_view name() const override { return "cost"; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<CostProfilerState>();
  }

  void pre(const MonitorEvent &Ev, MonitorState &State) const override {
    auto &S = static_cast<CostProfilerState &>(State);
    S.Stack.emplace_back(std::string(Ev.Ann.Head.str()), Ev.StepIndex);
  }

  void post(const MonitorEvent &Ev, Value, MonitorState &State) const override {
    auto &S = static_cast<CostProfilerState &>(State);
    if (S.Stack.empty())
      return; // Defensive: unmatched post (cannot happen in well-formed runs).
    auto [Label, Start] = S.Stack.back();
    S.Stack.pop_back();
    uint64_t Cost = Ev.StepIndex >= Start ? Ev.StepIndex - Start : 0;
    auto &E = S.Entries[Label];
    ++E.Calls;
    E.TotalSteps += Cost;
    if (Cost < E.MinSteps)
      E.MinSteps = Cost;
    if (Cost > E.MaxSteps)
      E.MaxSteps = Cost;
  }

  static const CostProfilerState &state(const MonitorState &S) {
    return static_cast<const CostProfilerState &>(S);
  }
};

} // namespace monsem

#endif // MONSEM_MONITORS_COSTPROFILER_H
