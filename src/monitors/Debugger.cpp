//===- monitors/Debugger.cpp -----------------------------------------------===//

#include "monitors/Debugger.h"

#include "support/StrUtils.h"

#include <istream>

using namespace monsem;

std::unique_ptr<MonitorState> Debugger::initialState() const {
  auto S = std::make_unique<DebuggerState>();
  S->Script = Script;
  S->Input = Input;
  if (Echo)
    S->Chan.echoTo(Echo);
  return S;
}

std::optional<std::string> Debugger::nextCommand(DebuggerState &S) {
  if (S.ScriptPos < S.Script.size())
    return S.Script[S.ScriptPos++];
  if (S.Input) {
    std::string Line;
    if (std::getline(*S.Input, Line))
      return Line;
  }
  return std::nullopt;
}

/// Renders the event header, e.g. "fac(x = 2)".
static std::string describeEvent(const MonitorEvent &Ev) {
  std::string Out(Ev.Ann.Head.str());
  if (Ev.Ann.HasParams) {
    Out += '(';
    for (size_t I = 0; I < Ev.Ann.Params.size(); ++I) {
      if (I != 0)
        Out += ", ";
      Out += Ev.Ann.Params[I].str();
      Out += " = ";
      Out += Ev.Env.lookupStr(Ev.Ann.Params[I]);
    }
    Out += ')';
  }
  return Out;
}

void Debugger::interact(const MonitorEvent &Ev, DebuggerState &S) const {
  S.Chan.addLine("stopped at " + describeEvent(Ev));
  while (true) {
    std::optional<std::string> CmdLine = nextCommand(S);
    if (!CmdLine) {
      // Command source exhausted: run to completion silently.
      S.M = DebuggerState::Mode::Detached;
      return;
    }
    std::vector<std::string> Words;
    for (const std::string &W : splitString(trimString(*CmdLine), ' '))
      if (!W.empty())
        Words.push_back(W);
    if (Words.empty())
      continue;
    const std::string &Cmd = Words[0];

    if (Cmd == "step" || Cmd == "s") {
      S.M = DebuggerState::Mode::Stepping;
      return;
    }
    if (Cmd == "continue" || Cmd == "c") {
      S.M = DebuggerState::Mode::Running;
      return;
    }
    if (Cmd == "quit" || Cmd == "q") {
      S.M = DebuggerState::Mode::Detached;
      return;
    }
    if (Cmd == "break" && Words.size() > 1) {
      S.Breakpoints.insert(Words[1]);
      S.Chan.addLine("breakpoint set on " + Words[1]);
      continue;
    }
    if (Cmd == "breakif" && Words.size() > 3) {
      S.CondBreaks[Words[1]] = {Words[2], Words[3]};
      S.Chan.addLine("conditional breakpoint set on " + Words[1] +
                     " when " + Words[2] + " = " + Words[3]);
      continue;
    }
    if (Cmd == "watch" && Words.size() > 1) {
      // Seed the watch with the current value so it fires on change.
      S.Watches[Words[1]] =
          Ev.Env.lookupStr(Symbol::intern(Words[1]));
      S.Chan.addLine("watching " + Words[1]);
      continue;
    }
    if (Cmd == "delete" && Words.size() > 1) {
      S.Breakpoints.erase(Words[1]);
      S.CondBreaks.erase(Words[1]);
      S.Chan.addLine("breakpoint removed from " + Words[1]);
      continue;
    }
    if ((Cmd == "print" || Cmd == "p") && Words.size() > 1) {
      S.Chan.addLine(Words[1] + " = " +
                     Ev.Env.lookupStr(Symbol::intern(Words[1])));
      continue;
    }
    if (Cmd == "locals") {
      for (const auto &[Name, Val] : Ev.Env.bindings(16))
        S.Chan.addLine("  " + std::string(Name.str()) + " = " +
                       toDisplayString(Val));
      continue;
    }
    if (Cmd == "where" || Cmd == "bt") {
      if (S.CallStack.empty())
        S.Chan.addLine("  <empty call stack>");
      for (size_t I = S.CallStack.size(); I-- > 0;)
        S.Chan.addLine("  #" + std::to_string(S.CallStack.size() - 1 - I) +
                       " " + S.CallStack[I]);
      continue;
    }
    if (Cmd == "monitors") {
      // Section 6: observe the states of inner monitors in the cascade.
      if (Ev.Ctx.numInnerMonitors() == 0)
        S.Chan.addLine("  <no inner monitors>");
      for (unsigned I = 0; I < Ev.Ctx.numInnerMonitors(); ++I)
        S.Chan.addLine("  monitor " + std::to_string(I) + ": " +
                       Ev.Ctx.innerState(I).str());
      continue;
    }
    S.Chan.addLine("unknown command: " + Cmd);
  }
}

void Debugger::pre(const MonitorEvent &Ev, MonitorState &State) const {
  auto &S = static_cast<DebuggerState &>(State);
  S.CallStack.push_back(describeEvent(Ev));
  if (S.M == DebuggerState::Mode::Detached)
    return;
  std::string Label(Ev.Ann.Head.str());
  bool Stop = S.M == DebuggerState::Mode::Stepping ||
              S.Breakpoints.count(Label);
  if (!Stop) {
    // Conditional breakpoint on this label?
    if (auto It = S.CondBreaks.find(Label); It != S.CondBreaks.end()) {
      const auto &[Var, Want] = It->second;
      if (Ev.Env.lookupStr(Symbol::intern(Var)) == Want) {
        S.Chan.addLine("condition hit: " + Var + " = " + Want);
        Stop = true;
      }
    }
  }
  if (!Stop) {
    // Watched variable changed?
    for (auto &[Var, Last] : S.Watches) {
      std::string Now = Ev.Env.lookupStr(Symbol::intern(Var));
      if (Now != Last) {
        S.Chan.addLine("watch hit: " + Var + " " + Last + " -> " + Now);
        Last = Now;
        Stop = true;
      }
    }
  }
  if (Stop)
    interact(Ev, S);
}

void Debugger::post(const MonitorEvent &Ev, Value Result,
                    MonitorState &State) const {
  auto &S = static_cast<DebuggerState &>(State);
  if (!S.CallStack.empty())
    S.CallStack.pop_back();
  if (S.M == DebuggerState::Mode::Stepping)
    S.Chan.addLine(std::string(Ev.Ann.Head.str()) + " returned " +
                   toDisplayString(Result));
}
