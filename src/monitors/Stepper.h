//===- monitors/Stepper.h - Execution stepper (Section 9.2) -----*- C++ -*-===//
///
/// \file
/// The stepper from the Section 9.2 toolbox: a non-interactive monitor that
/// records (and optionally live-prints) every monitored step — entry into
/// and exit from each annotated expression — with the machine step index,
/// giving a linear account of execution suitable for post-mortem study.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_STEPPER_H
#define MONSEM_MONITORS_STEPPER_H

#include "monitor/MonitorSpec.h"
#include "support/OutChan.h"
#include "syntax/Printer.h"

#include <iosfwd>

namespace monsem {

class StepperState : public MonitorState {
public:
  OutChan Chan;
  uint64_t Events = 0;

  std::string str() const override { return Chan.str(); }

  void save(Serializer &S) const override {
    Chan.save(S);
    S.writeU64(Events);
  }
  void load(Deserializer &D) override {
    Chan.load(D);
    Events = D.readU64();
  }
};

class Stepper : public Monitor {
public:
  /// \p PrintExprs additionally renders the annotated expression at each
  /// enter event. \p Echo live-streams the log.
  explicit Stepper(bool PrintExprs = false, std::ostream *Echo = nullptr)
      : PrintExprs(PrintExprs), Echo(Echo) {}

  std::string_view name() const override { return "step"; }
  bool accepts(const Annotation &) const override { return true; }

  std::unique_ptr<MonitorState> initialState() const override {
    auto S = std::make_unique<StepperState>();
    if (Echo)
      S->Chan.echoTo(Echo);
    return S;
  }

  void pre(const MonitorEvent &Ev, MonitorState &State) const override {
    auto &S = static_cast<StepperState &>(State);
    ++S.Events;
    std::string Line = "step " + std::to_string(S.Events) + ": enter " +
                       std::string(Ev.Ann.Head.str());
    if (PrintExprs)
      Line += "  -- " + printExpr(&Ev.E);
    S.Chan.addLine(std::move(Line));
  }

  void post(const MonitorEvent &Ev, Value Result,
            MonitorState &State) const override {
    auto &S = static_cast<StepperState &>(State);
    ++S.Events;
    S.Chan.addLine("step " + std::to_string(S.Events) + ": exit " +
                   std::string(Ev.Ann.Head.str()) + " = " +
                   toDisplayString(Result));
  }

  static const StepperState &state(const MonitorState &S) {
    return static_cast<const StepperState &>(S);
  }

private:
  bool PrintExprs;
  std::ostream *Echo;
};

} // namespace monsem

#endif // MONSEM_MONITORS_STEPPER_H
