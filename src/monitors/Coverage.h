//===- monitors/Coverage.h - Coverage monitor (extension) -------*- C++ -*-===//
///
/// \file
/// A coverage monitor, built from the same three-part recipe as the paper's
/// examples (an extension beyond the paper's toolbox). Combined with
/// labelProgramPoints (Annotator.h), which labels every application with
/// `{p0}, {p1}, ...`, it reports which program points executed.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_COVERAGE_H
#define MONSEM_MONITORS_COVERAGE_H

#include "monitor/MonitorSpec.h"

#include <set>
#include <string>

namespace monsem {

class CoverageState : public MonitorState {
public:
  std::set<std::string> Hit;
  uint64_t TotalHits = 0;
  unsigned TotalPoints = 0;

  double ratio() const {
    return TotalPoints == 0
               ? 0.0
               : static_cast<double>(Hit.size()) / TotalPoints;
  }

  std::string str() const override {
    std::string Out = std::to_string(Hit.size());
    if (TotalPoints)
      Out += "/" + std::to_string(TotalPoints);
    Out += " points hit (" + std::to_string(TotalHits) + " events)";
    return Out;
  }

  void save(Serializer &S) const override {
    S.writeU32(static_cast<uint32_t>(Hit.size()));
    for (const std::string &P : Hit)
      S.writeString(P);
    S.writeU64(TotalHits);
    S.writeU32(TotalPoints);
  }
  void load(Deserializer &D) override {
    Hit.clear();
    uint32_t N = D.readU32();
    for (uint32_t I = 0; I < N && D.ok(); ++I)
      Hit.insert(D.readString());
    TotalHits = D.readU64();
    TotalPoints = D.readU32();
  }
};

class CoverageMonitor : public Monitor {
public:
  /// \p TotalPoints is the label count from labelProgramPoints (0 if
  /// unknown).
  explicit CoverageMonitor(unsigned TotalPoints = 0)
      : TotalPoints(TotalPoints) {}

  std::string_view name() const override { return "cover"; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    auto S = std::make_unique<CoverageState>();
    S->TotalPoints = TotalPoints;
    return S;
  }
  void pre(const MonitorEvent &Ev, MonitorState &State) const override {
    auto &S = static_cast<CoverageState &>(State);
    S.Hit.insert(std::string(Ev.Ann.Head.str()));
    ++S.TotalHits;
  }
  void post(const MonitorEvent &, Value, MonitorState &) const override {}

  static const CoverageState &state(const MonitorState &S) {
    return static_cast<const CoverageState &>(S);
  }

private:
  unsigned TotalPoints;
};

} // namespace monsem

#endif // MONSEM_MONITORS_COVERAGE_H
