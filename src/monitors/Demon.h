//===- monitors/Demon.h - Event-monitoring demons (Fig. 8) ------*- C++ -*-===//
///
/// \file
/// Section 8's demons, a la Magpie [DMS84]: annotations mark program points
/// where an event of interest may occur; the demon's post function checks a
/// predicate on the produced value and records the label of every point
/// where the event fired.
///
/// `Demon` is the general form (any predicate over values); the paper's
/// instance — a demon that flags program points producing *unsorted* lists
/// — is `Demon::unsortedLists()`. Its state is the name set {Ide}; for the
/// Section 8 example it ends as {l1, l3}.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_DEMON_H
#define MONSEM_MONITORS_DEMON_H

#include "monitor/MonitorSpec.h"

#include <functional>
#include <set>
#include <string>

namespace monsem {

/// MS = {Ide}: the labels of the points where the event occurred.
class DemonState : public MonitorState {
public:
  std::set<std::string> Fired;

  bool fired(std::string_view Label) const {
    return Fired.count(std::string(Label)) != 0;
  }

  /// "{l1, l3}".
  std::string str() const override {
    std::string Out = "{";
    bool First = true;
    for (const std::string &L : Fired) {
      if (!First)
        Out += ", ";
      First = false;
      Out += L;
    }
    return Out + "}";
  }

  void save(Serializer &S) const override {
    S.writeU32(static_cast<uint32_t>(Fired.size()));
    for (const std::string &L : Fired)
      S.writeString(L);
  }
  void load(Deserializer &D) override {
    Fired.clear();
    uint32_t N = D.readU32();
    for (uint32_t I = 0; I < N && D.ok(); ++I)
      Fired.insert(D.readString());
  }
};

/// The paper's `sorted?` predicate: true for non-decreasing integer lists
/// (and vacuously for anything that is not a list).
bool isSortedList(Value V);

class Demon : public Monitor {
public:
  /// Fires (records the annotation label) when \p Event returns true on
  /// the value of the annotated expression.
  Demon(std::string Name, std::function<bool(Value)> Event)
      : MonitorName(std::move(Name)), Event(std::move(Event)) {}

  /// Fig. 8: the demon that checks for unsorted lists.
  static Demon unsortedLists() {
    return Demon("demon", [](Value V) { return !isSortedList(V); });
  }

  std::string_view name() const override { return MonitorName; }

  /// MSyn: a bare program-point label.
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<DemonState>();
  }

  /// M_pre [p] [e] rho sigma = sigma.
  void pre(const MonitorEvent &, MonitorState &) const override {}

  /// M_post: sigma or {p} ∪ sigma, by the event predicate.
  void post(const MonitorEvent &Ev, Value Result,
            MonitorState &State) const override {
    if (Event(Result))
      static_cast<DemonState &>(State).Fired.insert(
          std::string(Ev.Ann.Head.str()));
  }

  static const DemonState &state(const MonitorState &S) {
    return static_cast<const DemonState &>(S);
  }

private:
  std::string MonitorName;
  std::function<bool(Value)> Event;
};

} // namespace monsem

#endif // MONSEM_MONITORS_DEMON_H
