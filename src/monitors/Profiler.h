//===- monitors/Profiler.h - Profiling monitors -----------------*- C++ -*-===//
///
/// \file
/// Two profiler specifications from the paper:
///
///  * CountingProfiler (Fig. 4, Section 5): counts evaluations of
///    expressions labeled with one of two fixed annotations ("A"/"B" in the
///    paper); its state is the pair of counters <a, b>.
///
///  * CallProfiler (Fig. 6, Section 8): counts how many times each named
///    function is called. The annotation syntax is a bare function name
///    `{f}` placed on the function body; the state is the counter
///    environment CEnv = Ide -> N. M_pre is incCtr, M_post is the identity.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_PROFILER_H
#define MONSEM_MONITORS_PROFILER_H

#include "monitor/MonitorSpec.h"

#include <cstdint>
#include <map>
#include <string>

namespace monsem {

//===----------------------------------------------------------------------===//
// CountingProfiler (Fig. 4)
//===----------------------------------------------------------------------===//

class CountingProfilerState : public MonitorState {
public:
  uint64_t CountA = 0;
  uint64_t CountB = 0;

  /// "<1, 5>" — the paper's sigma = <1, 5>.
  std::string str() const override {
    return "<" + std::to_string(CountA) + ", " + std::to_string(CountB) + ">";
  }

  void save(Serializer &S) const override {
    S.writeU64(CountA);
    S.writeU64(CountB);
  }
  void load(Deserializer &D) override {
    CountA = D.readU64();
    CountB = D.readU64();
  }
};

class CountingProfiler : public Monitor {
public:
  /// Counts annotations labeled \p LabelA and \p LabelB ("A"/"B" in the
  /// paper's Fig. 4).
  CountingProfiler(std::string_view LabelA = "A", std::string_view LabelB = "B")
      : LabelA(Symbol::intern(LabelA)), LabelB(Symbol::intern(LabelB)) {}

  std::string_view name() const override { return "count"; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams && (Ann.Head == LabelA || Ann.Head == LabelB);
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<CountingProfilerState>();
  }
  void pre(const MonitorEvent &Ev, MonitorState &State) const override {
    auto &S = static_cast<CountingProfilerState &>(State);
    if (Ev.Ann.Head == LabelA)
      ++S.CountA;
    else
      ++S.CountB;
  }
  void post(const MonitorEvent &, Value, MonitorState &) const override {}

  static const CountingProfilerState &state(const MonitorState &S) {
    return static_cast<const CountingProfilerState &>(S);
  }

private:
  Symbol LabelA, LabelB;
};

//===----------------------------------------------------------------------===//
// CallProfiler (Fig. 6)
//===----------------------------------------------------------------------===//

/// The counter environment CEnv = Ide -> N. The map is keyed by spelling so
/// str() renders alphabetically, matching the paper's [fac -> 4, mul -> 3].
class CallProfilerState : public MonitorState {
public:
  std::map<std::string, uint64_t, std::less<>> Counters;

  uint64_t count(std::string_view Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }

  std::string str() const override {
    std::string Out = "[";
    bool First = true;
    for (const auto &[Name, N] : Counters) {
      if (!First)
        Out += ", ";
      First = false;
      Out += Name + " -> " + std::to_string(N);
    }
    return Out + "]";
  }

  void save(Serializer &S) const override {
    S.writeU32(static_cast<uint32_t>(Counters.size()));
    for (const auto &[Name, N] : Counters) {
      S.writeString(Name);
      S.writeU64(N);
    }
  }
  void load(Deserializer &D) override {
    Counters.clear();
    uint32_t N = D.readU32();
    for (uint32_t I = 0; I < N && D.ok(); ++I) {
      std::string Name = D.readString();
      Counters[Name] = D.readU64();
    }
  }
};

class CallProfiler : public Monitor {
public:
  std::string_view name() const override { return "profile"; }

  /// MSyn: a bare function name (no parameter list).
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<CallProfilerState>();
  }

  /// incCtr [f] rho_c.
  void pre(const MonitorEvent &Ev, MonitorState &State) const override {
    auto &S = static_cast<CallProfilerState &>(State);
    ++S.Counters[std::string(Ev.Ann.Head.str())];
  }

  /// M_post [f] [e] rho v rho_c = rho_c.
  void post(const MonitorEvent &, Value, MonitorState &) const override {}

  static const CallProfilerState &state(const MonitorState &S) {
    return static_cast<const CallProfilerState &>(S);
  }
};

} // namespace monsem

#endif // MONSEM_MONITORS_PROFILER_H
