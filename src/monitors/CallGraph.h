//===- monitors/CallGraph.h - Dynamic call-graph monitor --------*- C++ -*-===//
///
/// \file
/// Records the dynamic call graph over annotated functions (an extension
/// monitor): an edge caller -> callee is counted whenever a probe for
/// `callee` fires while `caller`'s probe is the innermost live one. The
/// monitor maintains its own stack from pre/post events — no evaluator
/// support needed.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_CALLGRAPH_H
#define MONSEM_MONITORS_CALLGRAPH_H

#include "monitor/MonitorSpec.h"

#include <map>
#include <string>
#include <vector>

namespace monsem {

class CallGraphState : public MonitorState {
public:
  /// (caller, callee) -> count. The synthetic root caller is "<root>".
  std::map<std::pair<std::string, std::string>, uint64_t> Edges;
  std::vector<std::string> Stack;

  uint64_t edge(std::string_view From, std::string_view To) const {
    auto It = Edges.find({std::string(From), std::string(To)});
    return It == Edges.end() ? 0 : It->second;
  }

  /// "<root> -> fac: 1, fac -> fac: 3, fac -> mul: 3" style.
  std::string str() const override {
    std::string Out;
    bool First = true;
    for (const auto &[Edge, N] : Edges) {
      if (!First)
        Out += ", ";
      First = false;
      Out += Edge.first + " -> " + Edge.second + ": " + std::to_string(N);
    }
    return Out;
  }

  void save(Serializer &S) const override {
    S.writeU32(static_cast<uint32_t>(Edges.size()));
    for (const auto &[Edge, N] : Edges) {
      S.writeString(Edge.first);
      S.writeString(Edge.second);
      S.writeU64(N);
    }
    S.writeU32(static_cast<uint32_t>(Stack.size()));
    for (const std::string &Name : Stack)
      S.writeString(Name);
  }
  void load(Deserializer &D) override {
    Edges.clear();
    Stack.clear();
    uint32_t NE = D.readU32();
    for (uint32_t I = 0; I < NE && D.ok(); ++I) {
      std::string From = D.readString();
      std::string To = D.readString();
      Edges[{std::move(From), std::move(To)}] = D.readU64();
    }
    uint32_t NS = D.readU32();
    for (uint32_t I = 0; I < NS && D.ok(); ++I)
      Stack.push_back(D.readString());
  }
};

class CallGraphMonitor : public Monitor {
public:
  std::string_view name() const override { return "callgraph"; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<CallGraphState>();
  }

  void pre(const MonitorEvent &Ev, MonitorState &State) const override {
    auto &S = static_cast<CallGraphState &>(State);
    std::string Callee(Ev.Ann.Head.str());
    std::string Caller = S.Stack.empty() ? "<root>" : S.Stack.back();
    ++S.Edges[{Caller, Callee}];
    S.Stack.push_back(std::move(Callee));
  }

  void post(const MonitorEvent &, Value, MonitorState &State) const override {
    auto &S = static_cast<CallGraphState &>(State);
    if (!S.Stack.empty())
      S.Stack.pop_back();
  }

  static const CallGraphState &state(const MonitorState &S) {
    return static_cast<const CallGraphState &>(S);
  }
};

} // namespace monsem

#endif // MONSEM_MONITORS_CALLGRAPH_H
