//===- monitors/FaultInjector.h - Misbehaving-monitor wrapper ---*- C++ -*-===//
///
/// \file
/// A monitor wrapper that makes any inner monitor misbehave on purpose:
/// at a seeded probability per probe it throws, burns wall-clock time, or
/// over-allocates from its own ballast. It exists to exercise the fault
/// boundary (monitor/FaultIsolation.h) and the resource governor — the
/// differential soundness tests run a cascade containing an injector and
/// check that the program's answer is still the standard answer.
///
/// Determinism: all randomness comes from a splitmix64 stream seeded in
/// Config and stored in the *state* (the shared Monitor object stays
/// immutable and reusable across runs, like every other spec). Probe
/// events the injector lets through are forwarded to the inner monitor
/// unchanged, so on a fault-free run (Rate = 0) the final state is
/// byte-identical to the inner monitor's own.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_FAULTINJECTOR_H
#define MONSEM_MONITORS_FAULTINJECTOR_H

#include "monitor/MonitorSpec.h"

#include <chrono>
#include <stdexcept>
#include <thread>

namespace monsem {

/// The exception a Throw-mode injector raises out of its hooks.
class InjectedFault : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

/// Wraps an inner Monitor and injects faults into its probes.
class FaultInjector : public Monitor {
public:
  enum class Mode : uint8_t {
    Throw,   ///< Raise InjectedFault from the hook.
    Sleep,   ///< Burn SleepMicros of wall-clock time (deadline tests).
    Allocate ///< Grow state-owned ballast by AllocBytes (memory tests).
  };

  struct Config {
    Mode M = Mode::Throw;
    /// Faults per 1000 probes; 1000 = every probe.
    unsigned PerMille = 1000;
    uint64_t Seed = 0x9e3779b97f4a7c15ull;
    unsigned SleepMicros = 2000;     ///< Sleep mode.
    size_t AllocBytes = 1 << 16;     ///< Allocate mode: per fault.
    size_t MaxAllocTotal = 1 << 26;  ///< Allocate mode: ballast cap.
    bool InPre = true;               ///< Inject in pre probes.
    bool InPost = true;              ///< Inject in post probes.
  };

  FaultInjector(const Monitor &Inner, Config C) : Inner(Inner), C(C) {}

  std::string_view name() const override { return Inner.name(); }
  bool accepts(const Annotation &Ann) const override {
    return Inner.accepts(Ann);
  }

  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<InjectorState>(Inner.initialState(), C.Seed);
  }

  void pre(const MonitorEvent &Ev, MonitorState &State) const override {
    auto &S = static_cast<InjectorState &>(State);
    if (C.InPre)
      maybeFault(S, "pre");
    Inner.pre(Ev, *S.InnerState);
  }

  void post(const MonitorEvent &Ev, Value Result,
            MonitorState &State) const override {
    auto &S = static_cast<InjectorState &>(State);
    if (C.InPost)
      maybeFault(S, "post");
    Inner.post(Ev, Result, *S.InnerState);
  }

  /// Wrapper state: the inner monitor's state plus the RNG stream and the
  /// Allocate-mode ballast. str() delegates so a clean run is rendered
  /// identically to the inner monitor alone.
  struct InjectorState : MonitorState {
    InjectorState(std::unique_ptr<MonitorState> Inner, uint64_t Seed)
        : InnerState(std::move(Inner)), Rng(Seed) {}
    std::string str() const override { return InnerState->str(); }

    /// Recursive: the inner state's bytes nest inside the wrapper's, so an
    /// injector around any checkpointable monitor is itself checkpointable.
    /// Ballast is deliberately dropped — it models a leak, not data — but
    /// BallastBytes round-trips so the cap keeps its cumulative meaning.
    void save(Serializer &S) const override {
      S.writeU64(Rng);
      S.writeU64(Probes);
      S.writeU64(Injected);
      S.writeU64(BallastBytes);
      InnerState->save(S);
    }
    void load(Deserializer &D) override {
      Rng = D.readU64();
      Probes = D.readU64();
      Injected = D.readU64();
      BallastBytes = static_cast<size_t>(D.readU64());
      InnerState->load(D);
    }

    std::unique_ptr<MonitorState> InnerState;
    uint64_t Rng;
    uint64_t Probes = 0;
    uint64_t Injected = 0;
    std::vector<std::unique_ptr<char[]>> Ballast;
    size_t BallastBytes = 0;
  };

private:
  static uint64_t splitmix64(uint64_t &X) {
    X += 0x9e3779b97f4a7c15ull;
    uint64_t Z = X;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    return Z ^ (Z >> 31);
  }

  void maybeFault(InjectorState &S, const char *Side) const {
    ++S.Probes;
    if (C.PerMille < 1000 && splitmix64(S.Rng) % 1000 >= C.PerMille)
      return;
    ++S.Injected;
    switch (C.M) {
    case Mode::Throw:
      throw InjectedFault(std::string("injected fault in ") + Side +
                          " (probe " + std::to_string(S.Probes) + ")");
    case Mode::Sleep:
      std::this_thread::sleep_for(std::chrono::microseconds(C.SleepMicros));
      return;
    case Mode::Allocate:
      if (S.BallastBytes >= C.MaxAllocTotal)
        return;
      S.Ballast.push_back(std::make_unique<char[]>(C.AllocBytes));
      // Touch the pages so the allocation is real, not lazily mapped.
      for (size_t I = 0; I < C.AllocBytes; I += 4096)
        S.Ballast.back()[I] = static_cast<char>(I);
      S.BallastBytes += C.AllocBytes;
      return;
    }
  }

  const Monitor &Inner;
  Config C;
};

} // namespace monsem

#endif // MONSEM_MONITORS_FAULTINJECTOR_H
