//===- monitors/FlightRecorder.h - Ring-buffer event recorder ---*- C++ -*-===//
///
/// \file
/// A "flight recorder": keeps the last N monitoring events in a ring
/// buffer, so when a program fails you can ask what happened *just before*
/// — the post-mortem debugging pattern, as a pure monitor (another
/// Definition 5.1 instance beyond the paper's toolbox). Because monitor
/// states survive aborted runs (errors, fuel exhaustion), the recording is
/// available exactly when it is most useful.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_FLIGHTRECORDER_H
#define MONSEM_MONITORS_FLIGHTRECORDER_H

#include "monitor/MonitorSpec.h"

#include <deque>
#include <string>

namespace monsem {

class FlightRecorderState : public MonitorState {
public:
  size_t Capacity = 16;
  uint64_t TotalEvents = 0;
  std::deque<std::string> Ring; ///< Oldest first.

  void record(std::string Line) {
    ++TotalEvents;
    Ring.push_back(std::move(Line));
    if (Ring.size() > Capacity)
      Ring.pop_front();
  }

  /// The retained tail, oldest first, one event per line.
  std::string str() const override {
    std::string Out;
    for (const std::string &L : Ring) {
      Out += L;
      Out += '\n';
    }
    return Out;
  }

  void save(Serializer &S) const override {
    S.writeU64(Capacity);
    S.writeU64(TotalEvents);
    S.writeU32(static_cast<uint32_t>(Ring.size()));
    for (const std::string &L : Ring)
      S.writeString(L);
  }
  void load(Deserializer &D) override {
    Ring.clear();
    Capacity = static_cast<size_t>(D.readU64());
    TotalEvents = D.readU64();
    uint32_t N = D.readU32();
    if (N > Capacity) {
      D.fail("flight-recorder ring larger than its capacity");
      return;
    }
    for (uint32_t I = 0; I < N && D.ok(); ++I)
      Ring.push_back(D.readString());
  }
};

class FlightRecorder : public Monitor {
public:
  explicit FlightRecorder(size_t Capacity = 16) : Capacity(Capacity) {}

  std::string_view name() const override { return "record"; }
  bool accepts(const Annotation &) const override { return true; }
  std::unique_ptr<MonitorState> initialState() const override {
    auto S = std::make_unique<FlightRecorderState>();
    S->Capacity = Capacity;
    return S;
  }

  void pre(const MonitorEvent &Ev, MonitorState &State) const override {
    auto &S = static_cast<FlightRecorderState &>(State);
    std::string Line = "enter " + std::string(Ev.Ann.Head.str());
    if (Ev.Ann.HasParams) {
      Line += " (";
      for (size_t I = 0; I < Ev.Ann.Params.size(); ++I) {
        if (I != 0)
          Line += ' ';
        Line += Ev.Env.lookupStr(Ev.Ann.Params[I]);
      }
      Line += ')';
    }
    S.record(std::move(Line));
  }

  void post(const MonitorEvent &Ev, Value Result,
            MonitorState &State) const override {
    static_cast<FlightRecorderState &>(State).record(
        "exit " + std::string(Ev.Ann.Head.str()) + " = " +
        toDisplayString(Result));
  }

  static const FlightRecorderState &state(const MonitorState &S) {
    return static_cast<const FlightRecorderState &>(S);
  }

private:
  size_t Capacity;
};

} // namespace monsem

#endif // MONSEM_MONITORS_FLIGHTRECORDER_H
