//===- monitors/Debugger.h - Interactive debugger a la dbx ------*- C++ -*-===//
///
/// \file
/// The Section 9.2 toolbox's interactive debugger. The framework supports
/// interactive tools "by providing an input as well as an output stream to
/// and from the monitor" (Section 8); both streams live in the monitor's
/// state, so the debugger remains a pure monitor-state transformer and the
/// soundness theorem applies: it can observe everything and change nothing.
///
/// Commands (read from the command source whenever execution stops):
///
///   break <label>           set a breakpoint on annotation label <label>
///   breakif <label> <x> <v> conditional breakpoint: stop at <label> only
///                           when rho(x) prints as <v>
///   watch <x>               stop at any event where rho(x) changed since
///                           the last event
///   delete <label>          remove a breakpoint (conditional or not)
///   step | s                stop at the next monitored event
///   continue | c            run to the next breakpoint/watch hit
///   print <x> | p           print rho(x)
///   locals                  print the visible bindings
///   where | bt              print the monitored call stack
///   monitors                print the states of inner monitors (§6)
///   quit | q                disable all stopping and run to completion
///
/// In tests and examples the command source is a script (vector of lines);
/// an interactive std::istream source works identically. When the script
/// is exhausted the debugger continues silently.
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_DEBUGGER_H
#define MONSEM_MONITORS_DEBUGGER_H

#include "monitor/MonitorSpec.h"
#include "support/OutChan.h"

#include <iosfwd>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace monsem {

class DebuggerState : public MonitorState {
public:
  enum class Mode { Running, Stepping, Detached };

  OutChan Chan;                       ///< Output stream to the user.
  std::vector<std::string> Script;    ///< Scripted command source.
  size_t ScriptPos = 0;
  std::istream *Input = nullptr;      ///< Interactive source (optional).
  Mode M = Mode::Stepping;            ///< Start stopped at the first event.
  std::set<std::string> Breakpoints;
  /// label -> (variable, expected rendered value).
  std::map<std::string, std::pair<std::string, std::string>> CondBreaks;
  /// variable -> last observed rendered value.
  std::map<std::string, std::string> Watches;
  std::vector<std::string> CallStack; ///< Maintained from pre/post events.

  std::string str() const override { return Chan.str(); }

  /// The interactive Input stream is a live handle and is not serialized;
  /// a resumed interactive session keeps the stream initialState() gave it.
  /// Script/ScriptPos round-trip, so a scripted session resumes exactly
  /// where it stopped.
  void save(Serializer &S) const override {
    Chan.save(S);
    S.writeU32(static_cast<uint32_t>(Script.size()));
    for (const std::string &L : Script)
      S.writeString(L);
    S.writeU64(ScriptPos);
    S.writeU8(static_cast<uint8_t>(M));
    S.writeU32(static_cast<uint32_t>(Breakpoints.size()));
    for (const std::string &B : Breakpoints)
      S.writeString(B);
    S.writeU32(static_cast<uint32_t>(CondBreaks.size()));
    for (const auto &[Label, Cond] : CondBreaks) {
      S.writeString(Label);
      S.writeString(Cond.first);
      S.writeString(Cond.second);
    }
    S.writeU32(static_cast<uint32_t>(Watches.size()));
    for (const auto &[Var, Last] : Watches) {
      S.writeString(Var);
      S.writeString(Last);
    }
    S.writeU32(static_cast<uint32_t>(CallStack.size()));
    for (const std::string &F : CallStack)
      S.writeString(F);
  }
  void load(Deserializer &D) override {
    Chan.load(D);
    Script.clear();
    uint32_t NS = D.readU32();
    for (uint32_t I = 0; I < NS && D.ok(); ++I)
      Script.push_back(D.readString());
    ScriptPos = static_cast<size_t>(D.readU64());
    uint8_t Raw = D.readU8();
    if (Raw > static_cast<uint8_t>(Mode::Detached)) {
      D.fail("debugger mode byte out of range");
      return;
    }
    M = static_cast<Mode>(Raw);
    Breakpoints.clear();
    uint32_t NB = D.readU32();
    for (uint32_t I = 0; I < NB && D.ok(); ++I)
      Breakpoints.insert(D.readString());
    CondBreaks.clear();
    uint32_t NC = D.readU32();
    for (uint32_t I = 0; I < NC && D.ok(); ++I) {
      std::string Label = D.readString();
      std::string Var = D.readString();
      std::string Val = D.readString();
      CondBreaks[std::move(Label)] = {std::move(Var), std::move(Val)};
    }
    Watches.clear();
    uint32_t NW = D.readU32();
    for (uint32_t I = 0; I < NW && D.ok(); ++I) {
      std::string Var = D.readString();
      Watches[std::move(Var)] = D.readString();
    }
    CallStack.clear();
    uint32_t NF = D.readU32();
    for (uint32_t I = 0; I < NF && D.ok(); ++I)
      CallStack.push_back(D.readString());
    if (ScriptPos > Script.size())
      D.fail("debugger script position past end of script");
  }
};

class Debugger : public Monitor {
public:
  /// Scripted debugger (tests, examples).
  explicit Debugger(std::vector<std::string> Script,
                    std::ostream *Echo = nullptr)
      : Script(std::move(Script)), Echo(Echo) {}

  /// Interactive debugger reading commands from \p Input.
  Debugger(std::istream &Input, std::ostream &Echo)
      : Input(&Input), Echo(&Echo) {}

  std::string_view name() const override { return "debug"; }
  bool accepts(const Annotation &) const override { return true; }

  std::unique_ptr<MonitorState> initialState() const override;

  void pre(const MonitorEvent &Ev, MonitorState &State) const override;
  void post(const MonitorEvent &Ev, Value Result,
            MonitorState &State) const override;

  static const DebuggerState &state(const MonitorState &S) {
    return static_cast<const DebuggerState &>(S);
  }

private:
  /// Reads the next command line; empty optional when the source is dry.
  static std::optional<std::string> nextCommand(DebuggerState &S);

  /// The stop loop: reports the stop and processes commands until a
  /// control command (step/continue/quit) resumes execution.
  void interact(const MonitorEvent &Ev, DebuggerState &S) const;

  std::vector<std::string> Script;
  std::istream *Input = nullptr;
  std::ostream *Echo = nullptr;
};

} // namespace monsem

#endif // MONSEM_MONITORS_DEBUGGER_H
