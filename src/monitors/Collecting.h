//===- monitors/Collecting.h - Collecting monitor (Fig. 9) ------*- C++ -*-===//
///
/// \file
/// The collecting monitor a la the collecting interpretation [HY88]: each
/// tagged expression accumulates the set of values it evaluates to during
/// execution. MS = Ide -> {V}; M_post is sigma[x -> sigma(x) ∪ {v}].
///
/// Values are stored *rendered* (as their ToStr text): the observable
/// content is identical and the state then outlives the execution arena
/// that owns cons cells. Sets print in lexicographic order, so the paper's
/// `[test -> {True, False}, n -> {1, 2, 3}]` appears here as
/// `[n -> {1, 2, 3}, test -> {False, True}]` (set/braces content equal).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_COLLECTING_H
#define MONSEM_MONITORS_COLLECTING_H

#include "monitor/MonitorSpec.h"

#include <map>
#include <set>
#include <string>

namespace monsem {

/// MS = Ide -> {V} (interpretations environment).
class CollectingState : public MonitorState {
public:
  std::map<std::string, std::set<std::string>, std::less<>> Sets;

  const std::set<std::string> *setFor(std::string_view Tag) const {
    auto It = Sets.find(Tag);
    return It == Sets.end() ? nullptr : &It->second;
  }

  std::string str() const override {
    std::string Out = "[";
    bool FirstTag = true;
    for (const auto &[Tag, Vals] : Sets) {
      if (!FirstTag)
        Out += ", ";
      FirstTag = false;
      Out += Tag + " -> {";
      bool FirstVal = true;
      for (const std::string &V : Vals) {
        if (!FirstVal)
          Out += ", ";
        FirstVal = false;
        Out += V;
      }
      Out += "}";
    }
    return Out + "]";
  }

  void save(Serializer &S) const override {
    S.writeU32(static_cast<uint32_t>(Sets.size()));
    for (const auto &[Tag, Vals] : Sets) {
      S.writeString(Tag);
      S.writeU32(static_cast<uint32_t>(Vals.size()));
      for (const std::string &V : Vals)
        S.writeString(V);
    }
  }
  void load(Deserializer &D) override {
    Sets.clear();
    uint32_t NT = D.readU32();
    for (uint32_t I = 0; I < NT && D.ok(); ++I) {
      std::string Tag = D.readString();
      std::set<std::string> Vals;
      uint32_t NV = D.readU32();
      for (uint32_t J = 0; J < NV && D.ok(); ++J)
        Vals.insert(D.readString());
      Sets[std::move(Tag)] = std::move(Vals);
    }
  }
};

class CollectingMonitor : public Monitor {
public:
  std::string_view name() const override { return "collect"; }

  /// MSyn: a bare name tag.
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<CollectingState>();
  }

  /// M_pre [x] [e] rho sigma = sigma.
  void pre(const MonitorEvent &, MonitorState &) const override {}

  /// M_post [x] [e] rho v sigma = sigma[x -> sigma(x) ∪ {v}].
  void post(const MonitorEvent &Ev, Value Result,
            MonitorState &State) const override {
    auto &S = static_cast<CollectingState &>(State);
    S.Sets[std::string(Ev.Ann.Head.str())].insert(toDisplayString(Result));
  }

  static const CollectingState &state(const MonitorState &S) {
    return static_cast<const CollectingState &>(S);
  }
};

} // namespace monsem

#endif // MONSEM_MONITORS_COLLECTING_H
