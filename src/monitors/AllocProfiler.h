//===- monitors/AllocProfiler.h - Allocation profiler -----------*- C++ -*-===//
///
/// \file
/// A heap/allocation profiler (extension monitor): for each annotation
/// label it accumulates the *inclusive* arena bytes allocated while the
/// annotated expression evaluated — post's AllocatedBytes minus pre's.
/// Works on every evaluator that reports its arena counter through the
/// probe interface (CEK machine, bytecode VM, direct interpreter, and the
/// imperative module's expression evaluator).
///
//===----------------------------------------------------------------------===//

#ifndef MONSEM_MONITORS_ALLOCPROFILER_H
#define MONSEM_MONITORS_ALLOCPROFILER_H

#include "monitor/MonitorSpec.h"

#include <map>
#include <string>
#include <vector>

namespace monsem {

class AllocProfilerState : public MonitorState {
public:
  struct Entry {
    uint64_t Calls = 0;
    uint64_t TotalBytes = 0;
    uint64_t MaxBytes = 0;
  };

  std::map<std::string, Entry, std::less<>> Entries;
  /// Live probes: (label, bytes at entry).
  std::vector<std::pair<std::string, uint64_t>> Stack;

  const Entry *entry(std::string_view Label) const {
    auto It = Entries.find(Label);
    return It == Entries.end() ? nullptr : &It->second;
  }

  std::string str() const override {
    std::string Out = "[";
    bool First = true;
    for (const auto &[Label, E] : Entries) {
      if (!First)
        Out += ", ";
      First = false;
      Out += Label + ": calls=" + std::to_string(E.Calls) +
             " bytes=" + std::to_string(E.TotalBytes);
    }
    return Out + "]";
  }

  void save(Serializer &S) const override {
    S.writeU32(static_cast<uint32_t>(Entries.size()));
    for (const auto &[Label, E] : Entries) {
      S.writeString(Label);
      S.writeU64(E.Calls);
      S.writeU64(E.TotalBytes);
      S.writeU64(E.MaxBytes);
    }
    S.writeU32(static_cast<uint32_t>(Stack.size()));
    for (const auto &[Label, Start] : Stack) {
      S.writeString(Label);
      S.writeU64(Start);
    }
  }
  void load(Deserializer &D) override {
    Entries.clear();
    Stack.clear();
    uint32_t NE = D.readU32();
    for (uint32_t I = 0; I < NE && D.ok(); ++I) {
      std::string Label = D.readString();
      Entry E;
      E.Calls = D.readU64();
      E.TotalBytes = D.readU64();
      E.MaxBytes = D.readU64();
      Entries[std::move(Label)] = E;
    }
    uint32_t NS = D.readU32();
    for (uint32_t I = 0; I < NS && D.ok(); ++I) {
      std::string Label = D.readString();
      uint64_t Start = D.readU64();
      Stack.emplace_back(std::move(Label), Start);
    }
  }
};

class AllocProfiler : public Monitor {
public:
  std::string_view name() const override { return "alloc"; }
  bool accepts(const Annotation &Ann) const override {
    return !Ann.HasParams;
  }
  std::unique_ptr<MonitorState> initialState() const override {
    return std::make_unique<AllocProfilerState>();
  }

  void pre(const MonitorEvent &Ev, MonitorState &State) const override {
    auto &S = static_cast<AllocProfilerState &>(State);
    S.Stack.emplace_back(std::string(Ev.Ann.Head.str()), Ev.AllocatedBytes);
  }

  void post(const MonitorEvent &Ev, Value, MonitorState &State) const override {
    auto &S = static_cast<AllocProfilerState &>(State);
    if (S.Stack.empty())
      return;
    auto [Label, Start] = S.Stack.back();
    S.Stack.pop_back();
    uint64_t Bytes =
        Ev.AllocatedBytes >= Start ? Ev.AllocatedBytes - Start : 0;
    auto &E = S.Entries[Label];
    ++E.Calls;
    E.TotalBytes += Bytes;
    if (Bytes > E.MaxBytes)
      E.MaxBytes = Bytes;
  }

  static const AllocProfilerState &state(const MonitorState &S) {
    return static_cast<const AllocProfilerState &>(S);
  }
};

} // namespace monsem

#endif // MONSEM_MONITORS_ALLOCPROFILER_H
