//===- tools/monsem_cli.cpp - Command-line monitoring environment ----------===//
//
// The user-facing face of the library: run an L_lambda program (or, with
// --imp, an imperative program) under any combination of monitors, in the
// way Section 4.1 envisions — the environment inserts the annotations when
// the user asks to trace or profile a function; hand-written annotations
// in the source work too.
//
//   monsem examples/programs/fac.lam --trace --profile
//   monsem examples/programs/fac.lam --pe --print-residual
//   monsem examples/programs/gcd.imp --imp --imp-watch=a
//   echo 'print 1+2' | monsem - --imp
//
//===----------------------------------------------------------------------===//

#include "compile/Compiler.h"
#include "compile/VM.h"
#include "imp/ImpMachine.h"
#include "imp/ImpMonitors.h"
#include "imp/ImpParser.h"
#include "interp/Eval.h"
#include "monitors/AllocProfiler.h"
#include "monitors/CallGraph.h"
#include "monitors/Collecting.h"
#include "monitors/CostProfiler.h"
#include "monitors/Coverage.h"
#include "monitors/Debugger.h"
#include "monitors/Demon.h"
#include "monitors/FaultInjector.h"
#include "monitors/FlightRecorder.h"
#include "monitors/Profiler.h"
#include "monitors/Stepper.h"
#include "monitors/Tracer.h"
#include "pe/PartialEval.h"
#include "support/StrUtils.h"
#include "syntax/Prelude.h"
#include "syntax/Annotator.h"
#include "syntax/Printer.h"

#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace monsem;

namespace {

/// Set by the SIGINT handler; every run loop polls it through the
/// governor's cancellation hook, so ^C ends the run with partial monitor
/// states instead of killing the process.
std::atomic<bool> GCancel{false};

void onInterrupt(int) { GCancel.store(true, std::memory_order_relaxed); }

struct Options {
  std::string File;
  bool Repl = false;
  bool Imp = false;
  bool Trace = false;
  bool Profile = false;
  bool Cost = false;
  bool Alloc = false;
  bool CallGraph = false;
  bool Collect = false;
  bool DemonSorted = false;
  bool Step = false;
  bool Record = false;
  bool Coverage = false;
  bool Debug = false;
  bool UseVM = false;
  bool PE = false;
  bool Prelude = false;
  bool PrintAst = false;
  bool PrintResidual = false;
  bool Disasm = false;
  Strategy Strat = Strategy::Strict;
  uint64_t MaxSteps = 0;
  uint64_t DeadlineMs = 0;
  uint64_t MaxBytes = 0;
  uint64_t MaxDepth = 0;
  FaultPolicy FaultPol = FaultPolicy::Quarantine;
  std::string Inject; ///< "", "throw", "sleep", or "alloc".
  std::string ImpWatch;
  std::vector<int64_t> ImpInput;
  bool ImpProfile = false;
  bool ImpTrace = false;
  std::vector<std::string> Names; ///< Functions to annotate ("" = all).
};

int usage(const char *Argv0) {
  std::cerr
      << "usage: " << Argv0 << " <file | - | --repl> [options]\n"
      << "  functional programs (default):\n"
      << "    --trace[=f,g]      trace calls (auto-annotates functions)\n"
      << "    --profile[=f,g]    count calls per function\n"
      << "    --cost             inclusive step-cost profile per function\n"
      << "    --alloc            inclusive allocation profile per function\n"
      << "    --callgraph        dynamic call graph over functions\n"
      << "    --collect          collecting monitor (source annotations)\n"
      << "    --demon-sorted     unsorted-list demon (source annotations)\n"
      << "    --step             log every monitored event\n"
      << "    --record           flight recorder: keep the last 16 events\n"
      << "    --coverage         label applications, report coverage\n"
      << "    --debug            interactive dbx-style debugger on stdin\n"
      << "    --prelude          wrap the program in the standard prelude\n"
      << "    --strategy=strict|name|need\n"
      << "    --vm               run compiled bytecode (strict only)\n"
      << "    --pe               partially evaluate, then run the residual\n"
      << "    --print-ast        show the (annotated) program\n"
      << "    --print-residual   with --pe: show the residual program\n"
      << "    --disasm           show compiled bytecode\n"
      << "    --max-steps=N      fuel limit\n"
      << "  resource governance (both program kinds):\n"
      << "    --deadline-ms=N    wall-clock budget for the run\n"
      << "    --max-bytes=N      arena byte cap\n"
      << "    --max-depth=N      continuation / recursion depth bound\n"
      << "    --monitor-fault-policy=quarantine|abort|retry\n"
      << "    --inject=throw|sleep|alloc\n"
      << "                       wrap --profile's monitor in a fault "
         "injector\n"
      << "  imperative programs:\n"
      << "    --imp              treat input as an imperative program\n"
      << "    --imp-watch=x      watchpoint demon on variable x\n"
      << "    --input=1,2,3      input stream consumed by 'read x'\n"
      << "    --imp-profile      statement profiler\n"
      << "    --imp-trace        command tracer\n";
  return 2;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](std::string_view Prefix) -> std::optional<std::string> {
      if (!startsWith(A, Prefix))
        return std::nullopt;
      return A.substr(Prefix.size());
    };
    if (!A.empty() && A[0] != '-' && O.File.empty()) {
      O.File = A;
    } else if (A == "-") {
      O.File = "-";
    } else if (A == "--repl") {
      O.Repl = true;
    } else if (A == "--imp") {
      O.Imp = true;
    } else if (A == "--trace" || startsWith(A, "--trace=")) {
      O.Trace = true;
      if (auto V = Value("--trace="))
        for (const auto &N : splitString(*V, ','))
          O.Names.push_back(N);
    } else if (A == "--profile" || startsWith(A, "--profile=")) {
      O.Profile = true;
      if (auto V = Value("--profile="))
        for (const auto &N : splitString(*V, ','))
          O.Names.push_back(N);
    } else if (A == "--cost") {
      O.Cost = true;
    } else if (A == "--alloc") {
      O.Alloc = true;
    } else if (A == "--callgraph") {
      O.CallGraph = true;
    } else if (A == "--collect") {
      O.Collect = true;
    } else if (A == "--demon-sorted") {
      O.DemonSorted = true;
    } else if (A == "--step") {
      O.Step = true;
    } else if (A == "--record") {
      O.Record = true;
    } else if (A == "--coverage") {
      O.Coverage = true;
    } else if (A == "--debug") {
      O.Debug = true;
    } else if (A == "--prelude") {
      O.Prelude = true;
    } else if (A == "--vm") {
      O.UseVM = true;
    } else if (A == "--pe") {
      O.PE = true;
    } else if (A == "--print-ast") {
      O.PrintAst = true;
    } else if (A == "--print-residual") {
      O.PrintResidual = true;
    } else if (A == "--disasm") {
      O.Disasm = true;
    } else if (auto V = Value("--strategy=")) {
      if (*V == "strict")
        O.Strat = Strategy::Strict;
      else if (*V == "name")
        O.Strat = Strategy::CallByName;
      else if (*V == "need")
        O.Strat = Strategy::CallByNeed;
      else
        return false;
    } else if (auto V = Value("--max-steps=")) {
      O.MaxSteps = std::stoull(*V);
    } else if (auto V = Value("--deadline-ms=")) {
      O.DeadlineMs = std::stoull(*V);
    } else if (auto V = Value("--max-bytes=")) {
      O.MaxBytes = std::stoull(*V);
    } else if (auto V = Value("--max-depth=")) {
      O.MaxDepth = std::stoull(*V);
    } else if (auto V = Value("--monitor-fault-policy=")) {
      if (!parseFaultPolicy(*V, O.FaultPol))
        return false;
    } else if (auto V = Value("--inject=")) {
      if (*V != "throw" && *V != "sleep" && *V != "alloc")
        return false;
      O.Inject = *V;
    } else if (auto V = Value("--imp-watch=")) {
      O.ImpWatch = *V;
    } else if (auto V = Value("--input=")) {
      for (const auto &N : splitString(*V, ','))
        if (!N.empty())
          O.ImpInput.push_back(std::stoll(N));
    } else if (A == "--imp-profile") {
      O.ImpProfile = true;
    } else if (A == "--imp-trace") {
      O.ImpTrace = true;
    } else {
      return false;
    }
  }
  return O.Repl || !O.File.empty();
}

std::optional<std::string> readInput(const std::string &File) {
  if (File == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    return SS.str();
  }
  std::ifstream In(File);
  if (!In) {
    std::cerr << "error: cannot open '" << File << "'\n";
    return std::nullopt;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<Symbol> toSymbols(const std::vector<std::string> &Names) {
  std::vector<Symbol> Out;
  for (const std::string &N : Names)
    if (!N.empty())
      Out.push_back(Symbol::intern(N));
  return Out;
}

/// The single place CLI flags become an EvalMode — the same `&` chain an
/// embedded user would write, so the two construction paths cannot skew.
/// Monitors are composed onto the returned mode by the caller.
EvalMode modeFor(const Options &O) {
  EvalMode M = StrategyTag{O.Strat} & cancelOn(GCancel) &
               onMonitorFault(O.FaultPol);
  if (O.MaxSteps)
    M = M & maxSteps(O.MaxSteps);
  if (O.DeadlineMs)
    M = M & deadlineMs(O.DeadlineMs);
  if (O.MaxBytes)
    M = M & maxArenaBytes(O.MaxBytes);
  if (O.MaxDepth)
    M = M & maxDepth(O.MaxDepth);
  if (O.UseVM)
    M = M & kVM;
  return M;
}

/// Imp runs use the same limits via the mode's RunOptions.
ResourceLimits limitsFor(const Options &O) {
  return modeFor(O).Limits;
}

void printFaults(const std::vector<MonitorFault> &Faults) {
  for (const MonitorFault &F : Faults)
    std::cerr << "monitor fault: " << F.str() << '\n';
}

FaultInjector::Config injectorConfig(const std::string &Mode) {
  FaultInjector::Config Cfg;
  Cfg.M = Mode == "sleep"   ? FaultInjector::Mode::Sleep
          : Mode == "alloc" ? FaultInjector::Mode::Allocate
                            : FaultInjector::Mode::Throw;
  Cfg.PerMille = 200;
  return Cfg;
}

int runImperative(const Options &O, const std::string &Source) {
  ImpContext Ctx;
  DiagnosticSink Diags;
  const Cmd *Program = parseImpProgram(Ctx, Source, Diags);
  if (!Program) {
    std::cerr << Diags.str() << '\n';
    return 1;
  }
  if (O.PrintAst)
    std::cout << printCmd(Program) << '\n';

  ImpStmtProfiler Prof;
  ImpTracer Trc;
  std::optional<ImpWatchMonitor> Watch;
  ImpCascade C;
  if (O.ImpProfile)
    C.use(Prof);
  if (O.ImpTrace)
    C.use(Trc);
  if (!O.ImpWatch.empty()) {
    Watch.emplace(O.ImpWatch);
    C.use(*Watch);
  }

  ImpRunOptions Opts;
  Opts.MaxSteps = O.MaxSteps;
  Opts.Limits = limitsFor(O);
  Opts.MonitorFaultPolicy = O.FaultPol;
  Opts.Input = O.ImpInput;
  ImpRunResult R = runImp(C, Program, Opts);
  printFaults(R.MonitorFaults);
  if (R.stoppedByGovernor()) {
    std::cerr << "stopped: " << outcomeName(R.St) << " after " << R.Steps
              << " steps\n";
    for (unsigned I = 0; I < C.size() && I < R.FinalStates.size(); ++I)
      std::cerr << C.monitor(I).name() << " (partial): "
                << R.FinalStates[I]->str() << '\n';
    return 1;
  }
  if (!R.Ok) {
    std::cerr << "error: " << R.Error << '\n';
    return 1;
  }
  for (const std::string &Line : R.Output)
    std::cout << Line << '\n';
  std::cout << "store:";
  for (const auto &[Name, Val] : R.Store)
    std::cout << ' ' << Name << " = " << Val << ';';
  std::cout << '\n';
  for (unsigned I = 0; I < C.size(); ++I)
    std::cout << C.monitor(I).name() << ": " << R.FinalStates[I]->str()
              << '\n';
  return 0;
}

int runFunctional(const Options &O, const std::string &Source) {
  auto P = ParsedProgram::parse(Source);
  if (!P->ok()) {
    std::cerr << P->diags().str() << '\n';
    return 1;
  }
  const Expr *Program = P->root();
  if (O.Prelude) {
    DiagnosticSink PDiags;
    Program = wrapWithPrelude(P->context(), Program, PDiags);
    if (!Program) {
      std::cerr << PDiags.str() << '\n';
      return 1;
    }
  }
  std::vector<Symbol> Names = toSymbols(O.Names);

  // Auto-annotation, one qualifier per requested monitor (Section 4.1's
  // environment-inserted annotations; qualifiers keep syntaxes disjoint).
  auto Annotate = [&](const char *Qual, bool WithParams) {
    AnnotateOptions AO;
    AO.Qualifier = Symbol::intern(Qual);
    AO.WithParams = WithParams;
    Program = annotateFunctionBodies(P->context(), Program, Names, AO);
  };
  if (O.Trace)
    Annotate("trace", /*WithParams=*/true);
  if (O.Profile)
    Annotate("profile", /*WithParams=*/false);
  if (O.Cost)
    Annotate("cost", /*WithParams=*/false);
  if (O.Alloc)
    Annotate("alloc", /*WithParams=*/false);
  if (O.CallGraph)
    Annotate("callgraph", /*WithParams=*/false);
  if (O.Record)
    Annotate("record", /*WithParams=*/true);
  unsigned NumPoints = 0;
  if (O.Coverage)
    Program = labelProgramPoints(P->context(), Program, "p",
                                 Symbol::intern("cover"), &NumPoints);

  if (O.PrintAst)
    std::cout << printExpr(Program) << '\n';

  // Level 3: specialize first if asked.
  AstContext PECtx;
  if (O.PE) {
    PEResult R = partialEvaluate(PECtx, Program);
    if (O.PrintResidual)
      std::cout << "residual: " << printExpr(R.Residual)
                << (R.GaveUp ? "   (specializer gave up)" : "") << '\n';
    Program = R.Residual;
  }

  // Assemble the mode: flags first (modeFor), then the cascade, all in
  // one EvalMode routed through the unified evaluate() entry.
  EvalMode Mode = modeFor(O);
  Cascade &C = Mode.C;
  Tracer Trc(&std::cout);
  CallProfiler Prof;
  std::optional<FaultInjector> Inj;
  if (!O.Inject.empty())
    Inj.emplace(Prof, injectorConfig(O.Inject));
  CostProfiler Cost;
  AllocProfiler Alloc;
  CallGraphMonitor Graph;
  CollectingMonitor Coll;
  Demon DemonM = Demon::unsortedLists();
  Stepper Stp;
  FlightRecorder Rec(16);
  CoverageMonitor Cov(NumPoints);
  Debugger Dbg(std::cin, std::cout);
  if (O.Trace)
    C.use(Trc);
  if (O.Profile)
    C.use(Inj ? static_cast<const Monitor &>(*Inj) : Prof);
  if (O.Cost)
    C.use(Cost);
  if (O.Alloc)
    C.use(Alloc);
  if (O.CallGraph)
    C.use(Graph);
  if (O.Collect)
    C.use(Coll);
  if (O.DemonSorted)
    C.use(DemonM);
  if (O.Step)
    C.use(Stp);
  if (O.Record)
    C.use(Rec);
  if (O.Coverage)
    C.use(Cov);
  if (O.Debug)
    C.use(Dbg);

  if (!C.empty()) {
    DiagnosticSink LintDiags;
    if (C.reportUnclaimed(Program, LintDiags))
      std::cerr << LintDiags.str() << '\n';
  }

  if (O.UseVM) {
    if (O.Strat != Strategy::Strict) {
      std::cerr << "error: --vm supports the strict strategy only\n";
      return 2;
    }
    if (O.Disasm) {
      DiagnosticSink Diags;
      if (auto CP = compileProgram(Program, Diags))
        std::cout << CP->disassemble();
    }
  }
  RunResult R = evaluate(Mode, Program);

  printFaults(R.MonitorFaults);
  if (R.stoppedByGovernor()) {
    std::cerr << "stopped: " << outcomeName(R.St) << " after " << R.Steps
              << " steps\n";
    for (unsigned I = 0; I < C.size() && I < R.FinalStates.size(); ++I) {
      if (&C.monitor(I) == &Trc)
        continue;
      std::cerr << C.monitor(I).name() << " (partial): "
                << R.FinalStates[I]->str() << '\n';
    }
    return 1;
  }
  if (!R.Ok) {
    std::cerr << "error: " << R.Error << '\n';
    return 1;
  }
  std::cout << R.ValueText << '\n';
  for (unsigned I = 0; I < C.size(); ++I) {
    // The tracer already echoed its lines live.
    if (&C.monitor(I) == &Trc)
      continue;
    std::cout << C.monitor(I).name() << ": " << R.FinalStates[I]->str()
              << '\n';
  }
  return 0;
}

/// A line-based read-eval-monitor loop. `:let f = <expr>` accumulates a
/// (possibly recursive) definition; other lines evaluate in the scope of
/// everything defined so far, under the monitors toggled with `:monitor`.
int runRepl(const Options &Base) {
  std::vector<std::pair<std::string, std::string>> Defs; // name, source.
  bool Trace = false, Profile = false;
  Strategy Strat = Base.Strat;

  std::cout << "monsem repl — :let f = <expr>, :monitor trace|profile|off,\n"
            << ":strategy strict|name|need, :defs, :quit; anything else "
               "evaluates.\n";
  std::string Line;
  while (std::cout << "monsem> " << std::flush,
         std::getline(std::cin, Line)) {
    std::string_view Trimmed = trimString(Line);
    if (Trimmed.empty())
      continue;
    if (Trimmed == ":quit" || Trimmed == ":q")
      break;
    if (Trimmed == ":defs") {
      for (const auto &[Name, Src] : Defs)
        std::cout << "  " << Name << " = " << Src << '\n';
      continue;
    }
    if (startsWith(Trimmed, ":strategy ")) {
      std::string_view V = trimString(Trimmed.substr(10));
      Strat = V == "name"   ? Strategy::CallByName
              : V == "need" ? Strategy::CallByNeed
                            : Strategy::Strict;
      std::cout << "strategy: " << strategyName(Strat) << '\n';
      continue;
    }
    if (startsWith(Trimmed, ":monitor ")) {
      std::string_view V = trimString(Trimmed.substr(9));
      if (V == "trace")
        Trace = true;
      else if (V == "profile")
        Profile = true;
      else if (V == "off")
        Trace = Profile = false;
      else
        std::cout << "unknown monitor '" << V << "'\n";
      std::cout << "monitors:" << (Trace ? " trace" : "")
                << (Profile ? " profile" : "")
                << (!Trace && !Profile ? " none" : "") << '\n';
      continue;
    }
    if (startsWith(Trimmed, ":let ")) {
      std::string_view Rest = trimString(Trimmed.substr(5));
      size_t Eq = Rest.find('=');
      if (Eq == std::string_view::npos) {
        std::cout << "expected :let <name> = <expr>\n";
        continue;
      }
      std::string Name(trimString(Rest.substr(0, Eq)));
      std::string Body(trimString(Rest.substr(Eq + 1)));
      // Validate the definition before accepting it.
      std::string Probe;
      for (const auto &[N, S] : Defs)
        Probe += "letrec " + N + " = " + S + " in ";
      Probe += "letrec " + Name + " = " + Body + " in 0";
      auto P = ParsedProgram::parse(Probe);
      if (!P->ok()) {
        std::cout << P->diags().str() << '\n';
        continue;
      }
      Defs.emplace_back(std::move(Name), std::move(Body));
      continue;
    }

    // Evaluate an expression in the accumulated scope.
    std::string Src;
    for (const auto &[N, S] : Defs)
      Src += "letrec " + N + " = " + S + " in ";
    Src += std::string(Trimmed);
    auto P = ParsedProgram::parse(Src);
    if (!P->ok()) {
      std::cout << P->diags().str() << '\n';
      continue;
    }
    const Expr *Program = P->root();
    Tracer Trc(&std::cout);
    CallProfiler Prof;
    // Same single assembly point as the batch path; only the strategy is
    // REPL-local state.
    Options ReplOpts = Base;
    ReplOpts.Strat = Strat;
    EvalMode Mode = modeFor(ReplOpts);
    Cascade &C = Mode.C;
    if (Trace) {
      AnnotateOptions AO;
      AO.Qualifier = Symbol::intern("trace");
      AO.WithParams = true;
      Program = annotateFunctionBodies(P->context(), Program, {}, AO);
      C.use(Trc);
    }
    if (Profile) {
      AnnotateOptions AO;
      AO.Qualifier = Symbol::intern("profile");
      Program = annotateFunctionBodies(P->context(), Program, {}, AO);
      C.use(Prof);
    }
    GCancel.store(false); // A ^C from a previous evaluation is spent.
    RunResult R = evaluate(Mode, Program);
    if (R.stoppedByGovernor())
      std::cout << "stopped: " << outcomeName(R.St) << " after " << R.Steps
                << " steps\n";
    else if (!R.Ok)
      std::cout << "error: " << R.Error << '\n';
    else {
      std::cout << R.ValueText << '\n';
      if (Profile)
        std::cout << "profile: "
                  << R.FinalStates[C.size() - 1]->str() << '\n';
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return usage(Argv[0]);
  std::signal(SIGINT, onInterrupt);
  if (O.Repl)
    return runRepl(O);
  std::optional<std::string> Source = readInput(O.File);
  if (!Source)
    return 1;
  return O.Imp ? runImperative(O, *Source) : runFunctional(O, *Source);
}
