//===- tools/monsem_cli.cpp - Command-line monitoring environment ----------===//
//
// The user-facing face of the library: run an L_lambda program (or, with
// --imp, an imperative program) under any combination of monitors, in the
// way Section 4.1 envisions — the environment inserts the annotations when
// the user asks to trace or profile a function; hand-written annotations
// in the source work too.
//
//   monsem examples/programs/fac.lam --trace --profile
//   monsem examples/programs/fac.lam --pe --print-residual
//   monsem examples/programs/gcd.imp --imp --imp-watch=a
//   echo 'print 1+2' | monsem - --imp
//
//===----------------------------------------------------------------------===//

#include "compile/AotEmit.h"
#include "compile/Compiler.h"
#include "compile/VM.h"
#include "imp/ImpMachine.h"
#include "imp/ImpMonitors.h"
#include "imp/ImpParser.h"
#include "interp/Eval.h"
#include "monitors/AllocProfiler.h"
#include "monitors/CallGraph.h"
#include "monitors/Collecting.h"
#include "monitors/CostProfiler.h"
#include "monitors/Coverage.h"
#include "monitors/Debugger.h"
#include "monitors/Demon.h"
#include "monitors/FaultInjector.h"
#include "monitors/FlightRecorder.h"
#include "monitors/Profiler.h"
#include "monitors/Stepper.h"
#include "monitors/Tracer.h"
#include "pe/PartialEval.h"
#include "server/Serve.h"
#include "server/Session.h"
#include "support/StrUtils.h"
#include "syntax/Prelude.h"
#include "syntax/Annotator.h"
#include "syntax/Printer.h"

#include <atomic>
#include <csignal>
#include <ctime>
#include <fstream>
#include <iostream>
#include <sstream>

#include <sys/wait.h>
#include <unistd.h>

using namespace monsem;

namespace {

/// Set by the SIGINT handler; every run loop polls it through the
/// governor's cancellation hook, so ^C ends the run with partial monitor
/// states (and, with --checkpoint-out, a final resumable checkpoint)
/// instead of killing the process.
std::atomic<bool> GCancel{false};
/// time() of the first SIGINT, 0 before it. A second SIGINT within the
/// grace window hard-exits: the polite path already had its chance.
std::atomic<std::time_t> GFirstInt{0};
constexpr std::time_t kInterruptGraceSeconds = 10;

/// First ^C: raise the cooperative flag and let the governor wind the run
/// down. Second ^C within the grace window: the run is stuck (a hung
/// monitor, a pathological program) — _exit immediately with the
/// conventional 128+SIGINT status. Only async-signal-safe calls here.
void onInterrupt(int) {
  std::time_t Now = std::time(nullptr);
  std::time_t First = GFirstInt.load(std::memory_order_relaxed);
  if (First != 0 && Now - First <= kInterruptGraceSeconds)
    _exit(130);
  GFirstInt.store(Now, std::memory_order_relaxed);
  GCancel.store(true, std::memory_order_relaxed);
}

// The exit-code contract (asserted by tests/cli_test.cpp) lives in
// support/Governor.h as monsem::exitCodeFor — shared with `monsem serve`,
// whose JSONL outcome records carry the same codes.

struct Options {
  std::string File;
  bool Repl = false;
  bool Serve = false;          ///< `monsem serve` subcommand.
  unsigned Workers = 4;        ///< serve: --workers=N.
  uint64_t QuantumSteps = 1 << 16; ///< serve: --quantum-steps=N.
  std::string ListenUnix;      ///< serve: --listen-unix=PATH.
  int ListenTcp = -1;          ///< serve: --listen-tcp=PORT (0 picks).
  uint64_t MaxLiveRuns = 0;    ///< serve: --max-live-runs=N (0 uncapped).
  uint64_t MaxRunsPerTenant = 0;   ///< serve: --max-runs-per-tenant=N.
  uint64_t MaxResidentBytes = 0;   ///< serve: --max-resident-bytes=N.
  uint64_t MaxRequestBytes = 1 << 20;  ///< serve: --max-request-bytes=N.
  uint64_t MaxOutboxBytes = 8u << 20;  ///< serve: --max-outbox-bytes=N.
  uint64_t IdleTimeoutMs = 0;      ///< serve: --idle-timeout-ms=N.
  uint64_t SlowReaderMs = 10000;   ///< serve: --slow-reader-ms=N.
  uint64_t SockSndbufBytes = 0;    ///< serve: --sock-sndbuf-bytes=N.
  bool Imp = false;
  bool Trace = false;
  bool Profile = false;
  bool Cost = false;
  bool Alloc = false;
  bool CallGraph = false;
  bool Collect = false;
  bool DemonSorted = false;
  bool Step = false;
  bool Record = false;
  bool Coverage = false;
  bool Debug = false;
  Backend B = Backend::CEK; ///< --backend=cek|vm|vm-reg|vm-aot|direct.
  std::string AotCacheDir;  ///< --aot-cache=DIR (vm-aot shared objects).
  bool PE = false;
  bool Prelude = false;
  bool PrintAst = false;
  bool PrintResidual = false;
  bool Disasm = false;
  Strategy Strat = Strategy::Strict;
  uint64_t MaxSteps = 0;
  uint64_t DeadlineMs = 0;
  uint64_t MaxBytes = 0;
  uint64_t MaxDepth = 0;
  FaultPolicy FaultPol = FaultPolicy::Quarantine;
  std::string CheckpointOut;   ///< --checkpoint-out=PATH.
  uint64_t CheckpointEvery = 0; ///< --checkpoint-every-n-steps=N.
  std::string ResumePath;      ///< --resume=PATH (a checkpoint file).
  std::string JournalPath;     ///< --journal=PATH.
  std::string ResumeJournal;   ///< --resume-journal=PATH.
  std::string FailPoints;      ///< --failpoints=SPEC (see FailPoint.h).
  OnDurabilityFailure DurPol = OnDurabilityFailure::RetryThenDegrade;
  unsigned DurBudget = 3;       ///< --durability-retry-budget=N.
  bool Supervise = false;       ///< --supervise (requires --journal).
  unsigned MaxRestarts = 3;     ///< --max-restarts=N.
  uint64_t RestartBackoffMs = 50; ///< --restart-backoff-ms=N (base).
  uint64_t RecordCapacity = 16; ///< --record-capacity=N (>0).
  std::string Inject; ///< "", "throw", "sleep", or "alloc".
  std::string ImpWatch;
  std::vector<int64_t> ImpInput;
  bool ImpProfile = false;
  bool ImpTrace = false;
  std::vector<std::string> Names; ///< Functions to annotate ("" = all).
};

/// One line describing what each backend needs from this build and
/// whether it has it, shown in --help and after an unknown-backend error
/// so the valid set is never a guessing game.
std::string backendAvailability() {
  std::string S = "cek, vm, vm-reg, direct: always available; ";
  S += "threaded dispatch ";
  S += vmThreadedDispatchAvailable() ? "available" : "unavailable";
#ifdef MONSEM_VALUE_BOXED
  S += "; boxed values";
#else
  S += "; tagged values";
#endif
  S += "; vm-aot ";
  S += aotAvailable() ? "available (" + aotCompilerId() + ")"
                      : "unavailable (no C compiler; degrades to vm-reg)";
  return S;
}

int usage(const char *Argv0) {
  std::cerr
      << "usage: " << Argv0 << " <file | - | --repl | serve> [options]\n"
      << "  functional programs (default):\n"
      << "    --trace[=f,g]      trace calls (auto-annotates functions)\n"
      << "    --profile[=f,g]    count calls per function\n"
      << "    --cost             inclusive step-cost profile per function\n"
      << "    --alloc            inclusive allocation profile per function\n"
      << "    --callgraph        dynamic call graph over functions\n"
      << "    --collect          collecting monitor (source annotations)\n"
      << "    --demon-sorted     unsorted-list demon (source annotations)\n"
      << "    --step             log every monitored event\n"
      << "    --record           flight recorder: keep the last N events\n"
      << "    --record-capacity=N  flight-recorder ring size (default 16)\n"
      << "    --coverage         label applications, report coverage\n"
      << "    --debug            interactive dbx-style debugger on stdin\n"
      << "    --prelude          wrap the program in the standard prelude\n"
      << "    --strategy=strict|name|need\n"
      << "    --backend=cek|vm|vm-reg|vm-aot|direct\n"
      << "                       evaluator: CEK machine (default), stack\n"
      << "                       bytecode VM, register bytecode VM, native\n"
      << "                       code over the register tier, or the direct\n"
      << "                       interpreter (VMs are strict only)\n"
      << "                       this build: " << backendAvailability() << "\n"
      << "    --aot-cache=DIR    vm-aot shared-object cache directory\n"
      << "                       (default: per-user under TMPDIR)\n"
      << "    --vm               shorthand for --backend=vm\n"
      << "    --pe               partially evaluate, then run the residual\n"
      << "    --print-ast        show the (annotated) program\n"
      << "    --print-residual   with --pe: show the residual program\n"
      << "    --disasm           show compiled bytecode\n"
      << "    --max-steps=N      fuel limit\n"
      << "  resource governance (both program kinds):\n"
      << "    --deadline-ms=N    wall-clock budget for the run\n"
      << "    --max-bytes=N      arena byte cap\n"
      << "    --max-depth=N      continuation / recursion depth bound\n"
      << "    --monitor-fault-policy=quarantine|abort|retry\n"
      << "  checkpoint / resume (functional programs):\n"
      << "    --checkpoint-out=F write a checkpoint to F when the governor\n"
      << "                       (or ^C) stops the run; resumable later\n"
      << "    --checkpoint-every-n-steps=N\n"
      << "                       also checkpoint periodically every N steps\n"
      << "    --resume=F         resume from checkpoint file F (same program\n"
      << "                       and monitor flags as the original run)\n"
      << "    --journal=F        crash-safe journal: append every monitor\n"
      << "                       event and checkpoint to F as the run goes\n"
      << "    --resume-journal=F print the journal's event tail, then resume\n"
      << "                       from its last durable checkpoint\n"
      << "  durability and fault injection (functional programs):\n"
      << "    --on-durability-failure=abort|degrade|retry\n"
      << "                       what a failed durable write (journal,\n"
      << "                       checkpoint) does to the run (default retry)\n"
      << "    --durability-retry-budget=N\n"
      << "                       sink failures tolerated under retry before\n"
      << "                       degrading to best-effort (default 3)\n"
      << "    --supervise        run under a supervisor: on a crash, resume\n"
      << "                       from the journal's last durable checkpoint\n"
      << "                       with backoff (requires --journal)\n"
      << "    --max-restarts=N   supervisor restart budget (default 3)\n"
      << "    --restart-backoff-ms=N\n"
      << "                       base supervisor backoff, doubled per\n"
      << "                       restart (default 50)\n"
      << "    --failpoints=SPEC  deterministic fault injection into the\n"
      << "                       durable-I/O sites (testing; also read from\n"
      << "                       the MONSEM_FAILPOINTS environment variable;\n"
      << "                       e.g. 'checkpoint.sync=err(ENOSPC)*1')\n"
      << "    --inject=throw|sleep|alloc\n"
      << "                       wrap --profile's monitor in a fault "
         "injector\n"
      << "  serve mode (monsem serve):\n"
      << "    serve              run the JSONL monitoring daemon: requests\n"
      << "                       on stdin (or a socket), responses on\n"
      << "                       stdout; see DESIGN.md section 6\n"
      << "    --workers=N        worker threads (default 4)\n"
      << "    --quantum-steps=N  scheduler quantum in transitions\n"
      << "                       (default 65536; 0 = no time-slicing)\n"
      << "    --listen-unix=PATH accept clients on a unix socket\n"
      << "    --listen-tcp=PORT  accept clients on 127.0.0.1:PORT (0 picks\n"
      << "                       a free port, announced on stdout)\n"
      << "    --journal=DIR      grant durability: persist requests and\n"
      << "                       journal events under DIR, auto-resume\n"
      << "                       interrupted durable runs on restart\n"
      << "    --max-live-runs=N  admission cap on unfinished runs held by\n"
      << "                       the daemon; over-cap submits get a\n"
      << "                       structured 'overloaded' response (0 = off)\n"
      << "    --max-runs-per-tenant=N\n"
      << "                       the same cap per tenant (0 = off)\n"
      << "    --max-resident-bytes=N\n"
      << "                       evict the coldest paused runs to disk when\n"
      << "                       resident checkpoint bytes exceed N (0=off)\n"
      << "    --max-request-bytes=N\n"
      << "                       cap on one request line (default 1MiB);\n"
      << "                       over it: error record + disconnect\n"
      << "    --max-outbox-bytes=N\n"
      << "                       per-client outbound buffer bound (default\n"
      << "                       8MiB); overflowing readers are dropped\n"
      << "    --idle-timeout-ms=N\n"
      << "                       disconnect idle socket clients (0 = never)\n"
      << "    --slow-reader-ms=N disconnect a client whose socket has been\n"
      << "                       write-blocked this long (default 10000)\n"
      << "    --sock-sndbuf-bytes=N\n"
      << "                       SO_SNDBUF for client sockets; bounds kernel\n"
      << "                       per-client memory (0 = kernel default)\n"
      << "    (--max-steps, --deadline-ms, --max-bytes, --max-depth become\n"
      << "     per-run caps that client requests may tighten, not exceed)\n"
      << "  imperative programs:\n"
      << "    --imp              treat input as an imperative program\n"
      << "    --imp-watch=x      watchpoint demon on variable x\n"
      << "    --input=1,2,3      input stream consumed by 'read x'\n"
      << "    --imp-profile      statement profiler\n"
      << "    --imp-trace        command tracer\n";
  return 2;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto Value = [&](std::string_view Prefix) -> std::optional<std::string> {
      if (!startsWith(A, Prefix))
        return std::nullopt;
      return A.substr(Prefix.size());
    };
    if (A == "serve" && !O.Serve && O.File.empty()) {
      O.Serve = true;
    } else if (!A.empty() && A[0] != '-' && O.File.empty()) {
      O.File = A;
    } else if (A == "-") {
      O.File = "-";
    } else if (A == "--repl") {
      O.Repl = true;
    } else if (A == "--imp") {
      O.Imp = true;
    } else if (A == "--trace" || startsWith(A, "--trace=")) {
      O.Trace = true;
      if (auto V = Value("--trace="))
        for (const auto &N : splitString(*V, ','))
          O.Names.push_back(N);
    } else if (A == "--profile" || startsWith(A, "--profile=")) {
      O.Profile = true;
      if (auto V = Value("--profile="))
        for (const auto &N : splitString(*V, ','))
          O.Names.push_back(N);
    } else if (A == "--cost") {
      O.Cost = true;
    } else if (A == "--alloc") {
      O.Alloc = true;
    } else if (A == "--callgraph") {
      O.CallGraph = true;
    } else if (A == "--collect") {
      O.Collect = true;
    } else if (A == "--demon-sorted") {
      O.DemonSorted = true;
    } else if (A == "--step") {
      O.Step = true;
    } else if (A == "--record") {
      O.Record = true;
    } else if (A == "--coverage") {
      O.Coverage = true;
    } else if (A == "--debug") {
      O.Debug = true;
    } else if (A == "--prelude") {
      O.Prelude = true;
    } else if (A == "--vm") {
      std::cerr << "warning: --vm is deprecated; use --backend=vm\n";
      O.B = Backend::VM;
    } else if (auto V = Value("--workers=")) {
      O.Workers = static_cast<unsigned>(std::stoul(*V));
    } else if (auto V = Value("--quantum-steps=")) {
      O.QuantumSteps = std::stoull(*V);
    } else if (auto V = Value("--listen-unix=")) {
      O.ListenUnix = *V;
    } else if (auto V = Value("--listen-tcp=")) {
      O.ListenTcp = std::stoi(*V);
    } else if (auto V = Value("--max-live-runs=")) {
      O.MaxLiveRuns = std::stoull(*V);
    } else if (auto V = Value("--max-runs-per-tenant=")) {
      O.MaxRunsPerTenant = std::stoull(*V);
    } else if (auto V = Value("--max-resident-bytes=")) {
      O.MaxResidentBytes = std::stoull(*V);
    } else if (auto V = Value("--max-request-bytes=")) {
      O.MaxRequestBytes = std::stoull(*V);
    } else if (auto V = Value("--max-outbox-bytes=")) {
      O.MaxOutboxBytes = std::stoull(*V);
    } else if (auto V = Value("--idle-timeout-ms=")) {
      O.IdleTimeoutMs = std::stoull(*V);
    } else if (auto V = Value("--slow-reader-ms=")) {
      O.SlowReaderMs = std::stoull(*V);
    } else if (auto V = Value("--sock-sndbuf-bytes=")) {
      O.SockSndbufBytes = std::stoull(*V);
    } else if (auto V = Value("--backend=")) {
      if (*V == "cek")
        O.B = Backend::CEK;
      else if (*V == "vm")
        O.B = Backend::VM;
      else if (*V == "vm-reg")
        O.B = Backend::VMRegister;
      else if (*V == "vm-aot")
        O.B = Backend::VMAot;
      else if (*V == "direct")
        O.B = Backend::Direct;
      else {
        std::cerr << "error: unknown backend '" << *V
                  << "' (valid: cek, vm, vm-reg, vm-aot, direct)\n"
                  << "note: " << backendAvailability() << '\n';
        return false;
      }
    } else if (auto V = Value("--aot-cache=")) {
      O.AotCacheDir = *V;
    } else if (A == "--pe") {
      O.PE = true;
    } else if (A == "--print-ast") {
      O.PrintAst = true;
    } else if (A == "--print-residual") {
      O.PrintResidual = true;
    } else if (A == "--disasm") {
      O.Disasm = true;
    } else if (auto V = Value("--strategy=")) {
      if (*V == "strict")
        O.Strat = Strategy::Strict;
      else if (*V == "name")
        O.Strat = Strategy::CallByName;
      else if (*V == "need")
        O.Strat = Strategy::CallByNeed;
      else
        return false;
    } else if (auto V = Value("--max-steps=")) {
      O.MaxSteps = std::stoull(*V);
    } else if (auto V = Value("--deadline-ms=")) {
      O.DeadlineMs = std::stoull(*V);
    } else if (auto V = Value("--max-bytes=")) {
      O.MaxBytes = std::stoull(*V);
    } else if (auto V = Value("--max-depth=")) {
      O.MaxDepth = std::stoull(*V);
    } else if (auto V = Value("--monitor-fault-policy=")) {
      if (!parseFaultPolicy(*V, O.FaultPol))
        return false;
    } else if (auto V = Value("--checkpoint-out=")) {
      O.CheckpointOut = *V;
    } else if (auto V = Value("--checkpoint-every-n-steps=")) {
      O.CheckpointEvery = std::stoull(*V);
    } else if (auto V = Value("--resume=")) {
      O.ResumePath = *V;
    } else if (auto V = Value("--journal=")) {
      O.JournalPath = *V;
    } else if (auto V = Value("--resume-journal=")) {
      O.ResumeJournal = *V;
    } else if (auto V = Value("--failpoints=")) {
      std::string Err;
      if (!installFailPoints(*V, Err)) {
        std::cerr << "error: bad --failpoints spec: " << Err << '\n';
        return false;
      }
      O.FailPoints = *V;
    } else if (auto V = Value("--on-durability-failure=")) {
      if (!parseDurabilityPolicy(*V, O.DurPol)) {
        std::cerr << "error: unknown durability policy '" << *V
                  << "' (valid: abort, degrade, retry)\n";
        return false;
      }
    } else if (auto V = Value("--durability-retry-budget=")) {
      O.DurBudget = static_cast<unsigned>(std::stoul(*V));
    } else if (A == "--supervise") {
      O.Supervise = true;
    } else if (auto V = Value("--max-restarts=")) {
      O.MaxRestarts = static_cast<unsigned>(std::stoul(*V));
    } else if (auto V = Value("--restart-backoff-ms=")) {
      O.RestartBackoffMs = std::stoull(*V);
    } else if (auto V = Value("--record-capacity=")) {
      O.RecordCapacity = std::stoull(*V);
      if (O.RecordCapacity == 0) {
        std::cerr << "error: --record-capacity must be positive\n";
        return false;
      }
    } else if (auto V = Value("--inject=")) {
      if (*V != "throw" && *V != "sleep" && *V != "alloc")
        return false;
      O.Inject = *V;
    } else if (auto V = Value("--imp-watch=")) {
      O.ImpWatch = *V;
    } else if (auto V = Value("--input=")) {
      for (const auto &N : splitString(*V, ','))
        if (!N.empty())
          O.ImpInput.push_back(std::stoll(N));
    } else if (A == "--imp-profile") {
      O.ImpProfile = true;
    } else if (A == "--imp-trace") {
      O.ImpTrace = true;
    } else {
      return false;
    }
  }
  return O.Repl || O.Serve || !O.File.empty();
}

std::optional<std::string> readInput(const std::string &File) {
  if (File == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    return SS.str();
  }
  std::ifstream In(File);
  if (!In) {
    std::cerr << "error: cannot open '" << File << "'\n";
    return std::nullopt;
  }
  std::ostringstream SS;
  SS << In.rdbuf();
  return SS.str();
}

std::vector<Symbol> toSymbols(const std::vector<std::string> &Names) {
  std::vector<Symbol> Out;
  for (const std::string &N : Names)
    if (!N.empty())
      Out.push_back(Symbol::intern(N));
  return Out;
}

/// The single place CLI flags become an EvalMode — the same `&` chain an
/// embedded user would write, so the two construction paths cannot skew.
/// Monitors are composed onto the returned mode by the caller. When a
/// DurabilityTracker is passed, the checkpoint file sink reports its
/// failures into it (so the policy — abort / degrade / retry — governs the
/// file sink exactly like the journal), and the tracker becomes the run's
/// arbiter.
EvalMode modeFor(const Options &O, DurabilityTracker *Tracker = nullptr) {
  EvalMode M = StrategyTag{O.Strat} & cancelOn(GCancel) &
               onMonitorFault(O.FaultPol) &
               onDurabilityFailure(O.DurPol, O.DurBudget);
  M.Durability = Tracker;
  if (O.MaxSteps)
    M = M & maxSteps(O.MaxSteps);
  if (O.DeadlineMs)
    M = M & deadlineMs(O.DeadlineMs);
  if (O.MaxBytes)
    M = M & maxArenaBytes(O.MaxBytes);
  if (O.MaxDepth)
    M = M & maxDepth(O.MaxDepth);
  if (O.B == Backend::VM)
    M = M & kVM;
  else if (O.B == Backend::VMRegister)
    M = M & kVMReg;
  else if (O.B == Backend::VMAot)
    M = M & kVMAot;
  else if (O.B == Backend::Direct)
    M = M & kDirect;
  if (!O.AotCacheDir.empty())
    M.AotCacheDir = O.AotCacheDir;
  if (!O.CheckpointOut.empty()) {
    std::string Path = O.CheckpointOut;
    M = M & checkpointInto([Path, Tracker](const Checkpoint &CK) {
          std::string Err;
          if (CK.saveFile(Path, Err))
            return;
          if (Tracker)
            Tracker->report("checkpoint", Err, CK.header().SavedSteps);
          else
            std::cerr << "warning: cannot write checkpoint to '" << Path
                      << "': " << Err << '\n';
        });
  }
  if (O.CheckpointEvery)
    M = M & checkpointEveryNSteps(O.CheckpointEvery);
  return M;
}

/// Imp runs use the same limits via the mode's RunOptions.
ResourceLimits limitsFor(const Options &O) {
  return modeFor(O).Limits;
}

void printFaults(const std::vector<MonitorFault> &Faults) {
  for (const MonitorFault &F : Faults)
    std::cerr << "monitor fault: " << F.str() << '\n';
}

void printDurabilityFaults(const std::vector<DurabilityFault> &Faults) {
  // F.str() already carries the "durability fault at <site>" prefix.
  for (const DurabilityFault &F : Faults)
    std::cerr << F.str() << '\n';
}

FaultInjector::Config injectorConfig(const std::string &Mode) {
  FaultInjector::Config Cfg;
  Cfg.M = Mode == "sleep"   ? FaultInjector::Mode::Sleep
          : Mode == "alloc" ? FaultInjector::Mode::Allocate
                            : FaultInjector::Mode::Throw;
  Cfg.PerMille = 200;
  return Cfg;
}

int runImperative(const Options &O, const std::string &Source) {
  ImpContext Ctx;
  DiagnosticSink Diags;
  const Cmd *Program = parseImpProgram(Ctx, Source, Diags);
  if (!Program) {
    std::cerr << Diags.str() << '\n';
    return exitCodeFor(Outcome::Error);
  }
  if (O.PrintAst)
    std::cout << printCmd(Program) << '\n';

  ImpStmtProfiler Prof;
  ImpTracer Trc;
  std::optional<ImpWatchMonitor> Watch;
  ImpCascade C;
  if (O.ImpProfile)
    C.use(Prof);
  if (O.ImpTrace)
    C.use(Trc);
  if (!O.ImpWatch.empty()) {
    Watch.emplace(O.ImpWatch);
    C.use(*Watch);
  }

  ImpRunOptions Opts;
  Opts.MaxSteps = O.MaxSteps;
  Opts.Limits = limitsFor(O);
  Opts.MonitorFaultPolicy = O.FaultPol;
  Opts.Input = O.ImpInput;
  ImpRunResult R = runImp(C, Program, Opts);
  printFaults(R.MonitorFaults);
  if (R.stoppedByGovernor()) {
    std::cerr << "stopped: " << outcomeName(R.St) << " after " << R.Steps
              << " steps\n";
    for (unsigned I = 0; I < C.size() && I < R.FinalStates.size(); ++I)
      std::cerr << C.monitor(I).name() << " (partial): "
                << R.FinalStates[I]->str() << '\n';
    return exitCodeFor(R.St);
  }
  if (!R.Ok) {
    std::cerr << "error: " << R.Error << '\n';
    return exitCodeFor(Outcome::Error);
  }
  for (const std::string &Line : R.Output)
    std::cout << Line << '\n';
  std::cout << "store:";
  for (const auto &[Name, Val] : R.Store)
    std::cout << ' ' << Name << " = " << Val << ';';
  std::cout << '\n';
  for (unsigned I = 0; I < C.size(); ++I)
    std::cout << C.monitor(I).name() << ": " << R.FinalStates[I]->str()
              << '\n';
  return 0;
}

int runFunctional(const Options &O, const std::string &Source) {
  auto P = ParsedProgram::parse(Source);
  if (!P->ok()) {
    std::cerr << P->diags().str() << '\n';
    return exitCodeFor(Outcome::Error);
  }
  const Expr *Program = P->root();
  if (O.Prelude) {
    DiagnosticSink PDiags;
    Program = wrapWithPrelude(P->context(), Program, PDiags);
    if (!Program) {
      std::cerr << PDiags.str() << '\n';
      return exitCodeFor(Outcome::Error);
    }
  }
  std::vector<Symbol> Names = toSymbols(O.Names);

  // Auto-annotation, one qualifier per requested monitor (Section 4.1's
  // environment-inserted annotations; qualifiers keep syntaxes disjoint).
  auto Annotate = [&](const char *Qual, bool WithParams) {
    AnnotateOptions AO;
    AO.Qualifier = Symbol::intern(Qual);
    AO.WithParams = WithParams;
    Program = annotateFunctionBodies(P->context(), Program, Names, AO);
  };
  if (O.Trace)
    Annotate("trace", /*WithParams=*/true);
  if (O.Profile)
    Annotate("profile", /*WithParams=*/false);
  if (O.Cost)
    Annotate("cost", /*WithParams=*/false);
  if (O.Alloc)
    Annotate("alloc", /*WithParams=*/false);
  if (O.CallGraph)
    Annotate("callgraph", /*WithParams=*/false);
  if (O.Record)
    Annotate("record", /*WithParams=*/true);
  unsigned NumPoints = 0;
  if (O.Coverage)
    Program = labelProgramPoints(P->context(), Program, "p",
                                 Symbol::intern("cover"), &NumPoints);

  if (O.PrintAst)
    std::cout << printExpr(Program) << '\n';

  // Level 3: specialize first if asked.
  AstContext PECtx;
  if (O.PE) {
    PEResult R = partialEvaluate(PECtx, Program);
    if (O.PrintResidual)
      std::cout << "residual: " << printExpr(R.Residual)
                << (R.GaveUp ? "   (specializer gave up)" : "") << '\n';
    Program = R.Residual;
  }

  // Assemble the mode: flags first (modeFor), then the cascade, all in
  // one EvalMode routed through the unified evaluate() entry. The tracker
  // arbitrates every durable sink of this run, including the checkpoint
  // file sink modeFor builds.
  DurabilityTracker Tracker(O.DurPol, O.DurBudget);
  EvalMode Mode = modeFor(O, &Tracker);

  // Resume: from an explicit checkpoint file, or from the last durable
  // checkpoint in a journal (after replaying its event tail, so the user
  // sees what the crashed run was doing).
  Checkpoint CK; // Must outlive evaluate().
  if (!O.ResumeJournal.empty()) {
    JournalRecovery Rec = recoverJournal(O.ResumeJournal);
    if (!Rec.Opened) {
      std::cerr << "error: cannot read journal '" << O.ResumeJournal
                << "'\n";
      return 1;
    }
    std::cerr << "journal: " << Rec.TotalEvents << " events";
    if (Rec.TornBytes)
      std::cerr << ", " << Rec.TornBytes << " torn trailing bytes discarded";
    std::cerr << "; last events:\n";
    for (const JournalEvent &E : Rec.Tail)
      std::cerr << "  [step " << E.Step << "] " << E.Text << '\n';
    if (Rec.LastCheckpoint.empty()) {
      std::cerr << "error: journal has no durable checkpoint to resume "
                   "from\n";
      return 1;
    }
    std::string Err;
    CK = Checkpoint::fromBytes(Rec.LastCheckpoint, Err);
    if (!CK.valid()) {
      std::cerr << "error: journal checkpoint is unusable: " << Err << '\n';
      return 1;
    }
    std::cerr << "resuming from step " << CK.header().SavedSteps << '\n';
  } else if (!O.ResumePath.empty()) {
    std::string Err;
    CK = Checkpoint::loadFile(O.ResumePath, Err);
    if (!CK.valid()) {
      std::cerr << "error: cannot load checkpoint '" << O.ResumePath
                << "': " << Err << '\n';
      return 1;
    }
  }
  if (CK.valid()) {
    // Backend and strategy are recorded in the checkpoint; adopt them so
    // `--resume=F` alone continues the run the way it was started. The
    // monitor flags still have to match (the monitor section is checked
    // name-by-name when the machine restores).
    Mode = Mode & resumeFrom(CK);
    // A VM checkpoint is tier-portable: an explicit --backend=vm-reg or
    // --backend=vm-aot keeps that tier, anything else resumes on the
    // stack VM.
    if (CK.header().Backend == CheckpointBackend::VM) {
      if (Mode.B != Backend::VMRegister && Mode.B != Backend::VMAot)
        Mode.B = Backend::VM;
    } else {
      Mode.B = Backend::CEK;
    }
    Mode.Strat = static_cast<Strategy>(CK.header().Strategy);
  }

  // Crash-safe journal: every probe event and emitted checkpoint is
  // appended (and flushed) as the run goes, so a kill -9 still leaves a
  // usable trail. Arming a journal also arms the stop-boundary checkpoint.
  std::unique_ptr<Journal> J;
  if (!O.JournalPath.empty()) {
    std::string Err;
    J = Journal::open(O.JournalPath, Err);
    if (!J) {
      std::cerr << "error: cannot open journal '" << O.JournalPath
                << "': " << Err << '\n';
      return 1;
    }
    Mode = Mode & journalInto(*J);
    Mode.CheckpointOnStop = true;
  }

  Cascade &C = Mode.C;
  Tracer Trc(&std::cout);
  CallProfiler Prof;
  std::optional<FaultInjector> Inj;
  if (!O.Inject.empty())
    Inj.emplace(Prof, injectorConfig(O.Inject));
  CostProfiler Cost;
  AllocProfiler Alloc;
  CallGraphMonitor Graph;
  CollectingMonitor Coll;
  Demon DemonM = Demon::unsortedLists();
  Stepper Stp;
  FlightRecorder Rec(O.RecordCapacity);
  CoverageMonitor Cov(NumPoints);
  Debugger Dbg(std::cin, std::cout);
  if (O.Trace)
    C.use(Trc);
  if (O.Profile)
    C.use(Inj ? static_cast<const Monitor &>(*Inj) : Prof);
  if (O.Cost)
    C.use(Cost);
  if (O.Alloc)
    C.use(Alloc);
  if (O.CallGraph)
    C.use(Graph);
  if (O.Collect)
    C.use(Coll);
  if (O.DemonSorted)
    C.use(DemonM);
  if (O.Step)
    C.use(Stp);
  if (O.Record)
    C.use(Rec);
  if (O.Coverage)
    C.use(Cov);
  if (O.Debug)
    C.use(Dbg);

  if (!C.empty()) {
    DiagnosticSink LintDiags;
    if (C.reportUnclaimed(Program, LintDiags))
      std::cerr << LintDiags.str() << '\n';
  }

  if (O.B == Backend::VM || O.B == Backend::VMRegister ||
      O.B == Backend::VMAot) {
    if (O.Strat != Strategy::Strict) {
      std::cerr << "error: the bytecode backends support the strict "
                   "strategy only\n";
      return 2;
    }
    if (O.Disasm) {
      DiagnosticSink Diags;
      if (auto CP = compileProgram(Program, Diags)) {
        // Under the register backends, show the program the way that tier
        // runs it; fall back to the stack listing if lowering declines.
        // vm-aot additionally shows the C the emitter would hand to the
        // system compiler for the eligible leaf blocks.
        if (O.B == Backend::VMRegister || O.B == Backend::VMAot) {
          if (auto RP = lowerToRegisters(*CP)) {
            std::cout << RP->disassemble();
            if (O.B == Backend::VMAot)
              std::cout << '\n' << aotEmitSource(*RP);
          } else {
            std::cout << CP->disassemble();
          }
        } else {
          std::cout << CP->disassemble();
        }
      }
    }
  }
  // One run on the embedding API the server multiplexes through: a
  // single-worker, unsliced Session is exactly a synchronous evaluate(),
  // so the CLI exercises the same code path `monsem serve` scales up.
  // (Mode stays live — the cascade reference below prints final states.)
  Session Sess;
  RunResult R = Sess.submit(Mode, Program).outcome();

  printFaults(R.MonitorFaults);
  printDurabilityFaults(R.DurabilityFaults);
  if (R.stoppedByGovernor()) {
    std::cerr << "stopped: " << outcomeName(R.St) << " after " << R.Steps
              << " steps\n";
    if (!O.CheckpointOut.empty())
      std::cerr << "checkpoint written to '" << O.CheckpointOut
                << "'; resume with --resume=" << O.CheckpointOut << '\n';
    for (unsigned I = 0; I < C.size() && I < R.FinalStates.size(); ++I) {
      if (&C.monitor(I) == &Trc)
        continue;
      std::cerr << C.monitor(I).name() << " (partial): "
                << R.FinalStates[I]->str() << '\n';
    }
    return exitCodeFor(R.St);
  }
  if (!R.Ok) {
    std::cerr << "error: " << R.Error << '\n';
    return exitCodeFor(Outcome::Error);
  }
  std::cout << R.ValueText << '\n';
  for (unsigned I = 0; I < C.size(); ++I) {
    // The tracer already echoed its lines live.
    if (&C.monitor(I) == &Trc)
      continue;
    std::cout << C.monitor(I).name() << ": " << R.FinalStates[I]->str()
              << '\n';
  }
  return 0;
}

/// `--supervise`: run the functional path in a forked child and, when the
/// child *crashes* — dies on a signal or exits with the injected-crash
/// status (kFailPointCrashExit) — resume it from the journal's last durable
/// checkpoint with exponential backoff, up to --max-restarts times. Normal
/// exits (including governor stops and ordinary errors) pass through
/// unchanged: the supervisor restarts crashes, it does not retry failures.
/// Convergence under deterministic crash injection: each attempt is a fresh
/// process whose failpoint counters restart, but checkpoints land earlier
/// in the attempt than the crash re-fires, so every restart begins strictly
/// further along; the final attempt reproduces the uninterrupted answer,
/// cumulative step count and monitor states exactly (that is what
/// checkpoint/resume guarantees, and tests/cli_test.cpp asserts it).
int runSupervised(Options O, const std::string &Source) {
  if (O.JournalPath.empty()) {
    std::cerr << "error: --supervise requires --journal=F (the journal is "
                 "what crash recovery resumes from)\n";
    return 2;
  }
  unsigned Restarts = 0;
  for (;;) {
    // Flush before fork so the child's stdio buffers start empty (no
    // double-printed parent bytes).
    std::cout.flush();
    std::cerr.flush();
    pid_t Pid = fork();
    if (Pid < 0) {
      std::cerr << "error: fork failed\n";
      return 1;
    }
    if (Pid == 0) {
      int Code = runFunctional(O, Source);
      std::cout.flush();
      std::cerr.flush();
      _exit(Code);
    }
    int Status = 0;
    if (waitpid(Pid, &Status, 0) < 0) {
      std::cerr << "error: waitpid failed\n";
      return 1;
    }
    bool Crashed =
        WIFSIGNALED(Status) ||
        (WIFEXITED(Status) && WEXITSTATUS(Status) == kFailPointCrashExit);
    if (!Crashed)
      return WIFEXITED(Status) ? WEXITSTATUS(Status) : 1;
    if (Restarts >= O.MaxRestarts) {
      std::cerr << "supervisor: giving up after " << O.MaxRestarts
                << " restart" << (O.MaxRestarts == 1 ? "" : "s") << '\n';
      return 1;
    }
    ++Restarts;
    // Exponential backoff, capped: doubling is for transient contention,
    // not for turning a long supervised run into a sleep marathon.
    constexpr uint64_t kMaxBackoffMs = 2000;
    unsigned Shift = Restarts - 1 < 20 ? Restarts - 1 : 20;
    uint64_t BackoffMs = O.RestartBackoffMs << Shift;
    if (BackoffMs > kMaxBackoffMs || BackoffMs < O.RestartBackoffMs)
      BackoffMs = kMaxBackoffMs;
    if (WIFSIGNALED(Status))
      std::cerr << "supervisor: run killed by signal " << WTERMSIG(Status);
    else
      std::cerr << "supervisor: run crashed";
    std::cerr << "; restart " << Restarts << "/" << O.MaxRestarts
              << " after " << BackoffMs << "ms backoff\n";
    std::cerr.flush();
    ::usleep(static_cast<useconds_t>(BackoffMs * 1000));
    // Resume from the journal when it already holds a durable checkpoint;
    // a crash before the first checkpoint restarts from scratch (the
    // journal's torn tail is truncated on reopen either way).
    JournalRecovery Rec = recoverJournal(O.JournalPath);
    O.ResumeJournal = Rec.Opened && !Rec.LastCheckpoint.empty()
                          ? O.JournalPath
                          : std::string();
  }
}

/// A line-based read-eval-monitor loop. `:let f = <expr>` accumulates a
/// (possibly recursive) definition; other lines evaluate in the scope of
/// everything defined so far, under the monitors toggled with `:monitor`.
int runRepl(const Options &Base) {
  std::vector<std::pair<std::string, std::string>> Defs; // name, source.
  bool Trace = false, Profile = false;
  Strategy Strat = Base.Strat;

  std::cout << "monsem repl — :let f = <expr>, :monitor trace|profile|off,\n"
            << ":strategy strict|name|need, :defs, :quit; anything else "
               "evaluates.\n";
  std::string Line;
  while (std::cout << "monsem> " << std::flush,
         std::getline(std::cin, Line)) {
    std::string_view Trimmed = trimString(Line);
    if (Trimmed.empty())
      continue;
    if (Trimmed == ":quit" || Trimmed == ":q")
      break;
    if (Trimmed == ":defs") {
      for (const auto &[Name, Src] : Defs)
        std::cout << "  " << Name << " = " << Src << '\n';
      continue;
    }
    if (startsWith(Trimmed, ":strategy ")) {
      std::string_view V = trimString(Trimmed.substr(10));
      Strat = V == "name"   ? Strategy::CallByName
              : V == "need" ? Strategy::CallByNeed
                            : Strategy::Strict;
      std::cout << "strategy: " << strategyName(Strat) << '\n';
      continue;
    }
    if (startsWith(Trimmed, ":monitor ")) {
      std::string_view V = trimString(Trimmed.substr(9));
      if (V == "trace")
        Trace = true;
      else if (V == "profile")
        Profile = true;
      else if (V == "off")
        Trace = Profile = false;
      else
        std::cout << "unknown monitor '" << V << "'\n";
      std::cout << "monitors:" << (Trace ? " trace" : "")
                << (Profile ? " profile" : "")
                << (!Trace && !Profile ? " none" : "") << '\n';
      continue;
    }
    if (startsWith(Trimmed, ":let ")) {
      std::string_view Rest = trimString(Trimmed.substr(5));
      size_t Eq = Rest.find('=');
      if (Eq == std::string_view::npos) {
        std::cout << "expected :let <name> = <expr>\n";
        continue;
      }
      std::string Name(trimString(Rest.substr(0, Eq)));
      std::string Body(trimString(Rest.substr(Eq + 1)));
      // Validate the definition before accepting it.
      std::string Probe;
      for (const auto &[N, S] : Defs)
        Probe += "letrec " + N + " = " + S + " in ";
      Probe += "letrec " + Name + " = " + Body + " in 0";
      auto P = ParsedProgram::parse(Probe);
      if (!P->ok()) {
        std::cout << P->diags().str() << '\n';
        continue;
      }
      Defs.emplace_back(std::move(Name), std::move(Body));
      continue;
    }

    // Evaluate an expression in the accumulated scope.
    std::string Src;
    for (const auto &[N, S] : Defs)
      Src += "letrec " + N + " = " + S + " in ";
    Src += std::string(Trimmed);
    auto P = ParsedProgram::parse(Src);
    if (!P->ok()) {
      std::cout << P->diags().str() << '\n';
      continue;
    }
    const Expr *Program = P->root();
    Tracer Trc(&std::cout);
    CallProfiler Prof;
    // Same single assembly point as the batch path; only the strategy is
    // REPL-local state.
    Options ReplOpts = Base;
    ReplOpts.Strat = Strat;
    EvalMode Mode = modeFor(ReplOpts);
    Cascade &C = Mode.C;
    if (Trace) {
      AnnotateOptions AO;
      AO.Qualifier = Symbol::intern("trace");
      AO.WithParams = true;
      Program = annotateFunctionBodies(P->context(), Program, {}, AO);
      C.use(Trc);
    }
    if (Profile) {
      AnnotateOptions AO;
      AO.Qualifier = Symbol::intern("profile");
      Program = annotateFunctionBodies(P->context(), Program, {}, AO);
      C.use(Prof);
    }
    GCancel.store(false); // A ^C from a previous evaluation is spent.
    GFirstInt.store(0);   // ...and no longer arms the hard-exit escalation.
    Session Sess;
    RunResult R = Sess.submit(Mode, Program).outcome();
    if (R.stoppedByGovernor())
      std::cout << "stopped: " << outcomeName(R.St) << " after " << R.Steps
                << " steps\n";
    else if (!R.Ok)
      std::cout << "error: " << R.Error << '\n';
    else {
      std::cout << R.ValueText << '\n';
      if (Profile)
        std::cout << "profile: "
                  << R.FinalStates[C.size() - 1]->str() << '\n';
    }
  }
  return 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return usage(Argv[0]);
  std::signal(SIGINT, onInterrupt);
  if (O.Serve) {
    ServeOptions SO;
    SO.Workers = O.Workers;
    SO.QuantumSteps = O.QuantumSteps;
    SO.MaxSteps = O.MaxSteps;
    SO.DeadlineMs = O.DeadlineMs;
    SO.MaxBytes = O.MaxBytes;
    SO.MaxDepth = O.MaxDepth;
    SO.JournalDir = O.JournalPath; // --journal=DIR in serve mode.
    SO.UnixPath = O.ListenUnix;
    SO.TcpPort = O.ListenTcp;
    SO.MaxLiveRuns = O.MaxLiveRuns;
    SO.MaxRunsPerTenant = O.MaxRunsPerTenant;
    SO.MaxResidentBytes = O.MaxResidentBytes;
    SO.MaxRequestBytes = O.MaxRequestBytes;
    SO.MaxOutboxBytes = O.MaxOutboxBytes;
    SO.IdleTimeoutMs = O.IdleTimeoutMs;
    SO.SlowReaderMs = O.SlowReaderMs;
    SO.SockSndbufBytes = O.SockSndbufBytes;
    SO.Interrupt = &GCancel; // First ^C drains politely; second hard-exits.
    return runServe(SO);
  }
  if (O.Repl)
    return runRepl(O);
  std::optional<std::string> Source = readInput(O.File);
  if (!Source)
    return 1;
  if (O.Imp)
    return runImperative(O, *Source);
  if (O.Supervise)
    return runSupervised(O, *Source);
  return runFunctional(O, *Source);
}
